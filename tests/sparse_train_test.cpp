/**
 * @file
 * Sparse-training tests: SR-STE leaves exact N:M sparsity and preserves
 * usable accuracy; one-shot (ASP) pruning invariants; the mask-reapply
 * fine-tuning hook keeps pruned weights at zero.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/sparse_train.hpp"
#include "models/mini_models.hpp"
#include "nn/network.hpp"

namespace mvq::core {
namespace {

struct TrainedFixture
{
    nn::ClassificationDataset data;
    std::unique_ptr<nn::Sequential> net;
    double dense_acc = 0.0;

    TrainedFixture()
        : data([] {
              nn::ClassificationConfig dc;
              dc.classes = 6;
              dc.size = 12;
              dc.train_count = 360;
              dc.test_count = 120;
              return dc;
          }())
    {
        models::MiniConfig mc;
        mc.classes = 6;
        mc.width = 8;
        net = models::miniResNet18(mc);
        nn::TrainConfig tc;
        tc.epochs = 3;
        dense_acc = nn::trainClassifier(*net, data, tc).test_accuracy;
    }
};

TEST(SparseTrain, SrSteProducesExactNmSparsity)
{
    TrainedFixture f;
    MvqLayerConfig lc;
    lc.d = 8;
    lc.pattern = NmPattern{2, 8};
    auto targets = compressibleConvs(*f.net, lc, /*skip_first=*/true);
    ASSERT_FALSE(targets.empty());

    SrSteConfig sc;
    sc.pattern = lc.pattern;
    sc.d = lc.d;
    sc.train.epochs = 2;
    const double sparse_acc = srSteTrain(*f.net, targets, f.data, sc);

    for (nn::Conv2d *conv : targets) {
        Tensor wr = groupWeights(conv->weight().value, lc.d, lc.grouping);
        // At least (M - N)/M of the weights are zero (a kept weight can
        // itself train to zero, so >= rather than ==).
        EXPECT_GE(wr.countZeros(), wr.numel() * 6 / 8) << conv->name();
    }

    // Sparse training keeps accuracy within striking distance of dense
    // (the synthetic task is easy; allow a modest drop).
    EXPECT_GT(sparse_acc, f.dense_acc - 25.0);
    EXPECT_GT(sparse_acc, 50.0);
}

TEST(SparseTrain, OneShotPruneInvariantAndInPlace)
{
    TrainedFixture f;
    MvqLayerConfig lc;
    lc.d = 16;
    lc.pattern = NmPattern{4, 16};
    auto targets = compressibleConvs(*f.net, lc, true);
    ASSERT_FALSE(targets.empty());

    auto masks = oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
    ASSERT_EQ(masks.size(), targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        checkNmInvariant(masks[i], lc.d, lc.pattern);
        Tensor wr = groupWeights(targets[i]->weight().value, lc.d,
                                 lc.grouping);
        for (std::int64_t j = 0; j < wr.numel(); ++j) {
            if (!masks[i][static_cast<std::size_t>(j)]) {
                EXPECT_FLOAT_EQ(wr[j], 0.0f);
            }
        }
    }
}

TEST(SparseTrain, MaskReapplyHookKeepsZeros)
{
    TrainedFixture f;
    MvqLayerConfig lc;
    lc.d = 16;
    lc.pattern = NmPattern{4, 16};
    auto targets = compressibleConvs(*f.net, lc, true);
    auto masks = oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);

    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.after_step = maskReapplyHook(targets, masks, lc.d, lc.grouping);
    nn::trainClassifier(*f.net, f.data, tc);

    for (std::size_t i = 0; i < targets.size(); ++i) {
        Tensor wr = groupWeights(targets[i]->weight().value, lc.d,
                                 lc.grouping);
        for (std::int64_t j = 0; j < wr.numel(); ++j) {
            if (!masks[i][static_cast<std::size_t>(j)]) {
                EXPECT_FLOAT_EQ(wr[j], 0.0f);
            }
        }
    }
}

TEST(SparseTrain, CurrentMaskReflectsZeros)
{
    Rng rng(141);
    nn::Sequential net("n");
    nn::Conv2dConfig cc{4, 16, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("c", cc, rng);
    auto targets = std::vector<nn::Conv2d *>{conv};
    oneShotPrune(targets, NmPattern{2, 8}, 8,
                 Grouping::OutputChannelWise);
    Mask mask = currentMask(*conv, 8, Grouping::OutputChannelWise);
    std::int64_t kept = 0;
    for (auto b : mask)
        kept += b;
    EXPECT_EQ(kept, conv->weight().value.numel() / 4);
}

TEST(SparseTrain, HigherSparsityLowersPruningAccuracy)
{
    // Fig. 10's qualitative premise: keeping 8/16 beats keeping 1/16.
    TrainedFixture mild;
    TrainedFixture harsh;

    MvqLayerConfig lc;
    lc.d = 16;
    auto run = [&](TrainedFixture &f, NmPattern p) {
        lc.pattern = p;
        auto targets = compressibleConvs(*f.net, lc, true);
        SrSteConfig sc;
        sc.pattern = p;
        sc.d = lc.d;
        sc.train.epochs = 1;
        return srSteTrain(*f.net, targets, f.data, sc);
    };
    const double acc_mild = run(mild, NmPattern{8, 16});
    const double acc_harsh = run(harsh, NmPattern{1, 16});
    EXPECT_GE(acc_mild + 5.0, acc_harsh)
        << "extreme pruning should not beat mild pruning";
}

} // namespace
} // namespace mvq::core
