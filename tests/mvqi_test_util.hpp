/**
 * @file
 * Shared helpers for the model-artifact / MVQI tests: a byte-deterministic
 * compressed model for the golden fixture (no float *computation* — every
 * stored value is an exact binary fraction derived from integers, so the
 * emitted image is identical across compilers and -ffp-contract choices)
 * and a small randomized model for round-trip checks.
 */

#ifndef MVQ_TESTS_MVQI_TEST_UTIL_HPP
#define MVQ_TESTS_MVQI_TEST_UTIL_HPP

#include <cstdint>

#include "core/compressed_layer.hpp"
#include "core/io/mvqi_format.hpp"
#include "core/mask_codec.hpp"
#include "core/nm_pruning.hpp"

namespace mvq::core {

/**
 * Deterministic two-layer, two-codebook model exercising both N:M
 * patterns (4:16 and 2:4), grouped conv packing (layer 1 is baked for
 * groups=2 in the golden image), and quantized + unquantized codebooks.
 * Every float is of the form (small integer) * 2^-2, exactly
 * representable, so serialization is byte-stable everywhere.
 */
inline CompressedModel
makeGoldenModel()
{
    CompressedModel model;

    {
        Codebook cb;
        cb.qbits = 8;
        cb.scale = 0.25f;
        cb.codewords = Tensor(Shape({16, 16}));
        for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
            cb.codewords[i] =
                static_cast<float>(i % 17 - 8) * 0.25f;
        model.codebooks.push_back(std::move(cb));
    }
    {
        Codebook cb; // unquantized fp32 codebook
        cb.qbits = 0;
        cb.scale = 0.0f;
        cb.codewords = Tensor(Shape({8, 16}));
        for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
            cb.codewords[i] =
                static_cast<float>((i * 7) % 23 - 11) * 0.25f;
        model.codebooks.push_back(std::move(cb));
    }

    {
        CompressedLayer l;
        l.name = "conv0";
        l.weight_shape = Shape({16, 2, 2, 2});
        l.cfg.k = 16;
        l.cfg.d = 16;
        l.cfg.pattern = NmPattern{4, 16};
        l.cfg.grouping = Grouping::OutputChannelWise;
        l.cfg.codebook_bits = 8;
        l.codebook_id = 0;
        l.dense_flops = 4096;
        const std::int64_t ng = l.weight_shape.numel() / l.cfg.d;
        const MaskCodec codec(l.cfg.pattern);
        for (std::int64_t j = 0; j < ng; ++j)
            l.assignments.push_back(
                static_cast<std::int32_t>((j * 5) % l.cfg.k));
        const std::int64_t codes = ng * (l.cfg.d / l.cfg.pattern.m);
        for (std::int64_t j = 0; j < codes; ++j)
            l.mask_codes.push_back(static_cast<std::uint32_t>(
                (j * 131u + 17u) % codec.codeCount()));
        model.layers.push_back(std::move(l));
    }
    {
        CompressedLayer l;
        l.name = "conv1_grouped";
        l.weight_shape = Shape({16, 4, 3, 3}); // C/groups=4 with groups=2
        l.cfg.k = 8;
        l.cfg.d = 16;
        l.cfg.pattern = NmPattern{2, 4};
        l.cfg.grouping = Grouping::OutputChannelWise;
        l.cfg.codebook_bits = 0;
        l.codebook_id = 1;
        l.dense_flops = 9216;
        const std::int64_t ng = l.weight_shape.numel() / l.cfg.d;
        const MaskCodec codec(l.cfg.pattern);
        for (std::int64_t j = 0; j < ng; ++j)
            l.assignments.push_back(
                static_cast<std::int32_t>((j * 3 + 1) % l.cfg.k));
        const std::int64_t codes = ng * (l.cfg.d / l.cfg.pattern.m);
        for (std::int64_t j = 0; j < codes; ++j)
            l.mask_codes.push_back(static_cast<std::uint32_t>(
                (j * 37u + 2u) % codec.codeCount()));
        model.layers.push_back(std::move(l));
    }
    return model;
}

/** The conv groups the golden image bakes per layer (layer 1 is a
 *  2-group conv; see makeGoldenModel). */
inline io::MvqiWriteOptions
goldenWriteOptions()
{
    io::MvqiWriteOptions opts;
    opts.layer_groups["conv1_grouped"] = 2;
    return opts;
}

} // namespace mvq::core

#endif // MVQ_TESTS_MVQI_TEST_UTIL_HPP
