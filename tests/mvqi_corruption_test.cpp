/**
 * @file
 * MVQI corruption corpus: every malformed image must fail with a clear
 * FatalError (or, for benign payload flips, load correctly) — never
 * undefined behaviour, never a crash, never an escaped PanicError. The
 * targeted cases pin one diagnostic each (truncation, bad magic, wrong
 * version, misaligned section, out-of-range TOC, inconsistent counts,
 * semantically corrupt operands); the deterministic byte-flip sweep is
 * the fuzz-style pass the ASan/UBSan CI job runs over.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/fault.hpp"
#include "common/logging.hpp"
#include "core/io/mmap_artifact.hpp"
#include "core/io/model_artifact.hpp"
#include "mvqi_test_util.hpp"
#include "nn/compressed_conv2d.hpp"
#include "tensor/ops.hpp"

namespace mvq::core {
namespace {

const char *kPath = "/tmp/mvq_corruption_test.mvqi";

std::vector<std::uint8_t>
validImage()
{
    static const std::vector<std::uint8_t> image =
        io::buildMvqiImage(makeGoldenModel(), goldenWriteOptions());
    return image;
}

void
writeBytes(const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Open + validate + borrow + forward — the full untrusted-input path. */
void
loadAndUse()
{
    const auto art = io::openArtifact(kPath);
    for (std::int64_t i = 0; i < art->layerCount(); ++i) {
        const io::SharedOperands ops = art->packedOperands(i);
        const Shape ws = art->layerShape(i);
        nn::CompressedConv2d conv(art->layerName(i), ws, ops, 1, 0);
        Tensor x(Shape({1,
                        ws.dim(1) * static_cast<std::int64_t>(ops->size()),
                        5, 5}));
        Rng rng(3);
        x.fillNormal(rng, 0.0f, 1.0f);
        conv.forward(x);
    }
}

/** Expect a FatalError whose message mentions `needle`. */
void
expectFatal(const std::string &needle)
{
    try {
        loadAndUse();
        FAIL() << "corrupt image loaded; expected FatalError mentioning '"
               << needle << "'";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "got: " << e.what();
    }
}

class MvqiCorruptionTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        std::remove(kPath);
        fault::resetAll();
    }

    /** Patch `bytes` of the valid image at `off` and write it out. */
    void
    patch(std::size_t off, const void *p, std::size_t n)
    {
        std::vector<std::uint8_t> img = validImage();
        ASSERT_LT(off + n, img.size());
        std::memcpy(img.data() + off, p, n);
        writeBytes(img);
    }

    void
    patchU32(std::size_t off, std::uint32_t v)
    {
        patch(off, &v, sizeof(v));
    }

    void
    patchU64(std::size_t off, std::uint64_t v)
    {
        patch(off, &v, sizeof(v));
    }
};

TEST_F(MvqiCorruptionTest, ValidImagePasses)
{
    writeBytes(validImage());
    EXPECT_NO_THROW(loadAndUse());
}

TEST_F(MvqiCorruptionTest, TruncatedHeader)
{
    const auto img = validImage();
    writeBytes({img.begin(), img.begin() + 17});
    expectFatal("truncated");
}

TEST_F(MvqiCorruptionTest, TruncatedBody)
{
    const auto img = validImage();
    writeBytes({img.begin(), img.begin() + img.size() / 2});
    // The header's file_bytes no longer matches the actual size.
    expectFatal("size mismatch");
}

TEST_F(MvqiCorruptionTest, BadMagic)
{
    patchU32(0, 0xDEADBEEFu);
    // openArtifact cannot route an unknown magic to either backend.
    expectFatal("unknown model file magic");
}

TEST_F(MvqiCorruptionTest, WrongVersion)
{
    patchU32(4, io::kMvqiVersion + 7);
    expectFatal("unsupported MVQI version");
}

TEST_F(MvqiCorruptionTest, MisalignedSection)
{
    // Header offset 24 is codebook_toc_off; knock it off 64-byte
    // alignment.
    const auto img = validImage();
    io::MvqiHeader h;
    std::memcpy(&h, img.data(), sizeof(h));
    patchU64(24, h.codebook_toc_off + 8);
    expectFatal("misaligned");
}

TEST_F(MvqiCorruptionTest, OutOfRangeToc)
{
    patchU64(32, 1ull << 40); // layer_toc_off far past EOF
    expectFatal("beyond the end");
}

TEST_F(MvqiCorruptionTest, HugeCountOverflowsSafely)
{
    // n_layers close to UINT32_MAX: the count x 200-byte TOC entry
    // computation must not overflow into an in-range value.
    patchU32(20, 0xFFFFFFF0u);
    expectFatal("extends past the end");
}

TEST_F(MvqiCorruptionTest, FileSizeFieldMismatch)
{
    patchU64(40, 123u);
    expectFatal("size mismatch");
}

TEST_F(MvqiCorruptionTest, SemanticOperandCorruption)
{
    // Flip a col_idx of layer 0's operand out of range: structural
    // bounds still pass, so this must be caught by the O(nnz) semantic
    // validation (validateGroupedOperand) and rewrapped as a FatalError
    // naming the file — the line that keeps the kernels in bounds.
    std::vector<std::uint8_t> img = validImage();
    io::MvqiHeader h;
    std::memcpy(&h, img.data(), sizeof(h));
    io::MvqiLayer L;
    std::memcpy(&L, img.data() + h.layer_toc_off, sizeof(L));
    io::MvqiOperand op;
    std::memcpy(&op, img.data() + L.operands_off, sizeof(op));
    ASSERT_GT(op.col_idx.count, 0);
    const std::int32_t bogus = static_cast<std::int32_t>(op.cols) + 99;
    std::memcpy(img.data() + op.col_idx.off, &bogus, sizeof(bogus));
    writeBytes(img);
    expectFatal("corrupt MVQI operand");
}

TEST_F(MvqiCorruptionTest, OpenFaultSiteFailsCleanlyOnValidImage)
{
    // The artifact.open fault site models the OS refusing the mmap (ENOMEM,
    // EMFILE, a vanished file): even with a perfectly valid image on disk
    // the open must fail as a diagnosed FatalError, and the failure must
    // not stick to the path — the next open serves normally.
    writeBytes(validImage());
    fault::arm(fault::kArtifactOpen,
               {/*nth=*/1, /*every=*/0, fault::FaultMode::Error});
    expectFatal("injected fault at artifact.open");
    EXPECT_NO_THROW(loadAndUse());
}

TEST_F(MvqiCorruptionTest, TruncatedThenMmapThroughFaultSite)
{
    // A file that shrinks while being served: the first open dies at the
    // fault site (the "truncated under us" OS-level failure), and a real
    // truncated image behind it still fails structural validation after
    // the mmap succeeds. Both failures must be clean FatalErrors — the
    // mmap path may never SIGBUS or read past its mapping.
    const auto img = validImage();
    writeBytes({img.begin(), img.begin() + img.size() / 2});
    fault::arm(fault::kArtifactOpen,
               {/*nth=*/1, /*every=*/0, fault::FaultMode::Error});
    expectFatal("injected fault at artifact.open");
    expectFatal("size mismatch");

    // Same double failure for the borrow path on an intact image: the
    // injected borrow error surfaces, then the retry works.
    writeBytes(img);
    fault::arm(fault::kOperandBorrow,
               {/*nth=*/1, /*every=*/0, fault::FaultMode::Error});
    expectFatal("injected fault at artifact.operand_borrow");
    EXPECT_NO_THROW(loadAndUse());
}

TEST_F(MvqiCorruptionTest, DeterministicByteFlipSweep)
{
    // Fuzz-style negative corpus: XOR one byte at a stride of positions
    // across the whole image. Every mutant must either load + forward
    // cleanly (flips in float payloads, names, or padding are benign) or
    // fail with FatalError. Anything else — crash, PanicError, UB under
    // the sanitizer job — is a firewall bug.
    const std::vector<std::uint8_t> img = validImage();
    std::size_t loaded = 0;
    std::size_t rejected = 0;
    for (std::size_t off = 0; off < img.size(); off += 37) {
        std::vector<std::uint8_t> mutant = img;
        mutant[off] ^= 0xA5u;
        writeBytes(mutant);
        try {
            loadAndUse();
            ++loaded;
        } catch (const FatalError &) {
            ++rejected;
        }
        // No other exception type may escape; PanicError or a signal
        // here fails the test (and trips ASan/UBSan in the sanitize job).
    }
    // The sweep must have exercised both outcomes.
    EXPECT_GT(loaded, 0u);
    EXPECT_GT(rejected, 0u);
}

} // namespace
} // namespace mvq::core
