/**
 * @file
 * Weight-loader tests: the hardware decode path (LUT + CRF + AND gates)
 * must reproduce CompressedLayer::reconstruct exactly, and the stream
 * bit model must match the paper's per-format loading widths.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/pipeline.hpp"
#include "sim/weight_loader.hpp"
#include "tensor/ops.hpp"

namespace mvq::sim {
namespace {

core::CompressedModel
makeCompressed(std::int64_t k, std::int64_t d, core::NmPattern pattern,
               const Shape &shape, Tensor &w4_out)
{
    Rng rng(171);
    w4_out = Tensor(shape);
    w4_out.fillNormal(rng, 0.0f, 1.0f);

    core::MvqLayerConfig cfg;
    cfg.k = k;
    cfg.d = d;
    cfg.pattern = pattern;
    Tensor wr = core::groupWeights(w4_out, d, cfg.grouping);
    core::Mask mask = core::nmMask(wr, pattern);
    core::applyMask(wr, mask);

    core::KmeansConfig kc;
    kc.k = k;
    core::KmeansResult km = core::maskedKmeans(wr, mask, kc);

    core::CompressedModel cm;
    core::Codebook cb;
    cb.codewords = km.codebook;
    core::quantizeCodebook(cb, 8);
    cm.codebooks.push_back(cb);
    cm.layers.push_back(core::makeCompressedLayer("conv", shape, cfg,
                                                  mask, km, 0));
    return cm;
}

TEST(WeightLoader, DecodeMatchesReconstruct)
{
    Tensor w4;
    auto cm = makeCompressed(16, 16, core::NmPattern{4, 16},
                             Shape({32, 4, 3, 3}), w4);
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_CMS, 16);
    Counters counters;
    DecodedWeights dec = decodeCompressedLayer(
        cfg, cm.layers[0], cm.codebooks[0], counters);
    Tensor expected = cm.reconstructLayer(0);
    EXPECT_FLOAT_EQ(maxAbsDiff(dec.weights, expected), 0.0f);
    EXPECT_EQ(dec.grouped_mask, cm.layers[0].decodeMask());
    // One CRF read per subvector.
    EXPECT_EQ(counters.crf_reads, cm.layers[0].ng());
    EXPECT_GT(counters.l2_read_bytes, 0);
}

TEST(WeightLoader, StreamBitsPerFormat)
{
    // Dense 8-bit: 8 bits per weight.
    AccelConfig dense = makeHwSetting(HwSetting::EWS_Base, 16);
    EXPECT_EQ(streamBits(dense, 1000), 8000);
    EXPECT_DOUBLE_EQ(dense.loadedBitsPerWeight(), 8.0);

    // EWS-C: k=1024 d=8 -> 10 bits per 8 weights = 1.25 b/w.
    AccelConfig vq = makeHwSetting(HwSetting::EWS_C, 16);
    EXPECT_DOUBLE_EQ(vq.loadedBitsPerWeight(), 10.0 / 8.0);

    // EWS-CM/CMS: k=512 d=16 4:16 -> (9 + 11)/16 = 1.25 b/w.
    AccelConfig mvq = makeHwSetting(HwSetting::EWS_CMS, 16);
    EXPECT_DOUBLE_EQ(mvq.loadedBitsPerWeight(), 20.0 / 16.0);

    // The headline claim: MVQ loads 6.4x fewer bits than dense.
    EXPECT_NEAR(dense.loadedBitsPerWeight() / mvq.loadedBitsPerWeight(),
                6.4, 1e-9);
}

TEST(WeightLoader, LoadCyclesAtDmaWidth)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 16);
    // 64-bit DMA: 8 dense weights per cycle.
    EXPECT_EQ(loadCycles(cfg, 8), 1);
    EXPECT_EQ(loadCycles(cfg, 9), 2);
    EXPECT_EQ(loadCycles(cfg, 64), 8);
}

TEST(WeightLoader, WrapDense)
{
    Tensor w(Shape({8, 2, 3, 3}), 1.0f);
    DecodedWeights dec = wrapDenseWeights(w, 8);
    EXPECT_EQ(dec.weights.shape(), w.shape());
    EXPECT_EQ(dec.grouped_mask.size(),
              static_cast<std::size_t>(w.numel()));
    for (auto b : dec.grouped_mask)
        EXPECT_EQ(b, 1);
}

TEST(AccelConfig, SettingFactories)
{
    for (auto s : {HwSetting::WS_Base, HwSetting::WS_CMS,
                   HwSetting::EWS_Base, HwSetting::EWS_C,
                   HwSetting::EWS_CM, HwSetting::EWS_CMS}) {
        for (std::int64_t size : {16, 32, 64}) {
            AccelConfig cfg = makeHwSetting(s, size);
            EXPECT_EQ(cfg.array_h, size);
            EXPECT_EQ(cfg.l1_bytes,
                      (size == 16 ? 128 : 256) * 1024);
            EXPECT_EQ(cfg.l2_bytes, 2 * 1024 * 1024);
        }
    }
    EXPECT_EQ(makeHwSetting(HwSetting::WS_Base, 16).dataflow,
              Dataflow::WS);
    EXPECT_EQ(makeHwSetting(HwSetting::EWS_C, 16).vq_k, 1024);
    EXPECT_EQ(makeHwSetting(HwSetting::EWS_CMS, 16).sparseQ(), 4);
    EXPECT_THROW(makeHwSetting(HwSetting::EWS_Base, 48),
                 mvq::FatalError);
}

} // namespace
} // namespace mvq::sim
