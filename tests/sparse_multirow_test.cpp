/**
 * @file
 * Multi-row sparse micro-kernel coverage: the groupSparseRows bucketing
 * (tiles + remainder partition, adversarial bucket shapes), the grouped
 * gemm entry points vs gemmSparseAReference and — bit-for-bit — vs the
 * single-row path wherever the contract promises identity (knob off, no
 * tiles, below the crossover), the per-ISA multi-row kernels against the
 * scalar table, thread-count determinism, the MVQ_SPARSE_MULTIROW knob,
 * and the packGroupedRows conv path (grouped + strided).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/env.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"
#include "core/compressed_layer.hpp"
#include "core/nm_pruning.hpp"
#include "nn/compressed_conv2d.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

using simd::Isa;

struct IsaGuard
{
    simd::Isa saved = simd::activeIsa();
    ~IsaGuard() { simd::setIsa(saved); }
};

struct ThreadGuard
{
    ~ThreadGuard() { setNumThreads(0); }
};

struct MultiRowGuard
{
    ~MultiRowGuard() { setSparseMultiRowEnabled(true); }
};

std::vector<Isa>
availableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (simd::isaAvailable(isa))
            out.push_back(isa);
    }
    return out;
}

/** Random [rows, cols] matrix with the row-wise 4:16 structure (each
 *  row's kept columns independent, so block-column buckets stay thin). */
Tensor
masked416Matrix(std::uint64_t seed, std::int64_t rows, std::int64_t cols)
{
    Rng rng(seed);
    return core::randomNmMatrix(rng, rows, cols, core::NmPattern{4, 16});
}

/**
 * Random matrix where every row of a 16-row block keeps the same 4 of
 * each 16 columns (the pattern rotates per block): every kept column's
 * kept-row set is the full block, so groupSparseRows tiles everything.
 */
Tensor
blockPatternedMatrix(std::uint64_t seed, std::int64_t rows,
                     std::int64_t cols)
{
    Rng rng(seed);
    Tensor a(Shape({rows, cols}));
    a.fillNormal(rng, 0.0f, 1.0f);
    for (std::int64_t i = 0; i < rows; ++i) {
        const std::int64_t blk = i / 16;
        for (std::int64_t j = 0; j < cols; ++j) {
            if ((j + 3 * blk) % 16 >= 4)
                a.at(i, j) = 0.0f;
        }
    }
    return a;
}

void
expectClose(const Tensor &ref, const Tensor &got, const char *what)
{
    ASSERT_EQ(ref.numel(), got.numel()) << what;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const float denom = std::max(1.0f, std::fabs(ref[i]));
        ASSERT_LE(std::fabs(ref[i] - got[i]) / denom, 1e-4f)
            << what << " elem " << i;
    }
}

void
expectBitIdentical(const Tensor &ref, const Tensor &got, const char *what)
{
    ASSERT_EQ(ref.numel(), got.numel()) << what;
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                             static_cast<std::size_t>(ref.numel())
                                 * sizeof(float)))
        << what;
}

TEST(GroupSparseRows, TilesAndRemainderPartitionTheOperand)
{
    Tensor a = blockPatternedMatrix(3, 64, 256);
    const GroupedSparseMatrix g = groupSparseRows(sparsifyRows(a), 16);
    EXPECT_TRUE(g.validated);
    EXPECT_TRUE(g.rows.validated);
    EXPECT_TRUE(g.remainder.validated);
    EXPECT_EQ(g.rows.nnz(), 64 * 256 / 4);
    // Every block is one 16-row bucket -> four 4-row tiles, no remainder.
    EXPECT_EQ(g.tiles.size(), 16u);
    EXPECT_EQ(g.remainder.nnz(), 0);
    EXPECT_EQ(g.tileNnz(), g.rows.nnz());
    EXPECT_EQ(g.fallbackFraction(), 0.0);
    // One band per 16-row block, each owning that block's four tiles.
    ASSERT_EQ(g.band_ptr.size(), 5u);
    for (std::size_t b = 1; b < g.band_ptr.size(); ++b)
        EXPECT_EQ(g.band_ptr[b] - g.band_ptr[b - 1], 4);
    for (const GroupedSparseMatrix::Tile &t : g.tiles) {
        EXPECT_EQ(t.nrows, 4);
        EXPECT_EQ(t.ncols, 256 / 4);
        for (std::int32_t r = 1; r < t.nrows; ++r)
            EXPECT_LT(t.row[r - 1], t.row[r]);
    }
}

TEST(GroupSparseRows, RowWiseRandomMasksFallBackToRemainder)
{
    // Independent per-row masks make block-column kept-sets collide
    // rarely; with the default min_cols threshold nearly everything must
    // take the single-row remainder, and tiles + remainder still
    // partition the operand exactly.
    Tensor a = masked416Matrix(7, 64, 256);
    const GroupedSparseMatrix g = groupSparseRows(sparsifyRows(a), 16);
    EXPECT_EQ(g.tileNnz() + g.remainder.nnz(), g.rows.nnz());
    EXPECT_GT(g.fallbackFraction(), 0.5);
}

TEST(GroupSparseRows, LeftoverSingleRowChunkGoesToRemainder)
{
    // 5 rows sharing one pattern: one 4-row tile plus a leftover chunk of
    // exactly one row, which gains nothing from the tile kernel and must
    // route through the remainder instead.
    Tensor a(Shape({5, 64}));
    Rng rng(11);
    a.fillNormal(rng, 0.0f, 1.0f);
    for (std::int64_t i = 0; i < 5; ++i)
        for (std::int64_t j = 0; j < 64; ++j)
            if (j % 16 >= 4)
                a.at(i, j) = 0.0f;
    const GroupedSparseMatrix g = groupSparseRows(sparsifyRows(a), 16);
    ASSERT_EQ(g.tiles.size(), 1u);
    EXPECT_EQ(g.tiles[0].nrows, 4);
    EXPECT_EQ(g.tiles[0].ncols, 16);
    EXPECT_EQ(g.remainder.nnz(), 16); // the fifth row's entries
    EXPECT_EQ(g.tileNnz() + g.remainder.nnz(), g.rows.nnz());
}

TEST(GroupSparseRows, MinColsThresholdForcesPureFallback)
{
    Tensor a = blockPatternedMatrix(13, 32, 128);
    const GroupedSparseMatrix g =
        groupSparseRows(sparsifyRows(a), 16, 1 << 20);
    EXPECT_TRUE(g.tiles.empty());
    EXPECT_EQ(g.remainder.nnz(), g.rows.nnz());
    EXPECT_EQ(g.fallbackFraction(), 1.0);
}

TEST(GroupSparseRows, RejectsBadBlockSize)
{
    Tensor a = masked416Matrix(17, 16, 64);
    SparseRowMatrix sp = sparsifyRows(a);
    EXPECT_THROW(groupSparseRows(sp, 1), PanicError);
    EXPECT_THROW(groupSparseRows(sp, 33), PanicError);
    EXPECT_THROW(groupSparseRows(sp, 16, 0), PanicError);
}

TEST(SparseMultiRow, MicroKernelMatchesScalarTableAllIsas)
{
    IsaGuard guard;
    // Direct kernel-contract check: same tile, every mrows arity, each
    // ISA vs the scalar table (tolerance: the vector paths may fuse).
    const std::int64_t ncols = 24;
    const std::int64_t kmax = 96;
    Rng rng(23);
    Tensor vals(Shape({simd::kSparseMultiRowMr, ncols}));
    vals.fillNormal(rng, 0.0f, 1.0f);
    std::vector<std::int32_t> kidx;
    for (std::int64_t q = 0; q < ncols; ++q)
        kidx.push_back(static_cast<std::int32_t>(q * 4 + (q % 3)));

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        const simd::Kernels &kn = simd::kernels();
        const std::int64_t nr = kn.nr;
        Tensor bp(Shape({kmax, nr}));
        Rng brng(29);
        bp.fillNormal(brng, 0.0f, 1.0f);
        for (std::int64_t mrows = 1; mrows <= simd::kSparseMultiRowMr;
             ++mrows) {
            // Different garbage on each side: the kernel contract is
            // OVERWRITE (acc is never read), so the results must agree
            // regardless of the incoming contents — a kernel that
            // accumulated would diverge by the 0.5 vs -2.0 difference.
            std::vector<float> acc(
                static_cast<std::size_t>(mrows * nr), 0.5f);
            std::vector<float> want(
                static_cast<std::size_t>(mrows * nr), -2.0f);
            kn.gemmSparseMultiRowMicroKernel(vals.data(), ncols, mrows,
                                             kidx.data(), ncols, 0,
                                             bp.data(), nr, acc.data());
            simd::scalarKernels().gemmSparseMultiRowMicroKernel(
                vals.data(), ncols, mrows, kidx.data(), ncols, 0,
                bp.data(), nr, want.data());
            for (std::size_t i = 0; i < acc.size(); ++i) {
                const float denom = std::max(1.0f, std::fabs(want[i]));
                ASSERT_LE(std::fabs(want[i] - acc[i]) / denom, 1e-4f)
                    << simd::isaName(isa) << " mrows " << mrows
                    << " elem " << i;
            }
        }
    }
}

TEST(SparseMultiRow, GroupedGemmMatchesReferenceAllIsas)
{
    IsaGuard guard;
    const std::int64_t m = 64, k = 288, n = 100;
    Tensor a = blockPatternedMatrix(31, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16);
    ASSERT_GT(g.tileNnz(), 0);
    ASSERT_GT(sp.nnz() * n, kGemmScalarFallbackMacs); // blocked path runs
    Rng rng(32);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    Tensor c_oracle(Shape({m, n}));
    gemmSparseAReference(sp, b, c_oracle);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_grouped(Shape({m, n}));
        gemmSparseA(g, b, c_grouped);
        expectClose(c_oracle, c_grouped, simd::isaName(isa));
        Tensor c_single(Shape({m, n}));
        gemmSparseA(sp, b, c_single);
        expectClose(c_single, c_grouped, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, MixedTileAndRemainderMatchesReferenceAllIsas)
{
    IsaGuard guard;
    // Half the blocks share patterns (tiled), half are row-wise random
    // (remainder): both phases of the grouped driver run in one gemm.
    const std::int64_t m = 64, k = 288, n = 100;
    Tensor a = blockPatternedMatrix(41, m, k);
    Tensor r = masked416Matrix(42, m, k);
    for (std::int64_t i = 0; i < m; ++i) {
        if ((i / 16) % 2 == 1)
            for (std::int64_t j = 0; j < k; ++j)
                a.at(i, j) = r.at(i, j);
    }
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16);
    ASSERT_GT(g.tileNnz(), 0);
    ASSERT_GT(g.remainder.nnz(), 0);
    Rng rng(43);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    Tensor c_oracle(Shape({m, n}));
    gemmSparseAReference(sp, b, c_oracle);
    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_grouped(Shape({m, n}));
        gemmSparseA(g, b, c_grouped);
        expectClose(c_oracle, c_grouped, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, KnobOffReproducesSingleRowBitIdentically)
{
    IsaGuard guard;
    MultiRowGuard mguard;
    const std::int64_t m = 64, k = 288, n = 100;
    Tensor a = blockPatternedMatrix(51, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16);
    ASSERT_GT(g.tileNnz(), 0);
    Rng rng(52);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setSparseMultiRowEnabled(true);
        Tensor c_single(Shape({m, n}));
        gemmSparseA(sp, b, c_single);
        setSparseMultiRowEnabled(false);
        Tensor c_off(Shape({m, n}));
        gemmSparseA(g, b, c_off);
        expectBitIdentical(c_single, c_off, simd::isaName(isa));
        setSparseMultiRowEnabled(true);
    }
}

TEST(SparseMultiRow, TileFreeOperandForwardsBitIdentically)
{
    IsaGuard guard;
    // All patterns unique enough that nothing tiles (min_cols forced
    // high): the grouped entry point must take the single-row path even
    // with the knob on — same code, bit-identical.
    const std::int64_t m = 64, k = 288, n = 100;
    Tensor a = masked416Matrix(61, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16, 1 << 20);
    ASSERT_TRUE(g.tiles.empty());
    Rng rng(62);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_single(Shape({m, n}));
        gemmSparseA(sp, b, c_single);
        Tensor c_grouped(Shape({m, n}));
        gemmSparseA(g, b, c_grouped);
        expectBitIdentical(c_single, c_grouped, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, SmallProblemForwardsBitIdentically)
{
    IsaGuard guard;
    const std::int64_t m = 16, k = 64, n = 8;
    Tensor a = blockPatternedMatrix(71, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16);
    ASSERT_GT(g.tileNnz(), 0);
    ASSERT_LE(sp.nnz() * n, kGemmScalarFallbackMacs); // row-scan side
    Rng rng(72);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    Tensor c_single(Shape({m, n}));
    gemmSparseA(sp, b, c_single);
    Tensor c_grouped(Shape({m, n}));
    gemmSparseA(g, b, c_grouped);
    expectBitIdentical(c_single, c_grouped, "small-problem crossover");
}

TEST(SparseMultiRow, AlphaBetaMatchReference)
{
    IsaGuard guard;
    const std::int64_t m = 48, k = 160, n = 64;
    Tensor a = blockPatternedMatrix(81, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16);
    Rng rng(82);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor c0(Shape({m, n}));
    c0.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_ref = c0;
        gemmSparseAReference(sp, b, c_ref, 0.5f, 1.0f);
        Tensor c_got = c0;
        gemmSparseA(g, b, c_got, 0.5f, 1.0f);
        expectClose(c_ref, c_got, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, ThreadCountDeterministicPerIsa)
{
    IsaGuard guard;
    ThreadGuard tguard;
    const std::int64_t m = 96, k = 320, n = 80;
    Tensor a = blockPatternedMatrix(91, m, k);
    Tensor r = masked416Matrix(92, m, k);
    for (std::int64_t i = 0; i < m; ++i) {
        if ((i / 16) % 3 == 2)
            for (std::int64_t j = 0; j < k; ++j)
                a.at(i, j) = r.at(i, j);
    }
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix g = groupSparseRows(sp, 16);
    ASSERT_GT(g.tileNnz(), 0);
    ASSERT_GT(g.remainder.nnz(), 0);
    Rng rng(93);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setNumThreads(1);
        Tensor c1(Shape({m, n}));
        gemmSparseA(g, b, c1);
        setNumThreads(4);
        Tensor c4(Shape({m, n}));
        gemmSparseA(g, b, c4);
        expectBitIdentical(c1, c4, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, MalformedGroupedOperandPanics)
{
    // Hand-built grouped operands (validated == false) must fail the
    // structural check before the driver indexes C rows and the pools
    // with tile fields.
    Tensor a = blockPatternedMatrix(101, 64, 288);
    const std::int64_t n = 100; // keeps nnz * n above the crossover
    Tensor b(Shape({288, n}));
    Tensor c(Shape({64, n}));

    GroupedSparseMatrix g = groupSparseRows(sparsifyRows(a), 16);
    g.validated = false;
    g.tiles[0].row[1] = g.tiles[0].row[0]; // rows not ascending
    EXPECT_THROW(gemmSparseA(g, b, c), PanicError);

    g = groupSparseRows(sparsifyRows(a), 16);
    g.validated = false;
    g.tiles[0].val_off = static_cast<std::int64_t>(g.vals.size());
    EXPECT_THROW(gemmSparseA(g, b, c), PanicError);

    g = groupSparseRows(sparsifyRows(a), 16);
    g.validated = false;
    g.band_ptr.back() -= 1; // bands no longer cover every tile
    EXPECT_THROW(gemmSparseA(g, b, c), PanicError);
}

/** Build a clustered 4:16 compressed layer for the conv tests. */
struct CompressedFixture
{
    Shape shape;
    core::MvqLayerConfig cfg;
    core::CompressedLayer layer;
    core::Codebook cb;

    /**
     * concentrate=true scales every 16th block's first four output
     * channels up hard, so the magnitude mask keeps (nearly) the same
     * four channels at every column — realistic channel-norm spread taken
     * to the extreme, guaranteeing the pack produces multi-row buckets.
     */
    explicit CompressedFixture(Shape s, std::uint64_t seed = 131,
                               bool concentrate = false)
        : shape(std::move(s))
    {
        cfg.k = 16;
        cfg.d = 16;
        cfg.pattern = core::NmPattern{4, 16};
        cfg.codebook_bits = 8;

        Rng rng(seed);
        Tensor w4(shape);
        w4.fillNormal(rng, 0.0f, 1.0f);
        if (concentrate) {
            const std::int64_t per_k = shape.numel() / shape.dim(0);
            for (std::int64_t k = 0; k < shape.dim(0); ++k) {
                if (k % 16 >= 4)
                    continue;
                float *row = w4.data() + k * per_k;
                for (std::int64_t i = 0; i < per_k; ++i)
                    row[i] *= 16.0f;
            }
        }
        Tensor wr = core::groupWeights(w4, cfg.d, cfg.grouping);
        core::Mask mask = core::nmMask(wr, cfg.pattern);
        core::applyMask(wr, mask);

        core::KmeansConfig kc;
        kc.k = cfg.k;
        const core::KmeansResult km = core::maskedKmeans(wr, mask, kc);
        cb.codewords = km.codebook;
        core::quantizeCodebook(cb, cfg.codebook_bits);
        layer = core::makeCompressedLayer("conv", shape, cfg, mask, km, 0);
    }
};

TEST(SparseMultiRow, PackGroupedRowsMatchesPackSparseRows)
{
    CompressedFixture f(Shape({32, 4, 3, 3}));
    const SparseRowMatrix full = f.layer.packSparseRows(f.cb);
    EXPECT_TRUE(full.validated);

    const auto grouped = f.layer.packGroupedRows(f.cb, 1);
    ASSERT_EQ(grouped.size(), 1u);
    EXPECT_TRUE(grouped[0].validated);
    EXPECT_EQ(grouped[0].rows.row_ptr, full.row_ptr);
    EXPECT_EQ(grouped[0].rows.col_idx, full.col_idx);
    EXPECT_EQ(grouped[0].rows.values, full.values);
    EXPECT_EQ(grouped[0].tileNnz() + grouped[0].remainder.nnz(),
              full.nnz());

    // Two conv groups: each grouped operand must hold exactly its row
    // range of the full pack, with no re-slicing drift.
    const auto halves = f.layer.packGroupedRows(f.cb, 2);
    ASSERT_EQ(halves.size(), 2u);
    std::int64_t total = 0;
    for (const auto &h : halves) {
        EXPECT_EQ(h.rows.rows, 16);
        EXPECT_EQ(h.rows.cols, full.cols);
        total += h.rows.nnz();
    }
    EXPECT_EQ(total, full.nnz());
    const std::int64_t e0 = full.row_ptr[16];
    for (std::int64_t e = 0; e < halves[1].rows.nnz(); ++e) {
        const std::size_t se = static_cast<std::size_t>(e);
        const std::size_t fe = static_cast<std::size_t>(e0 + e);
        EXPECT_EQ(halves[1].rows.col_idx[se], full.col_idx[fe]);
        EXPECT_EQ(halves[1].rows.values[se], full.values[fe]);
    }
}

TEST(SparseMultiRow, CompressedConvKnobOffMatchesKnobOn)
{
    IsaGuard guard;
    MultiRowGuard mguard;
    CompressedFixture f(Shape({32, 8, 3, 3}), 131, /*concentrate=*/true);

    const nn::CompressedConv2d conv(f.layer, f.cb, 1, 1);
    // Concentrated channel norms make the stored mask codes repeat across
    // columns, so the pack must discover multi-row structure.
    EXPECT_GT(conv.groupedOperand(0).tileNnz(), 0);
    Rng rng(141);
    Tensor x(Shape({2, 8, 14, 14}));
    x.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setSparseMultiRowEnabled(false);
        const Tensor ref = conv.forward(x);
        setSparseMultiRowEnabled(true);
        const Tensor got = conv.forward(x);
        ASSERT_EQ(ref.shape(), got.shape());
        expectClose(ref, got, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, GroupedStridedConvMatchesDensifiedForward)
{
    IsaGuard guard;
    CompressedFixture f(Shape({16, 2, 3, 3}), 151); // groups = 2, C = 4

    Rng rng(152);
    nn::Conv2dConfig cc{4, 16, 3, 2, 1, 2, false};
    nn::Conv2d dense_conv("conv", cc, rng);
    dense_conv.setWeight(f.layer.reconstruct(f.cb));
    const nn::CompressedConv2d sparse_conv(f.layer, f.cb, 2, 1, 2);

    Tensor x(Shape({2, 4, 11, 11}));
    x.fillNormal(rng, 0.0f, 1.0f);
    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        const Tensor ref = dense_conv.forward(x, false);
        const Tensor got = sparse_conv.forward(x);
        ASSERT_EQ(ref.shape(), got.shape()) << simd::isaName(isa);
        expectClose(ref, got, simd::isaName(isa));
    }
}

TEST(SparseMultiRow, KnobDefaultsOnAndToggles)
{
    MultiRowGuard mguard;
    if (!env::isSet("MVQ_SPARSE_MULTIROW")) {
        EXPECT_TRUE(sparseMultiRowEnabled());
    }
    setSparseMultiRowEnabled(false);
    EXPECT_FALSE(sparseMultiRowEnabled());
    setSparseMultiRowEnabled(true);
    EXPECT_TRUE(sparseMultiRowEnabled());
}

} // namespace
} // namespace mvq
