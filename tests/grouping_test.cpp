/**
 * @file
 * Grouping strategy tests: exact round trips for all three strategies
 * and the hardware-relevant layout property of output-channel grouping
 * (a subvector spans d consecutive output channels).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/grouping.hpp"
#include "tensor/ops.hpp"

namespace mvq::core {
namespace {

Tensor
randomKernel(Shape shape, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor w(shape);
    w.fillNormal(rng, 0.0f, 1.0f);
    return w;
}

struct GroupCase
{
    Shape shape;
    std::int64_t d;
    Grouping g;
};

class GroupRoundTrip : public ::testing::TestWithParam<GroupCase>
{
};

TEST_P(GroupRoundTrip, UngroupInvertsGroup)
{
    const GroupCase gc = GetParam();
    Tensor w = randomKernel(gc.shape, 77);
    Tensor wr = groupWeights(w, gc.d, gc.g);
    EXPECT_EQ(wr.dim(0), groupCount(gc.shape, gc.d, gc.g));
    EXPECT_EQ(wr.dim(1), gc.d);
    Tensor back = ungroupWeights(wr, gc.shape, gc.d, gc.g);
    EXPECT_FLOAT_EQ(maxAbsDiff(w, back), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, GroupRoundTrip,
    ::testing::Values(
        GroupCase{Shape({16, 4, 3, 3}), 9, Grouping::KernelWise},
        GroupCase{Shape({16, 4, 3, 3}), 8, Grouping::OutputChannelWise},
        GroupCase{Shape({32, 8, 3, 3}), 16, Grouping::OutputChannelWise},
        GroupCase{Shape({16, 8, 3, 3}), 8, Grouping::InputChannelWise},
        GroupCase{Shape({8, 16, 1, 1}), 8, Grouping::OutputChannelWise},
        GroupCase{Shape({24, 6, 5, 5}), 8, Grouping::OutputChannelWise}));

TEST(Grouping, OutputChannelSubvectorLayout)
{
    // Element t of subvector row ((k/d)*C + c)*R*S + r*S + s must be
    // W[k0 + t, c, r, s] — d consecutive output channels (this is what
    // lets one CRF read feed d output channels of a tile).
    const Shape shape({16, 3, 3, 3});
    const std::int64_t d = 8;
    Tensor w = randomKernel(shape, 78);
    Tensor wr = groupWeights(w, d, Grouping::OutputChannelWise);
    for (std::int64_t k0 = 0; k0 < 16; k0 += d) {
        for (std::int64_t c = 0; c < 3; ++c) {
            for (std::int64_t r = 0; r < 3; ++r) {
                for (std::int64_t s = 0; s < 3; ++s) {
                    const std::int64_t row =
                        ((k0 / d) * 3 + c) * 9 + r * 3 + s;
                    for (std::int64_t t = 0; t < d; ++t) {
                        EXPECT_FLOAT_EQ(wr.at(row, t),
                                        w.at(k0 + t, c, r, s));
                    }
                }
            }
        }
    }
}

TEST(Grouping, KernelWiseLayout)
{
    const Shape shape({4, 2, 3, 3});
    Tensor w = randomKernel(shape, 79);
    Tensor wr = groupWeights(w, 9, Grouping::KernelWise);
    // Row k*C + c, column r*S + s.
    EXPECT_FLOAT_EQ(wr.at(3 * 2 + 1, 4), w.at(3, 1, 1, 1));
}

TEST(Grouping, DivisibilityChecks)
{
    Tensor w = randomKernel(Shape({10, 4, 3, 3}), 80);
    EXPECT_THROW(groupWeights(w, 8, Grouping::OutputChannelWise),
                 FatalError);
    EXPECT_THROW(groupWeights(w, 8, Grouping::KernelWise), FatalError);
    EXPECT_THROW(groupWeights(w, 8, Grouping::InputChannelWise),
                 FatalError);
}

TEST(Grouping, Names)
{
    EXPECT_EQ(groupingName(Grouping::KernelWise), "kernel-wise");
    EXPECT_EQ(groupingName(Grouping::OutputChannelWise),
              "output-channel-wise");
    EXPECT_EQ(groupingName(Grouping::InputChannelWise),
              "input-channel-wise");
}

} // namespace
} // namespace mvq::core
