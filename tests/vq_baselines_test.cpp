/**
 * @file
 * Baseline tests: ablation-case switch wiring, PQF permutation search
 * and un-permuted reconstruction, BGD weighted k-means, and PvQ uniform
 * quantization level counts.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/sparse_train.hpp"
#include "models/mini_models.hpp"
#include "nn/network.hpp"
#include "vq/bgd.hpp"
#include "vq/pqf.hpp"
#include "vq/uniform_quant.hpp"
#include "vq/vanilla_vq.hpp"

namespace mvq::vq {
namespace {

TEST(AblationCases, NamesAndSwitches)
{
    EXPECT_EQ(ablationCaseName(AblationCase::A_DenseCommonDense),
              "A (DW+CK+DR)");
    EXPECT_EQ(ablationCaseName(AblationCase::D_SparseMaskedSparse),
              "Ours (SW+MK+SR)");

    Rng rng(161);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{8, 32, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("conv", cc, rng);
    std::vector<nn::Conv2d *> targets{conv};

    core::MvqLayerConfig lc;
    lc.k = 16;
    lc.d = 16;
    lc.pattern = core::NmPattern{4, 16};
    core::ClusterOptions opts;

    // Case A: dense reconstruct, no mask storage.
    auto cm_a = runAblationCase(AblationCase::A_DenseCommonDense,
                                targets, lc, opts);
    EXPECT_TRUE(cm_a.dense_reconstruct);
    EXPECT_EQ(cm_a.storage().mask_bits, 0);
    EXPECT_EQ(cm_a.layers[0].cfg.pattern.n, 1);

    // Case D on pruned weights stores the real mask.
    core::oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
    auto cm_d = runAblationCase(AblationCase::D_SparseMaskedSparse,
                                targets, lc, opts);
    EXPECT_FALSE(cm_d.dense_reconstruct);
    EXPECT_GT(cm_d.storage().mask_bits, 0);
}

TEST(Pqf, PermutationCostNeverIncreases)
{
    Rng rng(162);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{8, 32, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("conv", cc, rng);

    const std::int64_t d = 8;
    std::vector<std::int64_t> identity(32);
    std::iota(identity.begin(), identity.end(), 0);
    const double before =
        permutationCost(conv->weight().value, identity, d);

    core::MvqLayerConfig lc;
    lc.k = 16;
    lc.d = d;
    PqfOptions opts;
    opts.search_steps = 500;
    PqfModel model = pqfCompress({conv}, lc, opts);
    const double after = permutationCost(conv->weight().value,
                                         model.permutations[0], d);
    EXPECT_LE(after, before + 1e-9);

    // Permutation is a bijection over channels.
    std::set<std::int64_t> seen(model.permutations[0].begin(),
                                model.permutations[0].end());
    EXPECT_EQ(seen.size(), 32u);
}

TEST(Pqf, ReconstructionUndoesPermutation)
{
    // With k = NG every subvector becomes its own codeword, so PQF must
    // reproduce the original weights exactly despite the permutation.
    Rng rng(163);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{4, 16, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("conv", cc, rng);
    Tensor original = conv->weight().value;

    core::MvqLayerConfig lc;
    lc.k = 16 * 4 * 9 / 8; // NG for d = 8
    lc.d = 8;
    lc.codebook_bits = 0; // exact codewords
    PqfOptions opts;
    opts.search_steps = 200;
    opts.kmeans.max_iters = 60;
    PqfModel model = pqfCompress({conv}, lc, opts);
    Tensor recon = model.reconstructLayer(0);
    EXPECT_LT(maxAbsDiff(recon, original), 1e-4f);
}

TEST(Bgd, WeightedKmeansFavorsHeavyRows)
{
    // Two clusters of rows; give one cluster huge weights — the
    // codeword must land (almost) exactly on the heavy cluster's mean.
    Tensor wr(Shape({8, 2}));
    for (std::int64_t j = 0; j < 4; ++j) {
        wr.at(j, 0) = 1.0f;
        wr.at(j, 1) = 1.0f;
    }
    for (std::int64_t j = 4; j < 8; ++j) {
        wr.at(j, 0) = 1.2f;
        wr.at(j, 1) = 0.8f;
    }
    std::vector<double> u = {100, 100, 100, 100, 0.01, 0.01, 0.01, 0.01};
    core::KmeansConfig cfg;
    cfg.k = 1;
    cfg.max_iters = 5;
    core::KmeansResult res = weightedKmeans(wr, u, cfg);
    EXPECT_NEAR(res.codebook.at(0, 0), 1.0f, 0.02f);
    EXPECT_NEAR(res.codebook.at(0, 1), 1.0f, 0.02f);
}

TEST(Bgd, EnergiesAndCompressRun)
{
    nn::ClassificationConfig dc;
    dc.classes = 4;
    dc.size = 12;
    dc.train_count = 64;
    dc.test_count = 16;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 4;
    mc.width = 8;
    auto net = models::miniResNet18(mc);

    core::MvqLayerConfig lc;
    lc.k = 16;
    lc.d = 8;
    auto targets = core::compressibleConvs(*net, lc, true);
    BgdOptions opts;
    opts.energy_batches = 2;
    auto energies = collectInputEnergies(*net, targets, data, opts);
    ASSERT_EQ(energies.size(), targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        ASSERT_EQ(static_cast<std::int64_t>(energies[i].size()),
                  targets[i]->config().in_channels);
        for (double e : energies[i])
            EXPECT_GE(e, 0.0);
    }

    auto cm = bgdCompress(targets, lc, opts, energies);
    EXPECT_TRUE(cm.dense_reconstruct);
    EXPECT_EQ(cm.layers.size(), targets.size());
    cm.applyTo(*net); // shape compatibility
}

TEST(Pvq, QuantizedLevelsBounded)
{
    Rng rng(164);
    Tensor w(Shape({256}));
    w.fillNormal(rng, 0.0f, 1.0f);
    uniformQuantize(w, 2);
    std::set<float> levels;
    for (std::int64_t i = 0; i < w.numel(); ++i)
        levels.insert(w[i]);
    EXPECT_LE(levels.size(), 4u); // 2 bits -> {-2s, -s, 0, s}
}

TEST(Pvq, TwoBitCollapsesAccuracyMoreThanEightBit)
{
    nn::ClassificationConfig dc;
    dc.classes = 6;
    dc.size = 12;
    dc.train_count = 240;
    dc.test_count = 80;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 6;
    mc.width = 8;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::trainClassifier(*net, data, tc);
    auto snapshot = nn::snapshotParameters(*net);

    core::MvqLayerConfig lc;
    lc.d = 8;
    auto targets = core::compressibleConvs(*net, lc, true);

    PvqOptions low;
    low.bits = 2;
    low.finetune_epochs = 1;
    PvqResult r2 = pvqCompressClassifier(*net, targets, data, low);
    EXPECT_DOUBLE_EQ(r2.compression_ratio, 16.0);

    nn::restoreParameters(*net, snapshot);
    PvqOptions high;
    high.bits = 8;
    high.finetune_epochs = 1;
    PvqResult r8 = pvqCompressClassifier(*net, targets, data, high);
    EXPECT_DOUBLE_EQ(r8.compression_ratio, 4.0);
    EXPECT_GE(r8.accuracy + 1e-9, r2.accuracy);
}

} // namespace
} // namespace mvq::vq
