/**
 * @file
 * Fused im2col->B-panel packing coverage: gemmIm2colRaw and
 * gemmSparseAIm2col against the materializing im2col + gemm composition
 * they replace — bit-identity (dense) and 1e-4 oracle parity (sparse)
 * for every ISA this host can execute, on both sides of the
 * small-problem crossover, over padded/strided/panel-straddling
 * geometries; 1-vs-4-thread memcmp; degenerate 0-output-dim panics; and
 * the layer-level MVQ_FUSED_CONV switch on Conv2d / CompressedConv2d
 * (grouped and strided).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"
#include "core/compressed_layer.hpp"
#include "core/nm_pruning.hpp"
#include "nn/compressed_conv2d.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

using simd::Isa;

struct IsaGuard
{
    simd::Isa saved = simd::activeIsa();
    ~IsaGuard() { simd::setIsa(saved); }
};

struct ThreadGuard
{
    ~ThreadGuard() { setNumThreads(0); }
};

struct FusedGuard
{
    bool saved = fusedConvEnabled();
    ~FusedGuard() { setFusedConvEnabled(saved); }
};

std::vector<Isa>
availableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (simd::isaAvailable(isa))
            out.push_back(isa);
    }
    return out;
}

/** Random [rows, cols] matrix with the compressed-layer 4:16 structure. */
Tensor
masked416Matrix(std::uint64_t seed, std::int64_t rows, std::int64_t cols)
{
    Rng rng(seed);
    return core::randomNmMatrix(rng, rows, cols, core::NmPattern{4, 16});
}

void
expectClose(const Tensor &ref, const Tensor &got, const char *what)
{
    ASSERT_EQ(ref.numel(), got.numel()) << what;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const float denom = std::max(1.0f, std::fabs(ref[i]));
        ASSERT_LE(std::fabs(ref[i] - got[i]) / denom, 1e-4f)
            << what << " elem " << i;
    }
}

/** NCHW input with batch 1 whose data() is the (0, c0=0) slab base. */
Tensor
randomInput(std::uint64_t seed, const ConvGeom &g)
{
    Rng rng(seed);
    Tensor x(Shape({1, g.in_c, g.in_h, g.in_w}));
    x.fillNormal(rng, 0.0f, 1.0f);
    return x;
}

/** Unfused oracle: materialize cols, run the dense-B gemm. */
Tensor
denseUnfused(const Tensor &a, const Tensor &x, const ConvGeom &g,
             float alpha = 1.0f, float beta = 0.0f, float cfill = 0.0f)
{
    const Tensor cols = im2col(x, 0, g);
    Tensor c(Shape({a.dim(0), cols.dim(1)}), cfill);
    gemmRaw(a.dim(0), cols.dim(1), a.dim(1), alpha, a.data(), a.dim(1),
            false, cols.data(), cols.dim(1), false, beta, c.data(),
            cols.dim(1));
    return c;
}

Tensor
denseFused(const Tensor &a, const Tensor &x, const ConvGeom &g,
           float alpha = 1.0f, float beta = 0.0f, float cfill = 0.0f)
{
    const Im2colB b{x.data(), g};
    Tensor c(Shape({a.dim(0), b.cols()}), cfill);
    gemmIm2colRaw(a.dim(0), alpha, a.data(), a.dim(1), b, beta, c.data(),
                  b.cols());
    return c;
}

void
expectBitIdentical(const Tensor &ref, const Tensor &got, const char *what)
{
    ASSERT_EQ(ref.shape(), got.shape()) << what;
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                             static_cast<std::size_t>(ref.numel())
                                 * sizeof(float)))
        << what;
}

TEST(FusedPack, DenseBitIdenticalToIm2colAllIsas)
{
    IsaGuard guard;
    // C=8, 3x3, pad 1 on 11x11 -> k=72, n=121; m=24 puts the problem well
    // past kGemmScalarFallbackMacs, so both sides run the blocked driver.
    const ConvGeom g{8, 11, 11, 3, 3, 1, 1};
    const Tensor x = randomInput(3, g);
    Rng rng(4);
    Tensor a(Shape({24, g.in_c * g.k_h * g.k_w}));
    a.fillNormal(rng, 0.0f, 1.0f);
    ASSERT_GT(a.dim(0) * a.dim(1) * g.outH() * g.outW(),
              kGemmScalarFallbackMacs);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        expectBitIdentical(denseUnfused(a, x, g), denseFused(a, x, g),
                           simd::isaName(isa));
    }
}

TEST(FusedPack, DenseBitIdenticalOnSmallProblemFallback)
{
    IsaGuard guard;
    // Tiny problem: both sides fall back to materialize + reference gemm.
    const ConvGeom g{2, 5, 5, 3, 3, 1, 0};
    const Tensor x = randomInput(5, g);
    Rng rng(6);
    Tensor a(Shape({4, g.in_c * g.k_h * g.k_w}));
    a.fillNormal(rng, 0.0f, 1.0f);
    ASSERT_LE(a.dim(0) * a.dim(1) * g.outH() * g.outW(),
              kGemmScalarFallbackMacs);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        expectBitIdentical(denseUnfused(a, x, g), denseFused(a, x, g),
                           simd::isaName(isa));
    }
}

TEST(FusedPack, DenseStridedPaddedGeometries)
{
    IsaGuard guard;
    // Geometry sweep: heavy padding (pad >= kernel reach so whole panel
    // rows are padding), stride 2 and 3 (the non-memcpy pack path),
    // non-square input, 1x1 kernel, and an n big enough to straddle
    // several nr-panels with a ragged final panel.
    const std::vector<ConvGeom> geoms = {
        {4, 9, 13, 3, 3, 2, 1},  // strided, non-square
        {3, 8, 8, 3, 3, 1, 3},   // pad wider than the kernel reach
        {6, 17, 17, 5, 5, 3, 2}, // large kernel, stride 3
        {8, 12, 12, 1, 1, 1, 0}, // 1x1: im2col is a pure copy
        {2, 21, 21, 3, 3, 1, 1}, // n = 441: ragged last nr-panel
    };
    for (std::size_t gi = 0; gi < geoms.size(); ++gi) {
        const ConvGeom &g = geoms[gi];
        const Tensor x = randomInput(10 + gi, g);
        Rng rng(20 + gi);
        Tensor a(Shape({16, g.in_c * g.k_h * g.k_w}));
        a.fillNormal(rng, 0.0f, 1.0f);
        for (Isa isa : availableIsas()) {
            ASSERT_TRUE(simd::setIsa(isa));
            expectBitIdentical(denseUnfused(a, x, g), denseFused(a, x, g),
                               simd::isaName(isa));
        }
    }
}

TEST(FusedPack, DenseAlphaBetaMatchUnfused)
{
    IsaGuard guard;
    const ConvGeom g{4, 10, 10, 3, 3, 1, 1};
    const Tensor x = randomInput(31, g);
    Rng rng(32);
    Tensor a(Shape({12, g.in_c * g.k_h * g.k_w}));
    a.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        expectBitIdentical(denseUnfused(a, x, g, 0.5f, 1.0f, 2.0f),
                           denseFused(a, x, g, 0.5f, 1.0f, 2.0f),
                           simd::isaName(isa));
    }
}

TEST(FusedPack, DeepKernelStraddlesKcBlocks)
{
    IsaGuard guard;
    // k = 40 * 9 = 360 > kGemmKC forces at least two KC blocks, so the
    // fused packer's (k0, kc) slicing of the virtual rows is exercised.
    const ConvGeom g{40, 8, 8, 3, 3, 1, 1};
    ASSERT_GT(g.in_c * g.k_h * g.k_w, simd::kGemmKC);
    const Tensor x = randomInput(41, g);
    Rng rng(42);
    Tensor a(Shape({16, g.in_c * g.k_h * g.k_w}));
    a.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        expectBitIdentical(denseUnfused(a, x, g), denseFused(a, x, g),
                           simd::isaName(isa));
    }
}

TEST(FusedPack, SparseMatchesUnfusedAndOracleAllIsas)
{
    IsaGuard guard;
    // C=16, 3x3 on 14x14 pad 1 -> k=144, n=196; 4:16 rows give
    // nnz*n = 32*36*196 well past the crossover (blocked path).
    const ConvGeom g{16, 14, 14, 3, 3, 1, 1};
    const Tensor x = randomInput(51, g);
    const std::int64_t k = g.in_c * g.k_h * g.k_w;
    const std::int64_t n = g.outH() * g.outW();
    Tensor a = masked416Matrix(52, 32, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    ASSERT_GT(sp.nnz() * n, kGemmScalarFallbackMacs);

    // Oracle: unblocked reference scan over the materialized cols.
    const Tensor cols = im2col(x, 0, g);
    Tensor c_oracle(Shape({32, n}));
    gemmSparseAReference(sp, cols, c_oracle);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_unfused(Shape({32, n}));
        gemmSparseARaw(sp, cols.data(), n, n, 1.0f, 0.0f, c_unfused.data(),
                       n);
        Tensor c_fused(Shape({32, n}));
        gemmSparseAIm2col(sp, Im2colB{x.data(), g}, 1.0f, 0.0f,
                          c_fused.data(), n);
        expectBitIdentical(c_unfused, c_fused, simd::isaName(isa));
        expectClose(c_oracle, c_fused, simd::isaName(isa));
    }
}

TEST(FusedPack, SparseSmallProblemFallbackBitIdentical)
{
    IsaGuard guard;
    const ConvGeom g{16, 7, 7, 3, 3, 1, 0};
    const Tensor x = randomInput(61, g);
    const std::int64_t k = g.in_c * g.k_h * g.k_w; // 144: multiple of M=16
    const std::int64_t n = g.outH() * g.outW();
    Tensor a = masked416Matrix(62, 4, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    ASSERT_LE(sp.nnz() * n, kGemmScalarFallbackMacs);

    const Tensor cols = im2col(x, 0, g);
    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_unfused(Shape({4, n}));
        gemmSparseARaw(sp, cols.data(), n, n, 1.0f, 0.0f, c_unfused.data(),
                       n);
        Tensor c_fused(Shape({4, n}));
        gemmSparseAIm2col(sp, Im2colB{x.data(), g}, 1.0f, 0.0f,
                          c_fused.data(), n);
        expectBitIdentical(c_unfused, c_fused, simd::isaName(isa));
    }
}

TEST(FusedPack, ThreadCountDeterministicPerIsa)
{
    IsaGuard guard;
    ThreadGuard tguard;
    const ConvGeom g{16, 13, 13, 3, 3, 1, 1};
    const Tensor x = randomInput(71, g);
    const std::int64_t k = g.in_c * g.k_h * g.k_w; // 144: multiple of M=16
    const std::int64_t n = g.outH() * g.outW();
    Rng rng(72);
    Tensor a(Shape({32, k}));
    a.fillNormal(rng, 0.0f, 1.0f);
    Tensor am = masked416Matrix(73, 32, k);
    const SparseRowMatrix sp = sparsifyRows(am);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setNumThreads(1);
        const Tensor d1 = denseFused(a, x, g);
        Tensor s1(Shape({32, n}));
        gemmSparseAIm2col(sp, Im2colB{x.data(), g}, 1.0f, 0.0f, s1.data(),
                          n);
        setNumThreads(4);
        const Tensor d4 = denseFused(a, x, g);
        Tensor s4(Shape({32, n}));
        gemmSparseAIm2col(sp, Im2colB{x.data(), g}, 1.0f, 0.0f, s4.data(),
                          n);
        expectBitIdentical(d1, d4, simd::isaName(isa));
        expectBitIdentical(s1, s4, simd::isaName(isa));
    }
}

TEST(FusedPack, DegenerateGeometryPanics)
{
    // Kernel larger than the padded input: outH() clamps to 0 and every
    // fused entry point must panic instead of packing a 0-column B.
    const ConvGeom g{1, 2, 5, 3, 3, 2, 0};
    ASSERT_EQ(g.outH(), 0);
    std::vector<float> slab(static_cast<std::size_t>(g.in_h * g.in_w),
                            1.0f);
    const Im2colB b{slab.data(), g};

    std::vector<float> buf(64, 0.0f);
    EXPECT_THROW(packBFromIm2col(b, 0, 0, 4, 8, 8, buf.data()),
                 PanicError);
    EXPECT_THROW(gemmIm2colRaw(2, 1.0f, buf.data(), 9, b, 0.0f, buf.data(),
                               4),
                 PanicError);

    SparseRowMatrix sp;
    sp.rows = 1;
    sp.cols = 9;
    sp.row_ptr = {0, 1};
    sp.col_idx = {0};
    sp.values = {1.0f};
    EXPECT_THROW(gemmSparseAIm2col(sp, b, 1.0f, 0.0f, buf.data(), 4),
                 PanicError);
}

TEST(FusedPack, SparseInnerDimMismatchPanics)
{
    const ConvGeom g{2, 6, 6, 3, 3, 1, 1};
    std::vector<float> slab(
        static_cast<std::size_t>(g.in_c * g.in_h * g.in_w), 1.0f);
    SparseRowMatrix sp; // cols = 4 != g rows = 18
    sp.rows = 1;
    sp.cols = 4;
    sp.row_ptr = {0, 1};
    sp.col_idx = {0};
    sp.values = {1.0f};
    std::vector<float> c(64, 0.0f);
    EXPECT_THROW(gemmSparseAIm2col(sp, Im2colB{slab.data(), g}, 1.0f, 0.0f,
                                   c.data(), 36),
                 PanicError);
}

TEST(FusedPack, Conv2dForwardFusedMatchesUnfused)
{
    IsaGuard iguard;
    FusedGuard fguard;
    // Grouped AND strided AND padded, batch 2 — the layer-level knob must
    // be a pure perf switch.
    Rng rng(81);
    nn::Conv2dConfig cc{8, 12, 3, 2, 1, 2, true};
    nn::Conv2d conv("conv", cc, rng);
    Tensor x(Shape({2, 8, 11, 11}));
    x.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setFusedConvEnabled(true);
        const Tensor fused = conv.forward(x, false);
        setFusedConvEnabled(false);
        const Tensor unfused = conv.forward(x, false);
        expectBitIdentical(unfused, fused, simd::isaName(isa));
    }
}

/** Build a clustered 4:16 compressed layer for the conv tests. */
struct CompressedFixture
{
    Shape shape;
    core::MvqLayerConfig cfg;
    core::CompressedLayer layer;
    core::Codebook cb;

    explicit CompressedFixture(Shape s, std::uint64_t seed)
        : shape(std::move(s))
    {
        cfg.k = 16;
        cfg.d = 16;
        cfg.pattern = core::NmPattern{4, 16};
        cfg.codebook_bits = 8;

        Rng rng(seed);
        Tensor w4(shape);
        w4.fillNormal(rng, 0.0f, 1.0f);
        Tensor wr = core::groupWeights(w4, cfg.d, cfg.grouping);
        core::Mask mask = core::nmMask(wr, cfg.pattern);
        core::applyMask(wr, mask);

        core::KmeansConfig kc;
        kc.k = cfg.k;
        const core::KmeansResult km = core::maskedKmeans(wr, mask, kc);
        cb.codewords = km.codebook;
        core::quantizeCodebook(cb, cfg.codebook_bits);
        layer = core::makeCompressedLayer("conv", shape, cfg, mask, km, 0);
    }
};

TEST(FusedPack, CompressedConv2dFusedMatchesUnfused)
{
    IsaGuard iguard;
    FusedGuard fguard;
    // Grouped (groups=2) and strided (stride 2, pad 1) compressed convs.
    CompressedFixture grouped(Shape({16, 2, 3, 3}), 91);
    const nn::CompressedConv2d conv_g(grouped.layer, grouped.cb, 1, 1, 2);
    Rng rng(92);
    Tensor xg(Shape({3, 4, 9, 9}));
    xg.fillNormal(rng, 0.0f, 1.0f);

    CompressedFixture strided(Shape({16, 8, 3, 3}), 93);
    const nn::CompressedConv2d conv_s(strided.layer, strided.cb, 2, 1);
    Tensor xs(Shape({2, 8, 12, 12}));
    xs.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setFusedConvEnabled(true);
        const Tensor fg = conv_g.forward(xg);
        const Tensor fs = conv_s.forward(xs);
        setFusedConvEnabled(false);
        expectBitIdentical(conv_g.forward(xg), fg, "grouped");
        expectBitIdentical(conv_s.forward(xs), fs, "strided");
    }
}

} // namespace
} // namespace mvq
