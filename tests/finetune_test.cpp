/**
 * @file
 * Codebook fine-tuning tests: the masked gradient aggregation of Eq. 6
 * on a hand example, and end-to-end accuracy recovery on a compressed
 * classifier.
 */

#include <gtest/gtest.h>

#include "core/finetune.hpp"
#include "core/pipeline.hpp"
#include "models/mini_models.hpp"
#include "nn/network.hpp"

namespace mvq::core {
namespace {

TEST(AggregateGrad, MaskedHandExample)
{
    // Two subvectors assigned to codeword 0; masks as in paper Fig. 5.
    Tensor grad(Shape({2, 4}));
    grad.at(0, 0) = 0.3f;
    grad.at(0, 1) = -0.1f;
    grad.at(0, 2) = 9.0f; // pruned: must be ignored
    grad.at(0, 3) = 9.0f; // pruned: must be ignored
    grad.at(1, 0) = 9.0f; // pruned
    grad.at(1, 1) = 0.1f;
    grad.at(1, 2) = 0.2f;
    grad.at(1, 3) = -0.4f;
    Mask mask = {1, 1, 0, 0, 0, 1, 1, 1};
    std::vector<std::int32_t> assign = {0, 0};

    Tensor g = aggregateCodewordGrad(grad, mask, assign, 2, true);
    EXPECT_FLOAT_EQ(g.at(0, 0), 0.3f);                  // only sub 0
    EXPECT_FLOAT_EQ(g.at(0, 1), (-0.1f + 0.1f) / 2.0f); // both
    EXPECT_FLOAT_EQ(g.at(0, 2), 0.2f);                  // only sub 1
    EXPECT_FLOAT_EQ(g.at(0, 3), -0.4f);
    // Codeword 1 received nothing.
    for (std::int64_t t = 0; t < 4; ++t)
        EXPECT_FLOAT_EQ(g.at(1, t), 0.0f);
}

TEST(AggregateGrad, UnmaskedAveragesEverything)
{
    Tensor grad(Shape({2, 2}));
    grad.at(0, 0) = 1.0f;
    grad.at(0, 1) = 2.0f;
    grad.at(1, 0) = 3.0f;
    grad.at(1, 1) = 4.0f;
    Mask mask = {1, 0, 0, 1}; // ignored when masked = false
    std::vector<std::int32_t> assign = {0, 0};
    Tensor g = aggregateCodewordGrad(grad, mask, assign, 1, false);
    EXPECT_FLOAT_EQ(g.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(g.at(0, 1), 3.0f);
}

TEST(Finetune, RecoversAccuracyAfterClustering)
{
    nn::ClassificationConfig dc;
    dc.classes = 6;
    dc.size = 12;
    dc.train_count = 360;
    dc.test_count = 120;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 6;
    mc.width = 8;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::trainClassifier(*net, data, tc);

    MvqLayerConfig lc;
    lc.k = 64;
    lc.d = 8;
    lc.pattern = NmPattern{2, 8};
    auto targets = compressibleConvs(*net, lc, true);
    SrSteConfig sc;
    sc.pattern = lc.pattern;
    sc.d = lc.d;
    sc.train.epochs = 1;
    srSteTrain(*net, targets, data, sc);

    ClusterOptions opts;
    CompressedModel cm = clusterLayers(targets, lc, opts);
    cm.applyTo(*net);
    const double acc_before =
        nn::evalClassifier(*net, data, data.testSet());

    FinetuneConfig fc;
    fc.epochs = 2;
    const double acc_after =
        finetuneCompressedClassifier(cm, *net, data, fc);

    EXPECT_GT(acc_after, acc_before - 1e-9)
        << "fine-tuning should not hurt";
    EXPECT_GT(acc_after, 50.0);

    // Codebooks stayed on the int8 grid.
    for (const auto &cb : cm.codebooks) {
        ASSERT_EQ(cb.qbits, 8);
        for (std::int64_t i = 0; i < cb.codewords.numel(); ++i) {
            const float q = cb.codewords[i] / cb.scale;
            EXPECT_NEAR(q, std::round(q), 1e-3f);
        }
    }

    // Model weights equal the reconstruction of the tuned codebooks.
    for (std::size_t i = 0; i < cm.layers.size(); ++i) {
        Tensor recon = cm.reconstructLayer(i);
        EXPECT_FLOAT_EQ(maxAbsDiff(recon, targets[i]->weight().value),
                        0.0f);
    }
}

TEST(Finetune, MaskedGradientsPreserveSparsity)
{
    nn::ClassificationConfig dc;
    dc.classes = 4;
    dc.size = 12;
    dc.train_count = 120;
    dc.test_count = 40;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 4;
    mc.width = 8;
    auto net = models::miniResNet18(mc);

    MvqLayerConfig lc;
    lc.k = 32;
    lc.d = 16;
    lc.pattern = NmPattern{4, 16};
    auto targets = compressibleConvs(*net, lc, true);
    oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
    ClusterOptions opts;
    CompressedModel cm = clusterLayers(targets, lc, opts);

    FinetuneConfig fc;
    fc.epochs = 1;
    finetuneCompressedClassifier(cm, *net, data, fc);

    // Pruned positions stay exactly zero after fine-tuning.
    for (std::size_t i = 0; i < cm.layers.size(); ++i) {
        const Mask mask = cm.layers[i].decodeMask();
        Tensor wr = groupWeights(targets[i]->weight().value, lc.d,
                                 lc.grouping);
        for (std::int64_t j = 0; j < wr.numel(); ++j) {
            if (!mask[static_cast<std::size_t>(j)]) {
                EXPECT_FLOAT_EQ(wr[j], 0.0f);
            }
        }
    }
}

} // namespace
} // namespace mvq::core
