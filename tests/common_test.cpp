/**
 * @file
 * Tests for the common substrate: logging semantics (fatal vs panic),
 * the deterministic RNG, and the table renderer used by every bench.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/table.hpp"

namespace mvq {
namespace {

TEST(Logging, FatalThrowsRuntimeFlavor)
{
    EXPECT_THROW(fatal("bad config ", 42), FatalError);
    try {
        fatal("value = ", 7, ", name = ", "x");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value = 7, name = x");
    }
}

TEST(Logging, PanicThrowsLogicFlavor)
{
    EXPECT_THROW(panic("invariant"), PanicError);
    // PanicError is a logic_error, FatalError a runtime_error.
    EXPECT_THROW(panic("x"), std::logic_error);
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, ConditionalHelpers)
{
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "nope"), FatalError);
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "nope"), PanicError);
}

TEST(Logging, QuietFlag)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    inform("this should not print");
    warn("nor this");
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
}

TEST(Rng, DeterministicStreams)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FLOAT_EQ(a.uniform(0.0f, 1.0f), b.uniform(0.0f, 1.0f));
        EXPECT_EQ(a.intIn(0, 1000), b.intIn(0, 1000));
    }
}

TEST(Rng, IntInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.intIn(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(8);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentSeeds)
{
    Rng rng(9);
    EXPECT_NE(rng.fork(), rng.fork());
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"A", "Long header"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| A    | Long header |"), std::string::npos);
    EXPECT_NE(out.find("| yyyy | 2           |"), std::string::npos);
}

TEST(Table, SeparatorAndWidthCheck)
{
    TextTable t({"A", "B"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    EXPECT_NO_THROW(t.render());
    EXPECT_THROW(t.addRow({"only one"}), FatalError);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::count(1234567), "1,234,567");
    EXPECT_EQ(TextTable::count(-42), "-42");
    EXPECT_EQ(TextTable::count(7), "7");
}

} // namespace
} // namespace mvq
