/**
 * @file
 * LZC cascade tests: exhaustive agreement with sorted set-bit positions
 * for all 8-bit masks, N:M mask behaviour, and cascade cost accounting.
 */

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "sim/lzc.hpp"

namespace mvq::sim {
namespace {

TEST(Lzc, FirstSetBit)
{
    EXPECT_EQ(lzcFirstSet(0), -1);
    EXPECT_EQ(lzcFirstSet(1), 0);
    EXPECT_EQ(lzcFirstSet(0b1000), 3);
    EXPECT_EQ(lzcFirstSet(0b1010), 1);
}

TEST(Lzc, ExhaustiveEightBitMasks)
{
    // For every 8-bit mask, the cascade must emit the set-bit positions
    // in ascending order, padded with -1.
    for (int m = 0; m < 256; ++m) {
        std::vector<std::uint8_t> bits(8);
        std::vector<int> expected;
        for (int i = 0; i < 8; ++i) {
            bits[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>((m >> i) & 1);
            if ((m >> i) & 1)
                expected.push_back(i);
        }
        const auto out = lzcEncode(bits, 8);
        ASSERT_EQ(out.size(), 8u);
        for (std::size_t i = 0; i < 8; ++i) {
            if (i < expected.size())
                EXPECT_EQ(out[i], expected[i]) << "mask " << m;
            else
                EXPECT_EQ(out[i], -1) << "mask " << m;
        }
    }
}

TEST(Lzc, CascadeDepthLimitsOutputs)
{
    std::vector<std::uint8_t> bits = {1, 1, 1, 1, 0, 0, 0, 0};
    const auto out = lzcEncode(bits, 2);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
}

TEST(Lzc, SixteenBitNmMask)
{
    // A 4:16 mask: the hardware uses Q = 4 cascade stages.
    std::vector<std::uint8_t> bits(16, 0);
    bits[2] = bits[7] = bits[9] = bits[15] = 1;
    const auto out = lzcEncode(bits, 4);
    EXPECT_EQ(out, (std::vector<int>{2, 7, 9, 15}));
}

TEST(Lzc, CascadeCost)
{
    const LzcCost cost = lzcCascadeCost(16, 4);
    EXPECT_EQ(cost.units, 4);
    EXPECT_EQ(cost.bits_per_unit, 4); // log2(16)
}

} // namespace
} // namespace mvq::sim
