/**
 * @file
 * Compressed-container tests: mask round trips through the codec,
 * reconstruction equivalence, Eq. 7 compression-ratio accounting against
 * hand-computed bit counts, and applyTo() name matching.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/compressed_layer.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"
#include "tensor/ops.hpp"

namespace mvq::core {
namespace {

/** Build a compressed layer by actually clustering a random kernel. */
struct Fixture
{
    Shape shape{Shape({32, 4, 3, 3})};
    MvqLayerConfig cfg;
    Tensor w4;
    Mask mask;
    KmeansResult km;
    CompressedLayer layer;
    Codebook cb;

    Fixture()
    {
        cfg.k = 16;
        cfg.d = 16;
        cfg.pattern = NmPattern{4, 16};
        cfg.codebook_bits = 8;

        Rng rng(131);
        w4 = Tensor(shape);
        w4.fillNormal(rng, 0.0f, 1.0f);
        Tensor wr = groupWeights(w4, cfg.d, cfg.grouping);
        mask = nmMask(wr, cfg.pattern);
        applyMask(wr, mask);

        KmeansConfig kc;
        kc.k = cfg.k;
        km = maskedKmeans(wr, mask, kc);
        cb.codewords = km.codebook;
        quantizeCodebook(cb, cfg.codebook_bits);

        layer = makeCompressedLayer("conv", shape, cfg, mask, km, 0);
    }
};

TEST(CompressedLayer, MaskDecodeRoundTrip)
{
    Fixture f;
    EXPECT_EQ(f.layer.decodeMask(), f.mask);
}

TEST(CompressedLayer, ReconstructMatchesGroupedReconstruction)
{
    Fixture f;
    Tensor via_layer = f.layer.reconstruct(f.cb);
    Tensor wr = reconstructGrouped(f.cb.codewords, f.km.assignments,
                                   f.mask);
    Tensor direct = ungroupWeights(wr, f.shape, f.cfg.d, f.cfg.grouping);
    EXPECT_FLOAT_EQ(maxAbsDiff(via_layer, direct), 0.0f);
}

TEST(CompressedLayer, DenseReconstructIgnoresMask)
{
    Fixture f;
    Tensor dense = f.layer.reconstructDense(f.cb);
    Tensor sparse = f.layer.reconstruct(f.cb);
    EXPECT_GE(sparse.countZeros(), dense.countZeros());
}

TEST(CompressedLayer, StorageAccountingMatchesHandComputation)
{
    Fixture f;
    const std::int64_t ng = f.shape.numel() / f.cfg.d; // 72
    StorageCost cost = f.layer.assignmentStorage();
    EXPECT_EQ(cost.weight_count, f.shape.numel());
    EXPECT_EQ(cost.assignment_bits, ng * 4);  // log2(16) = 4
    EXPECT_EQ(cost.mask_bits, ng * 11);       // C(16,4) -> 11 bits
    EXPECT_EQ(cost.codebook_bits, 0);         // counted at model level
}

TEST(CompressedLayer, Eq7CompressionRatio)
{
    Fixture f;
    CompressedModel cm;
    cm.layers.push_back(f.layer);
    cm.codebooks.push_back(f.cb);

    const std::int64_t ng = f.shape.numel() / f.cfg.d;
    const std::int64_t ba = ng * 4;
    const std::int64_t bm = ng * 11;
    const std::int64_t bc = f.cfg.k * f.cfg.d * 8;
    const double expected = static_cast<double>(f.shape.numel()) * 32.0
        / static_cast<double>(ba + bm + bc);
    EXPECT_NEAR(cm.compressionRatio(32), expected, 1e-9);

    StorageCost total = cm.storage();
    EXPECT_EQ(total.codebook_bits, bc);
    EXPECT_NEAR(total.bitsPerWeight(),
                static_cast<double>(ba + bm + bc)
                    / static_cast<double>(f.shape.numel()),
                1e-12);
}

TEST(CompressedLayer, DenseReconstructDropsMaskStorage)
{
    Fixture f;
    CompressedModel cm;
    cm.layers.push_back(f.layer);
    cm.codebooks.push_back(f.cb);
    cm.dense_reconstruct = true;
    EXPECT_EQ(cm.storage().mask_bits, 0);
}

TEST(CompressedLayer, SparseFlopsScaleWithPattern)
{
    Fixture f;
    CompressedLayer layer = f.layer;
    layer.dense_flops = 1000;
    EXPECT_EQ(layer.sparseFlops(), 250); // 4:16 keeps 1/4
}

TEST(CompressedModel, ApplyToMatchesByName)
{
    Fixture f;
    CompressedModel cm;
    cm.layers.push_back(f.layer);
    cm.codebooks.push_back(f.cb);

    Rng rng(132);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{4, 32, 3, 1, 1, 1, false};
    net.add<nn::Conv2d>("conv", cc, rng);
    cm.applyTo(net);
    Tensor expected = cm.reconstructLayer(0);
    EXPECT_FLOAT_EQ(
        maxAbsDiff(nn::convLayers(net)[0]->weight().value, expected),
        0.0f);

    nn::Sequential other("other");
    other.add<nn::Conv2d>("different", cc, rng);
    EXPECT_THROW(cm.applyTo(other), FatalError);
}

TEST(CompressedModel, CrosslayerCodebookCountedOnce)
{
    Fixture f;
    CompressedModel cm;
    cm.layers.push_back(f.layer);
    CompressedLayer second = f.layer;
    second.name = "conv2";
    cm.layers.push_back(second);
    cm.codebooks.push_back(f.cb); // shared: both layers use id 0

    const StorageCost cost = cm.storage();
    EXPECT_EQ(cost.codebook_bits, f.cb.storageBits());
    EXPECT_EQ(cost.weight_count, 2 * f.shape.numel());
}

TEST(CompressedLayer, MismatchedInputsRejected)
{
    Fixture f;
    KmeansResult bad = f.km;
    bad.assignments.pop_back();
    EXPECT_THROW(
        makeCompressedLayer("x", f.shape, f.cfg, f.mask, bad, 0),
        FatalError);
}

} // namespace
} // namespace mvq::core
