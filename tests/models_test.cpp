/**
 * @file
 * Model-zoo tests: full-size layer tables must reproduce the published
 * MAC and parameter counts of each architecture, and every mini model
 * must train-forward with the right shapes.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/pipeline.hpp"
#include "models/detector.hpp"
#include "models/layer_spec.hpp"
#include "models/mini_models.hpp"
#include "nn/network.hpp"

namespace mvq::models {
namespace {

struct SpecCase
{
    const char *name;
    double macs_g;    //!< expected GMACs (torchvision convention)
    double params_m;  //!< expected M parameters (conv + fc weights)
    double tol;       //!< relative tolerance
};

class ZooSpec : public ::testing::TestWithParam<SpecCase>
{
};

TEST_P(ZooSpec, MacsAndParamsMatchPublished)
{
    const SpecCase sc = GetParam();
    ModelSpec spec = modelSpecByName(sc.name);
    const double macs_g =
        static_cast<double>(spec.totalMacs()) / 1e9;
    const double params_m =
        static_cast<double>(spec.totalWeights()) / 1e6;
    EXPECT_NEAR(macs_g, sc.macs_g, sc.macs_g * sc.tol) << sc.name;
    EXPECT_NEAR(params_m, sc.params_m, sc.params_m * sc.tol) << sc.name;
}

// Published numbers (weights only, biases/BN excluded, 224x224 input).
INSTANTIATE_TEST_SUITE_P(
    Published, ZooSpec,
    ::testing::Values(
        SpecCase{"resnet18", 1.81, 11.68, 0.03},
        SpecCase{"resnet50", 4.09, 25.50, 0.03},
        SpecCase{"vgg16", 15.47, 138.34, 0.03},
        SpecCase{"alexnet", 0.71, 61.0, 0.05},
        SpecCase{"mobilenet_v1", 0.57, 4.2, 0.05},
        SpecCase{"mobilenet_v2", 0.30, 3.4, 0.08},
        SpecCase{"efficientnet_b0", 0.39, 5.3, 0.20}));

TEST(ZooSpec, ResNet18LayerStructure)
{
    ModelSpec spec = resnet18Spec();
    // conv1 + 16 block convs + 3 downsamples = 20 conv layers.
    EXPECT_EQ(spec.convs.size(), 20u);
    EXPECT_EQ(spec.fcs.size(), 1u);
    EXPECT_EQ(spec.convs.front().kernel, 7);
    EXPECT_EQ(spec.convs.front().outH(), 112);
    // VGG caveat input: biggest ifmap of ResNet-18 fits in L2.
    EXPECT_LT(spec.maxIfmapElems(), 2 * 1024 * 1024);
}

TEST(ZooSpec, Vgg16HasHugeEarlyFmaps)
{
    ModelSpec spec = vgg16Spec();
    EXPECT_EQ(spec.convs.size(), 13u);
    EXPECT_EQ(spec.fcs.size(), 3u);
    EXPECT_GT(spec.maxIfmapElems(), 2 * 1024 * 1024);
}

TEST(ZooSpec, DepthwiseFlagged)
{
    ModelSpec spec = mobilenetV1Spec();
    int dw = 0;
    for (const auto &c : spec.convs)
        dw += c.isDepthwise() ? 1 : 0;
    EXPECT_EQ(dw, 13);
}

TEST(ZooSpec, UnknownNameFatal)
{
    EXPECT_THROW(modelSpecByName("lenet"), FatalError);
    EXPECT_EQ(hardwareEvalSpecs().size(), 5u);
}

class MiniModelForward
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MiniModelForward, ProducesLogits)
{
    MiniConfig mc;
    mc.classes = 5;
    mc.width = 8;
    auto net = miniModelByName(GetParam(), mc);
    Rng rng(201);
    Tensor x(Shape({2, 3, 12, 12}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor out = net->forward(x, false);
    ASSERT_EQ(out.rank(), 2);
    EXPECT_EQ(out.dim(0), 2);
    EXPECT_EQ(out.dim(1), 5);
    EXPECT_GT(nn::parameterCount(*net), 1000);
}

INSTANTIATE_TEST_SUITE_P(Families, MiniModelForward,
                         ::testing::Values("resnet18", "resnet50",
                                           "vgg16", "alexnet",
                                           "mobilenet_v1",
                                           "mobilenet_v2",
                                           "efficientnet"));

TEST(MiniModels, DeepLabOutputsDenseLogits)
{
    MiniConfig mc;
    mc.classes = 5;
    mc.width = 8;
    auto net = miniDeepLab(mc);
    Rng rng(202);
    Tensor x(Shape({2, 3, 16, 16}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor out = net->forward(x, false);
    EXPECT_EQ(out.shape(), Shape({2, 5, 16, 16}));
}

TEST(MiniModels, DetectorHeadsAndTraining)
{
    nn::DetectionConfig dc;
    dc.train_count = 256;
    dc.test_count = 64;
    nn::DetectionDataset data(dc);

    MiniConfig mc;
    mc.classes = dc.classes;
    mc.width = 8;
    MiniDetector det(mc, dc.size);

    Rng rng(203);
    Tensor x(Shape({2, 3, dc.size, dc.size}));
    x.fillNormal(rng, 0.0f, 1.0f);
    DetectorOutput out = det.forwardAll(x, false);
    EXPECT_EQ(out.class_logits.shape(), Shape({2, dc.classes}));
    EXPECT_EQ(out.box_pred.shape(), Shape({2, 4}));
    EXPECT_EQ(out.mask_logits.shape(), Shape({2, 2, dc.size, dc.size}));

    const DetMetrics before = evalDetector(det, data, data.testSet());
    DetectorTrainConfig tc;
    tc.epochs = 8;
    trainDetector(det, data, tc);
    const DetMetrics after = evalDetector(det, data, data.testSet());
    EXPECT_GE(after.ap_bb, before.ap_bb);
    EXPECT_GT(after.ap_bb, 15.0) << "detector should learn something";

    // The Layer facade is traversal-only.
    EXPECT_THROW(det.forward(x, false), PanicError);
    EXPECT_FALSE(nn::convLayers(det.backbone()).empty());
}

TEST(MiniModels, ChannelsAreGroupable)
{
    // Every mini model must expose convs groupable at d = 8 (and the
    // ResNets at d = 16) so the compression benches work unchanged.
    MiniConfig mc;
    mc.width = 16;
    for (const char *name : {"resnet18", "resnet50", "vgg16"}) {
        auto net = miniModelByName(name, mc);
        core::MvqLayerConfig lc;
        lc.d = 16;
        EXPECT_FALSE(core::compressibleConvs(*net, lc, true).empty())
            << name;
    }
    for (const char *name : {"mobilenet_v1", "mobilenet_v2",
                             "efficientnet", "alexnet"}) {
        auto net = miniModelByName(name, mc);
        core::MvqLayerConfig lc;
        lc.d = 8;
        EXPECT_FALSE(core::compressibleConvs(*net, lc, true).empty())
            << name;
    }
}

} // namespace
} // namespace mvq::models
