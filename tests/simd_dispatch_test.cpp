/**
 * @file
 * SIMD runtime-dispatch coverage: detection sanity, forced-scalar
 * bit-exactness against the gemmReference oracle, scalar-vs-vector parity
 * for every ISA this host can execute (all four gemm transpose cases
 * within tolerance), and cross-ISA agreement of masked k-means
 * assignments on N:M-masked inputs through both the sparse compressed-row
 * and full-row dense kernel variants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"
#include "core/masked_kmeans.hpp"
#include "core/nm_pruning.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

using simd::Isa;

/** Restore whatever kernel table was active (startup resolution may have
 *  honoured an MVQ_SIMD override) when a test ends. */
struct IsaGuard
{
    simd::Isa saved = simd::activeIsa();
    ~IsaGuard() { simd::setIsa(saved); }
};

std::vector<Isa>
availableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (simd::isaAvailable(isa))
            out.push_back(isa);
    }
    return out;
}

Tensor
randomMat(Rng &rng, std::int64_t r, std::int64_t c)
{
    Tensor t(Shape({r, c}));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

TEST(SimdDispatch, DetectionSanity)
{
    IsaGuard guard;
    EXPECT_TRUE(simd::isaAvailable(Isa::Scalar));
    EXPECT_TRUE(simd::isaAvailable(simd::bestAvailableIsa()));
    EXPECT_TRUE(simd::isaAvailable(simd::activeIsa()));
    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        EXPECT_EQ(simd::activeIsa(), isa);
        EXPECT_STREQ(simd::kernels().name, simd::isaName(isa));
        EXPECT_GE(simd::kernels().mr, 1);
        EXPECT_LE(simd::kernels().mr, simd::kMaxGemmMr);
        EXPECT_GE(simd::kernels().nr, 1);
        EXPECT_LE(simd::kernels().nr, simd::kMaxGemmNr);
    }
    // An ISA this build/host can't run is refused and leaves the active
    // table untouched.
    simd::setIsa(Isa::Scalar);
    for (Isa isa : {Isa::Avx2, Isa::Neon}) {
        if (!simd::isaAvailable(isa)) {
            EXPECT_FALSE(simd::setIsa(isa));
            EXPECT_EQ(simd::activeIsa(), Isa::Scalar);
        }
    }
}

TEST(SimdDispatch, ForcedScalarGemmBitExactVsReference)
{
    IsaGuard guard;
    ASSERT_TRUE(simd::setIsa(Isa::Scalar));

    // The scalar micro-kernel reproduces gemmReference's per-element
    // accumulation order exactly when a single KC block covers the whole
    // k dimension (k <= 256), alpha is pre-applied identically (the
    // non-transposed reference path), and beta zeroes C — so the blocked
    // path must be bit-identical, not merely close. Sizes exceed the
    // scalar-fallback MAC threshold so the packed path actually runs.
    for (auto [m, n, k] : {std::tuple<std::int64_t, std::int64_t,
                                      std::int64_t>{70, 66, 130},
                           {64, 64, 64}, {33, 129, 200}}) {
        ASSERT_GT(m * n * k, kGemmScalarFallbackMacs);
        Rng rng(99);
        Tensor a = randomMat(rng, m, k);
        Tensor b = randomMat(rng, k, n);
        Tensor c_ref(Shape({m, n}));
        Tensor c_opt(Shape({m, n}));
        gemmReference(a, false, b, false, c_ref, 1.0f, 0.0f);
        gemm(a, false, b, false, c_opt, 1.0f, 0.0f);
        EXPECT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                                 static_cast<std::size_t>(m * n)
                                     * sizeof(float)))
            << "m=" << m << " n=" << n << " k=" << k;
    }
}

TEST(SimdDispatch, VectorGemmMatchesScalarAllTransposeCases)
{
    IsaGuard guard;
    const std::int64_t m = 67, n = 41, k = 300; // ragged tiles, 2 KC blocks
    for (Isa isa : availableIsas()) {
        if (isa == Isa::Scalar)
            continue;
        for (bool ta : {false, true}) {
            for (bool tb : {false, true}) {
                Rng rng(7);
                Tensor a = ta ? randomMat(rng, k, m) : randomMat(rng, m, k);
                Tensor b = tb ? randomMat(rng, n, k) : randomMat(rng, k, n);
                Tensor c0 = randomMat(rng, m, n);

                ASSERT_TRUE(simd::setIsa(Isa::Scalar));
                Tensor c_s = c0;
                gemm(a, ta, b, tb, c_s, 0.5f, 1.0f);
                ASSERT_TRUE(simd::setIsa(isa));
                Tensor c_v = c0;
                gemm(a, ta, b, tb, c_v, 0.5f, 1.0f);

                for (std::int64_t i = 0; i < m * n; ++i) {
                    const float denom =
                        std::max(1.0f, std::fabs(c_s[i]));
                    EXPECT_LE(std::fabs(c_s[i] - c_v[i]) / denom, 1e-4f)
                        << simd::isaName(isa) << " ta=" << ta
                        << " tb=" << tb << " elem " << i;
                }
            }
        }
    }
}

/** Run one maskedAssign sweep under the given ISA. */
std::vector<std::int32_t>
assignWithIsa(Isa isa, const Tensor &wr, const std::vector<float> &mask01,
              const Tensor &cb)
{
    EXPECT_TRUE(simd::setIsa(isa));
    std::vector<std::int32_t> assign(
        static_cast<std::size_t>(wr.dim(0)), 0);
    core::maskedAssign(wr, mask01, cb, assign);
    return assign;
}

TEST(SimdDispatch, MaskedAssignIdenticalAcrossIsas)
{
    IsaGuard guard;
    const std::int64_t ng = 2048;
    const std::int64_t k = 64;

    // 4:16 drives the sparse compressed-row kernel (4 * ratio <= 16);
    // 12:16 drives the full-row dense kernel (12 * ratio > 16).
    for (int keep : {4, 12}) {
        Rng rng(11);
        Tensor wr(Shape({ng, 16}));
        wr.fillNormal(rng, 0.0f, 1.0f);
        const core::Mask mask = core::nmMask(wr, core::NmPattern{keep, 16});
        core::applyMask(wr, mask);
        const std::vector<float> mask01 = core::maskToFloat(mask);
        Tensor cb(Shape({k, 16}));
        cb.fillNormal(rng, 0.0f, 1.0f);

        const bool sparse_path =
            keep * core::kAssignSparseKeepRatio <= 16;
        EXPECT_EQ(sparse_path, keep == 4);

        const auto ref = assignWithIsa(Isa::Scalar, wr, mask01, cb);
        for (Isa isa : availableIsas()) {
            if (isa == Isa::Scalar)
                continue;
            const auto got = assignWithIsa(isa, wr, mask01, cb);
            EXPECT_EQ(ref, got)
                << simd::isaName(isa) << " keep=" << keep
                << (sparse_path ? " (sparse path)" : " (dense path)");
        }
    }
}

TEST(SimdDispatch, MaskedAssignDeterministicAcrossThreadCounts)
{
    IsaGuard guard;
    struct ThreadGuard
    {
        ~ThreadGuard() { setNumThreads(0); }
    } tguard;

    const std::int64_t ng = 1024;
    Rng rng(3);
    Tensor wr(Shape({ng, 16}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    const core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    const std::vector<float> mask01 = core::maskToFloat(mask);
    Tensor cb(Shape({64, 16}));
    cb.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        setNumThreads(1);
        const auto one = assignWithIsa(isa, wr, mask01, cb);
        setNumThreads(4);
        const auto four = assignWithIsa(isa, wr, mask01, cb);
        EXPECT_EQ(one, four) << simd::isaName(isa);
    }
}

} // namespace
} // namespace mvq
