/**
 * @file
 * Synthetic dataset tests: determinism, label ranges, batch assembly,
 * and detection/segmentation ground-truth consistency.
 */

#include <gtest/gtest.h>

#include "nn/dataset.hpp"
#include "tensor/ops.hpp"

namespace mvq::nn {
namespace {

TEST(ClassificationData, DeterministicAcrossInstances)
{
    ClassificationConfig cfg;
    cfg.train_count = 40;
    cfg.test_count = 10;
    ClassificationDataset a(cfg);
    ClassificationDataset b(cfg);
    ASSERT_EQ(a.trainSet().size(), 40u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a.trainSet()[i].label, b.trainSet()[i].label);
        EXPECT_FLOAT_EQ(
            maxAbsDiff(a.trainSet()[i].image, b.trainSet()[i].image),
            0.0f);
    }
}

TEST(ClassificationData, SeedChangesData)
{
    ClassificationConfig cfg;
    cfg.train_count = 10;
    cfg.test_count = 5;
    ClassificationDataset a(cfg);
    cfg.seed = 12345;
    ClassificationDataset b(cfg);
    EXPECT_GT(maxAbsDiff(a.trainSet()[0].image, b.trainSet()[0].image),
              0.0f);
}

TEST(ClassificationData, LabelsCoverAllClasses)
{
    ClassificationConfig cfg;
    cfg.classes = 7;
    cfg.train_count = 70;
    cfg.test_count = 14;
    ClassificationDataset data(cfg);
    std::vector<int> counts(7, 0);
    for (const auto &s : data.trainSet()) {
        ASSERT_GE(s.label, 0);
        ASSERT_LT(s.label, 7);
        ++counts[static_cast<std::size_t>(s.label)];
    }
    for (int c : counts)
        EXPECT_EQ(c, 10);
}

TEST(ClassificationData, BatchAssembly)
{
    ClassificationConfig cfg;
    cfg.train_count = 8;
    cfg.test_count = 4;
    ClassificationDataset data(cfg);
    Tensor batch = data.batchImages(data.trainSet(), {0, 3, 5});
    EXPECT_EQ(batch.dim(0), 3);
    EXPECT_EQ(batch.dim(1), cfg.channels);
    auto labels = data.batchLabels(data.trainSet(), {0, 3, 5});
    EXPECT_EQ(labels.size(), 3u);
    // Row 1 of the batch equals sample 3.
    const auto &img = data.trainSet()[3].image;
    const std::int64_t chw = img.numel();
    for (std::int64_t i = 0; i < chw; ++i)
        EXPECT_FLOAT_EQ(batch[chw + i], img[i]);
}

TEST(SegmentationData, LabelsMatchGeometry)
{
    SegmentationConfig cfg;
    cfg.train_count = 20;
    cfg.test_count = 5;
    SegmentationDataset data(cfg);
    for (const auto &s : data.trainSet()) {
        ASSERT_EQ(s.labels.size(),
                  static_cast<std::size_t>(cfg.size * cfg.size));
        bool has_fg = false;
        for (int l : s.labels) {
            ASSERT_GE(l, 0);
            ASSERT_LT(l, cfg.classes);
            has_fg |= l > 0;
        }
        EXPECT_TRUE(has_fg) << "every image contains an object";
    }
}

TEST(DetectionData, BoxAndMaskConsistent)
{
    DetectionConfig cfg;
    cfg.train_count = 20;
    cfg.test_count = 5;
    DetectionDataset data(cfg);
    for (const auto &s : data.trainSet()) {
        EXPECT_GT(s.box.area(), 0.0f);
        // Mask pixel count equals the box area.
        std::int64_t mask_px = 0;
        for (int m : s.mask)
            mask_px += m;
        EXPECT_FLOAT_EQ(static_cast<float>(mask_px), s.box.area());
    }
}

TEST(DetectionData, BoxIou)
{
    Box a{0, 0, 4, 4};
    Box b{2, 2, 6, 6};
    // Intersection 2x2 = 4; union 16 + 16 - 4 = 28.
    EXPECT_NEAR(boxIou(a, b), 4.0f / 28.0f, 1e-6f);
    EXPECT_FLOAT_EQ(boxIou(a, a), 1.0f);
    Box c{10, 10, 12, 12};
    EXPECT_FLOAT_EQ(boxIou(a, c), 0.0f);
}

TEST(SmoothField, ShapeAndDeterminism)
{
    Rng r1(5), r2(5);
    Tensor a = smoothField(r1, 3, 16);
    Tensor b = smoothField(r2, 3, 16);
    EXPECT_EQ(a.shape(), Shape({3, 16, 16}));
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 0.0f);
}

} // namespace
} // namespace mvq::nn
