/**
 * @file
 * Hammer tests for the racy-by-design surfaces the serving runtime will
 * put under concurrent load: first-touch SIMD dispatch resolution,
 * first-touch env-knob reads, the per-(layer,groups) packed-operand
 * caches of both artifact backends, shared-operand forward passes, and
 * concurrent external callers of the thread pool. Every test asserts a
 * functional property (one cache entry, bit-identical outputs, correct
 * sums); the TSan tier (MVQ_SANITIZE=thread, see docs/TOOLING.md) is what
 * turns the hammering itself into a race detector. Tests are declared in
 * first-touch order: the dispatch and knob tests must run before anything
 * else in this binary resolves them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/simd_dispatch.hpp"
#include "core/io/mmap_artifact.hpp"
#include "core/io/model_artifact.hpp"
#include "core/io/stream_artifact.hpp"
#include "mvqi_test_util.hpp"
#include "nn/compressed_conv2d.hpp"
#include "tensor/ops.hpp"

namespace mvq::core {
namespace {

/** Threads used by each hammer (on top of whatever MVQ_NUM_THREADS the
 *  pool itself runs with — external callers, not pool workers). */
constexpr int kHammerThreads = 8;

/** Launch `n` copies of fn(thread_index) and join them all. */
void
hammer(int n, const std::function<void(int)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back([&fn, t] { fn(t); });
    for (auto &th : threads)
        th.join();
}

bool
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
        && std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) * sizeof(float))
            == 0;
}

// Declared first on purpose: within this binary these are the genuine
// first touches of the dispatch table and the knob caches, so N threads
// really do race the lazy initialization TSan is watching.

TEST(Concurrency, FirstTouchSimdDispatchResolvesOnce)
{
    std::vector<const simd::Kernels *> seen(kHammerThreads, nullptr);
    hammer(kHammerThreads, [&](int t) {
        for (int i = 0; i < 64; ++i) {
            const simd::Kernels &k = simd::kernels();
            if (i == 0)
                seen[static_cast<std::size_t>(t)] = &k;
            ASSERT_EQ(&k, seen[static_cast<std::size_t>(t)]);
        }
    });
    for (int t = 1; t < kHammerThreads; ++t)
        EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
    EXPECT_NE(seen[0], nullptr);
}

TEST(Concurrency, FirstTouchKnobReadsAgreeAcrossThreads)
{
    // Each thread resolves every knob repeatedly; the registry caches the
    // first read, so all threads must observe identical values even when
    // they race the very first resolution.
    std::vector<int> fused(kHammerThreads, -1);
    std::vector<int> multirow(kHammerThreads, -1);
    std::vector<std::int64_t> nthreads(kHammerThreads, -1);
    std::vector<std::string> simd_str(kHammerThreads);
    hammer(kHammerThreads, [&](int t) {
        for (int i = 0; i < 64; ++i) {
            const bool f = fusedConvEnabled();
            const bool m = sparseMultiRowEnabled();
            const std::int64_t n = env::int_("MVQ_NUM_THREADS", 0);
            const std::string s = env::str("MVQ_SIMD", "");
            if (i == 0) {
                fused[static_cast<std::size_t>(t)] = f ? 1 : 0;
                multirow[static_cast<std::size_t>(t)] = m ? 1 : 0;
                nthreads[static_cast<std::size_t>(t)] = n;
                simd_str[static_cast<std::size_t>(t)] = s;
            }
            ASSERT_EQ(f ? 1 : 0, fused[static_cast<std::size_t>(t)]);
            ASSERT_EQ(m ? 1 : 0, multirow[static_cast<std::size_t>(t)]);
            ASSERT_EQ(n, nthreads[static_cast<std::size_t>(t)]);
            ASSERT_EQ(s, simd_str[static_cast<std::size_t>(t)]);
        }
    });
    for (int t = 1; t < kHammerThreads; ++t) {
        EXPECT_EQ(fused[0], fused[static_cast<std::size_t>(t)]);
        EXPECT_EQ(multirow[0], multirow[static_cast<std::size_t>(t)]);
        EXPECT_EQ(nthreads[0], nthreads[static_cast<std::size_t>(t)]);
        EXPECT_EQ(simd_str[0], simd_str[static_cast<std::size_t>(t)]);
    }
}

TEST(Concurrency, EnvHelpTextEnumeratesEveryKnob)
{
    const std::string help = env::helpText();
    for (const env::Knob &k : env::knownKnobs())
        EXPECT_NE(help.find(k.name), std::string::npos) << k.name;
}

class ConcurrencyArtifactTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        model_ = makeGoldenModel();
        stream_path_ = "/tmp/mvq_concurrency_test.mvq";
        image_path_ = "/tmp/mvq_concurrency_test.mvqi";
        io::saveArtifact(model_, stream_path_, io::ArtifactFormat::Stream);
        io::saveArtifact(model_, image_path_, io::ArtifactFormat::Mvqi,
                         goldenWriteOptions());
    }

    void
    TearDown() override
    {
        std::remove(stream_path_.c_str());
        std::remove(image_path_.c_str());
    }

    CompressedModel model_;
    std::string stream_path_;
    std::string image_path_;
};

TEST_F(ConcurrencyArtifactTest, PackedOperandsCacheHitsShareOneEntry)
{
    const io::MmapArtifact art(image_path_);
    const std::int64_t layers = art.layerCount();
    // [thread][layer] -> the operand set that thread observed first.
    std::vector<std::vector<io::SharedOperands>> seen(
        static_cast<std::size_t>(kHammerThreads));
    hammer(kHammerThreads, [&](int t) {
        auto &mine = seen[static_cast<std::size_t>(t)];
        mine.resize(static_cast<std::size_t>(layers));
        for (int i = 0; i < 32; ++i) {
            for (std::int64_t l = 0; l < layers; ++l) {
                io::SharedOperands ops = art.packedOperands(l);
                ASSERT_NE(ops.get(), nullptr);
                if (i == 0)
                    mine[static_cast<std::size_t>(l)] = ops;
                // Cache coherence: every hit on (layer, baked groups)
                // returns the one entry built by whichever thread won
                // the first touch.
                ASSERT_EQ(ops.get(),
                          mine[static_cast<std::size_t>(l)].get());
            }
        }
    });
    for (std::int64_t l = 0; l < layers; ++l)
        for (int t = 1; t < kHammerThreads; ++t)
            EXPECT_EQ(seen[0][static_cast<std::size_t>(l)].get(),
                      seen[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(l)]
                              .get());
}

TEST_F(ConcurrencyArtifactTest, StreamPackedOperandsCacheHitsShareOneEntry)
{
    const io::StreamArtifact art(stream_path_);
    std::vector<io::SharedOperands> seen(
        static_cast<std::size_t>(kHammerThreads));
    hammer(kHammerThreads, [&](int t) {
        for (int i = 0; i < 32; ++i) {
            io::SharedOperands ops = art.packedOperands(0);
            ASSERT_NE(ops.get(), nullptr);
            if (i == 0)
                seen[static_cast<std::size_t>(t)] = ops;
            ASSERT_EQ(ops.get(), seen[static_cast<std::size_t>(t)].get());
        }
    });
    for (int t = 1; t < kHammerThreads; ++t)
        EXPECT_EQ(seen[0].get(), seen[static_cast<std::size_t>(t)].get());
}

TEST_F(ConcurrencyArtifactTest, ConcurrentModelMaterializationIsStable)
{
    const io::MmapArtifact art(image_path_);
    std::vector<const CompressedModel *> seen(
        static_cast<std::size_t>(kHammerThreads), nullptr);
    hammer(kHammerThreads, [&](int t) {
        const CompressedModel &m = art.model();
        seen[static_cast<std::size_t>(t)] = &m;
        ASSERT_EQ(m.layers.size(), model_.layers.size());
    });
    for (int t = 1; t < kHammerThreads; ++t)
        EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
}

TEST_F(ConcurrencyArtifactTest, SharedOperandForwardsAreBitIdentical)
{
    const auto art = io::openArtifact(image_path_);
    const Shape ws = art->layerShape(0);
    const nn::CompressedConv2d conv(art->layerName(0), ws,
                                    art->packedOperands(0), 1, 1);
    Tensor x(Shape({2, ws.dim(1), 6, 6}));
    Rng rng(1234);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Tensor ref = conv.forward(x);
    // N serving threads share one conv instance (and thus one injected
    // operand set); forward is const and must stay bit-identical no
    // matter how the calls interleave.
    hammer(kHammerThreads, [&](int) {
        for (int i = 0; i < 4; ++i) {
            const Tensor got = conv.forward(x);
            ASSERT_TRUE(tensorsBitIdentical(ref, got));
        }
    });
}

TEST_F(ConcurrencyArtifactTest, ConcurrentOpensOfOneImageAgree)
{
    // Reference through a serially opened artifact.
    const auto ref_art = io::openArtifact(image_path_);
    const Shape ws = ref_art->layerShape(0);
    Tensor x(Shape({1, ws.dim(1), 5, 5}));
    Rng rng(77);
    x.fillNormal(rng, 0.0f, 1.0f);
    const nn::CompressedConv2d ref_conv(ref_art->layerName(0), ws,
                                        ref_art->packedOperands(0), 1, 1);
    const Tensor ref = ref_conv.forward(x);
    hammer(kHammerThreads, [&](int) {
        const auto art = io::openArtifact(image_path_);
        const nn::CompressedConv2d conv(art->layerName(0),
                                        art->layerShape(0),
                                        art->packedOperands(0), 1, 1);
        const Tensor got = conv.forward(x);
        ASSERT_TRUE(tensorsBitIdentical(ref, got));
    });
}

TEST(Concurrency, ExternalParallelForCallersSerializeSafely)
{
    // Serving threads are *callers* of the shared pool, not workers in
    // it; concurrent run() calls must queue up without corrupting each
    // other's chunk counters.
    constexpr std::int64_t kN = 4096;
    std::vector<std::int64_t> sums(
        static_cast<std::size_t>(kHammerThreads), 0);
    hammer(kHammerThreads, [&](int t) {
        for (int rep = 0; rep < 8; ++rep) {
            std::vector<std::int64_t> partial(
                static_cast<std::size_t>(chunkCount(0, kN, 64)), 0);
            parallelForChunks(
                0, kN, 64,
                [&partial](std::int64_t c, std::int64_t b, std::int64_t e) {
                    std::int64_t s = 0;
                    for (std::int64_t i = b; i < e; ++i)
                        s += i;
                    partial[static_cast<std::size_t>(c)] = s;
                });
            std::int64_t total = 0;
            for (std::int64_t s : partial)
                total += s;
            ASSERT_EQ(total, kN * (kN - 1) / 2);
            sums[static_cast<std::size_t>(t)] = total;
        }
    });
    for (int t = 0; t < kHammerThreads; ++t)
        EXPECT_EQ(sums[static_cast<std::size_t>(t)], kN * (kN - 1) / 2);
}

} // namespace
} // namespace mvq::core
