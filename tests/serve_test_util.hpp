/**
 * @file
 * Shared helpers for the serving tests and bench: a deterministic
 * *chainable* compressed model (layer 0's output channels feed layer 1's
 * input channels, so CompressedNet can run it end to end with pad=1
 * "same" geometry), in the byte-stable integer-fraction style of
 * mvqi_test_util.hpp, plus the matching serve-side plumbing.
 */

#ifndef MVQ_TESTS_SERVE_TEST_UTIL_HPP
#define MVQ_TESTS_SERVE_TEST_UTIL_HPP

#include <cstdint>

#include "core/compressed_layer.hpp"
#include "core/io/mvqi_format.hpp"
#include "core/mask_codec.hpp"
#include "core/nm_pruning.hpp"

namespace mvq::core {

/**
 * Deterministic two-layer chainable model: conv s0 [16, 8, 3, 3] (4:16)
 * feeds conv s1 [16, 16, 3, 3] (2:4), both groups=1, both on one int8
 * codebook. With stride 1 / pad 1 an [8, H, W] image flows through both
 * layers at constant spatial size. Every float is (small integer) * 2^-2,
 * so artifacts serialize byte-identically across compilers.
 */
inline CompressedModel
makeServeModel()
{
    CompressedModel model;

    {
        Codebook cb;
        cb.qbits = 8;
        cb.scale = 0.25f;
        cb.codewords = Tensor(Shape({32, 16}));
        for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
            cb.codewords[i] = static_cast<float>((i * 11) % 19 - 9) * 0.25f;
        model.codebooks.push_back(std::move(cb));
    }

    {
        CompressedLayer l;
        l.name = "s0";
        l.weight_shape = Shape({16, 8, 3, 3});
        l.cfg.k = 32;
        l.cfg.d = 16;
        l.cfg.pattern = NmPattern{4, 16};
        l.cfg.grouping = Grouping::OutputChannelWise;
        l.cfg.codebook_bits = 8;
        l.codebook_id = 0;
        l.dense_flops = 2 * l.weight_shape.numel();
        const std::int64_t ng = l.weight_shape.numel() / l.cfg.d;
        const MaskCodec codec(l.cfg.pattern);
        for (std::int64_t j = 0; j < ng; ++j)
            l.assignments.push_back(
                static_cast<std::int32_t>((j * 7 + 3) % l.cfg.k));
        const std::int64_t codes = ng * (l.cfg.d / l.cfg.pattern.m);
        for (std::int64_t j = 0; j < codes; ++j)
            l.mask_codes.push_back(static_cast<std::uint32_t>(
                (j * 113u + 5u) % codec.codeCount()));
        model.layers.push_back(std::move(l));
    }
    {
        CompressedLayer l;
        l.name = "s1";
        l.weight_shape = Shape({16, 16, 3, 3});
        l.cfg.k = 32;
        l.cfg.d = 16;
        l.cfg.pattern = NmPattern{2, 4};
        l.cfg.grouping = Grouping::OutputChannelWise;
        l.cfg.codebook_bits = 8;
        l.codebook_id = 0;
        l.dense_flops = 2 * l.weight_shape.numel();
        const std::int64_t ng = l.weight_shape.numel() / l.cfg.d;
        const MaskCodec codec(l.cfg.pattern);
        for (std::int64_t j = 0; j < ng; ++j)
            l.assignments.push_back(
                static_cast<std::int32_t>((j * 5 + 1) % l.cfg.k));
        const std::int64_t codes = ng * (l.cfg.d / l.cfg.pattern.m);
        for (std::int64_t j = 0; j < codes; ++j)
            l.mask_codes.push_back(static_cast<std::uint32_t>(
                (j * 41u + 7u) % codec.codeCount()));
        model.layers.push_back(std::move(l));
    }
    return model;
}

/** Both layers are plain (groups=1) convs; the defaults bake that. */
inline io::MvqiWriteOptions
serveWriteOptions()
{
    return io::MvqiWriteOptions{};
}

} // namespace mvq::core

#endif // MVQ_TESTS_SERVE_TEST_UTIL_HPP
