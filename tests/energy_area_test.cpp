/**
 * @file
 * Energy/area/scaling tests: Table 8 cost application, Table 2 resource
 * counts, Table 7 area calibration (within tolerance), Stillmaker
 * normalization against the paper's own Table 9 row, and directional
 * energy-efficiency claims.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "energy/area_model.hpp"
#include "energy/competitors.hpp"
#include "energy/energy_model.hpp"
#include "energy/tech_scaling.hpp"

namespace mvq::energy {
namespace {

using sim::HwSetting;
using sim::makeHwSetting;

TEST(EnergyModel, CountersMapToCosts)
{
    sim::Counters c;
    c.macs = 100;
    c.gated_macs = 50;
    c.dram_read_bytes = 2;
    c.l2_read_bytes = 3;
    c.l1_write_bytes = 4;
    c.wrf_reads = 10;
    c.prf_writes = 5;

    EnergyCosts costs;
    EnergyBreakdown e = energyFromCounters(c, costs);
    EXPECT_DOUBLE_EQ(e.mac, 100.0 + 50.0 * 0.1);
    EXPECT_DOUBLE_EQ(e.dram, 2.0 * 200.0);
    EXPECT_DOUBLE_EQ(e.l2, 3.0 * 15.0);
    EXPECT_DOUBLE_EQ(e.l1, 4.0 * 6.0);
    EXPECT_DOUBLE_EQ(e.rf, 10.0 * 0.02 + 5.0 * 0.22);
    EXPECT_DOUBLE_EQ(e.total(), e.onChip() + e.dram);
}

TEST(AreaModel, Table2ResourceCounts)
{
    // H x d tile with H = 16, d = 16, Q = 4, 16-deep 8-bit WRF.
    TileResources dense = denseTileResources(16, 16, 16, 8, 24);
    EXPECT_EQ(dense.multipliers, 256);
    EXPECT_EQ(dense.adders, 256);
    EXPECT_EQ(dense.rf_bits, 16 * 16 * 16 * 8);
    EXPECT_EQ(dense.parallelism, 2 * 16 * 16);

    TileResources sparse = sparseTileResources(16, 16, 4, 16, 8, 24);
    EXPECT_EQ(sparse.multipliers, 64);  // H * Q
    EXPECT_EQ(sparse.adders, 256);      // still H * d
    // WRF bits H*Q*16*8 plus MRF bits H*Q*16*log2(16).
    EXPECT_EQ(sparse.rf_bits, 16 * 4 * 16 * 8 + 16 * 4 * 16 * 4);
    EXPECT_EQ(sparse.lzc_units, 64);
    EXPECT_EQ(sparse.demux_bits, 16 * 4 * 24);
    EXPECT_EQ(sparse.mux_bits, 16 * 4 * 8);
    EXPECT_EQ(sparse.parallelism, dense.parallelism);
}

/** Paper Table 7 array areas (mm^2) for calibration checks. */
struct AreaCase
{
    HwSetting setting;
    std::int64_t size;
    double paper_mm2;
    double tol; // relative
};

class AreaCalibration : public ::testing::TestWithParam<AreaCase>
{
};

TEST_P(AreaCalibration, ArrayAreaNearPaper)
{
    const AreaCase ac = GetParam();
    AreaBreakdown area = accelArea(makeHwSetting(ac.setting, ac.size));
    EXPECT_NEAR(area.accel_mm2(), ac.paper_mm2,
                ac.paper_mm2 * ac.tol)
        << sim::hwSettingName(ac.setting) << " size " << ac.size;
}

INSTANTIATE_TEST_SUITE_P(
    Table7, AreaCalibration,
    ::testing::Values(AreaCase{HwSetting::WS_Base, 16, 0.188, 0.35},
                      AreaCase{HwSetting::WS_Base, 32, 0.734, 0.35},
                      AreaCase{HwSetting::WS_Base, 64, 2.812, 0.35},
                      AreaCase{HwSetting::EWS_Base, 16, 0.36, 0.35},
                      AreaCase{HwSetting::EWS_Base, 32, 1.14, 0.35},
                      AreaCase{HwSetting::EWS_Base, 64, 4.236, 0.35},
                      AreaCase{HwSetting::EWS_C, 16, 0.650, 0.35},
                      AreaCase{HwSetting::EWS_CMS, 16, 0.469, 0.35},
                      AreaCase{HwSetting::EWS_CMS, 32, 0.828, 0.35},
                      AreaCase{HwSetting::EWS_CMS, 64, 2.129, 0.35}));

TEST(AreaModel, SparseTileCutsArrayArea)
{
    // Paper headline: EWS-CMS reduces the 64x64 array by 50-60%.
    AreaBreakdown base = accelArea(makeHwSetting(HwSetting::EWS_Base, 64));
    AreaBreakdown cms = accelArea(makeHwSetting(HwSetting::EWS_CMS, 64));
    const double reduction = 1.0 - cms.array_mm2 / base.array_mm2;
    EXPECT_GT(reduction, 0.40);
    EXPECT_LT(reduction, 0.70);
}

TEST(AreaModel, SramAreasMatchTable7)
{
    AreaBreakdown a16 = accelArea(makeHwSetting(HwSetting::EWS_Base, 16));
    EXPECT_NEAR(a16.l1_mm2, 0.484, 1e-9);
    EXPECT_NEAR(a16.l2_mm2, 6.924, 1e-9);
    AreaBreakdown a64 = accelArea(makeHwSetting(HwSetting::EWS_Base, 64));
    EXPECT_NEAR(a64.l1_mm2, 0.968, 1e-9);
    EXPECT_NEAR(a64.other_mm2, 1.659, 1e-9);
}

TEST(TechScaling, MatchesPaperNormalization)
{
    // Table 9: efficiency -> N-efficiency pairs.
    EXPECT_NEAR(0.68 * efficiencyTo40nm(45), 0.97, 0.02);
    EXPECT_NEAR(4.5 * efficiencyTo40nm(28), 2.43, 0.02);
    EXPECT_NEAR(0.47 * efficiencyTo40nm(45), 0.67, 0.02);
    EXPECT_NEAR(14.0 * efficiencyTo40nm(16), 1.64, 0.02);
    EXPECT_NEAR(1.1 * efficiencyTo40nm(65), 2.19, 0.02);
    EXPECT_DOUBLE_EQ(efficiencyTo40nm(40), 1.0);
    EXPECT_THROW(efficiencyTo40nm(7), FatalError);
    EXPECT_DOUBLE_EQ(energyRatioVs40nm(40), 1.0);
}

TEST(Competitors, SpecsAndNormalization)
{
    auto specs = priorWorkSpecs();
    ASSERT_EQ(specs.size(), 5u);
    normalizeEfficiencies(specs);
    EXPECT_EQ(specs[0].name, "SparTen");
    EXPECT_NEAR(specs[0].normalized_tops_w, 0.97, 0.02);
    EXPECT_EQ(specs[1].name, "CGNet");
    EXPECT_NEAR(specs[1].normalized_tops_w, 2.43, 0.02);
    EXPECT_NEAR(specs[3].normalized_tops_w, 1.64, 0.02); // S2TA 16nm
}

TEST(Efficiency, CmsBeatsBaselineOnResNet18)
{
    perf::WorkloadStats stats;
    models::ModelSpec spec = models::resnet18Spec();
    EnergyCosts costs;

    auto tops_w = [&](HwSetting s, std::int64_t size) {
        sim::AccelConfig cfg = makeHwSetting(s, size);
        perf::NetworkPerf np = perf::analyzeNetwork(cfg, spec, stats);
        return topsPerWatt(np, cfg, costs);
    };

    for (std::int64_t size : {16, 32, 64}) {
        EXPECT_GT(tops_w(HwSetting::EWS_CMS, size),
                  tops_w(HwSetting::EWS_Base, size))
            << "size " << size;
        EXPECT_GT(tops_w(HwSetting::WS_CMS, size),
                  tops_w(HwSetting::WS_Base, size))
            << "size " << size;
    }

    // Paper headline: EWS-CMS 64x64 is ~2.3x the EWS baseline.
    const double gain = tops_w(HwSetting::EWS_CMS, 64)
        / tops_w(HwSetting::EWS_Base, 64);
    EXPECT_GT(gain, 1.5);
    EXPECT_LT(gain, 3.5);
}

TEST(Efficiency, PowerBreakdownPositive)
{
    perf::WorkloadStats stats;
    sim::AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 32);
    perf::NetworkPerf np =
        perf::analyzeNetwork(cfg, models::resnet18Spec(), stats);
    EnergyCosts costs;
    PowerBreakdown p = powerBreakdown(np, cfg, costs);
    EXPECT_GT(p.accel_mw, 0.0);
    EXPECT_GT(p.l1_mw, 0.0);
    EXPECT_GT(p.l2_mw, 0.0);
    EXPECT_GT(p.other_mw, 0.0);
    EXPECT_NEAR(p.total_mw(),
                p.accel_mw + p.l1_mw + p.l2_mw + p.other_mw, 1e-12);
}

TEST(Efficiency, DataAccessReductionFromCompression)
{
    // Fig. 15's quantity: total data-access energy ratio, dominated by
    // DRAM weight traffic.
    perf::WorkloadStats stats;
    EnergyCosts costs;
    models::ModelSpec spec = models::resnet18Spec();
    perf::NetworkPerf base = perf::analyzeNetwork(
        makeHwSetting(HwSetting::EWS_Base, 32), spec, stats);
    perf::NetworkPerf cms = perf::analyzeNetwork(
        makeHwSetting(HwSetting::EWS_CMS, 32), spec, stats);
    const double reduction = dataAccessEnergy(base, costs)
        / dataAccessEnergy(cms, costs);
    EXPECT_GT(reduction, 1.5);
    EXPECT_LT(reduction, 6.0);
}

} // namespace
} // namespace mvq::energy
