/**
 * @file
 * Sparse-aware GEMM coverage: the compressed-row operand vs the dense
 * kernels on N:M-masked matrices for every ISA this host can execute,
 * thread-count determinism within an ISA, the mask-code -> CSR pack on
 * CompressedLayer, the CompressedConv2d forward against the densify +
 * dense-forward path, and the ConvGeom non-positive-output guards.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"
#include "core/compressed_layer.hpp"
#include "core/nm_pruning.hpp"
#include "nn/compressed_conv2d.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

using simd::Isa;

struct IsaGuard
{
    simd::Isa saved = simd::activeIsa();
    ~IsaGuard() { simd::setIsa(saved); }
};

struct ThreadGuard
{
    ~ThreadGuard() { setNumThreads(0); }
};

std::vector<Isa>
availableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (simd::isaAvailable(isa))
            out.push_back(isa);
    }
    return out;
}

/** Random [rows, cols] matrix with the compressed-layer 4:16 structure. */
Tensor
masked416Matrix(std::uint64_t seed, std::int64_t rows, std::int64_t cols)
{
    Rng rng(seed);
    return core::randomNmMatrix(rng, rows, cols, core::NmPattern{4, 16});
}

void
expectClose(const Tensor &ref, const Tensor &got, const char *what)
{
    ASSERT_EQ(ref.numel(), got.numel()) << what;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const float denom = std::max(1.0f, std::fabs(ref[i]));
        ASSERT_LE(std::fabs(ref[i] - got[i]) / denom, 1e-4f)
            << what << " elem " << i;
    }
}

TEST(SparseGemm, SparsifyRowsKeepsExactNonzeros)
{
    Tensor a = masked416Matrix(5, 16, 64);
    const SparseRowMatrix sp = sparsifyRows(a);
    EXPECT_EQ(sp.rows, 16);
    EXPECT_EQ(sp.cols, 64);
    // 4:16 keeps exactly a quarter of every row (modulo exact-zero draws,
    // which N(0,1) produces with probability ~0).
    EXPECT_EQ(sp.nnz(), 16 * 64 / 4);
    EXPECT_NEAR(sp.density(), 0.25, 1e-9);
    for (std::int64_t i = 0; i < sp.rows; ++i) {
        for (std::int64_t e = sp.row_ptr[static_cast<std::size_t>(i)];
             e < sp.row_ptr[static_cast<std::size_t>(i + 1)]; ++e) {
            const std::size_t se = static_cast<std::size_t>(e);
            EXPECT_EQ(a.at(i, sp.col_idx[se]), sp.values[se]);
            if (e > sp.row_ptr[static_cast<std::size_t>(i)]) {
                EXPECT_LT(sp.col_idx[se - 1], sp.col_idx[se]);
            }
        }
    }
}

TEST(SparseGemm, MatchesDenseGemmAllIsas)
{
    IsaGuard guard;
    const std::int64_t m = 64, k = 288, n = 100;
    Tensor a = masked416Matrix(7, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    ASSERT_GT(sp.nnz() * n, kGemmScalarFallbackMacs); // packed path runs
    Rng rng(8);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    Tensor c_oracle(Shape({m, n}));
    gemmSparseAReference(sp, b, c_oracle);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_dense(Shape({m, n}));
        gemm(a, false, b, false, c_dense);
        Tensor c_sparse(Shape({m, n}));
        gemmSparseA(sp, b, c_sparse);
        expectClose(c_dense, c_sparse, simd::isaName(isa));
        expectClose(c_oracle, c_sparse, simd::isaName(isa));
    }
}

TEST(SparseGemm, AlphaBetaMatchReference)
{
    IsaGuard guard;
    const std::int64_t m = 48, k = 160, n = 64;
    Tensor a = masked416Matrix(21, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    Rng rng(22);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor c0(Shape({m, n}));
    c0.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c_ref = c0;
        gemmSparseAReference(sp, b, c_ref, 0.5f, 1.0f);
        Tensor c_got = c0;
        gemmSparseA(sp, b, c_got, 0.5f, 1.0f);
        expectClose(c_ref, c_got, simd::isaName(isa));
    }
}

TEST(SparseGemm, SmallProblemRowScanPath)
{
    IsaGuard guard;
    const std::int64_t m = 8, k = 64, n = 16;
    Tensor a = masked416Matrix(31, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    ASSERT_LE(sp.nnz() * n, kGemmScalarFallbackMacs); // row-scan path
    Rng rng(32);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    Tensor c_ref(Shape({m, n}));
    gemmSparseAReference(sp, b, c_ref);
    Tensor c_got(Shape({m, n}));
    gemmSparseA(sp, b, c_got);
    EXPECT_EQ(0, std::memcmp(c_ref.data(), c_got.data(),
                             static_cast<std::size_t>(m * n)
                                 * sizeof(float)));
}

TEST(SparseGemm, EmptyRowsProduceZeroRows)
{
    IsaGuard guard;
    const std::int64_t m = 40, k = 256, n = 48;
    Tensor a = masked416Matrix(41, m, k);
    // Zero out some full rows: their CSR ranges become empty.
    for (std::int64_t j = 0; j < k; ++j) {
        a.at(3, j) = 0.0f;
        a.at(39, j) = 0.0f;
    }
    const SparseRowMatrix sp = sparsifyRows(a);
    Rng rng(42);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        Tensor c(Shape({m, n}), 7.0f); // beta = 0 must clear stale values
        gemmSparseA(sp, b, c);
        for (std::int64_t j = 0; j < n; ++j) {
            EXPECT_EQ(c.at(3, j), 0.0f);
            EXPECT_EQ(c.at(39, j), 0.0f);
        }
    }
}

TEST(SparseGemm, MalformedOperandPanics)
{
    // The driver binary-searches col_idx and the micro-kernels index
    // packed B rows with it, so a malformed operand must panic up front
    // instead of reading out of bounds.
    SparseRowMatrix sp;
    sp.rows = 2;
    sp.cols = 8;
    sp.row_ptr = {0, 2, 3};
    sp.col_idx = {3, 1, 0}; // not ascending within row 0
    sp.values = {1.0f, 2.0f, 3.0f};
    Tensor b(Shape({8, 4}));
    Tensor c(Shape({2, 4}));
    EXPECT_THROW(gemmSparseA(sp, b, c), PanicError);

    sp.col_idx = {1, 9, 0}; // column 9 out of range [0, 8)
    EXPECT_THROW(gemmSparseA(sp, b, c), PanicError);

    sp.col_idx = {1, 3, 0};
    sp.row_ptr = {0, 3, 2}; // non-monotone row_ptr
    EXPECT_THROW(gemmSparseA(sp, b, c), PanicError);
}

TEST(SparseGemm, ThreadCountDeterministicPerIsa)
{
    IsaGuard guard;
    ThreadGuard tguard;
    const std::int64_t m = 96, k = 320, n = 80;
    Tensor a = masked416Matrix(51, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    Rng rng(52);
    Tensor b(Shape({k, n}));
    b.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        setNumThreads(1);
        Tensor c1(Shape({m, n}));
        gemmSparseA(sp, b, c1);
        setNumThreads(4);
        Tensor c4(Shape({m, n}));
        gemmSparseA(sp, b, c4);
        EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(),
                                 static_cast<std::size_t>(m * n)
                                     * sizeof(float)))
            << simd::isaName(isa);
    }
}

/** Build a clustered 4:16 compressed layer for the conv tests. */
struct CompressedFixture
{
    Shape shape;
    core::MvqLayerConfig cfg;
    core::CompressedLayer layer;
    core::Codebook cb;

    explicit CompressedFixture(Shape s, std::uint64_t seed = 131)
        : shape(std::move(s))
    {
        cfg.k = 16;
        cfg.d = 16;
        cfg.pattern = core::NmPattern{4, 16};
        cfg.codebook_bits = 8;

        Rng rng(seed);
        Tensor w4(shape);
        w4.fillNormal(rng, 0.0f, 1.0f);
        Tensor wr = core::groupWeights(w4, cfg.d, cfg.grouping);
        core::Mask mask = core::nmMask(wr, cfg.pattern);
        core::applyMask(wr, mask);

        core::KmeansConfig kc;
        kc.k = cfg.k;
        const core::KmeansResult km = core::maskedKmeans(wr, mask, kc);
        cb.codewords = km.codebook;
        core::quantizeCodebook(cb, cfg.codebook_bits);
        layer = core::makeCompressedLayer("conv", shape, cfg, mask, km, 0);
    }
};

TEST(SparseGemm, PackSparseRowsMatchesReconstruct)
{
    CompressedFixture f(Shape({32, 4, 3, 3}));
    const SparseRowMatrix sp = f.layer.packSparseRows(f.cb);
    EXPECT_EQ(sp.rows, 32);
    EXPECT_EQ(sp.cols, 4 * 3 * 3);
    // 4:16 keeps exactly a quarter of the positions, including any kept
    // position whose codeword value happens to be zero.
    EXPECT_EQ(sp.nnz(), f.shape.numel() / 4);

    // Densifying the operand reproduces the reconstructed kernel exactly.
    const Tensor w = f.layer.reconstruct(f.cb);
    Tensor dense(Shape({sp.rows, sp.cols}));
    for (std::int64_t i = 0; i < sp.rows; ++i) {
        for (std::int64_t e = sp.row_ptr[static_cast<std::size_t>(i)];
             e < sp.row_ptr[static_cast<std::size_t>(i + 1)]; ++e) {
            const std::size_t se = static_cast<std::size_t>(e);
            dense.at(i, sp.col_idx[se]) = sp.values[se];
        }
    }
    EXPECT_FLOAT_EQ(
        maxAbsDiff(dense, w.reshaped(Shape({sp.rows, sp.cols}))), 0.0f);
}

TEST(CompressedConv2d, MatchesDensifiedForwardAllIsas)
{
    IsaGuard guard;
    CompressedFixture f(Shape({32, 4, 3, 3}));

    Rng rng(61);
    nn::Conv2dConfig cc{4, 32, 3, 1, 1, 1, false};
    nn::Conv2d dense_conv("conv", cc, rng);
    dense_conv.setWeight(f.layer.reconstruct(f.cb));
    const nn::CompressedConv2d sparse_conv(f.layer, f.cb, 1, 1);
    EXPECT_NEAR(sparse_conv.density(), 0.25, 1e-9);

    Tensor x(Shape({2, 4, 9, 9}));
    x.fillNormal(rng, 0.0f, 1.0f);

    for (Isa isa : availableIsas()) {
        ASSERT_TRUE(simd::setIsa(isa));
        const Tensor ref = dense_conv.forward(x, false);
        const Tensor got = sparse_conv.forward(x);
        ASSERT_EQ(ref.shape(), got.shape()) << simd::isaName(isa);
        expectClose(ref, got, simd::isaName(isa));
    }
    // Sparse flop accounting: a quarter of the dense MACs.
    EXPECT_EQ(sparse_conv.flopsFor(x), dense_conv.flops() / 4);
}

TEST(CompressedConv2d, GroupedConvMatchesDensifiedForward)
{
    IsaGuard guard;
    CompressedFixture f(Shape({16, 2, 3, 3}), 77); // groups = 2, C = 4

    Rng rng(78);
    nn::Conv2dConfig cc{4, 16, 3, 1, 1, 2, false};
    nn::Conv2d dense_conv("conv", cc, rng);
    dense_conv.setWeight(f.layer.reconstruct(f.cb));
    const nn::CompressedConv2d sparse_conv(f.layer, f.cb, 1, 1, 2);

    Tensor x(Shape({3, 4, 7, 7}));
    x.fillNormal(rng, 0.0f, 1.0f);
    const Tensor ref = dense_conv.forward(x, false);
    const Tensor got = sparse_conv.forward(x);
    ASSERT_EQ(ref.shape(), got.shape());
    expectClose(ref, got, "grouped");
}

TEST(CompressedConv2d, StridedConvMatchesDensifiedForward)
{
    IsaGuard guard;
    CompressedFixture f(Shape({16, 8, 3, 3}), 91);

    Rng rng(92);
    nn::Conv2dConfig cc{8, 16, 3, 2, 0, 1, false};
    nn::Conv2d dense_conv("conv", cc, rng);
    dense_conv.setWeight(f.layer.reconstruct(f.cb));
    const nn::CompressedConv2d sparse_conv(f.layer, f.cb, 2, 0);

    Tensor x(Shape({1, 8, 11, 11}));
    x.fillNormal(rng, 0.0f, 1.0f);
    const Tensor ref = dense_conv.forward(x, false);
    const Tensor got = sparse_conv.forward(x);
    ASSERT_EQ(ref.shape(), got.shape());
    expectClose(ref, got, "strided");
}

TEST(ConvGeom, OversizedKernelClampsToNonPositive)
{
    // in_h + 2*pad - k_h == -1 with stride 2: truncation toward zero used
    // to report outH() == 1; the clamped form reports 0 so every caller
    // sees the geometry is invalid.
    ConvGeom g{1, 2, 5, 3, 3, 2, 0};
    EXPECT_EQ(g.outH(), 0);
    EXPECT_EQ(g.outW(), 2);
}

TEST(ConvGeom, Im2colAndCol2imPanicOnNonPositiveOutput)
{
    ConvGeom g{1, 2, 5, 3, 3, 2, 0};
    Tensor input(Shape({1, 1, 2, 5}));
    EXPECT_THROW(im2col(input, 0, g), PanicError);

    Tensor cols(Shape({9, 1}));
    Tensor grad(Shape({1, 1, 2, 5}));
    EXPECT_THROW(col2im(cols, grad, 0, g), PanicError);
}

} // namespace
} // namespace mvq
