/**
 * @file
 * Cross-validation of the analytic performance model against the
 * functional simulator: cycle counts and every traffic counter must
 * match exactly on a grid of layer shapes. Plus network-level DRAM
 * policy and roofline sanity.
 */

#include <gtest/gtest.h>

#include "perf/network_perf.hpp"
#include "sim/systolic_array.hpp"

namespace mvq::perf {
namespace {

using sim::AccelConfig;
using sim::HwSetting;
using sim::makeHwSetting;

struct XCase
{
    HwSetting setting;
    std::int64_t array;
    std::int64_t k, c, r, hw, stride, pad;
};

class CrossValidation : public ::testing::TestWithParam<XCase>
{
};

TEST_P(CrossValidation, AnalyticMatchesFunctionalCounters)
{
    const XCase xc = GetParam();
    AccelConfig cfg = makeHwSetting(xc.setting, 16);
    cfg.array_h = xc.array;
    cfg.array_l = xc.array;
    cfg.zero_gating = false; // gating is statistical in the analytic model

    Rng rng(191);
    Tensor ifmap(Shape({xc.c, xc.hw, xc.hw}));
    ifmap.fillNormal(rng, 0.5f, 0.2f); // no zeros
    Tensor w(Shape({xc.k, xc.c, xc.r, xc.r}));
    w.fillNormal(rng, 0.5f, 0.2f);

    sim::LayerRun run = sim::SystolicArray(cfg).runConv(
        ifmap, sim::wrapDenseWeights(w, 1), xc.stride, xc.pad);

    models::ConvLayerSpec spec;
    spec.name = "layer";
    spec.out_c = xc.k;
    spec.in_c = xc.c;
    spec.kernel = xc.r;
    spec.stride = xc.stride;
    spec.pad = xc.pad;
    spec.in_h = xc.hw;
    spec.in_w = xc.hw;

    WorkloadStats stats;
    stats.act_zero_frac = 0.0;
    stats.dense_weight_zero_frac = 0.0;
    LayerPerf lp = analyzeConvLayer(cfg, spec, stats);

    EXPECT_EQ(lp.ext.a, run.ext.a);
    EXPECT_EQ(lp.ext.b, run.ext.b);
    EXPECT_EQ(lp.ext.d, run.ext.d);

    const auto &a = lp.counters;
    const auto &f = run.counters;
    EXPECT_EQ(a.compute_cycles, f.compute_cycles);
    EXPECT_EQ(a.total_cycles, f.total_cycles);
    EXPECT_EQ(a.stall_cycles, f.stall_cycles);
    EXPECT_EQ(a.l2_read_bytes, f.l2_read_bytes);
    EXPECT_EQ(a.l1_read_bytes, f.l1_read_bytes);
    EXPECT_EQ(a.l1_write_bytes, f.l1_write_bytes);
    EXPECT_EQ(a.arf_reads, f.arf_reads);
    EXPECT_EQ(a.arf_writes, f.arf_writes);
    EXPECT_EQ(a.prf_reads, f.prf_reads);
    EXPECT_EQ(a.prf_writes, f.prf_writes);
    EXPECT_EQ(a.wrf_reads, f.wrf_reads);
    EXPECT_EQ(a.wrf_writes, f.wrf_writes);
    EXPECT_EQ(a.crf_reads, f.crf_reads);
    EXPECT_EQ(a.macs + a.gated_macs, f.macs + f.gated_macs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossValidation,
    ::testing::Values(
        XCase{HwSetting::EWS_Base, 8, 16, 8, 3, 6, 1, 1},
        XCase{HwSetting::EWS_Base, 8, 32, 16, 3, 8, 2, 1},
        XCase{HwSetting::EWS_Base, 16, 24, 12, 3, 6, 1, 1},
        XCase{HwSetting::EWS_Base, 8, 8, 8, 1, 4, 1, 0},
        XCase{HwSetting::EWS_Base, 8, 16, 8, 5, 9, 1, 2},
        XCase{HwSetting::WS_Base, 8, 16, 8, 3, 6, 1, 1},
        XCase{HwSetting::WS_Base, 16, 32, 8, 3, 6, 1, 1},
        XCase{HwSetting::EWS_C, 8, 16, 8, 3, 6, 1, 1},
        XCase{HwSetting::EWS_Base, 8, 40, 24, 3, 9, 2, 1}));

TEST(PerfModel, SparseTileCountersConsistent)
{
    // For the sparse settings the analytic model is statistical in MACs
    // but exact in cycles and stream traffic.
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_CMS, 16);
    models::ConvLayerSpec spec{"l", 64, 32, 3, 1, 1, 1, 8, 8};
    WorkloadStats stats;
    LayerPerf lp = analyzeConvLayer(cfg, spec, stats);
    EXPECT_EQ(lp.compute_macs, lp.dense_macs / 4);
    EXPECT_EQ(lp.counters.macs + lp.counters.gated_macs,
              lp.compute_macs);
    EXPECT_GT(lp.counters.mrf_writes, 0);
    EXPECT_GT(lp.counters.crf_reads, 0);

    AccelConfig dense = makeHwSetting(HwSetting::EWS_Base, 16);
    LayerPerf dl = analyzeConvLayer(dense, spec, stats);
    // Compressed stream shrinks L2 weight bytes by ~6.4x.
    EXPECT_LT(lp.counters.l2_read_bytes,
              dl.counters.l2_read_bytes / 5);
    // Same compute cycles (sparse tile keeps throughput).
    EXPECT_EQ(lp.counters.compute_cycles, dl.counters.compute_cycles);
    // Fewer or equal stalls.
    EXPECT_LE(lp.counters.stall_cycles, dl.counters.stall_cycles);
}

TEST(PerfModel, DepthwiseUsesDiagonalMapping)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 16);
    models::ConvLayerSpec dw;
    dw.name = "dw";
    dw.out_c = 64;
    dw.in_c = 64;
    dw.groups = 64;
    dw.kernel = 3;
    dw.stride = 1;
    dw.pad = 1;
    dw.in_h = 8;
    dw.in_w = 8;
    WorkloadStats stats;
    LayerPerf lp = analyzeConvLayer(cfg, dw, stats);
    EXPECT_TRUE(lp.depthwise);
    // Diagonal mapping: blocks of min(H,L)=16 channels, R^2 E^2 each.
    EXPECT_EQ(lp.counters.compute_cycles, (64 / 16) * 9 * 64);
}

TEST(PerfModel, NetworkAnalysisResNet18)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 64);
    models::ModelSpec spec = models::resnet18Spec();
    WorkloadStats stats;
    NetworkPerf np = analyzeNetwork(cfg, spec, stats);

    EXPECT_EQ(np.dense_macs, spec.totalMacs());
    EXPECT_GT(np.totals.total_cycles, 0);
    EXPECT_GT(np.seconds, 0.0);
    EXPECT_GT(np.effective_gops, 0.0);
    EXPECT_LE(np.effective_gops, np.peak_gops);
    // ResNet-18 fmaps fit in 2MB L2: weights dominate DRAM traffic
    // (11.2M conv+fc weights at 8 bits plus the first ifmap).
    EXPECT_LT(np.totals.dram_read_bytes, 14 * 1024 * 1024);
    EXPECT_GT(np.totals.dram_read_bytes, 10 * 1024 * 1024);
}

TEST(PerfModel, Vgg16SpillsEarlyFmapsToDram)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 64);
    WorkloadStats stats;
    NetworkPerf vgg = analyzeNetwork(cfg, models::vgg16Spec(), stats);
    // 224x224x64 fmaps = 3.2MB > 2MB L2 -> DRAM fmap traffic exists.
    EXPECT_GT(vgg.totals.dram_write_bytes, 0);

    NetworkPerf rn = analyzeNetwork(cfg, models::resnet18Spec(), stats);
    EXPECT_EQ(rn.totals.dram_write_bytes, 0);
}

TEST(PerfModel, CompressionImprovesThroughputOnLargeArrays)
{
    // Paper Fig. 17/18: on 64x64, EWS-CMS beats EWS because the
    // weight-loading datawidth is the bottleneck.
    WorkloadStats stats;
    models::ModelSpec spec = models::resnet18Spec();
    NetworkPerf base = analyzeNetwork(
        makeHwSetting(HwSetting::EWS_Base, 64), spec, stats);
    NetworkPerf cms = analyzeNetwork(
        makeHwSetting(HwSetting::EWS_CMS, 64), spec, stats);
    const double speedup = base.seconds / cms.seconds;
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 4.0);
}

TEST(PerfModel, RooflinePointSane)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 32);
    WorkloadStats stats;
    NetworkPerf np = analyzeNetwork(cfg, models::resnet18Spec(), stats);
    RooflinePoint pt = rooflinePoint(np, cfg);
    EXPECT_GT(pt.oi, 0.0);
    EXPECT_LE(pt.attained_gops, pt.peak_gops + 1e-9);
    EXPECT_DOUBLE_EQ(pt.bw_gbps, 8.0 * 0.3);
}

} // namespace
} // namespace mvq::perf
