/**
 * @file
 * Parallel runtime tests: deterministic chunking, correctness of
 * parallelFor / parallelForChunks, nested regions, exception propagation,
 * and bit-identical kernel results across thread counts (the programmatic
 * form of running with MVQ_NUM_THREADS=1 vs 4).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/parallel.hpp"
#include "core/masked_kmeans.hpp"
#include "core/nm_pruning.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

/** Restore the default thread count when a test exits. */
struct ThreadGuard
{
    ~ThreadGuard() { setNumThreads(0); }
};

TEST(Parallel, ChunkCountIsThreadIndependent)
{
    EXPECT_EQ(chunkCount(0, 0, 4), 0);
    EXPECT_EQ(chunkCount(0, 1, 4), 1);
    EXPECT_EQ(chunkCount(0, 4, 4), 1);
    EXPECT_EQ(chunkCount(0, 5, 4), 2);
    EXPECT_EQ(chunkCount(0, 100, 7), 15);
    ThreadGuard guard;
    setNumThreads(1);
    const std::int64_t c1 = chunkCount(0, 1000, 16);
    setNumThreads(8);
    EXPECT_EQ(chunkCount(0, 1000, 16), c1);
}

TEST(Parallel, ParallelForCoversRangeExactlyOnce)
{
    ThreadGuard guard;
    for (int threads : {1, 3, 4}) {
        setNumThreads(threads);
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h.store(0);
        parallelFor(0, 257, 16, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
                hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Parallel, ChunkIndicesMatchBounds)
{
    ThreadGuard guard;
    setNumThreads(4);
    const std::int64_t begin = 3, end = 100, grain = 13;
    const std::int64_t n = chunkCount(begin, end, grain);
    std::vector<std::int64_t> lo(static_cast<std::size_t>(n), -1);
    std::vector<std::int64_t> hi(static_cast<std::size_t>(n), -1);
    parallelForChunks(begin, end, grain,
                      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        lo[static_cast<std::size_t>(c)] = b;
        hi[static_cast<std::size_t>(c)] = e;
    });
    for (std::int64_t c = 0; c < n; ++c) {
        EXPECT_EQ(lo[static_cast<std::size_t>(c)], begin + c * grain);
        EXPECT_EQ(hi[static_cast<std::size_t>(c)],
                  std::min(end, begin + (c + 1) * grain));
    }
}

TEST(Parallel, NestedRegionsRunInline)
{
    ThreadGuard guard;
    setNumThreads(4);
    std::atomic<int> total{0};
    parallelFor(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            // A nested region must not deadlock or double-count.
            parallelFor(0, 10, 2, [&](std::int64_t nb, std::int64_t ne) {
                total.fetch_add(static_cast<int>(ne - nb));
            });
        }
    });
    EXPECT_EQ(total.load(), 80);
}

TEST(Parallel, ExceptionsPropagate)
{
    ThreadGuard guard;
    for (int threads : {1, 4}) {
        setNumThreads(threads);
        EXPECT_THROW(
            parallelFor(0, 64, 1,
                        [](std::int64_t b, std::int64_t) {
                            if (b == 17)
                                throw std::runtime_error("boom");
                        }),
            std::runtime_error);
    }
}

TEST(Parallel, SetNumThreadsRoundTrip)
{
    ThreadGuard guard;
    setNumThreads(3);
    EXPECT_EQ(numThreads(), 3);
    setNumThreads(0); // back to default
    EXPECT_GE(numThreads(), 1);
}

// ---------------------------------------------------------------------
// Determinism: the hot kernels must produce bit-identical results at any
// thread count (MVQ_NUM_THREADS=1 vs 4).

TEST(ParallelDeterminism, GemmBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    Rng rng(11);
    Tensor a(Shape({93, 77}));
    Tensor b(Shape({77, 121}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);

    setNumThreads(1);
    Tensor c1 = matmul(a, b);
    setNumThreads(4);
    Tensor c4 = matmul(a, b);
    ASSERT_EQ(c1.numel(), c4.numel());
    EXPECT_EQ(std::memcmp(c1.data(), c4.data(),
                          static_cast<std::size_t>(c1.numel())
                              * sizeof(float)),
              0);
}

TEST(ParallelDeterminism, MaskedKmeansBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    Rng rng(12);
    Tensor wr(Shape({1024, 16}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    core::KmeansConfig cfg;
    cfg.k = 32;
    cfg.max_iters = 6;

    setNumThreads(1);
    auto r1 = core::maskedKmeans(wr, mask, cfg);
    setNumThreads(4);
    auto r4 = core::maskedKmeans(wr, mask, cfg);

    EXPECT_EQ(r1.assignments, r4.assignments);
    EXPECT_EQ(r1.iterations, r4.iterations);
    EXPECT_DOUBLE_EQ(r1.sse, r4.sse);
    ASSERT_EQ(r1.codebook.numel(), r4.codebook.numel());
    EXPECT_EQ(std::memcmp(r1.codebook.data(), r4.codebook.data(),
                          static_cast<std::size_t>(r1.codebook.numel())
                              * sizeof(float)),
              0);
}

TEST(ParallelDeterminism, ConvForwardBackwardBitIdentical)
{
    ThreadGuard guard;
    nn::Conv2dConfig cfg;
    cfg.in_channels = 6;
    cfg.out_channels = 8;
    cfg.kernel = 3;
    cfg.pad = 1;
    cfg.groups = 2;

    auto run = [&](int threads, Tensor &out, Tensor &gin, Tensor &gw) {
        setNumThreads(threads);
        Rng rng(13);
        nn::Conv2d conv("c", cfg, rng);
        Tensor x(Shape({5, 6, 9, 9}));
        x.fillNormal(rng, 0.0f, 1.0f);
        out = conv.forward(x, /*train=*/true);
        Tensor gout(out.shape());
        gout.fillNormal(rng, 0.0f, 1.0f);
        gin = conv.backward(gout);
        gw = conv.weight().grad;
    };

    Tensor o1, gi1, gw1, o4, gi4, gw4;
    run(1, o1, gi1, gw1);
    run(4, o4, gi4, gw4);
    auto expect_identical = [](const Tensor &lhs, const Tensor &rhs) {
        ASSERT_EQ(lhs.numel(), rhs.numel());
        EXPECT_EQ(std::memcmp(lhs.data(), rhs.data(),
                              static_cast<std::size_t>(lhs.numel())
                                  * sizeof(float)),
                  0);
    };
    expect_identical(o1, o4);
    expect_identical(gi1, gi4);
    expect_identical(gw1, gw4);
}

TEST(ParallelDeterminism, Im2ColAndCol2ImBitIdentical)
{
    ThreadGuard guard;
    Rng rng(14);
    Tensor x(Shape({2, 4, 11, 11}));
    x.fillNormal(rng, 0.0f, 1.0f);
    ConvGeom g{4, 11, 11, 3, 3, 2, 1};

    setNumThreads(1);
    Tensor c1 = im2col(x, 1, g);
    Tensor g1(x.shape());
    col2im(c1, g1, 1, g);
    setNumThreads(4);
    Tensor c4 = im2col(x, 1, g);
    Tensor g4(x.shape());
    col2im(c4, g4, 1, g);

    EXPECT_EQ(std::memcmp(c1.data(), c4.data(),
                          static_cast<std::size_t>(c1.numel())
                              * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(g1.data(), g4.data(),
                          static_cast<std::size_t>(g1.numel())
                              * sizeof(float)),
              0);
}

} // namespace
} // namespace mvq
