/**
 * @file
 * Overload and failure-path tests for the serving runtime, driven by a
 * ManualClock and the deterministic fault registry (src/common/fault):
 * queue-full shedding at the exact MVQ_SERVE_MAX_QUEUE boundary,
 * request expiry at deadline-1 vs deadline, batch isolation (a faulted
 * forward fails only its own batch), Healthy/Degraded/Failed health
 * transitions, fault-plan determinism (same plan, same traffic -> same
 * rejection sequence and memcmp-identical survivor outputs), and a
 * real-clock concurrent hammering test that rides the TSan CI tier.
 *
 * The *EnvPlan* tests are special: CI's ASan fault-plan sweep re-runs
 * just them under several MVQ_FAULT_PLAN values, so they re-apply the
 * env plan explicitly and tolerate ANY combination of armed sites —
 * the assertion is that every future completes and nothing leaks, not
 * that any particular request succeeds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/logging.hpp"
#include "core/io/model_artifact.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace mvq::serve {
namespace {

constexpr auto kGrace = std::chrono::milliseconds(100);

/** Rank-preserving fake model: y = 2x + 1 elementwise. */
Tensor
affineEcho(const Tensor &x)
{
    Tensor y = x;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        y[i] = 2.0f * y[i] + 1.0f;
    return y;
}

Tensor
taggedImage(const Shape &chw, float tag)
{
    Tensor t(chw);
    t.fill(tag);
    return t;
}

bool
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
        && std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) * sizeof(float))
            == 0;
}

/** Assert `fn` throws RejectedError carrying exactly `why`. */
template <typename Fn>
void
expectRejected(Fn &&fn, RejectReason why)
{
    try {
        fn();
        FAIL() << "expected RejectedError(" << rejectReasonName(why)
               << "), nothing thrown";
    } catch (const RejectedError &e) {
        EXPECT_EQ(e.reason(), why)
            << "got " << rejectReasonName(e.reason()) << ": " << e.what();
    }
}

/** Fresh fault registry per test: a leaked armed site in one test must
 *  never fire in the next. */
class ServeRobustnessTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::resetAll(); }
    void TearDown() override { fault::resetAll(); }
};

/** ManualClock server with every robustness knob pinned explicitly, so
 *  the hostile-knob CI matrix cannot change what these tests observe. */
struct RigidServer
{
    std::shared_ptr<ManualClock> clock = std::make_shared<ManualClock>();
    Shape chw{2, 3, 3};
    std::unique_ptr<Server> server;

    RigidServer(std::int64_t max_batch, std::int64_t deadline_us,
                std::int64_t max_queue,
                std::int64_t request_timeout_us = 0,
                std::int64_t fail_threshold = 1000000,
                Server::BatchForward fn = &affineEcho)
    {
        ServeOptions opts;
        opts.max_batch = max_batch;
        opts.deadline_us = deadline_us;
        opts.max_queue = max_queue;
        opts.request_timeout_us = request_timeout_us;
        opts.fail_threshold = fail_threshold;
        opts.clock = clock;
        server = std::make_unique<Server>(chw, std::move(fn), opts);
    }
};

// ------------------------------------------------------------- shedding

TEST_F(ServeRobustnessTest, ShedsExactlyAtQueueBoundary)
{
    constexpr std::int64_t kQueue = 4;
    constexpr int kOver = 3;
    // Batch size and flush deadline are both unreachable on the parked
    // clock, so every admitted request stays *in the queue* while the
    // over-limit submissions arrive: occupancy is exact, not racy.
    RigidServer f(/*max_batch=*/8, /*deadline_us=*/1000,
                  /*max_queue=*/kQueue);
    std::vector<std::future<Tensor>> futs;
    for (std::int64_t i = 0; i < kQueue; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));
    for (int i = 0; i < kOver; ++i)
        expectRejected(
            [&] { (void)f.server->submit(taggedImage(f.chw, 99.0f)); },
            RejectReason::QueueFull);

    ServerStats st = f.server->stats();
    EXPECT_EQ(st.admitted, kQueue);
    EXPECT_EQ(st.shed, kOver);
    EXPECT_EQ(st.rejected, kOver);
    EXPECT_EQ(st.expired, 0);

    // The k admitted requests are unaffected by the shedding: flushing
    // serves all of them, bit-identical to the sequential reference.
    f.clock->advance(1000);
    for (std::int64_t i = 0; i < kQueue; ++i) {
        const Tensor ref =
            affineEcho(taggedImage(f.chw, static_cast<float>(i)));
        EXPECT_TRUE(tensorsBitIdentical(
            futs[static_cast<std::size_t>(i)].get(), ref))
            << "admitted request " << i << " not bit-identical";
    }
    st = f.server->stats();
    EXPECT_EQ(st.served, kQueue);

    // Serving freed the queue: admission works again.
    auto fut = f.server->submit(taggedImage(f.chw, 7.0f));
    f.clock->advance(1000);
    EXPECT_TRUE(tensorsBitIdentical(
        fut.get(), affineEcho(taggedImage(f.chw, 7.0f))));
}

TEST_F(ServeRobustnessTest, RejectsInvalidRobustnessPolicy)
{
    ServeOptions bad_queue;
    bad_queue.max_queue = -1;
    EXPECT_THROW(Server(Shape({2, 3, 3}), &affineEcho, bad_queue),
                 FatalError);
    ServeOptions bad_threshold;
    bad_threshold.fail_threshold = -3;
    EXPECT_THROW(Server(Shape({2, 3, 3}), &affineEcho, bad_threshold),
                 FatalError);
}

// -------------------------------------------------------------- expiry

TEST_F(ServeRobustnessTest, ExpiresAtDeadlineNotBefore)
{
    // The batch flush deadline is far away; the request's own absolute
    // deadline (500 us) is the only thing that can complete its future.
    RigidServer f(/*max_batch=*/8, /*deadline_us=*/1000000,
                  /*max_queue=*/16);
    auto fut = f.server->submitWithDeadline(taggedImage(f.chw, 1.0f), 500);

    f.clock->advance(499); // deadline - 1: still pending
    EXPECT_EQ(fut.wait_for(kGrace), std::future_status::timeout);
    EXPECT_EQ(f.server->stats().expired, 0);

    f.clock->advance(1); // exactly the deadline: expired
    expectRejected([&] { (void)fut.get(); },
                   RejectReason::DeadlineExpired);
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.admitted, 1);
    EXPECT_EQ(st.expired, 1);
    EXPECT_EQ(st.served, 0);
    EXPECT_EQ(st.shed, 0); // expiry is not shedding
}

TEST_F(ServeRobustnessTest, DefaultDeadlineComesFromRequestTimeout)
{
    RigidServer f(/*max_batch=*/8, /*deadline_us=*/1000000,
                  /*max_queue=*/16, /*request_timeout_us=*/700);
    auto fut = f.server->submit(taggedImage(f.chw, 1.0f));
    f.clock->advance(699);
    EXPECT_EQ(fut.wait_for(kGrace), std::future_status::timeout);
    f.clock->advance(1);
    expectRejected([&] { (void)fut.get(); },
                   RejectReason::DeadlineExpired);
    EXPECT_EQ(f.server->stats().expired, 1);
}

TEST_F(ServeRobustnessTest, PastDeadlineIsAdmittedThenExpired)
{
    RigidServer f(/*max_batch=*/8, /*deadline_us=*/1000000,
                  /*max_queue=*/16);
    f.clock->advance(100);
    // Deadline already in the past: same path as any other expiry — the
    // request is admitted and the batcher drops it, with no clock
    // advance needed (its wake deadline has already been reached).
    auto fut = f.server->submitWithDeadline(taggedImage(f.chw, 1.0f), 50);
    expectRejected([&] { (void)fut.get(); },
                   RejectReason::DeadlineExpired);
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.admitted, 1);
    EXPECT_EQ(st.expired, 1);
}

TEST_F(ServeRobustnessTest, ExpiredRequestsDoNotPoisonTheBatch)
{
    // Two requests, one with a reachable deadline. Expiring it must not
    // touch the survivor, which then serves by batch-size launch.
    RigidServer f(/*max_batch=*/2, /*deadline_us=*/1000000,
                  /*max_queue=*/16);
    auto doomed =
        f.server->submitWithDeadline(taggedImage(f.chw, 1.0f), 500);
    auto survivor = f.server->submitWithDeadline(
        taggedImage(f.chw, 2.0f), kNoDeadline);
    f.clock->advance(500);
    expectRejected([&] { (void)doomed.get(); },
                   RejectReason::DeadlineExpired);
    // One slot now free forever (max_batch 2, one queued): submit the
    // second half of the batch and both serve.
    auto mate = f.server->submitWithDeadline(taggedImage(f.chw, 3.0f),
                                             kNoDeadline);
    EXPECT_TRUE(tensorsBitIdentical(
        survivor.get(), affineEcho(taggedImage(f.chw, 2.0f))));
    EXPECT_TRUE(tensorsBitIdentical(
        mate.get(), affineEcho(taggedImage(f.chw, 3.0f))));
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.expired, 1);
    EXPECT_EQ(st.served, 2);
}

// ----------------------------------------------- batch isolation + health

TEST_F(ServeRobustnessTest, FaultedBatchFailsAloneAndHealthRecovers)
{
    fault::arm(fault::kServeForward, {/*nth=*/1});
    RigidServer f(/*max_batch=*/2, /*deadline_us=*/1000,
                  /*max_queue=*/16);
    EXPECT_EQ(f.server->health(), Health::Healthy);

    // Batch 1 (size-triggered): the armed forward throws; both futures
    // carry the injected exception and health degrades.
    auto f0 = f.server->submit(taggedImage(f.chw, 0.0f));
    auto f1 = f.server->submit(taggedImage(f.chw, 1.0f));
    EXPECT_THROW(f0.get(), fault::FaultInjected);
    EXPECT_THROW(f1.get(), fault::FaultInjected);
    EXPECT_EQ(f.server->health(), Health::Degraded);
    ServerStats st = f.server->stats();
    EXPECT_EQ(st.failed_batches, 1);
    EXPECT_EQ(st.served, 0);

    // Batch 2: the nth=1 schedule is spent; the server recovers without
    // intervention and the results match the sequential reference.
    auto f2 = f.server->submit(taggedImage(f.chw, 2.0f));
    auto f3 = f.server->submit(taggedImage(f.chw, 3.0f));
    EXPECT_TRUE(tensorsBitIdentical(
        f2.get(), affineEcho(taggedImage(f.chw, 2.0f))));
    EXPECT_TRUE(tensorsBitIdentical(
        f3.get(), affineEcho(taggedImage(f.chw, 3.0f))));
    EXPECT_EQ(f.server->health(), Health::Healthy);
    st = f.server->stats();
    EXPECT_EQ(st.failed_batches, 1);
    EXPECT_EQ(st.served, 2);
}

TEST_F(ServeRobustnessTest, HealthFailsAtThresholdAndStopsAdmitting)
{
    fault::arm(fault::kServeForward, {/*nth=*/0, /*every=*/1});
    RigidServer f(/*max_batch=*/1, /*deadline_us=*/1000,
                  /*max_queue=*/16, /*request_timeout_us=*/0,
                  /*fail_threshold=*/2);

    auto f0 = f.server->submit(taggedImage(f.chw, 0.0f));
    EXPECT_THROW(f0.get(), fault::FaultInjected);
    // Health moves before the failing batch's futures complete, so the
    // state is already observable here.
    EXPECT_EQ(f.server->health(), Health::Degraded);

    auto f1 = f.server->submit(taggedImage(f.chw, 1.0f));
    EXPECT_THROW(f1.get(), fault::FaultInjected);
    EXPECT_EQ(f.server->health(), Health::Failed);

    // Failed is sticky and stops admission — even after disarming the
    // fault, this server needs a restart, not a lucky batch.
    fault::disarm(fault::kServeForward);
    expectRejected(
        [&] { (void)f.server->submit(taggedImage(f.chw, 2.0f)); },
        RejectReason::Unhealthy);
    EXPECT_EQ(f.server->health(), Health::Failed);
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.failed_batches, 2);
    EXPECT_EQ(st.rejected, 1);
}

TEST_F(ServeRobustnessTest, BatcherStallSkipsOneCycleThenServes)
{
    fault::arm(fault::kBatcherStall, {/*nth=*/1});
    RigidServer f(/*max_batch=*/1, /*deadline_us=*/1000,
                  /*max_queue=*/16);
    // The stall site makes the batcher skip exactly one claim cycle;
    // the request still serves with no clock advance (size launch).
    auto fut = f.server->submit(taggedImage(f.chw, 5.0f));
    EXPECT_TRUE(tensorsBitIdentical(
        fut.get(), affineEcho(taggedImage(f.chw, 5.0f))));
    EXPECT_EQ(fault::stats(fault::kBatcherStall).fired, 1);
}

TEST_F(ServeRobustnessTest, ShutdownDrainsEvenWithStallArmedEveryCycle)
{
    // every=1 would stall every claim forever — except a draining
    // batcher never consults the stall site, so shutdown always lands.
    fault::arm(fault::kBatcherStall, {/*nth=*/0, /*every=*/1});
    RigidServer f(/*max_batch=*/8, /*deadline_us=*/1000000,
                  /*max_queue=*/16);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 3; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));
    f.server->shutdown();
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(tensorsBitIdentical(
            futs[static_cast<std::size_t>(i)].get(),
            affineEcho(taggedImage(f.chw, static_cast<float>(i)))));
    EXPECT_EQ(f.server->stats().served, 3);
}

// ------------------------------------------------------ plan determinism

/** One scripted overload scenario: arm `plan`, run 4 sequential
 *  single-request batches, record each outcome (+ output bytes). */
struct PlanRun
{
    std::vector<std::string> outcomes;
    std::vector<Tensor> survivors;
};

PlanRun
runScriptedPlan(const std::string &plan)
{
    fault::resetAll();
    fault::armFromPlan(plan);
    RigidServer f(/*max_batch=*/1, /*deadline_us=*/1000, /*max_queue=*/16);
    PlanRun run;
    for (int i = 0; i < 4; ++i) {
        auto fut = f.server->submit(
            taggedImage(f.chw, static_cast<float>(i)));
        try {
            run.survivors.push_back(fut.get());
            run.outcomes.emplace_back("served");
        } catch (const fault::FaultInjected &) {
            run.outcomes.emplace_back("fault");
        }
    }
    f.server->shutdown();
    fault::resetAll();
    return run;
}

TEST_F(ServeRobustnessTest, SamePlanSameTrafficSameOutcome)
{
    const std::string plan = "serve.forward:nth=2";
    const PlanRun a = runScriptedPlan(plan);
    const PlanRun b = runScriptedPlan(plan);
    const std::vector<std::string> expect = {"served", "fault", "served",
                                             "served"};
    EXPECT_EQ(a.outcomes, expect);
    EXPECT_EQ(b.outcomes, expect);
    ASSERT_EQ(a.survivors.size(), b.survivors.size());
    for (std::size_t i = 0; i < a.survivors.size(); ++i)
        EXPECT_TRUE(tensorsBitIdentical(a.survivors[i], b.survivors[i]))
            << "survivor " << i << " differs between identical plan runs";
}

TEST_F(ServeRobustnessTest, MalformedPlansAreFatalWithDiagnostics)
{
    EXPECT_THROW(fault::armFromPlan("serve.forward"), FatalError);
    EXPECT_THROW(fault::armFromPlan("bogus.site:nth=1"), FatalError);
    EXPECT_THROW(fault::armFromPlan("serve.forward:nth=1:every=2"),
                 FatalError);
    EXPECT_THROW(fault::armFromPlan("serve.forward:nth=banana"),
                 FatalError);
    EXPECT_THROW(fault::armFromPlan("serve.forward:mode=banana"),
                 FatalError);
    EXPECT_THROW(fault::arm(fault::kServeForward, {/*nth=*/-1}),
                 FatalError);
    // Failed arming leaves nothing armed: serving proceeds untouched.
    RigidServer f(/*max_batch=*/1, /*deadline_us=*/1000, /*max_queue=*/4);
    EXPECT_TRUE(tensorsBitIdentical(
        f.server->submit(taggedImage(f.chw, 1.0f)).get(),
        affineEcho(taggedImage(f.chw, 1.0f))));
}

// ------------------------------------------------------- artifact sites

class ServeArtifactFaultTest : public ServeRobustnessTest
{
  protected:
    void
    SetUp() override
    {
        ServeRobustnessTest::SetUp();
        path_ = "/tmp/mvq_serve_robustness_test.mvqi";
        core::io::saveArtifact(core::makeServeModel(), path_,
                               core::io::ArtifactFormat::Mvqi,
                               core::serveWriteOptions());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        ServeRobustnessTest::TearDown();
    }

    std::string path_;
};

TEST_F(ServeArtifactFaultTest, OpenFaultSurfacesAndDoesNotStick)
{
    fault::arm(fault::kArtifactOpen, {/*nth=*/1, /*every=*/0,
                                      fault::FaultMode::Error});
    EXPECT_THROW((void)core::io::openArtifact(path_), FatalError);
    // nth=1 is spent: the same path opens fine afterwards.
    auto artifact = core::io::openArtifact(path_);
    EXPECT_EQ(artifact->layerCount(), 2);
}

TEST_F(ServeArtifactFaultTest, OperandBorrowFaultDoesNotPoisonCache)
{
    auto artifact = core::io::openArtifact(path_);
    fault::arm(fault::kOperandBorrow, {/*nth=*/1});
    EXPECT_THROW((void)artifact->packedOperands(0),
                 fault::FaultInjected);
    // The failed borrow cached nothing; the retry builds and serves the
    // operands normally, and the usual sharing still holds.
    auto ops = artifact->packedOperands(0);
    EXPECT_EQ(ops.get(), artifact->packedOperands(0).get());
}

// --------------------------------------------------- concurrent hammering

TEST_F(ServeRobustnessTest, ConcurrentOverloadKeepsCountersConsistent)
{
    // Real clock, tiny queue, occasional forward faults: clients race
    // admission against shedding and batch failures. This is the TSan
    // target for the overload paths; the invariant under all schedules
    // is conservation — every submit is admitted or rejected, every
    // admitted request is served, failed, or expired, and the counters
    // agree with what the clients saw.
    fault::arm(fault::kServeForward, {/*nth=*/0, /*every=*/7});
    ServeOptions opts;
    opts.max_batch = 4;
    opts.deadline_us = 200;
    opts.max_queue = 8;
    opts.request_timeout_us = 0;
    opts.fail_threshold = 1000000; // every=7 can't fail consecutively
                                   // anyway, but stay explicit
    auto server =
        std::make_unique<Server>(Shape({2, 3, 3}), &affineEcho, opts);

    constexpr int kClients = 8;
    constexpr int kPerClient = 50;
    std::atomic<int> ok{0};
    std::atomic<int> faulted{0};
    std::atomic<int> shed{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (int r = 0; r < kPerClient; ++r) {
                const float tag = static_cast<float>(c * kPerClient + r);
                Tensor img = taggedImage(Shape({2, 3, 3}), tag);
                std::future<Tensor> fut;
                try {
                    fut = server->submit(std::move(img));
                } catch (const RejectedError &e) {
                    EXPECT_EQ(e.reason(), RejectReason::QueueFull);
                    shed.fetch_add(1, std::memory_order_relaxed);
                    std::this_thread::yield();
                    continue;
                }
                try {
                    const Tensor out = fut.get();
                    if (!tensorsBitIdentical(
                            out,
                            affineEcho(taggedImage(Shape({2, 3, 3}), tag))))
                        mismatches.fetch_add(1, std::memory_order_relaxed);
                    ok.fetch_add(1, std::memory_order_relaxed);
                } catch (const fault::FaultInjected &) {
                    faulted.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    for (auto &t : clients)
        t.join();
    server->shutdown();

    EXPECT_EQ(mismatches.load(), 0);
    const ServerStats st = server->stats();
    EXPECT_EQ(st.admitted, ok.load() + faulted.load());
    EXPECT_EQ(st.served, ok.load());
    EXPECT_EQ(st.shed, shed.load());
    EXPECT_EQ(st.rejected, shed.load());
    EXPECT_EQ(st.expired, 0);
    EXPECT_NE(server->health(), Health::Failed);
}

// ------------------------------------------------------- env-plan sweep

TEST_F(ServeRobustnessTest, EnvPlanTrafficAlwaysCompletes)
{
    // CI re-runs this test under several MVQ_FAULT_PLAN values (ASan,
    // leak detection on). It must hold for ANY plan over the known
    // sites: every submit either throws a typed error or yields a
    // future, and every future completes — no hang, no leak, no crash.
    fault::resetAll();
    fault::armFromEnv();

    const std::string path = "/tmp/mvq_serve_robustness_envplan.mvqi";
    core::io::saveArtifact(core::makeServeModel(), path,
                           core::io::ArtifactFormat::Mvqi,
                           core::serveWriteOptions());
    // Artifact paths first: open and borrow may be scheduled to fail;
    // both kinds of failure must surface as exceptions, not corruption.
    int artifact_failures = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        try {
            auto artifact = core::io::openArtifact(path);
            (void)artifact->packedOperands(0);
        } catch (const fault::FaultInjected &) {
            ++artifact_failures;
        } catch (const FatalError &) {
            ++artifact_failures;
        }
    }
    std::remove(path.c_str());

    ServeOptions opts;
    opts.max_batch = 2;
    opts.deadline_us = 500;
    opts.max_queue = 64;
    opts.request_timeout_us = 0;
    opts.fail_threshold = 1000000; // plans may fail every batch; keep
                                   // admitting so traffic still flows
    auto server =
        std::make_unique<Server>(Shape({2, 3, 3}), &affineEcho, opts);
    std::vector<std::future<Tensor>> futs;
    int submit_rejected = 0;
    for (int i = 0; i < 8; ++i) {
        try {
            futs.push_back(server->submit(
                taggedImage(Shape({2, 3, 3}), static_cast<float>(i))));
        } catch (const RejectedError &) {
            ++submit_rejected;
        }
    }
    // A plan stalling every claim cycle parks the batcher until the
    // drain; shutdown must complete regardless of what is armed.
    server->shutdown();
    int served = 0;
    int failed = 0;
    for (auto &fut : futs) {
        try {
            (void)fut.get();
            ++served;
        } catch (const std::exception &) {
            ++failed;
        }
    }
    EXPECT_EQ(served + failed + submit_rejected, 8);
    const ServerStats st = server->stats();
    EXPECT_EQ(st.served, served);
    EXPECT_EQ(st.admitted, served + failed);
}

} // namespace
} // namespace mvq::serve
