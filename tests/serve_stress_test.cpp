/**
 * @file
 * Concurrency stress for the serving runtime: N client threads hammer
 * one Server over one shared MVQI artifact with the real SteadyClock,
 * racing admission, batching, completion, and shutdown the way
 * production traffic does. Every response is memcmp-checked against the
 * sequentially computed reference for its image, so batch composition —
 * which is genuinely nondeterministic here — must never leak into
 * results. This binary rides the MVQ_SIMD ctest matrix and the
 * MVQ_SANITIZE=thread CI job at 1/4/16 pool threads (see ci.yml),
 * which is what turns the hammering into a race detector; see
 * tests/serve_test.cpp for the deterministic fake-clock behavior tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "core/io/model_artifact.hpp"
#include "nn/compressed_net.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace mvq::serve {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 24;
constexpr int kDistinctImages = 6;

bool
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
        && std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) * sizeof(float))
            == 0;
}

class ServeStressTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = "/tmp/mvq_serve_stress_test.mvqi";
        core::io::saveArtifact(core::makeServeModel(), path_,
                               core::io::ArtifactFormat::Mvqi,
                               core::serveWriteOptions());
        artifact_ = core::io::openArtifact(path_);
        net_ = std::make_unique<nn::CompressedNet>(*artifact_);
        chw_ = Shape({net_->inChannels(), 6, 6});

        // Pre-compute the batch-1 reference output for every distinct
        // image; clients then verify each response against it.
        Rng rng(2024);
        for (int i = 0; i < kDistinctImages; ++i) {
            Tensor img(chw_);
            img.fillNormal(rng, 0.0f, 1.0f);
            Tensor x1(Shape({1, chw_.dim(0), chw_.dim(1), chw_.dim(2)}));
            std::memcpy(x1.data(), img.data(),
                        static_cast<std::size_t>(img.numel())
                            * sizeof(float));
            const Tensor y1 = net_->forward(x1);
            Tensor ref(Shape({y1.dim(1), y1.dim(2), y1.dim(3)}));
            std::memcpy(ref.data(), y1.data(),
                        static_cast<std::size_t>(ref.numel())
                            * sizeof(float));
            images_.push_back(std::move(img));
            refs_.push_back(std::move(ref));
        }
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
    std::unique_ptr<core::io::ModelArtifact> artifact_;
    std::unique_ptr<nn::CompressedNet> net_;
    Shape chw_;
    std::vector<Tensor> images_;
    std::vector<Tensor> refs_;
};

TEST_F(ServeStressTest, ConcurrentClientsGetBitIdenticalResults)
{
    ServeOptions opts;
    opts.max_batch = 4;
    opts.deadline_us = 200; // tight: exercises both flush reasons
    opts.max_queue = 4096;       // pinned: the hostile-knob CI matrix
    opts.request_timeout_us = 0; // must not shed or expire this traffic
    Server server(chw_,
                  [this](const Tensor &x) { return net_->forward(x); },
                  opts);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (int r = 0; r < kRequestsPerClient; ++r) {
                const std::size_t which = static_cast<std::size_t>(
                    (c * kRequestsPerClient + r) % kDistinctImages);
                std::future<Tensor> fut =
                    server.submit(images_[which]);
                const Tensor out = fut.get();
                if (!tensorsBitIdentical(out, refs_[which]))
                    mismatches.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto &t : clients)
        t.join();

    EXPECT_EQ(mismatches.load(), 0);
    const ServerStats st = server.stats();
    EXPECT_EQ(st.admitted, kClients * kRequestsPerClient);
    EXPECT_EQ(st.served, kClients * kRequestsPerClient);
    EXPECT_EQ(st.rejected, 0);
    EXPECT_GE(st.batches, (kClients * kRequestsPerClient + 3) / 4);
    EXPECT_LE(st.max_batch_served, 4);
}

TEST_F(ServeStressTest, ShutdownRacesInFlightSubmissions)
{
    ServeOptions opts;
    opts.max_batch = 8;
    opts.deadline_us = 500;
    opts.max_queue = 4096;
    opts.request_timeout_us = 0;
    auto server = std::make_unique<Server>(
        chw_, [this](const Tensor &x) { return net_->forward(x); }, opts);

    // Clients submit until the server refuses; every future obtained
    // BEFORE the refusal must still resolve correctly (shutdown drains,
    // never drops).
    std::atomic<int> accepted{0};
    std::atomic<int> drained_ok{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (int r = 0;; ++r) {
                const std::size_t which = static_cast<std::size_t>(
                    (c + r) % kDistinctImages);
                std::future<Tensor> fut;
                try {
                    fut = server->submit(images_[which]);
                } catch (const FatalError &) {
                    return; // shutdown reached this client
                }
                accepted.fetch_add(1, std::memory_order_relaxed);
                if (tensorsBitIdentical(fut.get(), refs_[which]))
                    drained_ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    // Let traffic build, then pull the plug while clients are mid-loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->shutdown();
    for (auto &t : clients)
        t.join();

    EXPECT_EQ(drained_ok.load(), accepted.load());
    const ServerStats st = server->stats();
    EXPECT_EQ(st.served, accepted.load());
}

TEST_F(ServeStressTest, ManyServersShareOneArtifactOperandSet)
{
    // Two servers over nets built from the same artifact share packed
    // operands (the MVQI zero-copy serving pattern); both must agree
    // with the references under concurrent traffic.
    nn::CompressedNet net2(*artifact_);
    ASSERT_EQ(net2.layer(0).packedOperands().get(),
              net_->layer(0).packedOperands().get());

    ServeOptions opts;
    opts.max_batch = 4;
    opts.deadline_us = 200;
    opts.max_queue = 4096;
    opts.request_timeout_us = 0;
    Server s1(chw_, [this](const Tensor &x) { return net_->forward(x); },
              opts);
    Server s2(chw_, [&net2](const Tensor &x) { return net2.forward(x); },
              opts);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            Server &target = (c % 2 == 0) ? s1 : s2;
            for (int r = 0; r < kRequestsPerClient; ++r) {
                const std::size_t which =
                    static_cast<std::size_t>((c * 3 + r) % kDistinctImages);
                if (!tensorsBitIdentical(
                        target.submit(images_[which]).get(), refs_[which]))
                    mismatches.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
}

} // namespace
} // namespace mvq::serve
