/**
 * @file
 * Cross-stack integration tests: the trained-compressed-simulated loop.
 * These assert the paper's *orderings* end to end — masked VQ preserves
 * accuracy better than unmasked VQ at matched compression, and the
 * co-designed accelerator wins on energy efficiency — using the same
 * APIs the benches use.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "energy/energy_model.hpp"
#include "models/mini_models.hpp"
#include "nn/network.hpp"
#include "vq/vanilla_vq.hpp"

namespace mvq {
namespace {

TEST(Integration, MaskedVqBeatsUnmaskedAtMatchedCompression)
{
    nn::ClassificationConfig dc;
    dc.classes = 6;
    dc.size = 12;
    dc.train_count = 480;
    dc.test_count = 160;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 6;
    mc.width = 12; // 12 channels groupable at d = 4/8? use d = 4
    mc.width = 16;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::trainClassifier(*net, data, tc);
    auto dense_snapshot = nn::snapshotParameters(*net);

    // --- Case D (MVQ): prune + masked k-means + sparse reconstruct ----
    core::MvqLayerConfig lc_d;
    lc_d.k = 32;
    lc_d.d = 16;
    lc_d.pattern = core::NmPattern{4, 16};
    auto targets = core::compressibleConvs(*net, lc_d, true);
    core::SrSteConfig sc;
    sc.pattern = lc_d.pattern;
    sc.d = lc_d.d;
    sc.train.epochs = 1;
    core::srSteTrain(*net, targets, data, sc);

    core::ClusterOptions opts;
    auto cm_d = vq::runAblationCase(
        vq::AblationCase::D_SparseMaskedSparse, targets, lc_d, opts);
    cm_d.applyTo(*net);
    core::FinetuneConfig fc;
    fc.epochs = 1;
    const double acc_d =
        core::finetuneCompressedClassifier(cm_d, *net, data, fc);

    // --- Case A (vanilla VQ) at a comparable ratio: k = 64, d = 8 ----
    nn::restoreParameters(*net, dense_snapshot);
    core::MvqLayerConfig lc_a;
    lc_a.k = 64;
    lc_a.d = 8;
    auto targets_a = core::compressibleConvs(*net, lc_a, true);
    auto cm_a = vq::runAblationCase(
        vq::AblationCase::A_DenseCommonDense, targets_a, lc_a, opts);
    cm_a.applyTo(*net);
    core::FinetuneConfig fc_a = fc;
    fc_a.masked_gradients = false;
    const double acc_a =
        core::finetuneCompressedClassifier(cm_a, *net, data, fc_a);

    // Matched compression ratios (within 35%).
    const double cr_d = cm_d.compressionRatio();
    const double cr_a = cm_a.compressionRatio();
    EXPECT_NEAR(cr_d / cr_a, 1.0, 0.35)
        << "cr_d = " << cr_d << " cr_a = " << cr_a;

    // The paper's Table 3 ordering: MVQ wins, and also cuts FLOPs.
    EXPECT_GE(acc_d, acc_a - 3.0)
        << "MVQ should be at least competitive (acc_d = " << acc_d
        << ", acc_a = " << acc_a << ")";
    EXPECT_LT(cm_d.compressedFlops(), cm_a.compressedFlops());
}

TEST(Integration, AcceleratorOrderingsAcrossSettings)
{
    perf::WorkloadStats stats;
    energy::EnergyCosts costs;
    models::ModelSpec spec = models::resnet18Spec();

    auto eff = [&](sim::HwSetting s) {
        sim::AccelConfig cfg = sim::makeHwSetting(s, 64);
        perf::NetworkPerf np = perf::analyzeNetwork(cfg, spec, stats);
        return energy::topsPerWatt(np, cfg, costs);
    };

    // Paper Fig. 19 ordering at 64x64:
    // WS < WS-CMS, EWS < EWS-C <= EWS-CM <= EWS-CMS.
    EXPECT_LT(eff(sim::HwSetting::WS_Base),
              eff(sim::HwSetting::WS_CMS));
    EXPECT_LT(eff(sim::HwSetting::EWS_Base),
              eff(sim::HwSetting::EWS_C));
    EXPECT_LE(eff(sim::HwSetting::EWS_C),
              eff(sim::HwSetting::EWS_CM) * 1.05);
    EXPECT_LT(eff(sim::HwSetting::EWS_CM),
              eff(sim::HwSetting::EWS_CMS));
    // WS suffers from L1 traffic: EWS beats WS.
    EXPECT_LT(eff(sim::HwSetting::WS_Base),
              eff(sim::HwSetting::EWS_Base));
}

TEST(Integration, EfficiencyGrowsWithArraySize)
{
    // Paper Fig. 19: efficiency improves with array size for EWS-CMS.
    perf::WorkloadStats stats;
    energy::EnergyCosts costs;
    models::ModelSpec spec = models::resnet18Spec();
    double prev = 0.0;
    for (std::int64_t size : {16, 32, 64}) {
        sim::AccelConfig cfg =
            sim::makeHwSetting(sim::HwSetting::EWS_CMS, size);
        perf::NetworkPerf np = perf::analyzeNetwork(cfg, spec, stats);
        const double e = energy::topsPerWatt(np, cfg, costs);
        EXPECT_GT(e, prev) << "size " << size;
        prev = e;
    }
}

TEST(Integration, CompressedModelRunsOnFunctionalArray)
{
    // Compress a real trained layer, push it through the weight loader
    // and the sparse-tile array, and compare with the nn-layer output.
    nn::ClassificationConfig dc;
    dc.classes = 4;
    dc.size = 12;
    dc.train_count = 96;
    dc.test_count = 32;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 4;
    mc.width = 16;
    auto net = models::miniResNet18(mc);

    core::MvqLayerConfig lc;
    lc.k = 64;
    lc.d = 16;
    lc.pattern = core::NmPattern{4, 16};
    auto targets = core::compressibleConvs(*net, lc, true);
    core::oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
    core::ClusterOptions opts;
    core::CompressedModel cm = core::clusterLayers(targets, lc, opts);
    cm.applyTo(*net);

    // Pick the first compressed conv and run it both ways.
    nn::Conv2d *conv = targets[0];
    const auto &ccfg = conv->config();
    Rng rng(211);
    Tensor x(Shape({1, ccfg.in_channels, 8, 8}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor ref = conv->forward(x, false);

    sim::AccelConfig acfg =
        sim::makeHwSetting(sim::HwSetting::EWS_CMS, 16);
    sim::Counters counters;
    sim::DecodedWeights dec = sim::decodeCompressedLayer(
        acfg, cm.layers[0], cm.codebooks[0], counters);
    Tensor ifmap = x.reshaped(Shape({ccfg.in_channels, 8, 8}));
    sim::LayerRun run = sim::SystolicArray(acfg).runConv(
        ifmap, dec, ccfg.stride, ccfg.pad);

    Tensor ref3 = ref.reshaped(run.ofmap.shape());
    EXPECT_LT(maxAbsDiff(run.ofmap, ref3), 1e-3f);
}

} // namespace
} // namespace mvq
