// Known-bad snippet for mvq_lint --selftest: raw AVX2 intrinsics in a
// generic TU. Real code must go through the simd_dispatch.hpp table so
// scalar/NEON builds stay correct. NOT compiled; linted only.
#include <immintrin.h>

float
sumEight(const float *p)
{
    __m256 v = _mm256_loadu_ps(p);
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_hadd_ps(s, s);
    s = _mm_hadd_ps(s, s);
    return _mm_cvtss_f32(s);
}
