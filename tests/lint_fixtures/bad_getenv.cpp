// Known-bad snippet for mvq_lint --selftest: raw std::getenv outside
// src/common/env.cpp. Scattered getenv calls race first use and dodge
// the MVQ_ENV_HELP enumeration; all reads go through mvq::env.
// NOT compiled; linted only.
#include <cstdlib>

const char *
homeDir()
{
    return std::getenv("HOME");
}
