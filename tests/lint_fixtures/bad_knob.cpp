// Known-bad snippet for mvq_lint --selftest: reads an env knob that is
// not registered in src/common/env.cpp's kKnobs table (and so also has
// no README row). NOT compiled; linted only.
#include "common/env.hpp"

bool
mysteryFeatureEnabled()
{
    return mvq::env::flag("MVQ_UNDOCUMENTED_KNOB", false);
}
