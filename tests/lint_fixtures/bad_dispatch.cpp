// Known-bad snippet for mvq_lint --selftest: a Kernels table that
// leaves a function-pointer slot nullptr and populates too few entries.
// The first caller of the missing slot would crash. NOT compiled.
#include "common/simd_dispatch.hpp"

namespace mvq::simd {
namespace {

constexpr Kernels kBadKernels = {
    Isa::Scalar, "scalar",
    /*mr=*/4, /*nr=*/8,
    &gemmMicroScalar,
    nullptr, // gemmSparseMicroKernel left unpopulated
    &assignBestDenseScalar,
};

} // namespace
} // namespace mvq::simd
