// Known-bad snippet for mvq_lint --selftest: include guard does not
// follow the MVQ_<PATH>_HPP convention (pretend path src/nn/bad_guard.hpp
// demands MVQ_NN_BAD_GUARD_HPP). NOT compiled; linted only.
#ifndef BAD_GUARD_H_
#define BAD_GUARD_H_

namespace mvq::nn {
int answer();
} // namespace mvq::nn

#endif // BAD_GUARD_H_
