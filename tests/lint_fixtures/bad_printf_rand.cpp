// Known-bad snippet for mvq_lint --selftest: C printf and rand() in
// library code. Logging goes through common/logging.hpp; randomness
// through mvq::Rng so runs stay reproducible. NOT compiled; linted only.
#include <cstdio>
#include <cstdlib>

int
noisyRoll()
{
    const int r = rand() % 6;
    printf("rolled %d\n", r);
    return r;
}
