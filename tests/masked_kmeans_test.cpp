/**
 * @file
 * Masked k-means tests: monotone convergence, equivalence with plain
 * k-means under an all-ones mask, the masked-update formula (Eq. 4) on a
 * hand-computed example, and the paper's central claim — masked
 * clustering yields lower masked SSE than unmasked clustering on
 * N:M-pruned data.
 */

#include <gtest/gtest.h>

#include "core/masked_kmeans.hpp"
#include "core/nm_pruning.hpp"
#include "tensor/ops.hpp"

namespace mvq::core {
namespace {

Tensor
randomMatrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(Shape({rows, cols}));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

TEST(MaskedKmeans, SseHistoryNonIncreasing)
{
    Tensor wr = randomMatrix(256, 8, 111);
    Mask mask = nmMask(wr, NmPattern{2, 8});
    applyMask(wr, mask);
    KmeansConfig cfg;
    cfg.k = 16;
    cfg.max_iters = 25;
    KmeansResult res = maskedKmeans(wr, mask, cfg);
    ASSERT_GE(res.sse_history.size(), 2u);
    for (std::size_t i = 1; i < res.sse_history.size(); ++i) {
        EXPECT_LE(res.sse_history[i], res.sse_history[i - 1] + 1e-6)
            << "iteration " << i;
    }
}

TEST(MaskedKmeans, PerfectClusteringWhenDataIsKCodewords)
{
    // Rows are exact copies of k distinct prototypes: SSE must be ~0.
    Rng rng(112);
    const std::int64_t k = 8;
    const std::int64_t d = 4;
    Tensor protos = randomMatrix(k, d, 113);
    Tensor wr(Shape({64, d}));
    for (std::int64_t j = 0; j < 64; ++j)
        for (std::int64_t t = 0; t < d; ++t)
            wr.at(j, t) = protos.at(j % k, t);
    Mask ones(static_cast<std::size_t>(wr.numel()), 1);
    KmeansConfig cfg;
    cfg.k = k;
    cfg.max_iters = 50;
    KmeansResult res = maskedKmeans(wr, ones, cfg);
    EXPECT_NEAR(res.sse, 0.0, 1e-6);
    (void)rng;
}

TEST(MaskedKmeans, MaskedUpdateFormulaHandExample)
{
    // Paper Fig. 4: subvector1 = (0.7, 0.7, 0, 0) mask (1,1,0,0),
    // subvector2 = (0, 0.5, 0.5, 0.5) mask (0,1,1,1); both assigned to
    // one codeword -> c* = (0.7, 0.6, 0.5, 0.5).
    Tensor wr(Shape({2, 4}));
    wr.at(0, 0) = 0.7f;
    wr.at(0, 1) = 0.7f;
    wr.at(1, 1) = 0.5f;
    wr.at(1, 2) = 0.5f;
    wr.at(1, 3) = 0.5f;
    Mask mask = {1, 1, 0, 0, 0, 1, 1, 1};

    KmeansConfig cfg;
    cfg.k = 1;
    cfg.max_iters = 3;
    KmeansResult res = maskedKmeans(wr, mask, cfg);
    ASSERT_EQ(res.codebook.dim(0), 1);
    EXPECT_NEAR(res.codebook.at(0, 0), 0.7f, 1e-6f);
    EXPECT_NEAR(res.codebook.at(0, 1), 0.6f, 1e-6f);
    EXPECT_NEAR(res.codebook.at(0, 2), 0.5f, 1e-6f);
    EXPECT_NEAR(res.codebook.at(0, 3), 0.5f, 1e-6f);
}

TEST(MaskedKmeans, MaskedBeatsUnmaskedOnPrunedData)
{
    // The paper's core claim (ablation B vs D): clustering sparse data
    // with the mask yields lower masked SSE than clustering it as-is.
    Tensor wr = randomMatrix(512, 16, 114);
    Mask mask = nmMask(wr, NmPattern{4, 16});
    applyMask(wr, mask);

    KmeansConfig cfg;
    cfg.k = 32;
    cfg.max_iters = 40;

    Mask ones(static_cast<std::size_t>(wr.numel()), 1);
    KmeansResult unmasked = maskedKmeans(wr, ones, cfg);
    KmeansResult masked = maskedKmeans(wr, mask, cfg);

    const double sse_unmasked =
        maskedSse(wr, mask, unmasked.codebook, unmasked.assignments);
    const double sse_masked =
        maskedSse(wr, mask, masked.codebook, masked.assignments);
    EXPECT_LT(sse_masked, sse_unmasked);
}

TEST(MaskedKmeans, MoreCodewordsReduceSse)
{
    Tensor wr = randomMatrix(256, 8, 115);
    Mask ones(static_cast<std::size_t>(wr.numel()), 1);
    double prev = 1e30;
    for (std::int64_t k : {4, 16, 64}) {
        KmeansConfig cfg;
        cfg.k = k;
        cfg.max_iters = 30;
        KmeansResult res = maskedKmeans(wr, ones, cfg);
        EXPECT_LT(res.sse, prev);
        prev = res.sse;
    }
}

TEST(MaskedKmeans, KClampedToRowCount)
{
    Tensor wr = randomMatrix(8, 4, 116);
    Mask ones(static_cast<std::size_t>(wr.numel()), 1);
    KmeansConfig cfg;
    cfg.k = 64; // more codewords than rows
    KmeansResult res = maskedKmeans(wr, ones, cfg);
    EXPECT_EQ(res.codebook.dim(0), 8);
    EXPECT_NEAR(res.sse, 0.0, 1e-8);
}

TEST(MaskedKmeans, ReconstructionMatchesAssignments)
{
    Tensor wr = randomMatrix(128, 8, 117);
    Mask mask = nmMask(wr, NmPattern{2, 8});
    applyMask(wr, mask);
    KmeansConfig cfg;
    cfg.k = 16;
    KmeansResult res = maskedKmeans(wr, mask, cfg);

    Tensor recon = reconstructGrouped(res.codebook, res.assignments,
                                      mask);
    // Pruned positions are zero.
    for (std::int64_t i = 0; i < recon.numel(); ++i) {
        if (!mask[static_cast<std::size_t>(i)]) {
            EXPECT_FLOAT_EQ(recon[i], 0.0f);
        }
    }
    // SSE via reconstruction equals maskedSse.
    EXPECT_NEAR(sse(wr, recon),
                maskedSse(wr, mask, res.codebook, res.assignments),
                1e-3);

    Tensor dense = reconstructGroupedDense(res.codebook,
                                           res.assignments);
    for (std::int64_t j = 0; j < 128; ++j) {
        for (std::int64_t t = 0; t < 8; ++t) {
            EXPECT_FLOAT_EQ(
                dense.at(j, t),
                res.codebook.at(res.assignments[static_cast<std::size_t>(
                                    j)],
                                t));
        }
    }
}

TEST(MaskedKmeans, Deterministic)
{
    Tensor wr = randomMatrix(64, 8, 118);
    Mask ones(static_cast<std::size_t>(wr.numel()), 1);
    KmeansConfig cfg;
    cfg.k = 8;
    KmeansResult a = maskedKmeans(wr, ones, cfg);
    KmeansResult b = maskedKmeans(wr, ones, cfg);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.sse, b.sse);
}

TEST(MaskedKmeans, KmeansPpInitWorks)
{
    Tensor wr = randomMatrix(128, 8, 119);
    Mask ones(static_cast<std::size_t>(wr.numel()), 1);
    KmeansConfig cfg;
    cfg.k = 16;
    cfg.kmeanspp_init = true;
    KmeansResult res = maskedKmeans(wr, ones, cfg);
    EXPECT_GT(res.iterations, 0);
    EXPECT_GT(res.sse, 0.0);
}

} // namespace
} // namespace mvq::core
