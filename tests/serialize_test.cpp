/**
 * @file
 * Serialization tests: bit-stream round trips, full-model round trips
 * with exact reconstruction equality, and file size vs the Eq. 7
 * storage accounting.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.hpp"
#include "core/io/model_artifact.hpp"
#include "core/pipeline.hpp"
#include "core/serialize.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"
#include "tensor/ops.hpp"

namespace mvq::core {
namespace {

TEST(BitStream, RoundTripMixedWidths)
{
    BitWriter w;
    w.put(0b101, 3);
    w.put(0xDEAD, 16);
    w.put(1, 1);
    w.put(0x123456789ULL, 36);
    const auto bytes = w.finish();

    BitReader r(bytes);
    EXPECT_EQ(r.get(3), 0b101u);
    EXPECT_EQ(r.get(16), 0xDEADu);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(36), 0x123456789ULL);
}

TEST(BitStream, OverrunFatal)
{
    BitWriter w;
    w.put(3, 2);
    const auto bytes = w.finish();
    BitReader r(bytes);
    r.get(8);
    EXPECT_THROW(r.get(8), FatalError);
}

TEST(BitStream, BitCountMatches)
{
    BitWriter w;
    w.put(0, 7);
    w.put(0, 9);
    EXPECT_EQ(w.bitCount(), 16);
}

/** Build a real compressed model from a clustered random kernel. */
CompressedModel
makeModel()
{
    Rng rng(221);
    Tensor w4(Shape({32, 8, 3, 3}));
    w4.fillNormal(rng, 0.0f, 0.5f);

    MvqLayerConfig cfg;
    cfg.k = 32;
    cfg.d = 16;
    cfg.pattern = NmPattern{4, 16};
    Tensor wr = groupWeights(w4, cfg.d, cfg.grouping);
    Mask mask = nmMask(wr, cfg.pattern);
    applyMask(wr, mask);
    KmeansConfig kc;
    kc.k = cfg.k;
    KmeansResult km = maskedKmeans(wr, mask, kc);

    CompressedModel model;
    Codebook cb;
    cb.codewords = km.codebook;
    quantizeCodebook(cb, 8);
    model.codebooks.push_back(cb);
    CompressedLayer layer =
        makeCompressedLayer("conv", w4.shape(), cfg, mask, km, 0);
    layer.dense_flops = 123456;
    model.layers.push_back(std::move(layer));
    return model;
}

TEST(Serialize, ModelRoundTripExact)
{
    CompressedModel model = makeModel();
    const auto bytes = serializeModel(model);
    CompressedModel back = deserializeModel(bytes);

    ASSERT_EQ(back.layers.size(), model.layers.size());
    ASSERT_EQ(back.codebooks.size(), model.codebooks.size());
    EXPECT_EQ(back.dense_reconstruct, model.dense_reconstruct);

    const auto &l0 = model.layers[0];
    const auto &l1 = back.layers[0];
    EXPECT_EQ(l1.name, l0.name);
    EXPECT_EQ(l1.weight_shape, l0.weight_shape);
    EXPECT_EQ(l1.cfg.k, l0.cfg.k);
    EXPECT_EQ(l1.cfg.pattern.n, l0.cfg.pattern.n);
    EXPECT_EQ(l1.assignments, l0.assignments);
    EXPECT_EQ(l1.mask_codes, l0.mask_codes);
    EXPECT_EQ(l1.dense_flops, l0.dense_flops);

    // The reconstruction must be bit-identical.
    EXPECT_FLOAT_EQ(
        maxAbsDiff(model.reconstructLayer(0), back.reconstructLayer(0)),
        0.0f);
}

TEST(Serialize, FileSizeTracksEq7Accounting)
{
    CompressedModel model = makeModel();
    const auto bytes = serializeModel(model);
    const StorageCost cost = model.storage();
    // Payload bits plus bounded header/metadata overhead.
    const double payload_bytes =
        static_cast<double>(cost.totalBits()) / 8.0;
    EXPECT_GT(static_cast<double>(bytes.size()), payload_bytes);
    EXPECT_LT(static_cast<double>(bytes.size()),
              payload_bytes + 256.0);
}

TEST(Serialize, SaveLoadFile)
{
    CompressedModel model = makeModel();
    const std::string path = "/tmp/mvq_serialize_test.mvq";
    io::saveArtifact(model, path, io::ArtifactFormat::Stream);
    CompressedModel back = io::openArtifact(path)->model();
    EXPECT_FLOAT_EQ(
        maxAbsDiff(model.reconstructLayer(0), back.reconstructLayer(0)),
        0.0f);
    std::remove(path.c_str());
}

/** Round-trip must hold for every N:M pattern / k / grouping combo. */
class SerializeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SerializeSweep, RoundTripAcrossConfigs)
{
    const auto [n, m, k] = GetParam();
    Rng rng(223);
    Tensor w4(Shape({32, 4, 3, 3}));
    w4.fillNormal(rng, 0.0f, 0.5f);

    MvqLayerConfig cfg;
    cfg.k = k;
    cfg.d = 16;
    cfg.pattern = NmPattern{n, m};
    Tensor wr = groupWeights(w4, cfg.d, cfg.grouping);
    Mask mask = nmMask(wr, cfg.pattern);
    applyMask(wr, mask);
    KmeansConfig kc;
    kc.k = k;
    KmeansResult km = maskedKmeans(wr, mask, kc);

    CompressedModel model;
    Codebook cb;
    cb.codewords = km.codebook;
    quantizeCodebook(cb, 8);
    model.codebooks.push_back(cb);
    model.layers.push_back(
        makeCompressedLayer("c", w4.shape(), cfg, mask, km, 0));

    CompressedModel back = deserializeModel(serializeModel(model));
    EXPECT_FLOAT_EQ(
        maxAbsDiff(model.reconstructLayer(0), back.reconstructLayer(0)),
        0.0f);
    EXPECT_EQ(back.layers[0].assignments, model.layers[0].assignments);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SerializeSweep,
    ::testing::Values(std::make_tuple(4, 16, 32),
                      std::make_tuple(1, 2, 8),
                      std::make_tuple(2, 4, 64),
                      std::make_tuple(8, 16, 16),
                      std::make_tuple(1, 1, 128),
                      std::make_tuple(2, 8, 7)));

TEST(Serialize, RejectsGarbage)
{
    std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_THROW(deserializeModel(junk), FatalError);
}

TEST(Serialize, RejectsTruncationAtEveryPrefix)
{
    // Every strict prefix of a valid stream must fail with FatalError
    // (clean overrun or bounds message), never crash or mis-decode. The
    // remainingBits checks specifically keep a truncated header from
    // driving a huge codeword/assignment allocation.
    const auto bytes = serializeModel(makeModel());
    for (std::size_t cut : {std::size_t{0}, std::size_t{3},
                            std::size_t{4}, std::size_t{7},
                            std::size_t{9}, std::size_t{16},
                            bytes.size() / 2, bytes.size() - 1}) {
        const std::vector<std::uint8_t> trunc(bytes.begin(),
                                              bytes.begin()
                                                  + static_cast<long>(cut));
        EXPECT_THROW(deserializeModel(trunc), FatalError)
            << "prefix of " << cut << " bytes decoded without error";
    }
}

TEST(Serialize, BitReaderRemainingBits)
{
    BitWriter w;
    w.put(0x3f, 6);
    w.put(0, 10);
    const auto bytes = w.finish();
    BitReader r(bytes);
    EXPECT_EQ(r.remainingBits(), 16);
    r.get(6);
    EXPECT_EQ(r.remainingBits(), 10);
    r.get(10);
    EXPECT_EQ(r.remainingBits(), 0);
}

TEST(Serialize, UnquantizedCodebookRoundTrip)
{
    CompressedModel model = makeModel();
    // Replace with an unquantized codebook (fp32 path).
    Rng rng(222);
    model.codebooks[0].qbits = 0;
    model.codebooks[0].scale = 0.0f;
    model.codebooks[0].codewords.fillNormal(rng, 0.0f, 1.0f);
    const auto bytes = serializeModel(model);
    CompressedModel back = deserializeModel(bytes);
    EXPECT_FLOAT_EQ(maxAbsDiff(back.codebooks[0].codewords,
                               model.codebooks[0].codewords),
                    0.0f);
}

} // namespace
} // namespace mvq::core
