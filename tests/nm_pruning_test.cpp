/**
 * @file
 * N:M pruning tests: the keep-N-of-M invariant, magnitude selection,
 * and sparsity accounting across patterns.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/nm_pruning.hpp"

namespace mvq::core {
namespace {

class NmPatternSweep : public ::testing::TestWithParam<NmPattern>
{
};

TEST_P(NmPatternSweep, MaskKeepsExactlyNPerGroup)
{
    const NmPattern p = GetParam();
    const std::int64_t d = 16;
    ASSERT_EQ(d % p.m, 0);
    Rng rng(91);
    Tensor wr(Shape({64, d}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    Mask mask = nmMask(wr, p);
    EXPECT_NO_THROW(checkNmInvariant(mask, d, p));
    EXPECT_NEAR(maskSparsity(mask), p.sparsity(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, NmPatternSweep,
    ::testing::Values(NmPattern{1, 2}, NmPattern{2, 4}, NmPattern{4, 16},
                      NmPattern{3, 16}, NmPattern{6, 16}, NmPattern{8, 16},
                      NmPattern{1, 1}, NmPattern{2, 8}, NmPattern{1, 4}));

TEST(NmPruning, KeepsLargestMagnitudes)
{
    Tensor wr(Shape({1, 8}));
    const float vals[8] = {0.1f, -0.9f, 0.2f, 0.05f,
                           -0.3f, 0.8f, -0.02f, 0.4f};
    for (int i = 0; i < 8; ++i)
        wr[i] = vals[i];
    // 2:4 within groups {0..3} and {4..7}.
    Mask mask = nmMask(wr, NmPattern{2, 4});
    // Group 1: keep |-0.9| and |0.2|.
    EXPECT_EQ(mask[0], 0);
    EXPECT_EQ(mask[1], 1);
    EXPECT_EQ(mask[2], 1);
    EXPECT_EQ(mask[3], 0);
    // Group 2: keep |0.8| and |0.4|.
    EXPECT_EQ(mask[4], 0);
    EXPECT_EQ(mask[5], 1);
    EXPECT_EQ(mask[6], 0);
    EXPECT_EQ(mask[7], 1);
}

TEST(NmPruning, ApplyMaskZeroesPruned)
{
    Rng rng(92);
    Tensor wr(Shape({32, 16}));
    wr.fillNormal(rng, 0.5f, 1.0f);
    Mask mask = nmMask(wr, NmPattern{4, 16});
    applyMask(wr, mask);
    EXPECT_EQ(wr.countZeros(), 32 * 12);
    // Surviving weights untouched: re-deriving the mask keeps them.
    Mask again = nmMask(wr, NmPattern{4, 16});
    EXPECT_EQ(mask, again);
}

TEST(NmPruning, PatternHelpers)
{
    NmPattern p{4, 16};
    EXPECT_DOUBLE_EQ(p.keepFraction(), 0.25);
    EXPECT_DOUBLE_EQ(p.sparsity(), 0.75);
    EXPECT_EQ(p.str(), "4:16");
}

TEST(NmPruning, RejectsBadInputs)
{
    Tensor wr(Shape({4, 6}));
    EXPECT_THROW(nmMask(wr, NmPattern{2, 4}), FatalError); // 6 % 4 != 0
    EXPECT_THROW(nmMask(wr, NmPattern{5, 3}), FatalError); // N > M
    Tensor bad(Shape({4, 6, 1, 1}));
    EXPECT_THROW(nmMask(bad, NmPattern{1, 2}), FatalError); // rank
}

TEST(NmPruning, InvariantDetectsViolations)
{
    Mask mask(16, 0);
    mask[0] = 1; // only 1 kept in a 4:16 group
    EXPECT_THROW(checkNmInvariant(mask, 16, NmPattern{4, 16}),
                 PanicError);
}

} // namespace
} // namespace mvq::core
