/**
 * @file
 * End-to-end pipeline tests: the four-step MVQ pipeline on a mini
 * classifier, compression-ratio/FLOPs accounting, cross-layer mode, and
 * the SSE report split.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "models/mini_models.hpp"
#include "nn/network.hpp"

namespace mvq::core {
namespace {

PipelineConfig
smallConfig()
{
    PipelineConfig cfg;
    cfg.layer.k = 64;
    cfg.layer.d = 8;
    cfg.layer.pattern = NmPattern{2, 8};
    cfg.sparse.train.epochs = 1;
    cfg.kmeans.max_iters = 25;
    cfg.finetune.epochs = 1;
    return cfg;
}

TEST(Pipeline, EndToEndClassifier)
{
    nn::ClassificationConfig dc;
    dc.classes = 6;
    dc.size = 12;
    dc.train_count = 360;
    dc.test_count = 120;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 6;
    mc.width = 8;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::trainClassifier(*net, data, tc);

    PipelineResult res =
        mvqCompressClassifier(*net, data, smallConfig());

    EXPECT_GT(res.acc_dense, 55.0);
    EXPECT_GT(res.acc_final, res.acc_clustered - 1e-9);
    EXPECT_GT(res.compression_ratio, 5.0);
    EXPECT_LT(res.flops_compressed, res.flops_dense);
    EXPECT_GE(res.total_sse, res.masked_sse);
    EXPECT_FALSE(res.compressed.layers.empty());
}

TEST(Pipeline, CrosslayerSharesOneCodebook)
{
    nn::ClassificationConfig dc;
    dc.classes = 4;
    dc.size = 12;
    dc.train_count = 120;
    dc.test_count = 40;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = 4;
    mc.width = 8;
    auto net = models::miniResNet18(mc);

    PipelineConfig cfg = smallConfig();
    cfg.crosslayer = true;
    cfg.sparse.train.epochs = 1;
    cfg.finetune.epochs = 0;
    PipelineResult res = mvqCompressClassifier(*net, data, cfg);
    EXPECT_EQ(res.compressed.codebooks.size(), 1u);
    EXPECT_GT(res.compressed.layers.size(), 1u);
    for (const auto &layer : res.compressed.layers)
        EXPECT_EQ(layer.codebook_id, 0);
}

TEST(Pipeline, CompressibleConvsSkipsFirstAndChecksDivisibility)
{
    Rng rng(151);
    nn::Sequential net("net");
    nn::Conv2dConfig stem{3, 16, 3, 1, 1, 1, false};
    net.add<nn::Conv2d>("stem", stem, rng);
    nn::Conv2dConfig odd{16, 12, 3, 1, 1, 1, false}; // 12 % 16 != 0
    net.add<nn::Conv2d>("odd", odd, rng);
    nn::Conv2dConfig good{12, 32, 3, 1, 1, 1, false};
    net.add<nn::Conv2d>("good", good, rng);

    MvqLayerConfig lc;
    lc.d = 16;
    auto targets = compressibleConvs(net, lc, /*skip_first=*/true);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0]->name(), "good");

    auto with_first = compressibleConvs(net, lc, /*skip_first=*/false);
    EXPECT_EQ(with_first.size(), 2u); // stem (16) + good (32)
}

TEST(Pipeline, ClusterLayersHonoursAblationSwitches)
{
    Rng rng(152);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{8, 32, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("conv", cc, rng);
    std::vector<nn::Conv2d *> targets{conv};

    MvqLayerConfig lc;
    lc.k = 16;
    lc.d = 16;
    lc.pattern = NmPattern{4, 16};
    oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);

    ClusterOptions sparse_opts;
    CompressedModel sparse_cm = clusterLayers(targets, lc, sparse_opts);
    EXPECT_FALSE(sparse_cm.dense_reconstruct);
    Tensor sparse_recon = sparse_cm.reconstructLayer(0);
    EXPECT_GT(sparse_recon.countZeros(),
              sparse_recon.numel() / 2); // 75% pruned

    ClusterOptions dense_opts;
    dense_opts.masked_kmeans = false;
    dense_opts.sparse_reconstruct = false;
    CompressedModel dense_cm = clusterLayers(targets, lc, dense_opts);
    EXPECT_TRUE(dense_cm.dense_reconstruct);
    Tensor dense_recon = dense_cm.reconstructLayer(0);
    EXPECT_LT(dense_recon.countZeros(), sparse_recon.countZeros());
}

TEST(Pipeline, SseReportSplitsMaskedAndTotal)
{
    Rng rng(153);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{8, 32, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("conv", cc, rng);
    std::vector<nn::Conv2d *> targets{conv};

    MvqLayerConfig lc;
    lc.k = 8;
    lc.d = 16;
    lc.pattern = NmPattern{4, 16};
    oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
    std::vector<Tensor> reference{conv->weight().value};

    ClusterOptions opts;
    CompressedModel cm = clusterLayers(targets, lc, opts);
    SseReport report = computeSse(cm, reference);
    EXPECT_GT(report.total_sse, 0.0);
    // Reference is already pruned, so all error lives on kept weights.
    EXPECT_NEAR(report.total_sse, report.masked_sse, 1e-6);
}

TEST(Pipeline, LargerKReducesSse)
{
    Rng rng(154);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{8, 64, 3, 1, 1, 1, false};
    auto *conv = net.add<nn::Conv2d>("conv", cc, rng);
    std::vector<nn::Conv2d *> targets{conv};

    MvqLayerConfig lc;
    lc.d = 16;
    lc.pattern = NmPattern{4, 16};
    oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
    std::vector<Tensor> reference{conv->weight().value};

    double prev = 1e30;
    for (std::int64_t k : {8, 32, 128}) {
        lc.k = k;
        ClusterOptions opts;
        opts.kmeans.max_iters = 30;
        CompressedModel cm = clusterLayers(targets, lc, opts);
        const double sse = computeSse(cm, reference).masked_sse;
        EXPECT_LT(sse, prev) << "k = " << k;
        prev = sse;
    }
}

} // namespace
} // namespace mvq::core
