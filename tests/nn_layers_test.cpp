/**
 * @file
 * Layer-level tests: convolution against a naive reference and numerical
 * gradient checks for every differentiable layer — the foundation the
 * masked-gradient fine-tuning correctness rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"
#include "nn/reshape.hpp"
#include "nn/residual.hpp"
#include "nn/upsample.hpp"

namespace mvq::nn {
namespace {

/** Naive direct convolution reference. */
Tensor
convReference(const Tensor &x, const Tensor &w, std::int64_t stride,
              std::int64_t pad, std::int64_t groups)
{
    const std::int64_t n = x.dim(0);
    const std::int64_t c = x.dim(1);
    const std::int64_t k = w.dim(0);
    const std::int64_t cg = w.dim(1);
    const std::int64_t r = w.dim(2);
    const std::int64_t oh = (x.dim(2) + 2 * pad - r) / stride + 1;
    const std::int64_t ow = (x.dim(3) + 2 * pad - r) / stride + 1;
    const std::int64_t kg = k / groups;
    Tensor out(Shape({n, k, oh, ow}));
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t ko = 0; ko < k; ++ko) {
            const std::int64_t g = ko / kg;
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xx = 0; xx < ow; ++xx) {
                    float acc = 0.0f;
                    for (std::int64_t ci = 0; ci < cg; ++ci) {
                        const std::int64_t cin = g * cg + ci;
                        if (cin >= c)
                            continue;
                        for (std::int64_t ry = 0; ry < r; ++ry) {
                            const std::int64_t iy =
                                y * stride - pad + ry;
                            if (iy < 0 || iy >= x.dim(2))
                                continue;
                            for (std::int64_t rx = 0; rx < r; ++rx) {
                                const std::int64_t ix =
                                    xx * stride - pad + rx;
                                if (ix < 0 || ix >= x.dim(3))
                                    continue;
                                acc += x.at(b, cin, iy, ix)
                                    * w.at(ko, ci, ry, rx);
                            }
                        }
                    }
                    out.at(b, ko, y, xx) = acc;
                }
            }
        }
    }
    return out;
}

struct ConvCase
{
    std::int64_t in_c, out_c, kernel, stride, pad, groups, hw;
};

class ConvForward : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvForward, MatchesNaiveReference)
{
    const ConvCase cc = GetParam();
    Rng rng(21);
    Conv2dConfig cfg{cc.in_c, cc.out_c, cc.kernel, cc.stride, cc.pad,
                     cc.groups, false};
    Conv2d conv("conv", cfg, rng);
    Tensor x(Shape({2, cc.in_c, cc.hw, cc.hw}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor out = conv.forward(x, false);
    Tensor ref = convReference(x, conv.weight().value, cc.stride, cc.pad,
                               cc.groups);
    EXPECT_EQ(out.shape(), ref.shape());
    EXPECT_LT(maxAbsDiff(out, ref), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvForward,
    ::testing::Values(ConvCase{3, 8, 3, 1, 1, 1, 6},
                      ConvCase{4, 8, 3, 2, 1, 1, 7},
                      ConvCase{8, 16, 1, 1, 0, 1, 5},
                      ConvCase{6, 6, 3, 1, 1, 6, 6},  // depthwise
                      ConvCase{8, 12, 3, 1, 1, 2, 6}, // grouped
                      ConvCase{3, 4, 5, 2, 2, 1, 9}));

/**
 * Central-difference gradient check of a scalar function of the layer
 * output w.r.t. inputs and parameters.
 */
void
checkGradients(Layer &layer, Tensor x, float tol = 2e-2f)
{
    Rng rng(33);
    // Random projection makes a scalar loss: L = <out, v>.
    Tensor out = layer.forward(x, true);
    Tensor v(out.shape());
    v.fillNormal(rng, 0.0f, 1.0f);

    layer.zeroGrad();
    layer.forward(x, true);
    Tensor gin = layer.backward(v);

    const float eps = 1e-2f;
    auto loss_at = [&](const Tensor &xx) {
        Tensor o = layer.forward(xx, true);
        double s = 0.0;
        for (std::int64_t i = 0; i < o.numel(); ++i)
            s += static_cast<double>(o[i]) * v[i];
        return s;
    };

    // Input gradient at a sample of positions.
    for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 12);
         ++i) {
        const std::int64_t idx = (i * 7919) % x.numel();
        Tensor xp = x;
        Tensor xm = x;
        xp[idx] += eps;
        xm[idx] -= eps;
        const double num = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
        EXPECT_NEAR(gin[idx], num, tol * std::max(1.0, std::fabs(num)))
            << "input grad at " << idx;
    }

    // Parameter gradients at a sample of positions.
    for (Parameter *p : layer.parameters()) {
        layer.zeroGrad();
        layer.forward(x, true);
        layer.backward(v);
        Tensor analytic = p->grad;
        for (std::int64_t i = 0;
             i < std::min<std::int64_t>(p->value.numel(), 8); ++i) {
            const std::int64_t idx = (i * 104729) % p->value.numel();
            const float orig = p->value[idx];
            p->value[idx] = orig + eps;
            const double lp = loss_at(x);
            p->value[idx] = orig - eps;
            const double lm = loss_at(x);
            p->value[idx] = orig;
            const double num = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(analytic[idx], num,
                        tol * std::max(1.0, std::fabs(num)))
                << p->name << " grad at " << idx;
        }
    }
}

TEST(Gradients, Conv2d)
{
    Rng rng(41);
    Conv2dConfig cfg{3, 6, 3, 1, 1, 1, true};
    Conv2d conv("c", cfg, rng);
    Tensor x(Shape({2, 3, 5, 5}));
    x.fillNormal(rng, 0.0f, 1.0f);
    checkGradients(conv, x);
}

TEST(Gradients, Conv2dStridedGrouped)
{
    Rng rng(42);
    Conv2dConfig cfg{4, 8, 3, 2, 1, 2, false};
    Conv2d conv("c", cfg, rng);
    Tensor x(Shape({2, 4, 7, 7}));
    x.fillNormal(rng, 0.0f, 1.0f);
    checkGradients(conv, x);
}

TEST(Gradients, Linear)
{
    Rng rng(43);
    Linear lin("l", 10, 7, rng);
    Tensor x(Shape({4, 10}));
    x.fillNormal(rng, 0.0f, 1.0f);
    checkGradients(lin, x);
}

TEST(Gradients, ReLUAndReLU6)
{
    Rng rng(44);
    ReLU relu("r");
    Tensor x(Shape({3, 4, 2, 2}));
    x.fillNormal(rng, 0.0f, 2.0f);
    checkGradients(relu, x);
    ReLU relu6("r6", true);
    checkGradients(relu6, x);
}

TEST(Gradients, MaxPoolAvgPoolGap)
{
    Rng rng(45);
    Tensor x(Shape({2, 3, 6, 6}));
    x.fillNormal(rng, 0.0f, 1.0f);
    MaxPool2d mp("mp", 2, 2);
    checkGradients(mp, x);
    AvgPool2d ap("ap", 2, 2);
    checkGradients(ap, x);
    GlobalAvgPool gap("gap");
    checkGradients(gap, x);
}

TEST(Gradients, Upsample)
{
    Rng rng(46);
    Tensor x(Shape({2, 3, 3, 3}));
    x.fillNormal(rng, 0.0f, 1.0f);
    UpsampleNearest up("up", 2);
    checkGradients(up, x);
}

TEST(Gradients, BatchNormParams)
{
    // BN's input gradient couples all batch elements; check parameter
    // gradients only (the input check perturbs batch statistics).
    Rng rng(47);
    BatchNorm2d bn("bn", 3);
    Tensor x(Shape({4, 3, 3, 3}));
    x.fillNormal(rng, 0.5f, 1.5f);

    Tensor out = bn.forward(x, true);
    Tensor v(out.shape());
    v.fillNormal(rng, 0.0f, 1.0f);
    bn.zeroGrad();
    bn.forward(x, true);
    bn.backward(v);

    const float eps = 1e-2f;
    for (Parameter *p : bn.parameters()) {
        Tensor analytic = p->grad;
        for (std::int64_t i = 0; i < p->value.numel(); ++i) {
            const float orig = p->value[i];
            auto loss = [&]() {
                Tensor o = bn.forward(x, true);
                double s = 0.0;
                for (std::int64_t j = 0; j < o.numel(); ++j)
                    s += static_cast<double>(o[j]) * v[j];
                return s;
            };
            p->value[i] = orig + eps;
            const double lp = loss();
            p->value[i] = orig - eps;
            const double lm = loss();
            p->value[i] = orig;
            EXPECT_NEAR(analytic[i], (lp - lm) / (2.0 * eps), 5e-2)
                << p->name << "[" << i << "]";
        }
    }
}

TEST(Gradients, BatchNormInputSumsToZero)
{
    // For gamma-scaled BN, the per-channel input gradients of a constant
    // upstream gradient must sum to ~0 (mean subtraction).
    Rng rng(48);
    BatchNorm2d bn("bn", 2);
    Tensor x(Shape({3, 2, 4, 4}));
    x.fillNormal(rng, 0.0f, 1.0f);
    bn.forward(x, true);
    Tensor g(Shape({3, 2, 4, 4}), 1.0f);
    Tensor gin = bn.backward(g);
    double total = 0.0;
    for (std::int64_t i = 0; i < gin.numel(); ++i)
        total += gin[i];
    EXPECT_NEAR(total, 0.0, 1e-3);
}

TEST(Gradients, ResidualWithDownsample)
{
    Rng rng(49);
    auto main = std::make_unique<Sequential>("m");
    Conv2dConfig c1{4, 4, 3, 1, 1, 1, false};
    main->add<Conv2d>("m.conv", c1, rng);
    auto skip = std::make_unique<Sequential>("s");
    Conv2dConfig cs{4, 4, 1, 1, 0, 1, false};
    skip->add<Conv2d>("s.conv", cs, rng);
    Residual res("res", std::move(main), std::move(skip), true);
    Tensor x(Shape({2, 4, 5, 5}));
    x.fillNormal(rng, 0.0f, 1.0f);
    checkGradients(res, x);
}

TEST(Gradients, SoftmaxCrossEntropy)
{
    Rng rng(50);
    Tensor logits(Shape({3, 5}));
    logits.fillNormal(rng, 0.0f, 2.0f);
    std::vector<int> labels{1, 4, 0};
    LossResult lr = softmaxCrossEntropy(logits, labels);
    const float eps = 1e-3f;
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        Tensor lp = logits;
        Tensor lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        const double num = (softmaxCrossEntropy(lp, labels).loss
                            - softmaxCrossEntropy(lm, labels).loss)
            / (2.0 * eps);
        EXPECT_NEAR(lr.grad[i], num, 1e-3);
    }
}

TEST(Layers, FlattenRoundTrip)
{
    Flatten f("f");
    Tensor x(Shape({2, 3, 4, 4}), 1.5f);
    Tensor out = f.forward(x, true);
    EXPECT_EQ(out.shape(), Shape({2, 48}));
    Tensor back = f.backward(out);
    EXPECT_EQ(back.shape(), x.shape());
}

TEST(Layers, NetworkTraversal)
{
    Rng rng(51);
    Sequential net("net");
    Conv2dConfig c{3, 8, 3, 1, 1, 1, false};
    net.add<Conv2d>("conv", c, rng);
    net.add<BatchNorm2d>("bn", 8);
    net.add<ReLU>("relu");
    net.add<GlobalAvgPool>("gap");
    net.add<Linear>("fc", 8, 4, rng);

    EXPECT_EQ(convLayers(net).size(), 1u);
    // conv weight + bn gamma/beta + fc weight/bias.
    EXPECT_EQ(net.allParameters().size(), 5u);
    EXPECT_GT(parameterCount(net), 0);

    Tensor x(Shape({2, 3, 6, 6}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor out = net.forward(x, false);
    EXPECT_EQ(out.shape(), Shape({2, 4}));
    EXPECT_GT(networkFlops(net), 0);
}

TEST(Layers, SnapshotRestore)
{
    Rng rng(52);
    Sequential net("net");
    Conv2dConfig c{2, 4, 3, 1, 1, 1, false};
    net.add<Conv2d>("conv", c, rng);
    auto snap = snapshotParameters(net);
    Conv2d *conv = convLayers(net)[0];
    Tensor zeros(conv->weight().value.shape());
    conv->setWeight(zeros);
    EXPECT_EQ(conv->weight().value.countZeros(),
              conv->weight().value.numel());
    restoreParameters(net, snap);
    EXPECT_GT(conv->weight().value.countZeros()
                  < conv->weight().value.numel(),
              0);
}

} // namespace
} // namespace mvq::nn
