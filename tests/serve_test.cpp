/**
 * @file
 * Deterministic tests for the batched serving runtime (src/serve). A
 * ManualClock drives every batching decision, so batch composition is a
 * pure function of (submissions, clock advances): coalescing honors the
 * latency deadline and MVQ_SERVE_MAX_BATCH, futures complete in
 * admission order, shutdown drains the queue, and malformed requests are
 * rejected with diagnostics. The model-level test proves the serving
 * contract that makes batching safe at all: a batched forward through
 * CompressedNet is memcmp-identical to sequential single-image forwards
 * (riding the MVQ_SIMD ctest matrix, so the proof holds per ISA).
 *
 * "Not ready" assertions use future::wait_for with a real-time grace
 * period; they are still deterministic in outcome because the fake
 * clock cannot advance on its own — a future that must not complete
 * CANNOT complete, no matter how long the wall waits.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "core/io/model_artifact.hpp"
#include "nn/compressed_net.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace mvq::serve {
namespace {

using core::makeServeModel;
using core::serveWriteOptions;

constexpr auto kGrace = std::chrono::milliseconds(100);

/** Rank-preserving fake model: y = 2x + 1 elementwise. */
Tensor
affineEcho(const Tensor &x)
{
    Tensor y = x;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        y[i] = 2.0f * y[i] + 1.0f;
    return y;
}

/** A [C, H, W] image filled with a constant tag value. */
Tensor
taggedImage(const Shape &chw, float tag)
{
    Tensor t(chw);
    t.fill(tag);
    return t;
}

bool
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
        && std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) * sizeof(float))
            == 0;
}

/** Server over the fake clock with an explicit policy. */
struct FakeClockServer
{
    std::shared_ptr<ManualClock> clock = std::make_shared<ManualClock>();
    Shape chw{2, 3, 3};
    std::unique_ptr<Server> server;

    FakeClockServer(std::int64_t max_batch, std::int64_t deadline_us,
                    Server::BatchForward fn = &affineEcho)
    {
        ServeOptions opts;
        opts.max_batch = max_batch;
        opts.deadline_us = deadline_us;
        // Pin the overload policy: CI's hostile-knob matrix runs this
        // suite under MVQ_SERVE_MAX_QUEUE=1 / MVQ_SERVE_REQUEST_TIMEOUT_US=1
        // and must not change what these batching tests observe (the
        // overload paths have their own suite, serve_robustness_test).
        opts.max_queue = 1024;
        opts.request_timeout_us = 0;
        opts.clock = clock;
        server = std::make_unique<Server>(chw, std::move(fn), opts);
    }
};

TEST(ServeOptionsTest, ResolvesUnsetFieldsFromEnvRegistry)
{
    // The registry values themselves depend on the environment the suite
    // runs under (CI's serve step pins MVQ_SERVE_MAX_BATCH), so compare
    // against the registry rather than hard-coded defaults.
    Server s(Shape({2, 3, 3}), &affineEcho);
    EXPECT_EQ(s.maxBatch(), env::int_("MVQ_SERVE_MAX_BATCH", 8));
    EXPECT_EQ(s.deadlineMicros(), env::int_("MVQ_SERVE_DEADLINE_US", 2000));
    EXPECT_EQ(s.maxQueue(), env::int_("MVQ_SERVE_MAX_QUEUE", 1024));
    EXPECT_EQ(s.requestTimeoutMicros(),
              env::int_("MVQ_SERVE_REQUEST_TIMEOUT_US", 0));
    EXPECT_EQ(s.failThreshold(), env::int_("MVQ_SERVE_FAIL_THRESHOLD", 8));
    s.shutdown();
}

TEST(ServeOptionsTest, RejectsInvalidPolicy)
{
    ServeOptions bad_batch;
    bad_batch.max_batch = -2;
    EXPECT_THROW(Server(Shape({2, 3, 3}), &affineEcho, bad_batch),
                 FatalError);
    EXPECT_THROW(Server(Shape({2, 3}), &affineEcho), FatalError);
    EXPECT_THROW(Server(Shape({2, 3, 3}), Server::BatchForward{}),
                 FatalError);
}

TEST(ServeBatchingTest, CoalescesUntilDeadline)
{
    FakeClockServer f(/*max_batch=*/4, /*deadline_us=*/1000);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 3; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));

    // Three of four slots filled and the clock parked before the
    // deadline: the batcher must hold the window open.
    EXPECT_EQ(futs[0].wait_for(kGrace), std::future_status::timeout);
    f.clock->advance(999);
    EXPECT_EQ(futs[0].wait_for(kGrace), std::future_status::timeout);

    // Reaching the deadline flushes the partial batch.
    f.clock->advance(1);
    for (int i = 0; i < 3; ++i) {
        const Tensor out = futs[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(out.shape(), f.chw);
        EXPECT_FLOAT_EQ(out[0], 2.0f * static_cast<float>(i) + 1.0f);
    }
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.admitted, 3);
    EXPECT_EQ(st.served, 3);
    EXPECT_EQ(st.batches, 1);
    EXPECT_EQ(st.max_batch_served, 3);
    EXPECT_EQ(st.deadline_flushes, 1);
}

TEST(ServeBatchingTest, FullBatchLaunchesWithoutClockAdvance)
{
    FakeClockServer f(/*max_batch=*/4, /*deadline_us=*/1000000);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));
    // Two full batches fire on size alone — the deadline is an hour away
    // and the fake clock never moves.
    for (int i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(futs[static_cast<std::size_t>(i)].get()[0],
                        2.0f * static_cast<float>(i) + 1.0f);
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.batches, 2);
    EXPECT_EQ(st.max_batch_served, 4);
    EXPECT_EQ(st.deadline_flushes, 0);
}

TEST(ServeBatchingTest, OverfullQueueSplitsAtMaxBatch)
{
    FakeClockServer f(/*max_batch=*/4, /*deadline_us=*/1000);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 10; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));
    // 10 requests, cap 4: two full batches complete on size; the
    // 2-image remainder waits for the deadline.
    for (int i = 0; i < 8; ++i)
        futs[static_cast<std::size_t>(i)].wait();
    EXPECT_EQ(futs[8].wait_for(kGrace), std::future_status::timeout);
    f.clock->advance(1000);
    for (int i = 8; i < 10; ++i)
        EXPECT_FLOAT_EQ(futs[static_cast<std::size_t>(i)].get()[0],
                        2.0f * static_cast<float>(i) + 1.0f);
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.admitted, 10);
    EXPECT_EQ(st.served, 10);
    EXPECT_EQ(st.batches, 3);
    EXPECT_EQ(st.max_batch_served, 4);
    EXPECT_EQ(st.deadline_flushes, 1);
}

TEST(ServeBatchingTest, FuturesCompleteInAdmissionOrder)
{
    FakeClockServer f(/*max_batch=*/4, /*deadline_us=*/1000);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));
    // The first (full) batch is requests 0..3, claimed FIFO; 4 and 5
    // must still be pending when 0..3 are done.
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(futs[static_cast<std::size_t>(i)].get()[0],
                        2.0f * static_cast<float>(i) + 1.0f);
    EXPECT_EQ(futs[4].wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);
    EXPECT_EQ(futs[5].wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);
    f.clock->advance(1000);
    for (int i = 4; i < 6; ++i)
        EXPECT_FLOAT_EQ(futs[static_cast<std::size_t>(i)].get()[0],
                        2.0f * static_cast<float>(i) + 1.0f);
}

TEST(ServeBatchingTest, ShutdownDrainsQueue)
{
    FakeClockServer f(/*max_batch=*/100, /*deadline_us=*/1000000000);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 5; ++i)
        futs.push_back(f.server->submit(
            taggedImage(f.chw, static_cast<float>(i))));
    EXPECT_EQ(futs[0].wait_for(kGrace), std::future_status::timeout);

    // Neither the batch size (100) nor the deadline (forever away on a
    // parked clock) is reachable: only the shutdown drain completes
    // these, and it must complete ALL of them.
    f.server->shutdown();
    for (int i = 0; i < 5; ++i)
        EXPECT_FLOAT_EQ(futs[static_cast<std::size_t>(i)].get()[0],
                        2.0f * static_cast<float>(i) + 1.0f);
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.served, 5);

    EXPECT_THROW(f.server->submit(taggedImage(f.chw, 9.0f)), FatalError);
    EXPECT_EQ(f.server->stats().rejected, 1);
}

TEST(ServeRejectionTest, MalformedRequestsAreRejectedWithDiagnostics)
{
    FakeClockServer f(/*max_batch=*/4, /*deadline_us=*/1000);
    try {
        f.server->submit(Tensor());
        FAIL() << "zero-size image accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("zero-size"),
                  std::string::npos)
            << e.what();
    }
    try {
        f.server->submit(Tensor(Shape({2, 4, 4})));
        FAIL() << "oversized image accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("[2, 3, 3]"),
                  std::string::npos)
            << e.what();
    }
    // Batched submissions are rejected too: one image per request.
    EXPECT_THROW(f.server->submit(Tensor(Shape({1, 2, 3, 3}))),
                 FatalError);
    EXPECT_EQ(f.server->stats().rejected, 3);
    EXPECT_EQ(f.server->stats().admitted, 0);
}

TEST(ServeBatchingTest, ForwardExceptionPropagatesToEveryFuture)
{
    auto throwing = [](const Tensor &) -> Tensor {
        fatal("model exploded");
    };
    FakeClockServer f(/*max_batch=*/2, /*deadline_us=*/1000, throwing);
    auto f0 = f.server->submit(taggedImage(f.chw, 0.0f));
    auto f1 = f.server->submit(taggedImage(f.chw, 1.0f));
    EXPECT_THROW(f0.get(), FatalError);
    EXPECT_THROW(f1.get(), FatalError);
    // The batcher survives a failing batch and keeps counting.
    const ServerStats st = f.server->stats();
    EXPECT_EQ(st.batches, 1);
    EXPECT_EQ(st.served, 0);
}

// ---------------------------------------------------------------- model

class ServeNetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = "/tmp/mvq_serve_test.mvqi";
        core::io::saveArtifact(makeServeModel(), path_,
                               core::io::ArtifactFormat::Mvqi,
                               serveWriteOptions());
        artifact_ = core::io::openArtifact(path_);
        net_ = std::make_unique<nn::CompressedNet>(*artifact_);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    Tensor
    randomImage(Rng &rng) const
    {
        Tensor t(Shape({net_->inChannels(), 6, 6}));
        t.fillNormal(rng, 0.0f, 1.0f);
        return t;
    }

    std::string path_;
    std::unique_ptr<core::io::ModelArtifact> artifact_;
    std::unique_ptr<nn::CompressedNet> net_;
};

TEST_F(ServeNetTest, CompressedNetChainsLayersOverSharedOperands)
{
    EXPECT_EQ(net_->layerCount(), 2);
    EXPECT_EQ(net_->inChannels(), 8);
    Tensor x(Shape({2, 8, 6, 6}));
    Rng rng(42);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Tensor y = net_->forward(x);
    // Two pad-1 stride-1 3x3 convs: spatial size survives, channels
    // become layer 1's output count.
    EXPECT_EQ(y.shape(), Shape({2, 16, 6, 6}));
    // The net borrows the artifact's cached operands instead of packing
    // its own copy.
    EXPECT_EQ(net_->layer(0).packedOperands().get(),
              artifact_->packedOperands(0).get());
}

TEST_F(ServeNetTest, BatchedForwardBitIdenticalToSequentialForwards)
{
    constexpr int kImages = 8;
    Rng rng(7);
    std::vector<Tensor> images;
    std::vector<Tensor> refs;
    for (int i = 0; i < kImages; ++i) {
        images.push_back(randomImage(rng));
        // Sequential reference: one image per forward (batch of 1).
        Tensor x1(Shape({1, net_->inChannels(), 6, 6}));
        std::memcpy(x1.data(), images.back().data(),
                    static_cast<std::size_t>(images.back().numel())
                        * sizeof(float));
        const Tensor y1 = net_->forward(x1);
        Tensor slab(Shape({y1.dim(1), y1.dim(2), y1.dim(3)}));
        std::memcpy(slab.data(), y1.data(),
                    static_cast<std::size_t>(slab.numel()) * sizeof(float));
        refs.push_back(std::move(slab));
    }

    // One full batch of 8 ...
    {
        ServeOptions opts;
        opts.max_batch = kImages;
        opts.deadline_us = 1000000;
        opts.max_queue = 1024;       // pinned against the hostile-knob
        opts.request_timeout_us = 0; // CI matrix (see FakeClockServer)
        Server server(Shape({net_->inChannels(), 6, 6}),
                      [this](const Tensor &x) { return net_->forward(x); },
                      opts);
        std::vector<std::future<Tensor>> futs;
        for (const Tensor &img : images)
            futs.push_back(server.submit(img));
        for (int i = 0; i < kImages; ++i)
            EXPECT_TRUE(tensorsBitIdentical(
                futs[static_cast<std::size_t>(i)].get(),
                refs[static_cast<std::size_t>(i)]))
                << "image " << i << " differs in the full batch";
        EXPECT_EQ(server.stats().batches, 1);
    }
    // ... and ragged 3/3/2 batches: composition must not matter either.
    {
        ServeOptions opts;
        opts.max_batch = 3;
        opts.deadline_us = 0; // flush whatever is queued immediately
        opts.max_queue = 1024;
        opts.request_timeout_us = 0;
        Server server(Shape({net_->inChannels(), 6, 6}),
                      [this](const Tensor &x) { return net_->forward(x); },
                      opts);
        std::vector<std::future<Tensor>> futs;
        for (const Tensor &img : images)
            futs.push_back(server.submit(img));
        for (int i = 0; i < kImages; ++i)
            EXPECT_TRUE(tensorsBitIdentical(
                futs[static_cast<std::size_t>(i)].get(),
                refs[static_cast<std::size_t>(i)]))
                << "image " << i << " differs under ragged batching";
    }
}

} // namespace
} // namespace mvq::serve
