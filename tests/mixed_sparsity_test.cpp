/**
 * @file
 * Mixed layerwise N:M search tests: budget attainment, the guarantee of
 * removing no more magnitude than uniform pruning at the same budget,
 * and bound handling.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/mixed_sparsity.hpp"
#include "nn/network.hpp"

namespace mvq::core {
namespace {

/** Two conv layers with very different magnitude scales. */
struct Fixture
{
    nn::Sequential net{"net"};
    std::vector<nn::Conv2d *> targets;

    Fixture()
    {
        Rng rng(231);
        nn::Conv2dConfig c1{8, 32, 3, 1, 1, 1, false};
        auto *a = net.add<nn::Conv2d>("a", c1, rng);
        nn::Conv2dConfig c2{8, 32, 3, 1, 1, 1, false};
        auto *b = net.add<nn::Conv2d>("b", c2, rng);
        // Layer b has 10x smaller weights: it should absorb sparsity.
        Tensor wb = b->weight().value;
        scaleInPlace(wb, 0.1f);
        b->setWeight(wb);
        targets = {a, b};
    }
};

TEST(MixedSparsity, HitsGlobalBudget)
{
    Fixture f;
    const auto res = chooseLayerwisePatterns(f.targets, 16, 0.75, 16,
                                             Grouping::OutputChannelWise);
    ASSERT_EQ(res.patterns.size(), 2u);
    EXPECT_NEAR(res.achieved_sparsity, 0.75, 0.05);
    for (const auto &p : res.patterns) {
        EXPECT_GE(p.n, 1);
        EXPECT_LE(p.n, 16);
    }
}

TEST(MixedSparsity, SmallMagnitudeLayerPrunedHarder)
{
    Fixture f;
    const auto res = chooseLayerwisePatterns(f.targets, 16, 0.5, 16,
                                             Grouping::OutputChannelWise);
    // Layer b (10x smaller weights) must end up at least as sparse.
    EXPECT_LE(res.patterns[1].n, res.patterns[0].n);
}

TEST(MixedSparsity, BeatsUniformOnRemovedMagnitude)
{
    Fixture f;
    const double target = 0.75;
    const auto mixed = chooseLayerwisePatterns(
        f.targets, 16, target, 16, Grouping::OutputChannelWise);
    const double uniform = uniformPrunedMagnitude(
        f.targets, NmPattern{4, 16}, 16, Grouping::OutputChannelWise);
    // Same global budget (4:16 == 75%), less magnitude removed.
    EXPECT_NEAR(mixed.achieved_sparsity, target, 0.05);
    EXPECT_LE(mixed.pruned_magnitude, uniform + 1e-6);
}

TEST(MixedSparsity, UniformWeightsGiveUniformPatterns)
{
    // When both layers have identical scale the greedy search should
    // land near the uniform solution.
    Rng rng(232);
    nn::Sequential net("net");
    nn::Conv2dConfig cc{8, 32, 3, 1, 1, 1, false};
    auto *a = net.add<nn::Conv2d>("a", cc, rng);
    auto *b = net.add<nn::Conv2d>("b", cc, rng);
    const auto res = chooseLayerwisePatterns(
        {a, b}, 16, 0.75, 16, Grouping::OutputChannelWise);
    EXPECT_NEAR(res.patterns[0].n, res.patterns[1].n, 1);
}

TEST(MixedSparsity, MinNFloorRespected)
{
    Fixture f;
    const auto res = chooseLayerwisePatterns(
        f.targets, 16, 0.95, 16, Grouping::OutputChannelWise, 2);
    for (const auto &p : res.patterns)
        EXPECT_GE(p.n, 2);
}

TEST(MixedSparsity, RejectsBadInputs)
{
    Fixture f;
    EXPECT_THROW(chooseLayerwisePatterns(
                     {}, 16, 0.5, 16, Grouping::OutputChannelWise),
                 FatalError);
    EXPECT_THROW(chooseLayerwisePatterns(
                     f.targets, 16, 1.5, 16,
                     Grouping::OutputChannelWise),
                 FatalError);
}

} // namespace
} // namespace mvq::core
