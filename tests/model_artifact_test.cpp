/**
 * @file
 * ModelArtifact API tests: stream<->mvqi round-trip bit-identity
 * (reconstructed tensors and forward outputs memcmp-equal under the
 * active MVQ_SIMD ISA), borrowed-view vs owned-operand forward identity,
 * operand sharing/caching, mapping lifetime, the aligned-heap fallback,
 * and the checked-in golden fixture pinning MVQI format v1 byte-for-byte.
 *
 * Regenerate the fixture (after an *intentional* format change — bump
 * kMvqiVersion!) with:  MVQ_WRITE_GOLDEN=1 ./model_artifact_test
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/env.hpp"
#include "common/logging.hpp"
#include "core/io/mmap_artifact.hpp"
#include "core/io/model_artifact.hpp"
#include "core/io/stream_artifact.hpp"
#include "mvqi_test_util.hpp"
#include "nn/compressed_conv2d.hpp"
#include "tensor/ops.hpp"

#ifndef MVQ_SOURCE_DIR
#define MVQ_SOURCE_DIR "."
#endif

namespace mvq::core {
namespace {

std::string
tmpPath(const char *name)
{
    return std::string("/tmp/") + name;
}

bool
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
        && std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) * sizeof(float))
            == 0;
}

/** Forward an NCHW probe through layer `i` of an artifact. */
Tensor
forwardLayer(const io::ModelArtifact &art, std::int64_t i,
             std::int64_t groups, std::int64_t hw)
{
    const Shape ws = art.layerShape(i);
    nn::CompressedConv2d conv(art.layerName(i), ws,
                              art.packedOperands(i, groups), 1, 1);
    Tensor x(Shape({2, ws.dim(1) * groups, hw, hw}));
    Rng rng(901 + i);
    x.fillNormal(rng, 0.0f, 1.0f);
    return conv.forward(x);
}

class ModelArtifactTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        model_ = makeGoldenModel();
        stream_path_ = tmpPath("mvq_artifact_test.mvq");
        image_path_ = tmpPath("mvq_artifact_test.mvqi");
        io::saveArtifact(model_, stream_path_,
                         io::ArtifactFormat::Stream);
        io::saveArtifact(model_, image_path_, io::ArtifactFormat::Mvqi,
                         goldenWriteOptions());
    }

    void
    TearDown() override
    {
        std::remove(stream_path_.c_str());
        std::remove(image_path_.c_str());
    }

    CompressedModel model_;
    std::string stream_path_;
    std::string image_path_;
};

TEST_F(ModelArtifactTest, OpenSniffsFormat)
{
    const auto s = io::openArtifact(stream_path_);
    const auto m = io::openArtifact(image_path_);
    EXPECT_EQ(s->format(), io::ArtifactFormat::Stream);
    EXPECT_EQ(m->format(), io::ArtifactFormat::Mvqi);
    EXPECT_EQ(s->layerCount(), 2);
    EXPECT_EQ(m->layerCount(), 2);
    EXPECT_EQ(m->layerName(1), "conv1_grouped");
    EXPECT_EQ(m->layerShape(1), Shape({16, 4, 3, 3}));
    EXPECT_EQ(m->bakedGroups(0), 1);
    EXPECT_EQ(m->bakedGroups(1), 2);
    EXPECT_EQ(s->bakedGroups(1), 0);
}

TEST_F(ModelArtifactTest, RoundTripReconstructionBitIdentity)
{
    const auto s = io::openArtifact(stream_path_);
    const auto m = io::openArtifact(image_path_);
    for (std::int64_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(tensorsBitIdentical(s->model().reconstructLayer(i),
                                        m->model().reconstructLayer(i)))
            << "layer " << i;
        EXPECT_TRUE(tensorsBitIdentical(model_.reconstructLayer(i),
                                        m->model().reconstructLayer(i)))
            << "layer " << i;
    }
    EXPECT_EQ(m->model().storage().totalBits(),
              model_.storage().totalBits());
}

TEST_F(ModelArtifactTest, RoundTripForwardBitIdentity)
{
    // Forward outputs from the mapped image must memcmp-equal the stream
    // path under the active ISA (covers every MVQ_SIMD via the CI
    // matrix), for both the plain and the grouped conv layer.
    const auto s = io::openArtifact(stream_path_);
    const auto m = io::openArtifact(image_path_);
    EXPECT_TRUE(tensorsBitIdentical(forwardLayer(*s, 0, 1, 6),
                                    forwardLayer(*m, 0, 1, 6)));
    EXPECT_TRUE(tensorsBitIdentical(forwardLayer(*s, 1, 2, 6),
                                    forwardLayer(*m, 1, 2, 6)));
}

TEST_F(ModelArtifactTest, BorrowedViewsAliasTheImageZeroCopy)
{
    const auto art = std::make_unique<io::MmapArtifact>(image_path_);
    const auto *base = art->view().data();
    const auto *end = base + art->view().size();
    for (std::int64_t i = 0; i < art->layerCount(); ++i) {
        const io::SharedOperands ops = art->packedOperands(i);
        for (const GroupedSparseMatrix &g : *ops) {
            // Borrowed mode, and every array points into the mapping —
            // no bit-stream decode, no packGroupedRows, no copies.
            EXPECT_TRUE(g.rows.values.borrowed());
            EXPECT_TRUE(g.tiles.borrowed());
            EXPECT_TRUE(g.band_ptr.borrowed());
            EXPECT_TRUE(g.remainder.values.borrowed());
            const auto *p =
                reinterpret_cast<const std::uint8_t *>(g.rows.values.data());
            EXPECT_TRUE(p >= base && p <= end);
            EXPECT_TRUE(g.validated);
        }
    }
}

TEST_F(ModelArtifactTest, BorrowedVsOwnedForwardMemcmp)
{
    const auto art = io::openArtifact(image_path_);
    for (std::int64_t i = 0; i < 2; ++i) {
        const std::int64_t groups = std::max<std::int64_t>(
            art->bakedGroups(i), 1);
        // Owned operand: packed fresh from the in-memory model.
        const CompressedLayer &cl =
            model_.layers[static_cast<std::size_t>(i)];
        nn::CompressedConv2d owned(
            cl, model_.codebooks[static_cast<std::size_t>(cl.codebook_id)],
            1, 1, groups);
        nn::CompressedConv2d borrowed(art->layerName(i),
                                      art->layerShape(i),
                                      art->packedOperands(i), 1, 1);
        Tensor x(Shape({1, art->layerShape(i).dim(1) * groups, 7, 7}));
        Rng rng(31 + i);
        x.fillNormal(rng, 0.0f, 1.0f);
        EXPECT_TRUE(tensorsBitIdentical(owned.forward(x),
                                        borrowed.forward(x)))
            << "layer " << i;
        EXPECT_DOUBLE_EQ(owned.density(), borrowed.density());
    }
}

TEST_F(ModelArtifactTest, PackedOperandsAreCachedAndShared)
{
    const auto art = io::openArtifact(image_path_);
    const io::SharedOperands a = art->packedOperands(0);
    const io::SharedOperands b = art->packedOperands(0);
    EXPECT_EQ(a.get(), b.get()) << "cache must hand out one operand set";

    // N conv instances share the one set through the injected ctor.
    nn::CompressedConv2d c1(art->layerName(0), art->layerShape(0), a, 1, 1);
    nn::CompressedConv2d c2(art->layerName(0), art->layerShape(0),
                            c1.packedOperands(), 1, 1);
    EXPECT_EQ(c1.packedOperands().get(), c2.packedOperands().get());
}

TEST_F(ModelArtifactTest, SharedOperandsOutliveTheArtifact)
{
    // The aliasing shared_ptr keeps the mapping alive after the artifact
    // handle is gone.
    io::SharedOperands ops;
    Shape ws;
    std::string name;
    {
        const auto art = io::openArtifact(image_path_);
        ops = art->packedOperands(0);
        ws = art->layerShape(0);
        name = art->layerName(0);
    }
    nn::CompressedConv2d conv(name, ws, ops, 1, 1);
    Tensor x(Shape({1, ws.dim(1), 5, 5}));
    Rng rng(5);
    x.fillNormal(rng, 0.0f, 1.0f);
    EXPECT_GT(conv.forward(x).numel(), 0);
}

TEST_F(ModelArtifactTest, HeapFallbackMatchesMmap)
{
    const bool saved = io::mvqiHeapFallback();
    io::setMvqiHeapFallback(false);
    const Tensor mapped = forwardLayer(*io::openArtifact(image_path_), 0,
                                       1, 5);
    io::setMvqiHeapFallback(true);
    const auto art = std::make_unique<io::MmapArtifact>(image_path_);
    EXPECT_FALSE(art->mapped());
    const Tensor heap = forwardLayer(*art, 0, 1, 5);
    io::setMvqiHeapFallback(saved);
    EXPECT_TRUE(tensorsBitIdentical(mapped, heap));
}

TEST_F(ModelArtifactTest, NonBakedGroupCountFallsBackCorrectly)
{
    // Asking the MVQI artifact for a group count it did not bake is
    // correct (repacks from the materialized model), just not zero-copy.
    const auto s = io::openArtifact(stream_path_);
    const auto m = io::openArtifact(image_path_);
    EXPECT_TRUE(tensorsBitIdentical(forwardLayer(*s, 1, 1, 6),
                                    forwardLayer(*m, 1, 1, 6)));
    EXPECT_FALSE((*m->packedOperands(1, 1))[0].rows.values.borrowed());
}

TEST(MvqiGolden, FixturePinsFormatV1)
{
    // Byte-for-byte lock on the checked-in v1 image. If this fails you
    // changed the on-disk layout: bump kMvqiVersion, update
    // docs/FORMAT.md, and regenerate with MVQ_WRITE_GOLDEN=1.
    const std::string golden_path =
        std::string(MVQ_SOURCE_DIR) + "/tests/data/golden_v1.mvqi";
    const std::vector<std::uint8_t> image =
        io::buildMvqiImage(makeGoldenModel(), goldenWriteOptions());

    if (env::isSet("MVQ_WRITE_GOLDEN")) {
        std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
        out.write(reinterpret_cast<const char *>(image.data()),
                  static_cast<std::streamsize>(image.size()));
        GTEST_SKIP() << "regenerated " << golden_path;
    }

    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing fixture " << golden_path;
    const std::vector<std::uint8_t> golden(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    ASSERT_EQ(image.size(), golden.size());
    EXPECT_EQ(std::memcmp(image.data(), golden.data(), image.size()), 0)
        << "MVQI writer output drifted from the v1 fixture";
}

TEST(MvqiGolden, FixtureLoadsAndForwards)
{
    // The fixture is not just bytes: it must open, validate, and serve
    // borrowed operands that forward bit-identically to a fresh image.
    const std::string golden_path =
        std::string(MVQ_SOURCE_DIR) + "/tests/data/golden_v1.mvqi";
    const auto art = io::openArtifact(golden_path);
    ASSERT_EQ(art->layerCount(), 2);

    const std::string fresh_path = tmpPath("mvq_golden_fresh.mvqi");
    io::saveArtifact(makeGoldenModel(), fresh_path,
                     io::ArtifactFormat::Mvqi, goldenWriteOptions());
    const auto fresh = io::openArtifact(fresh_path);
    EXPECT_TRUE(tensorsBitIdentical(forwardLayer(*art, 0, 1, 6),
                                    forwardLayer(*fresh, 0, 1, 6)));
    EXPECT_TRUE(tensorsBitIdentical(forwardLayer(*art, 1, 2, 6),
                                    forwardLayer(*fresh, 1, 2, 6)));
    std::remove(fresh_path.c_str());
}

} // namespace
} // namespace mvq::core
