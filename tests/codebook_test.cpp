/**
 * @file
 * Codebook quantization tests: grid snapping, MSE-optimal scale search,
 * idempotent requantization, and storage accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hpp"
#include "core/codebook.hpp"

namespace mvq::core {
namespace {

TEST(Codebook, QuantizeValueClampsAndRounds)
{
    // 8-bit: levels -128..127 times scale.
    EXPECT_FLOAT_EQ(quantizeValue(0.24f, 0.1f, 8), 0.2f);
    EXPECT_FLOAT_EQ(quantizeValue(0.25f, 0.1f, 8), 0.3f);
    EXPECT_FLOAT_EQ(quantizeValue(-100.0f, 0.1f, 8), -12.8f);
    EXPECT_FLOAT_EQ(quantizeValue(100.0f, 0.1f, 8), 12.7f);
}

TEST(Codebook, QuantizationBoundsError)
{
    Rng rng(101);
    Codebook cb;
    cb.codewords = Tensor(Shape({64, 8}));
    cb.codewords.fillNormal(rng, 0.0f, 0.1f);
    Tensor original = cb.codewords;
    const float scale = quantizeCodebook(cb, 8);
    EXPECT_GT(scale, 0.0f);
    EXPECT_EQ(cb.qbits, 8);
    // Max error bounded by scale/2 inside the clamp range.
    for (std::int64_t i = 0; i < original.numel(); ++i) {
        EXPECT_LE(std::fabs(original[i] - cb.codewords[i]),
                  scale * 0.5f + 1e-6f);
    }
}

TEST(Codebook, ValuesLandOnGrid)
{
    Rng rng(102);
    Codebook cb;
    cb.codewords = Tensor(Shape({32, 4}));
    cb.codewords.fillNormal(rng, 0.0f, 1.0f);
    quantizeCodebook(cb, 4);
    // At 4 bits there are at most 16 distinct levels.
    std::set<float> levels;
    for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
        levels.insert(cb.codewords[i]);
    EXPECT_LE(levels.size(), 16u);
    // And each is an integer multiple of the scale.
    for (float v : levels) {
        const float q = v / cb.scale;
        EXPECT_NEAR(q, std::round(q), 1e-4f);
    }
}

TEST(Codebook, RequantizeIdempotent)
{
    Rng rng(103);
    Codebook cb;
    cb.codewords = Tensor(Shape({16, 8}));
    cb.codewords.fillNormal(rng, 0.0f, 0.5f);
    quantizeCodebook(cb, 8);
    Tensor once = cb.codewords;
    requantizeCodebook(cb);
    for (std::int64_t i = 0; i < once.numel(); ++i)
        EXPECT_FLOAT_EQ(once[i], cb.codewords[i]);
}

TEST(Codebook, ScaleSearchBeatsNaiveAbsmax)
{
    // Heavy-tailed values: the MSE-optimal scale clips outliers and must
    // do no worse than absmax/qmax.
    Rng rng(104);
    Codebook cb;
    cb.codewords = Tensor(Shape({256, 4}));
    cb.codewords.fillNormal(rng, 0.0f, 0.1f);
    cb.codewords[0] = 5.0f; // outlier
    Tensor original = cb.codewords;

    Codebook naive;
    naive.codewords = original;
    const float naive_scale = original.absMax() / 127.0f;
    naive.scale = naive_scale;
    naive.qbits = 8;
    requantizeCodebook(naive);
    double naive_err = 0.0;
    for (std::int64_t i = 0; i < original.numel(); ++i) {
        const double diff = original[i] - naive.codewords[i];
        naive_err += diff * diff;
    }

    quantizeCodebook(cb, 8);
    double fitted_err = 0.0;
    for (std::int64_t i = 0; i < original.numel(); ++i) {
        const double diff = original[i] - cb.codewords[i];
        fitted_err += diff * diff;
    }
    EXPECT_LE(fitted_err, naive_err);
}

TEST(Codebook, StorageBits)
{
    Codebook cb;
    cb.codewords = Tensor(Shape({512, 16}));
    EXPECT_EQ(cb.storageBits(), 512 * 16 * 32); // unquantized fp32
    cb.qbits = 8;
    EXPECT_EQ(cb.storageBits(), 512 * 16 * 8);
}

TEST(Codebook, ZeroCodebookHandled)
{
    Codebook cb;
    cb.codewords = Tensor(Shape({4, 4}));
    EXPECT_NO_THROW(quantizeCodebook(cb, 8));
    EXPECT_EQ(cb.codewords.countZeros(), 16);
}

TEST(Codebook, RejectsBadBitWidths)
{
    Codebook cb;
    cb.codewords = Tensor(Shape({4, 4}), 1.0f);
    EXPECT_THROW(quantizeCodebook(cb, 1), FatalError);
    EXPECT_THROW(quantizeCodebook(cb, 17), FatalError);
}

} // namespace
} // namespace mvq::core
