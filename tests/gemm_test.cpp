/**
 * @file
 * GEMM kernel coverage: every transpose combination and alpha/beta
 * accumulation checked against the scalar reference kernel, at sizes that
 * exercise both the small-problem fast path and the packed/blocked path
 * (including partial MR/NR/MC/KC tiles).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { setNumThreads(0); }
};

Tensor
randomMat(Rng &rng, std::int64_t r, std::int64_t c)
{
    Tensor t(Shape({r, c}));
    t.fillNormal(rng, 0.0f, 1.0f);
    return t;
}

/** Run gemm and gemmReference on identical inputs and compare. */
void
checkAgainstReference(std::int64_t m, std::int64_t n, std::int64_t k,
                      bool trans_a, bool trans_b, float alpha, float beta)
{
    Rng rng(99);
    Tensor a = trans_a ? randomMat(rng, k, m) : randomMat(rng, m, k);
    Tensor b = trans_b ? randomMat(rng, n, k) : randomMat(rng, k, n);
    Tensor c0 = randomMat(rng, m, n);

    Tensor c_ref = c0;
    gemmReference(a, trans_a, b, trans_b, c_ref, alpha, beta);
    Tensor c_opt = c0;
    gemm(a, trans_a, b, trans_b, c_opt, alpha, beta);

    // The blocked kernel reorders the k accumulation, so allow a small
    // relative tolerance scaled by the reduction depth.
    const float tol = 1e-5f * static_cast<float>(k);
    const float diff = maxAbsDiff(c_ref, c_opt);
    EXPECT_LE(diff, tol) << "m=" << m << " n=" << n << " k=" << k
                         << " ta=" << trans_a << " tb=" << trans_b
                         << " alpha=" << alpha << " beta=" << beta;
}

TEST(Gemm, AllTransposeCombosSmall)
{
    for (bool ta : {false, true})
        for (bool tb : {false, true})
            checkAgainstReference(7, 9, 11, ta, tb, 1.0f, 0.0f);
}

TEST(Gemm, AllTransposeCombosBlocked)
{
    // Big enough to take the packed path with ragged tile edges.
    for (bool ta : {false, true})
        for (bool tb : {false, true})
            checkAgainstReference(67, 41, 53, ta, tb, 1.0f, 0.0f);
}

TEST(Gemm, AlphaBetaAccumulation)
{
    for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
            checkAgainstReference(34, 29, 47, ta, tb, 0.5f, 1.0f);
            checkAgainstReference(34, 29, 47, ta, tb, -2.0f, 0.5f);
            checkAgainstReference(34, 29, 47, ta, tb, 1.0f, -1.0f);
        }
    }
}

TEST(Gemm, ExactMultipleOfTiles)
{
    // Dimensions hitting MR/NR/MC/KC boundaries exactly.
    checkAgainstReference(64, 64, 64, false, false, 1.0f, 0.0f);
    checkAgainstReference(128, 8, 256, false, false, 1.0f, 1.0f);
}

TEST(Gemm, DegenerateShapes)
{
    checkAgainstReference(1, 1, 1, false, false, 1.0f, 0.0f);
    checkAgainstReference(1, 65, 300, false, true, 1.0f, 0.0f);
    checkAgainstReference(65, 1, 300, true, false, 1.0f, 0.0f);
}

TEST(Gemm, MatchesReferenceAtMultipleThreadCounts)
{
    ThreadGuard guard;
    for (int threads : {1, 2, 4}) {
        setNumThreads(threads);
        checkAgainstReference(70, 66, 130, false, false, 1.0f, 0.0f);
        checkAgainstReference(70, 66, 130, true, true, 1.0f, 0.0f);
    }
}

TEST(Gemm, ShapeMismatchesThrow)
{
    Rng rng(5);
    Tensor a = randomMat(rng, 4, 5);
    Tensor b = randomMat(rng, 6, 7);
    Tensor c = randomMat(rng, 4, 7);
    EXPECT_THROW(gemm(a, false, b, false, c), FatalError);
    Tensor b2 = randomMat(rng, 5, 7);
    Tensor cbad = randomMat(rng, 4, 6);
    EXPECT_THROW(gemm(a, false, b2, false, cbad), FatalError);
}

} // namespace
} // namespace mvq
