/**
 * @file
 * Mask codec tests: encode/decode bijection over every legal mask and
 * the storage-cost arithmetic the paper's Section 5 relies on
 * (4:16 -> 11 bits per 16 weights, 1:2 -> 1 per 2, 2:4 -> 3 per 4).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "core/mask_codec.hpp"

namespace mvq::core {
namespace {

class CodecSweep : public ::testing::TestWithParam<NmPattern>
{
};

TEST_P(CodecSweep, RoundTripAllCodes)
{
    const MaskCodec codec(GetParam());
    for (std::uint32_t code = 0; code < codec.codeCount(); ++code) {
        const auto bits = codec.decodeGroup(code);
        ASSERT_EQ(bits.size(),
                  static_cast<std::size_t>(GetParam().m));
        int set = 0;
        for (auto b : bits)
            set += b;
        ASSERT_EQ(set, GetParam().n);
        EXPECT_EQ(codec.encodeGroup(bits.data()), code);
    }
}

TEST_P(CodecSweep, LutMatchesDecode)
{
    const MaskCodec codec(GetParam());
    ASSERT_EQ(codec.lut().size(), codec.codeCount());
    for (std::uint32_t code = 0; code < codec.codeCount(); ++code) {
        const auto bits = codec.decodeGroup(code);
        std::uint32_t word = 0;
        for (int i = 0; i < GetParam().m; ++i) {
            if (bits[static_cast<std::size_t>(i)])
                word |= 1u << i;
        }
        EXPECT_EQ(codec.lut()[code], word);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CodecSweep,
    ::testing::Values(NmPattern{1, 2}, NmPattern{2, 4}, NmPattern{4, 16},
                      NmPattern{1, 4}, NmPattern{3, 16}, NmPattern{2, 8},
                      NmPattern{6, 16}));

TEST(MaskCodec, PaperStorageCosts)
{
    // Section 5 / Section 6.2 numbers.
    EXPECT_EQ(MaskCodec(NmPattern{4, 16}).bitsPerGroup(), 11);
    EXPECT_NEAR(MaskCodec(NmPattern{4, 16}).bitsPerWeight(), 11.0 / 16.0,
                1e-12);
    EXPECT_EQ(MaskCodec(NmPattern{1, 2}).bitsPerGroup(), 1);
    EXPECT_NEAR(MaskCodec(NmPattern{1, 2}).bitsPerWeight(), 0.5, 1e-12);
    EXPECT_EQ(MaskCodec(NmPattern{2, 4}).bitsPerGroup(), 3);
    EXPECT_NEAR(MaskCodec(NmPattern{2, 4}).bitsPerWeight(), 0.75, 1e-12);
    // The 2:4-vs-1:2 gap quoted in Section 6.2: 0.25 bit/weight.
    EXPECT_NEAR(MaskCodec(NmPattern{2, 4}).bitsPerWeight()
                    - MaskCodec(NmPattern{1, 2}).bitsPerWeight(),
                0.25, 1e-12);
}

TEST(MaskCodec, DegeneratePatternCostsZero)
{
    // 1:1 = vanilla VQ (no pruning): C(1,1) = 1 -> 0 bits.
    const MaskCodec codec(NmPattern{1, 1});
    EXPECT_EQ(codec.codeCount(), 1u);
    EXPECT_EQ(codec.bitsPerGroup(), 0);
    EXPECT_DOUBLE_EQ(codec.bitsPerWeight(), 0.0);
    const auto bits = codec.decodeGroup(0);
    EXPECT_EQ(bits.size(), 1u);
    EXPECT_EQ(bits[0], 1);
}

TEST(MaskCodec, SubvectorRoundTrip)
{
    const NmPattern p{2, 4};
    const MaskCodec codec(p);
    const std::int64_t d = 16;
    // A legal 2:4 mask over d = 16: 4 groups.
    std::vector<std::uint8_t> mask = {1, 0, 1, 0,  0, 1, 1, 0,
                                      0, 0, 1, 1,  1, 1, 0, 0};
    const auto codes = codec.encodeSubvector(mask.data(), d);
    EXPECT_EQ(codes.size(), 4u);
    EXPECT_EQ(codec.decodeSubvector(codes), mask);
}

TEST(MaskCodec, RejectsIllegalGroups)
{
    const MaskCodec codec(NmPattern{2, 4});
    std::vector<std::uint8_t> wrong = {1, 1, 1, 0}; // 3 set bits
    EXPECT_THROW(codec.encodeGroup(wrong.data()), FatalError);
    EXPECT_THROW(codec.decodeGroup(6), FatalError); // C(4,2) = 6 codes
}

} // namespace
} // namespace mvq::core
