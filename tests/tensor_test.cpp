/**
 * @file
 * Tensor substrate tests: shape invariants, GEMM against a naive
 * reference, and the im2col/col2im adjoint property that conv backward
 * relies on.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace mvq {
namespace {

TEST(Shape, BasicsAndEquality)
{
    Shape s({2, 3, 4, 5});
    EXPECT_EQ(s.rank(), 4);
    EXPECT_EQ(s.numel(), 120);
    EXPECT_EQ(s.dim(2), 4);
    EXPECT_EQ(s, Shape({2, 3, 4, 5}));
    EXPECT_NE(s, Shape({2, 3, 4, 6}));
    EXPECT_EQ(s.str(), "[2, 3, 4, 5]");
    EXPECT_THROW(s.dim(4), FatalError);
    EXPECT_THROW(Shape({0, 1}), FatalError);
}

TEST(Shape, LinearIndexing)
{
    Shape s({2, 3, 4, 5});
    EXPECT_EQ(s.at(0, 0, 0, 0), 0);
    EXPECT_EQ(s.at(0, 0, 0, 1), 1);
    EXPECT_EQ(s.at(0, 0, 1, 0), 5);
    EXPECT_EQ(s.at(0, 1, 0, 0), 20);
    EXPECT_EQ(s.at(1, 0, 0, 0), 60);
    EXPECT_EQ(s.at(1, 2, 3, 4), 119);
}

TEST(Tensor, FillAndStats)
{
    Tensor t(Shape({3, 4}), 2.0f);
    EXPECT_DOUBLE_EQ(t.sum(), 24.0);
    EXPECT_DOUBLE_EQ(t.sumSquares(), 48.0);
    EXPECT_FLOAT_EQ(t.absMax(), 2.0f);
    EXPECT_EQ(t.countZeros(), 0);
    t.fill(0.0f);
    EXPECT_EQ(t.countZeros(), 12);
}

TEST(Tensor, ReshapePreservesData)
{
    Rng rng(3);
    Tensor t(Shape({2, 6}));
    t.fillNormal(rng, 0.0f, 1.0f);
    Tensor r = t.reshaped(Shape({3, 4}));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_FLOAT_EQ(t[i], r[i]);
    EXPECT_THROW(t.reshaped(Shape({5, 5})), FatalError);
}

TEST(Tensor, DeterministicFill)
{
    Rng a(11), b(11);
    Tensor ta(Shape({64}));
    Tensor tb(Shape({64}));
    ta.fillNormal(a, 0.0f, 1.0f);
    tb.fillNormal(b, 0.0f, 1.0f);
    EXPECT_FLOAT_EQ(maxAbsDiff(ta, tb), 0.0f);
}

TEST(Gemm, MatchesNaive)
{
    Rng rng(5);
    Tensor a(Shape({7, 9}));
    Tensor b(Shape({9, 5}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor c = matmul(a, b);
    for (std::int64_t i = 0; i < 7; ++i) {
        for (std::int64_t j = 0; j < 5; ++j) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < 9; ++k)
                acc += a.at(i, k) * b.at(k, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
        }
    }
}

TEST(Gemm, TransposeVariantsAgree)
{
    Rng rng(6);
    Tensor a(Shape({6, 4}));
    Tensor b(Shape({4, 8}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);

    // Build explicit transposes.
    Tensor at(Shape({4, 6}));
    for (std::int64_t i = 0; i < 6; ++i)
        for (std::int64_t j = 0; j < 4; ++j)
            at.at(j, i) = a.at(i, j);
    Tensor bt(Shape({8, 4}));
    for (std::int64_t i = 0; i < 4; ++i)
        for (std::int64_t j = 0; j < 8; ++j)
            bt.at(j, i) = b.at(i, j);

    Tensor ref = matmul(a, b);
    EXPECT_LT(maxAbsDiff(matmul(at, b, true, false), ref), 1e-4f);
    EXPECT_LT(maxAbsDiff(matmul(a, bt, false, true), ref), 1e-4f);
    EXPECT_LT(maxAbsDiff(matmul(at, bt, true, true), ref), 1e-4f);
}

TEST(Gemm, AlphaBeta)
{
    Rng rng(7);
    Tensor a(Shape({3, 3}));
    Tensor b(Shape({3, 3}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor c(Shape({3, 3}), 1.0f);
    gemm(a, false, b, false, c, 2.0f, 3.0f);
    Tensor ref = matmul(a, b);
    for (std::int64_t i = 0; i < 9; ++i)
        EXPECT_NEAR(c[i], 2.0f * ref[i] + 3.0f, 1e-4f);
}

TEST(Gemm, ShapeChecks)
{
    Tensor a(Shape({2, 3}));
    Tensor b(Shape({4, 5}));
    Tensor c(Shape({2, 5}));
    EXPECT_THROW(gemm(a, false, b, false, c), FatalError);
}

TEST(Im2col, KnownSmallCase)
{
    // 1 channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 columns.
    Tensor img(Shape({1, 1, 3, 3}));
    for (std::int64_t i = 0; i < 9; ++i)
        img[i] = static_cast<float>(i);
    ConvGeom g{1, 3, 3, 2, 2, 1, 0};
    Tensor cols = im2col(img, 0, g);
    EXPECT_EQ(cols.shape(), Shape({4, 4}));
    // Row 0 = kernel position (0,0) over the 4 output pixels.
    EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(cols.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(cols.at(0, 2), 3.0f);
    EXPECT_FLOAT_EQ(cols.at(0, 3), 4.0f);
    // Row 3 = kernel position (1,1).
    EXPECT_FLOAT_EQ(cols.at(3, 0), 4.0f);
    EXPECT_FLOAT_EQ(cols.at(3, 3), 8.0f);
}

TEST(Im2col, PaddingProducesZeros)
{
    Tensor img(Shape({1, 1, 2, 2}), 1.0f);
    ConvGeom g{1, 2, 2, 3, 3, 1, 1};
    Tensor cols = im2col(img, 0, g);
    EXPECT_EQ(cols.shape(), Shape({9, 4}));
    // Top-left kernel tap over output (0,0) reads padding.
    EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
    // Center tap always reads real pixels.
    EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0f);
}

/**
 * Adjoint property: <im2col(x), y> == <x, col2im(y)> for random x, y.
 * This is exactly the identity conv backward depends on.
 */
TEST(Im2col, Col2imIsAdjoint)
{
    Rng rng(9);
    ConvGeom g{2, 5, 5, 3, 3, 2, 1};
    Tensor x(Shape({1, 2, 5, 5}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor cols = im2col(x, 0, g);
    Tensor y(cols.shape());
    y.fillNormal(rng, 0.0f, 1.0f);

    double lhs = 0.0;
    for (std::int64_t i = 0; i < cols.numel(); ++i)
        lhs += static_cast<double>(cols[i]) * y[i];

    Tensor xgrad(x.shape());
    col2im(y, xgrad, 0, g);
    double rhs = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x[i]) * xgrad[i];

    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, ElementwiseAndSse)
{
    Tensor a(Shape({4}), 1.0f);
    Tensor b(Shape({4}), 2.0f);
    Tensor c = add(a, b);
    EXPECT_FLOAT_EQ(c[0], 3.0f);
    Tensor m = mul(a, b);
    EXPECT_FLOAT_EQ(m[3], 2.0f);
    axpy(a, 2.0f, b);
    EXPECT_FLOAT_EQ(a[0], 5.0f);
    EXPECT_DOUBLE_EQ(sse(b, b), 0.0);
    EXPECT_DOUBLE_EQ(sse(c, b), 4.0);
    scaleInPlace(b, 0.5f);
    EXPECT_FLOAT_EQ(b[0], 1.0f);
}

} // namespace
} // namespace mvq
