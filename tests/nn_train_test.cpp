/**
 * @file
 * Training-loop tests: optimizers reduce a quadratic, a small CNN learns
 * the synthetic classification task, and a dense-prediction net learns
 * the segmentation task.
 */

#include <gtest/gtest.h>

#include "models/mini_models.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace mvq::nn {
namespace {

TEST(Optimizers, SgdMinimizesQuadratic)
{
    Parameter p("w", Tensor(Shape({4}), 5.0f));
    Sgd opt(0.1f, 0.0f, 0.0f);
    for (int i = 0; i < 200; ++i) {
        for (std::int64_t j = 0; j < 4; ++j)
            p.grad[j] = 2.0f * p.value[j]; // d/dw w^2
        opt.step({&p});
    }
    EXPECT_LT(p.value.absMax(), 1e-3f);
}

TEST(Optimizers, AdamMinimizesQuadratic)
{
    Parameter p("w", Tensor(Shape({4}), 5.0f));
    Adam opt(0.2f);
    for (int i = 0; i < 300; ++i) {
        for (std::int64_t j = 0; j < 4; ++j)
            p.grad[j] = 2.0f * p.value[j];
        opt.step({&p});
    }
    EXPECT_LT(p.value.absMax(), 1e-2f);
}

TEST(Optimizers, MomentumAcceleratesDescent)
{
    Parameter slow("a", Tensor(Shape({1}), 10.0f));
    Parameter fast("b", Tensor(Shape({1}), 10.0f));
    Sgd plain(0.01f, 0.0f, 0.0f);
    Sgd heavy(0.01f, 0.9f, 0.0f);
    for (int i = 0; i < 50; ++i) {
        slow.grad[0] = 2.0f * slow.value[0];
        fast.grad[0] = 2.0f * fast.value[0];
        plain.step({&slow});
        heavy.step({&fast});
    }
    EXPECT_LT(std::abs(fast.value[0]), std::abs(slow.value[0]));
}

TEST(Optimizers, WeightDecayShrinksWeights)
{
    Parameter p("w", Tensor(Shape({1}), 1.0f));
    Sgd opt(0.1f, 0.0f, 0.5f);
    for (int i = 0; i < 20; ++i) {
        p.grad[0] = 0.0f;
        opt.step({&p});
    }
    EXPECT_LT(p.value[0], 1.0f);
    EXPECT_GT(p.value[0], 0.0f);
}

TEST(Training, MiniResNetLearnsSyntheticTask)
{
    ClassificationConfig dc;
    dc.classes = 6;
    dc.size = 12;
    dc.train_count = 480;
    dc.test_count = 120;
    ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = dc.classes;
    mc.width = 8;
    auto net = models::miniResNet18(mc);

    const double before = evalClassifier(*net, data, data.testSet());

    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.05f;
    TrainStats stats = trainClassifier(*net, data, tc);

    EXPECT_GT(stats.test_accuracy, before + 20.0)
        << "training should improve well over the untrained baseline";
    EXPECT_GT(stats.test_accuracy, 60.0);
}

TEST(Training, HooksAreInvoked)
{
    ClassificationConfig dc;
    dc.classes = 3;
    dc.size = 8;
    dc.train_count = 60;
    dc.test_count = 30;
    ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = dc.classes;
    mc.width = 8;
    auto net = models::miniVgg16(mc);
    // miniVgg16 expects 12x12 (3x3 after two pools); use 8x8 -> 2x2:
    // build a tiny custom head instead to match, so use resnet here.
    auto net2 = models::miniResNet18(mc);

    int before_calls = 0;
    int after_calls = 0;
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 20;
    tc.before_step = [&](Layer &) { ++before_calls; };
    tc.after_step = [&](Layer &) { ++after_calls; };
    trainClassifier(*net2, data, tc);
    EXPECT_EQ(before_calls, 3); // 60 samples / batch 20
    EXPECT_EQ(after_calls, 3);
    (void)net;
}

TEST(Training, SegmenterLearnsSyntheticTask)
{
    SegmentationConfig sc;
    sc.classes = 4;
    sc.size = 12;
    sc.train_count = 240;
    sc.test_count = 60;
    SegmentationDataset data(sc);

    models::MiniConfig mc;
    mc.classes = sc.classes;
    mc.width = 8;
    auto net = models::miniDeepLab(mc);

    const double before =
        evalSegmenterMiou(*net, data, data.testSet());

    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.1f;
    TrainStats stats = trainSegmenter(*net, data, tc);
    EXPECT_GT(stats.test_accuracy, before);
    EXPECT_GT(stats.test_accuracy, 40.0);
}

TEST(Metrics, Top1Accuracy)
{
    Tensor logits(Shape({3, 2}));
    logits.at(0, 0) = 1.0f;
    logits.at(0, 1) = 0.0f; // pred 0
    logits.at(1, 0) = 0.0f;
    logits.at(1, 1) = 1.0f; // pred 1
    logits.at(2, 0) = 2.0f;
    logits.at(2, 1) = 1.0f; // pred 0
    EXPECT_DOUBLE_EQ(top1Accuracy(logits, {0, 1, 1}),
                     100.0 * 2.0 / 3.0);
}

} // namespace
} // namespace mvq::nn
