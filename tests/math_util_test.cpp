/**
 * @file
 * Unit and property tests for the combinatorial helpers that back the
 * mask codec and the storage accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq {
namespace {

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 64), 1);
    EXPECT_EQ(ceilDiv(64, 64), 1);
    EXPECT_EQ(ceilDiv(65, 64), 2);
}

TEST(MathUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0);
    EXPECT_EQ(log2Ceil(2), 1);
    EXPECT_EQ(log2Ceil(3), 2);
    EXPECT_EQ(log2Ceil(512), 9);
    EXPECT_EQ(log2Ceil(513), 10);
    EXPECT_EQ(log2Ceil(1820), 11); // C(16,4): the 4:16 mask code width
    EXPECT_THROW(log2Ceil(0), FatalError);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(63));
}

TEST(MathUtil, BinomialKnownValues)
{
    EXPECT_EQ(binomial(2, 1), 2u);
    EXPECT_EQ(binomial(4, 2), 6u);
    EXPECT_EQ(binomial(16, 4), 1820u);
    EXPECT_EQ(binomial(16, 8), 12870u);
    EXPECT_EQ(binomial(16, 0), 1u);
    EXPECT_EQ(binomial(3, 5), 0u);
}

TEST(MathUtil, BinomialPascalIdentity)
{
    for (int n = 1; n <= 20; ++n) {
        for (int k = 1; k < n; ++k) {
            EXPECT_EQ(binomial(n, k),
                      binomial(n - 1, k - 1) + binomial(n - 1, k))
                << "n=" << n << " k=" << k;
        }
    }
}

/** Rank/unrank must be a bijection over all C(n,k) combinations. */
class CombinationRoundTrip
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(CombinationRoundTrip, Bijection)
{
    const auto [n, k] = GetParam();
    const std::uint64_t count = binomial(n, k);
    std::vector<bool> seen(count, false);
    for (std::uint64_t rank = 0; rank < count; ++rank) {
        const auto members = combinationUnrank(n, k, rank);
        ASSERT_EQ(members.size(), static_cast<std::size_t>(k));
        for (std::size_t i = 1; i < members.size(); ++i)
            ASSERT_LT(members[i - 1], members[i]);
        ASSERT_GE(members.front(), 0);
        ASSERT_LT(members.back(), n);
        const std::uint64_t back = combinationRank(n, members);
        EXPECT_EQ(back, rank);
        ASSERT_FALSE(seen[back]);
        seen[back] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CombinationRoundTrip,
    ::testing::Values(std::make_pair(2, 1), std::make_pair(4, 2),
                      std::make_pair(8, 2), std::make_pair(8, 4),
                      std::make_pair(16, 4), std::make_pair(16, 2),
                      std::make_pair(16, 6), std::make_pair(12, 3)));

TEST(MathUtil, CombinationUnrankRejectsOutOfRange)
{
    EXPECT_THROW(combinationUnrank(4, 2, 6), FatalError);
}

TEST(MathUtil, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

} // namespace
} // namespace mvq
