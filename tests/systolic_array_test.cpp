/**
 * @file
 * Systolic-array functional tests — the central hardware validation:
 * the EWS/WS array with dense and sparse tiles must compute exact
 * convolutions, including through the full compressed-weight decode
 * path, and its cycle/counter model must satisfy the EWS reuse
 * equations.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/systolic_array.hpp"
#include "tensor/ops.hpp"

namespace mvq::sim {
namespace {

/** Direct convolution reference on [C, H, W] input. */
Tensor
convRef(const Tensor &ifmap, const Tensor &w, std::int64_t stride,
        std::int64_t pad)
{
    const std::int64_t c = ifmap.dim(0);
    const std::int64_t ih = ifmap.dim(1);
    const std::int64_t iw = ifmap.dim(2);
    const std::int64_t k = w.dim(0);
    const std::int64_t r = w.dim(2);
    const std::int64_t oh = (ih + 2 * pad - r) / stride + 1;
    const std::int64_t ow = (iw + 2 * pad - r) / stride + 1;
    Tensor out(Shape({k, oh, ow}));
    for (std::int64_t ko = 0; ko < k; ++ko) {
        for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
                float acc = 0.0f;
                for (std::int64_t ci = 0; ci < c; ++ci) {
                    for (std::int64_t ry = 0; ry < r; ++ry) {
                        const std::int64_t iy = y * stride - pad + ry;
                        if (iy < 0 || iy >= ih)
                            continue;
                        for (std::int64_t rx = 0; rx < r; ++rx) {
                            const std::int64_t ix =
                                x * stride - pad + rx;
                            if (ix < 0 || ix >= iw)
                                continue;
                            acc += ifmap.data()[(ci * ih + iy) * iw + ix]
                                * w.at(ko, ci, ry, rx);
                        }
                    }
                }
                out.data()[(ko * oh + y) * ow + x] = acc;
            }
        }
    }
    return out;
}

struct ArrayCase
{
    HwSetting setting;
    std::int64_t array;
    std::int64_t k, c, r, hw, stride, pad;
};

class ArrayConv : public ::testing::TestWithParam<ArrayCase>
{
};

TEST_P(ArrayConv, MatchesDirectConvolution)
{
    const ArrayCase ac = GetParam();
    AccelConfig cfg = makeHwSetting(ac.setting, 16);
    cfg.array_h = ac.array;
    cfg.array_l = ac.array;

    Rng rng(181);
    Tensor ifmap(Shape({ac.c, ac.hw, ac.hw}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    Tensor w(Shape({ac.k, ac.c, ac.r, ac.r}));
    w.fillNormal(rng, 0.0f, 0.5f);

    DecodedWeights dec;
    if (cfg.tile == TileStyle::Sparse) {
        // Sparse tile requires an N:M mask; prune the kernel first.
        Tensor wr = core::groupWeights(w, cfg.vq_d,
                                       core::Grouping::OutputChannelWise);
        core::Mask mask =
            core::nmMask(wr, core::NmPattern{cfg.nm_n, cfg.nm_m});
        core::applyMask(wr, mask);
        w = core::ungroupWeights(wr, w.shape(), cfg.vq_d,
                                 core::Grouping::OutputChannelWise);
        dec.weights = w;
        dec.grouped_mask = mask;
        dec.d = cfg.vq_d;
    } else {
        dec = wrapDenseWeights(w, cfg.vq_d);
    }

    SystolicArray array(cfg);
    LayerRun run = array.runConv(ifmap, dec, ac.stride, ac.pad);
    Tensor ref = convRef(ifmap, w, ac.stride, ac.pad);
    EXPECT_EQ(run.ofmap.shape(), ref.shape());
    EXPECT_LT(maxAbsDiff(run.ofmap, ref), 1e-3f);
    EXPECT_GT(run.counters.total_cycles, 0);
    EXPECT_GE(run.counters.total_cycles, run.counters.compute_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, ArrayConv,
    ::testing::Values(
        // EWS dense tile, array smaller/larger than the layer dims.
        ArrayCase{HwSetting::EWS_Base, 8, 16, 8, 3, 6, 1, 1},
        ArrayCase{HwSetting::EWS_Base, 8, 4, 4, 3, 5, 1, 0},
        ArrayCase{HwSetting::EWS_Base, 16, 32, 24, 3, 6, 2, 1},
        ArrayCase{HwSetting::EWS_Base, 8, 8, 8, 1, 4, 1, 0},
        ArrayCase{HwSetting::EWS_Base, 8, 16, 8, 5, 7, 1, 2},
        // WS baseline.
        ArrayCase{HwSetting::WS_Base, 8, 16, 8, 3, 6, 1, 1},
        // Unmasked VQ loading (EWS-C path, k=1024 d=8).
        ArrayCase{HwSetting::EWS_C, 8, 16, 8, 3, 6, 1, 1},
        // MVQ loading with dense tile (EWS-CM path).
        ArrayCase{HwSetting::EWS_CM, 16, 32, 8, 3, 6, 1, 1},
        ArrayCase{HwSetting::EWS_CM, 16, 48, 12, 3, 7, 2, 1},
        // Sparse tile (EWS-CMS / WS-CMS): d = 16 divides L = 16.
        ArrayCase{HwSetting::EWS_CMS, 16, 32, 8, 3, 6, 1, 1},
        ArrayCase{HwSetting::EWS_CMS, 16, 16, 4, 3, 5, 1, 1},
        ArrayCase{HwSetting::EWS_CMS, 16, 48, 8, 1, 6, 1, 0},
        ArrayCase{HwSetting::EWS_CMS, 16, 32, 8, 5, 9, 2, 2},
        ArrayCase{HwSetting::WS_CMS, 16, 32, 8, 3, 6, 2, 1}));

TEST(SystolicArray, RectangularArray)
{
    // H != L exercises independent row/column edge handling.
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 16);
    cfg.array_h = 4;
    cfg.array_l = 12;
    Rng rng(186);
    Tensor ifmap(Shape({10, 6, 6}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    Tensor w(Shape({20, 10, 3, 3}));
    w.fillNormal(rng, 0.0f, 0.5f);
    LayerRun run = SystolicArray(cfg).runConv(
        ifmap, wrapDenseWeights(w, 1), 1, 1);
    Tensor ref = convRef(ifmap, w, 1, 1);
    EXPECT_LT(maxAbsDiff(run.ofmap, ref), 1e-3f);
}

TEST(SystolicArray, CompressedDecodePathIsExact)
{
    // Cluster a kernel with k = NG (every subvector its own codeword,
    // no codebook quantization): the full path — mask LUT, CRF lookup,
    // AND gates, LZC positions, sparse tile — must reproduce the direct
    // convolution of the pruned kernel exactly.
    Rng rng(182);
    const Shape shape({32, 4, 3, 3});
    Tensor w(shape);
    w.fillNormal(rng, 0.0f, 0.5f);

    core::MvqLayerConfig lc;
    lc.d = 16;
    lc.pattern = core::NmPattern{4, 16};
    lc.k = shape.numel() / lc.d;
    lc.codebook_bits = 0;

    Tensor wr = core::groupWeights(w, lc.d, lc.grouping);
    core::Mask mask = core::nmMask(wr, lc.pattern);
    core::applyMask(wr, mask);
    Tensor pruned = core::ungroupWeights(wr, shape, lc.d, lc.grouping);

    core::KmeansConfig kc;
    kc.k = lc.k;
    core::KmeansResult km = core::maskedKmeans(wr, mask, kc);
    core::Codebook cb;
    cb.codewords = km.codebook;
    core::CompressedLayer layer =
        core::makeCompressedLayer("conv", shape, lc, mask, km, 0);

    AccelConfig cfg = makeHwSetting(HwSetting::EWS_CMS, 16);
    Counters load_counters;
    DecodedWeights dec =
        decodeCompressedLayer(cfg, layer, cb, load_counters);

    Tensor ifmap(Shape({4, 6, 6}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    SystolicArray array(cfg);
    LayerRun run = array.runConv(ifmap, dec, 1, 1);
    Tensor ref = convRef(ifmap, pruned, 1, 1);
    EXPECT_LT(maxAbsDiff(run.ofmap, ref), 1e-3f);
}

TEST(SystolicArray, SparseTileReducesMacsByKeepFraction)
{
    Rng rng(183);
    const Shape shape({32, 8, 3, 3});
    Tensor w(shape);
    w.fillNormal(rng, 0.5f, 0.2f); // keep away from exact zeros

    AccelConfig sparse_cfg = makeHwSetting(HwSetting::EWS_CMS, 16);
    sparse_cfg.zero_gating = false;
    Tensor wr = core::groupWeights(w, sparse_cfg.vq_d,
                                   core::Grouping::OutputChannelWise);
    core::Mask mask = core::nmMask(
        wr, core::NmPattern{sparse_cfg.nm_n, sparse_cfg.nm_m});
    core::applyMask(wr, mask);
    Tensor pruned = core::ungroupWeights(
        wr, shape, sparse_cfg.vq_d, core::Grouping::OutputChannelWise);

    Tensor ifmap(Shape({8, 6, 6}));
    ifmap.fillNormal(rng, 0.5f, 0.2f);

    DecodedWeights dec_sparse;
    dec_sparse.weights = pruned;
    dec_sparse.grouped_mask = mask;
    dec_sparse.d = sparse_cfg.vq_d;
    LayerRun sparse_run =
        SystolicArray(sparse_cfg).runConv(ifmap, dec_sparse, 1, 1);

    AccelConfig dense_cfg = makeHwSetting(HwSetting::EWS_Base, 16);
    dense_cfg.zero_gating = false;
    LayerRun dense_run = SystolicArray(dense_cfg)
        .runConv(ifmap, wrapDenseWeights(pruned, 1), 1, 1);

    // Same math, a quarter of the multiplier work (4:16).
    EXPECT_LT(maxAbsDiff(sparse_run.ofmap, dense_run.ofmap), 1e-3f);
    EXPECT_EQ(sparse_run.counters.macs, dense_run.counters.macs / 4);
    // Same cycle count: the sparse tile keeps full throughput.
    EXPECT_EQ(sparse_run.counters.compute_cycles,
              dense_run.counters.compute_cycles);
}

TEST(SystolicArray, ZeroGatingCountsZeroOperands)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 16);
    cfg.array_h = 4;
    cfg.array_l = 4;
    Tensor w(Shape({4, 4, 1, 1}), 1.0f);
    Tensor ifmap(Shape({4, 2, 2}));
    // Half the activations zero.
    ifmap.data()[0] = 1.0f;
    ifmap.data()[1] = 0.0f;
    ifmap.data()[2] = 1.0f;
    ifmap.data()[3] = 0.0f;
    for (std::int64_t i = 4; i < 16; ++i)
        ifmap[i] = (i % 2 == 0) ? 1.0f : 0.0f;

    LayerRun run = SystolicArray(cfg).runConv(
        ifmap, wrapDenseWeights(w, 1), 1, 0);
    EXPECT_EQ(run.counters.macs + run.counters.gated_macs,
              4 * 4 * 4); // K*C*E^2
    EXPECT_EQ(run.counters.gated_macs, 4 * 4 * 2); // half gated

    cfg.zero_gating = false;
    LayerRun ungated = SystolicArray(cfg).runConv(
        ifmap, wrapDenseWeights(w, 1), 1, 0);
    EXPECT_EQ(ungated.counters.gated_macs, 0);
}

TEST(SystolicArray, WsHasNoExtensions)
{
    AccelConfig cfg = makeHwSetting(HwSetting::WS_Base, 16);
    Extensions ext = chooseExtensions(cfg, 64, 64, 9);
    EXPECT_EQ(ext.a, 1);
    EXPECT_EQ(ext.b, 1);
    EXPECT_EQ(ext.d, 1);
}

TEST(SystolicArray, EwsExtensionsRespectWrfDepth)
{
    AccelConfig cfg = makeHwSetting(HwSetting::EWS_Base, 16);
    for (std::int64_t k : {16, 64, 256}) {
        for (std::int64_t c : {16, 64, 256}) {
            for (std::int64_t rr : {1, 9, 25}) {
                Extensions ext = chooseExtensions(cfg, k, c, rr);
                EXPECT_LE(ext.a * ext.b * ext.d, cfg.wrf_depth);
                EXPECT_EQ(rr % ext.d, 0);
                EXPECT_GE(ext.a, 1);
                EXPECT_GE(ext.b, 1);
            }
        }
    }
}

TEST(SystolicArray, EwsReducesL1TrafficVersusWs)
{
    Rng rng(184);
    Tensor ifmap(Shape({16, 8, 8}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    Tensor w(Shape({32, 16, 3, 3}));
    w.fillNormal(rng, 0.0f, 0.5f);

    AccelConfig ews = makeHwSetting(HwSetting::EWS_Base, 16);
    AccelConfig ws = makeHwSetting(HwSetting::WS_Base, 16);
    LayerRun ews_run = SystolicArray(ews).runConv(
        ifmap, wrapDenseWeights(w, 1), 1, 1);
    LayerRun ws_run = SystolicArray(ws).runConv(
        ifmap, wrapDenseWeights(w, 1), 1, 1);

    EXPECT_LT(maxAbsDiff(ews_run.ofmap, ws_run.ofmap), 1e-3f);
    // The whole point of EWS: far fewer L1 accesses per MAC.
    EXPECT_LT(ews_run.counters.l1_read_bytes
                  + ews_run.counters.l1_write_bytes,
              (ws_run.counters.l1_read_bytes
               + ws_run.counters.l1_write_bytes) / 2);
}

TEST(SystolicArray, CompressedStreamReducesStalls)
{
    // A 1x1-conv-dominated layer on a large array is weight-load bound;
    // compressed loading must cut stall cycles.
    Rng rng(185);
    Tensor ifmap(Shape({64, 4, 4}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    Tensor w(Shape({64, 64, 1, 1}));
    w.fillNormal(rng, 0.0f, 0.5f);

    AccelConfig dense = makeHwSetting(HwSetting::EWS_Base, 32);
    LayerRun dense_run = SystolicArray(dense).runConv(
        ifmap, wrapDenseWeights(w, 1), 1, 0);

    AccelConfig comp = makeHwSetting(HwSetting::EWS_CM, 32);
    Tensor wr = core::groupWeights(w, comp.vq_d,
                                   core::Grouping::OutputChannelWise);
    core::Mask mask =
        core::nmMask(wr, core::NmPattern{comp.nm_n, comp.nm_m});
    core::applyMask(wr, mask);
    Tensor pruned = core::ungroupWeights(
        wr, w.shape(), comp.vq_d, core::Grouping::OutputChannelWise);
    DecodedWeights dec;
    dec.weights = pruned;
    dec.grouped_mask = mask;
    dec.d = comp.vq_d;
    LayerRun comp_run = SystolicArray(comp).runConv(ifmap, dec, 1, 0);

    EXPECT_LT(comp_run.counters.stall_cycles,
              dense_run.counters.stall_cycles);
    EXPECT_LT(comp_run.counters.total_cycles,
              dense_run.counters.total_cycles);
}

} // namespace
} // namespace mvq::sim
