/**
 * @file
 * Reproduces paper Table 9: comparison with prior sparse CNN
 * accelerators. Prior-work rows use published numbers normalized to
 * 40 nm with Stillmaker scaling; the MVQ rows come from our own perf +
 * energy models (MVQ-16/32/64 on ResNet-18, MVQ-64 on AlexNet).
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/area_model.hpp"
#include "energy/competitors.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Table 9: comparison with other sparse accelerators (40nm norm.)",
        "published prior-work specs + our modeled MVQ rows");

    auto specs = energy::priorWorkSpecs();
    energy::normalizeEfficiencies(specs);

    TextTable t({"Accelerator", "Process", "MACs", "Sparsity", "CR",
                 "Workload", "Peak TOPS", "Area mm2", "TOPS/W",
                 "N-TOPS/W"});
    for (const auto &s : specs) {
        t.addRow({s.name, std::to_string(s.process_nm) + "nm",
                  std::to_string(s.macs), s.sparsity,
                  s.compression_ratio > 0
                      ? bench::f1(s.compression_ratio) + "x" : "NA",
                  s.workload, bench::f1(s.peak_tops),
                  bench::f2(s.area_mm2), bench::f2(s.efficiency_tops_w),
                  bench::f2(s.normalized_tops_w)});
    }
    t.addSeparator();

    const energy::EnergyCosts costs;
    perf::WorkloadStats stats;
    const struct { std::int64_t size; const char *workload;
                   double paper_eff; } mvq_rows[] = {
        {16, "resnet18", 2.3}, {32, "resnet18", 4.1},
        {64, "resnet18", 6.9}, {64, "alexnet", 4.4}};
    for (const auto &row : mvq_rows) {
        const auto cfg =
            sim::makeHwSetting(sim::HwSetting::EWS_CMS, row.size);
        const auto spec = models::modelSpecByName(row.workload);
        const auto np = perf::analyzeNetwork(cfg, spec, stats);
        const double eff = energy::topsPerWatt(np, cfg, costs);
        const auto area = energy::accelArea(cfg);
        const double peak = 2.0
            * static_cast<double>(cfg.array_h * cfg.array_l)
            * cfg.freq_ghz / 1e3;
        t.addRow({"MVQ-" + std::to_string(row.size) + " (ours)", "40nm",
                  std::to_string(cfg.array_h * cfg.array_l
                                 * cfg.sparseQ() / cfg.vq_d),
                  "75%", "22x", row.workload, bench::f1(peak * 1e3),
                  bench::f2(area.total_mm2()),
                  bench::f2(eff) + " (paper "
                      + bench::f1(row.paper_eff) + ")",
                  bench::f2(eff)});
    }
    t.print();

    std::cout << "paper headline: MVQ-64 = 1.73x the best normalized "
                 "prior (S2TA-65nm at 2.19); ours above shows the same "
                 "winner-by-margin shape.\n";
    return 0;
}
