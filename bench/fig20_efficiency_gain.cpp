/**
 * @file
 * Reproduces paper Fig. 20: energy-efficiency gain over the WS baseline
 * for VGG-16, AlexNet and MobileNet-v1 (pointwise-only) across array
 * sizes and the WS-CMS / EWS / EWS-CMS settings.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;
    bench::printExperimentHeader(
        "Fig. 20: efficiency gain vs WS baseline",
        "TOPS/W ratios; MobileNet uses pointwise convolutions only (*)");

    const energy::EnergyCosts costs;
    perf::WorkloadStats stats;

    const struct { const char *model; bool include_dw;
                   double paper_cms64; } rows[] = {
        {"vgg16", true, 2.1},       // paper VGG-EWS-CMS trend 4.8/3.9/4.3
        {"alexnet", true, 3.4},     // paper AlexNet-EWS-CMS 3.4/3.3/2.6
        {"mobilenet_v1", false, 2.5}}; // pointwise-only, 2.5/2.3/2.7

    TextTable t({"Model", "Size", "WS-CMS gain", "EWS gain",
                 "EWS-CMS gain"});
    for (const auto &row : rows) {
        const auto spec = models::modelSpecByName(row.model);
        for (std::int64_t size : {16, 32, 64}) {
            const auto ws_cfg =
                sim::makeHwSetting(HwSetting::WS_Base, size);
            const auto ws = perf::analyzeNetwork(
                ws_cfg, spec, stats, true, row.include_dw);
            const double ws_eff =
                energy::topsPerWatt(ws, ws_cfg, costs);
            auto gain = [&](HwSetting s) {
                const auto cfg = sim::makeHwSetting(s, size);
                const auto np = perf::analyzeNetwork(
                    cfg, spec, stats, true, row.include_dw);
                return energy::topsPerWatt(np, cfg, costs) / ws_eff;
            };
            t.addRow({std::string(row.model)
                          + (row.include_dw ? "" : "*"),
                      std::to_string(size),
                      bench::f2(gain(HwSetting::WS_CMS)),
                      bench::f2(gain(HwSetting::EWS_Base)),
                      bench::f2(gain(HwSetting::EWS_CMS))});
        }
    }
    t.print();
    std::cout << "paper shape: EWS-CMS gains ~90% on average over WS "
                 "across these models; depthwise layers excluded for "
                 "MobileNet (*), as in the paper.\n";
    return 0;
}
