#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>

namespace mvq::bench {

bool
fastMode()
{
    const char *env = std::getenv("MVQ_BENCH_FAST");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

nn::ClassificationConfig
stdDataConfig()
{
    nn::ClassificationConfig cfg;
    cfg.classes = 10;
    cfg.size = 12;
    cfg.train_count = fastMode() ? 320 : 640;
    cfg.test_count = 160;
    cfg.noise = 0.55f; // hard enough that compression damage shows
    cfg.seed = 7;
    return cfg;
}

std::unique_ptr<nn::Sequential>
trainDenseMini(const std::string &family,
               const nn::ClassificationDataset &data, std::int64_t width,
               int epochs, double *test_acc)
{
    models::MiniConfig mc;
    mc.classes = data.config().classes;
    mc.width = width;
    auto net = models::miniModelByName(family, mc);
    nn::TrainConfig tc;
    tc.epochs = fastMode() ? std::max(1, epochs / 2) : epochs;
    const nn::TrainStats stats = nn::trainClassifier(*net, data, tc);
    if (test_acc != nullptr)
        *test_acc = stats.test_accuracy;
    return net;
}

void
printExperimentHeader(const std::string &experiment,
                      const std::string &substitution)
{
    std::cout << "\n==================================================\n"
              << experiment << "\n"
              << "substitute: " << substitution << "\n"
              << "==================================================\n";
}

std::string
f2(double v)
{
    return TextTable::num(v, 2);
}

std::string
f1(double v)
{
    return TextTable::num(v, 1);
}

} // namespace mvq::bench
