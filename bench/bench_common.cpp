#include "bench_common.hpp"

#include <cmath>

#include "common/env.hpp"
#include <cstring>
#include <iomanip>
#include <fstream>
#include <iostream>

namespace mvq::bench {

bool
fastMode()
{
    return env::flag("MVQ_BENCH_FAST", false);
}

nn::ClassificationConfig
stdDataConfig()
{
    nn::ClassificationConfig cfg;
    cfg.classes = 10;
    cfg.size = 12;
    cfg.train_count = fastMode() ? 320 : 640;
    cfg.test_count = 160;
    cfg.noise = 0.55f; // hard enough that compression damage shows
    cfg.seed = 7;
    return cfg;
}

std::unique_ptr<nn::Sequential>
trainDenseMini(const std::string &family,
               const nn::ClassificationDataset &data, std::int64_t width,
               int epochs, double *test_acc)
{
    models::MiniConfig mc;
    mc.classes = data.config().classes;
    mc.width = width;
    auto net = models::miniModelByName(family, mc);
    nn::TrainConfig tc;
    tc.epochs = fastMode() ? std::max(1, epochs / 2) : epochs;
    const nn::TrainStats stats = nn::trainClassifier(*net, data, tc);
    if (test_acc != nullptr)
        *test_acc = stats.test_accuracy;
    return net;
}

void
printExperimentHeader(const std::string &experiment,
                      const std::string &substitution)
{
    std::cout << "\n==================================================\n"
              << experiment << "\n"
              << "substitute: " << substitution << "\n"
              << "==================================================\n";
}

std::string
f2(double v)
{
    return TextTable::num(v, 2);
}

std::string
f1(double v)
{
    return TextTable::num(v, 1);
}

std::string
benchJsonPath(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    }
    return env::str("MVQ_BENCH_JSON", "");
}

void
appendBenchRecord(const std::string &path, const std::string &bench,
                  const std::string &metric, double value)
{
    if (path.empty())
        return;
    std::ofstream out(path, std::ios::app);
    if (!out) {
        std::cerr << "bench: cannot open " << path << " for append\n";
        return;
    }
    out << "{\"bench\": \"" << bench << "\", \"metric\": \"" << metric
        << "\", \"value\": ";
    // JSON has no inf/nan literal, and default stream precision would
    // round values the trajectory tooling wants to diff exactly.
    if (std::isfinite(value))
        out << std::setprecision(17) << value;
    else
        out << "null";
    out << "}\n";
}

} // namespace mvq::bench
