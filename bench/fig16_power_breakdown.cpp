/**
 * @file
 * Reproduces paper Fig. 16: power breakdown (Accel / L1 / L2 / Other)
 * for the six hardware settings, ResNet-18 and ResNet-50 at three array
 * sizes.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;
    bench::printExperimentHeader(
        "Fig. 16: power breakdown (mW) across hardware settings",
        "per-component energy / runtime from the analytic models");

    const energy::EnergyCosts costs;
    perf::WorkloadStats stats;
    const HwSetting settings[] = {HwSetting::WS_Base, HwSetting::WS_CMS,
                                  HwSetting::EWS_Base, HwSetting::EWS_C,
                                  HwSetting::EWS_CM, HwSetting::EWS_CMS};

    for (const char *model : {"resnet18", "resnet50"}) {
        const auto spec = models::modelSpecByName(model);
        for (std::int64_t size : {64, 32, 16}) {
            std::cout << "\n--- " << model << " " << size << "x" << size
                      << " ---\n";
            TextTable t({"Setting", "Accel mW", "L1 mW", "L2 mW",
                         "Other mW", "Total mW"});
            for (HwSetting s : settings) {
                const auto cfg = sim::makeHwSetting(s, size);
                const auto np = perf::analyzeNetwork(cfg, spec, stats);
                const auto p = energy::powerBreakdown(np, cfg, costs);
                t.addRow({sim::hwSettingName(s), bench::f1(p.accel_mw),
                          bench::f1(p.l1_mw), bench::f1(p.l2_mw),
                          bench::f1(p.other_mw),
                          bench::f1(p.total_mw())});
            }
            t.print();
        }
    }
    std::cout << "\npaper shape: WS has outsized L1 power; the CMS "
                 "settings cut Accel power most, more so as the array "
                 "grows.\n";
    return 0;
}
