/**
 * @file
 * Reproduces paper Table 7: accelerator area on three array scales for
 * WS, EWS, EWS-C/CM, EWS-CMS, plus L1/L2/other components (40 nm, unit
 * areas calibrated to the paper's DC synthesis; see src/energy).
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/area_model.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;
    bench::printExperimentHeader(
        "Table 7: area (mm^2) on 16/32/64 arrays",
        "analytic area model calibrated against the paper's synthesis");

    const struct { HwSetting s; const char *label;
                   double paper[3]; } rows[] = {
        {HwSetting::WS_Base, "WS", {0.188, 0.734, 2.812}},
        {HwSetting::EWS_Base, "EWS", {0.36, 1.14, 4.236}},
        {HwSetting::EWS_CM, "EWS-C/CM", {0.650, 1.505, 4.776}},
        {HwSetting::EWS_CMS, "EWS-CMS", {0.469, 0.828, 2.129}},
    };
    const std::int64_t sizes[3] = {16, 32, 64};

    TextTable t({"Accelerator", "Size-16 paper", "Size-16 ours",
                 "Size-32 paper", "Size-32 ours", "Size-64 paper",
                 "Size-64 ours"});
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.label};
        for (int i = 0; i < 3; ++i) {
            const auto area =
                energy::accelArea(sim::makeHwSetting(row.s, sizes[i]));
            cells.push_back(bench::f2(row.paper[i]));
            cells.push_back(bench::f2(area.accel_mm2()));
        }
        t.addRow(cells);
    }
    t.addSeparator();
    {
        std::vector<std::string> l1{"L1"};
        std::vector<std::string> l2{"L2"};
        std::vector<std::string> other{"Others"};
        const double l1_paper[3] = {0.484, 0.968, 0.968};
        const double other_paper[3] = {0.787, 1.303, 1.659};
        for (int i = 0; i < 3; ++i) {
            const auto area = energy::accelArea(
                sim::makeHwSetting(HwSetting::EWS_Base, sizes[i]));
            l1.push_back(bench::f2(l1_paper[i]));
            l1.push_back(bench::f2(area.l1_mm2));
            l2.push_back(bench::f2(6.924));
            l2.push_back(bench::f2(area.l2_mm2));
            other.push_back(bench::f2(other_paper[i]));
            other.push_back(bench::f2(area.other_mm2));
        }
        t.addRow(l1);
        t.addRow(l2);
        t.addRow(other);
    }
    t.print();

    const double base = energy::accelArea(
        sim::makeHwSetting(HwSetting::EWS_Base, 64)).array_mm2;
    const double cms = energy::accelArea(
        sim::makeHwSetting(HwSetting::EWS_CMS, 64)).array_mm2;
    std::cout << "64x64 array reduction vs EWS (paper: ~55%): "
              << bench::f1(100.0 * (1.0 - cms / base)) << "%\n";
    return 0;
}
