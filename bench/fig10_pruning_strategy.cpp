/**
 * @file
 * Reproduces paper Fig. 10: the pruning-strategy sweep on ResNet-18.
 * For keep-rates 6:16 down to 3:16, reports pruning accuracy (after
 * SR-STE) and clustering accuracy (after masked k-means + fine-tune).
 * The paper's takeaway: pruning accuracy collapses beyond 75% sparsity;
 * 4:16 yields the best clustering accuracy.
 */

#include <iostream>

#include "bench_common.hpp"
#include "nn/network.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Fig. 10: pruning-rate sweep on ResNet-18",
        "mini ResNet-18, SR-STE + masked k-means per point");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    double dense_acc = 0.0;
    auto net = bench::trainDenseMini("resnet18", data, 16, 3,
                                     &dense_acc);
    auto snapshot = nn::snapshotParameters(*net);

    TextTable t({"Pattern", "Sparsity", "One-shot acc", "Pruning acc",
                 "Clustering acc", "Paper note"});
    // The paper sweeps 6:16..3:16; the synthetic task is easier than
    // ImageNet, so we extend to 2:16 and 1:16 to expose the bend.
    const struct { int n; const char *note; } points[] = {
        {6, "~69.8 prune / ~69.3 cluster"},
        {5, "~69.6 prune / ~69.4 cluster"},
        {4, "~69.4 prune / ~69.5 cluster (best)"},
        {3, "<69 prune, drops fast"},
        {2, "(beyond paper range)"},
        {1, "(beyond paper range)"}};

    for (const auto &pt : points) {
        nn::restoreParameters(*net, snapshot);
        core::MvqLayerConfig lc;
        lc.k = 16;
        lc.d = 16;
        lc.pattern = core::NmPattern{pt.n, 16};
        auto targets = core::compressibleConvs(*net, lc, true);

        // One-shot magnitude pruning without recovery training: the
        // steepest view of the sparsity pain the paper's Fig. 10 plots.
        core::oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
        const double one_shot_acc =
            nn::evalClassifier(*net, data, data.testSet());
        nn::restoreParameters(*net, snapshot);

        core::SrSteConfig sc;
        sc.pattern = lc.pattern;
        sc.d = lc.d;
        sc.train.epochs = bench::fastMode() ? 1 : 2;
        const double prune_acc =
            core::srSteTrain(*net, targets, data, sc);

        core::ClusterOptions opts;
        core::CompressedModel cm =
            core::clusterLayers(targets, lc, opts);
        cm.applyTo(*net);
        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 1 : 2;
        const double cluster_acc =
            core::finetuneCompressedClassifier(cm, *net, data, fc);

        t.addRow({std::to_string(pt.n) + ":16",
                  bench::f1(lc.pattern.sparsity() * 100) + "%",
                  bench::f1(one_shot_acc), bench::f1(prune_acc),
                  bench::f1(cluster_acc), pt.note});
    }
    t.print();
    std::cout << "dense baseline: " << bench::f1(dense_acc)
              << " (paper 69.7). expected shape: pruning acc decreases "
                 "with sparsity while the prune->cluster gap narrows; "
                 "mid sparsity clusters best.\n";
    return 0;
}
