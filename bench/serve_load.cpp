/**
 * @file
 * Closed-loop load generator for the batched serving runtime.
 *
 * N client threads each submit one image, block on the future, and
 * immediately submit the next — classic closed-loop offered load. The
 * server coalesces admissions into batched forwards over a shared
 * CompressedNet (deadline + max-batch policy from the MVQ_SERVE_* knobs)
 * and the bench reports per-request p50/p99 latency and sustained
 * images/s at 1, 8, and 64 concurrent clients.
 *
 * At the highest client count the sweep also runs a no-coalescing
 * baseline (max_batch = 1, same model, same clients) so the batching
 * win is measured, not assumed, plus a *bounded* overload policy
 * (small MVQ_SERVE_MAX_QUEUE + a per-request deadline): clients race a
 * queue that sheds, latencies are recorded for completed requests only,
 * and the row reports shed/expired counts and goodput — requests that
 * completed within their deadline per second — demonstrating that
 * shedding keeps p99 bounded instead of letting the backlog grow.
 * Emits JSON-lines records via --json / MVQ_BENCH_JSON; with
 * MVQ_BENCH_GATE_MIN_IMAGES_PER_SEC set, exits nonzero when batched
 * throughput at the highest client count falls below the floor (CI
 * regression gate).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/io/model_artifact.hpp"
#include "core/mask_codec.hpp"
#include "nn/compressed_net.hpp"
#include "serve/server.hpp"

namespace {

using namespace mvq;
using namespace mvq::core;

/**
 * Chainable three-layer compressed conv stack: [16, 8, 3, 3] 4:16
 * feeding two [16, 16, 3, 3] 2:4 layers, all stride 1 / pad 1 over
 * 8x8 images. Sized like the per-request slice of an edge-serving
 * model: small enough that per-forward fixed costs (batcher wakeup,
 * pool fan-out/join, tensor allocation) are a visible fraction of a
 * single-image forward — exactly the regime batching exists for.
 */
CompressedModel
synthesizeServeModel()
{
    CompressedModel model;
    Rng rng(777);

    Codebook cb;
    cb.qbits = 8;
    cb.scale = 1.0f / 64.0f;
    cb.codewords = Tensor(Shape({256, 16}));
    for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
        cb.codewords[i] =
            static_cast<float>(rng.intIn(-127, 127)) * cb.scale;
    model.codebooks.push_back(std::move(cb));

    const struct
    {
        const char *name;
        std::int64_t out_c, in_c;
        NmPattern pattern;
    } specs[] = {
        {"serve0", 16, 8, NmPattern{4, 16}},
        {"serve1", 16, 16, NmPattern{2, 4}},
        {"serve2", 16, 16, NmPattern{2, 4}},
    };
    for (const auto &s : specs) {
        CompressedLayer l;
        l.name = s.name;
        l.weight_shape = Shape({s.out_c, s.in_c, 3, 3});
        l.cfg.k = 256;
        l.cfg.d = 16;
        l.cfg.pattern = s.pattern;
        l.cfg.grouping = Grouping::OutputChannelWise;
        l.cfg.codebook_bits = 8;
        l.codebook_id = 0;
        l.dense_flops = 2 * l.weight_shape.numel();
        const std::int64_t ng = l.weight_shape.numel() / l.cfg.d;
        const MaskCodec codec(l.cfg.pattern);
        for (std::int64_t j = 0; j < ng; ++j)
            l.assignments.push_back(
                static_cast<std::int32_t>(rng.intIn(0, 255)));
        const std::int64_t codes = ng * (l.cfg.d / l.cfg.pattern.m);
        for (std::int64_t j = 0; j < codes; ++j)
            l.mask_codes.push_back(static_cast<std::uint32_t>(
                rng.intIn(0, codec.codeCount() - 1)));
        model.layers.push_back(std::move(l));
    }
    return model;
}

struct RunResult
{
    double p50_us = 0.0;
    double p99_us = 0.0;
    double goodput_images_per_sec = 0.0; //!< completed-in-deadline / wall
    std::int64_t shed = 0;    //!< submits refused QueueFull
    std::int64_t expired = 0; //!< admitted but past deadline
    std::int64_t batches = 0;
    std::int64_t max_batch_served = 0;
};

double
percentile(std::vector<double> &sorted_us, double p)
{
    const std::size_t n = sorted_us.size();
    const std::size_t idx = std::min(
        n - 1, static_cast<std::size_t>(p * static_cast<double>(n)));
    return sorted_us[idx];
}

/** One closed-loop run: `clients` threads, `reqs_per_client` each. */
RunResult
runLoad(const nn::CompressedNet &net, const std::vector<Tensor> &images,
        int clients, int reqs_per_client, serve::ServeOptions opts)
{
    using clk = std::chrono::steady_clock;

    serve::Server server(
        Shape({net.inChannels(), images[0].dim(1), images[0].dim(2)}),
        [&net](const Tensor &x) { return net.forward(x); }, opts);

    // Warm-up: fault in operands and spin up the pool off the clock.
    // Deadline-exempt so a cold first forward cannot expire it.
    server.submitWithDeadline(images[0], serve::kNoDeadline).get();

    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    const clk::time_point t0 = clk::now();
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            auto &mine = lat[static_cast<std::size_t>(c)];
            mine.reserve(static_cast<std::size_t>(reqs_per_client));
            for (int r = 0; r < reqs_per_client; ++r) {
                const Tensor &img = images[static_cast<std::size_t>(
                    (c + r) % static_cast<int>(images.size()))];
                const clk::time_point s = clk::now();
                try {
                    server.submit(img).get();
                } catch (const serve::RejectedError &) {
                    // Shed at admission or expired in the queue: the
                    // attempt is spent (closed loop — no retry); only
                    // completed requests contribute a latency sample.
                    std::this_thread::yield();
                    continue;
                }
                mine.push_back(
                    std::chrono::duration<double, std::micro>(clk::now()
                                                              - s)
                        .count());
            }
        });
    for (auto &t : threads)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(clk::now() - t0).count();
    server.shutdown();

    std::vector<double> all;
    for (const auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    RunResult r;
    if (!all.empty()) {
        r.p50_us = percentile(all, 0.50);
        r.p99_us = percentile(all, 0.99);
    }
    r.goodput_images_per_sec = static_cast<double>(all.size()) / wall_s;
    const serve::ServerStats st = server.stats();
    r.shed = st.shed;
    r.expired = st.expired;
    r.batches = st.batches;
    r.max_batch_served = st.max_batch_served;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f1;
    using mvq::bench::f2;

    const std::string json = mvq::bench::benchJsonPath(argc, argv);
    const int reqs_per_client = mvq::bench::fastMode() ? 16 : 96;

    // Fixed 4-worker executor unless the user pinned MVQ_NUM_THREADS.
    // Batching amortizes each forward's pool fan-out/join across the
    // batch — the effect under measurement — and a machine-dependent
    // default would make runs incomparable. Results stay bit-identical
    // for any pool size (see common/parallel.hpp).
    if (!env::isSet("MVQ_NUM_THREADS"))
        setNumThreads(4);

    const std::string path = "/tmp/mvq_serve_load.mvqi";
    io::saveArtifact(synthesizeServeModel(), path, io::ArtifactFormat::Mvqi);
    const auto artifact = io::openArtifact(path);
    const nn::CompressedNet net(*artifact);

    Rng rng(4242);
    std::vector<Tensor> images;
    for (int i = 0; i < 8; ++i) {
        Tensor img(Shape({net.inChannels(), 8, 8}));
        img.fillNormal(rng, 0.0f, 1.0f);
        images.push_back(std::move(img));
    }

    // max_batch resolves from MVQ_SERVE_MAX_BATCH (CI pins it to vary the
    // policy). The deadline is pinned low: a closed-loop generator drains
    // to a sub-max_batch tail at the end of every run, and a long hold
    // there measures the deadline knob, not batching.
    serve::ServeOptions batched;
    batched.deadline_us = 200;
    serve::ServeOptions unbatched;
    unbatched.max_batch = 1;
    unbatched.deadline_us = 0;
    // Bounded overload policy: a queue a fraction of the client count
    // plus a per-request deadline. Excess load sheds at admission (or
    // expires in the queue) instead of stretching every latency; the
    // interesting output is the p99 of what *completed* vs. the
    // unbounded batched row at the same client count.
    serve::ServeOptions bounded;
    bounded.deadline_us = 200;
    bounded.max_queue = 16;
    bounded.request_timeout_us = 20000;

    mvq::bench::printExperimentHeader(
        "serve_load: closed-loop batched-serving throughput and latency",
        "three-layer compressed conv stack over 8x8 images; each client "
        "resubmits the moment its future resolves");

    const int client_counts[] = {1, 8, 64};
    const int highest = client_counts[std::size(client_counts) - 1];

    mvq::TextTable t({"clients", "policy", "p50 us", "p99 us",
                      "goodput img/s", "shed", "expired", "batches",
                      "max batch"});
    const auto addRow = [&t](int clients, const char *policy,
                             const RunResult &r) {
        t.addRow({std::to_string(clients), policy, f1(r.p50_us),
                  f1(r.p99_us), f1(r.goodput_images_per_sec),
                  std::to_string(r.shed), std::to_string(r.expired),
                  std::to_string(r.batches),
                  std::to_string(r.max_batch_served)});
    };
    const auto record = [&json](const std::string &bench,
                                const RunResult &r) {
        appendBenchRecord(json, bench, "p50_us", r.p50_us);
        appendBenchRecord(json, bench, "p99_us", r.p99_us);
        // Unbounded policies complete every request, so goodput IS the
        // classic images/s there; keep emitting both names so existing
        // trend tooling keeps its series.
        appendBenchRecord(json, bench, "images_per_sec",
                          r.goodput_images_per_sec);
        appendBenchRecord(json, bench, "goodput_images_per_sec",
                          r.goodput_images_per_sec);
        appendBenchRecord(json, bench, "shed",
                          static_cast<double>(r.shed));
        appendBenchRecord(json, bench, "expired",
                          static_cast<double>(r.expired));
    };
    double gated_images_per_sec = 0.0;
    double nobatch_images_per_sec = 0.0;
    for (const int clients : client_counts) {
        const RunResult r =
            runLoad(net, images, clients, reqs_per_client, batched);
        addRow(clients, "batched", r);
        const std::string bench = "serve_load_c" + std::to_string(clients);
        record(bench, r);
        if (clients == highest) {
            gated_images_per_sec = r.goodput_images_per_sec;
            const RunResult nb = runLoad(net, images, clients,
                                         reqs_per_client, unbatched);
            nobatch_images_per_sec = nb.goodput_images_per_sec;
            addRow(clients, "max_batch=1", nb);
            record(bench + "_nobatch", nb);
            appendBenchRecord(json, bench, "batching_speedup",
                              r.goodput_images_per_sec
                                  / nb.goodput_images_per_sec);
            const RunResult bd = runLoad(net, images, clients,
                                         reqs_per_client, bounded);
            addRow(clients, "bounded q16", bd);
            record(bench + "_bounded", bd);
        }
    }
    t.print();
    std::cout << "batching speedup at " << highest << " clients: "
              << f2(gated_images_per_sec / nobatch_images_per_sec)
              << "x over max_batch=1\n";
    std::remove(path.c_str());

    if (const double floor =
            env::real("MVQ_BENCH_GATE_MIN_IMAGES_PER_SEC", 0.0);
        floor > 0.0) {
        if (gated_images_per_sec < floor) {
            std::cerr << "FAIL: " << f1(gated_images_per_sec)
                      << " images/s at " << highest
                      << " clients below the " << f1(floor)
                      << " floor (MVQ_BENCH_GATE_MIN_IMAGES_PER_SEC)\n";
            return 1;
        }
        std::cout << "gate: " << f1(gated_images_per_sec)
                  << " images/s >= " << f1(floor) << " floor: OK\n";
    }
    return 0;
}
