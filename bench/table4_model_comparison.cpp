/**
 * @file
 * Reproduces paper Table 4: MVQ against PQF / BGD / PvQ across model
 * families (compression ratio, sparsity, FLOPs, accuracy). Each family
 * is trained once; each method restarts from the same dense snapshot.
 */

#include <iostream>

#include "bench_common.hpp"
#include "nn/network.hpp"
#include "vq/bgd.hpp"
#include "vq/pqf.hpp"
#include "vq/uniform_quant.hpp"

namespace {

using namespace mvq;

struct Row
{
    std::string model;
    std::string method;
    double cr;
    double acc_no_ft; //!< right after compression, before fine-tuning
    double acc;       //!< after fine-tuning
    double sparsity;
    std::int64_t flops;
    std::string paper;
};

Row
runMvq(nn::Sequential &net, const nn::ClassificationDataset &data,
       const std::string &family, std::int64_t k, std::int64_t d,
       core::NmPattern pattern, const std::string &paper)
{
    core::PipelineConfig cfg;
    cfg.layer.k = k;
    cfg.layer.d = d;
    cfg.layer.pattern = pattern;
    cfg.sparse.train.epochs = bench::fastMode() ? 1 : 2;
    cfg.finetune.epochs = bench::fastMode() ? 1 : 2;
    const core::PipelineResult res =
        core::mvqCompressClassifier(net, data, cfg);
    return Row{family, "MVQ(Ours)", res.compression_ratio,
               res.acc_clustered, res.acc_final,
               pattern.sparsity() * 100.0, res.flops_compressed, paper};
}

} // namespace

int
main()
{
    bench::printExperimentHeader(
        "Table 4: comparison with other methods on more models",
        "mini model families on the synthetic task; k scaled to size");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    std::vector<Row> rows;

    // --- ResNet-50 family: MVQ vs PQF vs BGD -------------------------
    {
        double dense = 0.0;
        auto net = bench::trainDenseMini("resnet50", data, 16, 3,
                                         &dense);
        auto snapshot = nn::snapshotParameters(*net);
        rows.push_back(runMvq(*net, data, "resnet50 (dense "
                                  + bench::f1(dense) + ")",
                              16, 16, core::NmPattern{4, 16},
                              "77.5 @22x 75% 1.11G"));

        nn::restoreParameters(*net, snapshot);
        core::MvqLayerConfig lc;
        lc.k = 32;
        lc.d = 8;
        auto targets = core::compressibleConvs(*net, lc, true);
        vq::PqfOptions popts;
        popts.search_steps = bench::fastMode() ? 300 : 1000;
        vq::PqfModel pqf = vq::pqfCompress(targets, lc, popts);
        pqf.applyTo(*net);
        const double pqf_no_ft =
            nn::evalClassifier(*net, data, data.testSet());
        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 1 : 2;
        const double pqf_acc = vq::pqfFinetune(pqf, *net, data, fc);
        rows.push_back(Row{"resnet50", "PQF", pqf.compressionRatio(),
                           pqf_no_ft, pqf_acc, 0.0,
                           pqf.compressed.denseFlops(),
                           "77.1 @22x 0% 4.09G"});

        nn::restoreParameters(*net, snapshot);
        vq::BgdOptions bopts;
        auto energies =
            vq::collectInputEnergies(*net, targets, data, bopts);
        core::CompressedModel bgd =
            vq::bgdCompress(targets, lc, bopts, energies);
        bgd.applyTo(*net);
        const double bgd_no_ft =
            nn::evalClassifier(*net, data, data.testSet());
        core::FinetuneConfig bfc = fc;
        bfc.masked_gradients = false;
        const double bgd_acc =
            core::finetuneCompressedClassifier(bgd, *net, data, bfc);
        rows.push_back(Row{"resnet50", "BGD", bgd.compressionRatio(),
                           bgd_no_ft, bgd_acc, 0.0, bgd.denseFlops(),
                           "76.1 @22x 0% 4.09G"});
    }

    // --- MobileNet-v1: MVQ at two ratios -----------------------------
    {
        double dense = 0.0;
        auto net = bench::trainDenseMini("mobilenet_v1", data, 16, 4,
                                         &dense);
        auto snapshot = nn::snapshotParameters(*net);
        rows.push_back(runMvq(*net, data, "mobilenet_v1 (dense "
                                  + bench::f1(dense) + ")",
                              24, 8, core::NmPattern{1, 2},
                              "66.3 @17x 50% 0.29G"));
        nn::restoreParameters(*net, snapshot);
        rows.push_back(runMvq(*net, data, "mobilenet_v1", 12, 8,
                              core::NmPattern{1, 2},
                              "64.3 @19x 50% 0.56G"));
    }

    // --- MobileNet-v2 / EfficientNet / AlexNet / VGG-16 --------------
    const struct { const char *family; std::int64_t k;
                   core::NmPattern p; const char *paper;
                   bool with_pvq; const char *pvq_paper; } families[] = {
        {"mobilenet_v2", 24, core::NmPattern{1, 2},
         "65.1 @16x 50% 0.15G", true, "PvQ 59.1 @16x 0.30G"},
        {"efficientnet", 24, core::NmPattern{1, 2},
         "68.2 @16x 50% 0.14G", true, "PvQ 60.9 @16x 0.28G"},
        {"alexnet", 16, core::NmPattern{2, 8},
         "55.4 @25x 75% 0.19G", false, ""},
        {"vgg16", 12, core::NmPattern{2, 8},
         "69.7 @28x 81% 2.90G", false, ""}};

    for (const auto &fam : families) {
        double dense = 0.0;
        auto net = bench::trainDenseMini(fam.family, data, 16, 4,
                                         &dense);
        auto snapshot = nn::snapshotParameters(*net);
        rows.push_back(runMvq(*net, data, std::string(fam.family)
                                  + " (dense " + bench::f1(dense) + ")",
                              fam.k, 8, fam.p, fam.paper));
        if (fam.with_pvq) {
            nn::restoreParameters(*net, snapshot);
            core::MvqLayerConfig lc;
            lc.d = 8;
            auto targets = core::compressibleConvs(*net, lc, true);
            auto pvq_snapshot = nn::snapshotParameters(*net);
            vq::PvqOptions one_shot;
            one_shot.bits = 2;
            one_shot.finetune_epochs = 0;
            const vq::PvqResult no_ft = vq::pvqCompressClassifier(
                *net, targets, data, one_shot);
            nn::restoreParameters(*net, pvq_snapshot);
            vq::PvqOptions popts;
            popts.bits = 2;
            popts.finetune_epochs = bench::fastMode() ? 1 : 2;
            const vq::PvqResult res =
                vq::pvqCompressClassifier(*net, targets, data, popts);
            rows.push_back(Row{fam.family, "PvQ-2bit",
                               res.compression_ratio, no_ft.accuracy,
                               res.accuracy, 0.0, 0, fam.pvq_paper});
        }
    }

    TextTable t({"Model", "Method", "CR", "Acc (no FT)", "Acc",
                 "Sparsity", "FLOPs", "Paper"});
    for (const auto &r : rows) {
        t.addRow({r.model, r.method, bench::f1(r.cr) + "x",
                  bench::f1(r.acc_no_ft), bench::f1(r.acc),
                  bench::f1(r.sparsity) + "%",
                  r.flops > 0 ? TextTable::count(r.flops) : "-",
                  r.paper});
    }
    t.print();
    std::cout << "expected shape: MVQ matches or beats every baseline "
                 "at comparable CR while also cutting FLOPs; PvQ-2bit "
                 "collapses.\n";
    return 0;
}
