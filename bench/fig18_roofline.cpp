/**
 * @file
 * Reproduces paper Fig. 18: roofline of EWS vs EWS-CMS for array sizes
 * 16/32/64 on ResNet-18/50, with operational intensity measured against
 * the weight-loading stream. Compression moves points right (higher OI)
 * and up (closer to the compute roof).
 */

#include <iostream>

#include "bench_common.hpp"
#include "perf/network_perf.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;
    bench::printExperimentHeader(
        "Fig. 18: roofline for EWS arrays (weight-stream OI)",
        "analytic model; OI = ops / DRAM weight-stream byte");

    perf::WorkloadStats stats;
    TextTable t({"Point", "OI (ops/B)", "Attained GOPS", "Peak GOPS",
                 "Bound"});
    for (const char *model : {"resnet18", "resnet50"}) {
        const auto spec = models::modelSpecByName(model);
        for (std::int64_t size : {16, 32, 64}) {
            for (HwSetting s : {HwSetting::EWS_Base,
                                HwSetting::EWS_CMS}) {
                const auto cfg = sim::makeHwSetting(s, size);
                const auto np = perf::analyzeNetwork(cfg, spec, stats);
                const auto pt = perf::rooflinePoint(np, cfg);
                const double bw_roof = pt.oi * pt.bw_gbps;
                const bool compute_bound = bw_roof > pt.peak_gops;
                t.addRow({pt.label + "-" + std::to_string(size),
                          bench::f1(pt.oi),
                          bench::f1(pt.attained_gops),
                          bench::f1(pt.peak_gops),
                          compute_bound ? "compute" : "bandwidth"});
            }
        }
    }
    t.print();
    std::cout << "paper shape: EWS >= 32x32 is bandwidth-bound on the "
                 "weight stream; EWS-CMS raises OI ~6.4x and recovers "
                 "the compute roof.\n";
    return 0;
}
