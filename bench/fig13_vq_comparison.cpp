/**
 * @file
 * Reproduces paper Fig. 13: compression-ratio vs accuracy curves of
 * layerwise/cross-layer MVQ against PQF and BGD on ResNet-18/50,
 * sweeping the codeword count (the paper sweeps k = 256..8192 on the
 * full models; we sweep proportionally smaller k on the minis so the
 * k/N_G ratio — and hence the CR range — matches).
 */

#include <iostream>

#include "bench_common.hpp"
#include "nn/network.hpp"
#include "vq/bgd.hpp"
#include "vq/pqf.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Fig. 13: CR vs accuracy, MVQ vs PQF vs BGD (k sweep)",
        "mini ResNet-18/50; k scaled to keep k/N_G comparable");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    const std::vector<std::int64_t> ks =
        bench::fastMode() ? std::vector<std::int64_t>{8, 32}
                          : std::vector<std::int64_t>{8, 16, 32, 64};

    for (const char *family : {"resnet18", "resnet50"}) {
        double dense_acc = 0.0;
        auto net = bench::trainDenseMini(family, data, 16, 3,
                                         &dense_acc);
        auto dense_snapshot = nn::snapshotParameters(*net);

        // Sparse-train once; reuse across the MVQ k sweep.
        core::MvqLayerConfig lc;
        lc.d = 16;
        lc.pattern = core::NmPattern{4, 16};
        auto targets = core::compressibleConvs(*net, lc, true);
        core::SrSteConfig sc;
        sc.pattern = lc.pattern;
        sc.d = lc.d;
        sc.train.epochs = bench::fastMode() ? 1 : 2;
        core::srSteTrain(*net, targets, data, sc);
        auto sparse_snapshot = nn::snapshotParameters(*net);

        std::cout << "\n--- " << family << " (dense "
                  << bench::f1(dense_acc) << ", paper baseline "
                  << (std::string(family) == "resnet18" ? "69.7"
                                                        : "76.1")
                  << ") ---\n";
        TextTable t({"Method", "k", "CR", "Acc"});

        core::FinetuneConfig fc;
        fc.epochs = 1;

        for (std::int64_t k : ks) {
            // layerwise MVQ
            nn::restoreParameters(*net, sparse_snapshot);
            lc.k = k;
            core::ClusterOptions opts;
            core::CompressedModel cm =
                core::clusterLayers(targets, lc, opts);
            cm.applyTo(*net);
            const double acc = core::finetuneCompressedClassifier(
                cm, *net, data, fc);
            t.addRow({"layerwise-MVQ", std::to_string(k),
                      bench::f1(cm.compressionRatio()) + "x",
                      bench::f1(acc)});

            // crosslayer MVQ
            nn::restoreParameters(*net, sparse_snapshot);
            core::ClusterOptions xopts;
            xopts.crosslayer = true;
            core::CompressedModel xcm =
                core::clusterLayers(targets, lc, xopts);
            xcm.applyTo(*net);
            const double xacc = core::finetuneCompressedClassifier(
                xcm, *net, data, fc);
            t.addRow({"crosslayer-MVQ", std::to_string(k),
                      bench::f1(xcm.compressionRatio()) + "x",
                      bench::f1(xacc)});

            // PQF at the matched unmasked configuration (k' = 2k, d=8).
            nn::restoreParameters(*net, dense_snapshot);
            core::MvqLayerConfig lcp;
            lcp.k = 2 * k;
            lcp.d = 8;
            auto ptargets = core::compressibleConvs(*net, lcp, true);
            vq::PqfOptions popts;
            popts.search_steps = bench::fastMode() ? 200 : 600;
            vq::PqfModel pqf = vq::pqfCompress(ptargets, lcp, popts);
            pqf.applyTo(*net);
            const double pacc = vq::pqfFinetune(pqf, *net, data, fc);
            t.addRow({"PQF", std::to_string(2 * k),
                      bench::f1(pqf.compressionRatio()) + "x",
                      bench::f1(pacc)});

            // BGD at the same unmasked configuration.
            nn::restoreParameters(*net, dense_snapshot);
            vq::BgdOptions bopts;
            auto energies = vq::collectInputEnergies(*net, ptargets,
                                                     data, bopts);
            core::CompressedModel bgd =
                vq::bgdCompress(ptargets, lcp, bopts, energies);
            bgd.applyTo(*net);
            core::FinetuneConfig bfc = fc;
            bfc.masked_gradients = false;
            const double bacc = core::finetuneCompressedClassifier(
                bgd, *net, data, bfc);
            t.addRow({"BGD", std::to_string(2 * k),
                      bench::f1(bgd.compressionRatio()) + "x",
                      bench::f1(bacc)});
        }
        t.print();
    }
    std::cout << "expected shape (paper Fig. 13): accuracy rises with "
                 "k; layerwise-MVQ dominates PQF by ~0.5-1 point and "
                 "both beat BGD at every matched CR.\n";
    return 0;
}
