/**
 * @file
 * Reproduces paper Fig. 14: data-access energy cost ratio per memory
 * level for the five evaluation models on the EWS baseline (64x64).
 * Shows DRAM dominating everywhere — the premise for compressing the
 * weight stream.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Fig. 14: data-access cost ratio by memory level (EWS 64x64)",
        "analytic access counts x Table 8 costs on real layer tables");

    const energy::EnergyCosts costs;
    perf::WorkloadStats stats;
    const auto cfg = sim::makeHwSetting(sim::HwSetting::EWS_Base, 64);

    TextTable t({"Model", "DRAM %", "L2 %", "L1 %", "RF %"});
    for (const auto &spec : models::hardwareEvalSpecs()) {
        const auto np = perf::analyzeNetwork(cfg, spec, stats);
        const auto e = energy::energyFromCounters(np.totals, costs);
        const double access = e.dram + e.l2 + e.l1 + e.rf;
        t.addRow({spec.name, bench::f1(100 * e.dram / access),
                  bench::f1(100 * e.l2 / access),
                  bench::f1(100 * e.l1 / access),
                  bench::f1(100 * e.rf / access)});
    }
    t.print();
    std::cout << "paper: DRAM accounts for the majority on every model "
                 "(VGG16 also spills early fmaps).\n";
    return 0;
}
