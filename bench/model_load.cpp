/**
 * @file
 * Cold-load benchmark: bit-packed stream vs mmap'd MVQI image.
 *
 * Synthesizes full-geometry compressed models (ResNet-18 and
 * MobileNet-v1 conv stacks at 224x224), writes both artifact formats,
 * and times the end-to-end path from file to forward-ready packed
 * operands for every layer:
 *
 *   stream: read file -> bit-unpack every symbol -> reconstruct ->
 *           packGroupedRows per layer
 *   mvqi:   mmap -> structural validation -> borrow + O(nnz) semantic
 *           validation (no decode, no packing)
 *
 * Both paths must produce byte-identical packed operands — the bench
 * memcmp-checks values/col_idx per group before reporting. Emits
 * JSON-lines records via --json / MVQ_BENCH_JSON, and with
 * MVQ_BENCH_GATE_MIN_LOAD_SPEEDUP set exits nonzero when the measured
 * speedup falls below the floor (CI regression gate).
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "core/io/model_artifact.hpp"
#include "core/mask_codec.hpp"
#include "models/layer_spec.hpp"

namespace {

using namespace mvq;
using namespace mvq::core;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Synthesize a compressed model with the exact conv geometry of `spec`.
 * Weight values never matter for load cost — only symbol counts do — so
 * assignments and mask codes are drawn from a fixed-seed mt19937.
 */
CompressedModel
synthesizeModel(const models::ModelSpec &spec, io::MvqiWriteOptions *opts,
                std::vector<std::int64_t> *conv_groups)
{
    CompressedModel model;
    std::mt19937 rng(12345);

    Codebook cb;
    cb.qbits = 8;
    cb.scale = 1.0f / 64.0f;
    cb.codewords = Tensor(Shape({256, 16}));
    for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
        cb.codewords[i] =
            static_cast<float>(static_cast<int>(rng() % 255) - 127)
            * cb.scale;
    model.codebooks.push_back(std::move(cb));

    const MaskCodec codec(NmPattern{4, 16});
    for (const models::ConvLayerSpec &c : spec.convs) {
        if (c.weightCount() % 16 != 0)
            continue; // not d=16-groupable (e.g. the 1000-way head)
        CompressedLayer l;
        l.name = c.name;
        l.weight_shape =
            Shape({c.out_c, c.in_c / c.groups, c.kernel, c.kernel});
        l.cfg.k = 256;
        l.cfg.d = 16;
        l.cfg.pattern = NmPattern{4, 16};
        l.cfg.grouping = Grouping::OutputChannelWise;
        l.cfg.codebook_bits = 8;
        l.codebook_id = 0;
        l.dense_flops = 2 * c.macs();
        const std::int64_t ng = l.weight_shape.numel() / l.cfg.d;
        l.assignments.reserve(static_cast<std::size_t>(ng));
        for (std::int64_t j = 0; j < ng; ++j)
            l.assignments.push_back(
                static_cast<std::int32_t>(rng() % 256));
        const std::int64_t codes = ng * (l.cfg.d / 16);
        l.mask_codes.reserve(static_cast<std::size_t>(codes));
        for (std::int64_t j = 0; j < codes; ++j)
            l.mask_codes.push_back(static_cast<std::uint32_t>(
                rng() % codec.codeCount()));
        if (opts != nullptr)
            opts->layer_groups[l.name] = c.groups;
        conv_groups->push_back(c.groups);
        model.layers.push_back(std::move(l));
    }
    return model;
}

/**
 * Open `path` and materialize forward-ready operands for every layer,
 * at the conv group counts the serving architecture dictates (the MVQI
 * image bakes exactly these, so its path stays zero-copy).
 */
std::vector<io::SharedOperands>
coldLoad(const std::string &path,
         const std::vector<std::int64_t> &conv_groups, double *ms)
{
    const double t0 = nowMs();
    const auto art = io::openArtifact(path);
    std::vector<io::SharedOperands> out;
    out.reserve(static_cast<std::size_t>(art->layerCount()));
    for (std::int64_t i = 0; i < art->layerCount(); ++i)
        out.push_back(art->packedOperands(
            i, conv_groups[static_cast<std::size_t>(i)]));
    *ms = nowMs() - t0;
    // The operands keep the backing image alive past `art`.
    return out;
}

bool
operandsIdentical(const std::vector<io::SharedOperands> &a,
                  const std::vector<io::SharedOperands> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i]->size() != b[i]->size())
            return false;
        for (std::size_t g = 0; g < a[i]->size(); ++g) {
            const GroupedSparseMatrix &x = (*a[i])[g];
            const GroupedSparseMatrix &y = (*b[i])[g];
            if (x.vals.size() != y.vals.size()
                || x.cols.size() != y.cols.size()
                || x.rows.values.size() != y.rows.values.size())
                return false;
            if (std::memcmp(x.vals.data(), y.vals.data(),
                            x.vals.size() * sizeof(float))
                    != 0
                || std::memcmp(x.cols.data(), y.cols.data(),
                               x.cols.size() * sizeof(std::int32_t))
                       != 0
                || std::memcmp(x.rows.values.data(), y.rows.values.data(),
                               x.rows.values.size() * sizeof(float))
                       != 0
                || std::memcmp(x.rows.col_idx.data(), y.rows.col_idx.data(),
                               x.rows.col_idx.size()
                                   * sizeof(std::int32_t))
                       != 0)
                return false;
        }
    }
    return true;
}

struct LoadResult
{
    double stream_ms = 0.0;
    double mvqi_ms = 0.0;
    bool identical = false;
    std::int64_t stream_bytes = 0;
    std::int64_t mvqi_bytes = 0;
};

LoadResult
benchOne(const models::ModelSpec &spec, int repeats)
{
    io::MvqiWriteOptions opts;
    std::vector<std::int64_t> conv_groups;
    const CompressedModel model = synthesizeModel(spec, &opts, &conv_groups);
    const std::string stream_path =
        "/tmp/mvq_load_bench_" + spec.name + ".mvq";
    const std::string mvqi_path =
        "/tmp/mvq_load_bench_" + spec.name + ".mvqi";
    io::saveArtifact(model, stream_path, io::ArtifactFormat::Stream);
    io::saveArtifact(model, mvqi_path, io::ArtifactFormat::Mvqi, opts);

    LoadResult r;
    r.stream_bytes = io::openArtifact(stream_path)->sizeBytes();
    r.mvqi_bytes = io::openArtifact(mvqi_path)->sizeBytes();

    // Best-of-N: cold-load cost is deterministic work (decode + pack vs
    // validate), the minimum strips scheduler noise. Files sit in page
    // cache for both paths, so disk latency doesn't skew either side.
    r.stream_ms = 1e30;
    r.mvqi_ms = 1e30;
    std::vector<io::SharedOperands> from_stream, from_mvqi;
    for (int it = 0; it < repeats; ++it) {
        double ms = 0.0;
        from_stream = coldLoad(stream_path, conv_groups, &ms);
        r.stream_ms = std::min(r.stream_ms, ms);
        from_mvqi = coldLoad(mvqi_path, conv_groups, &ms);
        r.mvqi_ms = std::min(r.mvqi_ms, ms);
    }
    r.identical = operandsIdentical(from_stream, from_mvqi);
    std::remove(stream_path.c_str());
    std::remove(mvqi_path.c_str());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f1;
    using mvq::bench::f2;

    const std::string json = mvq::bench::benchJsonPath(argc, argv);
    const int repeats = mvq::bench::fastMode() ? 2 : 5;

    mvq::bench::printExperimentHeader(
        "model cold-load: bit-stream decode vs zero-copy MVQI mmap",
        "full conv geometry of ResNet-18 / MobileNet-v1, synthetic "
        "symbols (load cost depends on symbol counts, not values)");

    mvq::TextTable t({"model", "stream MB", "mvqi MB", "stream ms",
                      "mvqi ms", "speedup", "bit-identical"});
    double min_speedup = 1e30;
    for (const auto &spec :
         {mvq::models::resnet18Spec(), mvq::models::mobilenetV1Spec()}) {
        const LoadResult r = benchOne(spec, repeats);
        const double speedup = r.stream_ms / r.mvqi_ms;
        min_speedup = std::min(min_speedup, speedup);
        t.addRow({spec.name,
                  f2(static_cast<double>(r.stream_bytes) / 1e6),
                  f2(static_cast<double>(r.mvqi_bytes) / 1e6),
                  f2(r.stream_ms), f2(r.mvqi_ms), f1(speedup) + "x",
                  r.identical ? "yes" : "NO"});
        appendBenchRecord(json, "model_load_" + spec.name, "stream_ms",
                          r.stream_ms);
        appendBenchRecord(json, "model_load_" + spec.name, "mvqi_ms",
                          r.mvqi_ms);
        appendBenchRecord(json, "model_load_" + spec.name, "speedup",
                          speedup);
        appendBenchRecord(json, "model_load_" + spec.name,
                          "bit_identical", r.identical ? 1.0 : 0.0);
        if (!r.identical) {
            std::cerr << "FAIL: " << spec.name
                      << ": stream and MVQI packed operands differ\n";
            return 1;
        }
    }
    t.print();

    if (const double floor =
            env::real("MVQ_BENCH_GATE_MIN_LOAD_SPEEDUP", 0.0);
        floor > 0.0) {
        if (min_speedup < floor) {
            std::cerr << "FAIL: min load speedup " << f1(min_speedup)
                      << "x below the " << f1(floor)
                      << "x floor (MVQ_BENCH_GATE_MIN_LOAD_SPEEDUP)\n";
            return 1;
        }
        std::cout << "gate: min speedup " << f1(min_speedup) << "x >= "
                  << f1(floor) << "x floor: OK\n";
    }
    return 0;
}
