/**
 * @file
 * Reproduces paper Table 1 (the motivating study): replace either the
 * important (case 1) or the unimportant (case 2) weights of a trained
 * classifier with their vector-quantized values — no fine-tuning — and
 * compare SSE vs accuracy. Case 2 must win on accuracy despite a higher
 * SSE.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/importance.hpp"
#include "nn/network.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Table 1: partly vector-quantized accuracy, case 1 vs case 2",
        "mini ResNet-18/50 on the synthetic task (paper: ImageNet)");

    const nn::ClassificationDataset data(bench::stdDataConfig());

    TextTable t({"Model", "Case", "SSE", "Top-1 acc",
                 "Paper (RN18 / RN50 acc)"});

    for (const char *family : {"resnet18", "resnet50"}) {
        double dense_acc = 0.0;
        auto net = bench::trainDenseMini(family, data, 16, 3,
                                         &dense_acc);
        auto snapshot = nn::snapshotParameters(*net);

        // Layerwise VQ of all compressible convs (paper: k=512 d=8; we
        // scale k to the mini model).
        core::MvqLayerConfig lc;
        lc.k = 64;
        lc.d = 8;
        lc.codebook_bits = 8;
        auto targets = core::compressibleConvs(*net, lc, true);

        // Importance: top-2 magnitude of every 8 consecutive weights.
        for (int case_id : {1, 2}) {
            nn::restoreParameters(*net, snapshot);
            double sse_total = 0.0;
            for (nn::Conv2d *conv : targets) {
                Tensor wr = core::groupWeights(conv->weight().value,
                                               lc.d, lc.grouping);
                const core::Mask important =
                    core::importanceMask(wr, 2, 8);

                core::Mask ones(static_cast<std::size_t>(wr.numel()), 1);
                core::KmeansConfig kc;
                kc.k = lc.k;
                core::KmeansResult km = core::maskedKmeans(wr, ones, kc);
                Tensor vq = core::reconstructGroupedDense(
                    km.codebook, km.assignments);

                Tensor mixed = core::mixReplace(wr, vq, important,
                                                /*replace_marked=*/
                                                case_id == 1);
                sse_total += sse(wr, mixed);
                conv->setWeight(core::ungroupWeights(
                    mixed, conv->weight().value.shape(), lc.d,
                    lc.grouping));
            }
            const double acc =
                nn::evalClassifier(*net, data, data.testSet());
            const std::string paper = std::string(family) == "resnet18"
                ? (case_id == 1 ? "SSE 576, acc 5.8"
                                : "SSE 623, acc 37.46")
                : (case_id == 1 ? "SSE 695, acc 1.26"
                                : "SSE 771, acc 55.39");
            t.addRow({std::string(family) + " (dense "
                          + bench::f1(dense_acc) + ")",
                      "Case " + std::to_string(case_id),
                      bench::f2(sse_total), bench::f1(acc), paper});
        }
    }
    t.print();
    std::cout << "expected shape: case 2 has HIGHER SSE but MUCH higher "
                 "accuracy -> approximating important weights well is "
                 "what matters.\n";
    return 0;
}
