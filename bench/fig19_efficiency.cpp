/**
 * @file
 * Reproduces paper Fig. 19: energy efficiency (TOPS/W, excluding main
 * memory) of the six hardware settings on ResNet-18/50 at three array
 * sizes.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;
    bench::printExperimentHeader(
        "Fig. 19: energy efficiency (TOPS/W, on-chip energy only)",
        "analytic energy model; MAC energy calibrated at 40nm");

    const energy::EnergyCosts costs;
    perf::WorkloadStats stats;

    // Paper bars per model: rows = setting, cols = 16/32/64.
    const struct { HwSetting s; const char *label;
                   double rn18[3]; double rn50[3]; } rows[] = {
        {HwSetting::WS_Base, "WS", {0.7, 1.5, 2.1}, {0.9, 1.4, 1.9}},
        {HwSetting::WS_CMS, "WS-CMS", {0.9, 2.1, 4.5}, {1.1, 2.1, 3.2}},
        {HwSetting::EWS_Base, "EWS", {1.5, 2.2, 2.9}, {1.8, 2.3, 2.6}},
        {HwSetting::EWS_C, "EWS-C", {1.8, 2.6, 3.8}, {1.8, 2.7, 3.4}},
        {HwSetting::EWS_CM, "EWS-CM", {1.9, 3.0, 4.3}, {1.9, 3.1, 4.0}},
        {HwSetting::EWS_CMS, "EWS-CMS", {2.3, 4.1, 6.9},
         {2.4, 4.1, 5.7}}};

    for (const char *model : {"resnet18", "resnet50"}) {
        const auto spec = models::modelSpecByName(model);
        std::cout << "\n--- " << model << " ---\n";
        TextTable t({"Setting", "16 paper", "16 ours", "32 paper",
                     "32 ours", "64 paper", "64 ours"});
        for (const auto &row : rows) {
            std::vector<std::string> cells{row.label};
            for (int i = 0; i < 3; ++i) {
                const std::int64_t size = 16 << i;
                const auto cfg = sim::makeHwSetting(row.s, size);
                const auto np = perf::analyzeNetwork(cfg, spec, stats);
                const double eff = energy::topsPerWatt(np, cfg, costs);
                const double paper = std::string(model) == "resnet18"
                    ? row.rn18[i] : row.rn50[i];
                cells.push_back(bench::f1(paper));
                cells.push_back(bench::f2(eff));
            }
            t.addRow(cells);
        }
        t.print();
    }

    const auto base64 = sim::makeHwSetting(HwSetting::EWS_Base, 64);
    const auto cms64 = sim::makeHwSetting(HwSetting::EWS_CMS, 64);
    const auto spec = models::resnet18Spec();
    const double gain = energy::topsPerWatt(
        perf::analyzeNetwork(cms64, spec, stats), cms64, costs)
        / energy::topsPerWatt(
            perf::analyzeNetwork(base64, spec, stats), base64, costs);
    std::cout << "\nEWS-CMS / EWS at 64x64 on ResNet-18 (paper ~2.3x): "
              << bench::f2(gain) << "x\n";
    return 0;
}
