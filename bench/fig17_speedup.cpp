/**
 * @file
 * Reproduces paper Fig. 17: speedup of WS-CMS / EWS / EWS-CMS over the
 * WS baseline on five models at 64x64.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;
    bench::printExperimentHeader(
        "Fig. 17: speedup over WS baseline (64x64)",
        "cycle model, conv layers (the systolic engine's work)");

    perf::WorkloadStats stats;
    // Paper bars: (WS-CMS, EWS, EWS-CMS).
    const struct { const char *model; double paper[3]; } rows[] = {
        {"resnet18", {1.4, 1.2, 2.2}}, {"resnet50", {1.2, 1.3, 1.9}},
        {"vgg16", {1.2, 1.3, 1.9}},    {"mobilenet_v1", {1.1, 1.3, 1.5}},
        {"alexnet", {1.1, 1.4, 1.7}}};

    TextTable t({"Model", "WS-CMS paper", "WS-CMS ours", "EWS paper",
                 "EWS ours", "EWS-CMS paper", "EWS-CMS ours"});
    for (const auto &row : rows) {
        const auto spec = models::modelSpecByName(row.model);
        const auto ws = perf::analyzeNetwork(
            sim::makeHwSetting(HwSetting::WS_Base, 64), spec, stats,
            /*include_fc=*/false);
        std::vector<std::string> cells{row.model};
        const HwSetting others[] = {HwSetting::WS_CMS,
                                    HwSetting::EWS_Base,
                                    HwSetting::EWS_CMS};
        for (int i = 0; i < 3; ++i) {
            const auto np = perf::analyzeNetwork(
                sim::makeHwSetting(others[i], 64), spec, stats,
                /*include_fc=*/false);
            cells.push_back(bench::f1(row.paper[i]));
            cells.push_back(bench::f2(ws.seconds / np.seconds));
        }
        t.addRow(cells);
    }
    t.print();
    std::cout << "paper shape: EWS-CMS is the fastest setting on every "
                 "model; gains are largest where weight loading "
                 "bottlenecks (deep/FC-heavy nets).\n";
    return 0;
}
