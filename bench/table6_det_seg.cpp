/**
 * @file
 * Reproduces paper Table 6: compression on detection (Mask-RCNN/COCO
 * substitute: multi-head mini detector with AP@0.5 proxies) and
 * segmentation (DeepLab-v3/VOC substitute: DeepLab-mini, mIoU).
 * Detection/segmentation use ASP one-shot pruning (the paper found
 * SR-STE unstable on these tasks).
 */

#include <iostream>

#include "bench_common.hpp"
#include "models/detector.hpp"
#include "nn/network.hpp"
#include "vq/uniform_quant.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Table 6: detection + segmentation under compression",
        "synthetic detection proxy (AP@0.5) and segmentation (mIoU)");

    // ----- Detection proxy (Mask-RCNN substitute) ---------------------
    {
        nn::DetectionConfig dc;
        dc.train_count = bench::fastMode() ? 256 : 512;
        dc.test_count = 128;
        nn::DetectionDataset data(dc);

        models::MiniConfig mc;
        mc.classes = dc.classes;
        mc.width = 16;
        models::MiniDetector det(mc, dc.size);
        models::DetectorTrainConfig tc;
        tc.epochs = bench::fastMode() ? 5 : 10;
        models::trainDetector(det, data, tc);
        const models::DetMetrics baseline =
            models::evalDetector(det, data, data.testSet());

        // MVQ on the backbone: ASP prune + masked k-means + fine-tune.
        core::MvqLayerConfig lc;
        lc.k = 32;
        lc.d = 16;
        lc.pattern = core::NmPattern{4, 16};
        auto targets =
            core::compressibleConvs(det.backbone(), lc, true);
        core::oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
        core::ClusterOptions opts;
        core::CompressedModel cm =
            core::clusterLayers(targets, lc, opts);
        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 2 : 4;
        const models::DetMetrics compressed =
            models::finetuneCompressedDetector(cm, det, data, fc, tc);

        TextTable t({"Method", "CR", "Sparsity", "AP_bb", "AP_mk",
                     "Paper (APbb/APmk)"});
        t.addRow({"Baseline", "-", "0%", bench::f1(baseline.ap_bb),
                  bench::f1(baseline.ap_mk), "37.9 / 34.6"});
        t.addRow({"MVQ(Ours)",
                  bench::f1(cm.compressionRatio()) + "x", "75%",
                  bench::f1(compressed.ap_bb),
                  bench::f1(compressed.ap_mk),
                  "36.8 / 33.8 @26x (BGD 33.9/30.8, PQF 36.3/33.5)"});
        std::cout << "\n--- Detection proxy (Mask-RCNN substitute) ---\n";
        t.print();
    }

    // ----- Segmentation (DeepLab substitute) --------------------------
    {
        nn::SegmentationConfig scfg;
        scfg.train_count = bench::fastMode() ? 256 : 512;
        scfg.test_count = 128;
        nn::SegmentationDataset data(scfg);

        models::MiniConfig mc;
        mc.classes = scfg.classes;
        mc.width = 16;
        auto net = models::miniDeepLab(mc);
        nn::TrainConfig tc;
        tc.epochs = bench::fastMode() ? 2 : 4;
        tc.lr = 0.1f;
        const double baseline_miou =
            nn::trainSegmenter(*net, data, tc).test_accuracy;
        auto snapshot = nn::snapshotParameters(*net);

        // MVQ: ASP prune + masked cluster + fine-tune.
        core::MvqLayerConfig lc;
        lc.k = 48;
        lc.d = 8;
        lc.pattern = core::NmPattern{1, 2};
        auto targets = core::compressibleConvs(*net, lc, true);
        core::oneShotPrune(targets, lc.pattern, lc.d, lc.grouping);
        core::ClusterOptions opts;
        core::CompressedModel cm =
            core::clusterLayers(targets, lc, opts);
        cm.applyTo(*net);
        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 1 : 2;
        const double mvq_miou =
            core::finetuneCompressedSegmenter(cm, *net, data, fc);

        // PvQ 2-bit crashes.
        nn::restoreParameters(*net, snapshot);
        // Post-training 2-bit quantization (the regime where the
        // paper's PvQ row collapses; QAT rescues it on our easy task).
        vq::PvqOptions popts;
        popts.bits = 2;
        popts.finetune_epochs = 0;
        const vq::PvqResult pvq = vq::pvqCompressSegmenter(
            *net, core::compressibleConvs(*net, lc, true), data, popts);

        TextTable t({"Method", "CR", "Sparsity", "mIoU", "Paper"});
        t.addRow({"Baseline", "-", "0%", bench::f1(baseline_miou),
                  "72.9"});
        t.addRow({"MVQ(Ours)",
                  bench::f1(cm.compressionRatio()) + "x", "50%",
                  bench::f1(mvq_miou), "66.5 @19x"});
        t.addRow({"PvQ-2bit (PTQ)", bench::f1(pvq.compression_ratio) + "x",
                  "0%", bench::f1(pvq.accuracy), "17.6 @16x (crash)"});
        std::cout << "\n--- Segmentation (DeepLab-v3 substitute) ---\n";
        t.print();
    }

    std::cout << "expected shape: MVQ stays near the baseline at high "
                 "CR; 2-bit uniform quantization collapses.\n";
    return 0;
}
