/**
 * @file
 * Reproduces paper Table 5: pre-fine-tuning SSE and post-fine-tuning
 * accuracy of MVQ vs PQF at matched compression on ResNet-18/50.
 */

#include <iostream>

#include "bench_common.hpp"
#include "nn/network.hpp"
#include "vq/pqf.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Table 5: SSE and accuracy vs PQF at ~matched CR",
        "mini ResNet-18/50; SSE measured before fine-tuning");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    TextTable t({"Model", "Method", "SSE", "Acc", "CR", "Paper"});

    for (const char *family : {"resnet18", "resnet50"}) {
        double dense = 0.0;
        auto net = bench::trainDenseMini(family, data, 16, 3, &dense);
        auto snapshot = nn::snapshotParameters(*net);
        const bool rn18 = std::string(family) == "resnet18";

        // --- MVQ ------------------------------------------------------
        core::MvqLayerConfig lc;
        lc.k = 16;
        lc.d = 16;
        lc.pattern = core::NmPattern{4, 16};
        auto targets = core::compressibleConvs(*net, lc, true);
        core::SrSteConfig sc;
        sc.pattern = lc.pattern;
        sc.d = lc.d;
        sc.train.epochs = bench::fastMode() ? 1 : 2;
        core::srSteTrain(*net, targets, data, sc);

        std::vector<Tensor> reference;
        for (auto *conv : targets)
            reference.push_back(conv->weight().value);
        core::ClusterOptions opts;
        core::CompressedModel cm = core::clusterLayers(targets, lc,
                                                       opts);
        const double mvq_sse =
            core::computeSse(cm, reference).masked_sse;
        cm.applyTo(*net);
        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 1 : 2;
        const double mvq_acc =
            core::finetuneCompressedClassifier(cm, *net, data, fc);
        t.addRow({family, "MVQ(Ours)", bench::f2(mvq_sse),
                  bench::f1(mvq_acc),
                  bench::f1(cm.compressionRatio()) + "x",
                  rn18 ? "SSE 251, acc 68.8" : "SSE 336, acc 75.2"});

        // --- PQF ------------------------------------------------------
        nn::restoreParameters(*net, snapshot);
        core::MvqLayerConfig lcp;
        lcp.k = 32;
        lcp.d = 8;
        auto ptargets = core::compressibleConvs(*net, lcp, true);
        vq::PqfOptions popts;
        popts.search_steps = bench::fastMode() ? 300 : 1000;
        vq::PqfModel pqf = vq::pqfCompress(ptargets, lcp, popts);
        double pqf_sse = 0.0;
        for (std::size_t i = 0; i < ptargets.size(); ++i) {
            pqf_sse += sse(pqf.reconstructLayer(i),
                           ptargets[i]->weight().value);
        }
        pqf.applyTo(*net);
        const double pqf_acc = vq::pqfFinetune(pqf, *net, data, fc);
        t.addRow({family, "PQF", bench::f2(pqf_sse),
                  bench::f1(pqf_acc),
                  bench::f1(pqf.compressionRatio()) + "x",
                  rn18 ? "SSE 605, acc 68.2" : "SSE 1150, acc 74.2"});
    }
    t.print();
    std::cout << "expected shape: MVQ reaches a significantly lower SSE "
                 "on the weights that matter and higher accuracy.\n";
    return 0;
}
