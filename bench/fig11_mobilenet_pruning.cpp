/**
 * @file
 * Reproduces paper Fig. 11: pruning-strategy experiments on
 * MobileNet-v2 — layerwise vs cross-layer clustering under 1:2 and 2:4
 * patterns, accuracy vs compression ratio. 2:4 prunes more gently but
 * costs 0.25 extra mask bits per weight.
 */

#include <iostream>

#include "bench_common.hpp"
#include "nn/network.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Fig. 11: MobileNet-v2 pruning strategies (CR vs accuracy)",
        "mini MobileNet-v2; layerwise and cross-layer clustering");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    double dense_acc = 0.0;
    auto net = bench::trainDenseMini("mobilenet_v2", data, 16, 4,
                                     &dense_acc);
    auto snapshot = nn::snapshotParameters(*net);

    TextTable t({"Strategy", "Pattern", "CR", "Prune acc", "Final acc",
                 "Mask bits/w"});
    const struct { core::NmPattern p; bool crosslayer;
                   const char *label; } points[] = {
        {core::NmPattern{1, 2}, false, "layerwise-1:2"},
        {core::NmPattern{1, 2}, true, "crosslayer-1:2"},
        {core::NmPattern{2, 4}, false, "layerwise-2:4"}};

    for (const auto &pt : points) {
        nn::restoreParameters(*net, snapshot);
        core::MvqLayerConfig lc;
        lc.k = 24;
        lc.d = 8;
        lc.pattern = pt.p;
        auto targets = core::compressibleConvs(*net, lc, true);

        core::SrSteConfig sc;
        sc.pattern = lc.pattern;
        sc.d = lc.d;
        sc.train.epochs = bench::fastMode() ? 1 : 2;
        const double prune_acc =
            core::srSteTrain(*net, targets, data, sc);

        core::ClusterOptions opts;
        opts.crosslayer = pt.crosslayer;
        core::CompressedModel cm =
            core::clusterLayers(targets, lc, opts);
        cm.applyTo(*net);
        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 1 : 2;
        const double acc =
            core::finetuneCompressedClassifier(cm, *net, data, fc);

        const core::MaskCodec codec(pt.p);
        t.addRow({pt.label, pt.p.str(),
                  bench::f1(cm.compressionRatio()) + "x",
                  bench::f1(prune_acc), bench::f1(acc),
                  bench::f2(codec.bitsPerWeight())});
    }
    t.print();
    std::cout << "dense baseline: " << bench::f1(dense_acc)
              << " (paper 71.7). expected shape: 2:4 prunes more "
                 "accurately but pays 0.25 b/w extra mask storage; "
                 "layerwise beats crosslayer (paper Fig. 11/13).\n";
    return 0;
}
