/**
 * @file
 * Reproduces paper Fig. 15: total data-access energy reduction from
 * employing MVQ compression (EWS-CMS vs EWS baseline) per model per
 * array size.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Fig. 15: data-access cost reduction from MVQ",
        "ratio of access energies, EWS baseline over EWS-CMS");

    const energy::EnergyCosts costs;
    perf::WorkloadStats stats;

    // Paper values (16x16, 32x32, 64x64 bars).
    const struct { const char *model; double paper[3]; } rows[] = {
        {"resnet18", {2.9, 3.6, 4.1}}, {"resnet50", {2.7, 3.2, 3.4}},
        {"vgg16", {1.7, 2.4, 1.9}},    {"mobilenet_v1", {1.9, 2.0, 1.9}},
        {"alexnet", {1.9, 2.3, 3.0}}};

    TextTable t({"Model", "16x16 paper", "16x16 ours", "32x32 paper",
                 "32x32 ours", "64x64 paper", "64x64 ours"});
    for (const auto &row : rows) {
        const auto spec = models::modelSpecByName(row.model);
        std::vector<std::string> cells{row.model};
        for (int i = 0; i < 3; ++i) {
            const std::int64_t size = 16 << i;
            const auto base = perf::analyzeNetwork(
                sim::makeHwSetting(sim::HwSetting::EWS_Base, size), spec,
                stats);
            const auto cms = perf::analyzeNetwork(
                sim::makeHwSetting(sim::HwSetting::EWS_CMS, size), spec,
                stats);
            const double reduction =
                energy::dataAccessEnergy(base, costs)
                / energy::dataAccessEnergy(cms, costs);
            cells.push_back(bench::f1(row.paper[i]));
            cells.push_back(bench::f1(reduction));
        }
        t.addRow(cells);
    }
    t.print();
    std::cout << "paper shape: ResNets gain most (up to 4.1x), VGG16 "
                 "least (early fmaps spill to DRAM either way).\n";
    return 0;
}
