/**
 * @file
 * Reproduces paper Table 8: normalized data-access energy per storage
 * level (MAC = 1). These constants parameterize the energy model; the
 * bench echoes them alongside the per-inference energy split they induce
 * on ResNet-18 to show the DRAM-dominance the paper's Fig. 14 builds on.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Table 8: normalized access energy (unit = one MAC)",
        "model constants (DRAM from Eyeriss/Sim et al., rest from PT)");

    const energy::EnergyCosts costs;
    TextTable t({"Level", "Paper", "Model"});
    t.addRow({"DRAM (per byte)", "200", bench::f2(costs.dram_per_byte)});
    t.addRow({"L2 (per byte)", "15", bench::f2(costs.l2_per_byte)});
    t.addRow({"L1 (per byte)", "6", bench::f2(costs.l1_per_byte)});
    t.addRow({"PRF (per access)", "0.22",
              bench::f2(costs.prf_per_access)});
    t.addRow({"ARF (per access)", "0.11",
              bench::f2(costs.arf_per_access)});
    t.addRow({"WRF (per access)", "0.02",
              bench::f2(costs.wrf_per_access)});
    t.addRow({"CRF (per access)", "0.02",
              bench::f2(costs.crf_per_access)});
    t.print();

    // Induced energy split on ResNet-18 (EWS baseline, 64x64).
    perf::WorkloadStats stats;
    const auto cfg = sim::makeHwSetting(sim::HwSetting::EWS_Base, 64);
    const auto np =
        perf::analyzeNetwork(cfg, models::resnet18Spec(), stats);
    const auto e = energy::energyFromCounters(np.totals, costs);
    const double total = e.total();
    std::cout << "\nResNet-18 energy split (EWS 64x64): DRAM "
              << bench::f1(100 * e.dram / total) << "%, L2 "
              << bench::f1(100 * e.l2 / total) << "%, L1 "
              << bench::f1(100 * e.l1 / total) << "%, RF "
              << bench::f1(100 * e.rf / total) << "%, MAC "
              << bench::f1(100 * e.mac / total)
              << "% (paper Fig. 14: DRAM dominates)\n";
    return 0;
}
