/**
 * @file
 * Reproduces paper Table 3: the A/B/C/D ablation on ResNet-18 at one
 * matched compression ratio. A/B use k', d=8 dense reconstruction; C/D
 * use k'/2, d=16 with 4:16 masks. Reports total/masked SSE, FLOPs, and
 * fine-tuned accuracy.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/importance.hpp"
#include "nn/network.hpp"
#include "vq/vanilla_vq.hpp"

int
main()
{
    using namespace mvq;
    using vq::AblationCase;
    bench::printExperimentHeader(
        "Table 3: ablation A/B/C/D at matched ~CR",
        "mini ResNet-18; paper k=1024/512 scaled to the mini model");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    double dense_acc = 0.0;
    auto net = bench::trainDenseMini("resnet18", data, 16, 3,
                                     &dense_acc);
    auto dense_snapshot = nn::snapshotParameters(*net);

    // Sparse-train once for the sparse cases (B, C, D).
    core::MvqLayerConfig lc_cd;
    lc_cd.k = 12;
    lc_cd.d = 16;
    lc_cd.pattern = core::NmPattern{4, 16};
    auto targets16 = core::compressibleConvs(*net, lc_cd, true);
    core::SrSteConfig sc;
    sc.pattern = lc_cd.pattern;
    sc.d = lc_cd.d;
    sc.train.epochs = bench::fastMode() ? 1 : 2;
    core::srSteTrain(*net, targets16, data, sc);
    auto sparse_snapshot = nn::snapshotParameters(*net);

    core::MvqLayerConfig lc_ab;
    lc_ab.k = 24;
    lc_ab.d = 8;

    TextTable t({"Case", "Total SSE", "Mask SSE", "FLOPs", "Acc (no FT)",
                 "Acc", "Paper (SSE tot/mask, FLOPs, acc)"});

    const struct { AblationCase c; bool sparse_weights;
                   const char *paper; } cases[] = {
        {AblationCase::A_DenseCommonDense, false,
         "1153/463, 1.81G, 66.5"},
        {AblationCase::B_SparseCommonDense, true,
         "518/498, 1.81G, 67.3"},
        {AblationCase::C_SparseCommonSparse, true,
         "1840/1840, 0.54G, 61.1"},
        {AblationCase::D_SparseMaskedSparse, true,
         "251/251, 0.54G, 68.8"}};

    for (const auto &cs : cases) {
        nn::restoreParameters(
            *net, cs.sparse_weights ? sparse_snapshot : dense_snapshot);
        const bool uses16 =
            cs.c == AblationCase::C_SparseCommonSparse
            || cs.c == AblationCase::D_SparseMaskedSparse;
        const core::MvqLayerConfig &lc = uses16 ? lc_cd : lc_ab;
        auto targets = core::compressibleConvs(*net, lc, true);

        std::vector<Tensor> reference;
        for (auto *conv : targets)
            reference.push_back(conv->weight().value);

        core::ClusterOptions opts;
        core::CompressedModel cm =
            vq::runAblationCase(cs.c, targets, lc, opts);
        const core::SseReport sse_report =
            core::computeSse(cm, reference);

        // "Mask SSE" in the paper's sense: error over the important
        // (top-4-of-16 magnitude) weights, regardless of the case.
        double important_sse = 0.0;
        for (std::size_t i = 0; i < cm.layers.size(); ++i) {
            Tensor ref_wr = core::groupWeights(reference[i], 16,
                                               lc.grouping);
            Tensor rec_wr = core::groupWeights(
                cm.reconstructLayer(i), 16, lc.grouping);
            const core::Mask important =
                core::importanceMask(ref_wr, 4, 16);
            for (std::int64_t idx = 0; idx < ref_wr.numel(); ++idx) {
                if (important[static_cast<std::size_t>(idx)]) {
                    const double diff = ref_wr[idx] - rec_wr[idx];
                    important_sse += diff * diff;
                }
            }
        }
        cm.applyTo(*net);
        const double acc_no_ft =
            nn::evalClassifier(*net, data, data.testSet());

        core::FinetuneConfig fc;
        fc.epochs = bench::fastMode() ? 1 : 2;
        fc.masked_gradients =
            cs.c == AblationCase::D_SparseMaskedSparse;
        const double acc =
            core::finetuneCompressedClassifier(cm, *net, data, fc);

        const std::int64_t flops = cm.compressedFlops();
        t.addRow({vq::ablationCaseName(cs.c),
                  bench::f2(sse_report.total_sse),
                  bench::f2(important_sse),
                  TextTable::count(flops), bench::f1(acc_no_ft),
                  bench::f1(acc), cs.paper});
    }
    t.print();
    std::cout << "dense baseline acc: " << bench::f1(dense_acc)
              << " (paper FP: 69.7). expected shape: D has the lowest "
                 "masked SSE, the lowest FLOPs (with C), and the best "
                 "accuracy.\n";
    return 0;
}
