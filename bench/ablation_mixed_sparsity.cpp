/**
 * @file
 * Ablation bench (extension; paper Section 2.1 cites DominoSearch for
 * mixed layerwise N:M): compare uniform 4:16 pruning against the mixed
 * layerwise pattern search at the same 75% global budget — removed
 * magnitude, pruning accuracy, and post-clustering accuracy.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/mixed_sparsity.hpp"
#include "nn/network.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Ablation: uniform 4:16 vs mixed layerwise N:16 at 75% sparsity",
        "extension feature (DominoSearch-style greedy search)");

    const nn::ClassificationDataset data(bench::stdDataConfig());
    double dense_acc = 0.0;
    auto net = bench::trainDenseMini("resnet18", data, 16, 3,
                                     &dense_acc);
    auto snapshot = nn::snapshotParameters(*net);

    core::MvqLayerConfig lc;
    lc.k = 16;
    lc.d = 16;
    auto targets = core::compressibleConvs(*net, lc, true);

    TextTable t({"Strategy", "Patterns", "Removed |w|", "Prune acc",
                 "Cluster acc"});

    // --- Uniform 4:16 -------------------------------------------------
    {
        const core::NmPattern uniform{4, 16};
        const double removed = core::uniformPrunedMagnitude(
            targets, uniform, lc.d, lc.grouping);
        core::oneShotPrune(targets, uniform, lc.d, lc.grouping);
        const double prune_acc =
            nn::evalClassifier(*net, data, data.testSet());
        lc.pattern = uniform;
        core::ClusterOptions opts;
        core::CompressedModel cm =
            core::clusterLayers(targets, lc, opts);
        cm.applyTo(*net);
        core::FinetuneConfig fc;
        fc.epochs = 1;
        const double cluster_acc =
            core::finetuneCompressedClassifier(cm, *net, data, fc);
        t.addRow({"uniform", "4:16 everywhere", bench::f2(removed),
                  bench::f1(prune_acc), bench::f1(cluster_acc)});
    }

    // --- Mixed layerwise ----------------------------------------------
    {
        nn::restoreParameters(*net, snapshot);
        const auto mixed = core::chooseLayerwisePatterns(
            targets, 16, 0.75, lc.d, lc.grouping);
        std::string patterns;
        for (std::size_t i = 0; i < mixed.patterns.size(); ++i) {
            if (i)
                patterns += ",";
            patterns += std::to_string(mixed.patterns[i].n);
        }
        // Apply per-layer patterns.
        for (std::size_t i = 0; i < targets.size(); ++i) {
            core::oneShotPrune({targets[i]}, mixed.patterns[i], lc.d,
                               lc.grouping);
        }
        const double prune_acc =
            nn::evalClassifier(*net, data, data.testSet());

        // Cluster each layer with its own pattern (layerwise books).
        core::CompressedModel cm;
        for (std::size_t i = 0; i < targets.size(); ++i) {
            core::MvqLayerConfig li = lc;
            li.pattern = mixed.patterns[i];
            core::ClusterOptions opts;
            core::CompressedModel one =
                core::clusterLayers({targets[i]}, li, opts);
            one.layers[0].codebook_id =
                static_cast<int>(cm.codebooks.size());
            cm.layers.push_back(one.layers[0]);
            cm.codebooks.push_back(one.codebooks[0]);
        }
        cm.applyTo(*net);
        core::FinetuneConfig fc;
        fc.epochs = 1;
        const double cluster_acc =
            core::finetuneCompressedClassifier(cm, *net, data, fc);
        t.addRow({"mixed (ours)", "N=" + patterns + " of 16",
                  bench::f2(mixed.pruned_magnitude),
                  bench::f1(prune_acc), bench::f1(cluster_acc)});
    }
    t.print();
    std::cout << "dense baseline: " << bench::f1(dense_acc)
              << ". expected: mixed removes less magnitude at the same "
                 "75% budget and prunes at least as accurately.\n";
    return 0;
}
