/**
 * @file
 * Reproduces paper Table 2: resource comparison of an H x d tile between
 * the dense EWS tile and the EWS-Sparse tile (H x Q multipliers, MRF,
 * LZC cascade, DEMUX/MUX), at the paper's parameters H = 16, d = 16,
 * Q = 4, bw = 8, 16-deep WRF.
 */

#include <iostream>

#include "bench_common.hpp"
#include "energy/area_model.hpp"

int
main()
{
    using namespace mvq;
    bench::printExperimentHeader(
        "Table 2: resources of an H x d tile, EWS vs EWS-Sparse",
        "analytic resource counts (exact reproduction of the table)");

    const std::int64_t h = 16, d = 16, q = 4, wrf = 16, bw = 8,
                       bpsum = 24;
    const auto dense = energy::denseTileResources(h, d, wrf, bw, bpsum);
    const auto sparse = energy::sparseTileResources(h, d, q, wrf, bw,
                                                    bpsum);

    TextTable t({"Resource", "EWS (paper)", "EWS measured",
                 "EWS-Sparse (paper)", "EWS-Sparse measured"});
    t.addRow({"Multiplier", "H*d = 256",
              std::to_string(dense.multipliers), "H*Q = 64",
              std::to_string(sparse.multipliers)});
    t.addRow({"Adder", "H*d = 256", std::to_string(dense.adders),
              "H*d = 256", std::to_string(sparse.adders)});
    t.addRow({"RF bits", "H*d*16*bw = 32768",
              std::to_string(dense.rf_bits),
              "H*Q*16*bw + H*Q*16*log2(d) = 12288",
              std::to_string(sparse.rf_bits)});
    t.addRow({"LZC", "NA", std::to_string(dense.lzc_units), "H*Q = 64",
              std::to_string(sparse.lzc_units)});
    t.addRow({"DEMUX bits", "NA", std::to_string(dense.demux_bits),
              "H*Q*b_psum = 1536", std::to_string(sparse.demux_bits)});
    t.addRow({"MUX bits", "NA", std::to_string(dense.mux_bits),
              "H*Q*bw = 512", std::to_string(sparse.mux_bits)});
    t.addRow({"Parallelism", "2*H*d = 512",
              std::to_string(dense.parallelism), "2*H*d = 512",
              std::to_string(sparse.parallelism)});
    t.print();

    std::cout << "tile area: dense " << bench::f2(tileArea(dense) * 1e3)
              << " um^2*1e3, sparse "
              << bench::f2(tileArea(sparse) * 1e3)
              << " um^2*1e3 (sparse/dense = "
              << bench::f2(tileArea(sparse) / tileArea(dense)) << ")\n";
    return 0;
}
