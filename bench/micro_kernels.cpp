/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels plus a before/after
 * speedup report: the seed's scalar kernels (gemmReference and a branchy
 * assignment sweep kept here verbatim) are timed against the parallel
 * blocked/branchless kernels, reporting GFLOP/s and assignments/s. With
 * `--json <path>` (or MVQ_BENCH_JSON) the measurements append to a
 * JSON-lines file so future PRs can track the perf trajectory. A second
 * report forces each available SIMD dispatch path (scalar/avx2/neon)
 * through the same workloads and records per-ISA throughput plus
 * vector-vs-scalar speedups.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <limits>
#include <vector>

#include <cmath>
#include <cstdlib>
#include <map>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"
#include "core/grouping.hpp"
#include "core/mask_codec.hpp"
#include "core/masked_kmeans.hpp"
#include "core/nm_pruning.hpp"
#include "sim/lzc.hpp"
#include "sim/systolic_array.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace mvq;

/** The seed's branchy scalar assignment loop, kept as the "before". */
std::int64_t
maskedAssignReference(const Tensor &wr, const core::Mask &mask,
                      const Tensor &codebook,
                      std::vector<std::int32_t> &assignments)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    const std::int64_t k = codebook.dim(0);
    std::int64_t changed = 0;
    const float *pw = wr.data();
    const float *pc = codebook.data();
    for (std::int64_t j = 0; j < ng; ++j) {
        const float *wrow = pw + j * d;
        const std::uint8_t *mrow = mask.data() + j * d;
        float best = std::numeric_limits<float>::max();
        std::int32_t best_i = 0;
        for (std::int64_t i = 0; i < k; ++i) {
            const float *crow = pc + i * d;
            float s = 0.0f;
            for (std::int64_t t = 0; t < d; ++t) {
                if (mrow[t]) {
                    const float diff = wrow[t] - crow[t];
                    s += diff * diff;
                }
            }
            if (s < best) {
                best = s;
                best_i = static_cast<std::int32_t>(i);
            }
        }
        if (assignments[static_cast<std::size_t>(j)] != best_i)
            ++changed;
        assignments[static_cast<std::size_t>(j)] = best_i;
    }
    return changed;
}

void
BM_MaskedKmeansIteration(benchmark::State &state)
{
    const std::int64_t ng = state.range(0);
    Rng rng(1);
    Tensor wr(Shape({ng, 16}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    core::KmeansConfig cfg;
    cfg.k = 64;
    cfg.max_iters = 2;
    for (auto _ : state) {
        auto res = core::maskedKmeans(wr, mask, cfg);
        benchmark::DoNotOptimize(res.sse);
    }
    state.SetItemsProcessed(state.iterations() * ng * 64);
}
BENCHMARK(BM_MaskedKmeansIteration)->Arg(1024)->Arg(4096);

void
BM_MaskedAssign(benchmark::State &state)
{
    const std::int64_t ng = state.range(0);
    Rng rng(1);
    Tensor wr(Shape({ng, 16}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    const std::vector<float> mask01 = core::maskToFloat(mask);
    Tensor cb(Shape({64, 16}));
    cb.fillNormal(rng, 0.0f, 1.0f);
    std::vector<std::int32_t> assign(static_cast<std::size_t>(ng), 0);
    for (auto _ : state) {
        auto changed = core::maskedAssign(wr, mask01, cb, assign);
        benchmark::DoNotOptimize(changed);
    }
    state.SetItemsProcessed(state.iterations() * ng);
}
BENCHMARK(BM_MaskedAssign)->Arg(4096)->Arg(16384);

void
BM_MaskedAssignRef(benchmark::State &state)
{
    const std::int64_t ng = state.range(0);
    Rng rng(1);
    Tensor wr(Shape({ng, 16}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    Tensor cb(Shape({64, 16}));
    cb.fillNormal(rng, 0.0f, 1.0f);
    std::vector<std::int32_t> assign(static_cast<std::size_t>(ng), 0);
    for (auto _ : state) {
        auto changed = maskedAssignReference(wr, mask, cb, assign);
        benchmark::DoNotOptimize(changed);
    }
    state.SetItemsProcessed(state.iterations() * ng);
}
BENCHMARK(BM_MaskedAssignRef)->Arg(4096)->Arg(16384);

void
BM_LzcEncode(benchmark::State &state)
{
    std::vector<std::uint8_t> bits(16, 0);
    bits[2] = bits[7] = bits[9] = bits[15] = 1;
    for (auto _ : state) {
        auto out = sim::lzcEncode(bits, 4);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LzcEncode);

void
BM_MaskCodecRoundTrip(benchmark::State &state)
{
    const core::MaskCodec codec(core::NmPattern{4, 16});
    std::vector<std::uint8_t> group(16, 0);
    group[1] = group[5] = group[9] = group[13] = 1;
    for (auto _ : state) {
        const std::uint32_t code = codec.encodeGroup(group.data());
        auto bits = codec.decodeGroup(code);
        benchmark::DoNotOptimize(bits.data());
    }
}
BENCHMARK(BM_MaskCodecRoundTrip);

void
BM_Gemm(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Rng rng(2);
    Tensor a(Shape({n, n}));
    Tensor b(Shape({n, n}));
    Tensor c(Shape({n, n}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        gemm(a, false, b, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

/** Random [rows, cols] matrix with the compressed-layer 4:16 structure. */
Tensor
masked416Matrix(std::uint64_t seed, std::int64_t rows, std::int64_t cols)
{
    Rng rng(seed);
    return core::randomNmMatrix(rng, rows, cols, core::NmPattern{4, 16});
}

void
BM_GemmSparse(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Tensor a = masked416Matrix(2, n, n);
    const SparseRowMatrix sp = sparsifyRows(a);
    Rng rng(3);
    Tensor b(Shape({n, n}));
    Tensor c(Shape({n, n}));
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        gemmSparseA(sp, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    // Useful (kept-position) flops; the dense equivalent is 4x this.
    state.SetItemsProcessed(state.iterations() * 2 * sp.nnz() * n);
}
BENCHMARK(BM_GemmSparse)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmIm2col(benchmark::State &state)
{
    // Fused im2col->panel conv gemm on a conv-like slab (C channels,
    // n x n image, 3x3, pad 1); BM_Gemm is the matching dense-B driver.
    const std::int64_t C = 64;
    const std::int64_t hw = state.range(0);
    const ConvGeom g{C, hw, hw, 3, 3, 1, 1};
    Rng rng(2);
    Tensor x(Shape({1, C, hw, hw}));
    x.fillNormal(rng, 0.0f, 1.0f);
    const std::int64_t m = 64;
    const std::int64_t k = C * 9;
    Tensor a(Shape({m, k}));
    a.fillNormal(rng, 0.0f, 1.0f);
    const Im2colB b{x.data(), g};
    Tensor c(Shape({m, b.cols()}));
    for (auto _ : state) {
        gemmIm2colRaw(m, 1.0f, a.data(), k, b, 0.0f, c.data(), b.cols());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * k * b.cols());
}
BENCHMARK(BM_GemmIm2col)->Arg(14)->Arg(28);

void
BM_GemmRef(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Rng rng(2);
    Tensor a(Shape({n, n}));
    Tensor b(Shape({n, n}));
    Tensor c(Shape({n, n}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        gemmReference(a, false, b, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmRef)->Arg(64)->Arg(128)->Arg(256);

void
BM_SystolicArrayConv(benchmark::State &state)
{
    Rng rng(3);
    Tensor ifmap(Shape({8, 8, 8}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    Tensor w(Shape({16, 8, 3, 3}));
    w.fillNormal(rng, 0.0f, 0.5f);
    auto cfg = sim::makeHwSetting(sim::HwSetting::EWS_Base, 16);
    sim::SystolicArray array(cfg);
    auto dec = sim::wrapDenseWeights(w, 1);
    for (auto _ : state) {
        auto run = array.runConv(ifmap, dec, 1, 1);
        benchmark::DoNotOptimize(run.counters.total_cycles);
    }
}
BENCHMARK(BM_SystolicArrayConv);

// ---------------------------------------------------------------------
// Before/after speedup report.

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

void
speedupReport(const std::string &json)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f2;

    const bool fast = mvq::bench::fastMode();
    std::cout << "\n--- kernel speedup report (" << numThreads()
              << " threads) ---\n";

    // GEMM at 512^3 (256^3 in fast mode).
    {
        const std::int64_t n = fast ? 256 : 512;
        Rng rng(2);
        Tensor a(Shape({n, n}));
        Tensor b(Shape({n, n}));
        Tensor c(Shape({n, n}));
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        const double flop = 2.0 * static_cast<double>(n) * n * n;
        // Same rep count for both sides: best-of-N shrinks with N under
        // noise, so asymmetric reps would bias the speedup.
        const double t_ref = secondsOf(
            [&] { gemmReference(a, false, b, false, c); }, 5);
        const double t_opt = secondsOf(
            [&] { gemm(a, false, b, false, c); }, 5);
        const double g_ref = flop / t_ref * 1e-9;
        const double g_opt = flop / t_opt * 1e-9;
        std::cout << "gemm " << n << "^3: before " << f2(g_ref)
                  << " GFLOP/s, after " << f2(g_opt) << " GFLOP/s ("
                  << f2(t_ref / t_opt) << "x)\n";
        const std::string name = "gemm" + std::to_string(n);
        appendBenchRecord(json, name, "gflops_before", g_ref);
        appendBenchRecord(json, name, "gflops_after", g_opt);
        appendBenchRecord(json, name, "speedup", t_ref / t_opt);
    }

    // Masked k-means assignment sweep.
    {
        const std::int64_t ng = fast ? 8192 : 32768;
        const std::int64_t k = 64;
        Rng rng(1);
        Tensor wr(Shape({ng, 16}));
        wr.fillNormal(rng, 0.0f, 1.0f);
        core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
        core::applyMask(wr, mask);
        const std::vector<float> mask01 = core::maskToFloat(mask);
        Tensor cb(Shape({k, 16}));
        cb.fillNormal(rng, 0.0f, 1.0f);
        std::vector<std::int32_t> assign(static_cast<std::size_t>(ng), 0);
        const double t_ref = secondsOf(
            [&] { maskedAssignReference(wr, mask, cb, assign); }, 5);
        const double t_opt = secondsOf(
            [&] { core::maskedAssign(wr, mask01, cb, assign); }, 5);
        const double a_ref = static_cast<double>(ng) / t_ref;
        const double a_opt = static_cast<double>(ng) / t_opt;
        std::cout << "masked assignment (ng=" << ng << ", k=" << k
                  << "): before " << f2(a_ref * 1e-6)
                  << " M assignments/s, after " << f2(a_opt * 1e-6)
                  << " M assignments/s (" << f2(t_ref / t_opt) << "x)\n";
        appendBenchRecord(json, "masked_assign", "assignments_per_s_before",
                          a_ref);
        appendBenchRecord(json, "masked_assign", "assignments_per_s_after",
                          a_opt);
        appendBenchRecord(json, "masked_assign", "speedup", t_ref / t_opt);
    }
}

/**
 * Per-ISA throughput: force each SIMD path this host can execute through
 * the same gemm and masked-assignment workloads so BENCH_*.json records
 * the dispatch layer's win explicitly (vector-vs-scalar speedups included).
 */
void
isaReport(const std::string &json)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f2;
    using simd::Isa;

    const bool fast = mvq::bench::fastMode();
    const std::int64_t n = fast ? 256 : 512;
    const std::int64_t ng = fast ? 8192 : 32768;
    const std::int64_t k = 64;

    Rng rng(2);
    Tensor a(Shape({n, n}));
    Tensor b(Shape({n, n}));
    Tensor c(Shape({n, n}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const double flop = 2.0 * static_cast<double>(n) * n * n;

    Rng rng2(1);
    Tensor wr(Shape({ng, 16}));
    wr.fillNormal(rng2, 0.0f, 1.0f);
    core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    const std::vector<float> mask01 = core::maskToFloat(mask);
    Tensor cb(Shape({k, 16}));
    cb.fillNormal(rng2, 0.0f, 1.0f);
    std::vector<std::int32_t> assign(static_cast<std::size_t>(ng), 0);

    std::cout << "--- per-ISA throughput (gemm " << n
              << "^3, masked assignment ng=" << ng << " 4:16) ---\n";
    const simd::Isa saved = simd::activeIsa();
    double scalar_gflops = 0.0;
    double scalar_aps = 0.0;
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (!simd::isaAvailable(isa))
            continue;
        simd::setIsa(isa);
        const std::string tag = simd::isaName(isa);

        const double t_g =
            secondsOf([&] { gemm(a, false, b, false, c); }, 5);
        const double gflops = flop / t_g * 1e-9;
        const double t_a = secondsOf(
            [&] { core::maskedAssign(wr, mask01, cb, assign); }, 5);
        const double aps = static_cast<double>(ng) / t_a;

        std::cout << tag << ": gemm " << f2(gflops)
                  << " GFLOP/s, assignment " << f2(aps * 1e-6) << " M/s";
        appendBenchRecord(json, "gemm" + std::to_string(n) + "_" + tag,
                          "gflops", gflops);
        appendBenchRecord(json, "masked_assign_" + tag,
                          "assignments_per_s", aps);
        if (isa == Isa::Scalar) {
            scalar_gflops = gflops;
            scalar_aps = aps;
        } else {
            std::cout << " (vs scalar: gemm "
                      << f2(gflops / scalar_gflops) << "x, assignment "
                      << f2(aps / scalar_aps) << "x)";
            appendBenchRecord(json, "simd_dispatch",
                              "gemm_speedup_" + tag + "_vs_scalar",
                              gflops / scalar_gflops);
            appendBenchRecord(json, "simd_dispatch",
                              "assign_speedup_" + tag + "_vs_scalar",
                              aps / scalar_aps);
        }
        std::cout << "\n";
    }
    simd::setIsa(saved);
}

/**
 * Dense-vs-sparse gemm on the same 4:16 compressed-layer structure: the
 * dense path multiplies the masked (75%-zero) dense matrix, the sparse
 * path consumes the compressed rows. Single-threaded so the speedup is
 * the per-core flop-cut story, not a parallel-scaling artifact; the ideal
 * is 4x, and the achieved fraction is reported honestly per ISA.
 */
void
sparseReport(const std::string &json)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f2;
    using simd::Isa;

    const bool fast = mvq::bench::fastMode();
    // Conv-layer-like shape: 256 output channels, 256*3*3 unrolled
    // columns, 28x28 (14x14 in fast mode) output positions.
    const std::int64_t m = 256;
    const std::int64_t k = 2304;
    const std::int64_t n = fast ? 196 : 784;

    Tensor a = masked416Matrix(6, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    Rng rng(7);
    Tensor b(Shape({k, n}));
    Tensor c(Shape({m, n}));
    b.fillNormal(rng, 0.0f, 1.0f);
    const double dense_flop = 2.0 * static_cast<double>(m) * k * n;
    const double ideal = static_cast<double>(m * k) / sp.nnz(); // ~4.0

    const int prev_threads = numThreads();
    setNumThreads(1);
    std::cout << "--- dense vs sparse gemm at 4:16 (m=" << m << " k=" << k
              << " n=" << n << ", single core, ideal " << f2(ideal)
              << "x) ---\n";
    const simd::Isa saved = simd::activeIsa();
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (!simd::isaAvailable(isa))
            continue;
        simd::setIsa(isa);
        const std::string tag = simd::isaName(isa);

        const double t_dense =
            secondsOf([&] { gemm(a, false, b, false, c); }, 5);
        const double t_sparse =
            secondsOf([&] { gemmSparseA(sp, b, c); }, 5);
        const double speedup = t_dense / t_sparse;
        const double fraction = speedup / ideal;
        std::cout << tag << ": dense " << f2(dense_flop / t_dense * 1e-9)
                  << " GFLOP/s, sparse " << f2(t_sparse * 1e3)
                  << " ms/iter -> " << f2(speedup) << "x ("
                  << f2(fraction * 100.0) << "% of the " << f2(ideal)
                  << "x flop cut)\n";
        const std::string name = "gemm_sparse_416_" + tag;
        appendBenchRecord(json, name, "dense_gflops",
                          dense_flop / t_dense * 1e-9);
        appendBenchRecord(json, name, "sparse_seconds", t_sparse);
        appendBenchRecord(json, name, "speedup_vs_dense", speedup);
        appendBenchRecord(json, name, "flop_cut_fraction", fraction);
    }
    simd::setIsa(saved);
    setNumThreads(prev_threads);
}

/**
 * Fused im2col->panel packing vs the materializing im2col + gemm path on
 * the PR3 4:16 conv layer (C=256, 28x28, 3x3, stride 1, pad 1 -> m=256,
 * k=2304, n=784), dense and sparse, single core per ISA. The unfused
 * side times the whole conv forward step (im2col + dense-B gemm) since
 * that is what the fusion replaces; the fused side is one call. Also
 * re-derives the sparse fraction of the ideal 4x flop cut at the conv
 * level with both paths fused — the PR4 accounting in PERF.md.
 */
void
fusedReport(const std::string &json)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f2;
    using simd::Isa;

    const bool fast = mvq::bench::fastMode();
    const std::int64_t C = 256;
    const std::int64_t m = 256;
    const std::int64_t hw = fast ? 14 : 28;
    const ConvGeom g{C, hw, hw, 3, 3, 1, 1};
    const std::int64_t k = C * 9;
    const std::int64_t n = g.outH() * g.outW();

    Rng rng(9);
    Tensor x(Shape({1, C, hw, hw}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor a = masked416Matrix(6, m, k);
    const SparseRowMatrix sp = sparsifyRows(a);
    const Im2colB b{x.data(), g};
    Tensor c(Shape({m, n}));
    const double ideal = static_cast<double>(m * k) / sp.nnz(); // ~4.0

    const int prev_threads = numThreads();
    setNumThreads(1);
    std::cout << "--- fused im2col->panel vs im2col+gemm (4:16 layer m="
              << m << " k=" << k << " n=" << n
              << ", single core, sparse ideal " << f2(ideal) << "x) ---\n";
    const simd::Isa saved = simd::activeIsa();
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (!simd::isaAvailable(isa))
            continue;
        simd::setIsa(isa);
        const std::string tag = simd::isaName(isa);

        // Best-of-7 (same rep count on every side, so best-of-N bias
        // cancels): the fused-vs-unfused gaps on the compute-bound cells
        // are a few percent, which best-of-5 resolves only marginally on
        // a shared box.
        const int reps = 7;
        const double t_dense_unfused = secondsOf(
            [&] {
                const Tensor cols = im2col(x, 0, g);
                gemmRaw(m, n, k, 1.0f, a.data(), k, false, cols.data(), n,
                        false, 0.0f, c.data(), n);
            },
            reps);
        const double t_dense_fused = secondsOf(
            [&] {
                gemmIm2colRaw(m, 1.0f, a.data(), k, b, 0.0f, c.data(), n);
            },
            reps);
        const double t_sparse_unfused = secondsOf(
            [&] {
                const Tensor cols = im2col(x, 0, g);
                gemmSparseARaw(sp, cols.data(), n, n, 1.0f, 0.0f, c.data(),
                               n);
            },
            reps);
        const double t_sparse_fused = secondsOf(
            [&] {
                gemmSparseAIm2col(sp, b, 1.0f, 0.0f, c.data(), n);
            },
            reps);

        const double dense_speedup = t_dense_unfused / t_dense_fused;
        const double sparse_speedup = t_sparse_unfused / t_sparse_fused;
        const double sparse_vs_dense = t_dense_fused / t_sparse_fused;
        const double fraction = sparse_vs_dense / ideal;
        std::cout << tag << ": dense " << f2(t_dense_unfused * 1e3)
                  << " -> " << f2(t_dense_fused * 1e3) << " ms ("
                  << f2(dense_speedup) << "x), sparse "
                  << f2(t_sparse_unfused * 1e3) << " -> "
                  << f2(t_sparse_fused * 1e3) << " ms ("
                  << f2(sparse_speedup) << "x); fused sparse vs fused "
                     "dense "
                  << f2(sparse_vs_dense) << "x (" << f2(fraction * 100.0)
                  << "% of the " << f2(ideal) << "x flop cut)\n";
        const std::string name = "conv_fused_416_" + tag;
        appendBenchRecord(json, name, "dense_unfused_seconds",
                          t_dense_unfused);
        appendBenchRecord(json, name, "dense_fused_seconds", t_dense_fused);
        appendBenchRecord(json, name, "dense_fused_speedup", dense_speedup);
        appendBenchRecord(json, name, "sparse_unfused_seconds",
                          t_sparse_unfused);
        appendBenchRecord(json, name, "sparse_fused_seconds",
                          t_sparse_fused);
        appendBenchRecord(json, name, "sparse_fused_speedup",
                          sparse_speedup);
        appendBenchRecord(json, name, "sparse_vs_dense_fused",
                          sparse_vs_dense);
        appendBenchRecord(json, name, "flop_cut_fraction", fraction);
    }
    simd::setIsa(saved);
    setNumThreads(prev_threads);
}

/**
 * Multi-row sparse micro-kernel report on the PR3 reference layer shape
 * (m=256 k=2304 n=784 fused conv, single core per ISA), with the operand
 * built the way MVQ actually builds it: output-channel-wise d=16
 * grouping, magnitude 4:16 masks, and a lognormal per-channel scale
 * spread (real conv layers have widely varying channel norms) so mask
 * codes repeat across columns of a 16-channel block — the structure
 * groupSparseRows buckets. Prints the bucket histogram (bucket count,
 * mean/max rows per bucket, fallback fraction) and times fused dense vs
 * fused sparse with the multi-row path off (single-row kernel, PR3
 * behavior) and on. With MVQ_BENCH_GATE_MIN_SPEEDUP set, returns false —
 * loudly — when the avx2 multi-row sparse-vs-dense speedup regresses
 * below the threshold (the CI perf gate).
 */
bool
multiRowReport(const std::string &json)
{
    using mvq::bench::appendBenchRecord;
    using mvq::bench::f2;
    using simd::Isa;

    const bool fast = mvq::bench::fastMode();
    const std::int64_t C = 256;
    const std::int64_t m = 256;
    const std::int64_t hw = fast ? 14 : 28;
    const ConvGeom g{C, hw, hw, 3, 3, 1, 1};
    const std::int64_t k = C * 9;
    const std::int64_t n = g.outH() * g.outW();
    const std::int64_t d = 16;

    Rng rng(11);
    Tensor x(Shape({1, C, hw, hw}));
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor w4(Shape({m, C, 3, 3}));
    w4.fillNormal(rng, 0.0f, 1.0f);
    Tensor zscale(Shape({m}));
    zscale.fillNormal(rng, 0.0f, 1.0f);
    for (std::int64_t ch = 0; ch < m; ++ch) {
        const float s = std::exp(1.5f * zscale[ch]);
        float *row = w4.data() + ch * C * 9;
        for (std::int64_t i = 0; i < C * 9; ++i)
            row[i] *= s;
    }
    Tensor wr = core::groupWeights(w4, d, core::Grouping::OutputChannelWise);
    const core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    const Tensor w4m = core::ungroupWeights(wr, w4.shape(), d,
                                            core::Grouping::OutputChannelWise);
    const Tensor a = w4m.reshaped(Shape({m, k}));
    const SparseRowMatrix sp = sparsifyRows(a);
    const GroupedSparseMatrix grp = groupSparseRows(sp, 16);

    // Bucket histogram: tiles sharing a column pattern (col_off) are one
    // bucket; rows per bucket = how many A rows one B-panel load feeds.
    std::map<std::int64_t, std::int64_t> bucket_rows;
    for (const GroupedSparseMatrix::Tile &t : grp.tiles)
        bucket_rows[t.col_off] += t.nrows;
    std::int64_t max_rows = 0;
    std::int64_t sum_rows = 0;
    for (const auto &[off, nrows] : bucket_rows) {
        max_rows = std::max(max_rows, nrows);
        sum_rows += nrows;
    }
    const double nbuckets = static_cast<double>(bucket_rows.size());
    const double mean_rows =
        nbuckets != 0.0 ? static_cast<double>(sum_rows) / nbuckets : 0.0;
    const double fallback = grp.fallbackFraction();

    std::cout << "--- multi-row sparse micro-kernel (4:16 OCW layer m=" << m
              << " k=" << k << " n=" << n << ", single core) ---\n"
              << "mask-code buckets: " << bucket_rows.size() << " tiled ("
              << grp.tiles.size() << " tiles), rows/bucket mean "
              << f2(mean_rows) << " max " << max_rows
              << ", single-row fallback fraction " << f2(fallback * 100.0)
              << "%\n";
    appendBenchRecord(json, "sparse_multirow_buckets", "bucket_count",
                      nbuckets);
    appendBenchRecord(json, "sparse_multirow_buckets", "tile_count",
                      static_cast<double>(grp.tiles.size()));
    appendBenchRecord(json, "sparse_multirow_buckets",
                      "mean_rows_per_bucket", mean_rows);
    appendBenchRecord(json, "sparse_multirow_buckets", "max_rows_per_bucket",
                      static_cast<double>(max_rows));
    appendBenchRecord(json, "sparse_multirow_buckets", "fallback_fraction",
                      fallback);

    const Im2colB b{x.data(), g};
    Tensor c(Shape({m, n}));

    const double gate = env::real("MVQ_BENCH_GATE_MIN_SPEEDUP", 0.0);
    bool ok = true;

    const int prev_threads = numThreads();
    setNumThreads(1);
    const simd::Isa saved = simd::activeIsa();
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon}) {
        if (!simd::isaAvailable(isa))
            continue;
        simd::setIsa(isa);
        const std::string tag = simd::isaName(isa);

        const int reps = 7;
        const double t_dense = secondsOf(
            [&] {
                gemmIm2colRaw(m, 1.0f, a.data(), k, b, 0.0f, c.data(), n);
            },
            reps);
        setSparseMultiRowEnabled(false);
        const double t_single = secondsOf(
            [&] { gemmSparseAIm2col(grp, b, 1.0f, 0.0f, c.data(), n); },
            reps);
        setSparseMultiRowEnabled(true);
        const double t_multi = secondsOf(
            [&] { gemmSparseAIm2col(grp, b, 1.0f, 0.0f, c.data(), n); },
            reps);

        // Knob-off contract: the grouped operand with MVQ_SPARSE_MULTIROW
        // off must reproduce the plain single-row path bit-for-bit (it
        // forwards to the same entry point on the embedded operand).
        Tensor c_plain(Shape({m, n}));
        Tensor c_knob_off(Shape({m, n}));
        gemmSparseAIm2col(sp, b, 1.0f, 0.0f, c_plain.data(), n);
        setSparseMultiRowEnabled(false);
        gemmSparseAIm2col(grp, b, 1.0f, 0.0f, c_knob_off.data(), n);
        setSparseMultiRowEnabled(true);
        const bool bit_identical =
            std::memcmp(c_plain.data(), c_knob_off.data(),
                        static_cast<std::size_t>(m * n) * sizeof(float))
            == 0;

        const double single_vs_dense = t_dense / t_single;
        const double multi_vs_dense = t_dense / t_multi;
        const double multi_vs_single = t_single / t_multi;
        std::cout << tag << ": dense " << f2(t_dense * 1e3)
                  << " ms, sparse single-row " << f2(t_single * 1e3)
                  << " ms (" << f2(single_vs_dense) << "x), multi-row "
                  << f2(t_multi * 1e3) << " ms (" << f2(multi_vs_dense)
                  << "x vs dense, " << f2(multi_vs_single)
                  << "x vs single-row); knob-off bit-identical: "
                  << (bit_identical ? "yes" : "NO") << "\n";
        const std::string name = "conv_fused_416_multirow_" + tag;
        appendBenchRecord(json, name, "dense_fused_seconds", t_dense);
        appendBenchRecord(json, name, "singlerow_seconds", t_single);
        appendBenchRecord(json, name, "multirow_seconds", t_multi);
        appendBenchRecord(json, name, "singlerow_vs_dense",
                          single_vs_dense);
        appendBenchRecord(json, name, "sparse_vs_dense_fused",
                          multi_vs_dense);
        appendBenchRecord(json, name, "multirow_vs_singlerow",
                          multi_vs_single);
        appendBenchRecord(json, name, "knob_off_bit_identical",
                          bit_identical ? 1.0 : 0.0);

        if (!bit_identical) {
            std::cerr << "\nFAIL: MVQ_SPARSE_MULTIROW=0 on " << tag
                      << " does not reproduce the single-row path "
                         "bit-identically.\n\n";
            ok = false;
        }
        if (gate > 0.0 && isa == Isa::Avx2 && multi_vs_dense < gate) {
            std::cerr << "\nFAIL: fused sparse-vs-dense speedup on avx2 is "
                      << f2(multi_vs_dense) << "x, below the "
                      << f2(gate)
                      << "x floor (MVQ_BENCH_GATE_MIN_SPEEDUP). The "
                         "multi-row sparse path has regressed.\n\n";
            ok = false;
        }
    }
    simd::setIsa(saved);
    setNumThreads(prev_threads);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json = mvq::bench::benchJsonPath(argc, argv);

    // Strip our --json flag (with or without its value) before handing
    // argv to google-benchmark.
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 < argc)
                ++i;
            else
                std::cerr << "micro_kernels: --json needs a path; "
                             "ignoring\n";
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    speedupReport(json);
    isaReport(json);
    sparseReport(json);
    fusedReport(json);
    const bool gate_ok = multiRowReport(json);
    return gate_ok ? 0 : 1;
}
