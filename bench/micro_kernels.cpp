/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels: masked k-means
 * iterations, the LZC cascade, mask codec encode/decode, GEMM, and the
 * functional systolic array. Not tied to a paper table; used to track
 * the performance of the library itself.
 */

#include <benchmark/benchmark.h>

#include "core/mask_codec.hpp"
#include "core/masked_kmeans.hpp"
#include "sim/lzc.hpp"
#include "sim/systolic_array.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace mvq;

void
BM_MaskedKmeansIteration(benchmark::State &state)
{
    const std::int64_t ng = state.range(0);
    Rng rng(1);
    Tensor wr(Shape({ng, 16}));
    wr.fillNormal(rng, 0.0f, 1.0f);
    core::Mask mask = core::nmMask(wr, core::NmPattern{4, 16});
    core::applyMask(wr, mask);
    core::KmeansConfig cfg;
    cfg.k = 64;
    cfg.max_iters = 2;
    for (auto _ : state) {
        auto res = core::maskedKmeans(wr, mask, cfg);
        benchmark::DoNotOptimize(res.sse);
    }
    state.SetItemsProcessed(state.iterations() * ng * 64);
}
BENCHMARK(BM_MaskedKmeansIteration)->Arg(1024)->Arg(4096);

void
BM_LzcEncode(benchmark::State &state)
{
    std::vector<std::uint8_t> bits(16, 0);
    bits[2] = bits[7] = bits[9] = bits[15] = 1;
    for (auto _ : state) {
        auto out = sim::lzcEncode(bits, 4);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LzcEncode);

void
BM_MaskCodecRoundTrip(benchmark::State &state)
{
    const core::MaskCodec codec(core::NmPattern{4, 16});
    std::vector<std::uint8_t> group(16, 0);
    group[1] = group[5] = group[9] = group[13] = 1;
    for (auto _ : state) {
        const std::uint32_t code = codec.encodeGroup(group.data());
        auto bits = codec.decodeGroup(code);
        benchmark::DoNotOptimize(bits.data());
    }
}
BENCHMARK(BM_MaskCodecRoundTrip);

void
BM_Gemm(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Rng rng(2);
    Tensor a(Shape({n, n}));
    Tensor b(Shape({n, n}));
    Tensor c(Shape({n, n}));
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        gemm(a, false, b, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128);

void
BM_SystolicArrayConv(benchmark::State &state)
{
    Rng rng(3);
    Tensor ifmap(Shape({8, 8, 8}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    Tensor w(Shape({16, 8, 3, 3}));
    w.fillNormal(rng, 0.0f, 0.5f);
    auto cfg = sim::makeHwSetting(sim::HwSetting::EWS_Base, 16);
    sim::SystolicArray array(cfg);
    auto dec = sim::wrapDenseWeights(w, 1);
    for (auto _ : state) {
        auto run = array.runConv(ifmap, dec, 1, 1);
        benchmark::DoNotOptimize(run.counters.total_cycles);
    }
}
BENCHMARK(BM_SystolicArrayConv);

} // namespace

BENCHMARK_MAIN();
