/**
 * @file
 * Shared plumbing for the experiment harnesses: the standard synthetic
 * dataset, dense mini-model training, and formatting helpers. Every
 * bench prints the paper's reported values next to our measured ones;
 * absolute numbers differ (mini models on synthetic data / analytic
 * hardware models), the *shape* — orderings, ratios, crossovers — is the
 * reproduction target (see EXPERIMENTS.md).
 */

#ifndef MVQ_BENCH_COMMON_HPP
#define MVQ_BENCH_COMMON_HPP

#include <memory>
#include <string>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "models/mini_models.hpp"
#include "nn/trainer.hpp"

namespace mvq::bench {

/** True when MVQ_BENCH_FAST is set: shrink sweeps for smoke runs. */
bool fastMode();

/** The standard classification task shared by the algorithm benches. */
nn::ClassificationConfig stdDataConfig();

/**
 * Train a dense mini model of the given family on `data`.
 *
 * @param width  Base channel count (16 keeps everything d=16-groupable).
 * @param epochs Dense training epochs.
 * @param[out] test_acc Final dense test accuracy.
 */
std::unique_ptr<nn::Sequential> trainDenseMini(
    const std::string &family, const nn::ClassificationDataset &data,
    std::int64_t width, int epochs, double *test_acc);

/** Print the standard header naming the experiment and its substitute. */
void printExperimentHeader(const std::string &experiment,
                           const std::string &substitution);

/** Format helper: "x.xx" with two decimals. */
std::string f2(double v);

/** Format helper: one decimal. */
std::string f1(double v);

/**
 * Resolve the benchmark JSON output path: `--json <path>` on the command
 * line wins, then the MVQ_BENCH_JSON environment variable. Empty string
 * means JSON output is disabled.
 */
std::string benchJsonPath(int argc, char **argv);

/**
 * Append one `{"bench": ..., "metric": ..., "value": ...}` record to the
 * JSON-lines file at `path` (no-op when path is empty). Future PRs diff
 * these BENCH_*.json files to track the perf trajectory.
 */
void appendBenchRecord(const std::string &path, const std::string &bench,
                       const std::string &metric, double value);

} // namespace mvq::bench

#endif // MVQ_BENCH_COMMON_HPP
