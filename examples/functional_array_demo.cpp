/**
 * @file
 * Functional-simulation example: push a compressed layer through the
 * full hardware decode path — assignment stream, mask LUT, codebook
 * register file, AND gates, LZC-encoded sparse tile — cycle by cycle,
 * and verify the array's output against a software convolution.
 */

#include <iostream>

#include "core/pipeline.hpp"
#include "sim/systolic_array.hpp"
#include "tensor/ops.hpp"

int
main()
{
    using namespace mvq;

    // Build and compress one conv layer (k = N_G: lossless on the
    // pruned kernel, so any mismatch would expose a datapath bug).
    Rng rng(5);
    const Shape kernel_shape({32, 8, 3, 3});
    Tensor kernel(kernel_shape);
    kernel.fillNormal(rng, 0.0f, 0.1f);

    core::MvqLayerConfig lc;
    lc.d = 16;
    lc.pattern = core::NmPattern{4, 16};
    lc.k = kernel_shape.numel() / lc.d;
    lc.codebook_bits = 0;

    Tensor grouped = core::groupWeights(kernel, lc.d, lc.grouping);
    core::Mask mask = core::nmMask(grouped, lc.pattern);
    core::applyMask(grouped, mask);
    Tensor pruned = core::ungroupWeights(grouped, kernel_shape, lc.d,
                                         lc.grouping);

    core::KmeansConfig km;
    km.k = lc.k;
    core::KmeansResult clusters = core::maskedKmeans(grouped, mask, km);
    core::Codebook book;
    book.codewords = clusters.codebook;
    core::CompressedLayer layer = core::makeCompressedLayer(
        "conv", kernel_shape, lc, mask, clusters, 0);

    // The EWS-CMS accelerator at 16x16 (one sparse tile per row).
    const auto cfg = sim::makeHwSetting(sim::HwSetting::EWS_CMS, 16);
    sim::Counters load_counters;
    const sim::DecodedWeights weights = sim::decodeCompressedLayer(
        cfg, layer, book, load_counters);
    std::cout << "weight loader: " << load_counters.crf_reads
              << " CRF reads, " << load_counters.l2_read_bytes
              << " compressed bytes from L2 (dense would be "
              << kernel_shape.numel() << ")\n";

    Tensor ifmap(Shape({8, 10, 10}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    const sim::SystolicArray array(cfg);
    const sim::LayerRun run = array.runConv(ifmap, weights, 1, 1);

    // Software reference on the pruned kernel.
    Tensor ifmap4 = ifmap.reshaped(Shape({1, 8, 10, 10}));
    ConvGeom g{8, 10, 10, 3, 3, 1, 1};
    Tensor cols = im2col(ifmap4, 0, g);
    Tensor wmat = pruned.reshaped(Shape({32, 8 * 9}));
    Tensor ref = matmul(wmat, cols).reshaped(run.ofmap.shape());

    std::cout << "array vs reference max |diff|: "
              << maxAbsDiff(run.ofmap, ref) << "\n";
    std::cout << "chosen extensions A/B/D: " << run.ext.a << "/"
              << run.ext.b << "/" << run.ext.d << "\n";
    std::cout << "cycles " << run.counters.total_cycles << " (compute "
              << run.counters.compute_cycles << ", stalls "
              << run.counters.stall_cycles << ")\n";
    std::cout << "useful MACs " << run.counters.macs << ", gated "
              << run.counters.gated_macs
              << " (sparse tile runs Q/d = 4/16 of the multipliers)\n";
    return 0;
}
