/**
 * @file
 * Quickstart: compress one convolution kernel with MVQ — N:M prune,
 * masked k-means, int8 codebook — then inspect the storage layout,
 * compression ratio (Eq. 7) and reconstruction error. Mirrors the
 * README's first code block.
 */

#include <iostream>

#include "core/pipeline.hpp"
#include "tensor/ops.hpp"

int
main()
{
    using namespace mvq;

    // A random [K, C, R, S] kernel standing in for a trained layer.
    Rng rng(1);
    Tensor kernel(Shape({64, 32, 3, 3}));
    kernel.fillNormal(rng, 0.0f, 0.05f);

    // MVQ settings: k codewords of length d, 4:16 pruning, int8 book.
    core::MvqLayerConfig cfg;
    cfg.k = 256;
    cfg.d = 16;
    cfg.pattern = core::NmPattern{4, 16};
    cfg.codebook_bits = 8;

    // Step 1: group into subvectors and prune.
    Tensor grouped = core::groupWeights(kernel, cfg.d, cfg.grouping);
    core::Mask mask = core::nmMask(grouped, cfg.pattern);
    core::applyMask(grouped, mask);
    std::cout << "grouped " << grouped.shape().str() << ", sparsity "
              << core::maskSparsity(mask) * 100 << "%\n";

    // Step 2: masked k-means.
    core::KmeansConfig km;
    km.k = cfg.k;
    core::KmeansResult clusters = core::maskedKmeans(grouped, mask, km);
    std::cout << "masked k-means: " << clusters.iterations
              << " iterations, SSE " << clusters.sse << "\n";

    // Step 3: int8 codebook.
    core::Codebook book;
    book.codewords = clusters.codebook;
    core::quantizeCodebook(book, cfg.codebook_bits);

    // Pack into the storage container and account every bit.
    core::CompressedLayer layer = core::makeCompressedLayer(
        "conv", kernel.shape(), cfg, mask, clusters, 0);
    core::CompressedModel model;
    model.layers.push_back(layer);
    model.codebooks.push_back(book);

    const core::StorageCost cost = model.storage();
    std::cout << "assignments " << cost.assignment_bits << " b, masks "
              << cost.mask_bits << " b, codebook "
              << cost.codebook_bits << " b\n"
              << "bits/weight " << cost.bitsPerWeight()
              << ", compression ratio " << model.compressionRatio()
              << "x (Eq. 7)\n";

    // Reconstruct and measure the error against the pruned kernel.
    Tensor pruned = core::ungroupWeights(grouped, kernel.shape(), cfg.d,
                                         cfg.grouping);
    Tensor recon = model.reconstructLayer(0);
    std::cout << "reconstruction SSE vs pruned kernel: "
              << sse(pruned, recon) << "\n";
    return 0;
}
