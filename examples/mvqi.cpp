/**
 * @file
 * `mvqi` — conversion / inspection CLI for compressed-model artifacts.
 *
 *   mvqi info <file>                     describe an artifact (either
 *                                        format; layer + codebook table)
 *   mvqi convert <in> <out> [options]    re-encode between the bit-packed
 *                                        stream and the MVQI image
 *   mvqi verify <file>                   load + fully validate every
 *                                        layer's packed operands
 *
 * convert options:
 *   --to stream|mvqi          target format (default: by <out> extension,
 *                             ".mvqi" => mvqi, anything else => stream)
 *   --groups N                conv groups baked into every MVQI layer
 *   --layer-groups name=N     per-layer override (repeatable)
 *
 * Exit status: 0 on success, 1 on usage errors, and FatalError aborts
 * (corrupt input) surface the loader's message on stderr.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hpp"
#include "core/io/mmap_artifact.hpp"
#include "core/io/model_artifact.hpp"

namespace {

using namespace mvq;
using namespace mvq::core::io;

int
usage()
{
    std::cerr << "usage:\n"
                 "  mvqi info <file>\n"
                 "  mvqi convert <in> <out> [--to stream|mvqi] "
                 "[--groups N] [--layer-groups name=N]...\n"
                 "  mvqi verify <file>\n";
    return 1;
}

void
describeLayer(const ModelArtifact &art, std::int64_t i)
{
    const core::CompressedLayer &cl =
        art.model().layers[static_cast<std::size_t>(i)];
    std::cout << "  layer " << i << ": '" << cl.name << "' "
              << cl.weight_shape.str() << "  k=" << cl.cfg.k
              << " d=" << cl.cfg.d << " " << cl.cfg.pattern.n << ":"
              << cl.cfg.pattern.m << " ("
              << core::groupingName(cl.cfg.grouping) << ", codebook "
              << cl.codebook_id << ", ng=" << cl.ng() << ")";
    if (const std::int64_t baked = art.bakedGroups(i); baked != 0)
        std::cout << "  [pre-packed, groups=" << baked << "]";
    std::cout << "\n";
}

int
cmdInfo(const std::string &path)
{
    const auto art = openArtifact(path);
    std::cout << path << ": " << artifactFormatName(art->format())
              << " artifact, " << art->sizeBytes() << " bytes, "
              << art->layerCount() << " layers\n";
    const core::CompressedModel &m = art->model();
    std::cout << "  storage: " << m.storage().totalBits() / 8
              << " B payload, " << m.compressionRatio()
              << "x vs fp32, dense_reconstruct="
              << (m.dense_reconstruct ? "yes" : "no") << "\n";
    for (std::size_t b = 0; b < m.codebooks.size(); ++b) {
        const core::Codebook &cb = m.codebooks[b];
        std::cout << "  codebook " << b << ": k=" << cb.k() << " d="
                  << cb.d() << " qbits=" << cb.qbits << " scale="
                  << cb.scale << "\n";
    }
    for (std::int64_t i = 0; i < art->layerCount(); ++i)
        describeLayer(*art, i);
    if (const auto *mm = dynamic_cast<const MmapArtifact *>(art.get()))
        std::cout << "  backing: "
                  << (mm->mapped() ? "mmap" : "aligned heap copy")
                  << ", MVQI v" << mm->view().header().version << "\n";
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string in = argv[2];
    const std::string out = argv[3];
    bool to_set = false;
    ArtifactFormat to = ArtifactFormat::Stream;
    MvqiWriteOptions opts;
    for (int a = 4; a < argc; ++a) {
        const std::string arg = argv[a];
        const auto next = [&]() -> std::string {
            fatalIf(a + 1 >= argc, "missing value after ", arg);
            return argv[++a];
        };
        if (arg == "--to") {
            const std::string v = next();
            fatalIf(v != "stream" && v != "mvqi",
                    "--to expects 'stream' or 'mvqi', got ", v);
            to = v == "mvqi" ? ArtifactFormat::Mvqi
                             : ArtifactFormat::Stream;
            to_set = true;
        } else if (arg == "--groups") {
            opts.default_groups = std::atoll(next().c_str());
        } else if (arg == "--layer-groups") {
            const std::string v = next();
            const auto eq = v.find('=');
            fatalIf(eq == std::string::npos,
                    "--layer-groups expects name=N, got ", v);
            opts.layer_groups[v.substr(0, eq)] =
                std::atoll(v.c_str() + eq + 1);
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return usage();
        }
    }
    if (!to_set && out.size() >= 5
        && out.compare(out.size() - 5, 5, ".mvqi") == 0)
        to = ArtifactFormat::Mvqi;

    const auto art = openArtifact(in);
    saveArtifact(art->model(), out, to, opts);
    std::cout << in << " (" << artifactFormatName(art->format()) << ", "
              << art->sizeBytes() << " B) -> " << out << " ("
              << artifactFormatName(to) << ", "
              << openArtifact(out)->sizeBytes() << " B)\n";
    return 0;
}

int
cmdVerify(const std::string &path)
{
    const auto art = openArtifact(path);
    std::int64_t nnz = 0;
    for (std::int64_t i = 0; i < art->layerCount(); ++i) {
        // packedOperands runs the full O(nnz) semantic validation on the
        // MVQI path (validateGroupedOperand over the borrowed views).
        const SharedOperands ops = art->packedOperands(i);
        for (const GroupedSparseMatrix &g : *ops)
            nnz += g.rows.nnz();
    }
    std::cout << path << ": OK ("
              << artifactFormatName(art->format()) << ", "
              << art->layerCount() << " layers, " << nnz
              << " packed nonzeros validated)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "info")
            return cmdInfo(argv[2]);
        if (cmd == "convert")
            return cmdConvert(argc, argv);
        if (cmd == "verify")
            return cmdVerify(argv[2]);
    } catch (const mvq::FatalError &e) {
        std::cerr << "mvqi: " << e.what() << "\n";
        return 2;
    }
    return usage();
}
