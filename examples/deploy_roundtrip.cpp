/**
 * @file
 * Deployment example: compress a trained classifier, write it through the
 * unified core::io::ModelArtifact API — once as the bit-packed stream the
 * accelerator's weight loader consumes, once as the mmap-able MVQI image
 * serving processes share — reload both, and validate the reloaded model
 * in software (accuracy), through the functional systolic array
 * (bit-near-exact ofmap), and on the sparse CPU path, where the MVQI
 * artifact's borrowed (zero-copy) operands must be bit-identical to the
 * stream artifact's freshly packed ones.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/io/model_artifact.hpp"
#include "core/pipeline.hpp"
#include "models/mini_models.hpp"
#include "nn/compressed_conv2d.hpp"
#include "nn/trainer.hpp"
#include "sim/systolic_array.hpp"
#include "tensor/ops.hpp"

int
main()
{
    using namespace mvq;

    // Train and compress.
    nn::ClassificationConfig dc;
    dc.classes = 10;
    dc.size = 12;
    dc.train_count = 320;
    dc.test_count = 160;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = dc.classes;
    mc.width = 16;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::trainClassifier(*net, data, tc);

    core::PipelineConfig cfg;
    cfg.layer.k = 64;
    cfg.layer.d = 16;
    cfg.layer.pattern = core::NmPattern{4, 16};
    cfg.sparse.train.epochs = 1;
    cfg.finetune.epochs = 1;
    core::PipelineResult res =
        core::mvqCompressClassifier(*net, data, cfg);

    // Serialize -> file -> reload through the artifact API, in both
    // formats. openArtifact sniffs the magic, so the consumer code below
    // is format-agnostic.
    const std::string stream_path = "/tmp/mvq_deploy_demo.mvq";
    const std::string image_path = "/tmp/mvq_deploy_demo.mvqi";
    core::io::saveArtifact(res.compressed, stream_path,
                           core::io::ArtifactFormat::Stream);
    core::io::saveArtifact(res.compressed, image_path,
                           core::io::ArtifactFormat::Mvqi);
    const auto stream_art = core::io::openArtifact(stream_path);
    const auto image_art = core::io::openArtifact(image_path);
    core::CompressedModel loaded = stream_art->model();
    std::cout << "stream file: " << stream_art->sizeBytes()
              << " bytes for " << res.compressed.storage().weight_count
              << " weights (" << res.compression_ratio
              << "x vs fp32; Eq. 7 payload "
              << res.compressed.storage().totalBits() / 8
              << " B); mvqi image: " << image_art->sizeBytes()
              << " bytes, pre-packed for zero-copy load\n";

    // Software check: the reloaded model reproduces the accuracy.
    loaded.applyTo(*net);
    std::cout << "accuracy after reload: "
              << nn::evalClassifier(*net, data, data.testSet())
              << " (pipeline reported " << res.acc_final << ")\n";

    // Hardware check: run the first compressed layer through the array,
    // with the sim's loader consuming the artifact directly.
    const auto acfg = sim::makeHwSetting(sim::HwSetting::EWS_CMS, 16);
    sim::Counters counters;
    const sim::DecodedWeights dec =
        sim::decodeCompressedLayer(acfg, *stream_art, 0, counters);

    const Shape shape = stream_art->layerShape(0);
    Rng rng(77);
    Tensor ifmap(Shape({shape.dim(1), 8, 8}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    const sim::LayerRun run =
        sim::SystolicArray(acfg).runConv(ifmap, dec, 1, 1);

    // Reference from the in-memory (pre-serialization) reconstruction.
    Tensor ref_w = res.compressed.reconstructLayer(0);
    Tensor ifmap4 = ifmap.reshaped(Shape({1, shape.dim(1), 8, 8}));
    ConvGeom g{shape.dim(1), 8, 8, shape.dim(2), shape.dim(3), 1, 1};
    Tensor cols = im2col(ifmap4, 0, g);
    Tensor wmat = ref_w.reshaped(Shape({shape.dim(0),
                                        ref_w.numel() / shape.dim(0)}));
    Tensor ref = matmul(wmat, cols).reshaped(run.ofmap.shape());
    std::cout << "array-vs-software max |diff| through the file round "
                 "trip: " << maxAbsDiff(run.ofmap, ref) << "\n";

    // Sparse CPU inference, once per backend. The stream artifact packs
    // its operand at packedOperands time; the MVQI artifact borrows its
    // operand pointers straight from the mapped image. Same input, same
    // ISA => the outputs must agree to the bit.
    const nn::CompressedConv2d stream_conv(
        stream_art->layerName(0), stream_art->layerShape(0),
        stream_art->packedOperands(0), 1, 1);
    const nn::CompressedConv2d mapped_conv(
        image_art->layerName(0), image_art->layerShape(0),
        image_art->packedOperands(0), 1, 1);
    const Tensor sparse_out = stream_conv.forward(ifmap4);
    const Tensor mapped_out = mapped_conv.forward(ifmap4);
    const bool identical =
        sparse_out.shape() == mapped_out.shape()
        && std::memcmp(sparse_out.data(), mapped_out.data(),
                       static_cast<std::size_t>(sparse_out.numel())
                           * sizeof(float)) == 0;
    std::cout << "sparse-path-vs-array max |diff|: "
              << maxAbsDiff(sparse_out.reshaped(run.ofmap.shape()),
                            run.ofmap)
              << " (operand density " << stream_conv.density() << ", "
              << stream_conv.flopsFor(ifmap4) << " sparse MACs vs "
              << stream_conv.flopsFor(ifmap4)
                     * loaded.layers[0].cfg.pattern.m
                     / loaded.layers[0].cfg.pattern.n
              << " dense)\n";
    std::cout << "mmap-vs-stream forward memcmp: "
              << (identical ? "identical" : "MISMATCH") << "\n";

    std::remove(stream_path.c_str());
    std::remove(image_path.c_str());
    return identical ? 0 : 1;
}
