/**
 * @file
 * Deployment example: compress a trained classifier, serialize it to
 * the binary format the accelerator's weight loader consumes, reload
 * it, and validate the reloaded model both in software (accuracy) and
 * through the functional systolic array (bit-near-exact ofmap).
 */

#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/serialize.hpp"
#include "models/mini_models.hpp"
#include "nn/compressed_conv2d.hpp"
#include "nn/trainer.hpp"
#include "sim/systolic_array.hpp"
#include "tensor/ops.hpp"

int
main()
{
    using namespace mvq;

    // Train and compress.
    nn::ClassificationConfig dc;
    dc.classes = 10;
    dc.size = 12;
    dc.train_count = 320;
    dc.test_count = 160;
    nn::ClassificationDataset data(dc);

    models::MiniConfig mc;
    mc.classes = dc.classes;
    mc.width = 16;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::trainClassifier(*net, data, tc);

    core::PipelineConfig cfg;
    cfg.layer.k = 64;
    cfg.layer.d = 16;
    cfg.layer.pattern = core::NmPattern{4, 16};
    cfg.sparse.train.epochs = 1;
    cfg.finetune.epochs = 1;
    core::PipelineResult res =
        core::mvqCompressClassifier(*net, data, cfg);

    // Serialize -> file -> reload.
    const std::string path = "/tmp/mvq_deploy_demo.mvq";
    core::saveModel(res.compressed, path);
    core::CompressedModel loaded = core::loadModel(path);
    const auto bytes = core::serializeModel(res.compressed);
    std::cout << "model file: " << bytes.size() << " bytes for "
              << res.compressed.storage().weight_count
              << " weights (" << res.compression_ratio
              << "x vs fp32; Eq. 7 payload "
              << res.compressed.storage().totalBits() / 8 << " B)\n";

    // Software check: the reloaded model reproduces the accuracy.
    loaded.applyTo(*net);
    std::cout << "accuracy after reload: "
              << nn::evalClassifier(*net, data, data.testSet())
              << " (pipeline reported " << res.acc_final << ")\n";

    // Hardware check: run the first compressed layer through the array
    // from the *reloaded* container.
    const auto acfg = sim::makeHwSetting(sim::HwSetting::EWS_CMS, 16);
    sim::Counters counters;
    const sim::DecodedWeights dec = sim::decodeCompressedLayer(
        acfg, loaded.layers[0],
        loaded.codebooks[static_cast<std::size_t>(
            loaded.layers[0].codebook_id)],
        counters);

    const auto &shape = loaded.layers[0].weight_shape;
    Rng rng(77);
    Tensor ifmap(Shape({shape.dim(1), 8, 8}));
    ifmap.fillNormal(rng, 0.0f, 1.0f);
    const sim::LayerRun run =
        sim::SystolicArray(acfg).runConv(ifmap, dec, 1, 1);

    // Reference from the in-memory (pre-serialization) reconstruction.
    Tensor ref_w = res.compressed.reconstructLayer(0);
    Tensor ifmap4 = ifmap.reshaped(Shape({1, shape.dim(1), 8, 8}));
    ConvGeom g{shape.dim(1), 8, 8, shape.dim(2), shape.dim(3), 1, 1};
    Tensor cols = im2col(ifmap4, 0, g);
    Tensor wmat = ref_w.reshaped(Shape({shape.dim(0),
                                        ref_w.numel() / shape.dim(0)}));
    Tensor ref = matmul(wmat, cols).reshaped(run.ofmap.shape());
    std::cout << "array-vs-software max |diff| through the file round "
                 "trip: " << maxAbsDiff(run.ofmap, ref) << "\n";

    // Sparse CPU inference: consume the reloaded compressed container
    // directly — mask codes decode once into the compressed-row gemm
    // operand, and the forward pass skips every pruned position instead
    // of densifying the kernel first.
    const nn::CompressedConv2d sparse_conv(
        loaded.layers[0],
        loaded.codebooks[static_cast<std::size_t>(
            loaded.layers[0].codebook_id)],
        1, 1);
    const Tensor sparse_out = sparse_conv.forward(ifmap4);
    std::cout << "sparse-path-vs-array max |diff|: "
              << maxAbsDiff(sparse_out.reshaped(run.ofmap.shape()),
                            run.ofmap)
              << " (operand density "
              << sparse_conv.density() << ", "
              << sparse_conv.flopsFor(ifmap4) << " sparse MACs vs "
              << sparse_conv.flopsFor(ifmap4)
                     * loaded.layers[0].cfg.pattern.m
                     / loaded.layers[0].cfg.pattern.n
              << " dense)\n";

    std::remove(path.c_str());
    return 0;
}
