/**
 * @file
 * Accelerator-simulation example: evaluate the six hardware settings of
 * the paper on full-size ResNet-18 layer tables with the analytic
 * performance and energy models — cycles, stalls, traffic, power split
 * and TOPS/W — the same path the hardware benches use.
 */

#include <iostream>

#include "common/table.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "perf/network_perf.hpp"

int
main()
{
    using namespace mvq;
    using sim::HwSetting;

    const models::ModelSpec spec = models::resnet18Spec();
    std::cout << "workload: " << spec.name << ", "
              << spec.totalMacs() / 1000000 << "M MACs, "
              << spec.totalWeights() / 1000000 << "M weights\n";

    perf::WorkloadStats stats;        // ~50% activation zeros (ReLU)
    const energy::EnergyCosts costs;  // paper Table 8

    TextTable t({"Setting", "Cycles (M)", "Stall %", "DRAM MB",
                 "Power mW", "TOPS/W", "Array mm2"});
    for (HwSetting s : {HwSetting::WS_Base, HwSetting::WS_CMS,
                        HwSetting::EWS_Base, HwSetting::EWS_C,
                        HwSetting::EWS_CM, HwSetting::EWS_CMS}) {
        const auto cfg = sim::makeHwSetting(s, 64);
        const auto np = perf::analyzeNetwork(cfg, spec, stats);
        const auto power = energy::powerBreakdown(np, cfg, costs);
        const auto area = energy::accelArea(cfg);
        t.addRow({sim::hwSettingName(s),
                  TextTable::num(static_cast<double>(
                                     np.totals.total_cycles) / 1e6, 1),
                  TextTable::num(100.0 * static_cast<double>(
                                     np.totals.stall_cycles)
                                     / static_cast<double>(
                                         np.totals.total_cycles), 1),
                  TextTable::num(static_cast<double>(
                                     np.totals.dram_read_bytes
                                     + np.totals.dram_write_bytes)
                                     / 1048576.0, 2),
                  TextTable::num(power.total_mw(), 1),
                  TextTable::num(energy::topsPerWatt(np, cfg, costs), 2),
                  TextTable::num(area.accel_mm2(), 2)});
    }
    t.print();

    std::cout << "\nreading the table: the VQ settings shrink the DRAM "
                 "weight stream ~6.4x, which removes the weight-load "
                 "stalls; the sparse tile (CMS) then cuts multiplier "
                 "count and energy — the paper's 2.3x efficiency "
                 "headline at 55% less array area.\n";
    return 0;
}
