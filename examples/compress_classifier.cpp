/**
 * @file
 * End-to-end compression example: train a mini ResNet-18 on the
 * synthetic classification task, run the full four-step MVQ pipeline
 * (Fig. 2 of the paper), and report accuracy at every stage alongside
 * the compression ratio and FLOPs saving.
 */

#include <cstdio>
#include <iostream>

#include "core/io/model_artifact.hpp"
#include "core/pipeline.hpp"
#include "models/mini_models.hpp"
#include "nn/trainer.hpp"

int
main()
{
    using namespace mvq;

    // Deterministic synthetic task (stands in for ImageNet).
    nn::ClassificationConfig data_cfg;
    data_cfg.classes = 10;
    data_cfg.size = 12;
    data_cfg.train_count = 640;
    data_cfg.test_count = 160;
    nn::ClassificationDataset data(data_cfg);

    // Train the dense baseline.
    models::MiniConfig mc;
    mc.classes = data_cfg.classes;
    mc.width = 16;
    auto net = models::miniResNet18(mc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.verbose = true;
    nn::trainClassifier(*net, data, tc);

    // The full MVQ pipeline: SR-STE pruning -> masked k-means -> int8
    // codebook -> masked-gradient fine-tuning.
    core::PipelineConfig cfg;
    cfg.layer.k = 64;
    cfg.layer.d = 16;
    cfg.layer.pattern = core::NmPattern{4, 16};
    cfg.sparse.train.epochs = 2;
    cfg.finetune.epochs = 2;

    const core::PipelineResult res =
        core::mvqCompressClassifier(*net, data, cfg);

    std::cout << "\n--- MVQ pipeline summary ---\n"
              << "dense accuracy:      " << res.acc_dense << "\n"
              << "after 4:16 pruning:  " << res.acc_sparse << "\n"
              << "after clustering:    " << res.acc_clustered << "\n"
              << "after fine-tuning:   " << res.acc_final << "\n"
              << "compression ratio:   " << res.compression_ratio
              << "x\n"
              << "FLOPs: " << res.flops_dense << " -> "
              << res.flops_compressed << " ("
              << 100.0 * (1.0 - static_cast<double>(res.flops_compressed)
                          / static_cast<double>(res.flops_dense))
              << "% saved)\n"
              << "clustering SSE (total/masked): " << res.total_sse
              << " / " << res.masked_sse << "\n"
              << "compressed layers: " << res.compressed.layers.size()
              << ", codebooks: " << res.compressed.codebooks.size()
              << "\n";

    // Ship the result as a deployment artifact in both formats: the
    // bit-packed stream (Eq. 7-sized, for the accelerator's loader) and
    // the MVQI image (pre-packed operands, mmap'ed zero-copy at serve
    // time). See `mvqi info` for inspecting either.
    const std::string stream_path = "/tmp/mvq_classifier.mvq";
    const std::string image_path = "/tmp/mvq_classifier.mvqi";
    core::io::saveArtifact(res.compressed, stream_path,
                           core::io::ArtifactFormat::Stream);
    core::io::saveArtifact(res.compressed, image_path,
                           core::io::ArtifactFormat::Mvqi);
    const auto art = core::io::openArtifact(image_path);
    std::cout << "artifacts: " << stream_path << " ("
              << core::io::openArtifact(stream_path)->sizeBytes()
              << " B stream), " << image_path << " ("
              << art->sizeBytes() << " B "
              << core::io::artifactFormatName(art->format())
              << " image, " << art->layerCount() << " layers)\n";
    std::remove(stream_path.c_str());
    std::remove(image_path.c_str());
    return 0;
}
