/**
 * @file
 * Event counters shared by the functional simulator and the analytic
 * performance model. Each field counts one class of hardware event; the
 * energy model (src/energy) multiplies them by the per-access costs of
 * the paper's Table 8.
 */

#ifndef MVQ_SIM_COUNTERS_HPP
#define MVQ_SIM_COUNTERS_HPP

#include <cstdint>

namespace mvq::sim {

/** Hardware event counts for one layer or one whole network. */
struct Counters
{
    // Timing.
    std::int64_t compute_cycles = 0; //!< array busy cycles
    std::int64_t stall_cycles = 0;   //!< weight-load limited cycles
    std::int64_t total_cycles = 0;   //!< max(compute, load) summed

    // Work.
    std::int64_t macs = 0;        //!< useful multiply-accumulates
    std::int64_t gated_macs = 0;  //!< MACs suppressed by zero gating

    // DRAM traffic in bytes.
    std::int64_t dram_read_bytes = 0;
    std::int64_t dram_write_bytes = 0;

    // L2 SRAM accesses in bytes.
    std::int64_t l2_read_bytes = 0;
    std::int64_t l2_write_bytes = 0;

    // L1 (global buffer) accesses in bytes.
    std::int64_t l1_read_bytes = 0;
    std::int64_t l1_write_bytes = 0;

    // Register file accesses in words.
    std::int64_t wrf_reads = 0;
    std::int64_t wrf_writes = 0;
    std::int64_t arf_reads = 0;
    std::int64_t arf_writes = 0;
    std::int64_t prf_reads = 0;
    std::int64_t prf_writes = 0;
    std::int64_t crf_reads = 0;
    std::int64_t crf_writes = 0;
    std::int64_t mrf_reads = 0;
    std::int64_t mrf_writes = 0;

    Counters &
    operator+=(const Counters &o)
    {
        compute_cycles += o.compute_cycles;
        stall_cycles += o.stall_cycles;
        total_cycles += o.total_cycles;
        macs += o.macs;
        gated_macs += o.gated_macs;
        dram_read_bytes += o.dram_read_bytes;
        dram_write_bytes += o.dram_write_bytes;
        l2_read_bytes += o.l2_read_bytes;
        l2_write_bytes += o.l2_write_bytes;
        l1_read_bytes += o.l1_read_bytes;
        l1_write_bytes += o.l1_write_bytes;
        wrf_reads += o.wrf_reads;
        wrf_writes += o.wrf_writes;
        arf_reads += o.arf_reads;
        arf_writes += o.arf_writes;
        prf_reads += o.prf_reads;
        prf_writes += o.prf_writes;
        crf_reads += o.crf_reads;
        crf_writes += o.crf_writes;
        mrf_reads += o.mrf_reads;
        mrf_writes += o.mrf_writes;
        return *this;
    }
};

} // namespace mvq::sim

#endif // MVQ_SIM_COUNTERS_HPP
