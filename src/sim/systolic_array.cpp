#include "sim/systolic_array.hpp"

#include <limits>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "sim/lzc.hpp"

namespace mvq::sim {

Extensions
chooseExtensions(const AccelConfig &cfg, std::int64_t out_c,
                 std::int64_t in_c, std::int64_t rr)
{
    if (cfg.dataflow == Dataflow::WS)
        return Extensions{1, 1, 1};

    const std::int64_t max_a =
        std::max<std::int64_t>(1, ceilDiv(out_c, cfg.array_l));
    const std::int64_t max_b =
        std::max<std::int64_t>(1, ceilDiv(in_c, cfg.array_h));

    Extensions best;
    double best_score = std::numeric_limits<double>::max();
    std::int64_t best_volume = 0;
    for (std::int64_t d = 1; d <= std::min(rr, cfg.wrf_depth); ++d) {
        if (rr % d != 0)
            continue;
        for (std::int64_t a = 1;
             a <= std::min<std::int64_t>(max_a, cfg.wrf_depth); ++a) {
            for (std::int64_t b = 1;
                 b <= std::min<std::int64_t>(max_b, cfg.wrf_depth); ++b) {
                if (a * b * d > cfg.wrf_depth)
                    continue;
                // Per-cycle L1 pressure: activations H/(A*D), psums
                // L/(B*D) (paper Section 5.1).
                const double score =
                    static_cast<double>(cfg.array_h)
                        / static_cast<double>(a * d)
                    + static_cast<double>(cfg.array_l)
                        / static_cast<double>(b * d);
                const std::int64_t volume = a * b * d;
                if (score < best_score
                    || (score == best_score && volume > best_volume)) {
                    best_score = score;
                    best_volume = volume;
                    best = Extensions{a, b, d};
                }
            }
        }
    }
    return best;
}

SystolicArray::SystolicArray(AccelConfig cfg) : cfg_(std::move(cfg))
{
    fatalIf(cfg_.array_h < 1 || cfg_.array_l < 1, "bad array size");
    if (cfg_.tile == TileStyle::Sparse) {
        fatalIf(cfg_.array_l % cfg_.vq_d != 0,
                "sparse tile needs d | L: d = ", cfg_.vq_d, ", L = ",
                cfg_.array_l);
    }
}

LayerRun
SystolicArray::runConv(const Tensor &ifmap, const DecodedWeights &weights,
                       std::int64_t stride, std::int64_t pad) const
{
    fatalIf(ifmap.rank() != 3, "runConv expects a [C, H, W] ifmap");
    const Tensor &w4 = weights.weights;
    fatalIf(w4.rank() != 4, "runConv expects a [K, C, R, S] kernel");
    const std::int64_t k_total = w4.dim(0);
    const std::int64_t c_total = w4.dim(1);
    const std::int64_t r = w4.dim(2);
    fatalIf(w4.dim(3) != r, "square kernels only");
    fatalIf(ifmap.dim(0) != c_total, "channel mismatch");

    const std::int64_t in_h = ifmap.dim(1);
    const std::int64_t in_w = ifmap.dim(2);
    const std::int64_t e_h = (in_h + 2 * pad - r) / stride + 1;
    const std::int64_t e_w = (in_w + 2 * pad - r) / stride + 1;
    fatalIf(e_h <= 0 || e_w <= 0, "empty output feature map");
    const std::int64_t rr = r * r;
    const std::int64_t ep = e_h * e_w;

    const std::int64_t hh = cfg_.array_h;
    const std::int64_t ll = cfg_.array_l;
    const bool sparse = cfg_.tile == TileStyle::Sparse;
    const std::int64_t d = sparse ? cfg_.vq_d : 1;

    fatalIf(sparse && weights.d != cfg_.vq_d,
            "sparse tile expects weights grouped with d = ", cfg_.vq_d,
            ", got ", weights.d);

    LayerRun run;
    run.ext = chooseExtensions(cfg_, k_total, c_total, rr);
    const std::int64_t ca = run.ext.a;
    const std::int64_t cb = run.ext.b;
    const std::int64_t cd = run.ext.d;

    run.ofmap = Tensor(Shape({k_total, e_h, e_w}));
    Counters &cnt = run.counters;

    // Precompute the LZC position encodings of every grouped subvector;
    // the hardware does this once per WRF load through the cascade.
    std::vector<std::vector<int>> positions;
    if (sparse) {
        const std::int64_t ng =
            static_cast<std::int64_t>(weights.grouped_mask.size()) / d;
        positions.resize(static_cast<std::size_t>(ng));
        const int q = static_cast<int>(cfg_.sparseQ());
        for (std::int64_t j = 0; j < ng; ++j) {
            std::vector<std::uint8_t> bits(
                weights.grouped_mask.begin() + j * d,
                weights.grouped_mask.begin() + (j + 1) * d);
            positions[static_cast<std::size_t>(j)] = lzcEncode(bits, q);
        }
    }

    // Grouped-row index of subvector (ko block, c, kernel coord) under
    // output-channel grouping.
    auto grouped_row = [&](std::int64_t ko, std::int64_t c,
                           std::int64_t kc) {
        return ((ko / d) * c_total + c) * rr + kc;
    };

    const std::int64_t n_i = ceilDiv(k_total, ca * ll);
    const std::int64_t n_j = ceilDiv(c_total, cb * hh);
    const std::int64_t n_k = ceilDiv(rr, cd);

    const std::int64_t psum_bytes = cfg_.psum_bits / 8;

    std::int64_t pending_load_cycles = 0; // block being prefetched

    for (std::int64_t i = 0; i < n_i; ++i) {
        for (std::int64_t j = 0; j < n_j; ++j) {
            for (std::int64_t kk = 0; kk < n_k; ++kk) {
                // ---- Weight loading for this block ------------------
                std::int64_t block_weights = 0;
                {
                    const std::int64_t kos = std::min(ca * ll,
                        k_total - i * ca * ll);
                    const std::int64_t cs = std::min(cb * hh,
                        c_total - j * cb * hh);
                    const std::int64_t kcs = std::min(cd, rr - kk * cd);
                    block_weights = kos * cs * kcs;
                }
                const std::int64_t block_bits =
                    streamBits(cfg_, block_weights);
                const std::int64_t block_load =
                    ceilDiv(block_bits, cfg_.dma_bits);
                cnt.l2_read_bytes += ceilDiv(block_bits, 8);
                if (cfg_.weight_stream != WeightStream::Dense8b)
                    cnt.crf_reads += ceilDiv(block_weights, cfg_.vq_d);
                if (sparse) {
                    cnt.wrf_writes += block_weights * cfg_.sparseQ() / d;
                    cnt.mrf_writes += block_weights * cfg_.sparseQ() / d;
                } else {
                    cnt.wrf_writes += block_weights;
                }

                // ---- Compute (p, q, r, s loop of Fig. 7) --------------
                // The block occupies the array for E^2*A*B*D cycles, or
                // longer when its L1 traffic exceeds the banked L1
                // bandwidth (the WS bottleneck).
                const std::int64_t arith_cycles = ep * ca * cb * cd;
                const std::int64_t l1_block_bytes = ep * cb * hh
                    + ep * ca * ll * (cfg_.psum_bits / 8)
                    * ((j == 0 && kk == 0) ? 1 : 2);
                const std::int64_t block_compute = std::max(
                    arith_cycles,
                    ceilDiv(l1_block_bytes, cfg_.l1_bw_bytes));
                cnt.compute_cycles += block_compute;
                // Double-buffered WRF: this block's load overlapped the
                // previous block's compute.
                const bool first_block = i == 0 && j == 0 && kk == 0;
                if (first_block) {
                    cnt.total_cycles += block_load + block_compute;
                    cnt.stall_cycles += block_load;
                    pending_load_cycles = 0;
                } else {
                    const std::int64_t slot =
                        std::max(block_compute, pending_load_cycles);
                    cnt.stall_cycles +=
                        std::max<std::int64_t>(0, pending_load_cycles
                                                      - block_compute);
                    cnt.total_cycles += slot;
                }
                pending_load_cycles = block_load;

                // L1 activation fetches for this block: the ARF reuse
                // reduces them to E^2 * B * H values (1/(A*D) rule).
                {
                    const std::int64_t fetches = ep * cb * hh;
                    cnt.l1_read_bytes += fetches; // int8 activations
                    cnt.arf_writes += fetches;
                }
                // L1 psum traffic: A*L psums per ofmap position, written
                // per block, re-read on every block but the first (j,kk).
                {
                    const std::int64_t psums = ep * ca * ll;
                    cnt.l1_write_bytes += psums * psum_bytes;
                    if (!(j == 0 && kk == 0))
                        cnt.l1_read_bytes += psums * psum_bytes;
                }

                for (std::int64_t p = 0; p < ep; ++p) {
                    const std::int64_t ey = p / e_w;
                    const std::int64_t ex = p % e_w;
                    for (std::int64_t q = 0; q < cd; ++q) {
                        const std::int64_t kc = kk * cd + q;
                        if (kc >= rr) {
                            // Idle tail cycles of a ragged kernel plane.
                            continue;
                        }
                        const std::int64_t ry = kc / r;
                        const std::int64_t rx = kc % r;
                        const std::int64_t iy = ey * stride - pad + ry;
                        const std::int64_t ix = ex * stride - pad + rx;
                        const bool in_bounds = iy >= 0 && iy < in_h
                            && ix >= 0 && ix < in_w;

                        for (std::int64_t rb = 0; rb < cb; ++rb) {
                            for (std::int64_t sb = 0; sb < ca; ++sb) {
                                // ---- One array cycle ----------------
                                cnt.arf_reads += hh;
                                cnt.prf_reads += ll;
                                cnt.prf_writes += ll;

                                for (std::int64_t h = 0; h < hh; ++h) {
                                    const std::int64_t c =
                                        (j * cb + rb) * hh + h;
                                    if (c >= c_total)
                                        continue;
                                    const float act = in_bounds
                                        ? ifmap.data()[(c * in_h + iy)
                                                       * in_w + ix]
                                        : 0.0f;

                                    if (!sparse) {
                                        for (std::int64_t l = 0; l < ll;
                                             ++l) {
                                            const std::int64_t ko =
                                                (i * ca + sb) * ll + l;
                                            if (ko >= k_total)
                                                continue;
                                            const float w = w4.at(
                                                ko, c, ry, rx);
                                            cnt.wrf_reads += 1;
                                            if (cfg_.zero_gating
                                                && (w == 0.0f
                                                    || act == 0.0f)) {
                                                ++cnt.gated_macs;
                                            } else {
                                                ++cnt.macs;
                                            }
                                            run.ofmap.data()[
                                                (ko * e_h + ey) * e_w
                                                + ex] += w * act;
                                        }
                                        continue;
                                    }

                                    // Sparse tile: L/d groups of Q PEs,
                                    // products scattered through the MRF
                                    // position encodings.
                                    for (std::int64_t g = 0; g < ll / d;
                                         ++g) {
                                        const std::int64_t ko0 =
                                            (i * ca + sb) * ll + g * d;
                                        if (ko0 >= k_total)
                                            continue;
                                        const auto &pos = positions[
                                            static_cast<std::size_t>(
                                                grouped_row(ko0, c,
                                                            kc))];
                                        for (int t :
                                             pos) {
                                            if (t < 0)
                                                continue;
                                            const std::int64_t ko =
                                                ko0 + t;
                                            const float w = w4.at(
                                                ko, c, ry, rx);
                                            cnt.wrf_reads += 1;
                                            cnt.mrf_reads += 1;
                                            if (cfg_.zero_gating
                                                && (w == 0.0f
                                                    || act == 0.0f)) {
                                                ++cnt.gated_macs;
                                            } else {
                                                ++cnt.macs;
                                            }
                                            run.ofmap.data()[
                                                (ko * e_h + ey) * e_w
                                                + ex] += w * act;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    return run;
}

} // namespace mvq::sim
