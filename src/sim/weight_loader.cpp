#include "sim/weight_loader.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::sim {

DecodedWeights
decodeCompressedLayer(const AccelConfig &cfg,
                      const core::CompressedLayer &layer,
                      const core::Codebook &codebook, Counters &counters)
{
    const std::int64_t d = layer.cfg.d;
    const std::int64_t ng = layer.ng();
    const core::MaskCodec codec(layer.cfg.pattern);

    // The hardware reads one (index, mask-code) tuple per subvector and
    // one CRF word per tuple.
    counters.crf_reads += ng;
    counters.l2_read_bytes += streamBits(cfg, ng * d) / 8;

    // LUT mask decode + AND-gate reconstruction, subvector by subvector.
    core::Mask mask;
    mask.reserve(static_cast<std::size_t>(ng * d));
    Tensor wr(Shape({ng, d}));
    const std::int64_t groups = d / layer.cfg.pattern.m;
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t index =
            layer.assignments[static_cast<std::size_t>(j)];
        std::vector<std::uint32_t> codes(
            layer.mask_codes.begin() + j * groups,
            layer.mask_codes.begin() + (j + 1) * groups);
        const auto bits = codec.decodeSubvector(codes);
        for (std::int64_t t = 0; t < d; ++t) {
            const bool keep = bits[static_cast<std::size_t>(t)] != 0;
            mask.push_back(keep ? 1 : 0);
            wr.at(j, t) = keep ? codebook.codewords.at(index, t) : 0.0f;
        }
    }

    DecodedWeights out;
    out.weights = core::ungroupWeights(wr, layer.weight_shape, d,
                                       layer.cfg.grouping);
    out.grouped_mask = std::move(mask);
    out.d = d;
    return out;
}

DecodedWeights
wrapDenseWeights(const Tensor &weights4, std::int64_t d)
{
    DecodedWeights out;
    out.weights = weights4;
    out.grouped_mask.assign(
        static_cast<std::size_t>(weights4.numel()), 1);
    out.d = d;
    return out;
}

std::int64_t
streamBits(const AccelConfig &cfg, std::int64_t weight_count)
{
    return static_cast<std::int64_t>(
        std::ceil(cfg.loadedBitsPerWeight()
                  * static_cast<double>(weight_count)));
}

std::int64_t
loadCycles(const AccelConfig &cfg, std::int64_t weight_count)
{
    return ceilDiv(streamBits(cfg, weight_count), cfg.dma_bits);
}

} // namespace mvq::sim
