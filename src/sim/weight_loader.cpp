#include "sim/weight_loader.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::sim {

DecodedWeights
decodeCompressedLayer(const AccelConfig &cfg,
                      const core::CompressedLayer &layer,
                      const core::Codebook &codebook, Counters &counters)
{
    const std::int64_t d = layer.cfg.d;
    const std::int64_t ng = layer.ng();
    const core::MaskCodec codec(layer.cfg.pattern);

    // The hardware reads one (index, mask-code) tuple per subvector and
    // one CRF word per tuple.
    counters.crf_reads += ng;
    counters.l2_read_bytes += streamBits(cfg, ng * d) / 8;

    // LUT mask decode + AND-gate reconstruction. One decodeInto pass
    // expands the whole code stream straight into the mask buffer (no
    // per-subvector vectors), and the AND gates run on raw pointers —
    // bit-identical to the per-subvector decode, without the heap churn
    // and bounds-checked indexing the seed paid per element.
    const std::int64_t groups = d / layer.cfg.pattern.m;
    core::Mask mask(static_cast<std::size_t>(ng * d), 0);
    codec.decodeInto(layer.mask_codes.data(), ng * groups, mask.data());
    Tensor wr(Shape({ng, d}));
    float *pw = wr.data();
    const float *cw = codebook.codewords.data();
    const std::uint8_t *pm = mask.data();
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t index =
            layer.assignments[static_cast<std::size_t>(j)];
        const float *crow = cw + index * d;
        float *wrow = pw + j * d;
        const std::uint8_t *mrow = pm + j * d;
        for (std::int64_t t = 0; t < d; ++t)
            wrow[t] = mrow[t] ? crow[t] : 0.0f;
    }

    DecodedWeights out;
    out.weights = core::ungroupWeights(wr, layer.weight_shape, d,
                                       layer.cfg.grouping);
    out.grouped_mask = std::move(mask);
    out.d = d;
    return out;
}

DecodedWeights
decodeCompressedLayer(const AccelConfig &cfg,
                      const core::io::ModelArtifact &artifact,
                      std::int64_t layer_idx, Counters &counters)
{
    fatalIf(layer_idx < 0 || layer_idx >= artifact.layerCount(),
            artifact.path(), ": layer index ", layer_idx,
            " out of range [0, ", artifact.layerCount(), ")");
    const core::CompressedModel &m = artifact.model();
    const core::CompressedLayer &layer =
        m.layers[static_cast<std::size_t>(layer_idx)];
    return decodeCompressedLayer(
        cfg, layer,
        m.codebooks[static_cast<std::size_t>(layer.codebook_id)],
        counters);
}

DecodedWeights
wrapDenseWeights(const Tensor &weights4, std::int64_t d)
{
    DecodedWeights out;
    out.weights = weights4;
    out.grouped_mask.assign(
        static_cast<std::size_t>(weights4.numel()), 1);
    out.d = d;
    return out;
}

std::int64_t
streamBits(const AccelConfig &cfg, std::int64_t weight_count)
{
    return static_cast<std::int64_t>(
        std::ceil(cfg.loadedBitsPerWeight()
                  * static_cast<double>(weight_count)));
}

std::int64_t
loadCycles(const AccelConfig &cfg, std::int64_t weight_count)
{
    return ceilDiv(streamBits(cfg, weight_count), cfg.dma_bits);
}

} // namespace mvq::sim
