#include "sim/lzc.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::sim {

int
lzcFirstSet(std::uint64_t word)
{
    if (word == 0)
        return -1;
    int pos = 0;
    while (!(word & 1ull)) {
        word >>= 1;
        ++pos;
    }
    return pos;
}

std::vector<int>
lzcEncode(const std::vector<std::uint8_t> &mask_bits, int q)
{
    fatalIf(mask_bits.size() > 64, "LZC model supports d <= 64");
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < mask_bits.size(); ++i) {
        if (mask_bits[i])
            word |= (1ull << i);
    }

    std::vector<int> positions(static_cast<std::size_t>(q), -1);
    for (int stage = 0; stage < q; ++stage) {
        const int pos = lzcFirstSet(word);
        positions[static_cast<std::size_t>(stage)] = pos;
        if (pos >= 0)
            word ^= (1ull << pos); // one-hot XOR into the next stage
    }
    return positions;
}

LzcCost
lzcCascadeCost(std::int64_t d, std::int64_t q)
{
    LzcCost cost;
    cost.units = static_cast<int>(q);
    cost.bits_per_unit = log2Ceil(static_cast<std::uint64_t>(d));
    return cost;
}

} // namespace mvq::sim
