/**
 * @file
 * Assignment-aware weight loader (paper Section 5.2). For VQ streams the
 * loader reads (index, mask-code) pairs from L2, expands the mask through
 * the combinatorial LUT, reads the codeword from the codebook register
 * file (CRF), and reconstructs the sparse weight subvector with AND
 * gates. For the dense baseline it streams plain 8-bit weights.
 *
 * The functional decode produces the full reconstructed kernel once; the
 * traffic helpers account for the per-block loading the hardware performs.
 */

#ifndef MVQ_SIM_WEIGHT_LOADER_HPP
#define MVQ_SIM_WEIGHT_LOADER_HPP

#include "core/compressed_layer.hpp"
#include "core/io/model_artifact.hpp"
#include "sim/accel_config.hpp"
#include "sim/counters.hpp"

namespace mvq::sim {

/** Decoded weights plus the grouped keep-mask for the sparse tile. */
struct DecodedWeights
{
    Tensor weights;          //!< [K, C, R, S]
    core::Mask grouped_mask; //!< N_G*d bits under the layer's grouping
    std::int64_t d = 1;      //!< subvector length of the grouping
};

/**
 * Functionally decode a compressed layer exactly as the hardware does:
 * per subvector, LUT-decode the mask codes, CRF-read the codeword, apply
 * the AND gates. Counts CRF reads and L2 assignment-stream traffic into
 * `counters`.
 */
DecodedWeights decodeCompressedLayer(const AccelConfig &cfg,
                                     const core::CompressedLayer &layer,
                                     const core::Codebook &codebook,
                                     Counters &counters);

/**
 * Decode layer `layer_idx` of an opened deployment artifact — the sim's
 * loader consuming a model file (either format) through the unified
 * core::io::ModelArtifact API instead of a hand-held CompressedModel.
 * Fatal on an out-of-range layer index.
 */
DecodedWeights decodeCompressedLayer(const AccelConfig &cfg,
                                     const core::io::ModelArtifact &artifact,
                                     std::int64_t layer_idx,
                                     Counters &counters);

/** Wrap a dense kernel in the DecodedWeights interface (all-ones mask). */
DecodedWeights wrapDenseWeights(const Tensor &weights4,
                                std::int64_t d);

/** Bits on the L2->loader stream for `weight_count` weights. */
std::int64_t streamBits(const AccelConfig &cfg, std::int64_t weight_count);

/** Loader cycles for a block of weights at the DMA datawidth. */
std::int64_t loadCycles(const AccelConfig &cfg, std::int64_t weight_count);

} // namespace mvq::sim

#endif // MVQ_SIM_WEIGHT_LOADER_HPP
