/**
 * @file
 * Accelerator configuration: dataflow, array geometry, weight-stream
 * format and tile style. The six named settings of paper Section 7.1 are
 * provided as factories.
 */

#ifndef MVQ_SIM_ACCEL_CONFIG_HPP
#define MVQ_SIM_ACCEL_CONFIG_HPP

#include <cstdint>
#include <string>

namespace mvq::sim {

/** Loop-nest family (paper Fig. 7). */
enum class Dataflow
{
    WS,  //!< weight stationary, C|K unrolling, A = B = D = 1
    EWS, //!< enhanced WS with layerwise A/B/D extensions
};

/** How weights arrive from L2 (what travels over the 64-bit DMA). */
enum class WeightStream
{
    Dense8b,    //!< plain 8-bit weights (WS/EWS baselines)
    VqIndex,    //!< codeword index only (EWS-C: unmasked VQ, k=1024 d=8)
    VqIndexMask //!< index + combinatorial mask code (MVQ: k=512 d=16)
};

/** Systolic-array tile flavour. */
enum class TileStyle
{
    Dense,  //!< H x d multipliers per tile
    Sparse, //!< H x Q multipliers + MRF/DEMUX/LZC (EWS-CMS / WS-CMS)
};

/** The six hardware settings of paper Section 7.1. */
enum class HwSetting
{
    WS_Base,
    WS_CMS,
    EWS_Base,
    EWS_C,
    EWS_CM,
    EWS_CMS,
};

/** Full accelerator parameterization. */
struct AccelConfig
{
    Dataflow dataflow = Dataflow::EWS;
    WeightStream weight_stream = WeightStream::Dense8b;
    TileStyle tile = TileStyle::Sparse;

    std::int64_t array_h = 16;       //!< rows (input-channel parallelism)
    std::int64_t array_l = 16;       //!< cols (output-channel parallelism)
    std::int64_t wrf_depth = 16;     //!< A*B*D budget per PE
    std::int64_t dma_bits = 64;      //!< L2 -> loader datawidth per cycle
    /**
     * L1 (global buffer) bandwidth in bytes per cycle. The multi-bank L1
     * covers EWS's reduced access rate comfortably, but the WS dataflow
     * touches L1 every cycle and becomes bandwidth-bound (paper
     * Section 7.4-7.5: "frequent L1 access greatly constrains the
     * performance of WS dataflow"). Scales with the array height.
     */
    std::int64_t l1_bw_bytes = 88;

    // Compression parameters of the loaded model (used by the loader and
    // the storage accounting; mirror the algorithm-side configuration).
    std::int64_t vq_k = 512;  //!< codewords
    std::int64_t vq_d = 16;   //!< subvector length
    int nm_n = 4;             //!< N of N:M
    int nm_m = 16;            //!< M of N:M

    bool zero_gating = true;  //!< zero-value gated PEs

    std::int64_t l1_bytes = 128 * 1024;
    std::int64_t l2_bytes = 2 * 1024 * 1024;
    double freq_ghz = 0.3;

    std::int64_t activation_bits = 8;
    std::int64_t weight_bits = 8;
    std::int64_t psum_bits = 24;

    /** Q = N/M * d: live PEs per d output channels in the sparse tile. */
    std::int64_t
    sparseQ() const
    {
        return vq_d * nm_n / nm_m;
    }

    /** Per-weight loaded bits for the configured stream. */
    double loadedBitsPerWeight() const;

    std::string settingName() const;
    HwSetting setting = HwSetting::EWS_CMS;
};

/**
 * Factory for the paper's six settings at a given square array size.
 * L1 is 128 KB for 16x16 arrays and 256 KB for 32x32 / 64x64 (paper
 * Section 7.2); EWS-C uses k=1024, d=8; EWS-CM/CMS use k=512, d=16 with
 * 4:16 pruning (Section 7.1).
 */
AccelConfig makeHwSetting(HwSetting setting, std::int64_t array_size);

/** Printable name matching the paper's labels. */
std::string hwSettingName(HwSetting setting);

} // namespace mvq::sim

#endif // MVQ_SIM_ACCEL_CONFIG_HPP
