#include "sim/accel_config.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::sim {

double
AccelConfig::loadedBitsPerWeight() const
{
    switch (weight_stream) {
      case WeightStream::Dense8b:
        return static_cast<double>(weight_bits);
      case WeightStream::VqIndex:
        return static_cast<double>(log2Ceil(
                   static_cast<std::uint64_t>(vq_k)))
            / static_cast<double>(vq_d);
      case WeightStream::VqIndexMask: {
        const double index_bits = static_cast<double>(
            log2Ceil(static_cast<std::uint64_t>(vq_k)));
        const double mask_bits_per_group = static_cast<double>(
            log2Ceil(binomial(nm_m, nm_n)));
        const double groups = static_cast<double>(vq_d / nm_m);
        return (index_bits + mask_bits_per_group * groups)
            / static_cast<double>(vq_d);
      }
    }
    panic("unreachable weight stream");
}

std::string
AccelConfig::settingName() const
{
    return hwSettingName(setting);
}

std::string
hwSettingName(HwSetting setting)
{
    switch (setting) {
      case HwSetting::WS_Base:
        return "WS";
      case HwSetting::WS_CMS:
        return "WS-CMS";
      case HwSetting::EWS_Base:
        return "EWS";
      case HwSetting::EWS_C:
        return "EWS-C";
      case HwSetting::EWS_CM:
        return "EWS-CM";
      case HwSetting::EWS_CMS:
        return "EWS-CMS";
    }
    return "?";
}

AccelConfig
makeHwSetting(HwSetting setting, std::int64_t array_size)
{
    fatalIf(array_size != 16 && array_size != 32 && array_size != 64,
            "paper evaluates array sizes 16/32/64, got ", array_size);

    AccelConfig cfg;
    cfg.setting = setting;
    cfg.array_h = array_size;
    cfg.array_l = array_size;
    cfg.l1_bytes = (array_size == 16 ? 128 : 256) * 1024;
    cfg.l2_bytes = 2 * 1024 * 1024;
    // Multi-bank L1 bandwidth grows with the array (11 * H / 2 bytes
    // per cycle, calibrated to the paper's EWS-vs-WS speedup gap).
    cfg.l1_bw_bytes = 11 * array_size / 2;

    switch (setting) {
      case HwSetting::WS_Base:
        cfg.dataflow = Dataflow::WS;
        cfg.weight_stream = WeightStream::Dense8b;
        cfg.tile = TileStyle::Dense;
        break;
      case HwSetting::WS_CMS:
        cfg.dataflow = Dataflow::WS;
        cfg.weight_stream = WeightStream::VqIndexMask;
        cfg.tile = TileStyle::Sparse;
        cfg.vq_k = 512;
        cfg.vq_d = 16;
        cfg.nm_n = 4;
        cfg.nm_m = 16;
        break;
      case HwSetting::EWS_Base:
        cfg.dataflow = Dataflow::EWS;
        cfg.weight_stream = WeightStream::Dense8b;
        cfg.tile = TileStyle::Dense;
        break;
      case HwSetting::EWS_C:
        cfg.dataflow = Dataflow::EWS;
        cfg.weight_stream = WeightStream::VqIndex;
        cfg.tile = TileStyle::Dense;
        cfg.vq_k = 1024;
        cfg.vq_d = 8;
        cfg.nm_n = 1; // no pruning
        cfg.nm_m = 1;
        break;
      case HwSetting::EWS_CM:
        cfg.dataflow = Dataflow::EWS;
        cfg.weight_stream = WeightStream::VqIndexMask;
        cfg.tile = TileStyle::Dense;
        cfg.vq_k = 512;
        cfg.vq_d = 16;
        cfg.nm_n = 4;
        cfg.nm_m = 16;
        break;
      case HwSetting::EWS_CMS:
        cfg.dataflow = Dataflow::EWS;
        cfg.weight_stream = WeightStream::VqIndexMask;
        cfg.tile = TileStyle::Sparse;
        cfg.vq_k = 512;
        cfg.vq_d = 16;
        cfg.nm_n = 4;
        cfg.nm_m = 16;
        break;
    }
    return cfg;
}

} // namespace mvq::sim
