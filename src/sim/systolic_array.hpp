/**
 * @file
 * Cycle-level functional simulator of the EWS/WS systolic array (paper
 * Sections 5.1-5.3). Executes the exact loop nest of Fig. 7 — output
 * channel blocks (A), input channel blocks (B), kernel-plane subsets (D)
 * with the inner (p, q, r, s) cycle order — computing real convolutions
 * through the modeled datapath:
 *
 *  - weights enter via the assignment-aware loader (decoded subvectors),
 *  - the sparse tile multiplies only the Q = N/M*d kept weights and
 *    scatters products through the LZC-encoded positions,
 *  - zero-value gating suppresses MAC energy when either operand is 0.
 *
 * Every L1/RF access follows the EWS reuse rules (activation fetches
 * 1/(A*D), psum traffic 1/(B*D)), so the counters this simulator produces
 * are the ground truth that the analytic model in src/perf must match.
 */

#ifndef MVQ_SIM_SYSTOLIC_ARRAY_HPP
#define MVQ_SIM_SYSTOLIC_ARRAY_HPP

#include "sim/accel_config.hpp"
#include "sim/counters.hpp"
#include "sim/weight_loader.hpp"

namespace mvq::sim {

/** Chosen loop extensions for one layer (A = B = D = 1 under WS). */
struct Extensions
{
    std::int64_t a = 1;
    std::int64_t b = 1;
    std::int64_t d = 1;
};

/** Result of simulating one conv layer. */
struct LayerRun
{
    Tensor ofmap; //!< [K, E, F]
    Counters counters;
    Extensions ext;
};

/**
 * Pick the layerwise A/B/D extensions: enumerate all combinations with
 * A*B*D <= wrf_depth, D dividing R*R, A <= ceil(K / L), B <= ceil(C / H),
 * minimizing the per-cycle L1 traffic H/(A*D) + L/(B*D).
 */
Extensions chooseExtensions(const AccelConfig &cfg, std::int64_t out_c,
                            std::int64_t in_c, std::int64_t rr);

/** Functional EWS/WS array. */
class SystolicArray
{
  public:
    explicit SystolicArray(AccelConfig cfg);

    const AccelConfig &config() const { return cfg_; }

    /**
     * Run one convolution (batchless, groups = 1).
     *
     * @param ifmap   [C, H, W] input feature map.
     * @param weights Decoded weights + keep mask (from the weight loader
     *                or wrapDenseWeights).
     * @param stride  Convolution stride.
     * @param pad     Symmetric zero padding.
     */
    LayerRun runConv(const Tensor &ifmap, const DecodedWeights &weights,
                     std::int64_t stride, std::int64_t pad) const;

  private:
    AccelConfig cfg_;
};

} // namespace mvq::sim

#endif // MVQ_SIM_SYSTOLIC_ARRAY_HPP
