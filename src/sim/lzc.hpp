/**
 * @file
 * Cascaded leading-zero-count encoder (paper Section 5.3, Fig. 8). A
 * d-bit N:M sparsity mask with Q set bits cannot be encoded by a single
 * one-hot encoder; the hardware cascades Q LZC stages, each emitting the
 * position of the lowest remaining set bit and XOR-ing it out of the mask
 * passed to the next stage. The outputs become the MRF position
 * encodings that steer the sparse tile's DEMUXes.
 */

#ifndef MVQ_SIM_LZC_HPP
#define MVQ_SIM_LZC_HPP

#include <cstdint>
#include <vector>

namespace mvq::sim {

/**
 * Functional model of the cascaded encoder.
 *
 * @param mask_bits d mask bits (1 = weight kept), LSB-first order.
 * @param q         Number of cascade stages (set-bit budget).
 * @return q positions in ascending order. When the mask has fewer than q
 *         set bits the tail entries are -1 (stage outputs invalid).
 */
std::vector<int> lzcEncode(const std::vector<std::uint8_t> &mask_bits,
                           int q);

/** Single leading-zero count: index of lowest set bit, or -1 when zero. */
int lzcFirstSet(std::uint64_t word);

/**
 * Hardware cost of one cascade: q LZC units of ceil(log2 d) output bits.
 * Used by the area model (Table 2 row "LZC").
 */
struct LzcCost
{
    int units = 0;
    int bits_per_unit = 0;
};

LzcCost lzcCascadeCost(std::int64_t d, std::int64_t q);

} // namespace mvq::sim

#endif // MVQ_SIM_LZC_HPP
