#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace mvq {

namespace {

std::atomic<bool> quiet{false};

} // namespace

void
setLogQuiet(bool q)
{
    quiet.store(q);
}

bool
logQuiet()
{
    return quiet.load();
}

namespace detail {

void
informImpl(const std::string &msg)
{
    if (!quiet.load())
        std::cout << "info: " << msg << "\n";
}

void
warnImpl(const std::string &msg)
{
    if (!quiet.load())
        std::cerr << "warn: " << msg << "\n";
}

} // namespace detail

} // namespace mvq
