/**
 * @file
 * Shared parallel-compute runtime: a persistent thread pool driving a
 * deterministic parallel-for. Work is split into chunks whose boundaries
 * depend only on the range and the grain — never on the thread count — so
 * any kernel that (a) writes disjoint outputs per chunk, or (b) reduces
 * per-chunk partials in chunk order, produces bit-identical results for
 * every value of MVQ_NUM_THREADS.
 *
 * The pool is created lazily on first use. The initial thread count comes
 * from the MVQ_NUM_THREADS environment variable, falling back to
 * std::thread::hardware_concurrency(). Nested parallel regions run inline
 * on the calling worker so kernels can freely compose (e.g. a parallel
 * conv calling a parallel gemm).
 */

#ifndef MVQ_COMMON_PARALLEL_HPP
#define MVQ_COMMON_PARALLEL_HPP

#include <cstdint>
#include <functional>

namespace mvq {

/** Threads the runtime currently targets (>= 1). */
int numThreads();

/**
 * Set the worker count. n <= 0 restores the default (MVQ_NUM_THREADS or
 * hardware_concurrency). Safe to call between parallel regions; this is
 * the programmatic form of the MVQ_NUM_THREADS knob.
 */
void setNumThreads(int n);

/**
 * Number of chunks parallelFor will split [begin, end) into with the
 * given grain. Depends only on the range size and grain, never on the
 * thread count.
 */
std::int64_t chunkCount(std::int64_t begin, std::int64_t end,
                        std::int64_t grain);

/**
 * Run fn(chunk_begin, chunk_end) over a deterministic chunking of
 * [begin, end). Chunks are at least `grain` wide (except possibly the
 * last) and are distributed dynamically over the pool. Blocks until all
 * chunks complete; exceptions thrown by fn are rethrown in the caller.
 */
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)> &fn);

/**
 * Like parallelFor but also passes the chunk index, for per-chunk partial
 * reductions that the caller folds together sequentially in chunk order
 * (keeping floating-point reductions deterministic).
 */
void parallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t chunk, std::int64_t,
                             std::int64_t)> &fn);

} // namespace mvq

#endif // MVQ_COMMON_PARALLEL_HPP
