#include "common/table.hpp"

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/logging.hpp"

namespace mvq {

const std::string TextTable::separatorTag = "\x01--sep--";

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    fatalIf(header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    fatalIf(row.size() != header_.size(),
            "row width ", row.size(), " != header width ", header_.size());
    rows.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows.push_back({separatorTag});
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows) {
        if (row.size() == 1 && row[0] == separatorTag)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " |";
        os << "\n";
    };
    auto emit_sep = [&]() {
        os << "+";
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "+";
        os << "\n";
    };

    emit_sep();
    emit_row(header_);
    emit_sep();
    for (const auto &row : rows) {
        if (row.size() == 1 && row[0] == separatorTag)
            emit_sep();
        else
            emit_row(row);
    }
    emit_sep();
    return os.str();
}

void
TextTable::print() const
{
    std::cout << render();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::count(std::int64_t v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run == 3) {
            out.push_back(',');
            run = 0;
        }
        out.push_back(*it);
        ++run;
    }
    if (v < 0)
        out.push_back('-');
    return {out.rbegin(), out.rend()};
}

void
printBanner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

} // namespace mvq
