/**
 * @file
 * Deterministic fault-injection registry. Production code marks the
 * places where the outside world can fail — opening a model file,
 * borrowing operands from an image, launching a batched forward — as
 * named *sites*; tests (or the MVQ_FAULT_PLAN env knob) arm a site with
 * a fail-Nth or fail-every-K schedule and the next matching hit fails
 * there, exactly there, and nowhere else. Because the schedule counts
 * hits rather than reading clocks, the same plan over the same call
 * sequence produces the same failure interleaving every run — which is
 * what lets tests script "batch 1 faults, batch 2 serves" and assert
 * bit-identical survivor outputs.
 *
 * The checkpoints are compiled in always and cost one relaxed atomic
 * load when nothing is armed (no lock, no map lookup, no string work),
 * so the sites stay in release binaries and the tested code path IS the
 * production code path.
 *
 * Failure modes:
 *  - Throw — the site throws FaultInjected, modeling an *unexpected*
 *    exception escaping a dependency (the serving layer must isolate
 *    it like any other foreign exception);
 *  - Error — the site reports through the library's own detected-error
 *    path (fatal(), i.e. FatalError), modeling an IO failure the code
 *    already knows how to diagnose.
 *
 * Arming is programmatic (arm()/armFromPlan(), used by tests) or
 * environmental (MVQ_FAULT_PLAN, loaded lazily at the first checkpoint;
 * see the grammar in armFromPlan). resetAll() disarms everything —
 * including the env plan for the rest of the process — and is how test
 * fixtures isolate themselves. Hit counters exist per armed site only:
 * an unarmed process counts nothing, by design (zero-cost rule above).
 *
 * Thread safety: every entry point is safe from any thread; the slow
 * path serializes on one internal mutex that is never held while user
 * code runs (throwing releases it by RAII).
 */

#ifndef MVQ_COMMON_FAULT_HPP
#define MVQ_COMMON_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mvq::fault {

/** Thrown by a Throw-mode site: a foreign exception, not a diagnosed
 *  library error (those are FatalError via Error mode). */
class FaultInjected : public std::runtime_error
{
  public:
    explicit FaultInjected(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** How an armed site fails when its schedule matches (see file docs). */
enum class FaultMode { Throw, Error };

/**
 * When an armed site fails. Exactly one of `nth` / `every` must be
 * positive: `nth` fails the nth hit after arming (once); `every` fails
 * every k-th hit (k, 2k, 3k, ...). Hits are counted per site from the
 * moment it is armed.
 */
struct FaultSpec
{
    std::int64_t nth = 0;   //!< fail exactly the nth hit (1-based)
    std::int64_t every = 0; //!< fail hits k, 2k, 3k, ...
    FaultMode mode = FaultMode::Throw;
};

/** Per-site counters since arming (zeros for unarmed sites). */
struct SiteStats
{
    std::int64_t hits = 0;  //!< checkpoints reached at this site
    std::int64_t fired = 0; //!< hits that failed
};

// The site catalog. Arming any other name is a FatalError, so plans
// cannot silently misspell a site.
inline constexpr const char *kArtifactOpen = "artifact.open";
inline constexpr const char *kOperandBorrow = "artifact.operand_borrow";
inline constexpr const char *kServeForward = "serve.forward";
inline constexpr const char *kBatcherStall = "serve.batcher_stall";

/** Every site name the registry accepts. */
const std::vector<const char *> &knownSites();

/** Arm `site` with `spec` (fresh counters; re-arming replaces). Fatal
 *  on unknown sites and invalid specs. */
void arm(const std::string &site, const FaultSpec &spec);

/** Disarm one site (keeps others armed). Unknown names are fatal;
 *  disarming an unarmed site is a no-op. */
void disarm(const std::string &site);

/** Disarm every site and zero all counters. Also marks the env plan
 *  consumed: MVQ_FAULT_PLAN will not re-arm later in this process
 *  unless armFromEnv() is called explicitly. */
void resetAll();

/**
 * Parse and arm a plan string:
 *
 *     plan  := entry (';' entry)*
 *     entry := site (':' field)+
 *     field := 'nth=' N | 'every=' K | 'mode=' ('throw'|'error')
 *
 * e.g. "serve.forward:nth=2;artifact.open:every=3:mode=error".
 * Empty plans are a no-op; malformed plans are fatal with the
 * offending entry named.
 */
void armFromPlan(const std::string &plan);

/** Apply the MVQ_FAULT_PLAN env knob (no-op when unset/empty). Called
 *  lazily by the first checkpoint; tests call it to re-apply the env
 *  plan after resetAll(). */
void armFromEnv();

/** Counters for `site` since it was last armed. */
SiteStats stats(const std::string &site);

namespace detail {

/** Number of armed sites; -1 until the env plan has been consulted.
 *  The checkpoints' entire unarmed cost is loading this. */
extern std::atomic<int> g_armed;

bool fireSlow(const char *site);
void checkpointSlow(const char *site, const char *what);

} // namespace detail

/**
 * Non-throwing injection point: counts a hit at `site` and returns
 * whether this hit is scheduled to fail, leaving the reaction to the
 * caller (the batcher-stall site skips a claim cycle, for example).
 * Free when nothing is armed.
 */
inline bool
fires(const char *site)
{
    if (detail::g_armed.load(std::memory_order_acquire) == 0)
        return false;
    return detail::fireSlow(site);
}

/**
 * Throwing injection point: counts a hit at `site`; on a scheduled
 * failure throws FaultInjected (Throw mode) or FatalError via fatal()
 * (Error mode), with `what` naming the interrupted operation. Free
 * when nothing is armed.
 */
inline void
checkpoint(const char *site, const char *what)
{
    if (detail::g_armed.load(std::memory_order_acquire) == 0)
        return;
    detail::checkpointSlow(site, what);
}

} // namespace mvq::fault

#endif // MVQ_COMMON_FAULT_HPP
