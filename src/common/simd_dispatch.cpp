#include "common/simd_dispatch.hpp"

#include <atomic>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>

#include "common/env.hpp"
#include "common/logging.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define MVQ_SIMD_X86 1
#endif

namespace mvq::simd {

namespace {

// ------------------------------------------------------------ scalar table
//
// The portable kernels. These are the semantic reference for every vector
// path: the scalar micro-kernel reproduces gemmReference's per-element
// accumulation order (ascending kk), and the two assignment variants
// accumulate kept positions in ascending t, so sparse and dense scalar
// paths produce bit-identical distances.

void
gemmMicroScalar(const float *__restrict ap, const float *__restrict bp,
                std::int64_t kc, float *__restrict acc)
{
    constexpr std::int64_t MR = 4;
    constexpr std::int64_t NR = 8;
    // Accumulate in a local tile so the compiler can keep it in registers
    // and auto-vectorize (through the dispatch function pointer it no
    // longer sees that acc is a private stack buffer).
    float c[MR * NR];
    std::memcpy(c, acc, sizeof(c));
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float *arow = ap + kk * MR;
        const float *brow = bp + kk * NR;
        for (std::int64_t r = 0; r < MR; ++r) {
            const float av = arow[r];
            float *crow = c + r * NR;
            for (std::int64_t cidx = 0; cidx < NR; ++cidx)
                crow[cidx] += av * brow[cidx];
        }
    }
    std::memcpy(acc, c, sizeof(c));
}

/**
 * Sparse-A row x packed-B-panel kernel. nr is a runtime parameter (the
 * scalar kernel can back tables with different tile widths). A single
 * compressed row has no mr dimension to hide FP-add latency behind, so
 * accumulation is striped 2-way across entries (entry q feeds stripe
 * q % 2) and the stripes fold at the end, doubling the independent
 * dependency chains the auto-vectorizer can keep in flight.
 */
void
gemmSparseMicroScalar(const float *__restrict vals,
                      const std::int32_t *__restrict kidx, std::int64_t nnz,
                      std::int64_t k0, const float *__restrict bp,
                      std::int64_t nr, float *__restrict acc)
{
    float s0[kMaxGemmNr];
    float s1[kMaxGemmNr];
    for (std::int64_t c = 0; c < nr; ++c) {
        s0[c] = acc[c];
        s1[c] = 0.0f;
    }
    std::int64_t q = 0;
    for (; q + 2 <= nnz; q += 2) {
        const float v0 = vals[q];
        const float v1 = vals[q + 1];
        const float *b0 = bp + (kidx[q] - k0) * nr;
        const float *b1 = bp + (kidx[q + 1] - k0) * nr;
        for (std::int64_t c = 0; c < nr; ++c) {
            s0[c] += v0 * b0[c];
            s1[c] += v1 * b1[c];
        }
    }
    if (q < nnz) {
        const float v = vals[q];
        const float *brow = bp + (kidx[q] - k0) * nr;
        for (std::int64_t c = 0; c < nr; ++c)
            s0[c] += v * brow[c];
    }
    for (std::int64_t c = 0; c < nr; ++c)
        acc[c] = s0[c] + s1[c];
}

/**
 * Multi-row sparse tile x packed-B-panel kernel. Unlike the single-row
 * kernel there is no need for entry striping: the mrows accumulator rows
 * are themselves independent dependency chains, and each shared column
 * loads its packed B row once for all of them. Accumulation runs in a
 * local tile so the compiler can keep it in registers and auto-vectorize
 * through the dispatch function pointer.
 */
namespace {

/**
 * Fixed-shape multi-row tile body: with R and NRC compile-time the loops
 * fully unroll and the accumulator tile scalarizes into vector registers
 * instead of bouncing through a stack array every shared column (the
 * runtime-shape fallback below pays exactly that bounce).
 */
template <int R, int NRC>
void
sparseMultiRowTileFixed(const float *__restrict vals, std::int64_t vstride,
                        const std::int32_t *__restrict kidx,
                        std::int64_t nnz, std::int64_t k0,
                        const float *__restrict bp, float *__restrict acc)
{
    // Overwrite contract: the tile starts at zero and the final store
    // replaces acc (cross-K-block accumulation happens at the driver's C
    // scatter), so the kernel never reads acc.
    float c[R][NRC] = {};
    // kidx walks the packed panel at irregular multi-KiB strides the
    // hardware prefetcher cannot follow; the index array makes future
    // addresses exact, so prefetch a fixed distance ahead.
    constexpr std::int64_t kPrefetchAhead = 12;
    for (std::int64_t q = 0; q < nnz; ++q) {
        if (q + kPrefetchAhead < nnz)
            __builtin_prefetch(bp + (kidx[q + kPrefetchAhead] - k0) * NRC,
                               0, 3);
        const float *brow = bp + (kidx[q] - k0) * NRC;
        for (int r = 0; r < R; ++r) {
            const float v = vals[r * vstride + q];
            for (int cidx = 0; cidx < NRC; ++cidx)
                c[r][cidx] += v * brow[cidx];
        }
    }
    for (int r = 0; r < R; ++r)
        for (int cidx = 0; cidx < NRC; ++cidx)
            acc[r * NRC + cidx] = c[r][cidx];
}

} // namespace

void
gemmSparseMultiRowMicroScalar(const float *__restrict vals,
                              std::int64_t vstride, std::int64_t mrows,
                              const std::int32_t *__restrict kidx,
                              std::int64_t nnz, std::int64_t k0,
                              const float *__restrict bp, std::int64_t nr,
                              float *__restrict acc)
{
    // The grouped driver always calls with this table's nr (8); full
    // tiles (the overwhelmingly common case for N:M operands, where a
    // mask code keeps >= 2 rows per block) get the fixed-shape body.
    if (nr == 8 && mrows == kSparseMultiRowMr) {
        sparseMultiRowTileFixed<kSparseMultiRowMr, 8>(vals, vstride, kidx,
                                                      nnz, k0, bp, acc);
        return;
    }
    float c[kSparseMultiRowMr][kMaxGemmNr] = {};
    constexpr std::int64_t kPrefetchAhead = 12;
    for (std::int64_t q = 0; q < nnz; ++q) {
        if (q + kPrefetchAhead < nnz)
            __builtin_prefetch(bp + (kidx[q + kPrefetchAhead] - k0) * nr,
                               0, 3);
        const float *brow = bp + (kidx[q] - k0) * nr;
        for (std::int64_t r = 0; r < mrows; ++r) {
            const float v = vals[r * vstride + q];
            for (std::int64_t cidx = 0; cidx < nr; ++cidx)
                c[r][cidx] += v * brow[cidx];
        }
    }
    for (std::int64_t r = 0; r < mrows; ++r)
        for (std::int64_t cidx = 0; cidx < nr; ++cidx)
            acc[r * nr + cidx] = c[r][cidx];
}

std::int32_t
assignBestDenseScalar(const float *wrow, const float *mrow, const float *cb,
                      const float * /*cbT*/, std::int64_t k, std::int64_t d)
{
    float best = std::numeric_limits<float>::max();
    std::int32_t best_i = 0;
    for (std::int64_t i = 0; i < k; ++i) {
        const float *crow = cb + i * d;
        float s = 0.0f;
        // Branchless: the 0/1 multiplier zeroes pruned positions, so the
        // loop vectorizes without a per-element test.
        for (std::int64_t t = 0; t < d; ++t) {
            const float diff = wrow[t] - crow[t];
            s += mrow[t] * diff * diff;
        }
        if (s < best) {
            best = s;
            best_i = static_cast<std::int32_t>(i);
        }
    }
    return best_i;
}

std::int32_t
assignBestSparseScalar(const float *wkeep, const std::int32_t *idx,
                       std::int64_t nk, const float *cb,
                       const float * /*cbT*/, std::int64_t k, std::int64_t d)
{
    float best = std::numeric_limits<float>::max();
    std::int32_t best_i = 0;
    for (std::int64_t i = 0; i < k; ++i) {
        const float *crow = cb + i * d;
        float s = 0.0f;
        for (std::int64_t q = 0; q < nk; ++q) {
            const float diff = wkeep[q] - crow[idx[q]];
            s += diff * diff;
        }
        if (s < best) {
            best = s;
            best_i = static_cast<std::int32_t>(i);
        }
    }
    return best_i;
}

constexpr Kernels kScalarKernels = {
    Isa::Scalar, "scalar",
    /*mr=*/4,    /*nr=*/8, &gemmMicroScalar, &gemmSparseMicroScalar,
    &gemmSparseMultiRowMicroScalar,
    &assignBestDenseScalar, &assignBestSparseScalar,
};

// --------------------------------------------------------- CPU detection

#ifdef MVQ_SIMD_X86
/** xgetbv via inline asm so this TU needs no -mxsave flag. */
std::uint64_t
xgetbv0()
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/** cpuid says AVX2+FMA and the OS saves YMM state. */
bool
cpuHasAvx2Fma()
{
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    const bool fma = (ecx & (1u << 12)) != 0;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    if (!fma || !osxsave || !avx)
        return false;
    // XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
    if ((xgetbv0() & 0x6) != 0x6)
        return false;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    return (ebx & (1u << 5)) != 0; // AVX2
}
#endif

// ------------------------------------------------------------- resolution

const Kernels *
tableFor(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return &kScalarKernels;
    case Isa::Avx2:
        return avx2KernelsOrNull();
    case Isa::Neon:
        return neonKernelsOrNull();
    }
    return nullptr;
}

/** Parse MVQ_SIMD; returns false when unset or unrecognized. */
bool
parseOverride(Isa &out, std::string &raw)
{
    raw = env::str("MVQ_SIMD", "");
    if (raw.empty())
        return false;
    if (raw == "scalar") {
        out = Isa::Scalar;
        return true;
    }
    if (raw == "avx2") {
        out = Isa::Avx2;
        return true;
    }
    if (raw == "neon") {
        out = Isa::Neon;
        return true;
    }
    warn("MVQ_SIMD=", raw,
         " not recognized (want scalar|avx2|neon); auto-detecting");
    return false;
}

std::atomic<const Kernels *> g_active{nullptr};
std::once_flag g_resolve_once;

void
resolveActive()
{
    Isa choice = bestAvailableIsa();
    const char *source = "auto-detected";

    Isa requested = Isa::Scalar;
    std::string raw;
    if (parseOverride(requested, raw)) {
        if (isaAvailable(requested)) {
            choice = requested;
            source = "MVQ_SIMD override";
        } else {
            warn("MVQ_SIMD=", raw, " requested but the ", isaName(requested),
                 " path is unavailable on this host/build; falling back to ",
                 isaName(choice));
        }
    }

    const Kernels *table = tableFor(choice);
    panicIf(table == nullptr, "no kernel table for available ISA");
    g_active.store(table, std::memory_order_release);
    inform("simd: ", source, " kernel path '", table->name,
           "' (gemm micro-kernel ", table->mr, "x", table->nr,
           ", B panels ", kGemmKC, "x", table->nr,
           "; available:", isaAvailable(Isa::Avx2) ? " avx2" : "",
           isaAvailable(Isa::Neon) ? " neon" : "", " scalar)");
}

} // namespace

const Kernels &
scalarKernels()
{
    return kScalarKernels;
}

bool
isaAvailable(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return true;
    case Isa::Avx2:
#ifdef MVQ_SIMD_X86
        return avx2KernelsOrNull() != nullptr && cpuHasAvx2Fma();
#else
        return false;
#endif
    case Isa::Neon:
        // NEON is baseline on aarch64, so carrying the TU implies support.
        return neonKernelsOrNull() != nullptr;
    }
    return false;
}

Isa
bestAvailableIsa()
{
    if (isaAvailable(Isa::Neon))
        return Isa::Neon;
    if (isaAvailable(Isa::Avx2))
        return Isa::Avx2;
    return Isa::Scalar;
}

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Avx2:
        return "avx2";
    case Isa::Neon:
        return "neon";
    }
    return "?";
}

const Kernels &
kernels()
{
    const Kernels *table = g_active.load(std::memory_order_acquire);
    if (table == nullptr) {
        std::call_once(g_resolve_once, resolveActive);
        table = g_active.load(std::memory_order_acquire);
    }
    return *table;
}

Isa
activeIsa()
{
    return kernels().isa;
}

bool
setIsa(Isa isa)
{
    if (!isaAvailable(isa))
        return false;
    kernels(); // make sure the one-time resolution + log happened first
    const Kernels *table = tableFor(isa);
    panicIf(table == nullptr, "available ISA without a kernel table");
    g_active.store(table, std::memory_order_release);
    return true;
}

} // namespace mvq::simd
