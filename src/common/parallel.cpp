#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/logging.hpp"

namespace mvq {

namespace {

/** True while the current thread is executing inside a parallel region. */
thread_local bool in_parallel_region = false;

int
defaultThreads()
{
    const std::int64_t n = env::int_("MVQ_NUM_THREADS", 0);
    if (n > 0)
        return static_cast<int>(n);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/**
 * Persistent pool. Workers sleep on a condition variable between jobs; a
 * job is an atomic chunk counter the participants drain. The calling
 * thread always participates, so a pool of N threads spawns N-1 workers.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    // target_threads_ is atomic so these never take config_mutex_: they
    // stay safe to call from inside a parallel region (run() holds the
    // config mutex for the whole job). A setThreads during a job simply
    // takes effect at the next one.
    int
    threads()
    {
        return target_threads_.load(std::memory_order_relaxed);
    }

    void
    setThreads(int n)
    {
        target_threads_.store(n > 0 ? n : defaultThreads(),
                              std::memory_order_relaxed);
    }

    /** Run fn(chunk) for every chunk in [0, nchunks). */
    void
    run(std::int64_t nchunks,
        const std::function<void(std::int64_t)> &fn)
    {
        std::unique_lock<std::mutex> cfg(config_mutex_);
        resizeLocked(target_threads_.load(std::memory_order_relaxed) - 1);

        if (workers_.empty() || nchunks <= 1) {
            cfg.unlock();
            runInline(nchunks, fn);
            return;
        }

        {
            std::lock_guard<std::mutex> lk(job_mutex_);
            job_fn_ = &fn;
            job_next_.store(0, std::memory_order_relaxed);
            job_total_ = nchunks;
            job_error_ = nullptr;
            job_failed_.store(false, std::memory_order_relaxed);
            // Everyone — workers plus the caller — counts as active until
            // it has seen the counter exhausted.
            job_active_ = static_cast<int>(workers_.size()) + 1;
            ++job_generation_;
        }
        job_cv_.notify_all();

        drainChunks(fn);

        {
            std::unique_lock<std::mutex> lk(job_mutex_);
            --job_active_;
            if (job_active_ == 0)
                done_cv_.notify_all();
            else
                done_cv_.wait(lk, [this] { return job_active_ == 0; });
            job_fn_ = nullptr;
            if (job_error_) {
                auto err = job_error_;
                job_error_ = nullptr;
                cfg.unlock();
                lk.unlock();
                std::rethrow_exception(err);
            }
        }
    }

  private:
    ThreadPool() : target_threads_(defaultThreads()) {}

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(job_mutex_);
            stopping_ = true;
        }
        job_cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    void
    runInline(std::int64_t nchunks,
              const std::function<void(std::int64_t)> &fn)
    {
        const bool was_nested = in_parallel_region;
        in_parallel_region = true;
        try {
            for (std::int64_t c = 0; c < nchunks; ++c)
                fn(c);
        } catch (...) {
            in_parallel_region = was_nested;
            throw;
        }
        in_parallel_region = was_nested;
    }

    /** Pop and execute chunks until the current job's counter runs out. */
    void
    drainChunks(const std::function<void(std::int64_t)> &fn)
    {
        const bool was_nested = in_parallel_region;
        in_parallel_region = true;
        for (;;) {
            // Stop claiming chunks once any chunk failed, matching the
            // inline path's stop-at-first-throw behavior as closely as a
            // concurrent drain can.
            if (job_failed_.load(std::memory_order_relaxed))
                break;
            const std::int64_t c =
                job_next_.fetch_add(1, std::memory_order_relaxed);
            if (c >= job_total_)
                break;
            try {
                fn(c);
            } catch (...) {
                job_failed_.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lk(job_mutex_);
                if (!job_error_)
                    job_error_ = std::current_exception();
            }
        }
        in_parallel_region = was_nested;
    }

    /** Grow/shrink the worker set; config_mutex_ must be held. */
    void
    resizeLocked(int nworkers)
    {
        nworkers = std::max(0, nworkers);
        if (static_cast<int>(workers_.size()) == nworkers)
            return;
        // Retire the old workers (no job is in flight here: run() holds
        // config_mutex_ for the whole job).
        {
            std::lock_guard<std::mutex> lk(job_mutex_);
            stopping_ = true;
        }
        job_cv_.notify_all();
        for (auto &t : workers_)
            t.join();
        workers_.clear();
        {
            std::lock_guard<std::mutex> lk(job_mutex_);
            stopping_ = false;
        }
        // New workers must treat the *current* generation as already seen:
        // starting from 0 would let them mistake a finished job for a
        // fresh one and corrupt the active count.
        std::uint64_t spawn_generation;
        {
            std::lock_guard<std::mutex> lk(job_mutex_);
            spawn_generation = job_generation_;
        }
        workers_.reserve(static_cast<std::size_t>(nworkers));
        for (int i = 0; i < nworkers; ++i)
            workers_.emplace_back(
                [this, spawn_generation] { workerLoop(spawn_generation); });
    }

    void
    workerLoop(std::uint64_t seen_generation)
    {
        for (;;) {
            const std::function<void(std::int64_t)> *fn = nullptr;
            {
                std::unique_lock<std::mutex> lk(job_mutex_);
                job_cv_.wait(lk, [&] {
                    return stopping_ || job_generation_ != seen_generation;
                });
                if (stopping_)
                    return;
                seen_generation = job_generation_;
                fn = job_fn_;
            }
            if (fn != nullptr)
                drainChunks(*fn);
            {
                std::lock_guard<std::mutex> lk(job_mutex_);
                --job_active_;
                if (job_active_ == 0)
                    done_cv_.notify_all();
            }
        }
    }

    // Serializes jobs and worker-set changes.
    std::mutex config_mutex_;
    std::atomic<int> target_threads_{1};
    std::vector<std::thread> workers_;

    // Per-job state.
    std::mutex job_mutex_;
    std::condition_variable job_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::int64_t)> *job_fn_ = nullptr;
    std::atomic<std::int64_t> job_next_{0};
    std::atomic<bool> job_failed_{false};
    std::int64_t job_total_ = 0;
    int job_active_ = 0;
    std::uint64_t job_generation_ = 0;
    std::exception_ptr job_error_ = nullptr;
    bool stopping_ = false;
};

} // namespace

int
numThreads()
{
    return ThreadPool::instance().threads();
}

void
setNumThreads(int n)
{
    ThreadPool::instance().setThreads(n);
}

std::int64_t
chunkCount(std::int64_t begin, std::int64_t end, std::int64_t grain)
{
    panicIf(grain < 1, "parallelFor grain must be >= 1");
    const std::int64_t range = end - begin;
    if (range <= 0)
        return 0;
    return (range + grain - 1) / grain;
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const std::function<void(std::int64_t, std::int64_t)> &fn)
{
    parallelForChunks(begin, end, grain,
                      [&fn](std::int64_t, std::int64_t b, std::int64_t e) {
                          fn(b, e);
                      });
}

void
parallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)> &fn)
{
    const std::int64_t nchunks = chunkCount(begin, end, grain);
    if (nchunks == 0)
        return;
    auto run_chunk = [&](std::int64_t c) {
        const std::int64_t b = begin + c * grain;
        const std::int64_t e = std::min(end, b + grain);
        fn(c, b, e);
    };
    if (nchunks == 1 || in_parallel_region) {
        // Nested regions (a parallel kernel calling another) run inline on
        // the current worker; the outer region already spans the pool.
        for (std::int64_t c = 0; c < nchunks; ++c)
            run_chunk(c);
        return;
    }
    ThreadPool::instance().run(nchunks, run_chunk);
}

} // namespace mvq
