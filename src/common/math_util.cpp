#include "common/math_util.hpp"

#include <bit>
#include <numeric>

#include "common/logging.hpp"

namespace mvq {

int
log2Ceil(std::uint64_t v)
{
    fatalIf(v == 0, "log2Ceil(0) is undefined");
    int e = 0;
    std::uint64_t p = 1;
    while (p < v) {
        p <<= 1;
        ++e;
    }
    return e;
}

std::uint64_t
binomial(int n, int k)
{
    if (k < 0 || k > n)
        return 0;
    if (k > n - k)
        k = n - k;
    std::uint64_t r = 1;
    for (int i = 1; i <= k; ++i) {
        r = r * static_cast<std::uint64_t>(n - k + i)
            / static_cast<std::uint64_t>(i);
    }
    return r;
}

std::uint64_t
combinationRank(int n, const std::vector<int> &members)
{
    // Colexicographic rank: sum over members of C(position, index+1).
    std::uint64_t rank = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const int pos = members[i];
        fatalIf(pos < 0 || pos >= n, "combination member out of range");
        fatalIf(i > 0 && members[i] <= members[i - 1],
                "combination members must be strictly ascending");
        rank += binomial(pos, static_cast<int>(i) + 1);
    }
    return rank;
}

std::vector<int>
combinationUnrank(int n, int k, std::uint64_t rank)
{
    fatalIf(rank >= binomial(n, k), "combination rank out of range");
    std::vector<int> members(static_cast<std::size_t>(k));
    // Greedy from the largest member down.
    for (int i = k; i >= 1; --i) {
        int pos = i - 1;
        // Find largest pos with C(pos, i) <= rank.
        while (pos + 1 < n && binomial(pos + 1, i) <= rank)
            ++pos;
        members[static_cast<std::size_t>(i - 1)] = pos;
        rank -= binomial(pos, i);
        n = pos; // subsequent members must be strictly below
    }
    return members;
}

int
popcount64(std::uint64_t v)
{
    return std::popcount(v);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0)
        / static_cast<double>(v.size());
}

} // namespace mvq
