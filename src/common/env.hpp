/**
 * @file
 * The environment-knob registry: the single place in the repo that reads
 * `MVQ_*` environment variables. Every knob is declared once in the
 * registry table (src/common/env.cpp) with its type, default, and a
 * one-line description; accessors read the process environment exactly
 * once per knob and cache the raw value behind a mutex, so every thread
 * observes the same setting for the lifetime of the process no matter
 * when it asks (the first-use race of scattered `std::getenv` calls in
 * hot paths is gone by construction).
 *
 * `MVQ_ENV_HELP=1` dumps the full knob table — name, type, default,
 * current value, description — to stderr on the first registry access,
 * so any binary linking the library can enumerate its knobs.
 *
 * Discipline (machine-checked by scripts/mvq_lint.py):
 *  - raw `std::getenv` is banned everywhere except env.cpp;
 *  - every quoted `MVQ_*` name in the tree must be a registered knob;
 *  - every registered knob must have a row in README's knob table.
 *
 * Knobs that also need a *programmatic* override (tests/benches flipping
 * them mid-process) keep a module-local cached setter on top of this —
 * e.g. tensor/ops' setFusedConvEnabled — because registry reads are
 * sticky by design: setenv after the first read has no effect.
 */

#ifndef MVQ_COMMON_ENV_HPP
#define MVQ_COMMON_ENV_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mvq::env {

/** One registered knob (see the table in env.cpp). */
struct Knob
{
    const char *name;        //!< e.g. "MVQ_NUM_THREADS"
    const char *type;        //!< "flag", "int", "real", or "string"
    const char *def;         //!< printable default
    const char *description; //!< one-line summary (mirrors README's table)
};

/**
 * Boolean knob. Unset or empty returns `def`; "0"/"off"/"false"/"no"
 * parse false and "1"/"on"/"true"/"yes" true (case-sensitive, matching
 * the documented spellings); anything else warns once and returns `def`.
 * The knob must be registered — unknown names panic.
 */
bool flag(const std::string &name, bool def);

/** Integer knob. Unset, empty, or unparsable returns `def`. */
std::int64_t int_(const std::string &name, std::int64_t def);

/** Floating-point knob. Unset, empty, or unparsable returns `def`. */
double real(const std::string &name, double def);

/** String knob. Unset returns `def` (empty values are returned as-is). */
std::string str(const std::string &name, const std::string &def);

/** True when the variable is present in the environment at all (cached
 *  like every other read), regardless of its value. */
bool isSet(const std::string &name);

/** The full registry table, for tooling and the MVQ_ENV_HELP dump. */
const std::vector<Knob> &knownKnobs();

/** The MVQ_ENV_HELP table as a string (name/type/default/current/desc). */
std::string helpText();

} // namespace mvq::env

#endif // MVQ_COMMON_ENV_HPP
