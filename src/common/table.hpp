/**
 * @file
 * Console table printer used by the bench harnesses to render the
 * paper-vs-measured rows of each reproduced table and figure.
 */

#ifndef MVQ_COMMON_TABLE_HPP
#define MVQ_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace mvq {

/** Fixed-column text table with a header row, rendered with padding. */
class TextTable
{
  public:
    /** @param header Column titles; defines the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands separators. */
    static std::string count(std::int64_t v);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows;
    static const std::string separatorTag;
};

/** Print a section banner for a bench experiment. */
void printBanner(const std::string &title);

} // namespace mvq

#endif // MVQ_COMMON_TABLE_HPP
