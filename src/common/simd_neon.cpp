/**
 * @file
 * NEON (aarch64 Advanced SIMD) kernel table. NEON is baseline on aarch64,
 * so no per-file flags are needed — the TU gates itself on the target and
 * compiles to a stub elsewhere. The CI aarch64 cross-compile job keeps
 * this path building even though the x86 test hosts never execute it.
 */

#include "common/simd_dispatch.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <limits>

namespace mvq::simd {

namespace {

constexpr std::int64_t MR = 4;
constexpr std::int64_t NR = 16;
static_assert(MR <= kMaxGemmMr && NR <= kMaxGemmNr);

/**
 * 4x16 register tile: 16 accumulator q-regs + 1 B vector + 1 A vector.
 * vfmaq_laneq broadcasts one packed A lane per row, so the whole A column
 * loads once per kk step. Packed layouts match the scalar kernel.
 */
void
gemmMicroNeon(const float *ap, const float *bp, std::int64_t kc, float *acc)
{
    float32x4_t c0[4], c1[4], c2[4], c3[4];
    for (int v = 0; v < 4; ++v) {
        c0[v] = vld1q_f32(acc + 0 * NR + 4 * v);
        c1[v] = vld1q_f32(acc + 1 * NR + 4 * v);
        c2[v] = vld1q_f32(acc + 2 * NR + 4 * v);
        c3[v] = vld1q_f32(acc + 3 * NR + 4 * v);
    }
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float32x4_t a = vld1q_f32(ap + kk * MR);
        const float *brow = bp + kk * NR;
        for (int v = 0; v < 4; ++v) {
            const float32x4_t b = vld1q_f32(brow + 4 * v);
            c0[v] = vfmaq_laneq_f32(c0[v], b, a, 0);
            c1[v] = vfmaq_laneq_f32(c1[v], b, a, 1);
            c2[v] = vfmaq_laneq_f32(c2[v], b, a, 2);
            c3[v] = vfmaq_laneq_f32(c3[v], b, a, 3);
        }
    }
    for (int v = 0; v < 4; ++v) {
        vst1q_f32(acc + 0 * NR + 4 * v, c0[v]);
        vst1q_f32(acc + 1 * NR + 4 * v, c1[v]);
        vst1q_f32(acc + 2 * NR + 4 * v, c2[v]);
        vst1q_f32(acc + 3 * NR + 4 * v, c3[v]);
    }
}

/**
 * Sparse-A row x packed-B-panel kernel: four q-reg accumulators cover the
 * 16-wide panel, striped 2-way across entries (entry q feeds stripe
 * q % 2) so eight independent FMA chains hide the accumulate latency a
 * single compressed row cannot hide with an mr dimension; the stripes
 * fold at the end. Each kept A entry broadcasts once (vfmaq_n) against
 * its matching packed B row, so pruned positions cost nothing at all.
 */
void
gemmSparseMicroNeon(const float *vals, const std::int32_t *kidx,
                    std::int64_t nnz, std::int64_t k0, const float *bp,
                    std::int64_t /*nr*/, float *acc)
{
    float32x4_t c0[4], c1[4];
    for (int v = 0; v < 4; ++v) {
        c0[v] = vld1q_f32(acc + 4 * v);
        c1[v] = vdupq_n_f32(0.0f);
    }
    std::int64_t q = 0;
    for (; q + 2 <= nnz; q += 2) {
        const float a0 = vals[q];
        const float a1 = vals[q + 1];
        const float *b0 = bp + (kidx[q] - k0) * NR;
        const float *b1 = bp + (kidx[q + 1] - k0) * NR;
        for (int v = 0; v < 4; ++v) {
            c0[v] = vfmaq_n_f32(c0[v], vld1q_f32(b0 + 4 * v), a0);
            c1[v] = vfmaq_n_f32(c1[v], vld1q_f32(b1 + 4 * v), a1);
        }
    }
    if (q < nnz) {
        const float av = vals[q];
        const float *brow = bp + (kidx[q] - k0) * NR;
        for (int v = 0; v < 4; ++v)
            c0[v] = vfmaq_n_f32(c0[v], vld1q_f32(brow + 4 * v), av);
    }
    for (int v = 0; v < 4; ++v)
        vst1q_f32(acc + 4 * v, vaddq_f32(c0[v], c1[v]));
}

/**
 * Multi-row sparse tile kernel body for a compile-time row count: R x 4
 * accumulator q-regs + 4 shared B vectors stay comfortably within the 32
 * architectural registers up to R = kSparseMultiRowMr = 4 (20 live regs).
 * Each shared column loads its packed B row once and vfmaq_n broadcasts
 * one value per tile row against it, so the B-side traffic the single-row
 * kernel pays per entry is amortized over the R rows; the R x 4 chains
 * hide FMA latency without entry striping.
 */
template <int R>
void
sparseMultiRowTileNeon(const float *vals, std::int64_t vstride,
                       const std::int32_t *kidx, std::int64_t nnz,
                       std::int64_t k0, const float *bp, float *acc)
{
    // Overwrite contract: accumulators start at zero and the final store
    // replaces acc (cross-K-block accumulation happens at the driver's C
    // scatter), so the kernel never reads acc.
    float32x4_t c[R][4];
    for (int r = 0; r < R; ++r)
        for (int v = 0; v < 4; ++v)
            c[r][v] = vdupq_n_f32(0.0f);
    // kidx walks the packed panel at irregular multi-KiB strides the
    // hardware prefetcher cannot follow; the index array makes future
    // addresses exact, so prefetch a fixed distance ahead.
    constexpr std::int64_t PF = 12;
    for (std::int64_t q = 0; q < nnz; ++q) {
        if (q + PF < nnz)
            __builtin_prefetch(bp + (kidx[q + PF] - k0) * NR, 0, 3);
        const float *brow = bp + (kidx[q] - k0) * NR;
        float32x4_t b[4];
        for (int v = 0; v < 4; ++v)
            b[v] = vld1q_f32(brow + 4 * v);
        for (int r = 0; r < R; ++r) {
            const float av = vals[r * vstride + q];
            for (int v = 0; v < 4; ++v)
                c[r][v] = vfmaq_n_f32(c[r][v], b[v], av);
        }
    }
    for (int r = 0; r < R; ++r)
        for (int v = 0; v < 4; ++v)
            vst1q_f32(acc + r * NR + 4 * v, c[r][v]);
}

void
gemmSparseMultiRowNeon(const float *vals, std::int64_t vstride,
                       std::int64_t mrows, const std::int32_t *kidx,
                       std::int64_t nnz, std::int64_t k0, const float *bp,
                       std::int64_t /*nr*/, float *acc)
{
    switch (mrows) {
      case 4:
        sparseMultiRowTileNeon<4>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
      case 3:
        sparseMultiRowTileNeon<3>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
      case 2:
        sparseMultiRowTileNeon<2>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
      default:
        sparseMultiRowTileNeon<1>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
    }
}

/**
 * Track the running 4-lane minimum: lane u of (vbest, vbi) holds the best
 * distance and its codeword index among strips processed so far. Strictly-
 * less blending keeps the earliest index within a lane, matching the
 * scalar first-minimum scan.
 */
inline void
argminStep(float32x4_t s, int32x4_t curi, float32x4_t &vbest,
           int32x4_t &vbi)
{
    const uint32x4_t lt = vcltq_f32(s, vbest);
    vbest = vbslq_f32(lt, s, vbest);
    vbi = vbslq_s32(lt, curi, vbi);
}

/**
 * Fold the 4 lanes to one (value, index); lane ties resolve to the lower
 * codeword index so results match the scalar kernels exactly.
 */
std::int32_t
argminFinish(float32x4_t vbest, int32x4_t vbi, float &best)
{
    float bv[4];
    std::int32_t bi[4];
    vst1q_f32(bv, vbest);
    vst1q_s32(bi, vbi);
    best = bv[0];
    std::int32_t best_i = bi[0];
    for (int u = 1; u < 4; ++u) {
        if (bv[u] < best || (bv[u] == best && bi[u] < best_i)) {
            best = bv[u];
            best_i = bi[u];
        }
    }
    return best_i;
}

const int32x4_t kLaneIota = {0, 1, 2, 3};

std::int32_t
assignBestDenseNeon(const float *wrow, const float *mrow, const float *cb,
                    const float *cbT, std::int64_t k, std::int64_t d)
{
    // Each 4-lane strip of the transposed codebook evaluates 4 codewords
    // at once: broadcast one (weight, mask) position, load the codeword
    // strip at that position, accumulate the masked squared difference.
    const std::int64_t k4 = k - k % 4;
    float32x4_t vbest = vdupq_n_f32(std::numeric_limits<float>::max());
    int32x4_t vbi = vdupq_n_s32(0);
    for (std::int64_t i = 0; i < k4; i += 4) {
        float32x4_t s = vdupq_n_f32(0.0f);
        for (std::int64_t t = 0; t < d; ++t) {
            const float32x4_t df = vsubq_f32(
                vdupq_n_f32(wrow[t]), vld1q_f32(cbT + t * k + i));
            s = vfmaq_f32(s, vmulq_f32(df, vdupq_n_f32(mrow[t])), df);
        }
        const int32x4_t curi =
            vaddq_s32(vdupq_n_s32(static_cast<std::int32_t>(i)), kLaneIota);
        argminStep(s, curi, vbest, vbi);
    }

    float best;
    std::int32_t best_i = argminFinish(vbest, vbi, best);
    for (std::int64_t i = k4; i < k; ++i) {
        const float *crow = cb + i * d;
        float s = 0.0f;
        for (std::int64_t t = 0; t < d; ++t) {
            const float diff = wrow[t] - crow[t];
            s += mrow[t] * diff * diff;
        }
        if (s < best) {
            best = s;
            best_i = static_cast<std::int32_t>(i);
        }
    }
    return best_i;
}

std::int32_t
assignBestSparseNeon(const float *wkeep, const std::int32_t *idx,
                     std::int64_t nk, const float *cb, const float *cbT,
                     std::int64_t k, std::int64_t d)
{
    // Same strip walk as the dense kernel, but only the nk kept positions
    // contribute — the transposed layout turns the compressed-row scan
    // into contiguous loads.
    const std::int64_t k4 = k - k % 4;
    float32x4_t vbest = vdupq_n_f32(std::numeric_limits<float>::max());
    int32x4_t vbi = vdupq_n_s32(0);
    for (std::int64_t i = 0; i < k4; i += 4) {
        float32x4_t s = vdupq_n_f32(0.0f);
        for (std::int64_t q = 0; q < nk; ++q) {
            const float32x4_t df = vsubq_f32(
                vdupq_n_f32(wkeep[q]), vld1q_f32(cbT + idx[q] * k + i));
            s = vfmaq_f32(s, df, df);
        }
        const int32x4_t curi =
            vaddq_s32(vdupq_n_s32(static_cast<std::int32_t>(i)), kLaneIota);
        argminStep(s, curi, vbest, vbi);
    }

    float best;
    std::int32_t best_i = argminFinish(vbest, vbi, best);
    for (std::int64_t i = k4; i < k; ++i) {
        const float *crow = cb + i * d;
        float s = 0.0f;
        for (std::int64_t q = 0; q < nk; ++q) {
            const float diff = wkeep[q] - crow[idx[q]];
            s += diff * diff;
        }
        if (s < best) {
            best = s;
            best_i = static_cast<std::int32_t>(i);
        }
    }
    return best_i;
}

constexpr Kernels kNeonKernels = {
    Isa::Neon, "neon", MR, NR, &gemmMicroNeon, &gemmSparseMicroNeon,
    &gemmSparseMultiRowNeon, &assignBestDenseNeon, &assignBestSparseNeon,
};

} // namespace

const Kernels *
neonKernelsOrNull()
{
    return &kNeonKernels;
}

} // namespace mvq::simd

#else // non-aarch64 target

namespace mvq::simd {

const Kernels *
neonKernelsOrNull()
{
    return nullptr;
}

} // namespace mvq::simd

#endif
