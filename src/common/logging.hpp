/**
 * @file
 * Status and error reporting in the gem5 style, adapted for a testable
 * library: fatal() reports user/config errors, panic() reports internal
 * invariant violations. Both throw so tests can assert on them.
 */

#ifndef MVQ_COMMON_LOGGING_HPP
#define MVQ_COMMON_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace mvq {

/** Error thrown by fatal(): the caller supplied an invalid configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error thrown by panic(): an internal invariant was violated (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);

} // namespace detail

/**
 * Report a condition that prevents continuing and is the caller's fault
 * (bad configuration, invalid argument). Never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report a condition that should never happen regardless of input (an
 * internal bug). Never returns.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Informative status message for the user; never stops execution. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Warn about behaviour that may be suspect but lets execution continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Globally silence inform()/warn() output (used by tests). */
void setLogQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool logQuiet();

/** fatal() unless the condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

/** panic() unless the condition holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

} // namespace mvq

#endif // MVQ_COMMON_LOGGING_HPP
