/**
 * @file
 * Deterministic random number utilities. Every stochastic component in the
 * repository takes an explicit seed so that tests and benches reproduce
 * bit-identical results across runs.
 */

#ifndef MVQ_COMMON_RANDOM_HPP
#define MVQ_COMMON_RANDOM_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace mvq {

/** Thin wrapper over std::mt19937_64 with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(engine);
    }

    /** Standard normal scaled by stddev. */
    float
    normal(float mean, float stddev)
    {
        std::normal_distribution<float> d(mean, stddev);
        return d(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    intIn(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(engine);
    }

    /** Uniform index in [0, n). */
    std::size_t
    index(std::size_t n)
    {
        return static_cast<std::size_t>(intIn(0,
            static_cast<std::int64_t>(n) - 1));
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child seed (for per-layer substreams). */
    std::uint64_t
    fork()
    {
        return engine();
    }

    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace mvq

#endif // MVQ_COMMON_RANDOM_HPP
