#include "common/random.hpp"

// Header-only today; the translation unit anchors the library and reserves
// a home for future out-of-line draws (e.g. zipfian generators).
