#include "common/fault.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/env.hpp"
#include "common/logging.hpp"

namespace mvq::fault {

namespace {

/** One armed site: its schedule plus counters since arming. */
struct Armed
{
    FaultSpec spec;
    SiteStats st;
};

struct Registry
{
    std::mutex mu;
    bool env_consulted = false;
    std::map<std::string, Armed> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

bool
isKnownSite(const std::string &site)
{
    const auto &known = knownSites();
    return std::find_if(known.begin(), known.end(),
                        [&](const char *s) { return site == s; })
        != known.end();
}

/** Publish the armed-site count to the checkpoints' fast path. mu held. */
void
publishCountLocked(Registry &r)
{
    detail::g_armed.store(static_cast<int>(r.sites.size()),
                          std::memory_order_release);
}

/** First-touch: load MVQ_FAULT_PLAN exactly once per process. mu held.
 *  armFromPlan re-locks, so drop and re-take around it via the caller. */
void
consultEnvLocked(Registry &r, std::unique_lock<std::mutex> &lk)
{
    if (r.env_consulted)
        return;
    r.env_consulted = true;
    publishCountLocked(r); // publish 0 now; armFromEnv refreshes below
    lk.unlock();
    armFromEnv();
    lk.lock();
}

/** Count a hit and decide whether it fails. mu held. */
bool
fireLocked(Registry &r, const char *site)
{
    auto it = r.sites.find(site);
    if (it == r.sites.end())
        return false;
    Armed &a = it->second;
    ++a.st.hits;
    const bool fire = (a.spec.nth > 0 && a.st.hits == a.spec.nth)
        || (a.spec.every > 0 && a.st.hits % a.spec.every == 0);
    if (fire)
        ++a.st.fired;
    return fire;
}

void
armOne(const std::string &site, const FaultSpec &spec)
{
    fatalIf(!isKnownSite(site), "fault::arm: unknown site '", site,
            "'; known sites: artifact.open, artifact.operand_borrow, "
            "serve.forward, serve.batcher_stall");
    fatalIf(spec.nth < 0 || spec.every < 0,
            "fault::arm: negative schedule for site '", site, "' (nth=",
            spec.nth, ", every=", spec.every, ")");
    fatalIf((spec.nth > 0) == (spec.every > 0),
            "fault::arm: site '", site, "' needs exactly one of nth=N / "
            "every=K positive (got nth=", spec.nth, ", every=",
            spec.every, ")");
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.sites[site] = Armed{spec, SiteStats{}};
    publishCountLocked(r);
}

} // namespace

namespace detail {

std::atomic<int> g_armed{-1}; // -1: env plan not consulted yet

bool
fireSlow(const char *site)
{
    Registry &r = registry();
    std::unique_lock<std::mutex> lk(r.mu);
    consultEnvLocked(r, lk);
    return fireLocked(r, site);
}

void
checkpointSlow(const char *site, const char *what)
{
    FaultMode mode = FaultMode::Throw;
    std::int64_t hit = 0;
    {
        Registry &r = registry();
        std::unique_lock<std::mutex> lk(r.mu);
        consultEnvLocked(r, lk);
        if (!fireLocked(r, site))
            return;
        const Armed &a = r.sites.find(site)->second;
        mode = a.spec.mode;
        hit = a.st.hits;
    }
    if (mode == FaultMode::Throw)
        throw FaultInjected(mvq::detail::concat(
            "injected fault at ", site, " (hit ", hit, "): ", what));
    fatal(what, ": injected fault at ", site, " (hit ", hit, ")");
}

} // namespace detail

const std::vector<const char *> &
knownSites()
{
    static const std::vector<const char *> sites = {
        kArtifactOpen, kOperandBorrow, kServeForward, kBatcherStall};
    return sites;
}

void
arm(const std::string &site, const FaultSpec &spec)
{
    armOne(site, spec);
}

void
disarm(const std::string &site)
{
    fatalIf(!isKnownSite(site), "fault::disarm: unknown site '", site,
            "'");
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.sites.erase(site);
    publishCountLocked(r);
}

void
resetAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.sites.clear();
    r.env_consulted = true; // the env plan stays off unless re-applied
    publishCountLocked(r);
}

void
armFromPlan(const std::string &plan)
{
    std::size_t pos = 0;
    while (pos <= plan.size()) {
        const std::size_t end = std::min(plan.find(';', pos), plan.size());
        const std::string entry = plan.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        const std::size_t colon = entry.find(':');
        fatalIf(colon == std::string::npos, "MVQ_FAULT_PLAN entry '",
                entry, "' has no schedule; want site:nth=N or "
                "site:every=K (optionally :mode=throw|error)");
        const std::string site = entry.substr(0, colon);
        FaultSpec spec;
        std::size_t fpos = colon + 1;
        while (fpos <= entry.size()) {
            const std::size_t fend =
                std::min(entry.find(':', fpos), entry.size());
            const std::string field = entry.substr(fpos, fend - fpos);
            fpos = fend + 1;
            const auto intField = [&](const char *key) -> std::int64_t {
                const std::string v = field.substr(field.find('=') + 1);
                try {
                    std::size_t used = 0;
                    const long long n = std::stoll(v, &used);
                    if (used == v.size() && n >= 0)
                        return static_cast<std::int64_t>(n);
                } catch (const std::exception &) {
                    // fall through to the diagnostic below
                }
                fatal("MVQ_FAULT_PLAN entry '", entry, "': ", key,
                      "= wants a non-negative integer, got '", v, "'");
            };
            if (field.rfind("nth=", 0) == 0)
                spec.nth = intField("nth");
            else if (field.rfind("every=", 0) == 0)
                spec.every = intField("every");
            else if (field == "mode=throw")
                spec.mode = FaultMode::Throw;
            else if (field == "mode=error")
                spec.mode = FaultMode::Error;
            else
                fatal("MVQ_FAULT_PLAN entry '", entry,
                      "': unrecognized field '", field,
                      "' (want nth=N, every=K, or mode=throw|error)");
        }
        armOne(site, spec);
    }
}

void
armFromEnv()
{
    armFromPlan(env::str("MVQ_FAULT_PLAN", ""));
    // Even an empty plan publishes a non-negative count so the fast
    // path stops deferring to the slow path.
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.env_consulted = true;
    publishCountLocked(r);
}

SiteStats
stats(const std::string &site)
{
    fatalIf(!isKnownSite(site), "fault::stats: unknown site '", site,
            "'");
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? SiteStats{} : it->second.st;
}

} // namespace mvq::fault
