/**
 * @file
 * AVX2/FMA kernel table. This translation unit is compiled with
 * `-mavx2 -mfma` via per-file flags in CMakeLists.txt (x86-64 targets
 * only), so the rest of the library keeps the portable baseline arch and
 * one binary carries both paths; simd_dispatch.cpp only calls in here
 * after cpuid confirms the host executes AVX2+FMA. On non-x86 targets the
 * whole TU compiles to a stub returning nullptr.
 */

#include "common/simd_dispatch.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <limits>

namespace mvq::simd {

namespace {

constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;
static_assert(MR <= kMaxGemmMr && NR <= kMaxGemmNr);

/**
 * 6x16 register tile: 12 accumulator ymm + 2 B vectors + 1 A broadcast
 * stays within the 16 architectural registers. Packed layouts match the
 * scalar kernel (ap[kk*6 + r], bp[kk*16 + c]).
 */
void
gemmMicroAvx2(const float *ap, const float *bp, std::int64_t kc, float *acc)
{
    __m256 c[MR][2];
    for (std::int64_t r = 0; r < MR; ++r) {
        c[r][0] = _mm256_loadu_ps(acc + r * NR);
        c[r][1] = _mm256_loadu_ps(acc + r * NR + 8);
    }
    for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(bp + kk * NR);
        const __m256 b1 = _mm256_loadu_ps(bp + kk * NR + 8);
        const float *arow = ap + kk * MR;
        for (std::int64_t r = 0; r < MR; ++r) {
            const __m256 a = _mm256_broadcast_ss(arow + r);
            c[r][0] = _mm256_fmadd_ps(a, b0, c[r][0]);
            c[r][1] = _mm256_fmadd_ps(a, b1, c[r][1]);
        }
    }
    for (std::int64_t r = 0; r < MR; ++r) {
        _mm256_storeu_ps(acc + r * NR, c[r][0]);
        _mm256_storeu_ps(acc + r * NR + 8, c[r][1]);
    }
}

/**
 * Sparse-A row x packed-B-panel kernel. Unlike the dense tile (12
 * independent accumulator chains), one compressed row has no mr
 * dimension to hide FMA latency behind, so the accumulators are striped
 * 4-way across *entries*: entry q feeds chain q % 4, giving 8 independent
 * FMA chains (4 stripes x 2 halves of the 16-wide panel); the stripes
 * fold together at the end. Each kept A entry broadcasts once and FMAs
 * against its matching packed B row — pruned positions cost nothing.
 */
void
gemmSparseMicroAvx2(const float *vals, const std::int32_t *kidx,
                    std::int64_t nnz, std::int64_t k0, const float *bp,
                    std::int64_t /*nr*/, float *acc)
{
    __m256 c0[4], c1[4];
    c0[0] = _mm256_loadu_ps(acc);
    c1[0] = _mm256_loadu_ps(acc + 8);
    for (int u = 1; u < 4; ++u) {
        c0[u] = _mm256_setzero_ps();
        c1[u] = _mm256_setzero_ps();
    }
    std::int64_t q = 0;
    for (; q + 4 <= nnz; q += 4) {
        for (int u = 0; u < 4; ++u) {
            const __m256 v = _mm256_broadcast_ss(vals + q + u);
            const float *brow = bp + (kidx[q + u] - k0) * NR;
            c0[u] = _mm256_fmadd_ps(v, _mm256_loadu_ps(brow), c0[u]);
            c1[u] = _mm256_fmadd_ps(v, _mm256_loadu_ps(brow + 8), c1[u]);
        }
    }
    for (; q < nnz; ++q) {
        const __m256 v = _mm256_broadcast_ss(vals + q);
        const float *brow = bp + (kidx[q] - k0) * NR;
        c0[0] = _mm256_fmadd_ps(v, _mm256_loadu_ps(brow), c0[0]);
        c1[0] = _mm256_fmadd_ps(v, _mm256_loadu_ps(brow + 8), c1[0]);
    }
    _mm256_storeu_ps(acc,
                     _mm256_add_ps(_mm256_add_ps(c0[0], c0[1]),
                                   _mm256_add_ps(c0[2], c0[3])));
    _mm256_storeu_ps(acc + 8,
                     _mm256_add_ps(_mm256_add_ps(c1[0], c1[1]),
                                   _mm256_add_ps(c1[2], c1[3])));
}

/**
 * Multi-row sparse tile kernel body for a compile-time row count: R x 2
 * accumulator ymm + 2 shared B vectors + 1 value broadcast stays within
 * the 16 architectural registers up to R = kSparseMultiRowMr = 4. The
 * payoff over the single-row kernel is the load-port balance: per shared
 * column the tile issues 2 B loads + R broadcasts for 2R FMAs, versus the
 * single-row path's 2 B loads + 1 broadcast per 2 FMAs — the same packed
 * B row feeds R accumulator rows instead of one, and the R x 2 chains
 * hide FMA latency without entry striping.
 */
template <int R>
void
sparseMultiRowTileAvx2(const float *vals, std::int64_t vstride,
                       const std::int32_t *kidx, std::int64_t nnz,
                       std::int64_t k0, const float *bp, float *acc)
{
    // Named accumulators, not a c[R][2] array: gcc keeps a stack home for
    // the array and re-stores every accumulator each iteration (8 dead
    // 32-byte stores per shared column for R = 4), roughly doubling the
    // loop's port pressure. Individual __m256 locals scalarize cleanly.
    // Overwrite contract: accumulators start at zero and the final store
    // replaces acc — cross-K-block accumulation happens at the driver's
    // C scatter, so the kernel never reads acc.
    __m256 c00 = _mm256_setzero_ps();
    __m256 c01 = _mm256_setzero_ps();
    __m256 c10 = c00, c11 = c00, c20 = c00, c21 = c00, c30 = c00,
           c31 = c00;
    // The shared-column pattern walks the packed panel at irregular
    // multi-KiB strides the hardware prefetcher cannot follow, and the
    // panel is sized for L2, not L1 — kidx makes the future addresses
    // exact, so prefetch a fixed distance ahead (one cache line covers
    // the whole NR-float row).
    constexpr std::int64_t PF = 12;
    for (std::int64_t q = 0; q < nnz; ++q) {
        if (q + PF < nnz)
            _mm_prefetch(reinterpret_cast<const char *>(
                             bp + (kidx[q + PF] - k0) * NR),
                         _MM_HINT_T0);
        const float *brow = bp + (kidx[q] - k0) * NR;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 v0 = _mm256_broadcast_ss(vals + q);
        c00 = _mm256_fmadd_ps(v0, b0, c00);
        c01 = _mm256_fmadd_ps(v0, b1, c01);
        if constexpr (R > 1) {
            const __m256 v1 = _mm256_broadcast_ss(vals + vstride + q);
            c10 = _mm256_fmadd_ps(v1, b0, c10);
            c11 = _mm256_fmadd_ps(v1, b1, c11);
        }
        if constexpr (R > 2) {
            const __m256 v2 = _mm256_broadcast_ss(vals + 2 * vstride + q);
            c20 = _mm256_fmadd_ps(v2, b0, c20);
            c21 = _mm256_fmadd_ps(v2, b1, c21);
        }
        if constexpr (R > 3) {
            const __m256 v3 = _mm256_broadcast_ss(vals + 3 * vstride + q);
            c30 = _mm256_fmadd_ps(v3, b0, c30);
            c31 = _mm256_fmadd_ps(v3, b1, c31);
        }
    }
    _mm256_storeu_ps(acc, c00);
    _mm256_storeu_ps(acc + 8, c01);
    if constexpr (R > 1) {
        _mm256_storeu_ps(acc + NR, c10);
        _mm256_storeu_ps(acc + NR + 8, c11);
    }
    if constexpr (R > 2) {
        _mm256_storeu_ps(acc + 2 * NR, c20);
        _mm256_storeu_ps(acc + 2 * NR + 8, c21);
    }
    if constexpr (R > 3) {
        _mm256_storeu_ps(acc + 3 * NR, c30);
        _mm256_storeu_ps(acc + 3 * NR + 8, c31);
    }
}

void
gemmSparseMultiRowAvx2(const float *vals, std::int64_t vstride,
                       std::int64_t mrows, const std::int32_t *kidx,
                       std::int64_t nnz, std::int64_t k0, const float *bp,
                       std::int64_t /*nr*/, float *acc)
{
    switch (mrows) {
      case 4:
        sparseMultiRowTileAvx2<4>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
      case 3:
        sparseMultiRowTileAvx2<3>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
      case 2:
        sparseMultiRowTileAvx2<2>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
      default:
        sparseMultiRowTileAvx2<1>(vals, vstride, kidx, nnz, k0, bp, acc);
        break;
    }
}

/**
 * Track the running 8-lane minimum: lane u of (vbest, vbi) holds the best
 * distance and its codeword index among strips processed so far. Strictly-
 * less blending keeps the earliest index within a lane, matching the
 * scalar first-minimum scan.
 */
inline void
argminStep(__m256 s, __m256i curi, __m256 &vbest, __m256i &vbi)
{
    const __m256 lt = _mm256_cmp_ps(s, vbest, _CMP_LT_OQ);
    vbest = _mm256_blendv_ps(vbest, s, lt);
    vbi = _mm256_castps_si256(_mm256_blendv_ps(
        _mm256_castsi256_ps(vbi), _mm256_castsi256_ps(curi), lt));
}

/**
 * Fold the 8 lanes to one (value, index), then continue the scan over the
 * scalar tail [k8, k) against the row-major codebook. Lane ties resolve to
 * the lower codeword index so results match the scalar kernels exactly.
 */
std::int32_t
argminFinish(__m256 vbest, __m256i vbi, float &best)
{
    float bv[8];
    std::int32_t bi[8];
    _mm256_storeu_ps(bv, vbest);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(bi), vbi);
    best = bv[0];
    std::int32_t best_i = bi[0];
    for (int u = 1; u < 8; ++u) {
        if (bv[u] < best || (bv[u] == best && bi[u] < best_i)) {
            best = bv[u];
            best_i = bi[u];
        }
    }
    return best_i;
}

// NOTE: no file-scope __m256 constants — a dynamic initializer in this TU
// would execute AVX instructions at program load, before the cpuid gate.
std::int32_t
assignBestDenseAvx2(const float *wrow, const float *mrow, const float *cb,
                    const float *cbT, std::int64_t k, std::int64_t d)
{
    // Each 8-lane strip of the transposed codebook evaluates 8 codewords
    // at once: broadcast one (weight, mask) position, load the codeword
    // strip at that position, accumulate the masked squared difference.
    const std::int64_t k8 = k - k % 8;
    const __m256i kLaneIota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256 vbest = _mm256_set1_ps(std::numeric_limits<float>::max());
    __m256i vbi = _mm256_setzero_si256();
    for (std::int64_t i = 0; i < k8; i += 8) {
        __m256 s = _mm256_setzero_ps();
        for (std::int64_t t = 0; t < d; ++t) {
            const __m256 df = _mm256_sub_ps(
                _mm256_broadcast_ss(wrow + t),
                _mm256_loadu_ps(cbT + t * k + i));
            const __m256 dm =
                _mm256_mul_ps(df, _mm256_broadcast_ss(mrow + t));
            s = _mm256_fmadd_ps(dm, df, s);
        }
        const __m256i curi = _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(i)), kLaneIota);
        argminStep(s, curi, vbest, vbi);
    }

    float best;
    std::int32_t best_i = argminFinish(vbest, vbi, best);
    for (std::int64_t i = k8; i < k; ++i) {
        const float *crow = cb + i * d;
        float s = 0.0f;
        for (std::int64_t t = 0; t < d; ++t) {
            const float diff = wrow[t] - crow[t];
            s += mrow[t] * diff * diff;
        }
        if (s < best) {
            best = s;
            best_i = static_cast<std::int32_t>(i);
        }
    }
    return best_i;
}

std::int32_t
assignBestSparseAvx2(const float *wkeep, const std::int32_t *idx,
                     std::int64_t nk, const float *cb, const float *cbT,
                     std::int64_t k, std::int64_t d)
{
    // Same strip walk as the dense kernel, but only the nk kept positions
    // contribute — the transposed layout turns the compressed-row scan
    // into contiguous loads (no gathers, no per-codeword horizontal sums).
    const std::int64_t k8 = k - k % 8;
    const __m256i kLaneIota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256 vbest = _mm256_set1_ps(std::numeric_limits<float>::max());
    __m256i vbi = _mm256_setzero_si256();
    for (std::int64_t i = 0; i < k8; i += 8) {
        __m256 s = _mm256_setzero_ps();
        for (std::int64_t q = 0; q < nk; ++q) {
            const __m256 df = _mm256_sub_ps(
                _mm256_broadcast_ss(wkeep + q),
                _mm256_loadu_ps(cbT + idx[q] * k + i));
            s = _mm256_fmadd_ps(df, df, s);
        }
        const __m256i curi = _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(i)), kLaneIota);
        argminStep(s, curi, vbest, vbi);
    }

    float best;
    std::int32_t best_i = argminFinish(vbest, vbi, best);
    for (std::int64_t i = k8; i < k; ++i) {
        const float *crow = cb + i * d;
        float s = 0.0f;
        for (std::int64_t q = 0; q < nk; ++q) {
            const float diff = wkeep[q] - crow[idx[q]];
            s += diff * diff;
        }
        if (s < best) {
            best = s;
            best_i = static_cast<std::int32_t>(i);
        }
    }
    return best_i;
}

constexpr Kernels kAvx2Kernels = {
    Isa::Avx2, "avx2", MR, NR, &gemmMicroAvx2, &gemmSparseMicroAvx2,
    &gemmSparseMultiRowAvx2, &assignBestDenseAvx2, &assignBestSparseAvx2,
};

} // namespace

const Kernels *
avx2KernelsOrNull()
{
    return &kAvx2Kernels;
}

} // namespace mvq::simd

#else // non-x86 target or TU built without AVX2+FMA flags

namespace mvq::simd {

const Kernels *
avx2KernelsOrNull()
{
    return nullptr;
}

} // namespace mvq::simd

#endif
