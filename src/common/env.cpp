#include "common/env.hpp"

#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/logging.hpp"

namespace mvq::env {

namespace {

// ------------------------------------------------------------ the registry
//
// Every MVQ_* environment variable any binary in this repo reads. The
// linter (scripts/mvq_lint.py) cross-checks this table against the quoted
// MVQ_* literals in the tree and against README's knob table, so adding a
// knob anywhere without registering *and* documenting it fails CI.

const Knob kKnobs[] = {
    {"MVQ_NUM_THREADS", "int", "hardware concurrency",
     "worker count for the shared thread pool (bit-identical results for "
     "any value)"},
    {"MVQ_SIMD", "string", "auto-detect",
     "force a SIMD kernel path: scalar|avx2|neon (unavailable requests "
     "warn and fall back)"},
    {"MVQ_FUSED_CONV", "flag", "on",
     "fused im2col->B-panel conv forward path; 0/off materializes the "
     "cols tensor instead (bit-identical per ISA)"},
    {"MVQ_SPARSE_MULTIROW", "flag", "on",
     "multi-row sparse micro-kernel; 0/off falls back to the single-row "
     "sparse gemm bit-identically"},
    {"MVQ_MVQI_NO_MMAP", "flag", "off",
     "load .mvqi images through the 64-byte-aligned heap fallback instead "
     "of mmap"},
    {"MVQ_SERVE_MAX_BATCH", "int", "8",
     "serving batcher launches a batched forward once this many images "
     "are queued (1 disables coalescing)"},
    {"MVQ_SERVE_DEADLINE_US", "int", "2000",
     "serving batcher launches a partial batch once the oldest queued "
     "image has waited this many microseconds (0 = never hold a request)"},
    {"MVQ_SERVE_MAX_QUEUE", "int", "1024",
     "serving admission-queue depth cap; over-limit submits are shed "
     "fast with a typed QueueFull rejection"},
    {"MVQ_SERVE_REQUEST_TIMEOUT_US", "int", "0 (no deadline)",
     "default per-request deadline in microseconds; expired requests "
     "are dropped before the forward with a DeadlineExpired error"},
    {"MVQ_SERVE_FAIL_THRESHOLD", "int", "8",
     "consecutive failed batches before serving health goes Failed and "
     "the server stops admitting"},
    {"MVQ_FAULT_PLAN", "string", "(none)",
     "deterministic fault-injection plan, e.g. 'serve.forward:nth=2;"
     "artifact.open:every=3:mode=error' (see common/fault.hpp)"},
    {"MVQ_ENV_HELP", "flag", "off",
     "print this knob table to stderr on the first environment read"},
    {"MVQ_BENCH_FAST", "flag", "off",
     "shrink bench sweeps for smoke runs"},
    {"MVQ_BENCH_JSON", "string", "(none)",
     "append JSON-lines perf records to this path (also --json)"},
    {"MVQ_BENCH_GATE_MIN_SPEEDUP", "real", "0 (gate off)",
     "micro_kernels exits nonzero below this fused sparse-vs-dense avx2 "
     "speedup floor"},
    {"MVQ_BENCH_GATE_MIN_LOAD_SPEEDUP", "real", "0 (gate off)",
     "model_load exits nonzero below this mmap-vs-stream cold-load "
     "speedup floor"},
    {"MVQ_BENCH_GATE_MIN_IMAGES_PER_SEC", "real", "0 (gate off)",
     "serve_load exits nonzero below this sustained images/s floor at "
     "the highest client count"},
    {"MVQ_WRITE_GOLDEN", "flag", "off",
     "model_artifact_test regenerates tests/data/golden_v1.mvqi instead "
     "of checking against it"},
};

const Knob *
findKnob(const std::string &name)
{
    for (const Knob &k : kKnobs)
        if (name == k.name)
            return &k;
    return nullptr;
}

/**
 * Raw-value cache: one std::getenv per knob for the process lifetime.
 * Guarded by a mutex so the first touch from N threads stays a single
 * read and every later touch sees the same snapshot.
 */
struct Registry
{
    std::mutex mu;
    std::map<std::string, std::optional<std::string>> raw;
    bool help_emitted = false;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

void
emitHelpOnceLocked(Registry &r)
{
    if (r.help_emitted)
        return;
    r.help_emitted = true;
    // Direct getenv: MVQ_ENV_HELP gates the dump itself, so it cannot go
    // through the accessors without recursing into this function.
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — serialized by registry mutex
    const char *v = std::getenv("MVQ_ENV_HELP");
    if (v != nullptr && std::string(v) == "1")
        std::cerr << helpText();
}

std::optional<std::string>
rawValue(const std::string &name)
{
    panicIf(findKnob(name) == nullptr, "env knob ", name,
            " is not in the registry table (src/common/env.cpp); register "
            "it there and document it in README's knob table");
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    emitHelpOnceLocked(r);
    auto it = r.raw.find(name);
    if (it == r.raw.end()) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe) — serialized by registry mutex
        const char *v = std::getenv(name.c_str());
        it = r.raw
                 .emplace(name, v != nullptr
                                    ? std::optional<std::string>(v)
                                    : std::nullopt)
                 .first;
    }
    return it->second;
}

} // namespace

bool
flag(const std::string &name, bool def)
{
    const std::optional<std::string> v = rawValue(name);
    if (!v || v->empty())
        return def;
    if (*v == "0" || *v == "off" || *v == "false" || *v == "no")
        return false;
    if (*v == "1" || *v == "on" || *v == "true" || *v == "yes")
        return true;
    warn(name, "=", *v, " not recognized (want 0|off|false|no or "
         "1|on|true|yes); using default");
    return def;
}

std::int64_t
int_(const std::string &name, std::int64_t def)
{
    const std::optional<std::string> v = rawValue(name);
    if (!v || v->empty())
        return def;
    try {
        std::size_t pos = 0;
        const long long n = std::stoll(*v, &pos);
        if (pos == v->size())
            return static_cast<std::int64_t>(n);
    } catch (const std::exception &) {
        // fall through to the warning
    }
    warn(name, "=", *v, " is not an integer; using default");
    return def;
}

double
real(const std::string &name, double def)
{
    const std::optional<std::string> v = rawValue(name);
    if (!v || v->empty())
        return def;
    try {
        std::size_t pos = 0;
        const double x = std::stod(*v, &pos);
        if (pos == v->size())
            return x;
    } catch (const std::exception &) {
        // fall through to the warning
    }
    warn(name, "=", *v, " is not a number; using default");
    return def;
}

std::string
str(const std::string &name, const std::string &def)
{
    const std::optional<std::string> v = rawValue(name);
    return v ? *v : def;
}

bool
isSet(const std::string &name)
{
    return rawValue(name).has_value();
}

const std::vector<Knob> &
knownKnobs()
{
    static const std::vector<Knob> table(std::begin(kKnobs),
                                         std::end(kKnobs));
    return table;
}

std::string
helpText()
{
    std::ostringstream os;
    os << "MVQ environment knobs (MVQ_ENV_HELP=1 prints this table):\n";
    for (const Knob &k : kKnobs) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe) — display-only readback
        const char *cur = std::getenv(k.name);
        os << "  " << k.name << " [" << k.type << ", default " << k.def
           << "]";
        if (cur != nullptr)
            os << " = \"" << cur << "\"";
        os << "\n    " << k.description << "\n";
    }
    return os.str();
}

} // namespace mvq::env
