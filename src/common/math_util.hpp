/**
 * @file
 * Small integer/combinatorial helpers shared across the code base.
 */

#ifndef MVQ_COMMON_MATH_UTIL_HPP
#define MVQ_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <vector>

namespace mvq {

/** @return ceil(a / b) for positive integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** @return smallest e such that 2^e >= v (v >= 1). log2Ceil(1) == 0. */
int log2Ceil(std::uint64_t v);

/** @return true when v is a power of two (v >= 1). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return C(n, k), the binomial coefficient; 0 when k > n. */
std::uint64_t binomial(int n, int k);

/**
 * Rank a k-combination of {0..n-1} in colexicographic order.
 *
 * @param n      Universe size.
 * @param members Sorted ascending positions of the k set members.
 * @return rank in [0, C(n,k)).
 */
std::uint64_t combinationRank(int n, const std::vector<int> &members);

/**
 * Inverse of combinationRank: recover the sorted member positions.
 *
 * @param n    Universe size.
 * @param k    Combination size.
 * @param rank Rank in [0, C(n,k)).
 */
std::vector<int> combinationUnrank(int n, int k, std::uint64_t rank);

/** Population count of a 64-bit word. */
int popcount64(std::uint64_t v);

/** @return mean of a vector (0 for empty). */
double mean(const std::vector<double> &v);

} // namespace mvq

#endif // MVQ_COMMON_MATH_UTIL_HPP
