/**
 * @file
 * Runtime SIMD dispatch for the hot kernels. One portable binary carries a
 * scalar path plus per-ISA translation units (AVX2/FMA on x86-64, NEON on
 * aarch64) compiled with per-file arch flags; the active table is resolved
 * once at startup from CPU feature detection (cpuid on x86, compile-time
 * on aarch64) with an `MVQ_SIMD=scalar|avx2|neon` environment override.
 *
 * Detection order: MVQ_SIMD override (falling back with a warning when the
 * requested ISA is unavailable on this host/build), then NEON (baseline on
 * aarch64), then AVX2+FMA (requires OS YMM state via xgetbv), then scalar.
 *
 * Determinism: the dispatch choice never affects parallel chunking, so the
 * bit-identical-across-thread-counts contract (see common/parallel.hpp)
 * holds *within* any given ISA. Different ISAs reorder floating-point
 * accumulation and may differ in final ULPs; tests/simd_dispatch_test.cpp
 * pins the cross-ISA tolerance.
 */

#ifndef MVQ_COMMON_SIMD_DISPATCH_HPP
#define MVQ_COMMON_SIMD_DISPATCH_HPP

#include <cstdint>

namespace mvq::simd {

/** Instruction-set architectures a build can carry kernels for. */
enum class Isa
{
    Scalar = 0, //!< portable C++ (whatever the baseline arch flags allow)
    Avx2 = 1,   //!< x86-64 AVX2 + FMA, runtime-detected via cpuid
    Neon = 2,   //!< aarch64 Advanced SIMD (baseline on that target)
};

/** Upper bounds on micro-kernel register-tile dims across all ISAs; the
 *  gemm driver sizes its on-stack accumulator with these. */
constexpr std::int64_t kMaxGemmMr = 8;
constexpr std::int64_t kMaxGemmNr = 16;

/**
 * Row count of the multi-row sparse register tile
 * (gemmSparseMultiRowMicroKernel): up to this many compressed A rows
 * sharing one column pattern accumulate against each packed B row load.
 * 4 matches both the AVX2 budget (4 x 2 accumulator ymm + 2 B vectors +
 * 1 broadcast) and the N of the default 4:16 pattern, where one mask code
 * keeps exactly 4 rows of an M-row block.
 */
constexpr std::int64_t kSparseMultiRowMr = 4;

/**
 * Cache-blocking parameters of the blocked gemm drivers (dense and
 * sparse-A) in tensor/ops.cpp. A driver iteration packs one KC x NC block
 * of op(B) into nr-column panels (nr from the active table, so a panel is
 * kGemmKC x nr floats at most) and one MC x KC block of op(A) into mr-row
 * panels. Exposed here because B-panel *producers* — packB and the fused
 * packBFromIm2col in tensor/ops — and the tests/benches that pick shapes
 * straddling block boundaries all need the same constants the drivers
 * block with.
 */
constexpr std::int64_t kGemmMC = 64;   //!< rows of C per packed A block
constexpr std::int64_t kGemmKC = 256;  //!< depth of one packed K block
constexpr std::int64_t kGemmNC = 2048; //!< columns of C per packed B block

/**
 * One ISA's kernel table. All function pointers are non-null; ISAs without
 * a native variant of some kernel point at the scalar implementation.
 */
struct Kernels
{
    Isa isa;
    const char *name; //!< "scalar", "avx2", "neon"

    // --- GEMM register-tile micro-kernel --------------------------------
    std::int64_t mr; //!< rows of the register tile
    std::int64_t nr; //!< columns of the register tile
    /**
     * acc[mr x nr, row stride nr] += Ap panel * Bp panel over kc steps,
     * with the packed layouts ap[kk*mr + r], bp[kk*nr + c] produced by the
     * driver in tensor/ops.cpp (alpha pre-applied to Ap, zero padding past
     * the tile edges).
     */
    void (*gemmMicroKernel)(const float *ap, const float *bp,
                            std::int64_t kc, float *acc);

    /**
     * Sparse-A register-tile kernel for gemmSparseA (tensor/ops.cpp): one
     * compressed row of A meets one packed B panel. The row's nnz kept
     * entries arrive as values vals[] with ascending absolute column
     * indices kidx[] (all within [k0, k0 + kc) of the current K block);
     * bp is the driver's packed panel (bp[kk*nr + c] = B(k0 + kk, jq + c),
     * the same layout packB produces for the dense kernel), and the kernel
     * accumulates acc[c] += vals[q] * bp[(kidx[q] - k0)*nr + c] over the
     * nnz entries for c in [0, nr). nr is passed explicitly so one scalar
     * implementation can serve tables with different tile widths.
     */
    void (*gemmSparseMicroKernel)(const float *vals, const std::int32_t *kidx,
                                  std::int64_t nnz, std::int64_t k0,
                                  const float *bp, std::int64_t nr,
                                  float *acc);

    /**
     * Multi-row sparse tile kernel for the grouped operand (see
     * GroupedSparseMatrix in tensor/ops.hpp): `mrows` compressed rows of A
     * (1 <= mrows <= kSparseMultiRowMr) share one ascending column pattern
     * kidx[0..nnz) (all within [k0, k0 + kc)); row r's kept values live at
     * vals[r*vstride + q]. OVERWRITES the tile:
     *   acc[r*nr + c] = sum_q vals[r*vstride + q] * bp[(kidx[q] - k0)*nr + c]
     * over the nnz shared entries for r in [0, mrows), c in [0, nr) —
     * acc is never read, so callers skip zero-filling it; cross-K-block
     * accumulation is the caller's job (the grouped driver folds each
     * tile contribution into C at its scatter). This
     * is the kernel that realizes MVQ's "one operand fetch serves many
     * accumulations" on the CPU: each packed B row loads once per tile
     * instead of once per row, amortizing the B-side traffic the
     * single-row kernel pays per entry.
     */
    void (*gemmSparseMultiRowMicroKernel)(const float *vals,
                                          std::int64_t vstride,
                                          std::int64_t mrows,
                                          const std::int32_t *kidx,
                                          std::int64_t nnz, std::int64_t k0,
                                          const float *bp, std::int64_t nr,
                                          float *acc);

    // --- Masked-assignment distance kernels (core/masked_kmeans) --------
    //
    // Both variants receive the codebook twice: row-major cb[i*d + t] and
    // transposed cbT[t*k + i]. Vector paths stride the transposed layout
    // to evaluate a full lane-width of codewords per instruction — no
    // gathers, no per-codeword horizontal sums — and fall back to cb for
    // the k % lanes tail; the scalar kernels ignore cbT. Ties resolve to
    // the lowest codeword index, matching the scalar first-minimum scan
    // (FMA contraction can still round a near-exact tie differently in
    // the last ULP across ISAs; cross-ISA agreement is a tested property
    // on real data, not a bitwise guarantee).
    /**
     * Full-row branchless variant: return the index i in [0, k) minimizing
     * sum_t mrow[t] * (wrow[t] - cb[i*d + t])^2 (first minimum wins).
     */
    std::int32_t (*assignBestDense)(const float *wrow, const float *mrow,
                                    const float *cb, const float *cbT,
                                    std::int64_t k, std::int64_t d);
    /**
     * Sparse compressed-row variant: the row's nk kept positions arrive as
     * ascending column indices idx[] with values wkeep[]. Returns the
     * index minimizing sum_q (wkeep[q] - cb[i*d + idx[q]])^2 over the
     * kept positions.
     */
    std::int32_t (*assignBestSparse)(const float *wkeep,
                                     const std::int32_t *idx,
                                     std::int64_t nk, const float *cb,
                                     const float *cbT, std::int64_t k,
                                     std::int64_t d);
};

/** @return true when this build carries the ISA and the CPU/OS supports it. */
bool isaAvailable(Isa isa);

/** Best ISA this host can run, ignoring any override: the detection order
 *  documented at the top of this file minus the env knob. */
Isa bestAvailableIsa();

/** Human-readable ISA name ("scalar", "avx2", "neon"). */
const char *isaName(Isa isa);

/**
 * The active kernel table. First call resolves the choice (env override,
 * then detection), logs it once via common/logging, and caches it; later
 * calls are a single atomic load. Thread-safe.
 */
const Kernels &kernels();

/** ISA of the active kernel table. */
Isa activeIsa();

/**
 * Programmatic override (the in-process form of MVQ_SIMD, used by tests
 * and benches to force a path). Returns false — leaving the active table
 * unchanged — when the ISA is unavailable. Call between kernel
 * invocations only; switching mid-gemm is undefined.
 */
bool setIsa(Isa isa);

// ----------------------------------------------------------------- internal
// Per-ISA registration, linked from the per-arch translation units. Each
// accessor returns nullptr when the build does not carry that ISA (e.g.
// the AVX2 TU compiles to a stub on aarch64). Not part of the public API.
const Kernels &scalarKernels();
const Kernels *avx2KernelsOrNull();
const Kernels *neonKernelsOrNull();

} // namespace mvq::simd

#endif // MVQ_COMMON_SIMD_DISPATCH_HPP
