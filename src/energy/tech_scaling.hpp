/**
 * @file
 * Process normalization following Stillmaker & Baas, "Scaling equations
 * for the accurate prediction of CMOS device performance from 180 nm to
 * 7 nm" (Integration 58, 2017), which the paper cites for Table 9's
 * normalized-efficiency row. The factors below convert an energy
 * efficiency measured at a given node to its 40 nm equivalent.
 */

#ifndef MVQ_ENERGY_TECH_SCALING_HPP
#define MVQ_ENERGY_TECH_SCALING_HPP

namespace mvq::energy {

/**
 * Multiplier applied to TOPS/W measured at `node_nm` to express it at
 * 40 nm. Nodes smaller than 40 nm are penalized (their energy advantage
 * is removed); larger nodes are boosted.
 *
 * Supported nodes: 16, 28, 40, 45, 65 (fatal otherwise).
 */
double efficiencyTo40nm(int node_nm);

/** Energy-per-op ratio of `node_nm` relative to 40 nm (inverse factor). */
double energyRatioVs40nm(int node_nm);

} // namespace mvq::energy

#endif // MVQ_ENERGY_TECH_SCALING_HPP
