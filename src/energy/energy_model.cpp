#include "energy/energy_model.hpp"

namespace mvq::energy {

EnergyBreakdown
energyFromCounters(const sim::Counters &c, const EnergyCosts &costs)
{
    EnergyBreakdown e;
    e.mac = static_cast<double>(c.macs) * costs.mac
        + static_cast<double>(c.gated_macs) * costs.gated_mac;
    e.rf = static_cast<double>(c.wrf_reads + c.wrf_writes)
            * costs.wrf_per_access
        + static_cast<double>(c.arf_reads + c.arf_writes)
            * costs.arf_per_access
        + static_cast<double>(c.prf_reads + c.prf_writes)
            * costs.prf_per_access
        + static_cast<double>(c.crf_reads + c.crf_writes)
            * costs.crf_per_access
        + static_cast<double>(c.mrf_reads + c.mrf_writes)
            * costs.mrf_per_access;
    e.l1 = static_cast<double>(c.l1_read_bytes + c.l1_write_bytes)
        * costs.l1_per_byte;
    e.l2 = static_cast<double>(c.l2_read_bytes + c.l2_write_bytes)
        * costs.l2_per_byte;
    e.dram = static_cast<double>(c.dram_read_bytes + c.dram_write_bytes)
        * costs.dram_per_byte;
    return e;
}

namespace {

/** Fixed system power (CPU, DMA, interconnect, IO) by array size, mW. */
double
otherPowerMw(const sim::AccelConfig &cfg)
{
    if (cfg.array_h <= 16)
        return 10.0;
    if (cfg.array_h <= 32)
        return 13.0;
    return 18.0;
}

} // namespace

PowerBreakdown
powerBreakdown(const perf::NetworkPerf &perf, const sim::AccelConfig &cfg,
               const EnergyCosts &costs)
{
    const EnergyBreakdown e = energyFromCounters(perf.totals, costs);
    const double pj = costs.mac_energy_pj;
    const double seconds = perf.seconds;

    PowerBreakdown p;
    // units * pJ / s = pW -> convert to mW.
    p.accel_mw = e.accel() * pj / seconds * 1e-9;
    p.l1_mw = e.l1 * pj / seconds * 1e-9;
    p.l2_mw = e.l2 * pj / seconds * 1e-9;
    p.other_mw = otherPowerMw(cfg);
    return p;
}

double
topsPerWatt(const perf::NetworkPerf &perf, const sim::AccelConfig &cfg,
            const EnergyCosts &costs)
{
    const EnergyBreakdown e = energyFromCounters(perf.totals, costs);
    const double other_j = otherPowerMw(cfg) * 1e-3 * perf.seconds;
    const double joules = e.onChip() * costs.mac_energy_pj * 1e-12
        + other_j;
    const double ops = 2.0 * static_cast<double>(perf.dense_macs);
    return ops / joules / 1e12;
}

double
dataAccessEnergy(const perf::NetworkPerf &perf, const EnergyCosts &costs)
{
    const EnergyBreakdown e = energyFromCounters(perf.totals, costs);
    return e.dram + e.l2 + e.l1 + e.rf;
}

} // namespace mvq::energy
