/**
 * @file
 * Analytic area model (paper Tables 2 and 7). Resource counts follow
 * Table 2 exactly; unit areas are 40 nm constants calibrated against the
 * paper's DC-synthesis areas in Table 7 (see the constants' comments).
 */

#ifndef MVQ_ENERGY_AREA_MODEL_HPP
#define MVQ_ENERGY_AREA_MODEL_HPP

#include <cstdint>
#include <string>

#include "sim/accel_config.hpp"

namespace mvq::energy {

/** Resource inventory of one H x d tile (paper Table 2). */
struct TileResources
{
    std::int64_t multipliers = 0;
    std::int64_t adders = 0;
    std::int64_t rf_bits = 0;     //!< WRF (+MRF for the sparse tile)
    std::int64_t lzc_units = 0;
    std::int64_t demux_bits = 0;
    std::int64_t mux_bits = 0;
    std::int64_t parallelism = 0; //!< ops per cycle (2 * H * d both ways)
};

/** Table 2 resource counts for a dense EWS tile. */
TileResources denseTileResources(std::int64_t h, std::int64_t d,
                                 std::int64_t wrf_depth,
                                 std::int64_t weight_bits,
                                 std::int64_t psum_bits);

/** Table 2 resource counts for the EWS-Sparse tile. */
TileResources sparseTileResources(std::int64_t h, std::int64_t d,
                                  std::int64_t q, std::int64_t wrf_depth,
                                  std::int64_t weight_bits,
                                  std::int64_t psum_bits);

/** Area components of a full accelerator (paper Table 7 rows), mm^2. */
struct AreaBreakdown
{
    double array_mm2 = 0.0; //!< systolic array incl. per-PE RFs
    double crf_mm2 = 0.0;   //!< codebook register file (VQ settings)
    double l1_mm2 = 0.0;
    double l2_mm2 = 0.0;
    double other_mm2 = 0.0; //!< DMA, peripherals, interconnect

    double
    accel_mm2() const
    {
        return array_mm2 + crf_mm2;
    }

    double
    total_mm2() const
    {
        return accel_mm2() + l1_mm2 + l2_mm2 + other_mm2;
    }
};

/** Area of a configured accelerator. */
AreaBreakdown accelArea(const sim::AccelConfig &cfg);

/** Tile area in mm^2 from a resource inventory. */
double tileArea(const TileResources &res);

} // namespace mvq::energy

#endif // MVQ_ENERGY_AREA_MODEL_HPP
