/**
 * @file
 * Energy model built on the paper's Table 8 normalized access costs
 * (unit = one MAC operation): DRAM 200, L2 15, L1 6, PRF 0.22, ARF 0.11,
 * WRF 0.02, CRF 0.02 (we use the CRF cost for the MRF as well — both are
 * small register files of similar width). Memory costs are per byte;
 * register-file costs are per word access; a zero-gated MAC retains a
 * small residual switching cost.
 */

#ifndef MVQ_ENERGY_ENERGY_MODEL_HPP
#define MVQ_ENERGY_ENERGY_MODEL_HPP

#include <string>

#include "perf/network_perf.hpp"
#include "sim/counters.hpp"

namespace mvq::energy {

/** Normalized access costs (Table 8). */
struct EnergyCosts
{
    double mac = 1.0;
    double gated_mac = 0.1; //!< residual cost of a gated MAC slot
    double dram_per_byte = 200.0;
    double l2_per_byte = 15.0;
    double l1_per_byte = 6.0;
    double prf_per_access = 0.22;
    double arf_per_access = 0.11;
    double wrf_per_access = 0.02;
    double crf_per_access = 0.02;
    double mrf_per_access = 0.02;

    /**
     * Absolute energy of one MAC in picojoules (40 nm, 0.99 V int8 MAC
     * plus local control). Calibrated so the EWS baseline lands in the
     * paper's Fig. 19 TOPS/W range.
     */
    double mac_energy_pj = 0.70;
};

/** Energy breakdown in normalized MAC units. */
struct EnergyBreakdown
{
    double mac = 0.0;       //!< useful + gated MAC energy
    double rf = 0.0;        //!< WRF + ARF + PRF + CRF + MRF
    double l1 = 0.0;
    double l2 = 0.0;
    double dram = 0.0;

    double
    accel() const
    {
        return mac + rf; //!< the paper's "Accel" (array + RFs)
    }

    double
    onChip() const
    {
        return mac + rf + l1 + l2;
    }

    double
    total() const
    {
        return onChip() + dram;
    }
};

/** Energy from a counter set. */
EnergyBreakdown energyFromCounters(const sim::Counters &c,
                                   const EnergyCosts &costs);

/** Power split matching paper Fig. 16 (Accel / L1 / L2 / Other). */
struct PowerBreakdown
{
    double accel_mw = 0.0;
    double l1_mw = 0.0;
    double l2_mw = 0.0;
    double other_mw = 0.0; //!< CPU, DMA, interfaces, IO

    double
    total_mw() const
    {
        return accel_mw + l1_mw + l2_mw + other_mw;
    }
};

/**
 * Power while running a network: per-component energy / runtime, plus
 * the fixed system power (CPU + DMA + IO) that scales with array size.
 */
PowerBreakdown powerBreakdown(const perf::NetworkPerf &perf,
                              const sim::AccelConfig &cfg,
                              const EnergyCosts &costs);

/**
 * Energy efficiency in TOPS/W over the on-chip energy (the paper's
 * Fig. 19 explicitly excludes main-memory access).
 */
double topsPerWatt(const perf::NetworkPerf &perf,
                   const sim::AccelConfig &cfg, const EnergyCosts &costs);

/**
 * Total data-access energy (all levels including DRAM) in MAC units —
 * the quantity whose ratio gives the paper's Fig. 15 reduction factors.
 */
double dataAccessEnergy(const perf::NetworkPerf &perf,
                        const EnergyCosts &costs);

} // namespace mvq::energy

#endif // MVQ_ENERGY_ENERGY_MODEL_HPP
