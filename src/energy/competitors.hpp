/**
 * @file
 * Published specifications of the sparse CNN accelerators compared in
 * paper Table 9 (SparTen MICRO'19, CGNet MICRO'19, SPOTS TACO'22, S2TA
 * HPCA'22), plus helpers to assemble the MVQ rows from our own models.
 */

#ifndef MVQ_ENERGY_COMPETITORS_HPP
#define MVQ_ENERGY_COMPETITORS_HPP

#include <string>
#include <vector>

namespace mvq::energy {

/** One accelerator row of Table 9. */
struct AcceleratorSpec
{
    std::string name;
    std::string venue;
    int process_nm = 40;
    double freq_ghz = 0.0;
    std::string sram;
    std::int64_t macs = 0;
    std::string sparse_granularity;
    std::string sparsity;
    std::string quantization;
    double compression_ratio = 0.0; //!< 0 = not reported
    std::string workload;
    std::string dataflow;
    double peak_tops = 0.0;
    double area_mm2 = 0.0;
    double efficiency_tops_w = 0.0;  //!< as published, native node
    double normalized_tops_w = 0.0;  //!< 40 nm normalized (computed)
};

/** The four prior-work rows with their published numbers. */
std::vector<AcceleratorSpec> priorWorkSpecs();

/** Fill normalized_tops_w from efficiency_tops_w via Stillmaker. */
void normalizeEfficiencies(std::vector<AcceleratorSpec> &specs);

} // namespace mvq::energy

#endif // MVQ_ENERGY_COMPETITORS_HPP
