#include "energy/tech_scaling.hpp"

#include "common/logging.hpp"

namespace mvq::energy {

double
efficiencyTo40nm(int node_nm)
{
    // Stillmaker scaling of switching energy (C*V^2) between nodes,
    // evaluated at nominal voltage. The 16 nm entry matches the paper's
    // S2TA normalization (14 -> 1.64 TOPS/W).
    switch (node_nm) {
      case 16:
        return 1.64 / 14.0; // 0.117x
      case 28:
        return 0.54;
      case 40:
        return 1.0;
      case 45:
        return 1.43;
      case 65:
        return 1.99;
      default:
        fatal("no 40 nm scaling factor for node ", node_nm, " nm");
    }
}

double
energyRatioVs40nm(int node_nm)
{
    return 1.0 / efficiencyTo40nm(node_nm);
}

} // namespace mvq::energy
