#include "energy/area_model.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::energy {

namespace {

// 40 nm unit areas in um^2, calibrated against paper Table 7:
//   WS 64x64 array      = 0.188/0.734/2.812 mm^2 at sizes 16/32/64,
//   EWS 64x64 array     = 4.236 mm^2 (adds the 16-deep WRF per PE),
//   EWS-C 16 adds ~0.29 mm^2 of CRF (k=1024, d=8, 2 read ports),
//   EWS-CMS 64x64 array = 2.129 mm^2 (H x Q multipliers + MRF + DEMUX).
constexpr double kMultArea = 310.0;      //!< 8-bit multiplier
constexpr double kAdderArea = 140.0;     //!< 24-bit adder (tree node)
constexpr double kRfBitArea = 2.7;       //!< register-file bit
constexpr double kLzcArea = 60.0;        //!< one LZC stage
constexpr double kDemuxBitArea = 6.0;    //!< per psum DEMUX bit
constexpr double kMuxBitArea = 6.0;      //!< per weight MUX bit
constexpr double kPeOverhead = 225.0;    //!< PE control/pipeline misc
constexpr double kWsWeightRegBits = 16;  //!< WS double-buffered weight reg

// SRAM macro densities from the L1/L2 rows of Table 7.
constexpr double kL1AreaPerKb = 0.484 / 128.0; //!< mm^2 per KB
constexpr double kL2AreaPerKb = 6.924 / 2048.0;

// CRF: bit area plus a port-dependent multiplier (L/d read ports).
constexpr double kCrfPortFactor = 0.30;

} // namespace

TileResources
denseTileResources(std::int64_t h, std::int64_t d, std::int64_t wrf_depth,
                   std::int64_t weight_bits, std::int64_t psum_bits)
{
    (void)psum_bits;
    TileResources r;
    r.multipliers = h * d;
    r.adders = h * d;
    r.rf_bits = h * d * wrf_depth * weight_bits;
    r.parallelism = 2 * h * d;
    return r;
}

TileResources
sparseTileResources(std::int64_t h, std::int64_t d, std::int64_t q,
                    std::int64_t wrf_depth, std::int64_t weight_bits,
                    std::int64_t psum_bits)
{
    TileResources r;
    r.multipliers = h * q;
    r.adders = h * d;
    r.rf_bits = h * q * wrf_depth * weight_bits
        + h * q * wrf_depth * log2Ceil(static_cast<std::uint64_t>(d));
    r.lzc_units = h * q;
    r.demux_bits = h * q * psum_bits;
    r.mux_bits = h * q * weight_bits;
    r.parallelism = 2 * h * d;
    return r;
}

double
tileArea(const TileResources &res)
{
    const double um2 =
        static_cast<double>(res.multipliers) * kMultArea
        + static_cast<double>(res.adders) * kAdderArea
        + static_cast<double>(res.rf_bits) * kRfBitArea
        + static_cast<double>(res.lzc_units) * kLzcArea
        + static_cast<double>(res.demux_bits) * kDemuxBitArea
        + static_cast<double>(res.mux_bits) * kMuxBitArea
        + static_cast<double>(res.multipliers) * kPeOverhead;
    return um2 * 1e-6;
}

AreaBreakdown
accelArea(const sim::AccelConfig &cfg)
{
    AreaBreakdown area;
    const std::int64_t h = cfg.array_h;
    const std::int64_t l = cfg.array_l;

    // The array is L/d tiles of H x d (one "tile" of width L when the
    // tile concept does not apply).
    if (cfg.tile == sim::TileStyle::Sparse) {
        const std::int64_t d = cfg.vq_d;
        const std::int64_t q = cfg.sparseQ();
        const std::int64_t tiles = l / d;
        area.array_mm2 = tileArea(sparseTileResources(
            h, d, q, cfg.wrf_depth, cfg.weight_bits, cfg.psum_bits))
            * static_cast<double>(tiles);
    } else if (cfg.dataflow == sim::Dataflow::EWS) {
        area.array_mm2 = tileArea(denseTileResources(
            h, l, cfg.wrf_depth, cfg.weight_bits, cfg.psum_bits));
    } else {
        // WS: single (double-buffered) weight register per PE.
        area.array_mm2 = tileArea(denseTileResources(
            h, l, static_cast<std::int64_t>(kWsWeightRegBits)
                / cfg.weight_bits,
            cfg.weight_bits, cfg.psum_bits));
    }

    if (cfg.weight_stream != sim::WeightStream::Dense8b) {
        const double crf_bits = static_cast<double>(
            cfg.vq_k * cfg.vq_d * cfg.weight_bits);
        const double ports = static_cast<double>(l / cfg.vq_d);
        area.crf_mm2 = crf_bits * kRfBitArea * 1e-6
            * (1.0 + kCrfPortFactor * ports);
    }

    area.l1_mm2 = static_cast<double>(cfg.l1_bytes) / 1024.0
        * kL1AreaPerKb;
    area.l2_mm2 = static_cast<double>(cfg.l2_bytes) / 1024.0
        * kL2AreaPerKb;
    area.other_mm2 = cfg.array_h <= 16 ? 0.787
        : (cfg.array_h <= 32 ? 1.303 : 1.659);
    return area;
}

} // namespace mvq::energy
