#include "energy/competitors.hpp"

#include "energy/tech_scaling.hpp"

namespace mvq::energy {

std::vector<AcceleratorSpec>
priorWorkSpecs()
{
    std::vector<AcceleratorSpec> specs;

    AcceleratorSpec sparten;
    sparten.name = "SparTen";
    sparten.venue = "MICRO19";
    sparten.process_nm = 45;
    sparten.freq_ghz = 0.8;
    sparten.sram = "NA";
    sparten.macs = 32;
    sparten.sparse_granularity = "Random";
    sparten.sparsity = "NA";
    sparten.quantization = "INT8";
    sparten.workload = "AlexNet";
    sparten.dataflow = "OS";
    sparten.peak_tops = 0.2;
    sparten.area_mm2 = 0.766;
    sparten.efficiency_tops_w = 0.68;
    specs.push_back(sparten);

    AcceleratorSpec cgnet;
    cgnet.name = "CGNet";
    cgnet.venue = "MICRO19";
    cgnet.process_nm = 28;
    cgnet.freq_ghz = 0.5;
    cgnet.sram = "606K+576K";
    cgnet.macs = 576;
    cgnet.sparse_granularity = "Channel-wise";
    cgnet.sparsity = "60%";
    cgnet.quantization = "INT8";
    cgnet.compression_ratio = 10.0;
    cgnet.workload = "ResNet18";
    cgnet.dataflow = "WS";
    cgnet.peak_tops = 2.4;
    cgnet.area_mm2 = 5.574;
    cgnet.efficiency_tops_w = 4.5;
    specs.push_back(cgnet);

    AcceleratorSpec spots;
    spots.name = "SPOTS";
    spots.venue = "TACO22";
    spots.process_nm = 45;
    spots.freq_ghz = 0.5;
    spots.sram = "1M+512K";
    spots.macs = 512;
    spots.sparse_granularity = "Group-wise";
    spots.sparsity = "27%";
    spots.quantization = "INT16";
    spots.compression_ratio = 3.0;
    spots.workload = "VGG16";
    spots.dataflow = "OS";
    spots.peak_tops = 0.5;
    spots.area_mm2 = 8.61;
    spots.efficiency_tops_w = 0.47;
    specs.push_back(spots);

    AcceleratorSpec s2ta16;
    s2ta16.name = "S2TA-16nm";
    s2ta16.venue = "HPCA22";
    s2ta16.process_nm = 16;
    s2ta16.freq_ghz = 1.0;
    s2ta16.sram = "2M+512K";
    s2ta16.macs = 2048;
    s2ta16.sparse_granularity = "N:M";
    s2ta16.sparsity = "50%";
    s2ta16.quantization = "INT8";
    s2ta16.compression_ratio = 6.4;
    s2ta16.workload = "AlexNet";
    s2ta16.dataflow = "OS";
    s2ta16.peak_tops = 8.0;
    s2ta16.area_mm2 = 3.8;
    s2ta16.efficiency_tops_w = 14.0;
    specs.push_back(s2ta16);

    AcceleratorSpec s2ta65 = s2ta16;
    s2ta65.name = "S2TA-65nm";
    s2ta65.process_nm = 65;
    s2ta65.freq_ghz = 0.5;
    s2ta65.peak_tops = 4.0;
    s2ta65.area_mm2 = 24.0;
    s2ta65.efficiency_tops_w = 1.1;
    specs.push_back(s2ta65);

    return specs;
}

void
normalizeEfficiencies(std::vector<AcceleratorSpec> &specs)
{
    for (auto &s : specs) {
        s.normalized_tops_w =
            s.efficiency_tops_w * efficiencyTo40nm(s.process_nm);
    }
}

} // namespace mvq::energy
