#include "vq/uniform_quant.hpp"

#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/logging.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace mvq::vq {

namespace {

float
quantizeValue(float v, float scale, int bits)
{
    const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    const float qmin = -static_cast<float>(1 << (bits - 1));
    float q = std::round(v / scale);
    q = std::min(std::max(q, qmin), qmax);
    return q * scale;
}

double
quantMse(const Tensor &w, float scale, int bits)
{
    double err = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        const double d = static_cast<double>(w[i])
            - static_cast<double>(quantizeValue(w[i], scale, bits));
        err += d * d;
    }
    return err;
}

} // namespace

float
uniformQuantize(Tensor &w, int bits)
{
    fatalIf(bits < 2 || bits > 16, "unsupported bit-width ", bits);
    const float absmax = w.absMax();
    if (absmax == 0.0f)
        return 1.0f;
    const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    const float base = absmax / qmax;

    float best_scale = base;
    double best_err = quantMse(w, base, bits);
    for (int i = 1; i <= 60; ++i) {
        const float s = base * (1.0f - 0.015f * static_cast<float>(i));
        if (s <= 0.0f)
            break;
        const double err = quantMse(w, s, bits);
        if (err < best_err) {
            best_err = err;
            best_scale = s;
        }
    }
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w[i] = quantizeValue(w[i], best_scale, bits);
    return best_scale;
}

namespace {

/** Shared STE fine-tuning loop for classification and segmentation. */
template <typename DataSet, typename LossFn>
void
steFinetune(nn::Layer &model, const std::vector<nn::Conv2d *> &targets,
            const DataSet &data, LossFn &&loss_fn, const PvqOptions &opts)
{
    // Latent full-precision copies plus fixed per-layer scales.
    std::unordered_map<nn::Conv2d *, Tensor> latent;
    std::unordered_map<nn::Conv2d *, Tensor> velocity;
    std::unordered_map<nn::Conv2d *, float> scales;
    for (nn::Conv2d *conv : targets) {
        latent.emplace(conv, conv->weight().value);
        velocity.emplace(conv, Tensor(conv->weight().value.shape()));
        Tensor q = conv->weight().value;
        scales[conv] = uniformQuantize(q, opts.bits);
        conv->setWeight(q);
    }

    std::vector<nn::Parameter *> other_params;
    for (nn::Parameter *p : model.allParameters()) {
        bool is_target = false;
        for (nn::Conv2d *conv : targets) {
            if (p == &conv->weight()) {
                is_target = true;
                break;
            }
        }
        if (!is_target)
            other_params.push_back(p);
    }
    nn::Sgd other_opt(opts.other_lr, opts.momentum, 0.0f);

    Rng rng(opts.seed);
    const auto &train_set = data.trainSet();
    for (int epoch = 0; epoch < opts.finetune_epochs; ++epoch) {
        std::vector<int> order(train_set.size());
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(opts.batch_size)) {
            const std::size_t end = std::min(order.size(),
                start + static_cast<std::size_t>(opts.batch_size));
            std::vector<int> batch(order.begin()
                + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));

            model.zeroGrad();
            Tensor images = data.batchImages(train_set, batch);
            std::vector<int> labels = data.batchLabels(train_set, batch);
            Tensor out = model.forward(images, /*train=*/true);
            nn::LossResult lr = loss_fn(out, labels);
            model.backward(lr.grad);

            // STE: gradient of the quantized weight applied to the latent
            // weight, then re-quantize for the next forward.
            for (nn::Conv2d *conv : targets) {
                Tensor &w = latent.at(conv);
                Tensor &vel = velocity.at(conv);
                const Tensor &g = conv->weight().grad;
                for (std::int64_t i = 0; i < w.numel(); ++i) {
                    vel[i] = opts.momentum * vel[i] + g[i];
                    w[i] -= opts.latent_lr * vel[i];
                }
                Tensor q = w;
                const float s = scales.at(conv);
                for (std::int64_t i = 0; i < q.numel(); ++i)
                    q[i] = quantizeValue(q[i], s, opts.bits);
                conv->setWeight(q);
            }
            other_opt.step(other_params);
        }
    }
}

} // namespace

PvqResult
pvqCompressClassifier(nn::Layer &model,
                      const std::vector<nn::Conv2d *> &targets,
                      const nn::ClassificationDataset &data,
                      const PvqOptions &opts)
{
    steFinetune(model, targets, data,
                [](const Tensor &logits, const std::vector<int> &labels) {
                    return nn::softmaxCrossEntropy(logits, labels);
                },
                opts);
    PvqResult res;
    res.accuracy = nn::evalClassifier(model, data, data.testSet());
    res.compression_ratio = 32.0 / opts.bits;
    return res;
}

PvqResult
pvqCompressSegmenter(nn::Layer &model,
                     const std::vector<nn::Conv2d *> &targets,
                     const nn::SegmentationDataset &data,
                     const PvqOptions &opts)
{
    steFinetune(model, targets, data,
                [](const Tensor &logits, const std::vector<int> &labels) {
                    return nn::pixelwiseCrossEntropy(logits, labels);
                },
                opts);
    PvqResult res;
    res.accuracy = nn::evalSegmenterMiou(model, data, data.testSet());
    res.compression_ratio = 32.0 / opts.bits;
    return res;
}

} // namespace mvq::vq
