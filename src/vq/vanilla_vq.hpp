/**
 * @file
 * Conventional (unmasked) vector quantization pipelines — the ablation
 * cases A, B, C of the paper's Fig. 12 and the basis of the PQF/BGD
 * baselines. All cases reuse core::clusterLayers with the masking and
 * reconstruction switches:
 *
 *   A: dense weights,  common k-means, dense reconstruct;
 *   B: sparse weights, common k-means, dense reconstruct;
 *   C: sparse weights, common k-means, sparse reconstruct;
 *   D: sparse weights, masked k-means, sparse reconstruct (MVQ itself).
 */

#ifndef MVQ_VQ_VANILLA_VQ_HPP
#define MVQ_VQ_VANILLA_VQ_HPP

#include "core/pipeline.hpp"

namespace mvq::vq {

/** The four ablation pipelines of paper Fig. 12. */
enum class AblationCase
{
    A_DenseCommonDense,
    B_SparseCommonDense,
    C_SparseCommonSparse,
    D_SparseMaskedSparse,
};

/** Human-readable case label matching the paper (A/B/C/Ours). */
std::string ablationCaseName(AblationCase c);

/**
 * Run one ablation case on an already-trained classifier. For the sparse
 * cases the model must already be N:M-pruned (sparse-trained); for case A
 * it must be dense. The pattern in cfg is used for the mask where the
 * case stores one, and replaced by 1:1 where it does not.
 *
 * @return the compressed model; caller applies/fine-tunes/evaluates.
 */
core::CompressedModel runAblationCase(AblationCase which,
                                      const std::vector<nn::Conv2d *> &targets,
                                      const core::MvqLayerConfig &cfg,
                                      const core::ClusterOptions &opts);

} // namespace mvq::vq

#endif // MVQ_VQ_VANILLA_VQ_HPP
