#include "vq/bgd.hpp"

#include <limits>

#include "common/logging.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace mvq::vq {

std::vector<std::vector<double>>
collectInputEnergies(nn::Layer &model,
                     const std::vector<nn::Conv2d *> &targets,
                     const nn::ClassificationDataset &data,
                     const BgdOptions &opts)
{
    std::vector<std::vector<double>> energies(targets.size());
    std::vector<std::int64_t> counts(targets.size(), 0);
    for (std::size_t i = 0; i < targets.size(); ++i) {
        energies[i].assign(static_cast<std::size_t>(
            targets[i]->config().in_channels), 0.0);
    }

    Rng rng(opts.seed);
    const auto &train_set = data.trainSet();
    for (int b = 0; b < opts.energy_batches; ++b) {
        std::vector<int> batch;
        for (int j = 0; j < 32; ++j) {
            batch.push_back(static_cast<int>(
                rng.index(train_set.size())));
        }
        Tensor images = data.batchImages(train_set, batch);
        // train=true so conv layers cache their inputs.
        model.forward(images, /*train=*/true);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            const Tensor &x = targets[i]->lastInput();
            panicIf(x.numel() == 0, "conv cached no input");
            const std::int64_t n = x.dim(0);
            const std::int64_t c = x.dim(1);
            const std::int64_t hw = x.dim(2) * x.dim(3);
            for (std::int64_t bb = 0; bb < n; ++bb) {
                for (std::int64_t ch = 0; ch < c; ++ch) {
                    const float *p = x.data() + (bb * c + ch) * hw;
                    double s = 0.0;
                    for (std::int64_t t = 0; t < hw; ++t)
                        s += static_cast<double>(p[t]) * p[t];
                    energies[i][static_cast<std::size_t>(ch)] += s
                        / static_cast<double>(hw);
                }
            }
            counts[i] += n;
        }
    }
    for (std::size_t i = 0; i < targets.size(); ++i) {
        for (auto &e : energies[i])
            e = counts[i] ? e / static_cast<double>(counts[i]) : 1.0;
    }
    return energies;
}

core::KmeansResult
weightedKmeans(const Tensor &wr, const std::vector<double> &row_weights,
               const core::KmeansConfig &cfg)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    fatalIf(static_cast<std::int64_t>(row_weights.size()) != ng,
            "row weight count mismatch");

    Rng rng(cfg.seed);
    const std::int64_t k = std::min<std::int64_t>(cfg.k, ng);

    core::KmeansResult res;
    res.codebook = Tensor(Shape({k, d}));
    {
        std::vector<std::int64_t> order(static_cast<std::size_t>(ng));
        for (std::int64_t i = 0; i < ng; ++i)
            order[static_cast<std::size_t>(i)] = i;
        rng.shuffle(order);
        for (std::int64_t i = 0; i < k; ++i) {
            for (std::int64_t t = 0; t < d; ++t) {
                res.codebook.at(i, t) =
                    wr.at(order[static_cast<std::size_t>(i)], t);
            }
        }
    }
    res.assignments.assign(static_cast<std::size_t>(ng), 0);

    for (int iter = 0; iter < cfg.max_iters; ++iter) {
        std::int64_t changed = 0;
        for (std::int64_t j = 0; j < ng; ++j) {
            float best = std::numeric_limits<float>::max();
            std::int32_t best_i = 0;
            for (std::int64_t i = 0; i < k; ++i) {
                float s = 0.0f;
                for (std::int64_t t = 0; t < d; ++t) {
                    const float diff = wr.at(j, t) - res.codebook.at(i, t);
                    s += diff * diff;
                }
                if (s < best) {
                    best = s;
                    best_i = static_cast<std::int32_t>(i);
                }
            }
            if (res.assignments[static_cast<std::size_t>(j)] != best_i)
                ++changed;
            res.assignments[static_cast<std::size_t>(j)] = best_i;
        }

        Tensor sums(Shape({k, d}));
        std::vector<double> wsum(static_cast<std::size_t>(k), 0.0);
        for (std::int64_t j = 0; j < ng; ++j) {
            const std::int32_t a =
                res.assignments[static_cast<std::size_t>(j)];
            const double u = row_weights[static_cast<std::size_t>(j)];
            for (std::int64_t t = 0; t < d; ++t)
                sums.at(a, t) += static_cast<float>(u) * wr.at(j, t);
            wsum[static_cast<std::size_t>(a)] += u;
        }
        for (std::int64_t i = 0; i < k; ++i) {
            if (wsum[static_cast<std::size_t>(i)] > 0.0) {
                for (std::int64_t t = 0; t < d; ++t) {
                    res.codebook.at(i, t) = static_cast<float>(
                        sums.at(i, t)
                        / wsum[static_cast<std::size_t>(i)]);
                }
            } else {
                const std::int64_t row = static_cast<std::int64_t>(
                    rng.index(static_cast<std::size_t>(ng)));
                for (std::int64_t t = 0; t < d; ++t)
                    res.codebook.at(i, t) = wr.at(row, t);
            }
        }
        res.iterations = iter + 1;
        const double frac = static_cast<double>(changed)
            / static_cast<double>(ng);
        if (iter > 0 && frac < cfg.change_threshold)
            break;
    }

    const core::Mask ones(static_cast<std::size_t>(ng * d), 1);
    res.sse = core::maskedSse(wr, ones, res.codebook, res.assignments);
    return res;
}

core::CompressedModel
bgdCompress(const std::vector<nn::Conv2d *> &targets,
            const core::MvqLayerConfig &cfg, const BgdOptions &opts,
            const std::vector<std::vector<double>> &energies)
{
    fatalIf(cfg.grouping != core::Grouping::OutputChannelWise,
            "BGD baseline implemented for output-channel grouping");
    fatalIf(energies.size() != targets.size(),
            "energy vector count mismatch");

    core::CompressedModel cm;
    cm.dense_reconstruct = true;
    core::MvqLayerConfig layer_cfg = cfg;
    layer_cfg.pattern = core::NmPattern{1, 1};

    core::KmeansConfig km = opts.kmeans;
    km.k = cfg.k;

    for (std::size_t li = 0; li < targets.size(); ++li) {
        nn::Conv2d *conv = targets[li];
        const Tensor &w4 = conv->weight().value;
        Tensor wr = groupWeights(w4, cfg.d, cfg.grouping);

        // Row j of the output-channel grouping corresponds to input
        // channel c = (j / (R*S)) % C.
        const std::int64_t rs = w4.dim(2) * w4.dim(3);
        const std::int64_t c_total = w4.dim(1);
        std::vector<double> row_weights(
            static_cast<std::size_t>(wr.dim(0)));
        for (std::int64_t j = 0; j < wr.dim(0); ++j) {
            const std::int64_t c = (j / rs) % c_total;
            const double e = energies[li][static_cast<std::size_t>(c)];
            row_weights[static_cast<std::size_t>(j)] = e + 1e-8;
        }

        core::KmeansConfig layer_km = km;
        layer_km.seed = km.seed + li;
        core::KmeansResult res = weightedKmeans(wr, row_weights, layer_km);

        core::Codebook cb;
        cb.codewords = res.codebook;
        if (cfg.codebook_bits > 0)
            core::quantizeCodebook(cb, cfg.codebook_bits);
        cm.codebooks.push_back(std::move(cb));

        const core::Mask ones(static_cast<std::size_t>(wr.numel()), 1);
        core::CompressedLayer layer = core::makeCompressedLayer(
            conv->name(), w4.shape(), layer_cfg, ones, res,
            static_cast<int>(li));
        layer.dense_flops = conv->flops();
        cm.layers.push_back(std::move(layer));
    }
    return cm;
}

} // namespace mvq::vq
