/**
 * @file
 * PvQ baseline (Kuzmin et al., "Pruning vs Quantization"): uniform b-bit
 * symmetric scalar quantization of conv kernels with straight-through
 * latent fine-tuning. At 2 bits this collapses, reproducing the paper's
 * Table 4 / Table 6 comparison rows.
 */

#ifndef MVQ_VQ_UNIFORM_QUANT_HPP
#define MVQ_VQ_UNIFORM_QUANT_HPP

#include "nn/conv2d.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"

namespace mvq::vq {

/** Options for the PvQ baseline. */
struct PvqOptions
{
    int bits = 2;
    int finetune_epochs = 2;
    int batch_size = 32;
    float latent_lr = 0.01f;
    float other_lr = 0.01f;
    float momentum = 0.9f;
    std::uint64_t seed = 71;
};

/** Result of a PvQ run. */
struct PvqResult
{
    double accuracy = 0.0;          //!< final test accuracy
    double compression_ratio = 0.0; //!< 32 / bits (scales not charged)
};

/**
 * Quantize a tensor to b-bit symmetric uniform levels in place, with the
 * MSE-optimal scale from a grid search. Returns the scale.
 */
float uniformQuantize(Tensor &w, int bits);

/**
 * Quantize the target kernels and fine-tune with STE (latent
 * full-precision weights, quantized forward). Returns final accuracy.
 */
PvqResult pvqCompressClassifier(nn::Layer &model,
                                const std::vector<nn::Conv2d *> &targets,
                                const nn::ClassificationDataset &data,
                                const PvqOptions &opts);

/** Segmentation variant; PvqResult.accuracy holds the test mIoU. */
PvqResult pvqCompressSegmenter(nn::Layer &model,
                               const std::vector<nn::Conv2d *> &targets,
                               const nn::SegmentationDataset &data,
                               const PvqOptions &opts);

} // namespace mvq::vq

#endif // MVQ_VQ_UNIFORM_QUANT_HPP
