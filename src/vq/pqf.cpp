#include "vq/pqf.hpp"

#include <numeric>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace mvq::vq {

namespace {

/** Apply an output-channel permutation: out[i] = w4[perm[i]]. */
Tensor
permuteOutputChannels(const Tensor &w4, const std::vector<std::int64_t> &perm)
{
    Tensor out(w4.shape());
    const std::int64_t per_chan = w4.numel() / w4.dim(0);
    for (std::int64_t i = 0; i < w4.dim(0); ++i) {
        const std::int64_t src = perm[static_cast<std::size_t>(i)];
        std::copy(w4.data() + src * per_chan,
                  w4.data() + (src + 1) * per_chan,
                  out.data() + i * per_chan);
    }
    return out;
}

/** Undo the permutation: out[perm[i]] = w4[i]. */
Tensor
unpermuteOutputChannels(const Tensor &w4,
                        const std::vector<std::int64_t> &perm)
{
    Tensor out(w4.shape());
    const std::int64_t per_chan = w4.numel() / w4.dim(0);
    for (std::int64_t i = 0; i < w4.dim(0); ++i) {
        const std::int64_t dst = perm[static_cast<std::size_t>(i)];
        std::copy(w4.data() + i * per_chan,
                  w4.data() + (i + 1) * per_chan,
                  out.data() + dst * per_chan);
    }
    return out;
}

/** Cost of one bucket of channels (variance around the bucket mean). */
double
bucketCost(const Tensor &w4, const std::vector<std::int64_t> &perm,
           std::int64_t bucket, std::int64_t d)
{
    const std::int64_t per_chan = w4.numel() / w4.dim(0);
    std::vector<double> mean(static_cast<std::size_t>(per_chan), 0.0);
    for (std::int64_t j = 0; j < d; ++j) {
        const std::int64_t ch = perm[static_cast<std::size_t>(
            bucket * d + j)];
        const float *p = w4.data() + ch * per_chan;
        for (std::int64_t t = 0; t < per_chan; ++t)
            mean[static_cast<std::size_t>(t)] += p[t];
    }
    for (auto &m : mean)
        m /= static_cast<double>(d);
    double cost = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
        const std::int64_t ch = perm[static_cast<std::size_t>(
            bucket * d + j)];
        const float *p = w4.data() + ch * per_chan;
        for (std::int64_t t = 0; t < per_chan; ++t) {
            const double diff = p[t] - mean[static_cast<std::size_t>(t)];
            cost += diff * diff;
        }
    }
    return cost;
}

} // namespace

double
permutationCost(const Tensor &w4, const std::vector<std::int64_t> &perm,
                std::int64_t d)
{
    fatalIf(w4.dim(0) % d != 0, "permutationCost: d must divide K");
    const std::int64_t buckets = w4.dim(0) / d;
    // Buckets are independent; per-chunk partials fold in chunk order so
    // the sum is the same at any thread count.
    std::vector<double> partial(
        static_cast<std::size_t>(chunkCount(0, buckets, 1)), 0.0);
    parallelForChunks(0, buckets, 1,
                      [&](std::int64_t chunk, std::int64_t bb,
                          std::int64_t be) {
        double c = 0.0;
        for (std::int64_t b = bb; b < be; ++b)
            c += bucketCost(w4, perm, b, d);
        partial[static_cast<std::size_t>(chunk)] = c;
    });
    double cost = 0.0;
    for (const double p : partial)
        cost += p;
    return cost;
}

Tensor
PqfModel::reconstructLayer(std::size_t i) const
{
    Tensor permuted = compressed.reconstructLayer(i);
    return unpermuteOutputChannels(permuted, permutations[i]);
}

void
PqfModel::applyTo(nn::Layer &model) const
{
    auto convs = nn::convLayers(model);
    for (std::size_t i = 0; i < compressed.layers.size(); ++i) {
        nn::Conv2d *target = nullptr;
        for (nn::Conv2d *conv : convs) {
            if (conv->name() == compressed.layers[i].name) {
                target = conv;
                break;
            }
        }
        fatalIf(target == nullptr,
                "no conv named ", compressed.layers[i].name);
        target->setWeight(reconstructLayer(i));
    }
}

PqfModel
pqfCompress(const std::vector<nn::Conv2d *> &targets,
            const core::MvqLayerConfig &cfg, const PqfOptions &opts)
{
    fatalIf(cfg.grouping != core::Grouping::OutputChannelWise,
            "PQF baseline implemented for output-channel grouping");
    PqfModel model;
    model.compressed.dense_reconstruct = true;

    core::MvqLayerConfig layer_cfg = cfg;
    layer_cfg.pattern = core::NmPattern{1, 1};

    Rng rng(opts.seed);
    core::KmeansConfig km = opts.kmeans;
    km.k = cfg.k;

    for (std::size_t li = 0; li < targets.size(); ++li) {
        nn::Conv2d *conv = targets[li];
        const Tensor &w4 = conv->weight().value;
        const std::int64_t kk = w4.dim(0);

        // --- Permutation search (hill climbing over channel swaps) ----
        std::vector<std::int64_t> perm(static_cast<std::size_t>(kk));
        std::iota(perm.begin(), perm.end(), 0);
        const std::int64_t buckets = kk / cfg.d;
        std::vector<double> costs(static_cast<std::size_t>(buckets));
        for (std::int64_t b = 0; b < buckets; ++b)
            costs[static_cast<std::size_t>(b)] = bucketCost(w4, perm, b,
                                                            cfg.d);
        if (buckets > 1) {
            for (int step = 0; step < opts.search_steps; ++step) {
                const std::int64_t i =
                    static_cast<std::int64_t>(rng.index(
                        static_cast<std::size_t>(kk)));
                std::int64_t j = static_cast<std::int64_t>(rng.index(
                    static_cast<std::size_t>(kk)));
                if (i / cfg.d == j / cfg.d)
                    continue; // same bucket, no effect
                std::swap(perm[static_cast<std::size_t>(i)],
                          perm[static_cast<std::size_t>(j)]);
                const double ci = bucketCost(w4, perm, i / cfg.d, cfg.d);
                const double cj = bucketCost(w4, perm, j / cfg.d, cfg.d);
                const double before =
                    costs[static_cast<std::size_t>(i / cfg.d)]
                    + costs[static_cast<std::size_t>(j / cfg.d)];
                if (ci + cj < before) {
                    costs[static_cast<std::size_t>(i / cfg.d)] = ci;
                    costs[static_cast<std::size_t>(j / cfg.d)] = cj;
                } else {
                    std::swap(perm[static_cast<std::size_t>(i)],
                              perm[static_cast<std::size_t>(j)]);
                }
            }
        }

        // --- Quantize: plain k-means on the permuted grouping ----------
        Tensor permuted = permuteOutputChannels(w4, perm);
        Tensor wr = groupWeights(permuted, cfg.d, cfg.grouping);
        core::Mask ones(static_cast<std::size_t>(wr.numel()), 1);
        core::KmeansConfig layer_km = km;
        layer_km.seed = km.seed + li;
        core::KmeansResult res = core::maskedKmeans(wr, ones, layer_km);

        core::Codebook cb;
        cb.codewords = res.codebook;
        if (cfg.codebook_bits > 0)
            core::quantizeCodebook(cb, cfg.codebook_bits);
        model.compressed.codebooks.push_back(std::move(cb));

        core::CompressedLayer layer = core::makeCompressedLayer(
            conv->name(), w4.shape(), layer_cfg, ones, res,
            static_cast<int>(li));
        layer.dense_flops = conv->flops();
        model.compressed.layers.push_back(std::move(layer));
        model.permutations.push_back(std::move(perm));
    }
    return model;
}

double
pqfFinetune(PqfModel &model, nn::Layer &net,
            const nn::ClassificationDataset &data,
            const core::FinetuneConfig &cfg)
{
    // Custom tuner: like core::CodebookTrainer but the weights applied to
    // the network are un-permuted, and the gradients are permuted before
    // codeword aggregation.
    auto convs = nn::convLayers(net);
    std::vector<nn::Conv2d *> targets;
    for (const auto &layer : model.compressed.layers) {
        nn::Conv2d *target = nullptr;
        for (nn::Conv2d *conv : convs) {
            if (conv->name() == layer.name) {
                target = conv;
                break;
            }
        }
        fatalIf(target == nullptr, "no conv named ", layer.name);
        targets.push_back(target);
    }

    std::vector<nn::Parameter> latent;
    for (auto &cb : model.compressed.codebooks)
        latent.emplace_back("codebook", cb.codewords);

    std::vector<nn::Parameter *> other_params;
    for (nn::Parameter *p : net.allParameters()) {
        bool compressed = false;
        for (nn::Conv2d *conv : targets) {
            if (p == &conv->weight()) {
                compressed = true;
                break;
            }
        }
        if (!compressed)
            other_params.push_back(p);
    }

    nn::Adam cb_opt(cfg.codebook_lr);
    nn::Sgd other_opt(cfg.other_lr, cfg.momentum, 0.0f);

    auto apply = [&]() {
        for (std::size_t i = 0; i < model.compressed.codebooks.size();
             ++i) {
            model.compressed.codebooks[i].codewords = latent[i].value;
            core::requantizeCodebook(model.compressed.codebooks[i]);
        }
        for (std::size_t i = 0; i < model.compressed.layers.size(); ++i)
            targets[i]->setWeight(model.reconstructLayer(i));
    };
    apply();

    Rng rng(cfg.seed);
    const auto &train_set = data.trainSet();
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<int> order(train_set.size());
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg.batch_size)) {
            const std::size_t end = std::min(order.size(),
                start + static_cast<std::size_t>(cfg.batch_size));
            std::vector<int> batch(order.begin()
                + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));

            net.zeroGrad();
            Tensor images = data.batchImages(train_set, batch);
            std::vector<int> labels = data.batchLabels(train_set, batch);
            Tensor logits = net.forward(images, /*train=*/true);
            nn::LossResult lr = nn::softmaxCrossEntropy(logits, labels);
            net.backward(lr.grad);

            for (auto &p : latent)
                p.grad.fill(0.0f);
            for (std::size_t i = 0; i < model.compressed.layers.size();
                 ++i) {
                const auto &layer = model.compressed.layers[i];
                Tensor g_perm = permuteOutputChannels(
                    targets[i]->weight().grad, model.permutations[i]);
                Tensor grad_wr = groupWeights(g_perm, layer.cfg.d,
                                              layer.cfg.grouping);
                const core::Mask ones(
                    static_cast<std::size_t>(grad_wr.numel()), 1);
                Tensor g = core::aggregateCodewordGrad(
                    grad_wr, ones, layer.assignments,
                    model.compressed
                        .codebooks[static_cast<std::size_t>(
                            layer.codebook_id)]
                        .k(),
                    /*masked=*/false);
                addInPlace(latent[static_cast<std::size_t>(
                               layer.codebook_id)].grad,
                           g);
            }

            std::vector<nn::Parameter *> cb_params;
            for (auto &p : latent)
                cb_params.push_back(&p);
            cb_opt.step(cb_params);
            other_opt.step(other_params);
            apply();
        }
    }
    return nn::evalClassifier(net, data, data.testSet());
}

} // namespace mvq::vq
