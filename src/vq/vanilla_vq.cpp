#include "vq/vanilla_vq.hpp"

namespace mvq::vq {

std::string
ablationCaseName(AblationCase c)
{
    switch (c) {
      case AblationCase::A_DenseCommonDense:
        return "A (DW+CK+DR)";
      case AblationCase::B_SparseCommonDense:
        return "B (SW+CK+DR)";
      case AblationCase::C_SparseCommonSparse:
        return "C (SW+CK+SR)";
      case AblationCase::D_SparseMaskedSparse:
        return "Ours (SW+MK+SR)";
    }
    return "?";
}

core::CompressedModel
runAblationCase(AblationCase which,
                const std::vector<nn::Conv2d *> &targets,
                const core::MvqLayerConfig &cfg,
                const core::ClusterOptions &opts)
{
    core::MvqLayerConfig layer_cfg = cfg;
    core::ClusterOptions cluster_opts = opts;

    switch (which) {
      case AblationCase::A_DenseCommonDense:
      case AblationCase::B_SparseCommonDense:
        // No mask stored; dense reconstruction, common k-means.
        layer_cfg.pattern = core::NmPattern{1, 1};
        cluster_opts.masked_kmeans = false;
        cluster_opts.sparse_reconstruct = false;
        break;
      case AblationCase::C_SparseCommonSparse:
        cluster_opts.masked_kmeans = false;
        cluster_opts.sparse_reconstruct = true;
        break;
      case AblationCase::D_SparseMaskedSparse:
        cluster_opts.masked_kmeans = true;
        cluster_opts.sparse_reconstruct = true;
        break;
    }
    return core::clusterLayers(targets, layer_cfg, cluster_opts);
}

} // namespace mvq::vq
