/**
 * @file
 * BGD baseline ("And the bit goes down", Stock et al., ICLR 2020),
 * adapted to this repository: clustering is weighted by input-activation
 * energy so that subvectors multiplying strong activations are
 * approximated more carefully, followed by unmasked codebook fine-tuning
 * on the task (standing in for the original's layerwise distillation —
 * documented in DESIGN.md).
 */

#ifndef MVQ_VQ_BGD_HPP
#define MVQ_VQ_BGD_HPP

#include "core/pipeline.hpp"
#include "nn/dataset.hpp"

namespace mvq::vq {

/** Options for BGD compression. */
struct BgdOptions
{
    int energy_batches = 4; //!< batches used to estimate E[x_c^2]
    core::KmeansConfig kmeans;
    std::uint64_t seed = 61;
};

/**
 * Estimate per-input-channel activation second moments E[x_c^2] for each
 * target layer by running a few training batches forward.
 *
 * @return one vector per target, of length C (input channels).
 */
std::vector<std::vector<double>> collectInputEnergies(
    nn::Layer &model, const std::vector<nn::Conv2d *> &targets,
    const nn::ClassificationDataset &data, const BgdOptions &opts);

/**
 * Compress with activation-weighted k-means (dense weights, dense
 * reconstruct, pattern 1:1).
 */
core::CompressedModel bgdCompress(
    const std::vector<nn::Conv2d *> &targets,
    const core::MvqLayerConfig &cfg, const BgdOptions &opts,
    const std::vector<std::vector<double>> &energies);

/**
 * Weighted k-means over rows: standard nearest-codeword assignment, and
 * the update uses the weighted mean of assigned rows. Exposed for tests.
 *
 * @param row_weights one non-negative weight per subvector.
 */
core::KmeansResult weightedKmeans(const Tensor &wr,
                                  const std::vector<double> &row_weights,
                                  const core::KmeansConfig &cfg);

} // namespace mvq::vq

#endif // MVQ_VQ_BGD_HPP
