/**
 * @file
 * PQF baseline ("Permute, Quantize, and Fine-tune", Martinez et al.,
 * CVPR 2021), adapted to this repository's output-channel grouping:
 * a per-layer permutation of output channels is hill-climbed to minimize
 * within-bucket variance (buckets = the d channels sharing a subvector),
 * then plain k-means clusters the permuted groups, and the codebook is
 * fine-tuned on the task with unmasked gradient aggregation.
 *
 * Like the original, permutation storage is not charged against the
 * compression ratio (it can be folded into adjacent layers).
 */

#ifndef MVQ_VQ_PQF_HPP
#define MVQ_VQ_PQF_HPP

#include "core/pipeline.hpp"

namespace mvq::vq {

/** Options for the permutation search. */
struct PqfOptions
{
    int search_steps = 1500;   //!< hill-climbing proposals per layer
    std::uint64_t seed = 51;
    core::KmeansConfig kmeans;
};

/** Compressed PQF model: per-layer channel permutations + VQ container. */
struct PqfModel
{
    core::CompressedModel compressed;
    /** Per layer, perm[i] = original output channel placed at slot i. */
    std::vector<std::vector<std::int64_t>> permutations;

    /** Reconstruct layer i and undo the permutation. */
    Tensor reconstructLayer(std::size_t i) const;

    /** Write un-permuted reconstructed kernels into the model's convs. */
    void applyTo(nn::Layer &model) const;

    double
    compressionRatio(int bf = 32) const
    {
        return compressed.compressionRatio(bf);
    }
};

/**
 * Compress targets with PQF (dense weights; no pruning).
 *
 * @param cfg k/d/grouping settings; the pattern is forced to 1:1.
 */
PqfModel pqfCompress(const std::vector<nn::Conv2d *> &targets,
                     const core::MvqLayerConfig &cfg,
                     const PqfOptions &opts);

/**
 * Fine-tune a PQF model's codebooks on the classification task with
 * unmasked aggregation, then re-apply. Returns final test accuracy.
 */
double pqfFinetune(PqfModel &model, nn::Layer &net,
                   const nn::ClassificationDataset &data,
                   const core::FinetuneConfig &cfg);

/**
 * Within-bucket variance cost of a permutation (exposed for tests):
 * sum over buckets of d channels of the variance of the channels' weight
 * vectors around the bucket mean.
 */
double permutationCost(const Tensor &w4, const std::vector<std::int64_t> &perm,
                       std::int64_t d);

} // namespace mvq::vq

#endif // MVQ_VQ_PQF_HPP
