/**
 * @file
 * Shape descriptor for dense tensors of rank 1..4.
 */

#ifndef MVQ_TENSOR_SHAPE_HPP
#define MVQ_TENSOR_SHAPE_HPP

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace mvq {

/**
 * A dense row-major shape of rank 1 to 4. Rank-4 tensors use the NCHW
 * convention throughout the repository (batch, channels, height, width).
 */
class Shape
{
  public:
    Shape() = default;

    /** Construct from an explicit dimension list, e.g. Shape({n, c, h, w}). */
    Shape(std::initializer_list<std::int64_t> dims);

    int rank() const { return rank_; }

    /** Size along dimension i (0-based); fatal on out-of-range. */
    std::int64_t dim(int i) const;

    /** Total number of elements. */
    std::int64_t numel() const;

    /** Linear offset of a rank-2 coordinate. */
    std::int64_t
    at(std::int64_t i0, std::int64_t i1) const
    {
        return i0 * dims_[1] + i1;
    }

    /** Linear offset of a rank-4 coordinate (NCHW). */
    std::int64_t
    at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const
    {
        return ((n * dims_[1] + c) * dims_[2] + h) * dims_[3] + w;
    }

    bool operator==(const Shape &other) const;
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Human-readable form like [2, 3, 8, 8]. */
    std::string str() const;

  private:
    std::array<std::int64_t, 4> dims_{1, 1, 1, 1};
    int rank_ = 0;
};

} // namespace mvq

#endif // MVQ_TENSOR_SHAPE_HPP
