#include "tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"

namespace mvq {

namespace {

void
checkRank2(const Tensor &t, const char *name)
{
    fatalIf(t.rank() != 2, name, " must be rank-2, got ", t.shape().str());
}

void
checkGemmShapes(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
                const Tensor &c, std::int64_t &m, std::int64_t &n,
                std::int64_t &k)
{
    checkRank2(a, "gemm A");
    checkRank2(b, "gemm B");
    checkRank2(c, "gemm C");
    m = trans_a ? a.dim(1) : a.dim(0);
    k = trans_a ? a.dim(0) : a.dim(1);
    const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    n = trans_b ? b.dim(0) : b.dim(1);
    fatalIf(k != kb, "gemm inner dims mismatch: ", k, " vs ", kb);
    fatalIf(c.dim(0) != m || c.dim(1) != n,
            "gemm output shape mismatch: ", c.shape().str());
}

// Cache-blocking parameters. The active ISA's micro-kernel (see
// common/simd_dispatch.hpp) computes an mr x nr tile of C in registers —
// the tile shape is per-ISA (scalar 4x8, AVX2 6x16, NEON 4x16); panels of
// op(A) (MC x KC) and op(B) (KC x NC) are packed into contiguous,
// zero-padded buffers so the macro-kernel is branchless and
// layout-independent (all four transpose cases pack to one format). The
// constants live in simd_dispatch.hpp so B-panel producers and tests can
// block with the same values.
constexpr std::int64_t MC = simd::kGemmMC;
constexpr std::int64_t KC = simd::kGemmKC;
constexpr std::int64_t NC = simd::kGemmNC;

/**
 * B-panel producer the blocked drivers call once per (jc, k0) block:
 * fill bp with the packed nr-column panels of op(B)[k0:k0+kc, j0:j0+nc].
 * Bound to packB for a dense operand and to packBFromIm2col for the
 * fused conv path; invoked at block granularity, so the std::function
 * indirection costs nothing measurable.
 */
using PackBFn = std::function<void(std::int64_t k0, std::int64_t j0,
                                   std::int64_t kc, std::int64_t nc,
                                   std::int64_t nr, float *bp)>;

/**
 * Pack op(A)[i0:i0+mc, k0:k0+kc] (alpha pre-applied) into mr-row panels:
 * panel p holds columns-of-mr values ap[kk*mr + r] = alpha * op(A)(i0 +
 * p*mr + r, k0 + kk). Rows past mc pad with zeros.
 */
void
packA(const float *pa, std::int64_t lda, bool trans_a, std::int64_t i0,
      std::int64_t k0, std::int64_t mc, std::int64_t kc, float alpha,
      std::int64_t mr, float *ap)
{
    for (std::int64_t p = 0; p < mc; p += mr) {
        const std::int64_t rows = std::min(mr, mc - p);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
            for (std::int64_t r = 0; r < rows; ++r) {
                const std::int64_t i = i0 + p + r;
                const std::int64_t kidx = k0 + kk;
                ap[kk * mr + r] = alpha
                    * (trans_a ? pa[kidx * lda + i] : pa[i * lda + kidx]);
            }
            for (std::int64_t r = rows; r < mr; ++r)
                ap[kk * mr + r] = 0.0f;
        }
        ap += kc * mr;
    }
}

/**
 * Pack op(B)[k0:k0+kc, j0:j0+nc] into nr-column panels: panel q holds
 * bp[kk*nr + cidx] = op(B)(k0 + kk, j0 + q*nr + cidx), zero-padded past nc.
 */
void
packB(const float *pb, std::int64_t ldb, bool trans_b, std::int64_t k0,
      std::int64_t j0, std::int64_t kc, std::int64_t nc, std::int64_t nr,
      float *bp)
{
    // Panels write disjoint bpack regions, so packing runs in parallel
    // (the pool is otherwise idle here) without affecting determinism.
    const std::int64_t npanels = (nc + nr - 1) / nr;
    parallelFor(0, npanels, 4, [&](std::int64_t qb, std::int64_t qe) {
        for (std::int64_t q = qb; q < qe; ++q) {
            float *dst = bp + q * kc * nr;
            const std::int64_t cols = std::min(nr, nc - q * nr);
            for (std::int64_t kk = 0; kk < kc; ++kk) {
                const std::int64_t kidx = k0 + kk;
                for (std::int64_t cidx = 0; cidx < cols; ++cidx) {
                    const std::int64_t j = j0 + q * nr + cidx;
                    dst[kk * nr + cidx] =
                        trans_b ? pb[j * ldb + kidx] : pb[kidx * ldb + j];
                }
                for (std::int64_t cidx = cols; cidx < nr; ++cidx)
                    dst[kk * nr + cidx] = 0.0f;
            }
        }
    });
}

/** Scale C (m x n, row stride ldc) by beta, in parallel over rows. */
void
scaleCRows(float *pc, std::int64_t m, std::int64_t n, std::int64_t ldc,
           float beta)
{
    if (beta == 0.0f) {
        parallelFor(0, m, 16, [&](std::int64_t rb, std::int64_t re) {
            for (std::int64_t i = rb; i < re; ++i)
                std::memset(pc + i * ldc, 0,
                            static_cast<std::size_t>(n) * sizeof(float));
        });
    } else if (beta != 1.0f) {
        parallelFor(0, m, 16, [&](std::int64_t rb, std::int64_t re) {
            for (std::int64_t i = rb; i < re; ++i) {
                float *crow = pc + i * ldc;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] *= beta;
            }
        });
    }
}

/**
 * Plain compressed-row scan (no packing, no blocking): each kept A entry
 * streams one B row into one C row. Serves as the oracle body and the
 * small-problem path; assumes beta has already been applied to C.
 */
void
sparseRowScanRaw(const SparseRowMatrix &a, const float *pb, std::int64_t ldb,
                 std::int64_t n, float alpha, float *pc, std::int64_t ldc)
{
    for (std::int64_t i = 0; i < a.rows; ++i) {
        float *crow = pc + i * ldc;
        for (std::int64_t e = a.row_ptr[static_cast<std::size_t>(i)];
             e < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++e) {
            const float av =
                alpha * a.values[static_cast<std::size_t>(e)];
            const float *brow =
                pb + a.col_idx[static_cast<std::size_t>(e)] * ldb;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
checkSparseGemmShapes(const SparseRowMatrix &a, const Tensor &b,
                      const Tensor &c, const char *what)
{
    checkRank2(b, "sparse gemm B");
    checkRank2(c, "sparse gemm C");
    fatalIf(b.dim(0) != a.cols, what, " inner dims mismatch: ", a.cols,
            " vs ", b.dim(0));
    fatalIf(c.dim(0) != a.rows || c.dim(1) != b.dim(1),
            what, " output shape mismatch: ", c.shape().str());
}

void
checkSparseOperand(const SparseRowMatrix &a)
{
    panicIf(static_cast<std::int64_t>(a.row_ptr.size()) != a.rows + 1,
            "sparse operand row_ptr size ", a.row_ptr.size(),
            " does not match rows ", a.rows);
    panicIf(a.col_idx.size() != a.values.size(),
            "sparse operand col_idx/values size mismatch");
    panicIf(!a.row_ptr.empty()
                && (a.row_ptr.front() != 0
                    || a.row_ptr.back()
                        != static_cast<std::int64_t>(a.values.size())),
            "sparse operand row_ptr does not cover all entries");
    for (std::int64_t i = 0; i < a.rows; ++i)
        panicIf(a.row_ptr[static_cast<std::size_t>(i)]
                    > a.row_ptr[static_cast<std::size_t>(i + 1)],
                "sparse operand row_ptr not monotone at row ", i);
    // The blocked driver binary-searches each row's index range and the
    // micro-kernels index packed B rows with kidx - k0, so the column
    // invariants (ascending within a row, within [0, cols)) are memory
    // safety, not just correctness — a malformed operand must panic here
    // rather than read out of bounds. O(nnz), amortized by the O(nnz*n)
    // multiply it guards.
    for (std::int64_t i = 0; i < a.rows; ++i) {
        std::int32_t prev = -1;
        for (std::int64_t e = a.row_ptr[static_cast<std::size_t>(i)];
             e < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++e) {
            const std::int32_t col =
                a.col_idx[static_cast<std::size_t>(e)];
            panicIf(col <= prev, "sparse operand row ", i,
                    ": col_idx not strictly ascending at entry ", e);
            panicIf(col >= a.cols, "sparse operand row ", i,
                    ": col_idx ", col, " out of range [0, ", a.cols, ")");
            prev = col;
        }
    }
}

} // namespace

void
gemmReferenceRaw(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float *pa, std::int64_t lda, bool trans_a,
                 const float *pb, std::int64_t ldb, bool trans_b, float beta,
                 float *pc, std::int64_t ldc)
{
    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < m; ++i)
            std::memset(pc + i * ldc, 0,
                        static_cast<std::size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < m; ++i) {
            float *crow = pc + i * ldc;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] *= beta;
        }
    }

    // i-k-j loop order keeps the inner loop contiguous on B and C for the
    // common non-transposed case.
    if (!trans_a && !trans_b) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = alpha * pa[i * lda + kk];
                if (av == 0.0f)
                    continue;
                const float *brow = pb + kk * ldb;
                float *crow = pc + i * ldc;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
        return;
    }

    auto a_at = [&](std::int64_t i, std::int64_t kk) {
        return trans_a ? pa[kk * lda + i] : pa[i * lda + kk];
    };
    auto b_at = [&](std::int64_t kk, std::int64_t j) {
        return trans_b ? pb[j * ldb + kk] : pb[kk * ldb + j];
    };
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += a_at(i, kk) * b_at(kk, j);
            pc[i * ldc + j] += alpha * acc;
        }
    }
}

void
gemmReference(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
              Tensor &c, float alpha, float beta)
{
    std::int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);
    gemmReferenceRaw(m, n, k, alpha, a.data(), a.dim(1), trans_a, b.data(),
                     b.dim(1), trans_b, beta, c.data(), n);
}

/**
 * The blocked dense macro-driver shared by gemmRaw (dense B, packB) and
 * gemmIm2colRaw (virtual B, packBFromIm2col). beta has already been
 * applied to C by the caller.
 */
void
gemmBlockedDriver(std::int64_t m, std::int64_t n, std::int64_t k,
                  float alpha, const float *pa, std::int64_t lda,
                  bool trans_a, const PackBFn &pack_b, float *pc,
                  std::int64_t ldc)
{
    // Register-tile shape comes from the active ISA's micro-kernel.
    const simd::Kernels &kn = simd::kernels();
    const std::int64_t mr = kn.mr;
    const std::int64_t nr = kn.nr;

    const std::int64_t kc_max = std::min(KC, k);
    const std::int64_t nc_max = std::min(NC, n);
    std::vector<float> bpack(static_cast<std::size_t>(
        kc_max * ((nc_max + nr - 1) / nr) * nr));

    // jc/kc loops are sequential (each C element accumulates its KC blocks
    // in a fixed order); the MC row blocks inside run in parallel and touch
    // disjoint rows of C, so results are identical for any thread count
    // (within a given ISA — different micro-kernels reorder the lane sums).
    for (std::int64_t jc = 0; jc < n; jc += NC) {
        const std::int64_t nc = std::min(NC, n - jc);
        const std::int64_t npanels = (nc + nr - 1) / nr;
        for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
            const std::int64_t kc = std::min(KC, k - k0);
            pack_b(k0, jc, kc, nc, nr, bpack.data());

            parallelFor(0, (m + MC - 1) / MC, 1,
                        [&](std::int64_t blk_b, std::int64_t blk_e) {
                std::vector<float> apack(static_cast<std::size_t>(
                    kc * ((MC + mr - 1) / mr) * mr));
                float acc[simd::kMaxGemmMr * simd::kMaxGemmNr];
                for (std::int64_t blk = blk_b; blk < blk_e; ++blk) {
                    const std::int64_t i0 = blk * MC;
                    const std::int64_t mc = std::min(MC, m - i0);
                    packA(pa, lda, trans_a, i0, k0, mc, kc, alpha, mr,
                          apack.data());
                    const std::int64_t mpanels = (mc + mr - 1) / mr;
                    for (std::int64_t q = 0; q < npanels; ++q) {
                        const float *bp = bpack.data() + q * kc * nr;
                        const std::int64_t cols =
                            std::min(nr, nc - q * nr);
                        for (std::int64_t p = 0; p < mpanels; ++p) {
                            const float *ap = apack.data() + p * kc * mr;
                            std::fill(acc, acc + mr * nr, 0.0f);
                            kn.gemmMicroKernel(ap, bp, kc, acc);
                            const std::int64_t rows =
                                std::min(mr, mc - p * mr);
                            for (std::int64_t r = 0; r < rows; ++r) {
                                float *crow = pc
                                    + (i0 + p * mr + r) * ldc + jc
                                    + q * nr;
                                const float *arow = acc + r * nr;
                                for (std::int64_t cidx = 0; cidx < cols;
                                     ++cidx)
                                    crow[cidx] += arow[cidx];
                            }
                        }
                    }
                }
            });
        }
    }
}

void
gemmRaw(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
        const float *pa, std::int64_t lda, bool trans_a, const float *pb,
        std::int64_t ldb, bool trans_b, float beta, float *pc,
        std::int64_t ldc)
{
    // Very small problems: packing overhead dominates, use the scalar
    // kernel. The threshold is in multiply-adds.
    if (m * n * k <= kGemmScalarFallbackMacs) {
        gemmReferenceRaw(m, n, k, alpha, pa, lda, trans_a, pb, ldb, trans_b,
                         beta, pc, ldc);
        return;
    }

    scaleCRows(pc, m, n, ldc, beta);
    gemmBlockedDriver(m, n, k, alpha, pa, lda, trans_a,
                      [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
                          std::int64_t nc, std::int64_t nr, float *bp) {
                          packB(pb, ldb, trans_b, k0, j0, kc, nc, nr, bp);
                      },
                      pc, ldc);
}

void
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     Tensor &c, float alpha, float beta)
{
    std::int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);
    gemmRaw(m, n, k, alpha, a.data(), a.dim(1), trans_a, b.data(), b.dim(1),
            trans_b, beta, c.data(), n);
}

SparseRowMatrix
sparsifyRows(const Tensor &a)
{
    checkRank2(a, "sparsifyRows input");
    SparseRowMatrix sp;
    sp.rows = a.dim(0);
    sp.cols = a.dim(1);
    sp.row_ptr.reserve(static_cast<std::size_t>(sp.rows + 1));
    sp.row_ptr.push_back(0);
    const float *pa = a.data();
    for (std::int64_t i = 0; i < sp.rows; ++i) {
        const float *arow = pa + i * sp.cols;
        for (std::int64_t j = 0; j < sp.cols; ++j) {
            if (arow[j] != 0.0f) {
                sp.col_idx.push_back(static_cast<std::int32_t>(j));
                sp.values.push_back(arow[j]);
            }
        }
        sp.row_ptr.push_back(static_cast<std::int64_t>(sp.values.size()));
    }
    return sp;
}

/**
 * The blocked sparse-A macro-driver shared by gemmSparseARaw (dense B,
 * packB) and gemmSparseAIm2col (virtual B, packBFromIm2col). beta has
 * already been applied to C and the operand validated by the caller.
 */
void
gemmSparseBlockedDriver(const SparseRowMatrix &a, std::int64_t n,
                        float alpha, const PackBFn &pack_b, float *pc,
                        std::int64_t ldc)
{
    const std::int64_t m = a.rows;
    const std::int64_t k = a.cols;

    const simd::Kernels &kn = simd::kernels();
    const std::int64_t nr = kn.nr;

    const std::int64_t kc_max = std::min(KC, k);
    const std::int64_t nc_max = std::min(NC, n);
    std::vector<float> bpack(static_cast<std::size_t>(
        kc_max * ((nc_max + nr - 1) / nr) * nr));

    // Same loop nest as the dense driver: jc/kc sequential so every C
    // element accumulates its KC blocks in a fixed order, MC row blocks in
    // parallel over disjoint C rows — bit-identical for any thread count
    // within an ISA. The A side needs no packing at all: the compressed
    // rows *are* the packed format, built once from the mask codes; each
    // row block only slices its entry range per KC block (the indices are
    // ascending, so two binary searches per row per block).
    for (std::int64_t jc = 0; jc < n; jc += NC) {
        const std::int64_t nc = std::min(NC, n - jc);
        const std::int64_t npanels = (nc + nr - 1) / nr;
        for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
            const std::int64_t kc = std::min(KC, k - k0);
            pack_b(k0, jc, kc, nc, nr, bpack.data());

            parallelFor(0, (m + MC - 1) / MC, 1,
                        [&](std::int64_t blk_b, std::int64_t blk_e) {
                float acc[simd::kMaxGemmNr];
                std::int64_t ent0[MC];
                std::int64_t entn[MC];
                for (std::int64_t blk = blk_b; blk < blk_e; ++blk) {
                    const std::int64_t i0 = blk * MC;
                    const std::int64_t mc = std::min(MC, m - i0);
                    const std::int32_t *idx = a.col_idx.data();
                    for (std::int64_t r = 0; r < mc; ++r) {
                        const std::size_t row =
                            static_cast<std::size_t>(i0 + r);
                        const std::int32_t *lo = std::lower_bound(
                            idx + a.row_ptr[row], idx + a.row_ptr[row + 1],
                            static_cast<std::int32_t>(k0));
                        const std::int32_t *hi = std::lower_bound(
                            lo, idx + a.row_ptr[row + 1],
                            static_cast<std::int32_t>(k0 + kc));
                        ent0[r] = lo - idx;
                        entn[r] = hi - lo;
                    }
                    // Panel-outer, row-inner: the kc x nr packed panel
                    // stays hot across the whole row block.
                    for (std::int64_t q = 0; q < npanels; ++q) {
                        const float *bp = bpack.data() + q * kc * nr;
                        const std::int64_t cols =
                            std::min(nr, nc - q * nr);
                        for (std::int64_t r = 0; r < mc; ++r) {
                            if (entn[r] == 0)
                                continue;
                            std::fill(acc, acc + nr, 0.0f);
                            kn.gemmSparseMicroKernel(
                                a.values.data() + ent0[r], idx + ent0[r],
                                entn[r], k0, bp, nr, acc);
                            float *crow =
                                pc + (i0 + r) * ldc + jc + q * nr;
                            for (std::int64_t cidx = 0; cidx < cols;
                                 ++cidx)
                                crow[cidx] += alpha * acc[cidx];
                        }
                    }
                }
            });
        }
    }
}

void
gemmSparseARaw(const SparseRowMatrix &a, const float *pb, std::int64_t ldb,
               std::int64_t n, float alpha, float beta, float *pc,
               std::int64_t ldc)
{
    checkSparseOperand(a);
    const std::int64_t m = a.rows;

    scaleCRows(pc, m, n, ldc, beta);
    if (m == 0 || n == 0 || a.nnz() == 0)
        return;

    // Small problems: panel packing overhead dominates. The threshold is
    // in *useful* multiply-adds, which for the sparse operand is nnz * n.
    if (a.nnz() * n <= kGemmScalarFallbackMacs) {
        sparseRowScanRaw(a, pb, ldb, n, alpha, pc, ldc);
        return;
    }

    gemmSparseBlockedDriver(
        a, n, alpha,
        [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
            std::int64_t nc, std::int64_t nr, float *bp) {
            packB(pb, ldb, false, k0, j0, kc, nc, nr, bp);
        },
        pc, ldc);
}

void
gemmSparseA(const SparseRowMatrix &a, const Tensor &b, Tensor &c,
            float alpha, float beta)
{
    checkSparseGemmShapes(a, b, c, "gemmSparseA");
    gemmSparseARaw(a, b.data(), b.dim(1), b.dim(1), alpha, beta, c.data(),
                   b.dim(1));
}

void
gemmSparseAReference(const SparseRowMatrix &a, const Tensor &b, Tensor &c,
                     float alpha, float beta)
{
    checkSparseGemmShapes(a, b, c, "gemmSparseAReference");
    checkSparseOperand(a);
    const std::int64_t n = b.dim(1);
    float *pc = c.data();
    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < a.rows * n; ++i)
            pc[i] = 0.0f;
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < a.rows * n; ++i)
            pc[i] *= beta;
    }
    sparseRowScanRaw(a, b.data(), n, n, alpha, pc, n);
}

Tensor
matmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor c(Shape({m, n}));
    gemm(a, trans_a, b, trans_b, c);
    return c;
}

namespace {

/** Panic unless the geometry yields a non-empty output feature map. */
void
checkConvOutputDims(const ConvGeom &g, const char *what)
{
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    panicIf(oh <= 0 || ow <= 0, what, ": non-positive output dims ", oh,
            "x", ow, " (kernel ", g.k_h, "x", g.k_w,
            " larger than padded input ", g.in_h, "x", g.in_w, " pad ",
            g.pad, "?)");
}

/**
 * Materialize the virtual im2col matrix row-major into pc (row stride
 * outH*outW). Shared by the Tensor-returning im2col() and the fused
 * entry points' small-problem fallbacks, so fused and unfused paths
 * gather padding with the same code.
 */
void
im2colInto(const Im2colB &b, float *pc)
{
    const ConvGeom &g = b.g;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const float *pin = b.slab;

    // Each row (c, kh, kw) writes a disjoint slab of cols.
    const std::int64_t nrows = g.in_c * g.k_h * g.k_w;
    const std::int64_t grain =
        std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, oh * ow));
    parallelFor(0, nrows, grain, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t row = rb; row < re; ++row) {
            const std::int64_t c = row / (g.k_h * g.k_w);
            const std::int64_t kh = (row / g.k_w) % g.k_h;
            const std::int64_t kw = row % g.k_w;
            const float *src = pin + c * g.in_h * g.in_w;
            float *dst = pc + row * oh * ow;
            for (std::int64_t y = 0; y < oh; ++y) {
                const std::int64_t ih = y * g.stride - g.pad + kh;
                float *drow = dst + y * ow;
                if (ih < 0 || ih >= g.in_h) {
                    std::memset(drow, 0,
                                static_cast<std::size_t>(ow)
                                    * sizeof(float));
                    continue;
                }
                const float *srow = src + ih * g.in_w;
                for (std::int64_t x = 0; x < ow; ++x) {
                    const std::int64_t iw = x * g.stride - g.pad + kw;
                    drow[x] = (iw >= 0 && iw < g.in_w) ? srow[iw] : 0.0f;
                }
            }
        }
    });
}

} // namespace

Tensor
im2col(const Tensor &input, std::int64_t n, const ConvGeom &g,
       std::int64_t c0)
{
    fatalIf(input.rank() != 4, "im2col expects NCHW input");
    fatalIf(c0 < 0 || c0 + g.in_c > input.dim(1)
                || input.dim(2) != g.in_h || input.dim(3) != g.in_w,
            "im2col geometry mismatch with input ", input.shape().str());
    checkConvOutputDims(g, "im2col");

    Tensor cols(Shape({g.in_c * g.k_h * g.k_w, g.outH() * g.outW()}));
    const float *pin = input.data()
        + (n * input.dim(1) + c0) * g.in_h * g.in_w;
    im2colInto(Im2colB{pin, g}, cols.data());
    return cols;
}

void
packBFromIm2col(const Im2colB &b, std::int64_t k0, std::int64_t j0,
                std::int64_t kc, std::int64_t nc, std::int64_t nr,
                float *bp)
{
    const ConvGeom &g = b.g;
    checkConvOutputDims(g, "packBFromIm2col");
    const std::int64_t ow = g.outW();
    const float *pin = b.slab;

    // Panels write disjoint bp regions, so packing runs in parallel (the
    // pool is otherwise idle between macro-kernel sweeps) without
    // affecting the packed bytes — same split as packB. Within a panel
    // the kk loop walks the virtual rows (c, kh, kw); the cidx loop walks
    // output positions of one im2col row, split into runs that stay on
    // one output row y (ih fixed), so the padding tests hoist out of the
    // per-element loop and the stride-1 common case degenerates to one
    // memcpy per run.
    const std::int64_t npanels = (nc + nr - 1) / nr;
    parallelFor(0, npanels, 4, [&](std::int64_t qb, std::int64_t qe) {
        for (std::int64_t q = qb; q < qe; ++q) {
            float *dst = bp + q * kc * nr;
            const std::int64_t cols = std::min(nr, nc - q * nr);
            const std::int64_t jbase = j0 + q * nr;
            // Walk the (c, kh, kw) decomposition of the virtual row
            // incrementally: kw carries into kh carries into c, so the kk
            // loop does no divisions.
            std::int64_t c = k0 / (g.k_h * g.k_w);
            std::int64_t kh = (k0 / g.k_w) % g.k_h;
            std::int64_t kw = k0 % g.k_w;
            const float *src = pin + c * g.in_h * g.in_w;
            for (std::int64_t kk = 0; kk < kc; ++kk) {
                float *drow = dst + kk * nr;
                std::int64_t cidx = 0;
                while (cidx < cols) {
                    const std::int64_t j = jbase + cidx;
                    const std::int64_t y = j / ow;
                    const std::int64_t x0 = j % ow;
                    const std::int64_t run =
                        std::min(cols - cidx, ow - x0);
                    const std::int64_t ih = y * g.stride - g.pad + kh;
                    if (ih < 0 || ih >= g.in_h) {
                        std::memset(drow + cidx, 0,
                                    static_cast<std::size_t>(run)
                                        * sizeof(float));
                    } else if (g.stride == 1) {
                        // iw = x - pad + kw is contiguous in x; split the
                        // run into left padding / in-bounds memcpy / right
                        // padding.
                        const std::int64_t iw0 = x0 - g.pad + kw;
                        const std::int64_t lo =
                            std::clamp<std::int64_t>(-iw0, 0, run);
                        const std::int64_t hi =
                            std::clamp<std::int64_t>(g.in_w - iw0, lo, run);
                        if (lo > 0)
                            std::memset(drow + cidx, 0,
                                        static_cast<std::size_t>(lo)
                                            * sizeof(float));
                        if (hi > lo)
                            std::memcpy(drow + cidx + lo,
                                        src + ih * g.in_w + iw0 + lo,
                                        static_cast<std::size_t>(hi - lo)
                                            * sizeof(float));
                        if (run > hi)
                            std::memset(drow + cidx + hi, 0,
                                        static_cast<std::size_t>(run - hi)
                                            * sizeof(float));
                    } else {
                        const float *srow = src + ih * g.in_w;
                        for (std::int64_t t = 0; t < run; ++t) {
                            const std::int64_t iw =
                                (x0 + t) * g.stride - g.pad + kw;
                            drow[cidx + t] = (iw >= 0 && iw < g.in_w)
                                ? srow[iw]
                                : 0.0f;
                        }
                    }
                    cidx += run;
                }
                for (std::int64_t t = cols; t < nr; ++t)
                    drow[t] = 0.0f;
                if (++kw == g.k_w) {
                    kw = 0;
                    if (++kh == g.k_h) {
                        kh = 0;
                        ++c;
                        src += g.in_h * g.in_w;
                    }
                }
            }
        }
    });
}

void
gemmIm2colRaw(std::int64_t m, float alpha, const float *pa,
              std::int64_t lda, const Im2colB &b, float beta, float *pc,
              std::int64_t ldc)
{
    checkConvOutputDims(b.g, "gemmIm2colRaw");
    const std::int64_t k = b.rows();
    const std::int64_t n = b.cols();

    // Small problems take the same materialize + scalar-reference route
    // the unfused path does (im2col + gemmRaw), keeping fused and unfused
    // bit-identical on both sides of the crossover.
    if (m * n * k <= kGemmScalarFallbackMacs) {
        std::vector<float> cols(static_cast<std::size_t>(k * n));
        im2colInto(b, cols.data());
        gemmReferenceRaw(m, n, k, alpha, pa, lda, false, cols.data(), n,
                         false, beta, pc, ldc);
        return;
    }

    scaleCRows(pc, m, n, ldc, beta);
    gemmBlockedDriver(m, n, k, alpha, pa, lda, false,
                      [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
                          std::int64_t nc, std::int64_t nr, float *bp) {
                          packBFromIm2col(b, k0, j0, kc, nc, nr, bp);
                      },
                      pc, ldc);
}

void
gemmSparseAIm2col(const SparseRowMatrix &a, const Im2colB &b, float alpha,
                  float beta, float *pc, std::int64_t ldc)
{
    checkSparseOperand(a);
    checkConvOutputDims(b.g, "gemmSparseAIm2col");
    panicIf(a.cols != b.rows(), "gemmSparseAIm2col inner dims mismatch: ",
            a.cols, " vs ", b.rows());
    const std::int64_t m = a.rows;
    const std::int64_t k = b.rows();
    const std::int64_t n = b.cols();

    scaleCRows(pc, m, n, ldc, beta);
    if (m == 0 || n == 0 || a.nnz() == 0)
        return;

    // Same crossover as gemmSparseARaw, same materialize fallback as the
    // unfused composition — bit-identity holds on both sides.
    if (a.nnz() * n <= kGemmScalarFallbackMacs) {
        std::vector<float> cols(static_cast<std::size_t>(k * n));
        im2colInto(b, cols.data());
        sparseRowScanRaw(a, cols.data(), n, n, alpha, pc, ldc);
        return;
    }

    gemmSparseBlockedDriver(
        a, n, alpha,
        [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
            std::int64_t nc, std::int64_t nr, float *bp) {
            packBFromIm2col(b, k0, j0, kc, nc, nr, bp);
        },
        pc, ldc);
}

namespace {

/** -1 = unresolved (read MVQ_FUSED_CONV on first query). */
std::atomic<int> g_fused_conv{-1};

} // namespace

bool
fusedConvEnabled()
{
    int v = g_fused_conv.load(std::memory_order_acquire);
    if (v < 0) {
        const char *env = std::getenv("MVQ_FUSED_CONV");
        v = (env != nullptr
             && (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0))
            ? 0
            : 1;
        g_fused_conv.store(v, std::memory_order_release);
    }
    return v == 1;
}

void
setFusedConvEnabled(bool on)
{
    g_fused_conv.store(on ? 1 : 0, std::memory_order_release);
}

void
col2im(const Tensor &cols, Tensor &grad, std::int64_t n, const ConvGeom &g,
       std::int64_t c0)
{
    fatalIf(grad.rank() != 4, "col2im expects NCHW grad");
    fatalIf(c0 < 0 || c0 + g.in_c > grad.dim(1) || grad.dim(2) != g.in_h
                || grad.dim(3) != g.in_w,
            "col2im geometry mismatch with grad ", grad.shape().str());
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    panicIf(oh <= 0 || ow <= 0, "col2im: non-positive output dims ", oh,
            "x", ow, " (kernel ", g.k_h, "x", g.k_w,
            " larger than padded input ", g.in_h, "x", g.in_w, " pad ",
            g.pad, "?)");
    fatalIf(cols.dim(0) != g.in_c * g.k_h * g.k_w || cols.dim(1) != oh * ow,
            "col2im column shape mismatch: ", cols.shape().str());

    const float *pc = cols.data();
    float *pg = grad.data() + (n * grad.dim(1) + c0) * g.in_h * g.in_w;

    // Rows sharing a channel scatter into the same image plane, so the
    // parallel split is over channels (disjoint planes); the kh/kw rows of
    // a channel run sequentially within a chunk.
    parallelFor(0, g.in_c, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            float *plane = pg + c * g.in_h * g.in_w;
            for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                    const std::int64_t row =
                        (c * g.k_h + kh) * g.k_w + kw;
                    const float *src = pc + row * oh * ow;
                    for (std::int64_t y = 0; y < oh; ++y) {
                        const std::int64_t ih = y * g.stride - g.pad + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        float *prow = plane + ih * g.in_w;
                        const float *srow = src + y * ow;
                        for (std::int64_t x = 0; x < ow; ++x) {
                            const std::int64_t iw =
                                x * g.stride - g.pad + kw;
                            if (iw >= 0 && iw < g.in_w)
                                prow[iw] += srow[x];
                        }
                    }
                }
            }
        }
    });
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "add shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "addInPlace shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += b[i];
}

void
axpy(Tensor &a, float alpha, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "axpy shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += alpha * b[i];
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "mul shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

void
scaleInPlace(Tensor &a, float s)
{
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] *= s;
}

double
sse(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "sse shape mismatch");
    double s = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        s += d * d;
    }
    return s;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace mvq
