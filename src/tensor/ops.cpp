#include "tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/env.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"

namespace mvq {

// ops.hpp avoids including the dispatch layer, so the tile row bound is
// duplicated there; keep the two constants in lockstep.
static_assert(kSparseTileMaxRows == simd::kSparseMultiRowMr,
              "grouped-operand tile rows must match the multi-row kernel");

namespace {

void
checkRank2(const Tensor &t, const char *name)
{
    fatalIf(t.rank() != 2, name, " must be rank-2, got ", t.shape().str());
}

void
checkGemmShapes(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
                const Tensor &c, std::int64_t &m, std::int64_t &n,
                std::int64_t &k)
{
    checkRank2(a, "gemm A");
    checkRank2(b, "gemm B");
    checkRank2(c, "gemm C");
    m = trans_a ? a.dim(1) : a.dim(0);
    k = trans_a ? a.dim(0) : a.dim(1);
    const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    n = trans_b ? b.dim(0) : b.dim(1);
    fatalIf(k != kb, "gemm inner dims mismatch: ", k, " vs ", kb);
    fatalIf(c.dim(0) != m || c.dim(1) != n,
            "gemm output shape mismatch: ", c.shape().str());
}

// Cache-blocking parameters. The active ISA's micro-kernel (see
// common/simd_dispatch.hpp) computes an mr x nr tile of C in registers —
// the tile shape is per-ISA (scalar 4x8, AVX2 6x16, NEON 4x16); panels of
// op(A) (MC x KC) and op(B) (KC x NC) are packed into contiguous,
// zero-padded buffers so the macro-kernel is branchless and
// layout-independent (all four transpose cases pack to one format). The
// constants live in simd_dispatch.hpp so B-panel producers and tests can
// block with the same values.
constexpr std::int64_t MC = simd::kGemmMC;
constexpr std::int64_t KC = simd::kGemmKC;
constexpr std::int64_t NC = simd::kGemmNC;

// K-block for the grouped (multi-row) sparse driver. Dense-style KC keeps
// a B panel L1-resident because every A row re-reads it; bucket tiles do
// NOT have that reuse — within a band each packed B row is read at most
// once (the kept-column sets of a block's buckets partition its columns),
// so a small K block buys nothing, while it shreds a bucket's shared
// column list (~50 columns spread over the whole K extent) into slivers
// whose per-(panel, tile) accumulator zero-fill + alpha-scatter dwarf the
// kernel work. A K block covering the whole reduction amortizes that
// fixed cost over the full shared-column list; the cap only bounds the
// packed-panel buffer (4096 * NR floats = 256 KiB per panel) for
// pathologically deep reductions.
constexpr std::int64_t kGroupedKC = 4096;

// N-strip budget for the grouped driver, in packed floats (~1.5 MiB).
// The reuse the tile phase lives on is ACROSS bands: every band re-reads
// the strip's packed panels once per K block, so the whole strip must
// stay L2-resident or the B rows stream from L3 on every band. With the
// K block covering the reduction whole, the strip width is what bounds
// the buffer: nc per jc strip is chosen as budget / kc (floored to a
// panel multiple), e.g. 160 columns at k = 2304.
constexpr std::int64_t kGroupedNcBudget = 384 * 1024;

/**
 * B-panel producer the blocked drivers call once per (jc, k0) block:
 * fill bp with the packed nr-column panels of op(B)[k0:k0+kc, j0:j0+nc].
 * Bound to packB for a dense operand and to packBFromIm2col for the
 * fused conv path; invoked at block granularity, so the std::function
 * indirection costs nothing measurable.
 */
using PackBFn = std::function<void(std::int64_t k0, std::int64_t j0,
                                   std::int64_t kc, std::int64_t nc,
                                   std::int64_t nr, float *bp)>;

/**
 * Pack op(A)[i0:i0+mc, k0:k0+kc] (alpha pre-applied) into mr-row panels:
 * panel p holds columns-of-mr values ap[kk*mr + r] = alpha * op(A)(i0 +
 * p*mr + r, k0 + kk). Rows past mc pad with zeros.
 */
void
packA(const float *pa, std::int64_t lda, bool trans_a, std::int64_t i0,
      std::int64_t k0, std::int64_t mc, std::int64_t kc, float alpha,
      std::int64_t mr, float *ap)
{
    for (std::int64_t p = 0; p < mc; p += mr) {
        const std::int64_t rows = std::min(mr, mc - p);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
            for (std::int64_t r = 0; r < rows; ++r) {
                const std::int64_t i = i0 + p + r;
                const std::int64_t kidx = k0 + kk;
                ap[kk * mr + r] = alpha
                    * (trans_a ? pa[kidx * lda + i] : pa[i * lda + kidx]);
            }
            for (std::int64_t r = rows; r < mr; ++r)
                ap[kk * mr + r] = 0.0f;
        }
        ap += kc * mr;
    }
}

/**
 * Pack op(B)[k0:k0+kc, j0:j0+nc] into nr-column panels: panel q holds
 * bp[kk*nr + cidx] = op(B)(k0 + kk, j0 + q*nr + cidx), zero-padded past nc.
 */
void
packB(const float *pb, std::int64_t ldb, bool trans_b, std::int64_t k0,
      std::int64_t j0, std::int64_t kc, std::int64_t nc, std::int64_t nr,
      float *bp)
{
    // Panels write disjoint bpack regions, so packing runs in parallel
    // (the pool is otherwise idle here) without affecting determinism.
    const std::int64_t npanels = (nc + nr - 1) / nr;
    parallelFor(0, npanels, 4, [&](std::int64_t qb, std::int64_t qe) {
        for (std::int64_t q = qb; q < qe; ++q) {
            float *dst = bp + q * kc * nr;
            const std::int64_t cols = std::min(nr, nc - q * nr);
            for (std::int64_t kk = 0; kk < kc; ++kk) {
                const std::int64_t kidx = k0 + kk;
                for (std::int64_t cidx = 0; cidx < cols; ++cidx) {
                    const std::int64_t j = j0 + q * nr + cidx;
                    dst[kk * nr + cidx] =
                        trans_b ? pb[j * ldb + kidx] : pb[kidx * ldb + j];
                }
                for (std::int64_t cidx = cols; cidx < nr; ++cidx)
                    dst[kk * nr + cidx] = 0.0f;
            }
        }
    });
}

/** Scale C (m x n, row stride ldc) by beta, in parallel over rows. */
void
scaleCRows(float *pc, std::int64_t m, std::int64_t n, std::int64_t ldc,
           float beta)
{
    if (beta == 0.0f) {
        parallelFor(0, m, 16, [&](std::int64_t rb, std::int64_t re) {
            for (std::int64_t i = rb; i < re; ++i)
                std::memset(pc + i * ldc, 0,
                            static_cast<std::size_t>(n) * sizeof(float));
        });
    } else if (beta != 1.0f) {
        parallelFor(0, m, 16, [&](std::int64_t rb, std::int64_t re) {
            for (std::int64_t i = rb; i < re; ++i) {
                float *crow = pc + i * ldc;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] *= beta;
            }
        });
    }
}

/**
 * Plain compressed-row scan (no packing, no blocking): each kept A entry
 * streams one B row into one C row. Serves as the oracle body and the
 * small-problem path; assumes beta has already been applied to C.
 */
void
sparseRowScanRaw(const SparseRowMatrix &a, const float *pb, std::int64_t ldb,
                 std::int64_t n, float alpha, float *pc, std::int64_t ldc)
{
    for (std::int64_t i = 0; i < a.rows; ++i) {
        float *crow = pc + i * ldc;
        for (std::int64_t e = a.row_ptr[static_cast<std::size_t>(i)];
             e < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++e) {
            const float av =
                alpha * a.values[static_cast<std::size_t>(e)];
            const float *brow =
                pb + a.col_idx[static_cast<std::size_t>(e)] * ldb;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
checkSparseGemmShapes(const SparseRowMatrix &a, const Tensor &b,
                      const Tensor &c, const char *what)
{
    checkRank2(b, "sparse gemm B");
    checkRank2(c, "sparse gemm C");
    fatalIf(b.dim(0) != a.cols, what, " inner dims mismatch: ", a.cols,
            " vs ", b.dim(0));
    fatalIf(c.dim(0) != a.rows || c.dim(1) != b.dim(1),
            what, " output shape mismatch: ", c.shape().str());
}

void
checkSparseOperand(const SparseRowMatrix &a)
{
    panicIf(static_cast<std::int64_t>(a.row_ptr.size()) != a.rows + 1,
            "sparse operand row_ptr size ", a.row_ptr.size(),
            " does not match rows ", a.rows);
    panicIf(a.col_idx.size() != a.values.size(),
            "sparse operand col_idx/values size mismatch");
    panicIf(!a.row_ptr.empty()
                && (a.row_ptr.front() != 0
                    || a.row_ptr.back()
                        != static_cast<std::int64_t>(a.values.size())),
            "sparse operand row_ptr does not cover all entries");
    for (std::int64_t i = 0; i < a.rows; ++i)
        panicIf(a.row_ptr[static_cast<std::size_t>(i)]
                    > a.row_ptr[static_cast<std::size_t>(i + 1)],
                "sparse operand row_ptr not monotone at row ", i);
    // The blocked driver binary-searches each row's index range and the
    // micro-kernels index packed B rows with kidx - k0, so the column
    // invariants (ascending within a row, within [0, cols)) are memory
    // safety, not just correctness — a malformed operand must panic here
    // rather than read out of bounds. O(nnz); operands packed through
    // validateSparseOperand pay this once at pack time, hand-built ones
    // per gemm call.
    for (std::int64_t i = 0; i < a.rows; ++i) {
        std::int32_t prev = -1;
        for (std::int64_t e = a.row_ptr[static_cast<std::size_t>(i)];
             e < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++e) {
            const std::int32_t col =
                a.col_idx[static_cast<std::size_t>(e)];
            panicIf(col <= prev, "sparse operand row ", i,
                    ": col_idx not strictly ascending at entry ", e);
            panicIf(col >= a.cols, "sparse operand row ", i,
                    ": col_idx ", col, " out of range [0, ", a.cols, ")");
            prev = col;
        }
    }
}

} // namespace

void
validateSparseOperand(SparseRowMatrix &a)
{
    checkSparseOperand(a);
    a.validated = true;
}

void
gemmReferenceRaw(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float *pa, std::int64_t lda, bool trans_a,
                 const float *pb, std::int64_t ldb, bool trans_b, float beta,
                 float *pc, std::int64_t ldc)
{
    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < m; ++i)
            std::memset(pc + i * ldc, 0,
                        static_cast<std::size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < m; ++i) {
            float *crow = pc + i * ldc;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] *= beta;
        }
    }

    // i-k-j loop order keeps the inner loop contiguous on B and C for the
    // common non-transposed case.
    if (!trans_a && !trans_b) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = alpha * pa[i * lda + kk];
                if (av == 0.0f)
                    continue;
                const float *brow = pb + kk * ldb;
                float *crow = pc + i * ldc;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
        return;
    }

    auto a_at = [&](std::int64_t i, std::int64_t kk) {
        return trans_a ? pa[kk * lda + i] : pa[i * lda + kk];
    };
    auto b_at = [&](std::int64_t kk, std::int64_t j) {
        return trans_b ? pb[j * ldb + kk] : pb[kk * ldb + j];
    };
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += a_at(i, kk) * b_at(kk, j);
            pc[i * ldc + j] += alpha * acc;
        }
    }
}

void
gemmReference(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
              Tensor &c, float alpha, float beta)
{
    std::int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);
    gemmReferenceRaw(m, n, k, alpha, a.data(), a.dim(1), trans_a, b.data(),
                     b.dim(1), trans_b, beta, c.data(), n);
}

/**
 * The blocked dense macro-driver shared by gemmRaw (dense B, packB) and
 * gemmIm2colRaw (virtual B, packBFromIm2col). beta has already been
 * applied to C by the caller.
 */
void
gemmBlockedDriver(std::int64_t m, std::int64_t n, std::int64_t k,
                  float alpha, const float *pa, std::int64_t lda,
                  bool trans_a, const PackBFn &pack_b, float *pc,
                  std::int64_t ldc)
{
    // Register-tile shape comes from the active ISA's micro-kernel.
    const simd::Kernels &kn = simd::kernels();
    const std::int64_t mr = kn.mr;
    const std::int64_t nr = kn.nr;

    const std::int64_t kc_max = std::min(KC, k);
    const std::int64_t nc_max = std::min(NC, n);
    std::vector<float> bpack(static_cast<std::size_t>(
        kc_max * ((nc_max + nr - 1) / nr) * nr));

    // jc/kc loops are sequential (each C element accumulates its KC blocks
    // in a fixed order); the MC row blocks inside run in parallel and touch
    // disjoint rows of C, so results are identical for any thread count
    // (within a given ISA — different micro-kernels reorder the lane sums).
    for (std::int64_t jc = 0; jc < n; jc += NC) {
        const std::int64_t nc = std::min(NC, n - jc);
        const std::int64_t npanels = (nc + nr - 1) / nr;
        for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
            const std::int64_t kc = std::min(KC, k - k0);
            pack_b(k0, jc, kc, nc, nr, bpack.data());

            parallelFor(0, (m + MC - 1) / MC, 1,
                        [&](std::int64_t blk_b, std::int64_t blk_e) {
                std::vector<float> apack(static_cast<std::size_t>(
                    kc * ((MC + mr - 1) / mr) * mr));
                float acc[simd::kMaxGemmMr * simd::kMaxGemmNr];
                for (std::int64_t blk = blk_b; blk < blk_e; ++blk) {
                    const std::int64_t i0 = blk * MC;
                    const std::int64_t mc = std::min(MC, m - i0);
                    packA(pa, lda, trans_a, i0, k0, mc, kc, alpha, mr,
                          apack.data());
                    const std::int64_t mpanels = (mc + mr - 1) / mr;
                    for (std::int64_t q = 0; q < npanels; ++q) {
                        const float *bp = bpack.data() + q * kc * nr;
                        const std::int64_t cols =
                            std::min(nr, nc - q * nr);
                        for (std::int64_t p = 0; p < mpanels; ++p) {
                            const float *ap = apack.data() + p * kc * mr;
                            std::fill(acc, acc + mr * nr, 0.0f);
                            kn.gemmMicroKernel(ap, bp, kc, acc);
                            const std::int64_t rows =
                                std::min(mr, mc - p * mr);
                            for (std::int64_t r = 0; r < rows; ++r) {
                                float *crow = pc
                                    + (i0 + p * mr + r) * ldc + jc
                                    + q * nr;
                                const float *arow = acc + r * nr;
                                for (std::int64_t cidx = 0; cidx < cols;
                                     ++cidx)
                                    crow[cidx] += arow[cidx];
                            }
                        }
                    }
                }
            });
        }
    }
}

void
gemmRaw(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
        const float *pa, std::int64_t lda, bool trans_a, const float *pb,
        std::int64_t ldb, bool trans_b, float beta, float *pc,
        std::int64_t ldc)
{
    // Very small problems: packing overhead dominates, use the scalar
    // kernel. The threshold is in multiply-adds.
    if (m * n * k <= kGemmScalarFallbackMacs) {
        gemmReferenceRaw(m, n, k, alpha, pa, lda, trans_a, pb, ldb, trans_b,
                         beta, pc, ldc);
        return;
    }

    scaleCRows(pc, m, n, ldc, beta);
    gemmBlockedDriver(m, n, k, alpha, pa, lda, trans_a,
                      [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
                          std::int64_t nc, std::int64_t nr, float *bp) {
                          packB(pb, ldb, trans_b, k0, j0, kc, nc, nr, bp);
                      },
                      pc, ldc);
}

void
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     Tensor &c, float alpha, float beta)
{
    std::int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);
    gemmRaw(m, n, k, alpha, a.data(), a.dim(1), trans_a, b.data(), b.dim(1),
            trans_b, beta, c.data(), n);
}

SparseRowMatrix
sparsifyRows(const Tensor &a)
{
    checkRank2(a, "sparsifyRows input");
    SparseRowMatrix sp;
    sp.rows = a.dim(0);
    sp.cols = a.dim(1);
    sp.row_ptr.reserve(static_cast<std::size_t>(sp.rows + 1));
    sp.row_ptr.push_back(0);
    const float *pa = a.data();
    for (std::int64_t i = 0; i < sp.rows; ++i) {
        const float *arow = pa + i * sp.cols;
        for (std::int64_t j = 0; j < sp.cols; ++j) {
            if (arow[j] != 0.0f) {
                sp.col_idx.push_back(static_cast<std::int32_t>(j));
                sp.values.push_back(arow[j]);
            }
        }
        sp.row_ptr.push_back(static_cast<std::int64_t>(sp.values.size()));
    }
    validateSparseOperand(sp);
    return sp;
}

GroupedSparseMatrix
groupSparseRows(SparseRowMatrix rows, std::int64_t m_block,
                std::int64_t min_cols)
{
    panicIf(m_block < 2 || m_block > 32,
            "groupSparseRows m_block must be in [2, 32], got ", m_block);
    panicIf(min_cols < 1, "groupSparseRows min_cols must be positive, got ",
            min_cols);
    if (!rows.validated)
        validateSparseOperand(rows);

    GroupedSparseMatrix out;
    out.rows = std::move(rows);
    const SparseRowMatrix &src = out.rows;

    // Remainder entries accumulate as (row, col, value) triples; the rows
    // emerge block by block in ascending order and each row's columns stay
    // ascending, so the final CSR assembles with a single pass.
    struct Entry {
        std::int32_t row;
        std::int32_t col;
        float val;
    };
    std::vector<Entry> rem;

    // Per-block scratch, reused across blocks.
    struct Bucket {
        std::uint32_t key = 0;             // kept-row bitmask within block
        std::vector<std::int32_t> cols;    // ascending shared columns
        std::vector<float> vals;           // column-major: per col, row-order
    };
    std::vector<Bucket> buckets;
    std::unordered_map<std::uint32_t, std::size_t> bucket_of;
    struct ColEntry {
        std::int32_t col;
        std::int32_t row_local;
        float val;
    };
    std::vector<ColEntry> ents;

    const std::int64_t nblocks = (src.rows + m_block - 1) / m_block;
    for (std::int64_t b = 0; b < nblocks; ++b) {
        const std::int64_t r0 = b * m_block;
        const std::int64_t r1 = std::min(src.rows, r0 + m_block);

        // Gather the block's entries and sort by (col, row): runs of equal
        // col expose each column's kept-row set, which *is* its bucket key.
        ents.clear();
        for (std::int64_t r = r0; r < r1; ++r) {
            for (std::int64_t e = src.row_ptr[static_cast<std::size_t>(r)];
                 e < src.row_ptr[static_cast<std::size_t>(r + 1)]; ++e)
                ents.push_back({src.col_idx[static_cast<std::size_t>(e)],
                                static_cast<std::int32_t>(r - r0),
                                src.values[static_cast<std::size_t>(e)]});
        }
        std::sort(ents.begin(), ents.end(),
                  [](const ColEntry &x, const ColEntry &y) {
                      return x.col != y.col ? x.col < y.col
                                            : x.row_local < y.row_local;
                  });

        buckets.clear();
        bucket_of.clear();
        for (std::size_t e = 0; e < ents.size();) {
            std::size_t e1 = e;
            std::uint32_t key = 0;
            while (e1 < ents.size() && ents[e1].col == ents[e].col) {
                key |= 1u << ents[e1].row_local;
                ++e1;
            }
            const auto [it, fresh] =
                bucket_of.try_emplace(key, buckets.size());
            if (fresh) {
                buckets.emplace_back();
                buckets.back().key = key;
            }
            Bucket &bk = buckets[it->second];
            bk.cols.push_back(ents[e].col);
            for (std::size_t q = e; q < e1; ++q)
                bk.vals.push_back(ents[q].val);
            e = e1;
        }

        // Emit: buckets worth tiling become row-tiles over the shared
        // column list; thin or singleton buckets fall back to the
        // single-row remainder. Buckets keep first-seen (ascending first
        // column) order, so the layout is deterministic.
        const std::int64_t band_start =
            static_cast<std::int64_t>(out.tiles.size());
        for (const Bucket &bk : buckets) {
            const int krows = std::popcount(bk.key);
            const std::int64_t ncols =
                static_cast<std::int64_t>(bk.cols.size());
            if (krows < 2 || ncols < min_cols) {
                // Column-major bucket -> per-row triples; rem is re-sorted
                // into row-major CSR order at the end.
                for (std::int64_t q = 0; q < ncols; ++q) {
                    std::int64_t v = q * krows;
                    for (std::uint32_t bits = bk.key; bits != 0;
                         bits &= bits - 1, ++v) {
                        const std::int32_t rl = static_cast<std::int32_t>(
                            std::countr_zero(bits));
                        rem.push_back({static_cast<std::int32_t>(r0) + rl,
                                       bk.cols[static_cast<std::size_t>(q)],
                                       bk.vals[static_cast<std::size_t>(v)]});
                    }
                }
                continue;
            }
            // Shared column list stored once per bucket; every tile of the
            // bucket points at it.
            const std::int64_t col_off =
                static_cast<std::int64_t>(out.cols.size());
            out.cols.insert(out.cols.end(), bk.cols.begin(), bk.cols.end());

            std::int32_t rl[32];
            int nrl = 0;
            for (std::uint32_t bits = bk.key; bits != 0; bits &= bits - 1)
                rl[nrl++] = static_cast<std::int32_t>(std::countr_zero(bits));

            int t0 = 0;
            while (t0 < nrl) {
                std::int64_t trows = std::min<std::int64_t>(
                    kSparseTileMaxRows, nrl - t0);
                if (trows == 1) {
                    // A leftover chunk of one row gains nothing from the
                    // tile kernel; route it through the remainder instead.
                    for (std::int64_t q = 0; q < ncols; ++q)
                        rem.push_back(
                            {static_cast<std::int32_t>(r0) + rl[t0],
                             bk.cols[static_cast<std::size_t>(q)],
                             bk.vals[static_cast<std::size_t>(q * krows
                                                              + t0)]});
                    ++t0;
                    continue;
                }
                GroupedSparseMatrix::Tile tl;
                tl.nrows = static_cast<std::int32_t>(trows);
                for (std::int64_t r = 0; r < trows; ++r)
                    tl.row[r] = static_cast<std::int32_t>(r0) + rl[t0 + r];
                tl.col_off = col_off;
                tl.ncols = ncols;
                tl.val_off = static_cast<std::int64_t>(out.vals.size());
                // Transpose the bucket's column-major values into the
                // tile's row-major [nrows x ncols] layout.
                out.vals.resize(out.vals.size()
                                + static_cast<std::size_t>(trows * ncols));
                float *dst = out.vals.data() + tl.val_off;
                for (std::int64_t r = 0; r < trows; ++r)
                    for (std::int64_t q = 0; q < ncols; ++q)
                        dst[r * ncols + q] = bk.vals[static_cast<std::size_t>(
                            q * krows + t0 + r)];
                out.tiles.push_back(tl);
                t0 += static_cast<int>(trows);
            }
        }
        if (static_cast<std::int64_t>(out.tiles.size()) > band_start)
            out.band_ptr.push_back(
                static_cast<std::int64_t>(out.tiles.size()));
    }

    // Assemble the remainder CSR: blocks emitted in ascending row order
    // but interleaved across buckets, so one sort puts every row's entries
    // back into ascending-column CSR order.
    std::sort(rem.begin(), rem.end(), [](const Entry &x, const Entry &y) {
        return x.row != y.row ? x.row < y.row : x.col < y.col;
    });
    out.remainder.rows = src.rows;
    out.remainder.cols = src.cols;
    out.remainder.row_ptr.reserve(static_cast<std::size_t>(src.rows + 1));
    out.remainder.row_ptr.push_back(0);
    out.remainder.col_idx.reserve(rem.size());
    out.remainder.values.reserve(rem.size());
    std::size_t e = 0;
    for (std::int64_t r = 0; r < src.rows; ++r) {
        while (e < rem.size() && rem[e].row == r) {
            out.remainder.col_idx.push_back(rem[e].col);
            out.remainder.values.push_back(rem[e].val);
            ++e;
        }
        out.remainder.row_ptr.push_back(
            static_cast<std::int64_t>(out.remainder.values.size()));
    }
    out.remainder.validated = true;

    panicIf(out.tileNnz() + out.remainder.nnz() != src.nnz(),
            "groupSparseRows accounting mismatch: ", out.tileNnz(), " + ",
            out.remainder.nnz(), " != ", src.nnz());
    out.validated = true;
    return out;
}

/**
 * One (jc, k0) block of the single-row sparse pass: every row of `a`
 * slices its entry range against [k0, k0 + kc) and streams the packed
 * panels through the per-ISA single-row kernel. MC row blocks run in
 * parallel over disjoint C rows. Shared by the single-row driver (whole
 * operand) and the grouped driver (remainder entries), so the fallback
 * path is literally the same code.
 */
void
sparseRowsKcPass(const SparseRowMatrix &a, std::int64_t k0, std::int64_t kc,
                 std::int64_t jc, std::int64_t nc, std::int64_t npanels,
                 float alpha, const float *bpack, float *pc,
                 std::int64_t ldc, const simd::Kernels &kn)
{
    const std::int64_t m = a.rows;
    const std::int64_t nr = kn.nr;
    parallelFor(0, (m + MC - 1) / MC, 1,
                [&](std::int64_t blk_b, std::int64_t blk_e) {
        float acc[simd::kMaxGemmNr];
        std::int64_t ent0[MC];
        std::int64_t entn[MC];
        for (std::int64_t blk = blk_b; blk < blk_e; ++blk) {
            const std::int64_t i0 = blk * MC;
            const std::int64_t mc = std::min(MC, m - i0);
            const std::int32_t *idx = a.col_idx.data();
            for (std::int64_t r = 0; r < mc; ++r) {
                const std::size_t row =
                    static_cast<std::size_t>(i0 + r);
                const std::int32_t *lo = std::lower_bound(
                    idx + a.row_ptr[row], idx + a.row_ptr[row + 1],
                    static_cast<std::int32_t>(k0));
                const std::int32_t *hi = std::lower_bound(
                    lo, idx + a.row_ptr[row + 1],
                    static_cast<std::int32_t>(k0 + kc));
                ent0[r] = lo - idx;
                entn[r] = hi - lo;
            }
            // Panel-outer, row-inner: the kc x nr packed panel
            // stays hot across the whole row block.
            for (std::int64_t q = 0; q < npanels; ++q) {
                const float *bp = bpack + q * kc * nr;
                const std::int64_t cols =
                    std::min(nr, nc - q * nr);
                for (std::int64_t r = 0; r < mc; ++r) {
                    if (entn[r] == 0)
                        continue;
                    std::fill(acc, acc + nr, 0.0f);
                    kn.gemmSparseMicroKernel(
                        a.values.data() + ent0[r], idx + ent0[r],
                        entn[r], k0, bp, nr, acc);
                    float *crow =
                        pc + (i0 + r) * ldc + jc + q * nr;
                    // x * 1.0f == x bitwise, so the branch is a pure
                    // fast path (drops a multiply per element in the
                    // overwhelmingly common alpha == 1 case).
                    if (alpha == 1.0f) {
                        for (std::int64_t cidx = 0; cidx < cols;
                             ++cidx)
                            crow[cidx] += acc[cidx];
                    } else {
                        for (std::int64_t cidx = 0; cidx < cols;
                             ++cidx)
                            crow[cidx] += alpha * acc[cidx];
                    }
                }
            }
        }
    });
}

/**
 * The blocked sparse-A macro-driver shared by gemmSparseARaw (dense B,
 * packB) and gemmSparseAIm2col (virtual B, packBFromIm2col). beta has
 * already been applied to C and the operand validated by the caller.
 */
void
gemmSparseBlockedDriver(const SparseRowMatrix &a, std::int64_t n,
                        float alpha, const PackBFn &pack_b, float *pc,
                        std::int64_t ldc)
{
    const std::int64_t k = a.cols;

    const simd::Kernels &kn = simd::kernels();
    const std::int64_t nr = kn.nr;

    const std::int64_t kc_max = std::min(KC, k);
    const std::int64_t nc_max = std::min(NC, n);
    std::vector<float> bpack(static_cast<std::size_t>(
        kc_max * ((nc_max + nr - 1) / nr) * nr));

    // Same loop nest as the dense driver: jc/kc sequential so every C
    // element accumulates its KC blocks in a fixed order, MC row blocks in
    // parallel over disjoint C rows — bit-identical for any thread count
    // within an ISA. The A side needs no packing at all: the compressed
    // rows *are* the packed format, built once from the mask codes; each
    // row block only slices its entry range per KC block (the indices are
    // ascending, so two binary searches per row per block).
    for (std::int64_t jc = 0; jc < n; jc += NC) {
        const std::int64_t nc = std::min(NC, n - jc);
        const std::int64_t npanels = (nc + nr - 1) / nr;
        for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
            const std::int64_t kc = std::min(KC, k - k0);
            pack_b(k0, jc, kc, nc, nr, bpack.data());
            sparseRowsKcPass(a, k0, kc, jc, nc, npanels, alpha,
                             bpack.data(), pc, ldc, kn);
        }
    }
}

/**
 * Structural check of a grouped operand's tile/band layer (the CSR
 * members are checked by checkSparseOperand). Like the CSR invariants,
 * these are memory safety: the grouped driver binary-searches each tile's
 * shared column list and indexes C rows and the vals/cols pools straight
 * from the tile fields. Builders validate once at pack time; hand-built
 * operands pay per call.
 */
void
checkGroupedOperand(const GroupedSparseMatrix &a)
{
    const std::int64_t ncols_pool =
        static_cast<std::int64_t>(a.cols.size());
    const std::int64_t nvals_pool =
        static_cast<std::int64_t>(a.vals.size());
    panicIf(a.remainder.rows != a.rows.rows
                || a.remainder.cols != a.rows.cols,
            "grouped operand remainder shape mismatch");
    panicIf(a.band_ptr.empty() || a.band_ptr.front() != 0
                || a.band_ptr.back()
                    != static_cast<std::int64_t>(a.tiles.size()),
            "grouped operand band_ptr does not cover tiles");
    for (std::size_t b = 1; b < a.band_ptr.size(); ++b)
        panicIf(a.band_ptr[b - 1] > a.band_ptr[b],
                "grouped operand band_ptr not monotone");
    std::int64_t covered = 0;
    for (const GroupedSparseMatrix::Tile &t : a.tiles) {
        panicIf(t.nrows < 1 || t.nrows > kSparseTileMaxRows,
                "grouped operand tile row count ", t.nrows,
                " out of range");
        for (std::int32_t r = 0; r < t.nrows; ++r) {
            panicIf(t.row[r] < 0 || t.row[r] >= a.rows.rows,
                    "grouped operand tile row ", t.row[r],
                    " out of range");
            panicIf(r > 0 && t.row[r] <= t.row[r - 1],
                    "grouped operand tile rows not ascending");
        }
        panicIf(t.ncols <= 0 || t.col_off < 0
                    || t.col_off + t.ncols > ncols_pool,
                "grouped operand tile column range out of bounds");
        panicIf(t.val_off < 0
                    || t.val_off + t.nrows * t.ncols > nvals_pool,
                "grouped operand tile value range out of bounds");
        std::int32_t prev = -1;
        for (std::int64_t q = 0; q < t.ncols; ++q) {
            const std::int32_t col =
                a.cols[static_cast<std::size_t>(t.col_off + q)];
            panicIf(col <= prev,
                    "grouped operand tile columns not strictly ascending");
            panicIf(col >= a.rows.cols,
                    "grouped operand tile column ", col, " out of range");
            prev = col;
        }
        covered += static_cast<std::int64_t>(t.nrows) * t.ncols;
    }
    panicIf(covered + a.remainder.nnz() != a.rows.nnz(),
            "grouped operand tiles + remainder do not partition nnz: ",
            covered, " + ", a.remainder.nnz(), " != ", a.rows.nnz());
}

/**
 * The blocked multi-row macro-driver behind the GroupedSparseMatrix gemm
 * entry points. Same jc/kc loop nest and packed-B layout as the
 * single-row driver, but K-blocked by kGroupedKC (see the constant for
 * why tile phases want deep K blocks); within a (jc, k0) block the bucket
 * tiles run first — panel-outer, bands in parallel inside each panel
 * (bands touch disjoint C rows; a band's tiles run sequentially) — then
 * the remainder entries run through the unchanged single-row pass. Tile
 * phase then remainder phase is a fixed order per C element, so the
 * thread-count determinism contract carries over. beta has already been
 * applied to C and the operand validated by the caller.
 */
void
gemmSparseGroupedBlockedDriver(const GroupedSparseMatrix &a, std::int64_t n,
                               float alpha, const PackBFn &pack_b, float *pc,
                               std::int64_t ldc)
{
    const std::int64_t k = a.rows.cols;

    const simd::Kernels &kn = simd::kernels();
    const std::int64_t nr = kn.nr;

    const std::int64_t kc_max = std::min(kGroupedKC, k);
    const std::int64_t nc_blk = std::min<std::int64_t>(
        NC,
        std::max<std::int64_t>(nr, kGroupedNcBudget / kc_max / nr * nr));
    // Uninitialized on purpose: pack_b overwrites every panel byte the
    // drivers read, and the deep grouped K block makes this buffer large
    // enough (a megabyte-plus) that a vector's zero-fill shows up in
    // profiles.
    const std::int64_t nc_max = std::min(nc_blk, n);
    std::unique_ptr<float[]> bpack(new float[static_cast<std::size_t>(
        kc_max * ((nc_max + nr - 1) / nr) * nr)]);

    // Per-tile slice of the shared column list against the current K
    // block, computed once per k0 (two binary searches per tile, exactly
    // like the per-row slicing of the single-row driver). With
    // kGroupedKC covering typical conv reductions whole, the common case
    // is one K block whose slice is the entire shared column list.
    const std::int64_t ntiles = static_cast<std::int64_t>(a.tiles.size());
    const std::int64_t nbands =
        static_cast<std::int64_t>(a.band_ptr.size()) - 1;
    std::vector<std::int64_t> tlo(static_cast<std::size_t>(ntiles));
    std::vector<std::int64_t> tcnt(static_cast<std::size_t>(ntiles));
    std::vector<std::int64_t> act_tiles;
    std::vector<std::int64_t> act_ptr;
    act_tiles.reserve(static_cast<std::size_t>(ntiles));
    act_ptr.reserve(static_cast<std::size_t>(nbands) + 1);

    for (std::int64_t jc = 0; jc < n; jc += nc_blk) {
        const std::int64_t nc = std::min(nc_blk, n - jc);
        const std::int64_t npanels = (nc + nr - 1) / nr;
        for (std::int64_t k0 = 0; k0 < k; k0 += kGroupedKC) {
            const std::int64_t kc = std::min(kGroupedKC, k - k0);
            pack_b(k0, jc, kc, nc, nr, bpack.get());

            parallelFor(0, ntiles, 64,
                        [&](std::int64_t tb, std::int64_t te) {
                for (std::int64_t t = tb; t < te; ++t) {
                    const GroupedSparseMatrix::Tile &tl =
                        a.tiles[static_cast<std::size_t>(t)];
                    const std::int32_t *cbase =
                        a.cols.data() + tl.col_off;
                    const std::int32_t *lo = std::lower_bound(
                        cbase, cbase + tl.ncols,
                        static_cast<std::int32_t>(k0));
                    const std::int32_t *hi = std::lower_bound(
                        lo, cbase + tl.ncols,
                        static_cast<std::int32_t>(k0 + kc));
                    tlo[static_cast<std::size_t>(t)] = lo - cbase;
                    tcnt[static_cast<std::size_t>(t)] = hi - lo;
                }
            });

            // Active tiles per band for this K block, as a flat CSR so
            // the panel loop below doesn't rescan tcnt per panel.
            act_ptr.assign(1, 0);
            act_tiles.clear();
            for (std::int64_t b = 0; b < nbands; ++b) {
                for (std::int64_t t = a.band_ptr
                         [static_cast<std::size_t>(b)];
                     t < a.band_ptr[static_cast<std::size_t>(b + 1)]; ++t) {
                    if (tcnt[static_cast<std::size_t>(t)] != 0)
                        act_tiles.push_back(t);
                }
                act_ptr.push_back(
                    static_cast<std::int64_t>(act_tiles.size()));
            }

            // Panel-outer, bands-inner: one packed panel is consumed by
            // every band before moving on, so the panel stays cache-hot
            // across bands (bands have no intra-band B reuse to exploit —
            // a block's bucket column sets are disjoint — the only reuse
            // is ACROSS bands). The value/column streams re-read per
            // panel stream sequentially, which the hardware prefetcher
            // hides; the band-outer nest that would read them only once
            // measures ~20% slower on AVX2 because it loses the hot
            // panel. Bands touch disjoint C rows, so they run in
            // parallel; each tile's K-block contribution is still one
            // kernel call + one scatter, so the per-C-element
            // accumulation order is independent of both the loop nest
            // and the thread count.
            for (std::int64_t q = 0; q < npanels; ++q) {
                const float *bp = bpack.get() + q * kc * nr;
                const std::int64_t cols = std::min(nr, nc - q * nr);
                parallelFor(0, nbands, 1,
                            [&](std::int64_t bb, std::int64_t be) {
                    float acc[kSparseTileMaxRows * simd::kMaxGemmNr];
                    for (std::int64_t b = bb; b < be; ++b) {
                        for (std::int64_t i = act_ptr
                                 [static_cast<std::size_t>(b)];
                             i < act_ptr[static_cast<std::size_t>(b + 1)];
                             ++i) {
                            const std::int64_t t = act_tiles
                                [static_cast<std::size_t>(i)];
                            const GroupedSparseMatrix::Tile &tl =
                                a.tiles[static_cast<std::size_t>(t)];
                            const std::int64_t lo =
                                tlo[static_cast<std::size_t>(t)];
                            kn.gemmSparseMultiRowMicroKernel(
                                a.vals.data() + tl.val_off + lo,
                                tl.ncols, tl.nrows,
                                a.cols.data() + tl.col_off + lo,
                                tcnt[static_cast<std::size_t>(t)], k0, bp,
                                nr, acc);
                            // x * 1.0f == x bitwise, so the alpha == 1
                            // branch is a pure fast path (drops a
                            // multiply per scattered element).
                            if (alpha == 1.0f) {
                                for (std::int32_t r = 0; r < tl.nrows;
                                     ++r) {
                                    float *crow = pc + tl.row[r] * ldc
                                        + jc + q * nr;
                                    const float *arow = acc + r * nr;
                                    for (std::int64_t cidx = 0;
                                         cidx < cols; ++cidx)
                                        crow[cidx] += arow[cidx];
                                }
                            } else {
                                for (std::int32_t r = 0; r < tl.nrows;
                                     ++r) {
                                    float *crow = pc + tl.row[r] * ldc
                                        + jc + q * nr;
                                    const float *arow = acc + r * nr;
                                    for (std::int64_t cidx = 0;
                                         cidx < cols; ++cidx)
                                        crow[cidx] += alpha * arow[cidx];
                                }
                            }
                        }
                    }
                });
            }

            if (a.remainder.nnz() != 0)
                sparseRowsKcPass(a.remainder, k0, kc, jc, nc, npanels,
                                 alpha, bpack.get(), pc, ldc, kn);
        }
    }
}

void
gemmSparseARaw(const SparseRowMatrix &a, const float *pb, std::int64_t ldb,
               std::int64_t n, float alpha, float beta, float *pc,
               std::int64_t ldc)
{
    if (!a.validated)
        checkSparseOperand(a);
    const std::int64_t m = a.rows;

    scaleCRows(pc, m, n, ldc, beta);
    if (m == 0 || n == 0 || a.nnz() == 0)
        return;

    // Small problems: panel packing overhead dominates. The threshold is
    // in *useful* multiply-adds, which for the sparse operand is nnz * n.
    if (a.nnz() * n <= kGemmScalarFallbackMacs) {
        sparseRowScanRaw(a, pb, ldb, n, alpha, pc, ldc);
        return;
    }

    gemmSparseBlockedDriver(
        a, n, alpha,
        [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
            std::int64_t nc, std::int64_t nr, float *bp) {
            packB(pb, ldb, false, k0, j0, kc, nc, nr, bp);
        },
        pc, ldc);
}

void
gemmSparseA(const SparseRowMatrix &a, const Tensor &b, Tensor &c,
            float alpha, float beta)
{
    checkSparseGemmShapes(a, b, c, "gemmSparseA");
    gemmSparseARaw(a, b.data(), b.dim(1), b.dim(1), alpha, beta, c.data(),
                   b.dim(1));
}

void
validateGroupedOperand(GroupedSparseMatrix &a)
{
    checkSparseOperand(a.rows);
    checkSparseOperand(a.remainder);
    checkGroupedOperand(a);
    a.rows.validated = true;
    a.remainder.validated = true;
    a.validated = true;
}

void
gemmSparseARaw(const GroupedSparseMatrix &a, const float *pb,
               std::int64_t ldb, std::int64_t n, float alpha, float beta,
               float *pc, std::int64_t ldc)
{
    // Disabled knob, tile-free operands, and small problems all route
    // through the single-row entry point on the embedded full operand —
    // the exact code the ungrouped path runs, so results are bit-identical.
    if (!sparseMultiRowEnabled() || a.tiles.empty()
        || a.rows.nnz() * n <= kGemmScalarFallbackMacs) {
        gemmSparseARaw(a.rows, pb, ldb, n, alpha, beta, pc, ldc);
        return;
    }
    if (!a.validated) {
        checkSparseOperand(a.rows);
        checkSparseOperand(a.remainder);
        checkGroupedOperand(a);
    }
    const std::int64_t m = a.rows.rows;

    scaleCRows(pc, m, n, ldc, beta);
    if (m == 0 || n == 0 || a.rows.nnz() == 0)
        return;

    gemmSparseGroupedBlockedDriver(
        a, n, alpha,
        [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
            std::int64_t nc, std::int64_t nr, float *bp) {
            packB(pb, ldb, false, k0, j0, kc, nc, nr, bp);
        },
        pc, ldc);
}

void
gemmSparseA(const GroupedSparseMatrix &a, const Tensor &b, Tensor &c,
            float alpha, float beta)
{
    checkSparseGemmShapes(a.rows, b, c, "gemmSparseA");
    gemmSparseARaw(a, b.data(), b.dim(1), b.dim(1), alpha, beta, c.data(),
                   b.dim(1));
}

void
gemmSparseAReference(const SparseRowMatrix &a, const Tensor &b, Tensor &c,
                     float alpha, float beta)
{
    checkSparseGemmShapes(a, b, c, "gemmSparseAReference");
    if (!a.validated)
        checkSparseOperand(a);
    const std::int64_t n = b.dim(1);
    float *pc = c.data();
    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < a.rows * n; ++i)
            pc[i] = 0.0f;
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < a.rows * n; ++i)
            pc[i] *= beta;
    }
    sparseRowScanRaw(a, b.data(), n, n, alpha, pc, n);
}

Tensor
matmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor c(Shape({m, n}));
    gemm(a, trans_a, b, trans_b, c);
    return c;
}

namespace {

/** Panic unless the geometry yields a non-empty output feature map. */
void
checkConvOutputDims(const ConvGeom &g, const char *what)
{
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    panicIf(oh <= 0 || ow <= 0, what, ": non-positive output dims ", oh,
            "x", ow, " (kernel ", g.k_h, "x", g.k_w,
            " larger than padded input ", g.in_h, "x", g.in_w, " pad ",
            g.pad, "?)");
}

/**
 * Materialize the virtual im2col matrix row-major into pc (row stride
 * outH*outW). Shared by the Tensor-returning im2col() and the fused
 * entry points' small-problem fallbacks, so fused and unfused paths
 * gather padding with the same code.
 */
void
im2colInto(const Im2colB &b, float *pc)
{
    const ConvGeom &g = b.g;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const float *pin = b.slab;

    // Each row (c, kh, kw) writes a disjoint slab of cols.
    const std::int64_t nrows = g.in_c * g.k_h * g.k_w;
    const std::int64_t grain =
        std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, oh * ow));
    parallelFor(0, nrows, grain, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t row = rb; row < re; ++row) {
            const std::int64_t c = row / (g.k_h * g.k_w);
            const std::int64_t kh = (row / g.k_w) % g.k_h;
            const std::int64_t kw = row % g.k_w;
            const float *src = pin + c * g.in_h * g.in_w;
            float *dst = pc + row * oh * ow;
            for (std::int64_t y = 0; y < oh; ++y) {
                const std::int64_t ih = y * g.stride - g.pad + kh;
                float *drow = dst + y * ow;
                if (ih < 0 || ih >= g.in_h) {
                    std::memset(drow, 0,
                                static_cast<std::size_t>(ow)
                                    * sizeof(float));
                    continue;
                }
                const float *srow = src + ih * g.in_w;
                for (std::int64_t x = 0; x < ow; ++x) {
                    const std::int64_t iw = x * g.stride - g.pad + kw;
                    drow[x] = (iw >= 0 && iw < g.in_w) ? srow[iw] : 0.0f;
                }
            }
        }
    });
}

} // namespace

Tensor
im2col(const Tensor &input, std::int64_t n, const ConvGeom &g,
       std::int64_t c0)
{
    fatalIf(input.rank() != 4, "im2col expects NCHW input");
    fatalIf(c0 < 0 || c0 + g.in_c > input.dim(1)
                || input.dim(2) != g.in_h || input.dim(3) != g.in_w,
            "im2col geometry mismatch with input ", input.shape().str());
    checkConvOutputDims(g, "im2col");

    Tensor cols(Shape({g.in_c * g.k_h * g.k_w, g.outH() * g.outW()}));
    const float *pin = input.data()
        + (n * input.dim(1) + c0) * g.in_h * g.in_w;
    im2colInto(Im2colB{pin, g}, cols.data());
    return cols;
}

void
packBFromIm2col(const Im2colB &b, std::int64_t k0, std::int64_t j0,
                std::int64_t kc, std::int64_t nc, std::int64_t nr,
                float *bp)
{
    const ConvGeom &g = b.g;
    checkConvOutputDims(g, "packBFromIm2col");
    const std::int64_t ow = g.outW();
    const float *pin = b.slab;

    // Panels write disjoint bp regions, so packing runs in parallel (the
    // pool is otherwise idle between macro-kernel sweeps) without
    // affecting the packed bytes — same split as packB. Within a panel
    // the kk loop walks the virtual rows (c, kh, kw); the cidx loop walks
    // output positions of one im2col row, split into runs that stay on
    // one output row y (ih fixed), so the padding tests hoist out of the
    // per-element loop and the stride-1 common case degenerates to one
    // memcpy per run.
    const std::int64_t npanels = (nc + nr - 1) / nr;
    parallelFor(0, npanels, 4, [&](std::int64_t qb, std::int64_t qe) {
        for (std::int64_t q = qb; q < qe; ++q) {
            float *dst = bp + q * kc * nr;
            const std::int64_t cols = std::min(nr, nc - q * nr);
            const std::int64_t jbase = j0 + q * nr;
            // Walk the (c, kh, kw) decomposition of the virtual row
            // incrementally: kw carries into kh carries into c, so the kk
            // loop does no divisions.
            std::int64_t c = k0 / (g.k_h * g.k_w);
            std::int64_t kh = (k0 / g.k_w) % g.k_h;
            std::int64_t kw = k0 % g.k_w;
            const float *src = pin + c * g.in_h * g.in_w;
            for (std::int64_t kk = 0; kk < kc; ++kk) {
                float *drow = dst + kk * nr;
                std::int64_t cidx = 0;
                while (cidx < cols) {
                    const std::int64_t j = jbase + cidx;
                    const std::int64_t y = j / ow;
                    const std::int64_t x0 = j % ow;
                    const std::int64_t run =
                        std::min(cols - cidx, ow - x0);
                    const std::int64_t ih = y * g.stride - g.pad + kh;
                    if (ih < 0 || ih >= g.in_h) {
                        std::memset(drow + cidx, 0,
                                    static_cast<std::size_t>(run)
                                        * sizeof(float));
                    } else if (g.stride == 1) {
                        // iw = x - pad + kw is contiguous in x; split the
                        // run into left padding / in-bounds memcpy / right
                        // padding.
                        const std::int64_t iw0 = x0 - g.pad + kw;
                        const std::int64_t lo =
                            std::clamp<std::int64_t>(-iw0, 0, run);
                        const std::int64_t hi =
                            std::clamp<std::int64_t>(g.in_w - iw0, lo, run);
                        if (lo > 0)
                            std::memset(drow + cidx, 0,
                                        static_cast<std::size_t>(lo)
                                            * sizeof(float));
                        if (hi > lo)
                            std::memcpy(drow + cidx + lo,
                                        src + ih * g.in_w + iw0 + lo,
                                        static_cast<std::size_t>(hi - lo)
                                            * sizeof(float));
                        if (run > hi)
                            std::memset(drow + cidx + hi, 0,
                                        static_cast<std::size_t>(run - hi)
                                            * sizeof(float));
                    } else {
                        const float *srow = src + ih * g.in_w;
                        for (std::int64_t t = 0; t < run; ++t) {
                            const std::int64_t iw =
                                (x0 + t) * g.stride - g.pad + kw;
                            drow[cidx + t] = (iw >= 0 && iw < g.in_w)
                                ? srow[iw]
                                : 0.0f;
                        }
                    }
                    cidx += run;
                }
                for (std::int64_t t = cols; t < nr; ++t)
                    drow[t] = 0.0f;
                if (++kw == g.k_w) {
                    kw = 0;
                    if (++kh == g.k_h) {
                        kh = 0;
                        ++c;
                        src += g.in_h * g.in_w;
                    }
                }
            }
        }
    });
}

void
gemmIm2colRaw(std::int64_t m, float alpha, const float *pa,
              std::int64_t lda, const Im2colB &b, float beta, float *pc,
              std::int64_t ldc)
{
    checkConvOutputDims(b.g, "gemmIm2colRaw");
    const std::int64_t k = b.rows();
    const std::int64_t n = b.cols();

    // Small problems take the same materialize + scalar-reference route
    // the unfused path does (im2col + gemmRaw), keeping fused and unfused
    // bit-identical on both sides of the crossover.
    if (m * n * k <= kGemmScalarFallbackMacs) {
        std::vector<float> cols(static_cast<std::size_t>(k * n));
        im2colInto(b, cols.data());
        gemmReferenceRaw(m, n, k, alpha, pa, lda, false, cols.data(), n,
                         false, beta, pc, ldc);
        return;
    }

    scaleCRows(pc, m, n, ldc, beta);
    gemmBlockedDriver(m, n, k, alpha, pa, lda, false,
                      [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
                          std::int64_t nc, std::int64_t nr, float *bp) {
                          packBFromIm2col(b, k0, j0, kc, nc, nr, bp);
                      },
                      pc, ldc);
}

void
gemmSparseAIm2col(const SparseRowMatrix &a, const Im2colB &b, float alpha,
                  float beta, float *pc, std::int64_t ldc)
{
    if (!a.validated)
        checkSparseOperand(a);
    checkConvOutputDims(b.g, "gemmSparseAIm2col");
    panicIf(a.cols != b.rows(), "gemmSparseAIm2col inner dims mismatch: ",
            a.cols, " vs ", b.rows());
    const std::int64_t m = a.rows;
    const std::int64_t k = b.rows();
    const std::int64_t n = b.cols();

    scaleCRows(pc, m, n, ldc, beta);
    if (m == 0 || n == 0 || a.nnz() == 0)
        return;

    // Same crossover as gemmSparseARaw, same materialize fallback as the
    // unfused composition — bit-identity holds on both sides.
    if (a.nnz() * n <= kGemmScalarFallbackMacs) {
        std::vector<float> cols(static_cast<std::size_t>(k * n));
        im2colInto(b, cols.data());
        sparseRowScanRaw(a, cols.data(), n, n, alpha, pc, ldc);
        return;
    }

    gemmSparseBlockedDriver(
        a, n, alpha,
        [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
            std::int64_t nc, std::int64_t nr, float *bp) {
            packBFromIm2col(b, k0, j0, kc, nc, nr, bp);
        },
        pc, ldc);
}

void
gemmSparseAIm2col(const GroupedSparseMatrix &a, const Im2colB &b,
                  float alpha, float beta, float *pc, std::int64_t ldc)
{
    // Same forwarding rule as the grouped gemmSparseARaw: knob off,
    // nothing tiled, or below the crossover -> the single-row entry point
    // on the embedded full operand, bit-identical to the ungrouped path.
    if (!sparseMultiRowEnabled() || a.tiles.empty()
        || a.rows.nnz() * b.cols() <= kGemmScalarFallbackMacs) {
        gemmSparseAIm2col(a.rows, b, alpha, beta, pc, ldc);
        return;
    }
    if (!a.validated) {
        checkSparseOperand(a.rows);
        checkSparseOperand(a.remainder);
        checkGroupedOperand(a);
    }
    checkConvOutputDims(b.g, "gemmSparseAIm2col");
    panicIf(a.rows.cols != b.rows(),
            "gemmSparseAIm2col inner dims mismatch: ", a.rows.cols, " vs ",
            b.rows());
    const std::int64_t m = a.rows.rows;
    const std::int64_t n = b.cols();

    scaleCRows(pc, m, n, ldc, beta);
    if (m == 0 || n == 0 || a.rows.nnz() == 0)
        return;

    gemmSparseGroupedBlockedDriver(
        a, n, alpha,
        [&](std::int64_t k0, std::int64_t j0, std::int64_t kc,
            std::int64_t nc, std::int64_t nr, float *bp) {
            packBFromIm2col(b, k0, j0, kc, nc, nr, bp);
        },
        pc, ldc);
}

namespace {

/** -1 = unresolved (read MVQ_FUSED_CONV on first query). */
std::atomic<int> g_fused_conv{-1};

/** -1 = unresolved (read MVQ_SPARSE_MULTIROW on first query). */
std::atomic<int> g_sparse_multirow{-1};

} // namespace

bool
fusedConvEnabled()
{
    int v = g_fused_conv.load(std::memory_order_acquire);
    if (v < 0) {
        // The registry caches the raw environment read; this atomic only
        // keeps the per-forward query a single load (and carries the
        // programmatic setFusedConvEnabled override).
        v = env::flag("MVQ_FUSED_CONV", true) ? 1 : 0;
        g_fused_conv.store(v, std::memory_order_release);
    }
    return v == 1;
}

void
setFusedConvEnabled(bool on)
{
    g_fused_conv.store(on ? 1 : 0, std::memory_order_release);
}

bool
sparseMultiRowEnabled()
{
    int v = g_sparse_multirow.load(std::memory_order_acquire);
    if (v < 0) {
        v = env::flag("MVQ_SPARSE_MULTIROW", true) ? 1 : 0;
        g_sparse_multirow.store(v, std::memory_order_release);
    }
    return v == 1;
}

void
setSparseMultiRowEnabled(bool on)
{
    g_sparse_multirow.store(on ? 1 : 0, std::memory_order_release);
}

void
col2im(const Tensor &cols, Tensor &grad, std::int64_t n, const ConvGeom &g,
       std::int64_t c0)
{
    fatalIf(grad.rank() != 4, "col2im expects NCHW grad");
    fatalIf(c0 < 0 || c0 + g.in_c > grad.dim(1) || grad.dim(2) != g.in_h
                || grad.dim(3) != g.in_w,
            "col2im geometry mismatch with grad ", grad.shape().str());
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    panicIf(oh <= 0 || ow <= 0, "col2im: non-positive output dims ", oh,
            "x", ow, " (kernel ", g.k_h, "x", g.k_w,
            " larger than padded input ", g.in_h, "x", g.in_w, " pad ",
            g.pad, "?)");
    fatalIf(cols.dim(0) != g.in_c * g.k_h * g.k_w || cols.dim(1) != oh * ow,
            "col2im column shape mismatch: ", cols.shape().str());

    const float *pc = cols.data();
    float *pg = grad.data() + (n * grad.dim(1) + c0) * g.in_h * g.in_w;

    // Rows sharing a channel scatter into the same image plane, so the
    // parallel split is over channels (disjoint planes); the kh/kw rows of
    // a channel run sequentially within a chunk.
    parallelFor(0, g.in_c, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            float *plane = pg + c * g.in_h * g.in_w;
            for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                    const std::int64_t row =
                        (c * g.k_h + kh) * g.k_w + kw;
                    const float *src = pc + row * oh * ow;
                    for (std::int64_t y = 0; y < oh; ++y) {
                        const std::int64_t ih = y * g.stride - g.pad + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        float *prow = plane + ih * g.in_w;
                        const float *srow = src + y * ow;
                        for (std::int64_t x = 0; x < ow; ++x) {
                            const std::int64_t iw =
                                x * g.stride - g.pad + kw;
                            if (iw >= 0 && iw < g.in_w)
                                prow[iw] += srow[x];
                        }
                    }
                }
            }
        }
    });
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "add shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "addInPlace shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += b[i];
}

void
axpy(Tensor &a, float alpha, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "axpy shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += alpha * b[i];
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "mul shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

void
scaleInPlace(Tensor &a, float s)
{
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] *= s;
}

double
sse(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "sse shape mismatch");
    double s = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        s += d * d;
    }
    return s;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace mvq
