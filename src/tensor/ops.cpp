#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd_dispatch.hpp"

namespace mvq {

namespace {

void
checkRank2(const Tensor &t, const char *name)
{
    fatalIf(t.rank() != 2, name, " must be rank-2, got ", t.shape().str());
}

void
checkGemmShapes(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
                const Tensor &c, std::int64_t &m, std::int64_t &n,
                std::int64_t &k)
{
    checkRank2(a, "gemm A");
    checkRank2(b, "gemm B");
    checkRank2(c, "gemm C");
    m = trans_a ? a.dim(1) : a.dim(0);
    k = trans_a ? a.dim(0) : a.dim(1);
    const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    n = trans_b ? b.dim(0) : b.dim(1);
    fatalIf(k != kb, "gemm inner dims mismatch: ", k, " vs ", kb);
    fatalIf(c.dim(0) != m || c.dim(1) != n,
            "gemm output shape mismatch: ", c.shape().str());
}

// Cache-blocking parameters. The active ISA's micro-kernel (see
// common/simd_dispatch.hpp) computes an mr x nr tile of C in registers —
// the tile shape is per-ISA (scalar 4x8, AVX2 6x16, NEON 4x16); panels of
// op(A) (MC x KC) and op(B) (KC x NC) are packed into contiguous,
// zero-padded buffers so the macro-kernel is branchless and
// layout-independent (all four transpose cases pack to one format).
constexpr std::int64_t MC = 64;
constexpr std::int64_t KC = 256;
constexpr std::int64_t NC = 2048;

/**
 * Pack op(A)[i0:i0+mc, k0:k0+kc] (alpha pre-applied) into mr-row panels:
 * panel p holds columns-of-mr values ap[kk*mr + r] = alpha * op(A)(i0 +
 * p*mr + r, k0 + kk). Rows past mc pad with zeros.
 */
void
packA(const float *pa, std::int64_t lda, bool trans_a, std::int64_t i0,
      std::int64_t k0, std::int64_t mc, std::int64_t kc, float alpha,
      std::int64_t mr, float *ap)
{
    for (std::int64_t p = 0; p < mc; p += mr) {
        const std::int64_t rows = std::min(mr, mc - p);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
            for (std::int64_t r = 0; r < rows; ++r) {
                const std::int64_t i = i0 + p + r;
                const std::int64_t kidx = k0 + kk;
                ap[kk * mr + r] = alpha
                    * (trans_a ? pa[kidx * lda + i] : pa[i * lda + kidx]);
            }
            for (std::int64_t r = rows; r < mr; ++r)
                ap[kk * mr + r] = 0.0f;
        }
        ap += kc * mr;
    }
}

/**
 * Pack op(B)[k0:k0+kc, j0:j0+nc] into nr-column panels: panel q holds
 * bp[kk*nr + cidx] = op(B)(k0 + kk, j0 + q*nr + cidx), zero-padded past nc.
 */
void
packB(const float *pb, std::int64_t ldb, bool trans_b, std::int64_t k0,
      std::int64_t j0, std::int64_t kc, std::int64_t nc, std::int64_t nr,
      float *bp)
{
    // Panels write disjoint bpack regions, so packing runs in parallel
    // (the pool is otherwise idle here) without affecting determinism.
    const std::int64_t npanels = (nc + nr - 1) / nr;
    parallelFor(0, npanels, 4, [&](std::int64_t qb, std::int64_t qe) {
        for (std::int64_t q = qb; q < qe; ++q) {
            float *dst = bp + q * kc * nr;
            const std::int64_t cols = std::min(nr, nc - q * nr);
            for (std::int64_t kk = 0; kk < kc; ++kk) {
                const std::int64_t kidx = k0 + kk;
                for (std::int64_t cidx = 0; cidx < cols; ++cidx) {
                    const std::int64_t j = j0 + q * nr + cidx;
                    dst[kk * nr + cidx] =
                        trans_b ? pb[j * ldb + kidx] : pb[kidx * ldb + j];
                }
                for (std::int64_t cidx = cols; cidx < nr; ++cidx)
                    dst[kk * nr + cidx] = 0.0f;
            }
        }
    });
}

} // namespace

void
gemmReference(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
              Tensor &c, float alpha, float beta)
{
    std::int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);

    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const std::int64_t lda = a.dim(1);
    const std::int64_t ldb = b.dim(1);

    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < m * n; ++i)
            pc[i] = 0.0f;
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < m * n; ++i)
            pc[i] *= beta;
    }

    // i-k-j loop order keeps the inner loop contiguous on B and C for the
    // common non-transposed case.
    if (!trans_a && !trans_b) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = alpha * pa[i * lda + kk];
                if (av == 0.0f)
                    continue;
                const float *brow = pb + kk * ldb;
                float *crow = pc + i * n;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
        return;
    }

    auto a_at = [&](std::int64_t i, std::int64_t kk) {
        return trans_a ? pa[kk * lda + i] : pa[i * lda + kk];
    };
    auto b_at = [&](std::int64_t kk, std::int64_t j) {
        return trans_b ? pb[j * ldb + kk] : pb[kk * ldb + j];
    };
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += a_at(i, kk) * b_at(kk, j);
            pc[i * n + j] += alpha * acc;
        }
    }
}

void
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     Tensor &c, float alpha, float beta)
{
    std::int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);

    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const std::int64_t lda = a.dim(1);
    const std::int64_t ldb = b.dim(1);

    // Very small problems: packing overhead dominates, use the scalar
    // kernel. The threshold is in multiply-adds.
    if (m * n * k <= kGemmScalarFallbackMacs) {
        gemmReference(a, trans_a, b, trans_b, c, alpha, beta);
        return;
    }

    // Register-tile shape comes from the active ISA's micro-kernel.
    const simd::Kernels &kn = simd::kernels();
    const std::int64_t mr = kn.mr;
    const std::int64_t nr = kn.nr;

    // Scale C by beta once, in parallel over rows.
    if (beta == 0.0f) {
        parallelFor(0, m, 16, [&](std::int64_t rb, std::int64_t re) {
            std::memset(pc + rb * n, 0,
                        static_cast<std::size_t>((re - rb) * n)
                            * sizeof(float));
        });
    } else if (beta != 1.0f) {
        parallelFor(0, m, 16, [&](std::int64_t rb, std::int64_t re) {
            for (std::int64_t i = rb * n; i < re * n; ++i)
                pc[i] *= beta;
        });
    }

    const std::int64_t kc_max = std::min(KC, k);
    const std::int64_t nc_max = std::min(NC, n);
    std::vector<float> bpack(static_cast<std::size_t>(
        kc_max * ((nc_max + nr - 1) / nr) * nr));

    // jc/kc loops are sequential (each C element accumulates its KC blocks
    // in a fixed order); the MC row blocks inside run in parallel and touch
    // disjoint rows of C, so results are identical for any thread count
    // (within a given ISA — different micro-kernels reorder the lane sums).
    for (std::int64_t jc = 0; jc < n; jc += NC) {
        const std::int64_t nc = std::min(NC, n - jc);
        const std::int64_t npanels = (nc + nr - 1) / nr;
        for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
            const std::int64_t kc = std::min(KC, k - k0);
            packB(pb, ldb, trans_b, k0, jc, kc, nc, nr, bpack.data());

            parallelFor(0, (m + MC - 1) / MC, 1,
                        [&](std::int64_t blk_b, std::int64_t blk_e) {
                std::vector<float> apack(static_cast<std::size_t>(
                    kc * ((MC + mr - 1) / mr) * mr));
                float acc[simd::kMaxGemmMr * simd::kMaxGemmNr];
                for (std::int64_t blk = blk_b; blk < blk_e; ++blk) {
                    const std::int64_t i0 = blk * MC;
                    const std::int64_t mc = std::min(MC, m - i0);
                    packA(pa, lda, trans_a, i0, k0, mc, kc, alpha, mr,
                          apack.data());
                    const std::int64_t mpanels = (mc + mr - 1) / mr;
                    for (std::int64_t q = 0; q < npanels; ++q) {
                        const float *bp = bpack.data() + q * kc * nr;
                        const std::int64_t cols =
                            std::min(nr, nc - q * nr);
                        for (std::int64_t p = 0; p < mpanels; ++p) {
                            const float *ap = apack.data() + p * kc * mr;
                            std::fill(acc, acc + mr * nr, 0.0f);
                            kn.gemmMicroKernel(ap, bp, kc, acc);
                            const std::int64_t rows =
                                std::min(mr, mc - p * mr);
                            for (std::int64_t r = 0; r < rows; ++r) {
                                float *crow = pc
                                    + (i0 + p * mr + r) * n + jc + q * nr;
                                const float *arow = acc + r * nr;
                                for (std::int64_t cidx = 0; cidx < cols;
                                     ++cidx)
                                    crow[cidx] += arow[cidx];
                            }
                        }
                    }
                }
            });
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor c(Shape({m, n}));
    gemm(a, trans_a, b, trans_b, c);
    return c;
}

Tensor
im2col(const Tensor &input, std::int64_t n, const ConvGeom &g,
       std::int64_t c0)
{
    fatalIf(input.rank() != 4, "im2col expects NCHW input");
    fatalIf(c0 < 0 || c0 + g.in_c > input.dim(1)
                || input.dim(2) != g.in_h || input.dim(3) != g.in_w,
            "im2col geometry mismatch with input ", input.shape().str());

    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor cols(Shape({g.in_c * g.k_h * g.k_w, oh * ow}));
    float *pc = cols.data();
    const float *pin = input.data()
        + (n * input.dim(1) + c0) * g.in_h * g.in_w;

    // Each row (c, kh, kw) writes a disjoint slab of cols.
    const std::int64_t nrows = g.in_c * g.k_h * g.k_w;
    const std::int64_t grain =
        std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, oh * ow));
    parallelFor(0, nrows, grain, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t row = rb; row < re; ++row) {
            const std::int64_t c = row / (g.k_h * g.k_w);
            const std::int64_t kh = (row / g.k_w) % g.k_h;
            const std::int64_t kw = row % g.k_w;
            const float *src = pin + c * g.in_h * g.in_w;
            float *dst = pc + row * oh * ow;
            for (std::int64_t y = 0; y < oh; ++y) {
                const std::int64_t ih = y * g.stride - g.pad + kh;
                float *drow = dst + y * ow;
                if (ih < 0 || ih >= g.in_h) {
                    std::memset(drow, 0,
                                static_cast<std::size_t>(ow)
                                    * sizeof(float));
                    continue;
                }
                const float *srow = src + ih * g.in_w;
                for (std::int64_t x = 0; x < ow; ++x) {
                    const std::int64_t iw = x * g.stride - g.pad + kw;
                    drow[x] = (iw >= 0 && iw < g.in_w) ? srow[iw] : 0.0f;
                }
            }
        }
    });
    return cols;
}

void
col2im(const Tensor &cols, Tensor &grad, std::int64_t n, const ConvGeom &g,
       std::int64_t c0)
{
    fatalIf(grad.rank() != 4, "col2im expects NCHW grad");
    fatalIf(c0 < 0 || c0 + g.in_c > grad.dim(1) || grad.dim(2) != g.in_h
                || grad.dim(3) != g.in_w,
            "col2im geometry mismatch with grad ", grad.shape().str());
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    fatalIf(cols.dim(0) != g.in_c * g.k_h * g.k_w || cols.dim(1) != oh * ow,
            "col2im column shape mismatch: ", cols.shape().str());

    const float *pc = cols.data();
    float *pg = grad.data() + (n * grad.dim(1) + c0) * g.in_h * g.in_w;

    // Rows sharing a channel scatter into the same image plane, so the
    // parallel split is over channels (disjoint planes); the kh/kw rows of
    // a channel run sequentially within a chunk.
    parallelFor(0, g.in_c, 1, [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
            float *plane = pg + c * g.in_h * g.in_w;
            for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                    const std::int64_t row =
                        (c * g.k_h + kh) * g.k_w + kw;
                    const float *src = pc + row * oh * ow;
                    for (std::int64_t y = 0; y < oh; ++y) {
                        const std::int64_t ih = y * g.stride - g.pad + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        float *prow = plane + ih * g.in_w;
                        const float *srow = src + y * ow;
                        for (std::int64_t x = 0; x < ow; ++x) {
                            const std::int64_t iw =
                                x * g.stride - g.pad + kw;
                            if (iw >= 0 && iw < g.in_w)
                                prow[iw] += srow[x];
                        }
                    }
                }
            }
        }
    });
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "add shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "addInPlace shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += b[i];
}

void
axpy(Tensor &a, float alpha, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "axpy shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += alpha * b[i];
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "mul shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

void
scaleInPlace(Tensor &a, float s)
{
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] *= s;
}

double
sse(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "sse shape mismatch");
    double s = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        s += d * d;
    }
    return s;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace mvq
