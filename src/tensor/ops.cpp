#include "tensor/ops.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mvq {

namespace {

void
checkRank2(const Tensor &t, const char *name)
{
    fatalIf(t.rank() != 2, name, " must be rank-2, got ", t.shape().str());
}

} // namespace

void
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     Tensor &c, float alpha, float beta)
{
    checkRank2(a, "gemm A");
    checkRank2(b, "gemm B");
    checkRank2(c, "gemm C");

    const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
    const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
    fatalIf(k != kb, "gemm inner dims mismatch: ", k, " vs ", kb);
    fatalIf(c.dim(0) != m || c.dim(1) != n,
            "gemm output shape mismatch: ", c.shape().str());

    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const std::int64_t lda = a.dim(1);
    const std::int64_t ldb = b.dim(1);

    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < m * n; ++i)
            pc[i] = 0.0f;
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < m * n; ++i)
            pc[i] *= beta;
    }

    // i-k-j loop order keeps the inner loop contiguous on B and C for the
    // common non-transposed case.
    if (!trans_a && !trans_b) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = alpha * pa[i * lda + kk];
                if (av == 0.0f)
                    continue;
                const float *brow = pb + kk * ldb;
                float *crow = pc + i * n;
                for (std::int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
        return;
    }

    auto a_at = [&](std::int64_t i, std::int64_t kk) {
        return trans_a ? pa[kk * lda + i] : pa[i * lda + kk];
    };
    auto b_at = [&](std::int64_t kk, std::int64_t j) {
        return trans_b ? pb[j * ldb + kk] : pb[kk * ldb + j];
    };
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += a_at(i, kk) * b_at(kk, j);
            pc[i * n + j] += alpha * acc;
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor c(Shape({m, n}));
    gemm(a, trans_a, b, trans_b, c);
    return c;
}

Tensor
im2col(const Tensor &input, std::int64_t n, const ConvGeom &g)
{
    fatalIf(input.rank() != 4, "im2col expects NCHW input");
    fatalIf(input.dim(1) != g.in_c || input.dim(2) != g.in_h
                || input.dim(3) != g.in_w,
            "im2col geometry mismatch with input ", input.shape().str());

    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor cols(Shape({g.in_c * g.k_h * g.k_w, oh * ow}));
    float *pc = cols.data();

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_c; ++c) {
        for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
            for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
                float *dst = pc + row * oh * ow;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t ih = y * g.stride - g.pad + kh;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t iw = x * g.stride - g.pad + kw;
                        float v = 0.0f;
                        if (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w)
                            v = input.at(n, c, ih, iw);
                        dst[y * ow + x] = v;
                    }
                }
            }
        }
    }
    return cols;
}

void
col2im(const Tensor &cols, Tensor &grad, std::int64_t n, const ConvGeom &g)
{
    fatalIf(grad.rank() != 4, "col2im expects NCHW grad");
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    fatalIf(cols.dim(0) != g.in_c * g.k_h * g.k_w || cols.dim(1) != oh * ow,
            "col2im column shape mismatch: ", cols.shape().str());

    const float *pc = cols.data();
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_c; ++c) {
        for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
            for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
                const float *src = pc + row * oh * ow;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t ih = y * g.stride - g.pad + kh;
                    if (ih < 0 || ih >= g.in_h)
                        continue;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t iw = x * g.stride - g.pad + kw;
                        if (iw < 0 || iw >= g.in_w)
                            continue;
                        grad.at(n, c, ih, iw) += src[y * ow + x];
                    }
                }
            }
        }
    }
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "add shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "addInPlace shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += b[i];
}

void
axpy(Tensor &a, float alpha, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "axpy shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] += alpha * b[i];
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "mul shape mismatch");
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

void
scaleInPlace(Tensor &a, float s)
{
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] *= s;
}

double
sse(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "sse shape mismatch");
    double s = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        s += d * d;
    }
    return s;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace mvq
