#include "tensor/tensor.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mvq {

Tensor::Tensor(Shape shape)
    : shape_(shape),
      data_(static_cast<std::size_t>(shape.numel()), 0.0f)
{
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape),
      data_(static_cast<std::size_t>(shape.numel()), fill)
{
}

void
Tensor::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = rng.normal(mean, stddev);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = rng.uniform(lo, hi);
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    fatalIf(new_shape.numel() != numel(),
            "reshape ", shape_.str(), " -> ", new_shape.str(),
            " changes element count");
    Tensor out(new_shape);
    out.data_ = data_;
    return out;
}

double
Tensor::sumSquares() const
{
    double s = 0.0;
    for (float x : data_)
        s += static_cast<double>(x) * static_cast<double>(x);
    return s;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float x : data_)
        s += static_cast<double>(x);
    return s;
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (float x : data_)
        m = std::max(m, std::fabs(x));
    return m;
}

std::int64_t
Tensor::countZeros() const
{
    std::int64_t n = 0;
    for (float x : data_) {
        if (x == 0.0f)
            ++n;
    }
    return n;
}

} // namespace mvq
