/**
 * @file
 * Owned-or-borrowed storage for sparse-operand arrays. The packed gemm
 * operands (SparseRowMatrix / GroupedSparseMatrix) historically owned
 * their arrays as std::vectors, which forces every serving process to
 * rebuild them from the bit-packed model stream at startup. The MVQI
 * model image (core/io) instead stores the packed arrays verbatim, so a
 * loaded operand can *alias* the mmap'ed file directly — zero copies,
 * zero decode, and N processes share one page-cached image. OperandArray
 * is the storage type that makes both modes share one struct definition.
 */

#ifndef MVQ_TENSOR_OPERAND_ARRAY_HPP
#define MVQ_TENSOR_OPERAND_ARRAY_HPP

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace mvq {

/**
 * A dynamic array that is either *owned* (backed by a std::vector — the
 * result of packing an operand at runtime) or *borrowed* (a read-only
 * span over memory something else owns — e.g. one 64-byte-aligned
 * section of an mmap'ed MVQI model image; see core/io/mmap_artifact).
 *
 * The read API (const data()/size()/operator[]/iteration) works in both
 * modes and is what every gemm driver uses — drivers take operands by
 * const reference, so the hot path never copies. The mutating API
 * (push_back, resize, non-const data(), ...) is the builder surface:
 * invoking any of it on a borrowed array first detaches it into owned
 * storage (copy-on-write), so mutation is always safe but never cheap on
 * a borrowed operand — by design, since mutating a serving image's
 * operand would defeat the sharing.
 *
 * The borrowed bytes must stay valid for the lifetime of the borrowing
 * array; the owner (e.g. the ModelArtifact whose image is mapped) is
 * responsible for that, see io::ModelArtifact::sharedOperands for the
 * lifetime-safe packaging.
 */
template <typename T>
class OperandArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "OperandArray elements must be trivially copyable "
                  "(they alias raw image bytes)");

  public:
    OperandArray() = default;
    OperandArray(std::initializer_list<T> init) : owned_(init) {}

    /** Borrow [data, data + count) without copying or taking ownership. */
    static OperandArray
    borrow(const T *data, std::int64_t count)
    {
        OperandArray a;
        a.bdata_ = data;
        a.bsize_ = count;
        a.borrowed_ = true;
        return a;
    }

    OperandArray &
    operator=(std::initializer_list<T> init)
    {
        owned_.assign(init);
        borrowed_ = false;
        bdata_ = nullptr;
        bsize_ = 0;
        return *this;
    }

    /** True when this array aliases externally owned memory. */
    bool borrowed() const { return borrowed_; }

    const T *data() const { return borrowed_ ? bdata_ : owned_.data(); }
    T *data() { ensureOwned(); return owned_.data(); }

    std::size_t
    size() const
    {
        return borrowed_ ? static_cast<std::size_t>(bsize_) : owned_.size();
    }
    bool empty() const { return size() == 0; }

    const T &operator[](std::size_t i) const { return data()[i]; }
    T &operator[](std::size_t i) { ensureOwned(); return owned_[i]; }

    const T &front() const { return data()[0]; }
    const T &back() const { return data()[size() - 1]; }
    T &back() { ensureOwned(); return owned_.back(); }

    const T *begin() const { return data(); }
    const T *end() const { return data() + size(); }
    T *begin() { ensureOwned(); return owned_.data(); }
    T *end() { ensureOwned(); return owned_.data() + owned_.size(); }

    void reserve(std::size_t n) { ensureOwned(); owned_.reserve(n); }
    void resize(std::size_t n) { ensureOwned(); owned_.resize(n); }
    void clear() { owned_.clear(); borrowed_ = false; bdata_ = nullptr; bsize_ = 0; }

    void push_back(const T &v) { ensureOwned(); owned_.push_back(v); }

    /** vector::insert restricted to pointers into this array. */
    template <typename It>
    void
    insert(const T *pos, It first, It last)
    {
        ensureOwned();
        const auto idx = pos - owned_.data();
        owned_.insert(owned_.begin() + idx, first, last);
    }

    friend bool
    operator==(const OperandArray &x, const OperandArray &y)
    {
        return x.size() == y.size()
            && std::equal(x.begin(), x.end(), y.begin());
    }

  private:
    /** Detach a borrowed span into owned storage (copy-on-write). */
    void
    ensureOwned()
    {
        if (borrowed_) {
            owned_.assign(bdata_, bdata_ + bsize_);
            borrowed_ = false;
            bdata_ = nullptr;
            bsize_ = 0;
        }
    }

    std::vector<T> owned_;
    const T *bdata_ = nullptr;
    std::int64_t bsize_ = 0;
    bool borrowed_ = false;
};

} // namespace mvq

#endif // MVQ_TENSOR_OPERAND_ARRAY_HPP
