#include "tensor/shape.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace mvq {

Shape::Shape(std::initializer_list<std::int64_t> dims)
{
    fatalIf(dims.size() == 0 || dims.size() > 4,
            "shape rank must be 1..4, got ", dims.size());
    rank_ = static_cast<int>(dims.size());
    int i = 0;
    for (std::int64_t d : dims) {
        fatalIf(d <= 0, "shape dims must be positive, got ", d);
        dims_[static_cast<std::size_t>(i++)] = d;
    }
    for (; i < 4; ++i)
        dims_[static_cast<std::size_t>(i)] = 1;
}

std::int64_t
Shape::dim(int i) const
{
    fatalIf(i < 0 || i >= rank_, "shape dim ", i, " out of rank ", rank_);
    return dims_[static_cast<std::size_t>(i)];
}

std::int64_t
Shape::numel() const
{
    if (rank_ == 0)
        return 0;
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i)
        n *= dims_[static_cast<std::size_t>(i)];
    return n;
}

bool
Shape::operator==(const Shape &other) const
{
    if (rank_ != other.rank_)
        return false;
    for (int i = 0; i < rank_; ++i) {
        if (dims_[static_cast<std::size_t>(i)]
                != other.dims_[static_cast<std::size_t>(i)]) {
            return false;
        }
    }
    return true;
}

std::string
Shape::str() const
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < rank_; ++i) {
        if (i)
            os << ", ";
        os << dims_[static_cast<std::size_t>(i)];
    }
    os << "]";
    return os.str();
}

} // namespace mvq
