/**
 * @file
 * Tensor kernels: GEMM, im2col/col2im, elementwise arithmetic, reductions.
 * These back both the NN layers and the compression algorithms.
 */

#ifndef MVQ_TENSOR_OPS_HPP
#define MVQ_TENSOR_OPS_HPP

#include "tensor/tensor.hpp"

namespace mvq {

/**
 * Problems at or below this many multiply-adds (m*n*k) skip the packed
 * blocked path — packing overhead dominates — and run gemmReference
 * instead. Exposed so tests and benches can target either side of the
 * crossover deliberately.
 */
constexpr std::int64_t kGemmScalarFallbackMacs = 16 * 1024;

/**
 * C = alpha * op(A) * op(B) + beta * C for rank-2 tensors.
 *
 * @param trans_a Use A transposed.
 * @param trans_b Use B transposed.
 */
void gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
          Tensor &c, float alpha = 1.0f, float beta = 0.0f);

/**
 * Scalar single-threaded GEMM (the seed kernel). Kept as the correctness
 * oracle for tests and the "before" baseline for bench/micro_kernels.
 */
void gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
                   bool trans_b, Tensor &c, float alpha = 1.0f,
                   float beta = 0.0f);

/** Convenience: returns op(A) * op(B) as a fresh tensor. */
Tensor matmul(const Tensor &a, const Tensor &b,
              bool trans_a = false, bool trans_b = false);

/** Convolution geometry used by im2col and the conv layer. */
struct ConvGeom
{
    std::int64_t in_c = 1;   //!< input channels
    std::int64_t in_h = 1;   //!< input height
    std::int64_t in_w = 1;   //!< input width
    std::int64_t k_h = 1;    //!< kernel height
    std::int64_t k_w = 1;    //!< kernel width
    std::int64_t stride = 1;
    std::int64_t pad = 0;

    std::int64_t outH() const { return (in_h + 2 * pad - k_h) / stride + 1; }
    std::int64_t outW() const { return (in_w + 2 * pad - k_w) / stride + 1; }
};

/**
 * Expand an image slice (channels [c0, c0 + g.in_c) of a rank-4 tensor at
 * batch n) into a [g.in_c*kh*kw, outH*outW] column matrix. With the
 * default c0 = 0 and g.in_c == input channels this is classic im2col;
 * grouped convolutions pass c0 to select their channel slice.
 */
Tensor im2col(const Tensor &input, std::int64_t n, const ConvGeom &g,
              std::int64_t c0 = 0);

/**
 * Scatter-add a column matrix back into an image gradient (inverse of
 * im2col for backprop). Accumulates into channels [c0, c0 + g.in_c) of
 * grad at batch n.
 */
void col2im(const Tensor &cols, Tensor &grad, std::int64_t n,
            const ConvGeom &g, std::int64_t c0 = 0);

/** out = a + b (same shape). */
Tensor add(const Tensor &a, const Tensor &b);

/** a += b (same shape). */
void addInPlace(Tensor &a, const Tensor &b);

/** a += alpha * b (same shape). */
void axpy(Tensor &a, float alpha, const Tensor &b);

/** out = a * b elementwise (same shape). */
Tensor mul(const Tensor &a, const Tensor &b);

/** Scale all elements in place. */
void scaleInPlace(Tensor &a, float s);

/** Sum of squared differences between two same-shaped tensors. */
double sse(const Tensor &a, const Tensor &b);

/** Max |a - b| over all elements. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace mvq

#endif // MVQ_TENSOR_OPS_HPP
