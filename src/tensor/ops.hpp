/**
 * @file
 * Tensor kernels: GEMM, im2col/col2im, elementwise arithmetic, reductions.
 * These back both the NN layers and the compression algorithms.
 */

#ifndef MVQ_TENSOR_OPS_HPP
#define MVQ_TENSOR_OPS_HPP

#include "tensor/tensor.hpp"

namespace mvq {

/**
 * Problems at or below this many multiply-adds (m*n*k) skip the packed
 * blocked path — packing overhead dominates — and run gemmReference
 * instead. Exposed so tests and benches can target either side of the
 * crossover deliberately.
 */
constexpr std::int64_t kGemmScalarFallbackMacs = 16 * 1024;

/**
 * C = alpha * op(A) * op(B) + beta * C for rank-2 tensors.
 *
 * @param trans_a Use A transposed.
 * @param trans_b Use B transposed.
 */
void gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
          Tensor &c, float alpha = 1.0f, float beta = 0.0f);

/**
 * Raw-pointer GEMM: C = alpha * op(A) * op(B) + beta * C where op(A) is
 * m x k, op(B) is k x n and C is m x n with leading dimensions (row
 * strides) lda/ldb/ldc. This is the layer the Tensor overload wraps; it
 * exists so callers holding a matrix *view* into a larger slab — e.g. a
 * conv layer writing one (batch, group) block of its NCHW output — can
 * run the packed kernels in place instead of bouncing through a temporary
 * plus memcpy. Same blocked driver, same per-ISA micro-kernels, same
 * determinism contract as gemm().
 */
void gemmRaw(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float *a, std::int64_t lda, bool trans_a, const float *b,
             std::int64_t ldb, bool trans_b, float beta, float *c,
             std::int64_t ldc);

/**
 * Scalar single-threaded GEMM (the seed kernel). Kept as the correctness
 * oracle for tests and the "before" baseline for bench/micro_kernels.
 */
void gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
                   bool trans_b, Tensor &c, float alpha = 1.0f,
                   float beta = 0.0f);

/** Raw-pointer form of gemmReference (see gemmRaw for the conventions). */
void gemmReferenceRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                      float alpha, const float *a, std::int64_t lda,
                      bool trans_a, const float *b, std::int64_t ldb,
                      bool trans_b, float beta, float *c, std::int64_t ldc);

/** Convenience: returns op(A) * op(B) as a fresh tensor. */
Tensor matmul(const Tensor &a, const Tensor &b,
              bool trans_a = false, bool trans_b = false);

/**
 * Per-row compressed-column (CSR) operand for gemmSparseA. For MVQ
 * weights the N:M mask makes the kept positions statically known per
 * M-group, so the operand is built once (from the stored mask codes, see
 * core::CompressedLayer::packSparseRows) and reused for every forward
 * pass — the pack stage of the sparse gemm never touches pruned
 * positions.
 */
struct SparseRowMatrix
{
    std::int64_t rows = 0; //!< logical row count (m of the gemm)
    std::int64_t cols = 0; //!< logical column count (k of the gemm)
    /** rows+1 offsets into col_idx/values; row i owns [row_ptr[i],
     *  row_ptr[i+1]). */
    std::vector<std::int64_t> row_ptr;
    std::vector<std::int32_t> col_idx; //!< ascending within each row
    std::vector<float> values;         //!< kept entries, row-major

    std::int64_t
    nnz() const
    {
        return static_cast<std::int64_t>(values.size());
    }

    /** Kept fraction (1.0 = dense); N/M for an exact N:M operand. */
    double
    density() const
    {
        return rows * cols != 0
            ? static_cast<double>(nnz())
                / static_cast<double>(rows * cols)
            : 0.0;
    }
};

/** Compress a rank-2 tensor's exact non-zeros into CSR (tests/benches). */
SparseRowMatrix sparsifyRows(const Tensor &a);

/**
 * Sparse-A GEMM: C = alpha * A * B + beta * C with A in compressed-row
 * form and B/C dense. Runs the same KC/NC cache-blocked, B-panel-packed
 * driver as gemm(), but the A side consumes the compressed rows directly:
 * only kept entries are walked, their column indices steering the per-ISA
 * sparse micro-kernel (simd::Kernels::gemmSparseMicroKernel) to the
 * matching packed B rows. Flops scale with nnz, so a 4:16 operand does
 * ~1/4 the multiplies of the dense path. Deterministic across thread
 * counts within an ISA, like gemm().
 */
void gemmSparseA(const SparseRowMatrix &a, const Tensor &b, Tensor &c,
                 float alpha = 1.0f, float beta = 0.0f);

/** Raw-pointer form of gemmSparseA: B is a.cols x n (row stride ldb), C
 *  is a.rows x n (row stride ldc). */
void gemmSparseARaw(const SparseRowMatrix &a, const float *b,
                    std::int64_t ldb, std::int64_t n, float alpha,
                    float beta, float *c, std::int64_t ldc);

/** Single-threaded unblocked sparse-A GEMM: the correctness oracle. */
void gemmSparseAReference(const SparseRowMatrix &a, const Tensor &b,
                          Tensor &c, float alpha = 1.0f, float beta = 0.0f);

/** Convolution geometry used by im2col and the conv layer. */
struct ConvGeom
{
    std::int64_t in_c = 1;   //!< input channels
    std::int64_t in_h = 1;   //!< input height
    std::int64_t in_w = 1;   //!< input width
    std::int64_t k_h = 1;    //!< kernel height
    std::int64_t k_w = 1;    //!< kernel width
    std::int64_t stride = 1;
    std::int64_t pad = 0;

    // A kernel larger than the padded input makes the numerator negative;
    // integer division truncating toward zero would then yield a bogus
    // positive size for small magnitudes (e.g. -1 / 2 + 1 == 1), so the
    // invalid case is clamped to 0. im2col/col2im panic on non-positive
    // output dims rather than relying on each caller to guard.
    std::int64_t
    outH() const
    {
        const std::int64_t num = in_h + 2 * pad - k_h;
        return num < 0 ? 0 : num / stride + 1;
    }
    std::int64_t
    outW() const
    {
        const std::int64_t num = in_w + 2 * pad - k_w;
        return num < 0 ? 0 : num / stride + 1;
    }
};

/**
 * Expand an image slice (channels [c0, c0 + g.in_c) of a rank-4 tensor at
 * batch n) into a [g.in_c*kh*kw, outH*outW] column matrix. With the
 * default c0 = 0 and g.in_c == input channels this is classic im2col;
 * grouped convolutions pass c0 to select their channel slice.
 */
Tensor im2col(const Tensor &input, std::int64_t n, const ConvGeom &g,
              std::int64_t c0 = 0);

/**
 * Scatter-add a column matrix back into an image gradient (inverse of
 * im2col for backprop). Accumulates into channels [c0, c0 + g.in_c) of
 * grad at batch n.
 */
void col2im(const Tensor &cols, Tensor &grad, std::int64_t n,
            const ConvGeom &g, std::int64_t c0 = 0);

/** out = a + b (same shape). */
Tensor add(const Tensor &a, const Tensor &b);

/** a += b (same shape). */
void addInPlace(Tensor &a, const Tensor &b);

/** a += alpha * b (same shape). */
void axpy(Tensor &a, float alpha, const Tensor &b);

/** out = a * b elementwise (same shape). */
Tensor mul(const Tensor &a, const Tensor &b);

/** Scale all elements in place. */
void scaleInPlace(Tensor &a, float s);

/** Sum of squared differences between two same-shaped tensors. */
double sse(const Tensor &a, const Tensor &b);

/** Max |a - b| over all elements. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace mvq

#endif // MVQ_TENSOR_OPS_HPP
