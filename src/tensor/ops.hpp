/**
 * @file
 * Tensor kernels: GEMM (dense, sparse-A, and fused-im2col variants),
 * im2col/col2im, elementwise arithmetic, reductions. These back both the
 * NN layers and the compression algorithms.
 *
 * Conventions shared by every kernel in this header:
 *
 * - **Layout.** All matrices are row-major float32. The `*Raw` entry
 *   points take leading dimensions (`lda/ldb/ldc` = row stride in
 *   elements, >= the logical column count), so callers can pass views
 *   into larger slabs — e.g. one (batch, group) block of an NCHW tensor —
 *   and have results written in place. The Tensor overloads are the
 *   `ld == cols` special case.
 * - **Accumulation.** `C = alpha * op(A) * op(B) + beta * C` semantics
 *   throughout; `beta == 0` means C's prior contents are ignored (and may
 *   be uninitialized), not multiplied by 0.
 * - **Determinism.** Every kernel is bit-identical for any
 *   `MVQ_NUM_THREADS` within a given SIMD ISA: parallel chunk boundaries
 *   depend only on the iteration range, parallel chunks write disjoint
 *   outputs, and the blocked gemm drivers sequence their K blocks
 *   serially so each C element accumulates in a fixed order. Switching
 *   ISA (`MVQ_SIMD`) may change final ULPs — micro-kernels reorder lane
 *   sums — which tests pin at 1e-4 relative.
 * - **Errors.** Shape/geometry violations panic (throw `PanicError` via
 *   common/logging) rather than returning error codes; the fused conv
 *   entry points additionally panic on degenerate (non-positive) output
 *   dims, like im2col/col2im.
 */

#ifndef MVQ_TENSOR_OPS_HPP
#define MVQ_TENSOR_OPS_HPP

#include "tensor/operand_array.hpp"
#include "tensor/tensor.hpp"

namespace mvq {

/**
 * Problems at or below this many multiply-adds (m*n*k) skip the packed
 * blocked path — packing overhead dominates — and run gemmReference
 * instead. Exposed so tests and benches can target either side of the
 * crossover deliberately.
 */
constexpr std::int64_t kGemmScalarFallbackMacs = 16 * 1024;

/**
 * C = alpha * op(A) * op(B) + beta * C for rank-2 tensors.
 *
 * @param trans_a Use A transposed.
 * @param trans_b Use B transposed.
 */
void gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
          Tensor &c, float alpha = 1.0f, float beta = 0.0f);

/**
 * Raw-pointer GEMM: C = alpha * op(A) * op(B) + beta * C where op(A) is
 * m x k, op(B) is k x n and C is m x n with leading dimensions (row
 * strides) lda/ldb/ldc. This is the layer the Tensor overload wraps; it
 * exists so callers holding a matrix *view* into a larger slab — e.g. a
 * conv layer writing one (batch, group) block of its NCHW output — can
 * run the packed kernels in place instead of bouncing through a temporary
 * plus memcpy. Same blocked driver, same per-ISA micro-kernels, same
 * determinism contract as gemm().
 */
void gemmRaw(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float *a, std::int64_t lda, bool trans_a, const float *b,
             std::int64_t ldb, bool trans_b, float beta, float *c,
             std::int64_t ldc);

/**
 * Scalar single-threaded GEMM (the seed kernel). Kept as the correctness
 * oracle for tests and the "before" baseline for bench/micro_kernels.
 */
void gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
                   bool trans_b, Tensor &c, float alpha = 1.0f,
                   float beta = 0.0f);

/** Raw-pointer form of gemmReference (see gemmRaw for the conventions). */
void gemmReferenceRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                      float alpha, const float *a, std::int64_t lda,
                      bool trans_a, const float *b, std::int64_t ldb,
                      bool trans_b, float beta, float *c, std::int64_t ldc);

/** Convenience: returns op(A) * op(B) as a fresh tensor. */
Tensor matmul(const Tensor &a, const Tensor &b,
              bool trans_a = false, bool trans_b = false);

/**
 * Per-row compressed-column (CSR) operand for gemmSparseA. For MVQ
 * weights the N:M mask makes the kept positions statically known per
 * M-group, so the operand is built once (from the stored mask codes, see
 * core::CompressedLayer::packSparseRows) and reused for every forward
 * pass — the pack stage of the sparse gemm never touches pruned
 * positions.
 *
 * The arrays are OperandArray so an operand can either own its storage
 * (packed at runtime) or borrow it from an mmap'ed MVQI model image
 * (core/io/mmap_artifact) — the drivers only ever read through const
 * accessors, so both modes share every kernel unchanged.
 */
struct SparseRowMatrix
{
    std::int64_t rows = 0; //!< logical row count (m of the gemm)
    std::int64_t cols = 0; //!< logical column count (k of the gemm)
    /** rows+1 offsets into col_idx/values; row i owns [row_ptr[i],
     *  row_ptr[i+1]). */
    OperandArray<std::int64_t> row_ptr;
    OperandArray<std::int32_t> col_idx; //!< ascending within each row
    OperandArray<float> values;         //!< kept entries, row-major

    /**
     * Set by validateSparseOperand once the structural invariants (row_ptr
     * coverage, ascending in-range col_idx) have been checked. The gemm
     * entry points trust a validated operand and skip their O(nnz)
     * re-check — the pack stage runs once, the forward pass runs per
     * inference, so validation belongs with the pack. Hand-built operands
     * start unvalidated and are still checked (and panic) per call.
     */
    bool validated = false;

    std::int64_t
    nnz() const
    {
        return static_cast<std::int64_t>(values.size());
    }

    /** Kept fraction (1.0 = dense); N/M for an exact N:M operand. */
    double
    density() const
    {
        return rows * cols != 0
            ? static_cast<double>(nnz())
                / static_cast<double>(rows * cols)
            : 0.0;
    }
};

/**
 * Check the structural invariants of a compressed-row operand (row_ptr
 * size/monotone/coverage, col_idx strictly ascending within each row and
 * in [0, cols)) and mark it validated, so the gemm entry points skip the
 * O(nnz) re-check on every call. Panics (PanicError) on violation. The
 * invariants are memory safety, not just correctness: the blocked driver
 * binary-searches each row's index range and the micro-kernels index
 * packed B rows with kidx - k0.
 */
void validateSparseOperand(SparseRowMatrix &a);

/** Compress a rank-2 tensor's exact non-zeros into CSR (tests/benches). */
SparseRowMatrix sparsifyRows(const Tensor &a);

struct GroupedSparseMatrix;

/**
 * Full structural validation of a grouped operand: the embedded CSR
 * operands (rows + remainder) via validateSparseOperand's invariants plus
 * the tile/band layer (tile rows ascending and in range, column/value
 * pools covered, band_ptr covering tiles, tiles + remainder partitioning
 * rows.nnz()). Panics (PanicError) on violation; marks every validated
 * flag on success. groupSparseRows validates what it builds; this entry
 * point exists for operands assembled from *untrusted* storage — above
 * all borrowed views over an MVQI model image, where these invariants
 * are the line between a corrupt file failing loudly and the kernels
 * reading out of bounds.
 */
void validateGroupedOperand(GroupedSparseMatrix &a);

/**
 * Row count of one multi-row sparse tile. Mirrors
 * simd::kSparseMultiRowMr (static_asserted equal in ops.cpp); duplicated
 * here so this header does not pull in the dispatch layer.
 */
constexpr std::int64_t kSparseTileMaxRows = 4;

/**
 * A SparseRowMatrix reorganized around the structure N:M masking imposes:
 * within an M-row block of the operand, every column's set of kept rows
 * is one of the C(M,N) mask codes, so columns of a block sharing a code
 * share their kept-row pattern exactly. groupSparseRows buckets the
 * columns of each block by that kept-row set and emits each bucket as
 * row-tiles: up to kSparseTileMaxRows rows x the bucket's shared
 * ascending column list, with the tile's kept values stored densely
 * (row-major, row r of tile t at vals[t.val_off + r*t.ncols]). The
 * multi-row micro-kernel then loads each packed B row once per tile
 * instead of once per row — MVQ's "one operand fetch serves many
 * accumulations" argument, realized in software.
 *
 * Entries not worth tiling (columns kept by a single row of their block,
 * buckets too short to amortize the tile setup, leftover rows of an
 * odd-sized bucket) stay in `remainder`, a CSR over the same row/column
 * space driven by the single-row kernel. Tiles + remainder partition
 * rows.nnz() exactly. The full `rows` operand is retained for the
 * MVQ_SPARSE_MULTIROW=0 fallback path (bit-identical to the ungrouped
 * entry points) and as the shape/validation source of truth.
 */
struct GroupedSparseMatrix
{
    /** One bucket chunk: `nrows` rows sharing the ascending column list
     *  at cols[col_off .. col_off + ncols). Chunks of one bucket share
     *  their column storage and differ only in rows/values. */
    struct Tile
    {
        std::int32_t row[kSparseTileMaxRows]; //!< absolute rows, ascending
        std::int32_t nrows = 0;               //!< 2..kSparseTileMaxRows
        std::int64_t col_off = 0; //!< into cols (shared per bucket)
        std::int64_t ncols = 0;   //!< shared pattern length
        std::int64_t val_off = 0; //!< into vals; nrows x ncols row-major
    };

    SparseRowMatrix rows;      //!< full single-row operand (fallback path)
    OperandArray<Tile> tiles;  //!< bucket chunks, grouped into bands
    OperandArray<std::int32_t> cols; //!< shared column patterns, ascending
    OperandArray<float> vals;        //!< tile values, row-major per tile
    /**
     * Bands partition `tiles`: band b owns tiles [band_ptr[b],
     * band_ptr[b+1]), and tiles of *different* bands touch disjoint C
     * rows (a band is one M-row block's tiles — rows within a block can
     * appear in several of its buckets). The grouped driver parallelizes
     * over bands and runs a band's tiles sequentially, preserving the
     * bit-identical-across-thread-counts contract.
     */
    OperandArray<std::int64_t> band_ptr{0};
    SparseRowMatrix remainder; //!< untiled entries (single-row kernel)
    bool validated = false;    //!< set by the builders after checking

    /** Kept entries covered by tiles (rows.nnz() - remainder.nnz()). */
    std::int64_t
    tileNnz() const
    {
        std::int64_t n = 0;
        for (const Tile &t : tiles)
            n += static_cast<std::int64_t>(t.nrows) * t.ncols;
        return n;
    }

    /** Fraction of kept entries the single-row fallback still carries. */
    double
    fallbackFraction() const
    {
        return rows.nnz() != 0
            ? static_cast<double>(remainder.nnz())
                / static_cast<double>(rows.nnz())
            : 0.0;
    }
};

/**
 * Build the grouped operand: bucket each `m_block`-row block's columns by
 * their kept-row set (the decoded N:M mask code of that column's group)
 * and emit buckets of >= 2 rows and >= min_cols shared columns as
 * multi-row tiles, everything else into the remainder CSR. m_block should
 * be the mask pattern's M (16 for 4:16) so blocks align with the code
 * groups; any value in [2, 32] is accepted and merely changes which
 * structure gets discovered. min_cols keeps tiles long enough to amortize
 * their per-panel accumulator setup against short shared patterns.
 * Deterministic: bucket order is first appearance within a block, blocks
 * ascend. Validates `rows` (and the derived remainder) as a side effect;
 * panics if `rows` is malformed.
 */
GroupedSparseMatrix groupSparseRows(SparseRowMatrix rows,
                                    std::int64_t m_block = 16,
                                    std::int64_t min_cols = 8);

/**
 * Grouped-operand forms of the sparse-A gemm entry points. With the
 * multi-row path enabled (default) and tiles present, the blocked driver
 * walks buckets instead of rows: per (jc, k0) block each band's tiles run
 * through the per-ISA multi-row micro-kernel (one shared B-row load per
 * tile) and the remainder rows through the single-row kernel, in a fixed
 * order per C element — bit-identical for any thread count within an
 * ISA. With MVQ_SPARSE_MULTIROW=0 (or no tiles) these forward to the
 * SparseRowMatrix overloads on a.rows, reproducing the single-row path
 * bit-for-bit.
 */
void gemmSparseA(const GroupedSparseMatrix &a, const Tensor &b, Tensor &c,
                 float alpha = 1.0f, float beta = 0.0f);

/** Raw-pointer form of the grouped gemmSparseA (see gemmSparseARaw). */
void gemmSparseARaw(const GroupedSparseMatrix &a, const float *b,
                    std::int64_t ldb, std::int64_t n, float alpha,
                    float beta, float *c, std::int64_t ldc);

/**
 * Sparse-A GEMM: C = alpha * A * B + beta * C with A in compressed-row
 * form and B/C dense. Runs the same KC/NC cache-blocked, B-panel-packed
 * driver as gemm(), but the A side consumes the compressed rows directly:
 * only kept entries are walked, their column indices steering the per-ISA
 * sparse micro-kernel (simd::Kernels::gemmSparseMicroKernel) to the
 * matching packed B rows. Flops scale with nnz, so a 4:16 operand does
 * ~1/4 the multiplies of the dense path. Deterministic across thread
 * counts within an ISA, like gemm().
 */
void gemmSparseA(const SparseRowMatrix &a, const Tensor &b, Tensor &c,
                 float alpha = 1.0f, float beta = 0.0f);

/** Raw-pointer form of gemmSparseA: B is a.cols x n (row stride ldb), C
 *  is a.rows x n (row stride ldc). */
void gemmSparseARaw(const SparseRowMatrix &a, const float *b,
                    std::int64_t ldb, std::int64_t n, float alpha,
                    float beta, float *c, std::int64_t ldc);

/** Single-threaded unblocked sparse-A GEMM: the correctness oracle. */
void gemmSparseAReference(const SparseRowMatrix &a, const Tensor &b,
                          Tensor &c, float alpha = 1.0f, float beta = 0.0f);

/** Convolution geometry used by im2col and the conv layer. */
struct ConvGeom
{
    std::int64_t in_c = 1;   //!< input channels
    std::int64_t in_h = 1;   //!< input height
    std::int64_t in_w = 1;   //!< input width
    std::int64_t k_h = 1;    //!< kernel height
    std::int64_t k_w = 1;    //!< kernel width
    std::int64_t stride = 1;
    std::int64_t pad = 0;

    // A kernel larger than the padded input makes the numerator negative;
    // integer division truncating toward zero would then yield a bogus
    // positive size for small magnitudes (e.g. -1 / 2 + 1 == 1), so the
    // invalid case is clamped to 0. im2col/col2im panic on non-positive
    // output dims rather than relying on each caller to guard.
    std::int64_t
    outH() const
    {
        const std::int64_t num = in_h + 2 * pad - k_h;
        return num < 0 ? 0 : num / stride + 1;
    }
    std::int64_t
    outW() const
    {
        const std::int64_t num = in_w + 2 * pad - k_w;
        return num < 0 ? 0 : num / stride + 1;
    }
};

/**
 * Expand an image slice (channels [c0, c0 + g.in_c) of a rank-4 tensor at
 * batch n) into a [g.in_c*kh*kw, outH*outW] column matrix. With the
 * default c0 = 0 and g.in_c == input channels this is classic im2col;
 * grouped convolutions pass c0 to select their channel slice.
 *
 * This is the *materializing* form: the fused forward paths below skip it
 * entirely (gemmIm2colRaw / gemmSparseAIm2col), but it remains the oracle
 * for the fused tests, the backward/col2im companion, and the fallback
 * when `MVQ_FUSED_CONV=0`.
 */
Tensor im2col(const Tensor &input, std::int64_t n, const ConvGeom &g,
              std::int64_t c0 = 0);

/**
 * A convolution's im2col matrix described by geometry instead of storage:
 * the virtual [g.in_c * g.k_h * g.k_w, g.outH() * g.outW()] B operand of
 * one (batch, group) slab. `slab` points at the first input element of
 * the slab's channel range — for an NCHW tensor and group channel offset
 * c0 that is `input.data() + (n * C + c0) * in_h * in_w` — and must stay
 * valid for the duration of the gemm call it is passed to. Element
 * (row, col) of the virtual matrix is input pixel (c, ih, iw) with
 * row = (c * k_h + kh) * k_w + kw, ih = (col / outW) * stride - pad + kh,
 * iw = (col % outW) * stride - pad + kw, and 0 where ih/iw fall in the
 * padding — exactly what im2col() would have materialized.
 */
struct Im2colB
{
    const float *slab = nullptr; //!< base of the (batch, group) channels
    ConvGeom g;

    /** Rows of the virtual matrix == k of the gemm. */
    std::int64_t
    rows() const
    {
        return g.in_c * g.k_h * g.k_w;
    }
    /** Columns of the virtual matrix == n of the gemm. */
    std::int64_t
    cols() const
    {
        return g.outH() * g.outW();
    }
};

/**
 * Fused im2col -> B-panel packing: write block [k0, k0 + kc) x
 * [j0, j0 + nc) of the virtual im2col matrix straight into the packed
 * nr-column panel layout the blocked gemm drivers consume (panel q at
 * bp + q*kc*nr holds bp[kk*nr + c] = B(k0 + kk, j0 + q*nr + c),
 * zero-padded past nc) — the same layout packB produces from a dense
 * matrix, so the per-ISA micro-kernels cannot tell the difference. This
 * is what eliminates the cols tensor: patches are gathered from the
 * input image exactly once, directly into the pack buffer, instead of
 * being written to a [k, n] intermediate and re-read by packB.
 *
 * ISA-agnostic (plain C++, nr is a runtime parameter) and parallel over
 * panel columns; panels write disjoint bp regions so the parallel split
 * never affects the packed bytes. Panics on non-positive output dims,
 * like im2col.
 */
void packBFromIm2col(const Im2colB &b, std::int64_t k0, std::int64_t j0,
                     std::int64_t kc, std::int64_t nc, std::int64_t nr,
                     float *bp);

/**
 * Dense conv forward gemm with the B operand produced on the fly:
 * C = alpha * A * im2col(b) + beta * C where A is m x b.rows() (row
 * stride lda, never transposed — conv weights are stored unrolled) and C
 * is m x b.cols() with row stride ldc. Runs the same blocked driver and
 * per-ISA micro-kernels as gemmRaw with packB replaced by
 * packBFromIm2col, so the result is BIT-IDENTICAL to
 * `gemmRaw(m, n, k, alpha, a, lda, false, im2col(...).data(), n, false,
 * beta, c, ldc)` for any ISA and thread count (small problems fall back
 * to a materialize + gemmReferenceRaw path, again matching the unfused
 * fallback exactly). Panics on non-positive output dims.
 */
void gemmIm2colRaw(std::int64_t m, float alpha, const float *a,
                   std::int64_t lda, const Im2colB &b, float beta, float *c,
                   std::int64_t ldc);

/**
 * Sparse-A conv forward gemm with the B operand produced on the fly:
 * C = alpha * A * im2col(b) + beta * C with A in compressed-row form
 * (a.cols must equal b.rows()). Same blocked sparse driver as
 * gemmSparseARaw with packB replaced by packBFromIm2col — bit-identical
 * to the unfused im2col + gemmSparseARaw composition for any ISA and
 * thread count. This is the payoff path: PR3 measured gemmSparseA's gap
 * to the ideal N/M flop cut to be B-side memory traffic, and the fusion
 * removes the cols tensor's write+read round trip entirely.
 */
void gemmSparseAIm2col(const SparseRowMatrix &a, const Im2colB &b,
                       float alpha, float beta, float *c, std::int64_t ldc);

/**
 * Grouped-operand form of gemmSparseAIm2col: the multi-row bucket walk
 * with B panels packed straight from the input image. Falls back to the
 * single-row fused path (bit-identical) when multi-row is disabled or the
 * operand has no tiles.
 */
void gemmSparseAIm2col(const GroupedSparseMatrix &a, const Im2colB &b,
                       float alpha, float beta, float *c, std::int64_t ldc);

/**
 * Whether the grouped sparse gemm entry points use the multi-row tile
 * path (default) or forward everything to the single-row kernels. First
 * call reads `MVQ_SPARSE_MULTIROW` (0/off disables); the disabled setting
 * reproduces the ungrouped entry points bit-identically per ISA — the
 * knob exists for A/B perf comparison and as a debug fallback.
 */
bool sparseMultiRowEnabled();

/** Programmatic override of sparseMultiRowEnabled (tests/benches). */
void setSparseMultiRowEnabled(bool on);

/**
 * Whether the conv layers route their forward gemms through the fused
 * im2col->panel entry points (default) or materialize cols and call the
 * dense-B gemms. First call reads `MVQ_FUSED_CONV` (0/off disables);
 * both settings produce bit-identical outputs — the knob exists for A/B
 * perf comparison and as a debug fallback.
 */
bool fusedConvEnabled();

/** Programmatic override of fusedConvEnabled (tests/benches). */
void setFusedConvEnabled(bool on);

/**
 * Scatter-add a column matrix back into an image gradient (inverse of
 * im2col for backprop). Accumulates into channels [c0, c0 + g.in_c) of
 * grad at batch n.
 */
void col2im(const Tensor &cols, Tensor &grad, std::int64_t n,
            const ConvGeom &g, std::int64_t c0 = 0);

/** out = a + b (same shape). */
Tensor add(const Tensor &a, const Tensor &b);

/** a += b (same shape). */
void addInPlace(Tensor &a, const Tensor &b);

/** a += alpha * b (same shape). */
void axpy(Tensor &a, float alpha, const Tensor &b);

/** out = a * b elementwise (same shape). */
Tensor mul(const Tensor &a, const Tensor &b);

/** Scale all elements in place. */
void scaleInPlace(Tensor &a, float s);

/** Sum of squared differences between two same-shaped tensors. */
double sse(const Tensor &a, const Tensor &b);

/** Max |a - b| over all elements. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace mvq

#endif // MVQ_TENSOR_OPS_HPP
