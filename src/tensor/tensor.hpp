/**
 * @file
 * Dense float32 tensor with value semantics. This is the numeric substrate
 * for the NN library, the compression pipeline, and the simulator's
 * functional reference.
 */

#ifndef MVQ_TENSOR_TENSOR_HPP
#define MVQ_TENSOR_TENSOR_HPP

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "tensor/shape.hpp"

namespace mvq {

/**
 * Contiguous row-major float tensor of rank 1..4. Copying copies the data;
 * the class is intentionally simple (no views, no strides) so that every
 * consumer can reason about layout directly.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor of the given shape, filled with a constant. */
    Tensor(Shape shape, float fill);

    const Shape &shape() const { return shape_; }
    std::int64_t numel() const { return shape_.numel(); }
    int rank() const { return shape_.rank(); }
    std::int64_t dim(int i) const { return shape_.dim(i); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
    float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

    /** Rank-2 element access. */
    float &at(std::int64_t i, std::int64_t j) { return data_[static_cast<std::size_t>(shape_.at(i, j))]; }
    float at(std::int64_t i, std::int64_t j) const { return data_[static_cast<std::size_t>(shape_.at(i, j))]; }

    /** Rank-4 (NCHW) element access. */
    float &
    at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w)
    {
        return data_[static_cast<std::size_t>(shape_.at(n, c, h, w))];
    }
    float
    at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const
    {
        return data_[static_cast<std::size_t>(shape_.at(n, c, h, w))];
    }

    /** Set all elements to a constant. */
    void fill(float v);

    /** Fill with i.i.d. N(mean, stddev) draws. */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fill with i.i.d. U[lo, hi) draws. */
    void fillUniform(Rng &rng, float lo, float hi);

    /**
     * Return a tensor with the same data re-interpreted under a new shape.
     * The element count must match.
     */
    Tensor reshaped(Shape new_shape) const;

    /** Sum of squared elements. */
    double sumSquares() const;

    /** Sum of elements. */
    double sum() const;

    /** Largest |element|. */
    float absMax() const;

    /** Number of exactly-zero elements. */
    std::int64_t countZeros() const;

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace mvq

#endif // MVQ_TENSOR_TENSOR_HPP
