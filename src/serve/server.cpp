#include "serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/env.hpp"
#include "common/logging.hpp"

namespace mvq::serve {

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions opts;
    opts.max_batch = env::int_("MVQ_SERVE_MAX_BATCH", 8);
    opts.deadline_us = env::int_("MVQ_SERVE_DEADLINE_US", 2000);
    return opts;
}

Server::Server(Shape input_chw, BatchForward forward,
               const ServeOptions &opts)
    : input_chw_(input_chw), forward_(std::move(forward))
{
    fatalIf(input_chw_.rank() != 3,
            "serve::Server: input shape must be [C, H, W], got ",
            input_chw_.str());
    fatalIf(input_chw_.numel() <= 0,
            "serve::Server: zero-size input shape ", input_chw_.str());
    fatalIf(!forward_, "serve::Server: null batch-forward callable");

    // Resolve unset policy fields from the env knobs, then validate: a
    // caller-supplied value and a knob value fail with the same message.
    const ServeOptions defaults = ServeOptions::fromEnv();
    max_batch_ = opts.max_batch != 0 ? opts.max_batch : defaults.max_batch;
    deadline_us_ =
        opts.deadline_us >= 0 ? opts.deadline_us : defaults.deadline_us;
    fatalIf(max_batch_ < 1,
            "serve::Server: max batch (MVQ_SERVE_MAX_BATCH) must be >= 1, "
            "got ", max_batch_);
    fatalIf(deadline_us_ < 0,
            "serve::Server: batching deadline (MVQ_SERVE_DEADLINE_US) must "
            "be >= 0 microseconds, got ", deadline_us_);
    clock_ = opts.clock ? opts.clock : std::make_shared<SteadyClock>();

    batcher_ = std::thread([this] { batcherLoop(); });
}

Server::~Server()
{
    shutdown();
}

std::future<Tensor>
Server::submit(Tensor image)
{
    // Stamp admission time before taking mu_: the lock-order contract
    // (clock.hpp) forbids clock calls under the queue mutex.
    const std::int64_t admit_us = clock_->nowMicros();

    auto reject = [this](auto &&...msg) -> void {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.rejected;
        }
        fatal(std::forward<decltype(msg)>(msg)...);
    };
    if (image.numel() == 0)
        reject("serve::Server: rejecting zero-size image (shape ",
               image.shape().str(), "); expected ", input_chw_.str());
    if (image.rank() != 3 || image.shape() != input_chw_)
        reject("serve::Server: rejecting image of shape ",
               image.shape().str(), "; this server accepts exactly ",
               input_chw_.str(), " ([C, H, W], one image per request)");

    std::future<Tensor> fut;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) {
            ++stats_.rejected;
            fatal("serve::Server: rejecting submission after shutdown");
        }
        Pending p;
        p.image = std::move(image);
        p.admit_us = admit_us;
        fut = p.promise.get_future();
        queue_.push_back(std::move(p));
        ++stats_.admitted;
    }
    clock_->notify();
    return fut;
}

void
Server::shutdown()
{
    std::lock_guard<std::mutex> sl(shutdown_mu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    clock_->notify();
    if (batcher_.joinable())
        batcher_.join();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
Server::batcherLoop()
{
    for (;;) {
        // Phase 1: sleep until there is work or a shutdown request.
        clock_->waitUntil(kNoDeadline, [this] {
            std::lock_guard<std::mutex> lk(mu_);
            return !queue_.empty() || stopping_;
        });

        // Phase 2: hold the window open for more images — until the
        // batch fills, the oldest image's deadline passes, or shutdown
        // flushes (a draining server never waits on the clock).
        std::int64_t deadline_us = 0;
        bool drain = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue; // spurious wake; nothing to batch yet
            }
            drain = stopping_;
            deadline_us = queue_.front().admit_us + deadline_us_;
        }
        if (!drain)
            clock_->waitUntil(deadline_us, [this] {
                std::lock_guard<std::mutex> lk(mu_);
                return static_cast<std::int64_t>(queue_.size())
                        >= max_batch_
                    || stopping_;
            });

        // Phase 3: claim up to max_batch_ images off the front, oldest
        // first — FIFO claiming is what makes futures complete in
        // admission order.
        std::deque<Pending> batch;
        {
            std::lock_guard<std::mutex> lk(mu_);
            const std::int64_t take = std::min(
                max_batch_, static_cast<std::int64_t>(queue_.size()));
            for (std::int64_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            if (take > 0) {
                ++stats_.batches;
                stats_.max_batch_served =
                    std::max(stats_.max_batch_served, take);
                if (take < max_batch_)
                    ++stats_.deadline_flushes;
            }
        }
        if (!batch.empty())
            runBatch(std::move(batch));
    }
}

void
Server::runBatch(std::deque<Pending> &&batch)
{
    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    const std::int64_t img_numel = input_chw_.numel();
    Tensor stacked(Shape({b, input_chw_.dim(0), input_chw_.dim(1),
                          input_chw_.dim(2)}));
    for (std::int64_t i = 0; i < b; ++i)
        std::memcpy(stacked.data() + i * img_numel,
                    batch[static_cast<std::size_t>(i)].image.data(),
                    static_cast<std::size_t>(img_numel) * sizeof(float));

    Tensor out;
    try {
        out = forward_(stacked);
        panicIf(out.rank() != 4 || out.dim(0) != b,
                "serve::Server: batch forward returned shape ",
                out.shape().str(), " for a batch of ", b,
                " images; the model must return rank-4 [B, C, H, W]");
    } catch (...) {
        // The whole batch shares the forward, so the whole batch shares
        // its failure; each client sees the exception on get().
        for (auto &p : batch)
            p.promise.set_exception(std::current_exception());
        return;
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.served += b;
    }
    const std::int64_t out_numel = out.numel() / b;
    const Shape slab({out.dim(1), out.dim(2), out.dim(3)});
    for (std::int64_t i = 0; i < b; ++i) {
        Tensor slice(slab);
        std::memcpy(slice.data(), out.data() + i * out_numel,
                    static_cast<std::size_t>(out_numel) * sizeof(float));
        batch[static_cast<std::size_t>(i)].promise.set_value(
            std::move(slice));
    }
}

} // namespace mvq::serve
