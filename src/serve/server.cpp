#include "serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"

namespace mvq::serve {

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::InvalidRequest:
        return "invalid_request";
      case RejectReason::QueueFull:
        return "queue_full";
      case RejectReason::DeadlineExpired:
        return "deadline_expired";
      case RejectReason::Shutdown:
        return "shutdown";
      case RejectReason::Unhealthy:
        return "unhealthy";
    }
    return "unknown";
}

const char *
healthName(Health h)
{
    switch (h) {
      case Health::Healthy:
        return "healthy";
      case Health::Degraded:
        return "degraded";
      case Health::Failed:
        return "failed";
    }
    return "unknown";
}

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions opts;
    opts.max_batch = env::int_("MVQ_SERVE_MAX_BATCH", 8);
    opts.deadline_us = env::int_("MVQ_SERVE_DEADLINE_US", 2000);
    opts.max_queue = env::int_("MVQ_SERVE_MAX_QUEUE", 1024);
    opts.request_timeout_us = env::int_("MVQ_SERVE_REQUEST_TIMEOUT_US", 0);
    opts.fail_threshold = env::int_("MVQ_SERVE_FAIL_THRESHOLD", 8);
    return opts;
}

Server::Server(Shape input_chw, BatchForward forward,
               const ServeOptions &opts)
    : input_chw_(input_chw), forward_(std::move(forward))
{
    fatalIf(input_chw_.rank() != 3,
            "serve::Server: input shape must be [C, H, W], got ",
            input_chw_.str());
    fatalIf(input_chw_.numel() <= 0,
            "serve::Server: zero-size input shape ", input_chw_.str());
    fatalIf(!forward_, "serve::Server: null batch-forward callable");

    // Resolve unset policy fields from the env knobs, then validate: a
    // caller-supplied value and a knob value fail with the same message.
    const ServeOptions defaults = ServeOptions::fromEnv();
    max_batch_ = opts.max_batch != 0 ? opts.max_batch : defaults.max_batch;
    deadline_us_ =
        opts.deadline_us >= 0 ? opts.deadline_us : defaults.deadline_us;
    max_queue_ = opts.max_queue != 0 ? opts.max_queue : defaults.max_queue;
    request_timeout_us_ = opts.request_timeout_us >= 0
        ? opts.request_timeout_us
        : defaults.request_timeout_us;
    fail_threshold_ = opts.fail_threshold != 0 ? opts.fail_threshold
                                               : defaults.fail_threshold;
    fatalIf(max_batch_ < 1,
            "serve::Server: max batch (MVQ_SERVE_MAX_BATCH) must be >= 1, "
            "got ", max_batch_);
    fatalIf(deadline_us_ < 0,
            "serve::Server: batching deadline (MVQ_SERVE_DEADLINE_US) must "
            "be >= 0 microseconds, got ", deadline_us_);
    fatalIf(max_queue_ < 1,
            "serve::Server: queue cap (MVQ_SERVE_MAX_QUEUE) must be >= 1, "
            "got ", max_queue_);
    fatalIf(request_timeout_us_ < 0,
            "serve::Server: request timeout (MVQ_SERVE_REQUEST_TIMEOUT_US) "
            "must be >= 0 microseconds, got ", request_timeout_us_);
    fatalIf(fail_threshold_ < 1,
            "serve::Server: failure threshold (MVQ_SERVE_FAIL_THRESHOLD) "
            "must be >= 1, got ", fail_threshold_);
    clock_ = opts.clock ? opts.clock : std::make_shared<SteadyClock>();

    batcher_ = std::thread([this] { batcherLoop(); });
}

Server::~Server()
{
    shutdown();
}

std::future<Tensor>
Server::submit(Tensor image)
{
    // Stamp admission time before taking mu_: the lock-order contract
    // (clock.hpp) forbids clock calls under the queue mutex.
    const std::int64_t admit_us = clock_->nowMicros();
    const std::int64_t deadline_us = request_timeout_us_ > 0
        ? admit_us + request_timeout_us_
        : kNoDeadline;
    return submitAt(std::move(image), admit_us, deadline_us);
}

std::future<Tensor>
Server::submitWithDeadline(Tensor image, std::int64_t deadline_us)
{
    const std::int64_t admit_us = clock_->nowMicros();
    return submitAt(std::move(image), admit_us, deadline_us);
}

std::future<Tensor>
Server::submitAt(Tensor image, std::int64_t admit_us,
                 std::int64_t deadline_us)
{
    auto reject = [this](RejectReason why, auto &&...msg) -> void {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.rejected;
            if (why == RejectReason::QueueFull)
                ++stats_.shed;
        }
        throw RejectedError(
            why, detail::concat(std::forward<decltype(msg)>(msg)...));
    };
    if (image.numel() == 0)
        reject(RejectReason::InvalidRequest,
               "serve::Server: rejecting zero-size image (shape ",
               image.shape().str(), "); expected ", input_chw_.str());
    if (image.rank() != 3 || image.shape() != input_chw_)
        reject(RejectReason::InvalidRequest,
               "serve::Server: rejecting image of shape ",
               image.shape().str(), "; this server accepts exactly ",
               input_chw_.str(), " ([C, H, W], one image per request)");

    std::future<Tensor> fut;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) {
            ++stats_.rejected;
            throw RejectedError(
                RejectReason::Shutdown,
                "serve::Server: rejecting submission after shutdown");
        }
        if (health_ == Health::Failed) {
            ++stats_.rejected;
            throw RejectedError(
                RejectReason::Unhealthy,
                detail::concat(
                    "serve::Server: rejecting submission: serving health "
                    "is failed (", consecutive_failures_,
                    " consecutive batch failures, threshold ",
                    fail_threshold_, "; MVQ_SERVE_FAIL_THRESHOLD)"));
        }
        if (static_cast<std::int64_t>(queue_.size()) >= max_queue_) {
            ++stats_.rejected;
            ++stats_.shed;
            throw RejectedError(
                RejectReason::QueueFull,
                detail::concat(
                    "serve::Server: shedding submission: admission queue "
                    "full (", max_queue_,
                    " queued; MVQ_SERVE_MAX_QUEUE)"));
        }
        Pending p;
        p.image = std::move(image);
        p.admit_us = admit_us;
        p.deadline_us = deadline_us;
        fut = p.promise.get_future();
        queue_.push_back(std::move(p));
        ++stats_.admitted;
    }
    clock_->notify();
    return fut;
}

void
Server::shutdown()
{
    std::lock_guard<std::mutex> sl(shutdown_mu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    clock_->notify();
    if (batcher_.joinable())
        batcher_.join();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

Health
Server::health() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return health_;
}

void
Server::batcherLoop()
{
    for (;;) {
        // Phase 1: sleep until there is work or a shutdown request.
        clock_->waitUntil(kNoDeadline, [this] {
            std::lock_guard<std::mutex> lk(mu_);
            return !queue_.empty() || stopping_;
        });

        // Phase 2: hold the window open for more images — until the
        // batch fills, the oldest image's flush deadline passes, the
        // earliest *request* deadline passes (so expiry decisions fire
        // exactly on time under a ManualClock), or shutdown flushes (a
        // draining server never waits on the clock).
        std::int64_t wake_us = 0;
        bool drain = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue; // spurious wake; nothing to batch yet
            }
            drain = stopping_;
            wake_us = queue_.front().admit_us + deadline_us_;
            for (const Pending &p : queue_)
                wake_us = std::min(wake_us, p.deadline_us);
        }
        if (!drain)
            clock_->waitUntil(wake_us, [this] {
                std::lock_guard<std::mutex> lk(mu_);
                return static_cast<std::int64_t>(queue_.size())
                        >= max_batch_
                    || stopping_;
            });

        // Scripted stall (tests only; free when unarmed): skip one
        // claim cycle so a test can delay a launch deterministically.
        // Never stalls a drain — shutdown always completes.
        if (!drain && fault::fires(fault::kBatcherStall))
            continue;

        // Phase 3: expire, then claim. The clock is read before taking
        // mu_ (lock-order contract), and expired requests leave the
        // queue before the batch is chosen — an expired request can
        // never reach the forward.
        const std::int64_t now = clock_->nowMicros();
        std::deque<Pending> batch;
        std::vector<Pending> expired;
        {
            std::lock_guard<std::mutex> lk(mu_);
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->deadline_us <= now) {
                    expired.push_back(std::move(*it));
                    it = queue_.erase(it);
                    ++stats_.expired;
                } else {
                    ++it;
                }
            }
            drain = stopping_;
            const bool full =
                static_cast<std::int64_t>(queue_.size()) >= max_batch_;
            const bool flush = !queue_.empty()
                && now >= queue_.front().admit_us + deadline_us_;
            if (drain || full || flush) {
                const std::int64_t take = std::min(
                    max_batch_, static_cast<std::int64_t>(queue_.size()));
                for (std::int64_t i = 0; i < take; ++i) {
                    batch.push_back(std::move(queue_.front()));
                    queue_.pop_front();
                }
                if (take > 0) {
                    ++stats_.batches;
                    stats_.max_batch_served =
                        std::max(stats_.max_batch_served, take);
                    if (take < max_batch_)
                        ++stats_.deadline_flushes;
                }
            }
        }
        for (Pending &p : expired)
            p.promise.set_exception(std::make_exception_ptr(RejectedError(
                RejectReason::DeadlineExpired,
                detail::concat(
                    "serve::Server: request deadline expired before its "
                    "batch launched (deadline ", p.deadline_us,
                    " us, now ", now,
                    " us; MVQ_SERVE_REQUEST_TIMEOUT_US)"))));
        if (!batch.empty())
            runBatch(std::move(batch));
    }
}

void
Server::runBatch(std::deque<Pending> &&batch)
{
    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    const std::int64_t img_numel = input_chw_.numel();
    Tensor stacked(Shape({b, input_chw_.dim(0), input_chw_.dim(1),
                          input_chw_.dim(2)}));
    for (std::int64_t i = 0; i < b; ++i)
        std::memcpy(stacked.data() + i * img_numel,
                    batch[static_cast<std::size_t>(i)].image.data(),
                    static_cast<std::size_t>(img_numel) * sizeof(float));

    Tensor out;
    try {
        fault::checkpoint(fault::kServeForward,
                          "serve::Server: batched forward");
        out = forward_(stacked);
        panicIf(out.rank() != 4 || out.dim(0) != b,
                "serve::Server: batch forward returned shape ",
                out.shape().str(), " for a batch of ", b,
                " images; the model must return rank-4 [B, C, H, W]");
    } catch (...) {
        // Batch isolation: the whole batch shares the forward, so the
        // whole batch shares its failure — but only this batch. Health
        // moves first so a client that observes the failure on get()
        // already sees the updated state.
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.failed_batches;
            ++consecutive_failures_;
            if (health_ != Health::Failed)
                health_ = consecutive_failures_ >= fail_threshold_
                    ? Health::Failed
                    : Health::Degraded;
        }
        for (auto &p : batch)
            p.promise.set_exception(std::current_exception());
        return;
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.served += b;
        consecutive_failures_ = 0;
        // Failed is sticky: a server past the threshold drains its
        // queue but needs a restart to admit again.
        if (health_ == Health::Degraded)
            health_ = Health::Healthy;
    }
    const std::int64_t out_numel = out.numel() / b;
    const Shape slab({out.dim(1), out.dim(2), out.dim(3)});
    for (std::int64_t i = 0; i < b; ++i) {
        Tensor slice(slab);
        std::memcpy(slice.data(), out.data() + i * out_numel,
                    static_cast<std::size_t>(out_numel) * sizeof(float));
        batch[static_cast<std::size_t>(i)].promise.set_value(
            std::move(slice));
    }
}

} // namespace mvq::serve
