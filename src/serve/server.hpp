/**
 * @file
 * Batched compressed-inference serving runtime. A Server accepts
 * single-image requests from any number of client threads and returns a
 * std::future per request; one internal batcher thread coalesces queued
 * images into batched NCHW forwards — a batch launches as soon as
 * MVQ_SERVE_MAX_BATCH images are queued, or when the *oldest* queued
 * image has waited MVQ_SERVE_DEADLINE_US microseconds, whichever comes
 * first. The forward itself runs on the calling batcher thread and
 * parallelizes through the shared src/common/parallel pool (the conv
 * kernels fan (batch, group) pairs and gemm panels across it), so
 * orchestration stays out of the kernels — the batcher never touches
 * pool internals and the kernels never see the queue.
 *
 * Determinism: batch composition is driven entirely through the
 * injected serve::Clock, so tests with a ManualClock get bit-reproducible
 * batching; and because the batched forward computes every image's
 * output slab independently (per-(batch, group) gemms under the
 * repo-wide determinism contract), a batched forward is bit-identical
 * to running the same images through batch-1 forwards sequentially —
 * batching is a pure latency/throughput trade, never an accuracy one.
 * tests/serve_test.cpp memcmp-gates this across the MVQ_SIMD matrix.
 *
 * Threading contract: submit()/shutdown()/stats() are safe from any
 * thread. Futures complete in admission order (one FIFO queue, one
 * batcher, promises fulfilled in queue order). No clock method is ever
 * called while holding the queue mutex (see clock.hpp's lock-order
 * contract). See docs/SERVING.md for the data flow and tuning guide.
 */

#ifndef MVQ_SERVE_SERVER_HPP
#define MVQ_SERVE_SERVER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/clock.hpp"
#include "tensor/tensor.hpp"

namespace mvq::serve {

/** Batching policy + time source. Default-constructed fields mean "use
 *  the registered env knobs / the real clock". */
struct ServeOptions
{
    /** Launch a batch once this many images are queued (>= 1). */
    std::int64_t max_batch = 0; //!< 0 -> MVQ_SERVE_MAX_BATCH (default 8)

    /** Launch a partial batch once the oldest queued image has waited
     *  this long, in microseconds (0 = never hold an image back). */
    std::int64_t deadline_us = -1; //!< <0 -> MVQ_SERVE_DEADLINE_US (2000)

    /** Time source; null -> a SteadyClock owned by the server. Tests
     *  inject a ManualClock to make batching deterministic. */
    std::shared_ptr<Clock> clock;

    /** Resolve unset fields from the env-knob registry. */
    static ServeOptions fromEnv();
};

/** Monotonic serving counters (a consistent snapshot under one lock). */
struct ServerStats
{
    std::int64_t admitted = 0;  //!< requests accepted into the queue
    std::int64_t served = 0;    //!< futures fulfilled with a result
    std::int64_t rejected = 0;  //!< submissions refused with diagnostics
    std::int64_t batches = 0;   //!< batched forwards launched
    std::int64_t max_batch_served = 0; //!< largest batch launched
    std::int64_t deadline_flushes = 0; //!< batches launched by deadline,
                                       //!< not by reaching max_batch
};

/**
 * The serving engine. `forward` is the model: it takes a stacked
 * [B, C, H, W] tensor and must return a rank-4 tensor whose dim(0) == B
 * (nn::CompressedNet::forward over shared ModelArtifact operands is the
 * intended implementation; any callable with the same contract serves).
 */
class Server
{
  public:
    using BatchForward = std::function<Tensor(const Tensor &)>;

    /**
     * @param input_chw Expected per-request image shape [C, H, W];
     *        submissions with any other shape are rejected.
     * @param forward   The batched model forward (see class contract).
     * @param opts      Batching policy; defaults to the env knobs.
     */
    Server(Shape input_chw, BatchForward forward,
           const ServeOptions &opts = ServeOptions::fromEnv());

    /** Drains and joins (shutdown()). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Admit one image. The future resolves to the model's output slab
     * for this image ([C_out, H_out, W_out]) once its batch completes;
     * if the batched forward throws, every future in the batch carries
     * that exception. Rejects (throws FatalError, counts `rejected`)
     * zero-size or wrongly-shaped images and submissions after
     * shutdown().
     */
    std::future<Tensor> submit(Tensor image);

    /**
     * Stop admitting, flush every queued request (deadline ignored —
     * queued work never waits on a clock that may no longer advance),
     * and join the batcher. Idempotent; the destructor calls it.
     */
    void shutdown();

    ServerStats stats() const;

    /** The batching policy in effect (post env resolution). */
    std::int64_t maxBatch() const { return max_batch_; }
    std::int64_t deadlineMicros() const { return deadline_us_; }

  private:
    struct Pending
    {
        Tensor image;
        std::promise<Tensor> promise;
        std::int64_t admit_us;
    };

    void batcherLoop();
    void runBatch(std::deque<Pending> &&batch);

    Shape input_chw_;
    BatchForward forward_;
    std::int64_t max_batch_;
    std::int64_t deadline_us_;
    std::shared_ptr<Clock> clock_;

    mutable std::mutex mu_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    ServerStats stats_;

    std::mutex shutdown_mu_; //!< serializes concurrent shutdown()/dtor

    std::thread batcher_; //!< last member: joins before the rest dies
};

} // namespace mvq::serve

#endif // MVQ_SERVE_SERVER_HPP
