/**
 * @file
 * Batched compressed-inference serving runtime. A Server accepts
 * single-image requests from any number of client threads and returns a
 * std::future per request; one internal batcher thread coalesces queued
 * images into batched NCHW forwards — a batch launches as soon as
 * MVQ_SERVE_MAX_BATCH images are queued, or when the *oldest* queued
 * image has waited MVQ_SERVE_DEADLINE_US microseconds, whichever comes
 * first. The forward itself runs on the calling batcher thread and
 * parallelizes through the shared src/common/parallel pool (the conv
 * kernels fan (batch, group) pairs and gemm panels across it), so
 * orchestration stays out of the kernels — the batcher never touches
 * pool internals and the kernels never see the queue.
 *
 * Overload safety (docs/SERVING.md "Overload & failure semantics"):
 *  - Bounded admission: at most MVQ_SERVE_MAX_QUEUE requests may be
 *    queued; over-limit submits fail fast with RejectedError carrying
 *    RejectReason::QueueFull (counted in stats().shed) instead of
 *    growing an unbounded backlog.
 *  - Per-request deadlines: every request carries an absolute deadline
 *    (admit time + MVQ_SERVE_REQUEST_TIMEOUT_US by default, or an
 *    explicit one via submitWithDeadline; 0 timeout = none). The
 *    batcher drops expired requests *before* launching the forward and
 *    completes their futures with RejectReason::DeadlineExpired —
 *    every expiry decision reads the injected Clock, so expiry under a
 *    ManualClock is exactly as deterministic as batching.
 *  - Batch isolation + health: a throwing forward fails only its own
 *    batch (each member future carries the exception) and the server
 *    keeps serving. health() reports Healthy / Degraded (at least one
 *    consecutive failure) / Failed (MVQ_SERVE_FAIL_THRESHOLD
 *    consecutive failures — sticky, stops admitting; queued requests
 *    still drain). Health is updated *before* the failing batch's
 *    futures complete, so a client that observed the threshold-th
 *    failure reads the Failed state.
 *
 * Determinism: batch composition is driven entirely through the
 * injected serve::Clock, so tests with a ManualClock get bit-reproducible
 * batching; and because the batched forward computes every image's
 * output slab independently (per-(batch, group) gemms under the
 * repo-wide determinism contract), a batched forward is bit-identical
 * to running the same images through batch-1 forwards sequentially —
 * batching is a pure latency/throughput trade, never an accuracy one.
 * tests/serve_test.cpp memcmp-gates this across the MVQ_SIMD matrix;
 * tests/serve_robustness_test.cpp drives the overload paths the same
 * way.
 *
 * Threading contract: submit()/shutdown()/stats()/health() are safe
 * from any thread. Futures complete in admission order (one FIFO
 * queue, one batcher, promises fulfilled in queue order). No clock
 * method is ever called while holding the queue mutex (see clock.hpp's
 * lock-order contract). See docs/SERVING.md for the data flow and
 * tuning guide.
 */

#ifndef MVQ_SERVE_SERVER_HPP
#define MVQ_SERVE_SERVER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "serve/clock.hpp"
#include "tensor/tensor.hpp"

namespace mvq::serve {

/** Why a request was refused (carried by RejectedError). */
enum class RejectReason
{
    InvalidRequest,  //!< wrong shape / zero-size image
    QueueFull,       //!< admission queue at MVQ_SERVE_MAX_QUEUE
    DeadlineExpired, //!< dropped by the batcher after its deadline
    Shutdown,        //!< submitted after shutdown()
    Unhealthy,       //!< serving health is Failed
};

/** Stable lowercase name for logs and bench records. */
const char *rejectReasonName(RejectReason r);

/**
 * The typed rejection error. Derives from FatalError so existing
 * catch sites keep working; reason() is the machine-readable cause.
 * Thrown synchronously by submit (InvalidRequest / QueueFull /
 * Shutdown / Unhealthy) or delivered through the future
 * (DeadlineExpired — the request was admitted, then timed out).
 */
class RejectedError : public FatalError
{
  public:
    RejectedError(RejectReason reason, const std::string &msg)
        : FatalError(msg), reason_(reason)
    {
    }

    RejectReason reason() const { return reason_; }

  private:
    RejectReason reason_;
};

/** Serving health (see class docs for the transition rules). */
enum class Health
{
    Healthy,  //!< last batch (if any) succeeded
    Degraded, //!< >= 1 consecutive batch failure, still admitting
    Failed,   //!< threshold reached; sticky, no longer admitting
};

/** Stable lowercase name for logs and diagnostics. */
const char *healthName(Health h);

/** Batching policy + time source. Default-constructed fields mean "use
 *  the registered env knobs / the real clock". */
struct ServeOptions
{
    /** Launch a batch once this many images are queued (>= 1). */
    std::int64_t max_batch = 0; //!< 0 -> MVQ_SERVE_MAX_BATCH (default 8)

    /** Launch a partial batch once the oldest queued image has waited
     *  this long, in microseconds (0 = never hold an image back). */
    std::int64_t deadline_us = -1; //!< <0 -> MVQ_SERVE_DEADLINE_US (2000)

    /** Admission-queue depth cap (>= 1); submits beyond it shed with
     *  QueueFull. */
    std::int64_t max_queue = 0; //!< 0 -> MVQ_SERVE_MAX_QUEUE (1024)

    /** Default per-request deadline, microseconds after admission
     *  (0 = requests never expire). */
    std::int64_t request_timeout_us = -1;
    //!< <0 -> MVQ_SERVE_REQUEST_TIMEOUT_US (0)

    /** Consecutive failed batches before health goes Failed (>= 1). */
    std::int64_t fail_threshold = 0;
    //!< 0 -> MVQ_SERVE_FAIL_THRESHOLD (8)

    /** Time source; null -> a SteadyClock owned by the server. Tests
     *  inject a ManualClock to make batching deterministic. */
    std::shared_ptr<Clock> clock;

    /** Resolve unset fields from the env-knob registry. */
    static ServeOptions fromEnv();
};

/** Monotonic serving counters (a consistent snapshot under one lock). */
struct ServerStats
{
    std::int64_t admitted = 0;  //!< requests accepted into the queue
    std::int64_t served = 0;    //!< futures fulfilled with a result
    std::int64_t rejected = 0;  //!< submissions refused with diagnostics
    std::int64_t shed = 0;      //!< rejections with reason QueueFull
    std::int64_t expired = 0;   //!< admitted, then dropped by deadline
    std::int64_t batches = 0;   //!< batched forwards launched
    std::int64_t failed_batches = 0;   //!< batches whose forward threw
    std::int64_t max_batch_served = 0; //!< largest batch launched
    std::int64_t deadline_flushes = 0; //!< batches launched by deadline,
                                       //!< not by reaching max_batch
};

/**
 * The serving engine. `forward` is the model: it takes a stacked
 * [B, C, H, W] tensor and must return a rank-4 tensor whose dim(0) == B
 * (nn::CompressedNet::forward over shared ModelArtifact operands is the
 * intended implementation; any callable with the same contract serves).
 */
class Server
{
  public:
    using BatchForward = std::function<Tensor(const Tensor &)>;

    /**
     * @param input_chw Expected per-request image shape [C, H, W];
     *        submissions with any other shape are rejected.
     * @param forward   The batched model forward (see class contract).
     * @param opts      Batching policy; defaults to the env knobs.
     */
    Server(Shape input_chw, BatchForward forward,
           const ServeOptions &opts = ServeOptions::fromEnv());

    /** Drains and joins (shutdown()). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Admit one image with the default deadline (admit time +
     * request_timeout_us; none when the timeout is 0). The future
     * resolves to the model's output slab for this image
     * ([C_out, H_out, W_out]) once its batch completes; if the batched
     * forward throws, every future in the batch carries that
     * exception; if the request expires first, the future carries
     * RejectedError(DeadlineExpired). Throws RejectedError
     * synchronously on invalid images, a full queue, a Failed server,
     * and submissions after shutdown() (all counted in `rejected`).
     */
    std::future<Tensor> submit(Tensor image);

    /**
     * Admit one image with an explicit *absolute* deadline on the
     * server's clock (kNoDeadline = never expires). Deadlines already
     * in the past are admitted and then expired by the batcher — the
     * expiry path is the same either way.
     */
    std::future<Tensor> submitWithDeadline(Tensor image,
                                           std::int64_t deadline_us);

    /**
     * Stop admitting, flush every queued request (deadline ignored —
     * queued work never waits on a clock that may no longer advance),
     * and join the batcher. Idempotent; the destructor calls it.
     */
    void shutdown();

    ServerStats stats() const;

    /** Current serving health (see the transition rules above). */
    Health health() const;

    /** The batching policy in effect (post env resolution). */
    std::int64_t maxBatch() const { return max_batch_; }
    std::int64_t deadlineMicros() const { return deadline_us_; }
    std::int64_t maxQueue() const { return max_queue_; }
    std::int64_t requestTimeoutMicros() const { return request_timeout_us_; }
    std::int64_t failThreshold() const { return fail_threshold_; }

  private:
    struct Pending
    {
        Tensor image;
        std::promise<Tensor> promise;
        std::int64_t admit_us;
        std::int64_t deadline_us; //!< absolute; kNoDeadline = never
    };

    std::future<Tensor> submitAt(Tensor image, std::int64_t admit_us,
                                 std::int64_t deadline_us);
    void batcherLoop();
    void runBatch(std::deque<Pending> &&batch);

    Shape input_chw_;
    BatchForward forward_;
    std::int64_t max_batch_;
    std::int64_t deadline_us_;
    std::int64_t max_queue_;
    std::int64_t request_timeout_us_;
    std::int64_t fail_threshold_;
    std::shared_ptr<Clock> clock_;

    mutable std::mutex mu_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    ServerStats stats_;
    Health health_ = Health::Healthy;
    std::int64_t consecutive_failures_ = 0;

    std::mutex shutdown_mu_; //!< serializes concurrent shutdown()/dtor

    std::thread batcher_; //!< last member: joins before the rest dies
};

} // namespace mvq::serve

#endif // MVQ_SERVE_SERVER_HPP
