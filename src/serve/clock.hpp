/**
 * @file
 * Injectable time source for the serving runtime. The batcher's two
 * decisions — "has the oldest queued request's latency deadline passed?"
 * and "how long may I keep waiting for more requests?" — go through this
 * interface, so tests drive them with a ManualClock whose time only
 * moves when the test says so: batch composition becomes a pure function
 * of (admissions, advances), never of scheduler timing.
 *
 * The contract couples waiting and waking: waitUntil() blocks until the
 * predicate holds or the clock reaches the deadline, and MUST re-evaluate
 * the predicate after every notify() (SteadyClock) or advance()
 * (ManualClock). The predicate may acquire the caller's own mutex; the
 * clock's internal lock is therefore always taken *before* any caller
 * lock, and callers must never invoke notify()/advance() while holding a
 * mutex their predicate acquires (the server releases its queue mutex
 * before notifying).
 */

#ifndef MVQ_SERVE_CLOCK_HPP
#define MVQ_SERVE_CLOCK_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>

namespace mvq::serve {

/** Deadline value meaning "wait for the predicate alone". */
constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

/** Monotonic microsecond time source + the batcher's wait primitive. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Microseconds since this clock's epoch (monotonic, starts near 0). */
    virtual std::int64_t nowMicros() = 0;

    /**
     * Block until pred() returns true or nowMicros() >= deadline_us
     * (kNoDeadline waits on the predicate alone). Returns the final
     * pred() value, so callers can distinguish "condition met" from
     * "deadline expired". Spurious wakeups are absorbed internally.
     */
    virtual bool waitUntil(std::int64_t deadline_us,
                           const std::function<bool()> &pred) = 0;

    /** Wake any waitUntil() so it re-evaluates its predicate. */
    virtual void notify() = 0;
};

/** Real time: std::chrono::steady_clock, epoch fixed at construction. */
class SteadyClock final : public Clock
{
  public:
    SteadyClock();

    std::int64_t nowMicros() override;
    bool waitUntil(std::int64_t deadline_us,
                   const std::function<bool()> &pred) override;
    void notify() override;

  private:
    std::chrono::steady_clock::time_point epoch_;
    std::mutex mu_;
    std::condition_variable cv_;
};

/**
 * Test clock: time is a counter that only advance() moves. A waitUntil()
 * whose deadline has not been reached blocks until an advance() reaches
 * it or a notify() makes the predicate true — real elapsed time never
 * releases it, which is what makes batching tests deterministic.
 */
class ManualClock final : public Clock
{
  public:
    std::int64_t nowMicros() override;
    bool waitUntil(std::int64_t deadline_us,
                   const std::function<bool()> &pred) override;
    void notify() override;

    /** Move time forward by `us` microseconds and wake all waiters. */
    void advance(std::int64_t us);

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::int64_t now_us_ = 0;
};

} // namespace mvq::serve

#endif // MVQ_SERVE_CLOCK_HPP
