#include "serve/clock.hpp"

#include "common/logging.hpp"

namespace mvq::serve {

SteadyClock::SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t
SteadyClock::nowMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

bool
SteadyClock::waitUntil(std::int64_t deadline_us,
                       const std::function<bool()> &pred)
{
    std::unique_lock<std::mutex> lk(mu_);
    if (deadline_us == kNoDeadline) {
        cv_.wait(lk, pred);
        return true;
    }
    return cv_.wait_until(
        lk, epoch_ + std::chrono::microseconds(deadline_us), pred);
}

void
SteadyClock::notify()
{
    // Lock/unlock pairs the notification with any in-flight predicate
    // evaluation: a waiter between "pred() == false" and blocking holds
    // mu_, so acquiring it here means the waiter is actually asleep (or
    // will observe the new state on its initial check).
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
}

std::int64_t
ManualClock::nowMicros()
{
    std::lock_guard<std::mutex> lk(mu_);
    return now_us_;
}

bool
ManualClock::waitUntil(std::int64_t deadline_us,
                       const std::function<bool()> &pred)
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
        return pred()
            || (deadline_us != kNoDeadline && now_us_ >= deadline_us);
    });
    return pred();
}

void
ManualClock::notify()
{
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
}

void
ManualClock::advance(std::int64_t us)
{
    fatalIf(us < 0, "ManualClock::advance: negative step ", us);
    {
        std::lock_guard<std::mutex> lk(mu_);
        now_us_ += us;
    }
    cv_.notify_all();
}

} // namespace mvq::serve
