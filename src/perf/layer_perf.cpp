#include "perf/layer_perf.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "sim/weight_loader.hpp"

namespace mvq::perf {

namespace {

using sim::AccelConfig;
using sim::Counters;
using sim::TileStyle;
using sim::WeightStream;

/**
 * Shared block-level model for standard (groups = 1) convolution with
 * geometry (K, C, R, E). Mirrors sim::SystolicArray::runConv counter for
 * counter.
 */
LayerPerf
analyzeStandard(const AccelConfig &cfg, const std::string &name,
                std::int64_t k_total, std::int64_t c_total, std::int64_t r,
                std::int64_t ep, const WorkloadStats &stats)
{
    const std::int64_t rr = r * r;
    const std::int64_t hh = cfg.array_h;
    const std::int64_t ll = cfg.array_l;
    const bool sparse = cfg.tile == TileStyle::Sparse;
    const double keep = sparse
        ? static_cast<double>(cfg.nm_n) / static_cast<double>(cfg.nm_m)
        : 1.0;

    LayerPerf lp;
    lp.name = name;
    lp.ext = sim::chooseExtensions(cfg, k_total, c_total, rr);
    const std::int64_t ca = lp.ext.a;
    const std::int64_t cb = lp.ext.b;
    const std::int64_t cd = lp.ext.d;

    Counters &cnt = lp.counters;
    lp.dense_macs = k_total * c_total * rr * ep;
    lp.compute_macs = static_cast<std::int64_t>(
        static_cast<double>(lp.dense_macs) * keep);

    const std::int64_t n_i = ceilDiv(k_total, ca * ll);
    const std::int64_t n_j = ceilDiv(c_total, cb * hh);
    const std::int64_t n_k = ceilDiv(rr, cd);
    const std::int64_t psum_bytes = cfg.psum_bits / 8;

    std::int64_t pending_load = 0;
    for (std::int64_t i = 0; i < n_i; ++i) {
        const std::int64_t kos =
            std::min(ca * ll, k_total - i * ca * ll);
        for (std::int64_t j = 0; j < n_j; ++j) {
            const std::int64_t cs =
                std::min(cb * hh, c_total - j * cb * hh);
            for (std::int64_t kk = 0; kk < n_k; ++kk) {
                const std::int64_t kcs = std::min(cd, rr - kk * cd);
                const std::int64_t block_weights = kos * cs * kcs;
                const std::int64_t block_bits =
                    sim::streamBits(cfg, block_weights);
                const std::int64_t block_load =
                    ceilDiv(block_bits, cfg.dma_bits);
                cnt.l2_read_bytes += ceilDiv(block_bits, 8);
                if (cfg.weight_stream != WeightStream::Dense8b)
                    cnt.crf_reads += ceilDiv(block_weights, cfg.vq_d);
                if (sparse) {
                    const std::int64_t kept = block_weights
                        * cfg.sparseQ() / cfg.vq_d;
                    cnt.wrf_writes += kept;
                    cnt.mrf_writes += kept;
                } else {
                    cnt.wrf_writes += block_weights;
                }

                const std::int64_t arith_cycles = ep * ca * cb * cd;
                const std::int64_t l1_block_bytes = ep * cb * hh
                    + ep * ca * ll * psum_bytes
                    * ((j == 0 && kk == 0) ? 1 : 2);
                const std::int64_t block_compute = std::max(
                    arith_cycles,
                    ceilDiv(l1_block_bytes, cfg.l1_bw_bytes));
                cnt.compute_cycles += block_compute;
                if (i == 0 && j == 0 && kk == 0) {
                    cnt.total_cycles += block_load + block_compute;
                    cnt.stall_cycles += block_load;
                    pending_load = 0;
                } else {
                    cnt.total_cycles +=
                        std::max(block_compute, pending_load);
                    cnt.stall_cycles += std::max<std::int64_t>(
                        0, pending_load - block_compute);
                }
                pending_load = block_load;

                // L1 + register traffic (EWS reuse rules).
                cnt.l1_read_bytes += ep * cb * hh;
                cnt.arf_writes += ep * cb * hh;
                cnt.l1_write_bytes += ep * ca * ll * psum_bytes;
                if (!(j == 0 && kk == 0))
                    cnt.l1_read_bytes += ep * ca * ll * psum_bytes;

                cnt.arf_reads += arith_cycles * hh;
                cnt.prf_reads += arith_cycles * ll;
                cnt.prf_writes += arith_cycles * ll;

                // Valid MAC slots in this block (edge blocks excluded).
                const std::int64_t slots = static_cast<std::int64_t>(
                    ep) * kos * cs * kcs;
                if (sparse) {
                    const std::int64_t kept_slots = static_cast<
                        std::int64_t>(static_cast<double>(slots) * keep);
                    cnt.wrf_reads += kept_slots;
                    cnt.mrf_reads += kept_slots;
                } else {
                    cnt.wrf_reads += slots;
                }
            }
        }
    }

    // Split valid MAC slots into useful vs gated using the workload
    // statistics. With the sparse tile only kept weights occupy slots;
    // a dense tile fed by the masked-VQ stream (EWS-CM) sees the N:M
    // zeros and gates them.
    const double az = stats.act_zero_frac;
    double wz = stats.dense_weight_zero_frac;
    if (sparse) {
        wz = 0.0;
    } else if (cfg.weight_stream == WeightStream::VqIndexMask) {
        wz = 1.0 - static_cast<double>(cfg.nm_n)
            / static_cast<double>(cfg.nm_m);
    }
    const double live = (1.0 - az) * (1.0 - wz);
    const std::int64_t slots_total = sparse
        ? lp.compute_macs : lp.dense_macs;
    if (cfg.zero_gating) {
        cnt.macs = static_cast<std::int64_t>(
            static_cast<double>(slots_total) * live);
        cnt.gated_macs = slots_total - cnt.macs;
    } else {
        cnt.macs = slots_total;
        cnt.gated_macs = 0;
    }
    return lp;
}

} // namespace

LayerPerf
analyzeConvLayer(const sim::AccelConfig &cfg,
                 const models::ConvLayerSpec &spec,
                 const WorkloadStats &stats)
{
    const std::int64_t ep = spec.outH() * spec.outW();

    if (spec.isDepthwise()) {
        // Depthwise layers map weights to the array diagonal: only
        // min(H, L) PEs are active and there is no C|K reuse (paper
        // Section 7.5). Model as channel blocks of min(H, L) with the
        // kernel plane iterated serially.
        const std::int64_t diag = std::min(cfg.array_h, cfg.array_l);
        const std::int64_t rr = spec.kernel * spec.kernel;

        LayerPerf lp;
        lp.name = spec.name;
        lp.ext = sim::Extensions{1, 1,
            cfg.dataflow == sim::Dataflow::WS
                ? 1
                : std::min<std::int64_t>(rr, cfg.wrf_depth)};
        lp.depthwise = true;
        lp.dense_macs = spec.macs();
        const bool sparse = cfg.tile == TileStyle::Sparse;
        const double keep = sparse
            ? static_cast<double>(cfg.nm_n)
                / static_cast<double>(cfg.nm_m)
            : 1.0;
        lp.compute_macs = static_cast<std::int64_t>(
            static_cast<double>(lp.dense_macs) * keep);

        Counters &cnt = lp.counters;
        const std::int64_t blocks = ceilDiv(spec.out_c, diag);
        const std::int64_t cycles = blocks * rr * ep / lp.ext.d
            * lp.ext.d; // = blocks * rr * ep
        cnt.compute_cycles = cycles;
        const std::int64_t weight_bits =
            sim::streamBits(cfg, spec.weightCount());
        const std::int64_t load = ceilDiv(weight_bits, cfg.dma_bits);
        cnt.total_cycles = cycles + load; // weight volume is tiny
        cnt.l2_read_bytes += ceilDiv(weight_bits, 8);
        cnt.l1_read_bytes += blocks * ep * diag
            / std::max<std::int64_t>(1, lp.ext.d);
        cnt.l1_write_bytes += ep * spec.out_c;
        cnt.arf_reads += cycles * diag;
        cnt.prf_reads += cycles * diag;
        cnt.prf_writes += cycles * diag;
        cnt.wrf_reads += sparse ? lp.compute_macs : lp.dense_macs;

        const double az = stats.act_zero_frac;
        const std::int64_t slots = sparse ? lp.compute_macs
                                          : lp.dense_macs;
        if (cfg.zero_gating) {
            cnt.macs = static_cast<std::int64_t>(
                static_cast<double>(slots) * (1.0 - az));
            cnt.gated_macs = slots - cnt.macs;
        } else {
            cnt.macs = slots;
        }
        return lp;
    }

    fatalIf(spec.groups != 1 && !spec.isDepthwise(),
            spec.name, ": grouped (non-depthwise) convs not modeled");
    return analyzeStandard(cfg, spec.name, spec.out_c, spec.in_c,
                           spec.kernel, ep, stats);
}

LayerPerf
analyzeFcLayer(const sim::AccelConfig &cfg, const models::FcLayerSpec &spec,
               const WorkloadStats &stats)
{
    // FC as a 1x1 conv over a 1x1 plane: K = out, C = in, E = 1.
    return analyzeStandard(cfg, spec.name, spec.out_features,
                           spec.in_features, 1, 1, stats);
}

} // namespace mvq::perf
