#include "perf/network_perf.hpp"

#include "common/logging.hpp"

namespace mvq::perf {

NetworkPerf
analyzeNetwork(const sim::AccelConfig &cfg, const models::ModelSpec &spec,
               const WorkloadStats &stats, bool include_fc,
               bool include_depthwise)
{
    NetworkPerf np;
    np.model_name = spec.name;
    np.setting_name = cfg.settingName();
    np.include_depthwise = include_depthwise;

    for (const auto &conv : spec.convs) {
        if (conv.isDepthwise() && !include_depthwise)
            continue;
        np.layers.push_back(analyzeConvLayer(cfg, conv, stats));
    }
    if (include_fc) {
        for (const auto &fc : spec.fcs)
            np.layers.push_back(analyzeFcLayer(cfg, fc, stats));
    }

    // DRAM policy. Weights are read from DRAM once per inference (the
    // compressed stream staged through L2). Feature maps live in L2
    // unless ifmap + ofmap together exceed the L2 budget left beside the
    // layer's weights — then both spill (paper's VGG-16 caveat).
    std::int64_t weight_stream_bytes = 0;
    std::size_t li = 0;
    for (const auto &conv : spec.convs) {
        if (conv.isDepthwise() && !include_depthwise)
            continue;
        LayerPerf &lp = np.layers[li++];
        const std::int64_t weight_bytes = lp.counters.l2_read_bytes;
        // Weight stream bytes were counted into l2_read_bytes per block;
        // the same volume crosses DRAM -> L2 once.
        np.totals.dram_read_bytes += weight_bytes;
        weight_stream_bytes += weight_bytes;

        const std::int64_t ifmap_bytes = conv.in_c * conv.in_h * conv.in_w;
        const std::int64_t ofmap_bytes =
            conv.out_c * conv.outH() * conv.outW();
        // Weights stream through a staging window rather than residing
        // whole in L2; feature maps need residency.
        const std::int64_t weight_staging = 256 * 1024;
        const bool spill = ifmap_bytes + ofmap_bytes
            > cfg.l2_bytes - weight_staging;
        if (spill) {
            np.totals.dram_read_bytes += ifmap_bytes;
            np.totals.dram_write_bytes += ofmap_bytes;
        }
        // L2 sees the fmap traffic either way (L1 refills / writebacks).
        lp.counters.l2_read_bytes += ifmap_bytes;
        lp.counters.l2_write_bytes += ofmap_bytes;
    }
    if (include_fc) {
        for (const auto &fc : spec.fcs) {
            LayerPerf &lp = np.layers[li++];
            np.totals.dram_read_bytes += lp.counters.l2_read_bytes;
            weight_stream_bytes += lp.counters.l2_read_bytes;
            lp.counters.l2_read_bytes += fc.in_features;
            lp.counters.l2_write_bytes += fc.out_features;
        }
    }

    // First ifmap from DRAM, last ofmap to DRAM.
    if (!spec.convs.empty()) {
        const auto &first = spec.convs.front();
        np.totals.dram_read_bytes +=
            first.in_c * first.in_h * first.in_w;
    }

    for (const auto &lp : np.layers) {
        np.totals += lp.counters;
        np.dense_macs += lp.dense_macs;
    }

    np.seconds = static_cast<double>(np.totals.total_cycles)
        / (cfg.freq_ghz * 1e9);
    np.effective_gops = 2.0 * static_cast<double>(np.dense_macs)
        / np.seconds / 1e9;
    np.peak_gops = 2.0
        * static_cast<double>(cfg.array_h * cfg.array_l) * cfg.freq_ghz;
    np.weight_oi = 2.0 * static_cast<double>(np.dense_macs)
        / std::max<double>(1.0, static_cast<double>(weight_stream_bytes));
    return np;
}

RooflinePoint
rooflinePoint(const NetworkPerf &perf, const sim::AccelConfig &cfg)
{
    RooflinePoint pt;
    pt.label = perf.model_name + "/" + perf.setting_name;
    pt.oi = perf.weight_oi;
    pt.attained_gops = perf.effective_gops;
    pt.peak_gops = perf.peak_gops;
    pt.bw_gbps = static_cast<double>(cfg.dma_bits) / 8.0 * cfg.freq_ghz;
    return pt;
}

} // namespace mvq::perf
