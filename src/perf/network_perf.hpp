/**
 * @file
 * Whole-network performance/traffic model: runs the per-layer model over
 * a ModelSpec, adds the DRAM policy (weights streamed once per inference;
 * intermediate feature maps stay in L2 unless they exceed its capacity,
 * the VGG-16 caveat of paper Section 7.3), and derives throughput and
 * roofline coordinates.
 */

#ifndef MVQ_PERF_NETWORK_PERF_HPP
#define MVQ_PERF_NETWORK_PERF_HPP

#include "perf/layer_perf.hpp"

namespace mvq::perf {

/** Aggregated result for one network on one accelerator config. */
struct NetworkPerf
{
    std::string model_name;
    std::string setting_name;
    std::vector<LayerPerf> layers;
    sim::Counters totals;
    std::int64_t dense_macs = 0;

    /** Wall-clock seconds for one inference at the configured clock. */
    double seconds = 0.0;

    /** Effective throughput in GOPS (2 ops per dense MAC equivalent). */
    double effective_gops = 0.0;

    /** Peak throughput in GOPS (2 * H * L per cycle). */
    double peak_gops = 0.0;

    /** Operational intensity: ops per byte of L2 weight stream. */
    double weight_oi = 0.0;

    /** Include depthwise layers in the totals (paper reports pointwise
     *  only for MobileNet; see Fig. 20 footnote). */
    bool include_depthwise = true;
};

/**
 * Analyze a full network.
 *
 * @param include_fc Include FC layers (run as 1x1 convs). The paper's
 *        accelerator executes them; their weight loading dominates
 *        AlexNet/VGG bandwidth, matching Fig. 15's lower reductions.
 * @param include_depthwise Include depthwise layers (false reproduces
 *        the paper's pointwise-only MobileNet rows).
 */
NetworkPerf analyzeNetwork(const sim::AccelConfig &cfg,
                           const models::ModelSpec &spec,
                           const WorkloadStats &stats,
                           bool include_fc = true,
                           bool include_depthwise = true);

/** One point of the paper's Fig. 18 roofline. */
struct RooflinePoint
{
    std::string label;
    double oi = 0.0;            //!< ops per byte of weight stream
    double attained_gops = 0.0;
    double peak_gops = 0.0;
    double bw_gbps = 0.0;       //!< weight-loading bandwidth bound
};

/** Roofline coordinates for a network/config pair. */
RooflinePoint rooflinePoint(const NetworkPerf &perf,
                            const sim::AccelConfig &cfg);

} // namespace mvq::perf

#endif // MVQ_PERF_NETWORK_PERF_HPP
