/**
 * @file
 * Closed-form per-layer performance model. Mirrors the counter math of
 * the functional simulator (src/sim) block-by-block — tests assert the
 * two agree exactly on dense-weight layers — but runs in microseconds on
 * full-size ResNet/VGG layers, which is what the paper's hardware sweeps
 * need.
 */

#ifndef MVQ_PERF_LAYER_PERF_HPP
#define MVQ_PERF_LAYER_PERF_HPP

#include "models/layer_spec.hpp"
#include "sim/accel_config.hpp"
#include "sim/counters.hpp"
#include "sim/systolic_array.hpp"

namespace mvq::perf {

/** Statistical workload knobs the cycle model cannot derive from shapes. */
struct WorkloadStats
{
    /** Fraction of zero activations (post-ReLU int8); drives gating. */
    double act_zero_frac = 0.5;
    /** Fraction of zero weights in the *dense* int8 model. */
    double dense_weight_zero_frac = 0.05;
};

/** Per-layer analysis result. */
struct LayerPerf
{
    std::string name;
    sim::Counters counters;
    sim::Extensions ext;
    std::int64_t dense_macs = 0;   //!< K*C/g*R*R*E*F
    std::int64_t compute_macs = 0; //!< after N:M sparsity (sparse tile)
    bool depthwise = false;
};

/**
 * Analyze one conv layer on the configured accelerator.
 *
 * Depthwise layers map to the array diagonal (only min(H, L) PEs active,
 * paper Section 7.5); they are modeled with that reduced parallelism.
 */
LayerPerf analyzeConvLayer(const sim::AccelConfig &cfg,
                           const models::ConvLayerSpec &spec,
                           const WorkloadStats &stats);

/** Analyze an FC layer as a 1x1 convolution with a 1x1 output plane. */
LayerPerf analyzeFcLayer(const sim::AccelConfig &cfg,
                         const models::FcLayerSpec &spec,
                         const WorkloadStats &stats);

} // namespace mvq::perf

#endif // MVQ_PERF_LAYER_PERF_HPP
