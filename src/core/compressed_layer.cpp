#include "core/compressed_layer.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace mvq::core {

StorageCost &
StorageCost::operator+=(const StorageCost &other)
{
    weight_count += other.weight_count;
    assignment_bits += other.assignment_bits;
    mask_bits += other.mask_bits;
    codebook_bits += other.codebook_bits;
    return *this;
}

Mask
CompressedLayer::decodeMask() const
{
    const MaskCodec codec(cfg.pattern);
    const std::int64_t groups_per_sub = cfg.d / cfg.pattern.m;
    panicIf(static_cast<std::int64_t>(mask_codes.size())
                != ng() * groups_per_sub,
            name, ": mask code count mismatch");
    Mask mask;
    mask.reserve(static_cast<std::size_t>(ng() * cfg.d));
    for (std::size_t i = 0; i < mask_codes.size(); ++i) {
        const auto group = codec.decodeGroup(mask_codes[i]);
        mask.insert(mask.end(), group.begin(), group.end());
    }
    return mask;
}

Tensor
CompressedLayer::reconstruct(const Codebook &cb) const
{
    const Mask mask = decodeMask();
    Tensor wr = reconstructGrouped(cb.codewords, assignments, mask);
    return ungroupWeights(wr, weight_shape, cfg.d, cfg.grouping);
}

Tensor
CompressedLayer::reconstructDense(const Codebook &cb) const
{
    Tensor wr = reconstructGroupedDense(cb.codewords, assignments);
    return ungroupWeights(wr, weight_shape, cfg.d, cfg.grouping);
}

StorageCost
CompressedLayer::assignmentStorage() const
{
    const MaskCodec codec(cfg.pattern);
    StorageCost cost;
    cost.weight_count = ng() * cfg.d;
    cost.assignment_bits = ng() * log2Ceil(
        static_cast<std::uint64_t>(cfg.k));
    cost.mask_bits = static_cast<std::int64_t>(mask_codes.size())
        * codec.bitsPerGroup();
    return cost;
}

StorageCost
CompressedModel::storage() const
{
    StorageCost total;
    for (const auto &layer : layers) {
        StorageCost c = layer.assignmentStorage();
        if (dense_reconstruct)
            c.mask_bits = 0; // masks not stored for dense reconstruction
        total += c;
    }
    for (const auto &cb : codebooks)
        total.codebook_bits += cb.storageBits();
    return total;
}

Tensor
CompressedModel::reconstructLayer(std::size_t i) const
{
    fatalIf(i >= layers.size(), "layer index out of range");
    const auto &layer = layers[i];
    fatalIf(layer.codebook_id < 0
                || layer.codebook_id
                    >= static_cast<int>(codebooks.size()),
            layer.name, ": bad codebook id");
    const Codebook &cb =
        codebooks[static_cast<std::size_t>(layer.codebook_id)];
    return dense_reconstruct ? layer.reconstructDense(cb)
                             : layer.reconstruct(cb);
}

void
CompressedModel::applyTo(nn::Layer &model) const
{
    auto convs = nn::convLayers(model);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        nn::Conv2d *target = nullptr;
        for (nn::Conv2d *conv : convs) {
            if (conv->name() == layers[i].name) {
                target = conv;
                break;
            }
        }
        fatalIf(target == nullptr, "no conv layer named ", layers[i].name);
        target->setWeight(reconstructLayer(i));
    }
}

std::int64_t
CompressedModel::compressedFlops() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers) {
        total += dense_reconstruct ? layer.dense_flops
                                   : layer.sparseFlops();
    }
    return total;
}

std::int64_t
CompressedModel::denseFlops() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.dense_flops;
    return total;
}

CompressedLayer
makeCompressedLayer(const std::string &name, const Shape &w4_shape,
                    const MvqLayerConfig &cfg, const Mask &mask,
                    const KmeansResult &result, int codebook_id)
{
    const std::int64_t ng = groupCount(w4_shape, cfg.d, cfg.grouping);
    fatalIf(static_cast<std::int64_t>(result.assignments.size()) != ng,
            name, ": assignment count ", result.assignments.size(),
            " != N_G ", ng);
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * cfg.d,
            name, ": mask size mismatch");

    CompressedLayer layer;
    layer.name = name;
    layer.weight_shape = w4_shape;
    layer.cfg = cfg;
    layer.codebook_id = codebook_id;
    layer.assignments = result.assignments;

    const MaskCodec codec(cfg.pattern);
    layer.mask_codes.reserve(static_cast<std::size_t>(
        ng * (cfg.d / cfg.pattern.m)));
    for (std::int64_t j = 0; j < ng; ++j) {
        const auto codes =
            codec.encodeSubvector(mask.data() + j * cfg.d, cfg.d);
        layer.mask_codes.insert(layer.mask_codes.end(), codes.begin(),
                                codes.end());
    }
    return layer;
}

} // namespace mvq::core
