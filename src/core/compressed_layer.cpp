#include "core/compressed_layer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace mvq::core {

StorageCost &
StorageCost::operator+=(const StorageCost &other)
{
    weight_count += other.weight_count;
    assignment_bits += other.assignment_bits;
    mask_bits += other.mask_bits;
    codebook_bits += other.codebook_bits;
    return *this;
}

Mask
CompressedLayer::decodeMask() const
{
    const MaskCodec codec(cfg.pattern);
    const std::int64_t groups_per_sub = cfg.d / cfg.pattern.m;
    panicIf(static_cast<std::int64_t>(mask_codes.size())
                != ng() * groups_per_sub,
            name, ": mask code count mismatch");
    Mask mask(static_cast<std::size_t>(ng() * cfg.d), 0);
    codec.decodeInto(mask_codes.data(),
                     static_cast<std::int64_t>(mask_codes.size()),
                     mask.data());
    return mask;
}

namespace {

/**
 * The shared pack walk: rows [k0, k1) of the layer's unrolled [K, C*R*S]
 * weight matrix as a standalone CSR operand (rows rebased to k0). One LUT
 * pass has already expanded the stored group codes into `mask`; the walk
 * consumes the bits in unrolled weight-matrix order. A kept position
 * keeps its codeword value even when that value is 0.0f — the operand
 * mirrors the mask structure, not incidental zeros.
 */
SparseRowMatrix
packRowRange(const CompressedLayer &layer, const Mask &mask,
             const Codebook &cb, std::int64_t k0, std::int64_t k1)
{
    const Shape &w4 = layer.weight_shape;
    const std::int64_t cc = w4.dim(1);
    const std::int64_t rr = w4.dim(2);
    const std::int64_t ss = w4.dim(3);
    const std::int64_t d = layer.cfg.d;
    const float *cw = cb.codewords.data();

    SparseRowMatrix sp;
    sp.rows = k1 - k0;
    sp.cols = cc * rr * ss;
    sp.row_ptr.reserve(static_cast<std::size_t>(sp.rows) + 1);
    sp.row_ptr.push_back(0);
    const std::int64_t keep_estimate = sp.rows * sp.cols
        * layer.cfg.pattern.n / layer.cfg.pattern.m;
    sp.col_idx.reserve(static_cast<std::size_t>(keep_estimate));
    sp.values.reserve(static_cast<std::size_t>(keep_estimate));
    for (std::int64_t k = k0; k < k1; ++k) {
        for (std::int64_t c = 0; c < cc; ++c) {
            for (std::int64_t r = 0; r < rr; ++r) {
                for (std::int64_t s = 0; s < ss; ++s) {
                    const GroupedCoord gc =
                        groupedCoords(k, c, r, s, w4, d, layer.cfg.grouping);
                    if (!mask[static_cast<std::size_t>(
                            gc.row * d + gc.col)])
                        continue;
                    const std::int32_t a = layer.assignments[
                        static_cast<std::size_t>(gc.row)];
                    sp.col_idx.push_back(static_cast<std::int32_t>(
                        (c * rr + r) * ss + s));
                    sp.values.push_back(cw[a * d + gc.col]);
                }
            }
        }
        sp.row_ptr.push_back(
            static_cast<std::int64_t>(sp.values.size()));
    }
    validateSparseOperand(sp);
    return sp;
}

} // namespace

SparseRowMatrix
CompressedLayer::packSparseRows(const Codebook &cb) const
{
    fatalIf(weight_shape.rank() != 4,
            name, ": packSparseRows expects a 4-D kernel shape");
    fatalIf(cb.d() != cfg.d, name, ": codebook d ", cb.d(),
            " != layer d ", cfg.d);
    const Mask mask = decodeMask();
    return packRowRange(*this, mask, cb, 0, weight_shape.dim(0));
}

std::vector<GroupedSparseMatrix>
CompressedLayer::packGroupedRows(const Codebook &cb,
                                 std::int64_t groups) const
{
    fatalIf(weight_shape.rank() != 4,
            name, ": packGroupedRows expects a 4-D kernel shape");
    fatalIf(cb.d() != cfg.d, name, ": codebook d ", cb.d(),
            " != layer d ", cfg.d);
    const std::int64_t kk = weight_shape.dim(0);
    fatalIf(groups <= 0 || kk % groups != 0,
            name, ": out channels ", kk, " not divisible by groups ",
            groups);
    const std::int64_t kg = kk / groups;

    // Bucket in M-row blocks: under output-channel-wise grouping one mask
    // code governs M consecutive gemm rows at one column, so M-blocks are
    // exactly the spans within which rows can share a kept-column
    // pattern. Degenerate patterns (M < 2, i.e. dense vanilla VQ) have no
    // code granularity to align with; a 16-row block tiles them fully.
    const std::int64_t mb = cfg.pattern.m >= 2
        ? std::min<std::int64_t>(cfg.pattern.m, 32)
        : 16;

    const Mask mask = decodeMask();
    std::vector<GroupedSparseMatrix> out;
    out.reserve(static_cast<std::size_t>(groups));
    for (std::int64_t grp = 0; grp < groups; ++grp)
        out.push_back(groupSparseRows(
            packRowRange(*this, mask, cb, grp * kg, (grp + 1) * kg), mb));
    return out;
}

Tensor
CompressedLayer::reconstruct(const Codebook &cb) const
{
    const Mask mask = decodeMask();
    Tensor wr = reconstructGrouped(cb.codewords, assignments, mask);
    return ungroupWeights(wr, weight_shape, cfg.d, cfg.grouping);
}

Tensor
CompressedLayer::reconstructDense(const Codebook &cb) const
{
    Tensor wr = reconstructGroupedDense(cb.codewords, assignments);
    return ungroupWeights(wr, weight_shape, cfg.d, cfg.grouping);
}

StorageCost
CompressedLayer::assignmentStorage() const
{
    const MaskCodec codec(cfg.pattern);
    StorageCost cost;
    cost.weight_count = ng() * cfg.d;
    cost.assignment_bits = ng() * log2Ceil(
        static_cast<std::uint64_t>(cfg.k));
    cost.mask_bits = static_cast<std::int64_t>(mask_codes.size())
        * codec.bitsPerGroup();
    return cost;
}

StorageCost
CompressedModel::storage() const
{
    StorageCost total;
    for (const auto &layer : layers) {
        StorageCost c = layer.assignmentStorage();
        if (dense_reconstruct)
            c.mask_bits = 0; // masks not stored for dense reconstruction
        total += c;
    }
    for (const auto &cb : codebooks)
        total.codebook_bits += cb.storageBits();
    return total;
}

Tensor
CompressedModel::reconstructLayer(std::size_t i) const
{
    fatalIf(i >= layers.size(), "layer index out of range");
    const auto &layer = layers[i];
    fatalIf(layer.codebook_id < 0
                || layer.codebook_id
                    >= static_cast<int>(codebooks.size()),
            layer.name, ": bad codebook id");
    const Codebook &cb =
        codebooks[static_cast<std::size_t>(layer.codebook_id)];
    return dense_reconstruct ? layer.reconstructDense(cb)
                             : layer.reconstruct(cb);
}

void
CompressedModel::applyTo(nn::Layer &model) const
{
    auto convs = nn::convLayers(model);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        nn::Conv2d *target = nullptr;
        for (nn::Conv2d *conv : convs) {
            if (conv->name() == layers[i].name) {
                target = conv;
                break;
            }
        }
        fatalIf(target == nullptr, "no conv layer named ", layers[i].name);
        target->setWeight(reconstructLayer(i));
    }
}

std::int64_t
CompressedModel::compressedFlops() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers) {
        total += dense_reconstruct ? layer.dense_flops
                                   : layer.sparseFlops();
    }
    return total;
}

std::int64_t
CompressedModel::denseFlops() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.dense_flops;
    return total;
}

CompressedLayer
makeCompressedLayer(const std::string &name, const Shape &w4_shape,
                    const MvqLayerConfig &cfg, const Mask &mask,
                    const KmeansResult &result, int codebook_id)
{
    const std::int64_t ng = groupCount(w4_shape, cfg.d, cfg.grouping);
    fatalIf(static_cast<std::int64_t>(result.assignments.size()) != ng,
            name, ": assignment count ", result.assignments.size(),
            " != N_G ", ng);
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * cfg.d,
            name, ": mask size mismatch");

    CompressedLayer layer;
    layer.name = name;
    layer.weight_shape = w4_shape;
    layer.cfg = cfg;
    layer.codebook_id = codebook_id;
    layer.assignments = result.assignments;

    const MaskCodec codec(cfg.pattern);
    layer.mask_codes.reserve(static_cast<std::size_t>(
        ng * (cfg.d / cfg.pattern.m)));
    for (std::int64_t j = 0; j < ng; ++j) {
        const auto codes =
            codec.encodeSubvector(mask.data() + j * cfg.d, cfg.d);
        layer.mask_codes.insert(layer.mask_codes.end(), codes.begin(),
                                codes.end());
    }
    return layer;
}

} // namespace mvq::core
