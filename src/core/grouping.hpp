/**
 * @file
 * Weight grouping strategies (paper Fig. 3). A 4-D conv kernel
 * [K, C, R, S] is reshaped into a 2-D matrix of subvectors of length d
 * along one of three directions:
 *
 *  - kernel-wise:          d = R*S, one subvector per (k, c) kernel plane;
 *  - output-channel-wise:  a subvector spans d consecutive output channels
 *    at a fixed (c, r, s) position (the paper's choice — it matches the
 *    accelerator, where one codeword feeds d output channels of a tile);
 *  - input-channel-wise:   a subvector spans d consecutive input channels.
 */

#ifndef MVQ_CORE_GROUPING_HPP
#define MVQ_CORE_GROUPING_HPP

#include <string>

#include "tensor/tensor.hpp"

namespace mvq::core {

/** Subvector grouping direction (paper Fig. 3). */
enum class Grouping
{
    KernelWise,
    OutputChannelWise,
    InputChannelWise,
};

/** Human-readable name of a grouping strategy. */
std::string groupingName(Grouping g);

/**
 * Validate and convert a serialized grouping value (model streams and
 * MVQI layer TOCs store the enum as an integer). Fatal on values outside
 * the enum — corrupt files must fail loudly, not yield a bogus enum.
 */
Grouping groupingFromInt(int v);

/**
 * Number of subvectors produced by grouping a [K, C, R, S] kernel with
 * subvector length d. Fatal when the shape is not divisible.
 */
std::int64_t groupCount(const Shape &w4, std::int64_t d, Grouping g);

/** Position of one kernel element in the grouped [NG, d] matrix. */
struct GroupedCoord
{
    std::int64_t row; //!< subvector index in [0, NG)
    std::int64_t col; //!< position within the subvector in [0, d)
};

/**
 * Map kernel element (k, c, r, s) to its grouped-matrix coordinates.
 * This is the per-element form of groupWeights/ungroupWeights; consumers
 * that walk the dense layout in their own order (e.g. the compressed-row
 * packer building a CSR operand over the unrolled [K, C*R*S] weight
 * matrix) use it to look up assignments and mask bits without
 * materializing either reshaped tensor.
 */
GroupedCoord groupedCoords(std::int64_t k, std::int64_t c, std::int64_t r,
                           std::int64_t s, const Shape &w4, std::int64_t d,
                           Grouping g);

/**
 * Reshape a 4-D kernel into the grouped [NG, d] matrix.
 *
 * @param w4 Kernel of shape [K, C, R, S].
 * @param d  Subvector length; must divide the grouped dimension
 *           (R*S == d for kernel-wise).
 */
Tensor groupWeights(const Tensor &w4, std::int64_t d, Grouping g);

/** Inverse of groupWeights: scatter [NG, d] back into [K, C, R, S]. */
Tensor ungroupWeights(const Tensor &wr, const Shape &w4_shape,
                      std::int64_t d, Grouping g);

} // namespace mvq::core

#endif // MVQ_CORE_GROUPING_HPP
