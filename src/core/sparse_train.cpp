#include "core/sparse_train.hpp"

#include <numeric>
#include <unordered_map>

#include "common/logging.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace mvq::core {

namespace {

/** Mask as a 0/1 float tensor in the 4-D kernel layout. */
Tensor
maskTo4d(const Mask &mask, const Shape &w4_shape, std::int64_t d,
         Grouping grouping)
{
    Tensor grouped(Shape({static_cast<std::int64_t>(mask.size()) / d, d}));
    for (std::int64_t i = 0; i < grouped.numel(); ++i)
        grouped[i] = mask[static_cast<std::size_t>(i)] ? 1.0f : 0.0f;
    return ungroupWeights(grouped, w4_shape, d, grouping);
}

} // namespace

double
srSteTrain(nn::Layer &model, std::vector<nn::Conv2d *> targets,
           const nn::ClassificationDataset &data, const SrSteConfig &cfg)
{
    // Dense shadows and their momentum buffers, per target layer.
    std::unordered_map<nn::Conv2d *, Tensor> dense;
    std::unordered_map<nn::Conv2d *, Tensor> velocity;
    for (nn::Conv2d *conv : targets) {
        dense.emplace(conv, conv->weight().value);
        velocity.emplace(conv, Tensor(conv->weight().value.shape()));
    }

    // Optimizer for everything except the targeted kernels.
    nn::Sgd opt(cfg.train.lr, cfg.train.momentum, cfg.train.weight_decay);
    std::vector<nn::Parameter *> other_params;
    for (nn::Parameter *p : model.allParameters()) {
        bool is_target = false;
        for (nn::Conv2d *conv : targets) {
            if (p == &conv->weight()) {
                is_target = true;
                break;
            }
        }
        if (!is_target)
            other_params.push_back(p);
    }

    Rng rng(cfg.train.seed);
    const auto &train_set = data.trainSet();

    for (int epoch = 0; epoch < cfg.train.epochs; ++epoch) {
        std::vector<int> order(train_set.size());
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);

        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg.train.batch_size)) {
            const std::size_t end = std::min(order.size(),
                start + static_cast<std::size_t>(cfg.train.batch_size));
            std::vector<int> batch(order.begin()
                + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));

            // 1. Mask the dense shadow into the live weights.
            std::unordered_map<nn::Conv2d *, Tensor> mask4d;
            for (nn::Conv2d *conv : targets) {
                Tensor wr = groupWeights(dense.at(conv), cfg.d,
                                         cfg.grouping);
                const Mask mask = nmMask(wr, cfg.pattern);
                Tensor m4 = maskTo4d(mask, dense.at(conv).shape(), cfg.d,
                                     cfg.grouping);
                Tensor masked(dense.at(conv).shape());
                for (std::int64_t i = 0; i < masked.numel(); ++i)
                    masked[i] = dense.at(conv)[i] * m4[i];
                conv->setWeight(masked);
                mask4d.emplace(conv, std::move(m4));
            }

            // 2. Forward/backward with the masked weights.
            Tensor images = data.batchImages(train_set, batch);
            std::vector<int> labels = data.batchLabels(train_set, batch);
            model.zeroGrad();
            Tensor logits = model.forward(images, /*train=*/true);
            nn::LossResult lr = nn::softmaxCrossEntropy(logits, labels);
            model.backward(lr.grad);

            // 3. SR-STE update of the dense shadow:
            //    w <- w - lr * (g + decay * (1 - mask) o w)
            for (nn::Conv2d *conv : targets) {
                Tensor &w = dense.at(conv);
                Tensor &vel = velocity.at(conv);
                const Tensor &g = conv->weight().grad;
                const Tensor &m4 = mask4d.at(conv);
                for (std::int64_t i = 0; i < w.numel(); ++i) {
                    const float srste = g[i]
                        + cfg.decay * (1.0f - m4[i]) * w[i];
                    vel[i] = cfg.train.momentum * vel[i] + srste;
                    w[i] -= cfg.train.lr * vel[i];
                }
            }

            // 4. Regular step for everything else.
            opt.step(other_params);
        }
    }

    // Freeze the final mask into the live weights.
    for (nn::Conv2d *conv : targets) {
        Tensor wr = groupWeights(dense.at(conv), cfg.d, cfg.grouping);
        const Mask mask = nmMask(wr, cfg.pattern);
        applyMask(wr, mask);
        conv->setWeight(ungroupWeights(wr, dense.at(conv).shape(), cfg.d,
                                       cfg.grouping));
    }

    return nn::evalClassifier(model, data, data.testSet());
}

std::vector<Mask>
oneShotPrune(const std::vector<nn::Conv2d *> &targets,
             const NmPattern &pattern, std::int64_t d, Grouping grouping)
{
    std::vector<Mask> masks;
    masks.reserve(targets.size());
    for (nn::Conv2d *conv : targets) {
        Tensor wr = groupWeights(conv->weight().value, d, grouping);
        Mask mask = nmMask(wr, pattern);
        applyMask(wr, mask);
        conv->setWeight(ungroupWeights(wr, conv->weight().value.shape(), d,
                                       grouping));
        masks.push_back(std::move(mask));
    }
    return masks;
}

std::function<void(nn::Layer &)>
maskReapplyHook(std::vector<nn::Conv2d *> targets, std::vector<Mask> masks,
                std::int64_t d, Grouping grouping)
{
    fatalIf(targets.size() != masks.size(),
            "target/mask count mismatch in hook");
    return [targets = std::move(targets), masks = std::move(masks), d,
            grouping](nn::Layer &) {
        for (std::size_t i = 0; i < targets.size(); ++i) {
            nn::Conv2d *conv = targets[i];
            Tensor wr = groupWeights(conv->weight().value, d, grouping);
            applyMask(wr, masks[i]);
            conv->setWeight(ungroupWeights(
                wr, conv->weight().value.shape(), d, grouping));
        }
    };
}

Mask
currentMask(const nn::Conv2d &conv, std::int64_t d, Grouping grouping)
{
    Tensor wr = groupWeights(conv.weight().value, d, grouping);
    Mask mask(static_cast<std::size_t>(wr.numel()), 0);
    for (std::int64_t i = 0; i < wr.numel(); ++i)
        mask[static_cast<std::size_t>(i)] = wr[i] != 0.0f ? 1 : 0;
    return mask;
}

} // namespace mvq::core
