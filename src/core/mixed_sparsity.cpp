#include "core/mixed_sparsity.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hpp"

namespace mvq::core {

namespace {

/**
 * Per-layer pruning state: group-sorted magnitudes so that the cost of
 * lowering N by one is the sum of the (N)th-largest magnitude of every
 * group.
 */
struct LayerState
{
    // sorted_mags[g][r] = r-th largest |w| in group g.
    std::vector<std::vector<float>> sorted_mags;
    std::int64_t weight_count = 0;
    int current_n = 0;

    /** Magnitude removed by dropping from current_n to current_n - 1. */
    double
    decrementCost() const
    {
        double cost = 0.0;
        for (const auto &mags : sorted_mags)
            cost += mags[static_cast<std::size_t>(current_n - 1)];
        return cost;
    }

    /** Weights removed by one decrement. */
    std::int64_t
    decrementWeights() const
    {
        return static_cast<std::int64_t>(sorted_mags.size());
    }
};

LayerState
buildState(const nn::Conv2d &conv, int m, std::int64_t d,
           Grouping grouping)
{
    Tensor wr = groupWeights(conv.weight().value, d, grouping);
    fatalIf(d % m != 0, "d must be a multiple of M");
    LayerState state;
    state.weight_count = wr.numel();
    state.current_n = m;
    const std::int64_t groups_per_row = d / m;
    state.sorted_mags.reserve(static_cast<std::size_t>(
        wr.dim(0) * groups_per_row));
    for (std::int64_t row = 0; row < wr.dim(0); ++row) {
        for (std::int64_t g = 0; g < groups_per_row; ++g) {
            std::vector<float> mags(static_cast<std::size_t>(m));
            for (int i = 0; i < m; ++i) {
                mags[static_cast<std::size_t>(i)] = std::fabs(
                    wr.at(row, g * m + i));
            }
            std::sort(mags.begin(), mags.end(), std::greater<float>());
            state.sorted_mags.push_back(std::move(mags));
        }
    }
    return state;
}

} // namespace

MixedPatternResult
chooseLayerwisePatterns(const std::vector<nn::Conv2d *> &targets, int m,
                        double target_sparsity, std::int64_t d,
                        Grouping grouping, int min_n)
{
    fatalIf(targets.empty(), "no targets for mixed sparsity search");
    fatalIf(target_sparsity <= 0.0 || target_sparsity >= 1.0,
            "target sparsity must be in (0, 1)");
    fatalIf(min_n < 1 || min_n > m, "bad min_n");

    std::vector<LayerState> states;
    std::int64_t total_weights = 0;
    for (const nn::Conv2d *conv : targets) {
        states.push_back(buildState(*conv, m, d, grouping));
        total_weights += states.back().weight_count;
    }

    const std::int64_t budget = static_cast<std::int64_t>(
        std::llround(target_sparsity
                     * static_cast<double>(total_weights)));

    MixedPatternResult result;
    std::int64_t pruned = 0;
    // Greedy: repeatedly decrement the layer with the smallest removed
    // magnitude per removed weight.
    while (pruned < budget) {
        double best_rate = std::numeric_limits<double>::max();
        std::size_t best = states.size();
        for (std::size_t i = 0; i < states.size(); ++i) {
            if (states[i].current_n <= min_n)
                continue;
            const double rate = states[i].decrementCost()
                / static_cast<double>(states[i].decrementWeights());
            if (rate < best_rate) {
                best_rate = rate;
                best = i;
            }
        }
        if (best == states.size())
            break; // every layer at the floor
        result.pruned_magnitude += states[best].decrementCost();
        pruned += states[best].decrementWeights();
        states[best].current_n -= 1;
    }

    for (const auto &state : states)
        result.patterns.push_back(NmPattern{state.current_n, m});
    result.achieved_sparsity = static_cast<double>(pruned)
        / static_cast<double>(total_weights);
    return result;
}

double
uniformPrunedMagnitude(const std::vector<nn::Conv2d *> &targets,
                       const NmPattern &pattern, std::int64_t d,
                       Grouping grouping)
{
    double total = 0.0;
    for (const nn::Conv2d *conv : targets) {
        Tensor wr = groupWeights(conv->weight().value, d, grouping);
        const Mask mask = nmMask(wr, pattern);
        for (std::int64_t i = 0; i < wr.numel(); ++i) {
            if (!mask[static_cast<std::size_t>(i)])
                total += std::fabs(wr[i]);
        }
    }
    return total;
}

} // namespace mvq::core
