#include "core/io/stream_artifact.hpp"

#include <fstream>
#include <iterator>

#include "common/fault.hpp"
#include "common/logging.hpp"
#include "core/serialize.hpp"

namespace mvq::core::io {

StreamArtifact::StreamArtifact(const std::string &path) : path_(path)
{
    fault::checkpoint(fault::kArtifactOpen,
                      "opening stream model file");
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open model file ", path);
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    size_bytes_ = static_cast<std::int64_t>(bytes.size());
    model_ = deserializeModel(bytes);
}

std::int64_t
StreamArtifact::layerCount() const
{
    return static_cast<std::int64_t>(model_.layers.size());
}

std::string
StreamArtifact::layerName(std::int64_t i) const
{
    panicIf(i < 0 || i >= layerCount(), "layer index ", i,
            " out of range [0, ", layerCount(), ")");
    return model_.layers[static_cast<std::size_t>(i)].name;
}

Shape
StreamArtifact::layerShape(std::int64_t i) const
{
    panicIf(i < 0 || i >= layerCount(), "layer index ", i,
            " out of range [0, ", layerCount(), ")");
    return model_.layers[static_cast<std::size_t>(i)].weight_shape;
}

SharedOperands
StreamArtifact::packedOperands(std::int64_t i, std::int64_t groups) const
{
    panicIf(i < 0 || i >= layerCount(), "layer index ", i,
            " out of range [0, ", layerCount(), ")");
    fault::checkpoint(fault::kOperandBorrow,
                      "packing operands from streamed model");
    const std::int64_t g = groups == 0 ? 1 : groups;
    const auto key = std::make_pair(i, g);
    // Serializes concurrent first-touch packs of the same layer (the
    // mmap backend has the same contract; model_ itself is immutable
    // after construction and needs no lock).
    std::lock_guard<std::mutex> lk(mu_);
    if (auto it = cache_.find(key); it != cache_.end())
        return it->second;
    const CompressedLayer &cl = model_.layers[static_cast<std::size_t>(i)];
    auto ops = std::make_shared<std::vector<GroupedSparseMatrix>>(
        cl.packGroupedRows(
            model_.codebooks[static_cast<std::size_t>(cl.codebook_id)],
            g));
    SharedOperands shared = std::move(ops);
    cache_[key] = shared;
    return shared;
}

} // namespace mvq::core::io
