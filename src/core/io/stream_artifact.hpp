/**
 * @file
 * StreamArtifact — the legacy bit-packed stream format behind the
 * ModelArtifact interface. Opening one pays the full decode
 * (deserializeModel) and every packedOperands call that misses the cache
 * pays a packGroupedRows; that cost profile is exactly what the MVQI
 * backend (mmap_artifact) exists to delete from serving startup.
 */

#ifndef MVQ_CORE_IO_STREAM_ARTIFACT_HPP
#define MVQ_CORE_IO_STREAM_ARTIFACT_HPP

#include <map>
#include <mutex>
#include <utility>

#include "core/io/model_artifact.hpp"

namespace mvq::core::io {

/** Bit-packed-stream backend (decode at open, pack on demand). */
class StreamArtifact : public ModelArtifact
{
  public:
    /** Decode the stream at `path`; fatal on I/O or format errors. */
    explicit StreamArtifact(const std::string &path);

    ArtifactFormat format() const override { return ArtifactFormat::Stream; }
    const std::string &path() const override { return path_; }
    std::int64_t sizeBytes() const override { return size_bytes_; }
    const CompressedModel &model() const override { return model_; }
    std::int64_t layerCount() const override;
    std::string layerName(std::int64_t i) const override;
    Shape layerShape(std::int64_t i) const override;
    std::int64_t bakedGroups(std::int64_t) const override { return 0; }
    SharedOperands packedOperands(std::int64_t i,
                                  std::int64_t groups = 0) const override;

  private:
    std::string path_;
    std::int64_t size_bytes_ = 0;
    CompressedModel model_;
    /** Guards cache_ against concurrent packedOperands calls. */
    mutable std::mutex mu_;
    /** packedOperands cache keyed by (layer, groups). */
    mutable std::map<std::pair<std::int64_t, std::int64_t>, SharedOperands>
        cache_;
};

} // namespace mvq::core::io

#endif // MVQ_CORE_IO_STREAM_ARTIFACT_HPP
