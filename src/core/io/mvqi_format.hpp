/**
 * @file
 * MVQI ("MVQ Image") v1 — the flat, aligned, versioned serving format.
 * Where the bit-packed stream format (core/serialize) optimizes for the
 * paper's Eq. 7 storage accounting and must be decoded and re-packed on
 * every load, an MVQI file *is* the in-memory operand layout: fixed-width
 * little-endian header + TOC structs, then 64-byte-aligned sections
 * holding codebooks, assignments, mask codes, and the pre-packed
 * panel-ready sparse operands (GroupedSparseMatrix tiles + CSR remainder)
 * exactly as the gemm drivers consume them. Loading is therefore mmap +
 * validate: no bit-stream decode, no packSparseRows/packGroupedRows, and
 * N server processes share one read-only page-cached image.
 *
 * Byte-level layout, alignment rules, and the versioning policy are
 * specified in docs/FORMAT.md; this header is the single source of truth
 * for the struct definitions (static_asserts pin their sizes, and the
 * golden-fixture test pins the emitted bytes against drift).
 */

#ifndef MVQ_CORE_IO_MVQI_FORMAT_HPP
#define MVQ_CORE_IO_MVQI_FORMAT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/compressed_layer.hpp"

namespace mvq::core::io {

constexpr std::uint32_t kMvqiMagic = 0x4951564Du; //!< "MVQI", little-endian
constexpr std::uint32_t kMvqiVersion = 1;
constexpr std::int64_t kMvqiAlign = 64;  //!< section alignment (bytes)
constexpr std::size_t kMvqiNameBytes = 64; //!< fixed layer-name field

/** Offset + element count of one array section (element type from use). */
struct MvqiArray
{
    std::uint64_t off = 0;   //!< byte offset from file start; 64-aligned
    std::int64_t count = 0;  //!< element count (not bytes)
};
static_assert(sizeof(MvqiArray) == 16);

/** File header; always the first 64 bytes of an image. */
struct MvqiHeader
{
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t header_bytes = 0; //!< sizeof(MvqiHeader)
    std::uint32_t flags = 0;        //!< bit 0: dense_reconstruct
    std::uint32_t n_codebooks = 0;
    std::uint32_t n_layers = 0;
    std::uint64_t codebook_toc_off = 0;
    std::uint64_t layer_toc_off = 0;
    std::uint64_t file_bytes = 0;   //!< must equal the actual file size
    std::uint8_t reserved[16] = {};
};
static_assert(sizeof(MvqiHeader) == 64);

/** One codebook TOC entry. Codewords are stored as raw fp32 (the
 *  dequantized, usable values); qbits/scale ride along so the Eq. 7
 *  accounting and a lossless convert back to the stream format remain
 *  possible. */
struct MvqiCodebook
{
    std::int64_t k = 0;
    std::int64_t d = 0;
    std::int32_t qbits = 0;
    float scale = 0.0f;
    std::uint64_t codewords_off = 0; //!< k*d fp32, 64-aligned
    std::uint64_t reserved[2] = {};
};
static_assert(sizeof(MvqiCodebook) == 48);

/**
 * One pre-packed sparse operand: a GroupedSparseMatrix (one conv group of
 * one layer) flattened into offset-addressed sections. The tiles section
 * stores GroupedSparseMatrix::Tile structs verbatim (their layout is
 * static_asserted in mvqi_format.cpp), so a loaded operand borrows every
 * array straight from the image.
 */
struct MvqiOperand
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    MvqiArray row_ptr;     //!< int64, rows + 1
    MvqiArray col_idx;     //!< int32, nnz
    MvqiArray values;      //!< fp32, nnz
    MvqiArray tiles;       //!< GroupedSparseMatrix::Tile (48 B each)
    MvqiArray tile_cols;   //!< int32 shared-column pool
    MvqiArray tile_vals;   //!< fp32 tile-value pool
    MvqiArray band_ptr;    //!< int64, n_bands + 1
    MvqiArray rem_row_ptr; //!< int64, rows + 1
    MvqiArray rem_col_idx; //!< int32, remainder nnz
    MvqiArray rem_values;  //!< fp32, remainder nnz
};
static_assert(sizeof(MvqiOperand) == 16 + 10 * sizeof(MvqiArray));

/** One layer TOC entry. */
struct MvqiLayer
{
    char name[kMvqiNameBytes] = {}; //!< NUL-terminated
    std::int64_t shape[4] = {1, 1, 1, 1}; //!< [K, C/groups, R, S]
    std::int64_t k = 0;             //!< cfg.k
    std::int64_t d = 0;             //!< cfg.d
    std::int32_t n = 0;             //!< pattern N
    std::int32_t m = 0;             //!< pattern M
    std::int32_t grouping = 0;      //!< core::Grouping enum value
    std::int32_t codebook_bits = 0;
    std::int32_t codebook_id = 0;
    std::int32_t groups = 1;        //!< conv groups baked into operands
    std::int64_t dense_flops = 0;
    std::int64_t ng = 0;
    MvqiArray assignments;          //!< int32, ng
    MvqiArray mask_codes;           //!< uint32, ng * d/M
    std::uint64_t operands_off = 0; //!< `groups` MvqiOperand records
    std::uint64_t reserved = 0;
};
static_assert(sizeof(MvqiLayer) == 200);

/** Writer knobs: the conv `groups` baked into each layer's pre-packed
 *  operands (the compressed container does not store conv geometry). */
struct MvqiWriteOptions
{
    std::int64_t default_groups = 1;
    std::map<std::string, std::int64_t> layer_groups; //!< by layer name
};

/**
 * Serialize `model` into an MVQI image: runs packGroupedRows per layer
 * ONCE here, at serialize time, so no load ever runs it again.
 * Deterministic: same model + options => identical bytes (the golden
 * fixture test depends on this). Fatal on layer names >= 64 bytes or
 * invalid groups.
 */
std::vector<std::uint8_t> buildMvqiImage(const CompressedModel &model,
                                         const MvqiWriteOptions &opts = {});

/** buildMvqiImage + write to a file (fatal on I/O failure). */
void writeMvqiFile(const CompressedModel &model, const std::string &path,
                   const MvqiWriteOptions &opts = {});

/**
 * True when MappedFile will use the 64-byte-aligned heap fallback instead
 * of mmap. Resolved once from MVQ_MVQI_NO_MMAP via the env registry;
 * setMvqiHeapFallback is the programmatic override (tests exercising both
 * loaders in one process — registry reads are sticky by design).
 */
bool mvqiHeapFallback();
void setMvqiHeapFallback(bool on);

/**
 * Read-only mapping of a file: mmap on POSIX, a 64-byte-aligned heap copy
 * elsewhere (or when MVQ_MVQI_NO_MMAP=1 forces the fallback for testing).
 * Fatal on open/stat/map failure or an empty file.
 */
class MappedFile
{
  public:
    explicit MappedFile(const std::string &path);
    ~MappedFile();
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::int64_t size() const { return size_; }
    const std::string &path() const { return path_; }
    /** True when backed by mmap (heap fallback otherwise). */
    bool mapped() const { return mapped_; }

  private:
    std::string path_;
    const std::uint8_t *data_ = nullptr;
    std::int64_t size_ = 0;
    bool mapped_ = false;
    void *heap_ = nullptr; //!< fallback allocation (aligned)
};

/**
 * Non-owning structurally validated view over an MVQI image. The
 * constructor is the corruption firewall: truncated file, bad magic,
 * unsupported version, misaligned sections, out-of-range or overflowing
 * TOC offsets, oversized names, and inconsistent counts all fail with a
 * clear FatalError naming `what` (typically the file path) — never
 * undefined behaviour. Array accessors return pointers that were bounds-
 * and alignment-checked against the image during construction.
 *
 * Structural validation is O(layers + groups), independent of model
 * size; the O(nnz) semantic validation of each operand's indices happens
 * when the operand is borrowed (validateGroupedOperand, see
 * MmapArtifact::packedOperands).
 */
class MvqiView
{
  public:
    MvqiView(const std::uint8_t *data, std::int64_t size, std::string what);

    const MvqiHeader &header() const;
    std::int64_t codebookCount() const;
    std::int64_t layerCount() const;
    const MvqiCodebook &codebook(std::int64_t i) const;
    const MvqiLayer &layer(std::int64_t i) const;
    /** The layer's `groups` MvqiOperand records. */
    const MvqiOperand *operands(std::int64_t layer_idx) const;

    /** Typed pointer to a validated array section. */
    template <typename T>
    const T *
    array(const MvqiArray &a) const
    {
        return reinterpret_cast<const T *>(data_ + a.off);
    }

    const std::uint8_t *data() const { return data_; }
    std::int64_t size() const { return size_; }
    const std::string &what() const { return what_; }

  private:
    void validate();
    void checkArray(const MvqiArray &a, std::int64_t elem_bytes,
                    const char *name) const;

    const std::uint8_t *data_;
    std::int64_t size_;
    std::string what_;
};

} // namespace mvq::core::io

#endif // MVQ_CORE_IO_MVQI_FORMAT_HPP
