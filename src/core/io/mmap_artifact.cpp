#include "core/io/mmap_artifact.hpp"

#include <cstring>

#include "common/fault.hpp"
#include "common/logging.hpp"

namespace mvq::core::io {

namespace {

/** Map the image file. The fault site sits in front of the OS call so
 *  tests can script open failures without touching the filesystem. */
std::shared_ptr<MappedFile>
openMapped(const std::string &path)
{
    fault::checkpoint(fault::kArtifactOpen,
                      "opening mmap model image");
    return std::make_shared<MappedFile>(path);
}

template <typename T>
OperandArray<T>
borrowArr(const MvqiView &v, const MvqiArray &a)
{
    return OperandArray<T>::borrow(v.array<T>(a), a.count);
}

/** Assemble a GroupedSparseMatrix whose every array aliases the image. */
GroupedSparseMatrix
borrowOperand(const MvqiView &v, const MvqiOperand &op)
{
    GroupedSparseMatrix g;
    g.rows.rows = op.rows;
    g.rows.cols = op.cols;
    g.rows.row_ptr = borrowArr<std::int64_t>(v, op.row_ptr);
    g.rows.col_idx = borrowArr<std::int32_t>(v, op.col_idx);
    g.rows.values = borrowArr<float>(v, op.values);
    g.tiles = borrowArr<GroupedSparseMatrix::Tile>(v, op.tiles);
    g.cols = borrowArr<std::int32_t>(v, op.tile_cols);
    g.vals = borrowArr<float>(v, op.tile_vals);
    g.band_ptr = borrowArr<std::int64_t>(v, op.band_ptr);
    g.remainder.rows = op.rows;
    g.remainder.cols = op.cols;
    g.remainder.row_ptr = borrowArr<std::int64_t>(v, op.rem_row_ptr);
    g.remainder.col_idx = borrowArr<std::int32_t>(v, op.rem_col_idx);
    g.remainder.values = borrowArr<float>(v, op.rem_values);
    return g;
}

/** Keeps the mapping alive for as long as any borrowed operand handle
 *  is held (the SharedOperands aliasing constructor points into it). */
struct OperandHolder
{
    std::shared_ptr<MappedFile> keepalive;
    std::vector<GroupedSparseMatrix> ops;
};

} // namespace

MmapArtifact::MmapArtifact(const std::string &path)
    : map_(openMapped(path)), view_(map_->data(), map_->size(), path)
{
}

std::int64_t
MmapArtifact::layerCount() const
{
    return view_.layerCount();
}

std::string
MmapArtifact::layerName(std::int64_t i) const
{
    return std::string(view_.layer(i).name);
}

Shape
MmapArtifact::layerShape(std::int64_t i) const
{
    const MvqiLayer &L = view_.layer(i);
    return Shape({L.shape[0], L.shape[1], L.shape[2], L.shape[3]});
}

std::int64_t
MmapArtifact::bakedGroups(std::int64_t i) const
{
    return view_.layer(i).groups;
}

const CompressedModel &
MmapArtifact::model() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return modelLocked();
}

const CompressedModel &
MmapArtifact::modelLocked() const
{
    if (model_)
        return *model_;

    // Materialize by copying out of the image — only convert/inspect
    // paths come here; serving uses packedOperands and never copies.
    CompressedModel m;
    m.dense_reconstruct = (view_.header().flags & 1u) != 0;
    for (std::int64_t i = 0; i < view_.codebookCount(); ++i) {
        const MvqiCodebook &rec = view_.codebook(i);
        Codebook cb;
        cb.qbits = static_cast<int>(rec.qbits);
        cb.scale = rec.scale;
        cb.codewords = Tensor(Shape({rec.k, rec.d}));
        std::memcpy(cb.codewords.data(),
                    view_.array<float>(
                        MvqiArray{rec.codewords_off, rec.k * rec.d}),
                    static_cast<std::size_t>(rec.k * rec.d)
                        * sizeof(float));
        m.codebooks.push_back(std::move(cb));
    }
    for (std::int64_t i = 0; i < view_.layerCount(); ++i) {
        const MvqiLayer &L = view_.layer(i);
        CompressedLayer cl;
        cl.name = std::string(L.name);
        cl.weight_shape =
            Shape({L.shape[0], L.shape[1], L.shape[2], L.shape[3]});
        cl.cfg.k = L.k;
        cl.cfg.d = L.d;
        cl.cfg.pattern.n = static_cast<int>(L.n);
        cl.cfg.pattern.m = static_cast<int>(L.m);
        cl.cfg.grouping = groupingFromInt(static_cast<int>(L.grouping));
        cl.cfg.codebook_bits = static_cast<int>(L.codebook_bits);
        cl.codebook_id = static_cast<int>(L.codebook_id);
        cl.dense_flops = L.dense_flops;
        const std::int32_t *ap = view_.array<std::int32_t>(L.assignments);
        cl.assignments.assign(ap, ap + L.assignments.count);
        const std::uint32_t *mp = view_.array<std::uint32_t>(L.mask_codes);
        cl.mask_codes.assign(mp, mp + L.mask_codes.count);
        m.layers.push_back(std::move(cl));
    }
    model_ = std::move(m);
    return *model_;
}

SharedOperands
MmapArtifact::packedOperands(std::int64_t i, std::int64_t groups) const
{
    panicIf(i < 0 || i >= layerCount(), "layer index ", i,
            " out of range [0, ", layerCount(), ")");
    fault::checkpoint(fault::kOperandBorrow,
                      "borrowing packed operands from mmap image");
    const std::int64_t baked = bakedGroups(i);
    const std::int64_t g = groups == 0 ? baked : groups;
    const auto key = std::make_pair(i, g);
    // One lock for the whole lookup-or-build: a miss holds it across the
    // O(nnz) validation (or repack), so N threads first-touching the same
    // (layer, groups) build it once and the rest hit the cache.
    std::lock_guard<std::mutex> lk(mu_);
    if (auto it = cache_.find(key); it != cache_.end())
        return it->second;

    SharedOperands shared;
    if (g == baked) {
        // Zero-copy path: borrow every operand array from the mapping,
        // then run the O(nnz) semantic validation — the line between a
        // corrupt image failing loudly and the kernels reading out of
        // bounds. Structural bounds were already checked by MvqiView.
        auto holder = std::make_shared<OperandHolder>();
        holder->keepalive = map_;
        holder->ops.reserve(static_cast<std::size_t>(g));
        const MvqiOperand *recs = view_.operands(i);
        for (std::int64_t grp = 0; grp < g; ++grp) {
            GroupedSparseMatrix op = borrowOperand(view_, recs[grp]);
            try {
                validateGroupedOperand(op);
            } catch (const PanicError &e) {
                // Invariant violations in *our* data are bugs (panic);
                // in a file they are the file's fault — rewrap.
                fatal(path(), ": corrupt MVQI operand (layer '",
                      layerName(i), "', group ", grp, "): ", e.what());
            }
            holder->ops.push_back(std::move(op));
        }
        shared = SharedOperands(holder, &holder->ops);
    } else {
        // Group-count mismatch: correct but not zero-copy. Bake the
        // right groups at write time to stay on the borrowed path.
        const CompressedModel &m = modelLocked();
        const CompressedLayer &cl = m.layers[static_cast<std::size_t>(i)];
        shared = std::make_shared<const std::vector<GroupedSparseMatrix>>(
            cl.packGroupedRows(
                m.codebooks[static_cast<std::size_t>(cl.codebook_id)],
                g));
    }
    cache_[key] = shared;
    return shared;
}

} // namespace mvq::core::io
