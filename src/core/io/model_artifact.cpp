#include "core/io/model_artifact.hpp"

#include <fstream>

#include "common/logging.hpp"
#include "core/io/mmap_artifact.hpp"
#include "core/io/stream_artifact.hpp"
#include "core/serialize.hpp"

namespace mvq::core::io {

std::string
artifactFormatName(ArtifactFormat f)
{
    switch (f) {
      case ArtifactFormat::Stream:
        return "stream";
      case ArtifactFormat::Mvqi:
        return "mvqi";
    }
    return "unknown";
}

std::unique_ptr<ModelArtifact>
openArtifact(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open model file ", path);
    std::uint8_t m[4] = {};
    in.read(reinterpret_cast<char *>(m), 4);
    fatalIf(!in, path, ": too short to be a compressed-model file");
    in.close();
    // Both formats lead with a little-endian 32-bit magic.
    const std::uint32_t magic = static_cast<std::uint32_t>(m[0])
        | static_cast<std::uint32_t>(m[1]) << 8
        | static_cast<std::uint32_t>(m[2]) << 16
        | static_cast<std::uint32_t>(m[3]) << 24;
    if (magic == kMvqiMagic)
        return std::make_unique<MmapArtifact>(path);
    if (magic == kStreamMagic)
        return std::make_unique<StreamArtifact>(path);
    fatal(path, ": unknown model file magic 0x", std::hex, magic,
          std::dec, " (neither MVQ stream nor MVQI image)");
}

void
saveArtifact(const CompressedModel &model, const std::string &path,
             ArtifactFormat format, const MvqiWriteOptions &mvqi_opts)
{
    switch (format) {
      case ArtifactFormat::Stream: {
        const std::vector<std::uint8_t> bytes = serializeModel(model);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        fatalIf(!out, "cannot open ", path, " for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        fatalIf(!out, "short write to ", path);
        return;
      }
      case ArtifactFormat::Mvqi:
        writeMvqiFile(model, path, mvqi_opts);
        return;
    }
    panic("unhandled artifact format");
}

} // namespace mvq::core::io
