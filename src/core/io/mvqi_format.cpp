#include "core/io/mvqi_format.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <type_traits>

#include "common/env.hpp"
#include "common/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MVQ_MVQI_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mvq::core::io {

// The tiles section stores GroupedSparseMatrix::Tile verbatim; pin its
// layout so an image written by one build is readable by another.
static_assert(std::is_trivially_copyable_v<GroupedSparseMatrix::Tile>,
              "Tile must be trivially copyable to live in an MVQI image");
static_assert(sizeof(GroupedSparseMatrix::Tile) == 48,
              "Tile layout drifted; bump kMvqiVersion and update "
              "docs/FORMAT.md");

namespace {

using Tile = GroupedSparseMatrix::Tile;

/**
 * Append-only image buffer. Every section lands on a kMvqiAlign boundary
 * (zero padding in between), so offsets recorded here are valid for both
 * the mmap path (page-aligned base) and the aligned heap fallback.
 */
struct ImageBuilder
{
    std::vector<std::uint8_t> buf;

    std::uint64_t
    alignUp()
    {
        while (buf.size() % static_cast<std::size_t>(kMvqiAlign) != 0)
            buf.push_back(0);
        return static_cast<std::uint64_t>(buf.size());
    }

    /** Reserve `bytes` zeroed bytes at an aligned offset (patched later). */
    std::uint64_t
    reserve(std::size_t bytes)
    {
        const std::uint64_t off = alignUp();
        buf.insert(buf.end(), bytes, 0);
        return off;
    }

    template <typename T>
    std::uint64_t
    appendRaw(const T *p, std::int64_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::uint64_t off = alignUp();
        if (n > 0) // p may be null for an empty borrowed array
            buf.insert(buf.end(),
                       reinterpret_cast<const std::uint8_t *>(p),
                       reinterpret_cast<const std::uint8_t *>(p)
                           + static_cast<std::size_t>(n) * sizeof(T));
        return off;
    }

    template <typename T>
    MvqiArray
    append(const OperandArray<T> &a)
    {
        return MvqiArray{appendRaw(a.data(),
                                   static_cast<std::int64_t>(a.size())),
                         static_cast<std::int64_t>(a.size())};
    }

    template <typename T>
    MvqiArray
    append(const std::vector<T> &a)
    {
        return MvqiArray{appendRaw(a.data(),
                                   static_cast<std::int64_t>(a.size())),
                         static_cast<std::int64_t>(a.size())};
    }

    void
    patch(std::uint64_t off, const void *p, std::size_t bytes)
    {
        std::memcpy(buf.data() + off, p, bytes);
    }
};

/**
 * Tiles as built by groupSparseRows leave row[] slots beyond nrows (and
 * struct padding) indeterminate. The image must be byte-deterministic
 * (the golden-fixture test memcmps it), so copy field-by-field into
 * value-initialized (all-zero) storage before appending.
 */
std::vector<Tile>
normalizedTiles(const OperandArray<Tile> &tiles)
{
    std::vector<Tile> norm(tiles.size());
    if (norm.empty())
        return norm;
    // Tile is trivially copyable (static_asserted above); the void cast
    // silences -Wclass-memaccess, which keys off the NSDMIs alone.
    std::memset(static_cast<void *>(norm.data()), 0,
                norm.size() * sizeof(Tile));
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        const Tile &s = tiles[i];
        Tile &t = norm[i];
        for (std::int32_t r = 0; r < s.nrows; ++r)
            t.row[r] = s.row[r];
        t.nrows = s.nrows;
        t.col_off = s.col_off;
        t.ncols = s.ncols;
        t.val_off = s.val_off;
    }
    return norm;
}

MvqiOperand
appendOperand(ImageBuilder &b, const GroupedSparseMatrix &op)
{
    MvqiOperand rec;
    rec.rows = op.rows.rows;
    rec.cols = op.rows.cols;
    rec.row_ptr = b.append(op.rows.row_ptr);
    rec.col_idx = b.append(op.rows.col_idx);
    rec.values = b.append(op.rows.values);
    const std::vector<Tile> tiles = normalizedTiles(op.tiles);
    rec.tiles = b.append(tiles);
    rec.tile_cols = b.append(op.cols);
    rec.tile_vals = b.append(op.vals);
    rec.band_ptr = b.append(op.band_ptr);
    rec.rem_row_ptr = b.append(op.remainder.row_ptr);
    rec.rem_col_idx = b.append(op.remainder.col_idx);
    rec.rem_values = b.append(op.remainder.values);
    return rec;
}

} // namespace

std::vector<std::uint8_t>
buildMvqiImage(const CompressedModel &model, const MvqiWriteOptions &opts)
{
    const std::size_t n_books = model.codebooks.size();
    const std::size_t n_layers = model.layers.size();

    ImageBuilder b;
    b.reserve(sizeof(MvqiHeader));
    const std::uint64_t cb_toc_off = b.reserve(n_books * sizeof(MvqiCodebook));
    const std::uint64_t layer_toc_off =
        b.reserve(n_layers * sizeof(MvqiLayer));

    std::vector<MvqiCodebook> cb_toc(n_books);
    for (std::size_t i = 0; i < n_books; ++i) {
        const Codebook &cb = model.codebooks[i];
        MvqiCodebook &rec = cb_toc[i];
        rec.k = cb.k();
        rec.d = cb.d();
        rec.qbits = cb.qbits;
        rec.scale = cb.scale;
        rec.codewords_off =
            b.appendRaw(cb.codewords.data(), cb.codewords.numel());
    }

    std::vector<MvqiLayer> layer_toc(n_layers);
    for (std::size_t i = 0; i < n_layers; ++i) {
        const CompressedLayer &cl = model.layers[i];
        fatalIf(cl.name.size() >= kMvqiNameBytes, "layer name '", cl.name,
                "' exceeds the MVQI limit of ", kMvqiNameBytes - 1,
                " bytes");
        fatalIf(cl.weight_shape.rank() != 4, "layer ", cl.name,
                " weight shape ", cl.weight_shape.str(), " is not rank 4");
        fatalIf(cl.codebook_id < 0
                    || static_cast<std::size_t>(cl.codebook_id) >= n_books,
                "layer ", cl.name, " references codebook ", cl.codebook_id,
                " of ", n_books);

        std::int64_t groups = opts.default_groups;
        if (auto it = opts.layer_groups.find(cl.name);
            it != opts.layer_groups.end())
            groups = it->second;
        fatalIf(groups < 1, "invalid conv groups ", groups, " for layer ",
                cl.name);

        MvqiLayer &rec = layer_toc[i];
        std::memcpy(rec.name, cl.name.c_str(), cl.name.size());
        for (int j = 0; j < 4; ++j)
            rec.shape[j] = cl.weight_shape.dim(j);
        rec.k = cl.cfg.k;
        rec.d = cl.cfg.d;
        rec.n = static_cast<std::int32_t>(cl.cfg.pattern.n);
        rec.m = static_cast<std::int32_t>(cl.cfg.pattern.m);
        rec.grouping = static_cast<std::int32_t>(cl.cfg.grouping);
        rec.codebook_bits = cl.cfg.codebook_bits;
        rec.codebook_id = cl.codebook_id;
        rec.groups = static_cast<std::int32_t>(groups);
        rec.dense_flops = cl.dense_flops;
        rec.ng = cl.ng();
        rec.assignments = b.append(cl.assignments);
        rec.mask_codes = b.append(cl.mask_codes);

        // The one and only pack: serving loads borrow these bytes as-is.
        const std::vector<GroupedSparseMatrix> ops =
            cl.packGroupedRows(model.codebooks[cl.codebook_id], groups);
        std::vector<MvqiOperand> op_recs;
        op_recs.reserve(ops.size());
        for (const GroupedSparseMatrix &op : ops)
            op_recs.push_back(appendOperand(b, op));
        rec.operands_off = b.appendRaw(op_recs.data(),
                                       static_cast<std::int64_t>(
                                           op_recs.size()));
    }

    b.alignUp();

    MvqiHeader h;
    h.magic = kMvqiMagic;
    h.version = kMvqiVersion;
    h.header_bytes = sizeof(MvqiHeader);
    h.flags = model.dense_reconstruct ? 1u : 0u;
    h.n_codebooks = static_cast<std::uint32_t>(n_books);
    h.n_layers = static_cast<std::uint32_t>(n_layers);
    h.codebook_toc_off = cb_toc_off;
    h.layer_toc_off = layer_toc_off;
    h.file_bytes = static_cast<std::uint64_t>(b.buf.size());
    b.patch(0, &h, sizeof(h));
    if (n_books != 0)
        b.patch(cb_toc_off, cb_toc.data(), n_books * sizeof(MvqiCodebook));
    if (n_layers != 0)
        b.patch(layer_toc_off, layer_toc.data(),
                n_layers * sizeof(MvqiLayer));
    return std::move(b.buf);
}

void
writeMvqiFile(const CompressedModel &model, const std::string &path,
              const MvqiWriteOptions &opts)
{
    const std::vector<std::uint8_t> image = buildMvqiImage(model, opts);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatalIf(!out, "cannot open ", path, " for writing");
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    fatalIf(!out, "failed writing MVQI image to ", path);
}

namespace {

/** -1 = unresolved (read MVQ_MVQI_NO_MMAP on first query). */
std::atomic<int> g_heap_fallback{-1};

} // namespace

bool
mvqiHeapFallback()
{
    int v = g_heap_fallback.load(std::memory_order_acquire);
    if (v < 0) {
        v = env::flag("MVQ_MVQI_NO_MMAP", false) ? 1 : 0;
        g_heap_fallback.store(v, std::memory_order_release);
    }
    return v == 1;
}

void
setMvqiHeapFallback(bool on)
{
    g_heap_fallback.store(on ? 1 : 0, std::memory_order_release);
}

MappedFile::MappedFile(const std::string &path) : path_(path)
{
#ifdef MVQ_MVQI_HAVE_MMAP
    if (!mvqiHeapFallback()) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        fatalIf(fd < 0, "cannot open model image ", path);
        struct stat st;
        const bool stat_ok = ::fstat(fd, &st) == 0;
        if (!stat_ok || st.st_size <= 0) {
            ::close(fd);
            fatalIf(!stat_ok, "cannot stat model image ", path);
            fatal("model image ", path, " is empty");
        }
        void *p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        fatalIf(p == MAP_FAILED, "mmap failed for model image ", path);
        data_ = static_cast<const std::uint8_t *>(p);
        size_ = static_cast<std::int64_t>(st.st_size);
        mapped_ = true;
        return;
    }
#endif
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    fatalIf(!in, "cannot open model image ", path);
    const std::int64_t sz = static_cast<std::int64_t>(in.tellg());
    fatalIf(sz <= 0, "model image ", path, " is empty");
    const std::size_t alloc =
        (static_cast<std::size_t>(sz) + kMvqiAlign - 1)
        / kMvqiAlign * kMvqiAlign;
    void *p = std::aligned_alloc(static_cast<std::size_t>(kMvqiAlign),
                                 alloc);
    fatalIf(p == nullptr, "cannot allocate ", alloc, " bytes for model ",
            "image ", path);
    in.seekg(0);
    in.read(static_cast<char *>(p), sz);
    if (!in) {
        std::free(p);
        fatal("short read loading model image ", path);
    }
    heap_ = p;
    data_ = static_cast<const std::uint8_t *>(p);
    size_ = sz;
}

MappedFile::~MappedFile()
{
#ifdef MVQ_MVQI_HAVE_MMAP
    if (mapped_)
        ::munmap(const_cast<std::uint8_t *>(data_),
                 static_cast<std::size_t>(size_));
#endif
    if (heap_ != nullptr)
        std::free(heap_);
}

MvqiView::MvqiView(const std::uint8_t *data, std::int64_t size,
                   std::string what)
    : data_(data), size_(size), what_(std::move(what))
{
    validate();
}

const MvqiHeader &
MvqiView::header() const
{
    return *reinterpret_cast<const MvqiHeader *>(data_);
}

std::int64_t
MvqiView::codebookCount() const
{
    return static_cast<std::int64_t>(header().n_codebooks);
}

std::int64_t
MvqiView::layerCount() const
{
    return static_cast<std::int64_t>(header().n_layers);
}

const MvqiCodebook &
MvqiView::codebook(std::int64_t i) const
{
    panicIf(i < 0 || i >= codebookCount(), "codebook index ", i,
            " out of range [0, ", codebookCount(), ")");
    return reinterpret_cast<const MvqiCodebook *>(
        data_ + header().codebook_toc_off)[i];
}

const MvqiLayer &
MvqiView::layer(std::int64_t i) const
{
    panicIf(i < 0 || i >= layerCount(), "layer index ", i,
            " out of range [0, ", layerCount(), ")");
    return reinterpret_cast<const MvqiLayer *>(
        data_ + header().layer_toc_off)[i];
}

const MvqiOperand *
MvqiView::operands(std::int64_t layer_idx) const
{
    return reinterpret_cast<const MvqiOperand *>(
        data_ + layer(layer_idx).operands_off);
}

void
MvqiView::checkArray(const MvqiArray &a, std::int64_t elem_bytes,
                     const char *name) const
{
    fatalIf(a.off % static_cast<std::uint64_t>(kMvqiAlign) != 0, what_,
            ": misaligned ", name, " section (offset ", a.off, " is not ",
            kMvqiAlign, "-byte aligned)");
    fatalIf(a.count < 0, what_, ": negative ", name, " element count ",
            a.count);
    fatalIf(a.off > static_cast<std::uint64_t>(size_), what_, ": ", name,
            " section offset ", a.off, " is beyond the end of the ",
            size_, "-byte image");
    const std::uint64_t avail = static_cast<std::uint64_t>(size_) - a.off;
    fatalIf(static_cast<std::uint64_t>(a.count)
                > avail / static_cast<std::uint64_t>(elem_bytes),
            what_, ": ", name, " section (", a.count, " x ", elem_bytes,
            " bytes at offset ", a.off, ") extends past the end of the ",
            size_, "-byte image");
}

void
MvqiView::validate()
{
    panicIf(data_ == nullptr, "MvqiView over a null image");
    panicIf(reinterpret_cast<std::uintptr_t>(data_) % 8 != 0,
            "MVQI image base address is not 8-byte aligned");
    fatalIf(size_ < static_cast<std::int64_t>(sizeof(MvqiHeader)), what_,
            ": truncated MVQI image (", size_, " bytes; the header alone "
            "is ", sizeof(MvqiHeader), ")");

    const MvqiHeader &h = header();
    fatalIf(h.magic != kMvqiMagic, what_, ": bad magic 0x", std::hex,
            h.magic, std::dec, " (not an MVQI image)");
    fatalIf(h.version != kMvqiVersion, what_, ": unsupported MVQI version ",
            h.version, " (this build reads version ", kMvqiVersion, ")");
    fatalIf(h.header_bytes != sizeof(MvqiHeader), what_,
            ": header size mismatch (", h.header_bytes, " vs ",
            sizeof(MvqiHeader), ")");
    fatalIf(h.file_bytes != static_cast<std::uint64_t>(size_), what_,
            ": file size mismatch (header records ", h.file_bytes,
            " bytes, file has ", size_, ")");

    checkArray(MvqiArray{h.codebook_toc_off,
                         static_cast<std::int64_t>(h.n_codebooks)},
               sizeof(MvqiCodebook), "codebook TOC");
    checkArray(MvqiArray{h.layer_toc_off,
                         static_cast<std::int64_t>(h.n_layers)},
               sizeof(MvqiLayer), "layer TOC");

    for (std::int64_t i = 0; i < codebookCount(); ++i) {
        const MvqiCodebook &cb = codebook(i);
        fatalIf(cb.k <= 0 || cb.d <= 0, what_, ": codebook ", i,
                " has invalid dimensions k=", cb.k, " d=", cb.d);
        fatalIf(cb.qbits < 0 || cb.qbits > 32, what_, ": codebook ", i,
                " has invalid qbits ", cb.qbits);
        fatalIf(cb.k > std::numeric_limits<std::int64_t>::max() / cb.d,
                what_, ": codebook ", i, " dimensions overflow");
        checkArray(MvqiArray{cb.codewords_off, cb.k * cb.d}, sizeof(float),
                   "codewords");
    }

    for (std::int64_t i = 0; i < layerCount(); ++i) {
        const MvqiLayer &L = layer(i);
        fatalIf(L.name[kMvqiNameBytes - 1] != '\0', what_, ": layer ", i,
                " name is not NUL-terminated");
        for (int j = 0; j < 4; ++j)
            fatalIf(L.shape[j] <= 0, what_, ": layer ", i,
                    " has invalid shape dimension ", L.shape[j]);
        fatalIf(L.k <= 0, what_, ": layer ", i, " has invalid k ", L.k);
        fatalIf(L.d <= 0 || L.m <= 0 || L.d % L.m != 0, what_, ": layer ",
                i, " has inconsistent d=", L.d, " M=", L.m);
        fatalIf(L.n < 0 || L.n > L.m, what_, ": layer ", i,
                " has invalid N:M pattern ", L.n, ":", L.m);
        fatalIf(L.grouping < 0 || L.grouping > 2, what_, ": layer ", i,
                " has invalid grouping ", L.grouping);
        fatalIf(L.codebook_bits < 0 || L.codebook_bits > 32, what_,
                ": layer ", i, " has invalid codebook_bits ",
                L.codebook_bits);
        fatalIf(L.codebook_id < 0
                    || static_cast<std::uint32_t>(L.codebook_id)
                        >= h.n_codebooks,
                what_, ": layer ", i, " references codebook ",
                L.codebook_id, " of ", h.n_codebooks);
        fatalIf(L.groups < 1 || L.groups > L.shape[0], what_, ": layer ",
                i, " has invalid conv groups ", L.groups);
        fatalIf(L.ng < 0, what_, ": layer ", i, " has negative ng");

        checkArray(L.assignments, sizeof(std::int32_t), "assignments");
        fatalIf(L.assignments.count != L.ng, what_, ": layer ", i,
                " assignments count ", L.assignments.count,
                " does not match ng ", L.ng);
        checkArray(L.mask_codes, sizeof(std::uint32_t), "mask codes");
        fatalIf(L.mask_codes.count != L.ng * (L.d / L.m), what_,
                ": layer ", i, " mask-code count ", L.mask_codes.count,
                " does not match ng*d/M = ", L.ng * (L.d / L.m));
        checkArray(MvqiArray{L.operands_off,
                             static_cast<std::int64_t>(L.groups)},
                   sizeof(MvqiOperand), "operand TOC");

        for (std::int32_t g = 0; g < L.groups; ++g) {
            const MvqiOperand &op = operands(i)[g];
            fatalIf(op.rows < 0 || op.cols < 0, what_, ": layer ", i,
                    " operand ", g, " has negative dimensions");
            checkArray(op.row_ptr, sizeof(std::int64_t), "row_ptr");
            fatalIf(op.row_ptr.count != op.rows + 1, what_, ": layer ", i,
                    " operand ", g, " row_ptr count ", op.row_ptr.count,
                    " does not match rows+1 = ", op.rows + 1);
            checkArray(op.col_idx, sizeof(std::int32_t), "col_idx");
            checkArray(op.values, sizeof(float), "values");
            fatalIf(op.col_idx.count != op.values.count, what_, ": layer ",
                    i, " operand ", g, " col_idx/values count mismatch");
            checkArray(op.tiles, sizeof(Tile), "tiles");
            checkArray(op.tile_cols, sizeof(std::int32_t), "tile cols");
            checkArray(op.tile_vals, sizeof(float), "tile vals");
            checkArray(op.band_ptr, sizeof(std::int64_t), "band_ptr");
            fatalIf(op.band_ptr.count < 1, what_, ": layer ", i,
                    " operand ", g, " band_ptr is empty");
            checkArray(op.rem_row_ptr, sizeof(std::int64_t),
                       "remainder row_ptr");
            fatalIf(op.rem_row_ptr.count != op.rows + 1, what_, ": layer ",
                    i, " operand ", g, " remainder row_ptr count ",
                    op.rem_row_ptr.count, " does not match rows+1 = ",
                    op.rows + 1);
            checkArray(op.rem_col_idx, sizeof(std::int32_t),
                       "remainder col_idx");
            checkArray(op.rem_values, sizeof(float), "remainder values");
            fatalIf(op.rem_col_idx.count != op.rem_values.count, what_,
                    ": layer ", i, " operand ", g,
                    " remainder col_idx/values count mismatch");
        }
    }
}

} // namespace mvq::core::io
