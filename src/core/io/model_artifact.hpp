/**
 * @file
 * ModelArtifact — the one API every consumer of a compressed-model file
 * goes through (examples, the accelerator sim's weight loader, the
 * serving-oriented conv layers). Two backends implement it:
 *
 *  - StreamArtifact (core/io/stream_artifact): the legacy bit-packed
 *    stream of core/serialize. Opening it decodes the full stream; packed
 *    operands are built on demand (packGroupedRows) and cached.
 *  - MmapArtifact (core/io/mmap_artifact): the MVQI image. Opening it
 *    mmaps and structurally validates the file; packed operands are
 *    borrowed views whose pointers alias the mapped bytes — no bit-stream
 *    decode and no packSparseRows/packGroupedRows on the load path.
 *
 * openArtifact() sniffs the file magic and returns the right backend, so
 * callers are format-agnostic: the same serving code runs from either
 * file, and converting between formats is saveArtifact(artifact->model()).
 */

#ifndef MVQ_CORE_IO_MODEL_ARTIFACT_HPP
#define MVQ_CORE_IO_MODEL_ARTIFACT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compressed_layer.hpp"
#include "core/io/mvqi_format.hpp"

namespace mvq::core::io {

/** The two on-disk representations of a compressed model. */
enum class ArtifactFormat
{
    Stream, //!< bit-packed stream (core/serialize), magic "MVQ1"
    Mvqi,   //!< flat mmap-able image (core/io/mvqi_format), magic "MVQI"
};

/** Human-readable format name ("stream" / "mvqi"). */
std::string artifactFormatName(ArtifactFormat f);

/**
 * Shared handle to one layer's packed gemm operands (one
 * GroupedSparseMatrix per conv group). The shared_ptr's control block
 * keeps whatever owns the underlying bytes alive — for a borrowed MVQI
 * operand that is the mapped file itself — so holders may outlive the
 * artifact that produced them.
 */
using SharedOperands = std::shared_ptr<const std::vector<GroupedSparseMatrix>>;

/** A compressed-model file opened for reading. */
class ModelArtifact
{
  public:
    virtual ~ModelArtifact() = default;

    virtual ArtifactFormat format() const = 0;
    virtual const std::string &path() const = 0;
    virtual std::int64_t sizeBytes() const = 0;

    /**
     * The fully materialized model. For a StreamArtifact this is the
     * decoded stream (built at open); for an MmapArtifact it is
     * reconstructed from the image on first call (and cached) — serving
     * paths that only need packedOperands never pay for it.
     */
    virtual const CompressedModel &model() const = 0;

    virtual std::int64_t layerCount() const = 0;
    virtual std::string layerName(std::int64_t i) const = 0;
    /** Original 4-D kernel shape of layer i. */
    virtual Shape layerShape(std::int64_t i) const = 0;

    /**
     * Conv groups the artifact has pre-packed operands for (MVQI bakes
     * them at write time); 0 when the artifact stores no packing (stream)
     * and every group count is equally cheap.
     */
    virtual std::int64_t bakedGroups(std::int64_t i) const = 0;

    /**
     * Layer i's packed sparse operands for a `groups`-way convolution.
     * `groups == 0` means "the artifact's baked groups" (or 1 when
     * nothing is baked). Results are cached per (layer, groups), so N
     * conv instances built from one artifact share one operand set.
     *
     * MmapArtifact serves the baked group count as borrowed views over
     * the image (zero-copy; the returned handle keeps the mapping alive);
     * any other count falls back to materializing + repacking, which is
     * correct but defeats the zero-copy point — bake the right groups at
     * write time (MvqiWriteOptions::layer_groups).
     */
    virtual SharedOperands packedOperands(std::int64_t i,
                                          std::int64_t groups = 0) const = 0;
};

/**
 * Open a compressed-model file, sniffing the magic to pick the backend.
 * Fatal on unreadable files or unknown magic.
 */
std::unique_ptr<ModelArtifact> openArtifact(const std::string &path);

/**
 * Write `model` to `path` in the requested format. `mvqi_opts` applies
 * to ArtifactFormat::Mvqi only (conv groups to bake per layer).
 */
void saveArtifact(const CompressedModel &model, const std::string &path,
                  ArtifactFormat format,
                  const MvqiWriteOptions &mvqi_opts = {});

} // namespace mvq::core::io

#endif // MVQ_CORE_IO_MODEL_ARTIFACT_HPP
