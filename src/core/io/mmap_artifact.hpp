/**
 * @file
 * MmapArtifact — the MVQI image behind the ModelArtifact interface.
 * Opening one mmaps the file and runs the O(layers) structural
 * validation of MvqiView; packedOperands borrows the pre-packed operand
 * sections straight out of the mapping (validateGroupedOperand is the
 * only O(nnz) work, and it reads — never copies — the image). N
 * processes opening the same image share its pages read-only through the
 * page cache, the fleet-serving story the ROADMAP asks for.
 */

#ifndef MVQ_CORE_IO_MMAP_ARTIFACT_HPP
#define MVQ_CORE_IO_MMAP_ARTIFACT_HPP

#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "core/io/model_artifact.hpp"

namespace mvq::core::io {

/** Zero-copy MVQI backend (mmap at open, borrow on demand). */
class MmapArtifact : public ModelArtifact
{
  public:
    /** Map + structurally validate the image; fatal on corruption. */
    explicit MmapArtifact(const std::string &path);

    ArtifactFormat format() const override { return ArtifactFormat::Mvqi; }
    const std::string &path() const override { return map_->path(); }
    std::int64_t sizeBytes() const override { return map_->size(); }
    const CompressedModel &model() const override;
    std::int64_t layerCount() const override;
    std::string layerName(std::int64_t i) const override;
    Shape layerShape(std::int64_t i) const override;
    std::int64_t bakedGroups(std::int64_t i) const override;
    SharedOperands packedOperands(std::int64_t i,
                                  std::int64_t groups = 0) const override;

    /** True when the image is mmap'ed (vs the aligned heap fallback). */
    bool mapped() const { return map_->mapped(); }
    /** The validated structural view (inspection tooling). */
    const MvqiView &view() const { return view_; }

  private:
    /** model_ builder + cache lookup body; mu_ must be held. */
    const CompressedModel &modelLocked() const;

    std::shared_ptr<MappedFile> map_;
    MvqiView view_;
    /** Serializes lazy materialization and the operand cache: model()
     *  and packedOperands() are called concurrently by serving threads
     *  sharing one artifact (see tests/concurrency_test.cpp). */
    mutable std::mutex mu_;
    /** Materialized model, built on first model() call only. */
    mutable std::optional<CompressedModel> model_;
    mutable std::map<std::pair<std::int64_t, std::int64_t>, SharedOperands>
        cache_;
};

} // namespace mvq::core::io

#endif // MVQ_CORE_IO_MMAP_ARTIFACT_HPP
