#include "core/grouping.hpp"

#include "common/logging.hpp"

namespace mvq::core {

std::string
groupingName(Grouping g)
{
    switch (g) {
      case Grouping::KernelWise:
        return "kernel-wise";
      case Grouping::OutputChannelWise:
        return "output-channel-wise";
      case Grouping::InputChannelWise:
        return "input-channel-wise";
    }
    return "unknown";
}

Grouping
groupingFromInt(int v)
{
    switch (v) {
      case static_cast<int>(Grouping::KernelWise):
        return Grouping::KernelWise;
      case static_cast<int>(Grouping::OutputChannelWise):
        return Grouping::OutputChannelWise;
      case static_cast<int>(Grouping::InputChannelWise):
        return Grouping::InputChannelWise;
    }
    fatal("invalid grouping value ", v, " (expected 0..2)");
}

namespace {

void
checkDivisibility(const Shape &w4, std::int64_t d, Grouping g)
{
    fatalIf(w4.rank() != 4, "grouping expects a 4-D kernel, got ",
            w4.str());
    const std::int64_t k = w4.dim(0);
    const std::int64_t c = w4.dim(1);
    const std::int64_t rs = w4.dim(2) * w4.dim(3);
    switch (g) {
      case Grouping::KernelWise:
        fatalIf(rs != d, "kernel-wise grouping needs d == R*S (",
                rs, "), got d = ", d);
        break;
      case Grouping::OutputChannelWise:
        fatalIf(k % d != 0, "output-channel grouping needs d | K, got K = ",
                k, ", d = ", d);
        break;
      case Grouping::InputChannelWise:
        fatalIf(c % d != 0, "input-channel grouping needs d | C, got C = ",
                c, ", d = ", d);
        break;
    }
}

} // namespace

std::int64_t
groupCount(const Shape &w4, std::int64_t d, Grouping g)
{
    checkDivisibility(w4, d, g);
    return w4.numel() / d;
}

/**
 * All three strategies enumerate rows so that consecutive rows correspond
 * to the hardware's weight-loading order.
 */
GroupedCoord
groupedCoords(std::int64_t k, std::int64_t c, std::int64_t r, std::int64_t s,
              const Shape &w4, std::int64_t d, Grouping g)
{
    const std::int64_t cc = w4.dim(1);
    const std::int64_t rr = w4.dim(2);
    const std::int64_t ss = w4.dim(3);
    switch (g) {
      case Grouping::KernelWise:
        return {k * cc + c, r * ss + s};
      case Grouping::OutputChannelWise:
        return {((k / d) * cc + c) * (rr * ss) + r * ss + s, k % d};
      case Grouping::InputChannelWise:
        return {(k * (cc / d) + c / d) * (rr * ss) + r * ss + s, c % d};
    }
    panic("unreachable grouping");
}

Tensor
groupWeights(const Tensor &w4, std::int64_t d, Grouping g)
{
    checkDivisibility(w4.shape(), d, g);
    const std::int64_t ng = w4.numel() / d;
    Tensor wr(Shape({ng, d}));
    for (std::int64_t k = 0; k < w4.dim(0); ++k) {
        for (std::int64_t c = 0; c < w4.dim(1); ++c) {
            for (std::int64_t r = 0; r < w4.dim(2); ++r) {
                for (std::int64_t s = 0; s < w4.dim(3); ++s) {
                    const GroupedCoord rc =
                        groupedCoords(k, c, r, s, w4.shape(), d, g);
                    wr.at(rc.row, rc.col) = w4.at(k, c, r, s);
                }
            }
        }
    }
    return wr;
}

Tensor
ungroupWeights(const Tensor &wr, const Shape &w4_shape, std::int64_t d,
               Grouping g)
{
    checkDivisibility(w4_shape, d, g);
    fatalIf(wr.rank() != 2 || wr.dim(1) != d
                || wr.dim(0) != w4_shape.numel() / d,
            "ungroup shape mismatch: ", wr.shape().str());
    Tensor w4(w4_shape);
    for (std::int64_t k = 0; k < w4.dim(0); ++k) {
        for (std::int64_t c = 0; c < w4.dim(1); ++c) {
            for (std::int64_t r = 0; r < w4.dim(2); ++r) {
                for (std::int64_t s = 0; s < w4.dim(3); ++s) {
                    const GroupedCoord rc =
                        groupedCoords(k, c, r, s, w4_shape, d, g);
                    w4.at(k, c, r, s) = wr.at(rc.row, rc.col);
                }
            }
        }
    }
    return w4;
}

} // namespace mvq::core
