/**
 * @file
 * Binary serialization of compressed models — the deployment artifact
 * the accelerator's weight loader consumes. The format packs exactly
 * the bits the storage accounting charges: assignments at
 * ceil(log2 k) bits, mask codes at ceil(log2 C(M,N)) bits, and int8
 * codewords, so the file size matches Eq. 7 up to header overhead.
 */

#ifndef MVQ_CORE_SERIALIZE_HPP
#define MVQ_CORE_SERIALIZE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/compressed_layer.hpp"

namespace mvq::core {

/** First 32 bits of a bit-packed model stream ("MVQ1" little-endian). */
constexpr std::uint32_t kStreamMagic = 0x4d565131;

/** Append an arbitrary-width little-endian bitfield to a bit stream. */
class BitWriter
{
  public:
    /** Append the low `bits` bits of value. */
    void put(std::uint64_t value, int bits);

    /** Pad to a byte boundary and return the buffer. */
    std::vector<std::uint8_t> finish();

    /** Bits written so far (before padding). */
    std::int64_t bitCount() const { return bit_count; }

  private:
    std::vector<std::uint8_t> bytes;
    int bit_pos = 0;
    std::int64_t bit_count = 0;
};

/** Read back arbitrary-width bitfields written by BitWriter. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &data)
        : bytes(data)
    {
    }

    /** Read `bits` bits; fatal on overrun. */
    std::uint64_t get(int bits);

    /**
     * Bits left before overrun. Decoders check this *before* sizing an
     * allocation from an untrusted count field, so a corrupt stream fails
     * with a clear message instead of attempting a huge resize.
     */
    std::int64_t
    remainingBits() const
    {
        return static_cast<std::int64_t>(bytes.size()) * 8 - pos;
    }

  private:
    const std::vector<std::uint8_t> &bytes;
    std::int64_t pos = 0; //!< bit cursor
};

/** Serialize a compressed model to a byte buffer. */
std::vector<std::uint8_t> serializeModel(const CompressedModel &model);

/** Inverse of serializeModel; fatal on a malformed buffer. */
CompressedModel deserializeModel(const std::vector<std::uint8_t> &data);

} // namespace mvq::core

#endif // MVQ_CORE_SERIALIZE_HPP
