/**
 * @file
 * Codebook fine-tuning (paper Section 4.6, Fig. 5). During the forward
 * pass the model runs with weights reconstructed from codebook +
 * assignments + masks; during the backward pass the per-weight gradients
 * are aggregated per codeword with the mask (Eq. 6) and the codewords are
 * updated with a first-order optimizer, then re-snapped to the int8 grid.
 *
 * The same machinery with masked_gradients = false implements the plain
 * codeword fine-tuning used by the unmasked VQ baselines.
 */

#ifndef MVQ_CORE_FINETUNE_HPP
#define MVQ_CORE_FINETUNE_HPP

#include "core/compressed_layer.hpp"
#include "nn/dataset.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace mvq::nn {
class Conv2d;
} // namespace mvq::nn

namespace mvq::core {

/** Options for codebook fine-tuning. */
struct FinetuneConfig
{
    int epochs = 2;
    int batch_size = 32;
    float codebook_lr = 2e-3f; //!< Adam on codewords
    float other_lr = 0.01f;    //!< SGD on BN / classifier parameters
    float momentum = 0.9f;
    bool masked_gradients = true;
    std::uint64_t seed = 23;
};

/**
 * Reusable fine-tuning engine. Owns latent full-precision copies of the
 * codebooks (optimized with Adam through the quantization grid, LSQ-style)
 * and an SGD optimizer for every parameter that is not a compressed
 * kernel. Custom training loops (e.g. the detection model) drive it with
 * their own forward/backward and call step() per batch.
 */
class CodebookTrainer
{
  public:
    /**
     * @param cm    Compressed model; codebooks are updated in place.
     * @param model Network containing the compressed conv layers.
     */
    CodebookTrainer(CompressedModel &cm, nn::Layer &model,
                    const FinetuneConfig &cfg);

    /** Project latent codebooks through quantization and reload weights. */
    void applyReconstruction();

    /**
     * Consume the gradients of the most recent backward pass: aggregate
     * per-codeword gradients (Eq. 6), step Adam on codebooks and SGD on
     * the remaining parameters, then re-apply reconstruction.
     */
    void step();

  private:
    CompressedModel &cm;
    nn::Layer &model;
    FinetuneConfig cfg;
    nn::Adam cbOpt;
    nn::Sgd otherOpt;
    std::vector<nn::Parameter> latent;
    std::vector<nn::Conv2d *> targets;
    std::vector<Mask> masks;
    std::vector<nn::Parameter *> otherParams;
};

/**
 * Fine-tune codebooks (and remaining parameters) of a compressed
 * classifier. On return the model holds the final reconstructed weights
 * and the codebooks in `cm` are updated (quantized when configured).
 *
 * @return Test accuracy after fine-tuning.
 */
double finetuneCompressedClassifier(CompressedModel &cm, nn::Layer &model,
                                    const nn::ClassificationDataset &data,
                                    const FinetuneConfig &cfg);

/** Segmentation variant (pixelwise cross-entropy); returns test mIoU. */
double finetuneCompressedSegmenter(CompressedModel &cm, nn::Layer &model,
                                   const nn::SegmentationDataset &data,
                                   const FinetuneConfig &cfg);

/**
 * Aggregate per-weight gradients into per-codeword gradients (Eq. 6).
 * Exposed for testing.
 *
 * @param grad_wr [N_G, d] gradient of the loss w.r.t. reconstructed
 *                grouped weights.
 * @param mask    N_G*d bitmask (all ones for unmasked aggregation).
 * @param assignments N_G codeword ids.
 * @param k       Codeword count.
 * @param masked  Use masked aggregation.
 * @return [k, d] codeword gradient.
 */
Tensor aggregateCodewordGrad(const Tensor &grad_wr, const Mask &mask,
                             const std::vector<std::int32_t> &assignments,
                             std::int64_t k, bool masked);

} // namespace mvq::core

#endif // MVQ_CORE_FINETUNE_HPP
