#include "core/pipeline.hpp"

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "nn/network.hpp"

namespace mvq::core {

std::vector<nn::Conv2d *>
compressibleConvs(nn::Layer &model, const MvqLayerConfig &cfg,
                  bool skip_first)
{
    std::vector<nn::Conv2d *> out;
    bool first = true;
    for (nn::Conv2d *conv : nn::convLayers(model)) {
        const bool is_first = first;
        first = false;
        if (is_first && skip_first)
            continue;
        const Shape &ws = conv->weight().value.shape();
        // Must be groupable with the configured d.
        switch (cfg.grouping) {
          case Grouping::KernelWise:
            if (ws.dim(2) * ws.dim(3) != cfg.d)
                continue;
            break;
          case Grouping::OutputChannelWise:
            if (ws.dim(0) % cfg.d != 0)
                continue;
            break;
          case Grouping::InputChannelWise:
            if (ws.dim(1) % cfg.d != 0)
                continue;
            break;
        }
        // Need enough subvectors for the codebook to be meaningful.
        if (ws.numel() / cfg.d < 2)
            continue;
        out.push_back(conv);
    }
    return out;
}

CompressedModel
clusterLayers(const std::vector<nn::Conv2d *> &targets,
              const MvqLayerConfig &cfg, const ClusterOptions &opts)
{
    fatalIf(targets.empty(), "no layers to cluster");
    CompressedModel cm;
    cm.dense_reconstruct = !opts.sparse_reconstruct;

    KmeansConfig km = opts.kmeans;
    km.k = cfg.k;

    // Per-layer grouped weights and masks.
    std::vector<Tensor> grouped;
    std::vector<Mask> masks;
    grouped.reserve(targets.size());
    masks.reserve(targets.size());
    for (nn::Conv2d *conv : targets) {
        Tensor wr = groupWeights(conv->weight().value, cfg.d, cfg.grouping);
        masks.push_back(nmMask(wr, cfg.pattern));
        grouped.push_back(std::move(wr));
    }

    if (!opts.crosslayer) {
        // One codebook per layer.
        for (std::size_t i = 0; i < targets.size(); ++i) {
            Mask cluster_mask = opts.masked_kmeans
                ? masks[i]
                : Mask(masks[i].size(), 1);
            KmeansConfig layer_km = km;
            layer_km.seed = km.seed + i;
            KmeansResult res =
                maskedKmeans(grouped[i], cluster_mask, layer_km);

            Codebook cb;
            cb.codewords = res.codebook;
            if (cfg.codebook_bits > 0)
                quantizeCodebook(cb, cfg.codebook_bits);
            cm.codebooks.push_back(std::move(cb));

            CompressedLayer layer = makeCompressedLayer(
                targets[i]->name(), targets[i]->weight().value.shape(),
                cfg, masks[i], res, static_cast<int>(i));
            layer.dense_flops = targets[i]->flops();
            cm.layers.push_back(std::move(layer));
        }
        return cm;
    }

    // Cross-layer: one codebook over the concatenation of all layers.
    std::int64_t total_ng = 0;
    for (const auto &wr : grouped)
        total_ng += wr.dim(0);
    Tensor all(Shape({total_ng, cfg.d}));
    Mask all_mask(static_cast<std::size_t>(total_ng * cfg.d), 1);
    std::int64_t row = 0;
    for (std::size_t i = 0; i < grouped.size(); ++i) {
        const Tensor &wr = grouped[i];
        for (std::int64_t j = 0; j < wr.dim(0); ++j, ++row) {
            for (std::int64_t t = 0; t < cfg.d; ++t) {
                all.at(row, t) = wr.at(j, t);
                if (opts.masked_kmeans) {
                    all_mask[static_cast<std::size_t>(row * cfg.d + t)] =
                        masks[i][static_cast<std::size_t>(j * cfg.d + t)];
                }
            }
        }
    }

    KmeansResult res = maskedKmeans(all, all_mask, km);
    Codebook cb;
    cb.codewords = res.codebook;
    if (cfg.codebook_bits > 0)
        quantizeCodebook(cb, cfg.codebook_bits);
    cm.codebooks.push_back(std::move(cb));

    row = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::int64_t ng = grouped[i].dim(0);
        KmeansResult slice;
        slice.codebook = cm.codebooks[0].codewords;
        slice.assignments.assign(
            res.assignments.begin() + row,
            res.assignments.begin() + row + ng);
        row += ng;

        CompressedLayer layer = makeCompressedLayer(
            targets[i]->name(), targets[i]->weight().value.shape(), cfg,
            masks[i], slice, 0);
        layer.dense_flops = targets[i]->flops();
        cm.layers.push_back(std::move(layer));
    }
    return cm;
}

SseReport
computeSse(const CompressedModel &cm, const std::vector<Tensor> &reference)
{
    fatalIf(reference.size() != cm.layers.size(),
            "reference layer count mismatch");
    SseReport report;
    for (std::size_t i = 0; i < cm.layers.size(); ++i) {
        const auto &layer = cm.layers[i];
        const Tensor recon = cm.reconstructLayer(i);
        fatalIf(recon.shape() != reference[i].shape(),
                "reference shape mismatch at layer ", layer.name);
        const Mask mask = layer.decodeMask();
        Tensor ref_wr = groupWeights(reference[i], layer.cfg.d,
                                     layer.cfg.grouping);
        Tensor rec_wr = groupWeights(recon, layer.cfg.d,
                                     layer.cfg.grouping);
        for (std::int64_t idx = 0; idx < ref_wr.numel(); ++idx) {
            const double diff = static_cast<double>(ref_wr[idx])
                - static_cast<double>(rec_wr[idx]);
            report.total_sse += diff * diff;
            if (mask[static_cast<std::size_t>(idx)])
                report.masked_sse += diff * diff;
        }
    }
    return report;
}

PipelineResult
mvqCompressClassifier(nn::Layer &model,
                      const nn::ClassificationDataset &data,
                      const PipelineConfig &cfg)
{
    PipelineResult result;
    inform("mvq pipeline: parallel runtime with ", numThreads(),
           " threads");
    result.acc_dense = nn::evalClassifier(model, data, data.testSet());

    // Step 1: grouping + N:M pruning + SR-STE sparse fine-tuning.
    auto targets = compressibleConvs(model, cfg.layer,
                                     cfg.skip_first_conv);
    fatalIf(targets.empty(), "model has no compressible conv layers");
    SrSteConfig sparse = cfg.sparse;
    sparse.pattern = cfg.layer.pattern;
    sparse.d = cfg.layer.d;
    sparse.grouping = cfg.layer.grouping;
    result.acc_sparse = srSteTrain(model, targets, data, sparse);

    // Probe with batch 1 right before clustering so the per-layer
    // flops() snapshots (captured into CompressedLayer::dense_flops)
    // use the same batch size as flops_dense.
    std::vector<int> probe{0};
    Tensor probe_img = data.batchImages(data.trainSet(), probe);
    model.forward(probe_img, /*train=*/false);
    result.flops_dense = nn::networkFlops(model);

    // Step 2: masked k-means clustering.
    ClusterOptions opts;
    opts.masked_kmeans = true;
    opts.sparse_reconstruct = true;
    opts.crosslayer = cfg.crosslayer;
    opts.kmeans = cfg.kmeans;
    // Step 3 (codebook quantization) happens inside clusterLayers via
    // cfg.layer.codebook_bits.
    std::vector<Tensor> reference;
    for (nn::Conv2d *conv : targets)
        reference.push_back(conv->weight().value);
    result.compressed = clusterLayers(targets, cfg.layer, opts);

    const SseReport sse = computeSse(result.compressed, reference);
    result.total_sse = sse.total_sse;
    result.masked_sse = sse.masked_sse;

    result.compressed.applyTo(model);
    result.acc_clustered = nn::evalClassifier(model, data, data.testSet());

    // Step 4: codebook fine-tuning with masked gradients.
    result.acc_final = finetuneCompressedClassifier(
        result.compressed, model, data, cfg.finetune);

    result.compression_ratio = result.compressed.compressionRatio();
    // Uncompressed layers keep dense cost; compressed layers run sparse.
    result.flops_compressed = result.flops_dense
        - result.compressed.denseFlops()
        + result.compressed.compressedFlops();
    return result;
}

} // namespace mvq::core
