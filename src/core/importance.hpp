/**
 * @file
 * Importance-split utilities for the paper's Table 1 motivation study:
 * mark the top-n magnitude weights of every group of m consecutive
 * elements as "important", then replace either the important (case 1) or
 * the unimportant (case 2) weights with their vector-quantized values.
 */

#ifndef MVQ_CORE_IMPORTANCE_HPP
#define MVQ_CORE_IMPORTANCE_HPP

#include "core/nm_pruning.hpp"

namespace mvq::core {

/**
 * Importance mask: 1 for the top-n magnitude weights in each group of m
 * consecutive elements (the paper uses top-2 of 8).
 */
Mask importanceMask(const Tensor &wr, int top_n, int group);

/**
 * Blend the original and vector-quantized matrices: positions where the
 * mask matches `replace_marked` take the quantized value, the rest keep
 * the original.
 *
 * @param replace_marked true = replace the marked (important) weights
 *                       (case 1); false = replace the unmarked (case 2).
 */
Tensor mixReplace(const Tensor &original, const Tensor &quantized,
                  const Mask &marked, bool replace_marked);

} // namespace mvq::core

#endif // MVQ_CORE_IMPORTANCE_HPP
