#include "core/masked_kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/simd_dispatch.hpp"

namespace mvq::core {

namespace {

/** Pick initial codewords: k distinct random rows (or k-means++). */
Tensor
initCodebook(const Tensor &wr, const KmeansConfig &cfg, Rng &rng)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    const std::int64_t k = std::min<std::int64_t>(cfg.k, ng);
    Tensor cb(Shape({k, d}));

    if (!cfg.kmeanspp_init) {
        // Random distinct rows (paper's procedure, step 1).
        std::vector<std::int64_t> order(static_cast<std::size_t>(ng));
        for (std::int64_t i = 0; i < ng; ++i)
            order[static_cast<std::size_t>(i)] = i;
        rng.shuffle(order);
        for (std::int64_t i = 0; i < k; ++i) {
            const std::int64_t row = order[static_cast<std::size_t>(i)];
            for (std::int64_t t = 0; t < d; ++t)
                cb.at(i, t) = wr.at(row, t);
        }
        return cb;
    }

    // k-means++ seeding: subsequent centers drawn proportional to the
    // squared distance to the nearest existing center.
    std::vector<double> dist2(static_cast<std::size_t>(ng),
                              std::numeric_limits<double>::max());
    std::int64_t first = static_cast<std::int64_t>(rng.index(
        static_cast<std::size_t>(ng)));
    for (std::int64_t t = 0; t < d; ++t)
        cb.at(0, t) = wr.at(first, t);
    for (std::int64_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::int64_t j = 0; j < ng; ++j) {
            double s = 0.0;
            for (std::int64_t t = 0; t < d; ++t) {
                const double diff = wr.at(j, t) - cb.at(c - 1, t);
                s += diff * diff;
            }
            auto &dj = dist2[static_cast<std::size_t>(j)];
            dj = std::min(dj, s);
            total += dj;
        }
        double r = rng.uniform(0.0f, 1.0f) * total;
        std::int64_t pick = ng - 1;
        for (std::int64_t j = 0; j < ng; ++j) {
            r -= dist2[static_cast<std::size_t>(j)];
            if (r <= 0.0) {
                pick = j;
                break;
            }
        }
        for (std::int64_t t = 0; t < d; ++t)
            cb.at(c, t) = wr.at(pick, t);
    }
    return cb;
}

} // namespace

namespace {

/** Grain for per-subvector parallel loops (work per row is only O(k*d)). */
constexpr std::int64_t kRowGrain = 256;

} // namespace

double
maskedSse(const Tensor &wr, const Mask &mask, const Tensor &codebook,
          const std::vector<std::int32_t> &assignments)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    panicIf(static_cast<std::int64_t>(assignments.size()) != ng,
            "assignment count mismatch");
    const float *pw = wr.data();
    const float *pc = codebook.data();
    const std::uint8_t *pm = mask.data();

    // Per-chunk partials reduced in chunk order keep the sum deterministic
    // for any thread count.
    std::vector<double> partial(
        static_cast<std::size_t>(chunkCount(0, ng, kRowGrain)), 0.0);
    parallelForChunks(0, ng, kRowGrain,
                      [&](std::int64_t chunk, std::int64_t jb,
                          std::int64_t je) {
        double total = 0.0;
        for (std::int64_t j = jb; j < je; ++j) {
            const std::int32_t a = assignments[static_cast<std::size_t>(j)];
            const float *wrow = pw + j * d;
            const std::uint8_t *mrow = pm + j * d;
            const float *crow = pc + a * d;
            for (std::int64_t t = 0; t < d; ++t) {
                const double c = mrow[t] ? crow[t] : 0.0;
                const double diff = static_cast<double>(wrow[t]) - c;
                total += diff * diff;
            }
        }
        partial[static_cast<std::size_t>(chunk)] = total;
    });
    double total = 0.0;
    for (const double p : partial)
        total += p;
    return total;
}

std::vector<float>
maskToFloat(const Mask &mask)
{
    std::vector<float> mf(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i)
        mf[i] = mask[i] ? 1.0f : 0.0f;
    return mf;
}

void
maskedPartialSums(
    std::int64_t ng, std::int64_t k, std::int64_t d,
    const std::function<void(std::int64_t, float *, float *)> &row_fn,
    Tensor &sums, Tensor &counts)
{
    // Cap the chunk count at a fixed constant (thread-count independent,
    // so determinism holds) to bound the transient [k, d] partial buffers
    // and the serial fold below for very large ng.
    const std::int64_t grain =
        std::max<std::int64_t>(kRowGrain, (ng + 63) / 64);
    const std::int64_t nchunks = chunkCount(0, ng, grain);
    std::vector<Tensor> part_sums(static_cast<std::size_t>(nchunks));
    std::vector<Tensor> part_counts(static_cast<std::size_t>(nchunks));
    parallelForChunks(0, ng, grain,
                      [&](std::int64_t chunk, std::int64_t jb,
                          std::int64_t je) {
        Tensor csum(Shape({k, d}));
        Tensor ccount(Shape({k, d}));
        for (std::int64_t j = jb; j < je; ++j)
            row_fn(j, csum.data(), ccount.data());
        part_sums[static_cast<std::size_t>(chunk)] = std::move(csum);
        part_counts[static_cast<std::size_t>(chunk)] = std::move(ccount);
    });
    sums = Tensor(Shape({k, d}));
    counts = Tensor(Shape({k, d}));
    for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
        const Tensor &cs = part_sums[static_cast<std::size_t>(chunk)];
        const Tensor &cc = part_counts[static_cast<std::size_t>(chunk)];
        for (std::int64_t i = 0; i < k * d; ++i) {
            sums[i] += cs[i];
            counts[i] += cc[i];
        }
    }
}

std::int64_t
maskedAssign(const Tensor &wr, const std::vector<float> &mask01,
             const Tensor &codebook, std::vector<std::int32_t> &assignments)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    const std::int64_t k = codebook.dim(0);
    panicIf(static_cast<std::int64_t>(mask01.size()) != ng * d,
            "mask size mismatch in assignment");
    panicIf(static_cast<std::int64_t>(assignments.size()) != ng,
            "assignment count mismatch");

    const float *pw = wr.data();
    const float *pc = codebook.data();
    const float *pm = mask01.data();
    std::atomic<std::int64_t> changed{0};

    // Distance kernels come from the runtime SIMD dispatch table; all
    // variants break ties toward the lowest codeword index, and chunking
    // never depends on the thread count, so results stay bit-identical
    // across thread counts within an ISA. Across ISAs, FMA contraction
    // can round distances differently in the last ULP, so a near-exact
    // tie could in principle resolve differently (the cross-ISA parity
    // test pins agreement on fixed-seed data).
    const simd::Kernels &kn = simd::kernels();

    // Vector kernels stride a transposed codebook [d, k] to evaluate a
    // full lane-width of codewords per instruction; building it is O(k*d)
    // once per sweep, amortized over the ng-row scan. Scalar ignores it.
    std::vector<float> cbt(static_cast<std::size_t>(d * k));
    for (std::int64_t i = 0; i < k; ++i)
        for (std::int64_t t = 0; t < d; ++t)
            cbt[static_cast<std::size_t>(t * k + i)] = pc[i * d + t];
    const float *pct = cbt.data();

    parallelFor(0, ng, kRowGrain, [&](std::int64_t jb, std::int64_t je) {
        std::int64_t local_changed = 0;
        std::vector<std::int32_t> idx(static_cast<std::size_t>(d));
        std::vector<float> wkeep(static_cast<std::size_t>(d));
        for (std::int64_t j = jb; j < je; ++j) {
            const float *wrow = pw + j * d;
            const float *mrow = pm + j * d;

            // Compress the row to its kept positions. N:M masks are mostly
            // zeros, so scanning only the kept entries cuts the flops by
            // the keep fraction.
            std::int64_t nk = 0;
            for (std::int64_t t = 0; t < d; ++t) {
                if (mrow[t] != 0.0f) {
                    idx[static_cast<std::size_t>(nk)] =
                        static_cast<std::int32_t>(t);
                    wkeep[static_cast<std::size_t>(nk)] = wrow[t];
                    ++nk;
                }
            }

            const std::int32_t best_i = (nk * kAssignSparseKeepRatio <= d)
                ? kn.assignBestSparse(wkeep.data(), idx.data(), nk, pc,
                                      pct, k, d)
                : kn.assignBestDense(wrow, mrow, pc, pct, k, d);
            auto &slot = assignments[static_cast<std::size_t>(j)];
            if (slot != best_i)
                ++local_changed;
            slot = best_i;
        }
        changed.fetch_add(local_changed, std::memory_order_relaxed);
    });
    return changed.load(std::memory_order_relaxed);
}

KmeansResult
maskedKmeans(const Tensor &wr, const Mask &mask, const KmeansConfig &cfg)
{
    fatalIf(wr.rank() != 2, "maskedKmeans expects [NG, d]");
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * d,
            "mask size mismatch: ", mask.size(), " vs ", ng * d);
    fatalIf(cfg.k < 1, "k must be positive");

    Rng rng(cfg.seed);
    KmeansResult res;
    res.codebook = initCodebook(wr, cfg, rng);
    const std::int64_t k = res.codebook.dim(0);
    res.assignments.assign(static_cast<std::size_t>(ng), 0);

    const std::vector<float> mask01 = maskToFloat(mask);
    const float *pw = wr.data();
    const float *pm = mask01.data();

    for (int iter = 0; iter < cfg.max_iters; ++iter) {
        // --- Masked assignment (Eq. 2) --------------------------------
        // Distance over unpruned positions only. Pruned positions of wr
        // are zero and the mask zeroes the codeword there too, so both
        // contributions vanish.
        const std::int64_t changed =
            maskedAssign(wr, mask01, res.codebook, res.assignments);

        // --- Masked update (Eq. 3/4) -----------------------------------
        // c*_i[t] = sum of assigned unpruned values at position t divided
        // by the count of unpruned contributions at position t.
        Tensor sums;
        Tensor counts;
        maskedPartialSums(
            ng, k, d,
            [&](std::int64_t j, float *ps, float *pn) {
                const std::int32_t a =
                    res.assignments[static_cast<std::size_t>(j)];
                const float *wrow = pw + j * d;
                const float *mrow = pm + j * d;
                float *srow = ps + a * d;
                float *nrow = pn + a * d;
                for (std::int64_t t = 0; t < d; ++t) {
                    srow[t] += mrow[t] * wrow[t];
                    nrow[t] += mrow[t];
                }
            },
            sums, counts);
        for (std::int64_t i = 0; i < k; ++i) {
            bool empty = true;
            for (std::int64_t t = 0; t < d; ++t) {
                if (counts.at(i, t) > 0.0f) {
                    res.codebook.at(i, t) = sums.at(i, t) / counts.at(i, t);
                    empty = false;
                }
                // Positions with zero unpruned contributions keep their
                // previous value; they are never read through the mask.
            }
            if (empty) {
                // Re-seed an empty cluster from a random subvector.
                const std::int64_t row = static_cast<std::int64_t>(
                    rng.index(static_cast<std::size_t>(ng)));
                for (std::int64_t t = 0; t < d; ++t)
                    res.codebook.at(i, t) = wr.at(row, t);
            }
        }

        res.iterations = iter + 1;
        res.sse_history.push_back(
            maskedSse(wr, mask, res.codebook, res.assignments));

        const double change_fraction =
            static_cast<double>(changed) / static_cast<double>(ng);
        if (iter > 0 && change_fraction < cfg.change_threshold)
            break;
    }

    // The last history entry already measured the final state; only
    // compute the SSE here if the loop never ran.
    res.sse = res.sse_history.empty()
        ? maskedSse(wr, mask, res.codebook, res.assignments)
        : res.sse_history.back();
    return res;
}

Tensor
reconstructGrouped(const Tensor &codebook,
                   const std::vector<std::int32_t> &assignments,
                   const Mask &mask)
{
    const std::int64_t ng = static_cast<std::int64_t>(assignments.size());
    const std::int64_t d = codebook.dim(1);
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * d,
            "mask size mismatch in reconstruct");
    Tensor out(Shape({ng, d}));
    const float *pc = codebook.data();
    const std::uint8_t *pm = mask.data();
    float *po = out.data();
    const std::int64_t k = codebook.dim(0);
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t a = assignments[static_cast<std::size_t>(j)];
        fatalIf(a < 0 || a >= k, "assignment out of range");
        const float *crow = pc + a * d;
        const std::uint8_t *mrow = pm + j * d;
        float *orow = po + j * d;
        for (std::int64_t t = 0; t < d; ++t)
            orow[t] = mrow[t] ? crow[t] : 0.0f;
    }
    return out;
}

Tensor
reconstructGroupedDense(const Tensor &codebook,
                        const std::vector<std::int32_t> &assignments)
{
    const std::int64_t ng = static_cast<std::int64_t>(assignments.size());
    const std::int64_t d = codebook.dim(1);
    Tensor out(Shape({ng, d}));
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t a = assignments[static_cast<std::size_t>(j)];
        fatalIf(a < 0 || a >= codebook.dim(0), "assignment out of range");
        for (std::int64_t t = 0; t < d; ++t)
            out.at(j, t) = codebook.at(a, t);
    }
    return out;
}

} // namespace mvq::core
