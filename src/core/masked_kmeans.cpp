#include "core/masked_kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/random.hpp"

namespace mvq::core {

namespace {

/** Pick initial codewords: k distinct random rows (or k-means++). */
Tensor
initCodebook(const Tensor &wr, const KmeansConfig &cfg, Rng &rng)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    const std::int64_t k = std::min<std::int64_t>(cfg.k, ng);
    Tensor cb(Shape({k, d}));

    if (!cfg.kmeanspp_init) {
        // Random distinct rows (paper's procedure, step 1).
        std::vector<std::int64_t> order(static_cast<std::size_t>(ng));
        for (std::int64_t i = 0; i < ng; ++i)
            order[static_cast<std::size_t>(i)] = i;
        rng.shuffle(order);
        for (std::int64_t i = 0; i < k; ++i) {
            const std::int64_t row = order[static_cast<std::size_t>(i)];
            for (std::int64_t t = 0; t < d; ++t)
                cb.at(i, t) = wr.at(row, t);
        }
        return cb;
    }

    // k-means++ seeding: subsequent centers drawn proportional to the
    // squared distance to the nearest existing center.
    std::vector<double> dist2(static_cast<std::size_t>(ng),
                              std::numeric_limits<double>::max());
    std::int64_t first = static_cast<std::int64_t>(rng.index(
        static_cast<std::size_t>(ng)));
    for (std::int64_t t = 0; t < d; ++t)
        cb.at(0, t) = wr.at(first, t);
    for (std::int64_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::int64_t j = 0; j < ng; ++j) {
            double s = 0.0;
            for (std::int64_t t = 0; t < d; ++t) {
                const double diff = wr.at(j, t) - cb.at(c - 1, t);
                s += diff * diff;
            }
            auto &dj = dist2[static_cast<std::size_t>(j)];
            dj = std::min(dj, s);
            total += dj;
        }
        double r = rng.uniform(0.0f, 1.0f) * total;
        std::int64_t pick = ng - 1;
        for (std::int64_t j = 0; j < ng; ++j) {
            r -= dist2[static_cast<std::size_t>(j)];
            if (r <= 0.0) {
                pick = j;
                break;
            }
        }
        for (std::int64_t t = 0; t < d; ++t)
            cb.at(c, t) = wr.at(pick, t);
    }
    return cb;
}

} // namespace

double
maskedSse(const Tensor &wr, const Mask &mask, const Tensor &codebook,
          const std::vector<std::int32_t> &assignments)
{
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    panicIf(static_cast<std::int64_t>(assignments.size()) != ng,
            "assignment count mismatch");
    double total = 0.0;
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t a = assignments[static_cast<std::size_t>(j)];
        for (std::int64_t t = 0; t < d; ++t) {
            const bool keep = mask[static_cast<std::size_t>(j * d + t)] != 0;
            const double w = wr.at(j, t);
            const double c = keep ? codebook.at(a, t) : 0.0;
            const double diff = w - c;
            total += diff * diff;
        }
    }
    return total;
}

KmeansResult
maskedKmeans(const Tensor &wr, const Mask &mask, const KmeansConfig &cfg)
{
    fatalIf(wr.rank() != 2, "maskedKmeans expects [NG, d]");
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * d,
            "mask size mismatch: ", mask.size(), " vs ", ng * d);
    fatalIf(cfg.k < 1, "k must be positive");

    Rng rng(cfg.seed);
    KmeansResult res;
    res.codebook = initCodebook(wr, cfg, rng);
    const std::int64_t k = res.codebook.dim(0);
    res.assignments.assign(static_cast<std::size_t>(ng), 0);

    for (int iter = 0; iter < cfg.max_iters; ++iter) {
        // --- Masked assignment (Eq. 2) --------------------------------
        // Distance over unpruned positions only. Pruned positions of wr
        // are zero and the mask zeroes the codeword there too, so both
        // contributions vanish.
        std::int64_t changed = 0;
        const float *pw = wr.data();
        const float *pc = res.codebook.data();
        for (std::int64_t j = 0; j < ng; ++j) {
            const float *wrow = pw + j * d;
            const std::uint8_t *mrow = mask.data() + j * d;
            float best = std::numeric_limits<float>::max();
            std::int32_t best_i = 0;
            for (std::int64_t i = 0; i < k; ++i) {
                const float *crow = pc + i * d;
                float s = 0.0f;
                for (std::int64_t t = 0; t < d; ++t) {
                    if (mrow[t]) {
                        const float diff = wrow[t] - crow[t];
                        s += diff * diff;
                    }
                }
                if (s < best) {
                    best = s;
                    best_i = static_cast<std::int32_t>(i);
                }
            }
            if (res.assignments[static_cast<std::size_t>(j)] != best_i)
                ++changed;
            res.assignments[static_cast<std::size_t>(j)] = best_i;
        }

        // --- Masked update (Eq. 3/4) -----------------------------------
        // c*_i[t] = sum of assigned unpruned values at position t divided
        // by the count of unpruned contributions at position t.
        Tensor sums(Shape({k, d}));
        Tensor counts(Shape({k, d}));
        for (std::int64_t j = 0; j < ng; ++j) {
            const std::int32_t a = res.assignments[static_cast<std::size_t>(j)];
            for (std::int64_t t = 0; t < d; ++t) {
                if (mask[static_cast<std::size_t>(j * d + t)]) {
                    sums.at(a, t) += wr.at(j, t);
                    counts.at(a, t) += 1.0f;
                }
            }
        }
        for (std::int64_t i = 0; i < k; ++i) {
            bool empty = true;
            for (std::int64_t t = 0; t < d; ++t) {
                if (counts.at(i, t) > 0.0f) {
                    res.codebook.at(i, t) = sums.at(i, t) / counts.at(i, t);
                    empty = false;
                }
                // Positions with zero unpruned contributions keep their
                // previous value; they are never read through the mask.
            }
            if (empty) {
                // Re-seed an empty cluster from a random subvector.
                const std::int64_t row = static_cast<std::int64_t>(
                    rng.index(static_cast<std::size_t>(ng)));
                for (std::int64_t t = 0; t < d; ++t)
                    res.codebook.at(i, t) = wr.at(row, t);
            }
        }

        res.iterations = iter + 1;
        res.sse_history.push_back(
            maskedSse(wr, mask, res.codebook, res.assignments));

        const double change_fraction =
            static_cast<double>(changed) / static_cast<double>(ng);
        if (iter > 0 && change_fraction < cfg.change_threshold)
            break;
    }

    res.sse = maskedSse(wr, mask, res.codebook, res.assignments);
    return res;
}

Tensor
reconstructGrouped(const Tensor &codebook,
                   const std::vector<std::int32_t> &assignments,
                   const Mask &mask)
{
    const std::int64_t ng = static_cast<std::int64_t>(assignments.size());
    const std::int64_t d = codebook.dim(1);
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * d,
            "mask size mismatch in reconstruct");
    Tensor out(Shape({ng, d}));
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t a = assignments[static_cast<std::size_t>(j)];
        fatalIf(a < 0 || a >= codebook.dim(0), "assignment out of range");
        for (std::int64_t t = 0; t < d; ++t) {
            out.at(j, t) = mask[static_cast<std::size_t>(j * d + t)]
                ? codebook.at(a, t) : 0.0f;
        }
    }
    return out;
}

Tensor
reconstructGroupedDense(const Tensor &codebook,
                        const std::vector<std::int32_t> &assignments)
{
    const std::int64_t ng = static_cast<std::int64_t>(assignments.size());
    const std::int64_t d = codebook.dim(1);
    Tensor out(Shape({ng, d}));
    for (std::int64_t j = 0; j < ng; ++j) {
        const std::int32_t a = assignments[static_cast<std::size_t>(j)];
        fatalIf(a < 0 || a >= codebook.dim(0), "assignment out of range");
        for (std::int64_t t = 0; t < d; ++t)
            out.at(j, t) = codebook.at(a, t);
    }
    return out;
}

} // namespace mvq::core
