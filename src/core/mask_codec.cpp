#include "core/mask_codec.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::core {

MaskCodec::MaskCodec(const NmPattern &pattern) : pattern_(pattern)
{
    fatalIf(pattern_.m <= 0 || pattern_.n <= 0 || pattern_.n > pattern_.m,
            "bad N:M pattern for codec");
    fatalIf(pattern_.m > 24, "mask codec supports M <= 24");
    count_ = binomial(pattern_.m, pattern_.n);
    bits_ = log2Ceil(count_);

    lut_.resize(count_);
    for (std::uint64_t code = 0; code < count_; ++code) {
        const std::vector<int> members =
            combinationUnrank(pattern_.m, pattern_.n, code);
        std::uint32_t bits = 0;
        for (int pos : members)
            bits |= (1u << pos);
        lut_[code] = bits;
    }
}

std::uint32_t
MaskCodec::encodeGroup(const std::uint8_t *group_bits) const
{
    std::vector<int> members;
    members.reserve(static_cast<std::size_t>(pattern_.n));
    for (int i = 0; i < pattern_.m; ++i) {
        if (group_bits[i])
            members.push_back(i);
    }
    fatalIf(static_cast<int>(members.size()) != pattern_.n,
            "mask group has ", members.size(), " set bits, expected ",
            pattern_.n);
    return static_cast<std::uint32_t>(
        combinationRank(pattern_.m, members));
}

std::vector<std::uint8_t>
MaskCodec::decodeGroup(std::uint32_t code) const
{
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(pattern_.m), 0);
    decodeGroupInto(code, bits.data());
    return bits;
}

void
MaskCodec::decodeGroupInto(std::uint32_t code, std::uint8_t *out) const
{
    fatalIf(code >= count_, "mask code ", code, " out of range");
    const std::uint32_t word = lut_[code];
    for (int i = 0; i < pattern_.m; ++i)
        out[i] = (word >> i) & 1u;
}

void
MaskCodec::decodeInto(const std::uint32_t *codes, std::int64_t n_codes,
                      std::uint8_t *out) const
{
    for (std::int64_t g = 0; g < n_codes; ++g)
        decodeGroupInto(codes[g], out + g * pattern_.m);
}

std::vector<std::uint32_t>
MaskCodec::encodeSubvector(const std::uint8_t *mask_bits,
                           std::int64_t d) const
{
    fatalIf(d % pattern_.m != 0, "subvector length not a multiple of M");
    std::vector<std::uint32_t> codes;
    codes.reserve(static_cast<std::size_t>(d / pattern_.m));
    for (std::int64_t g0 = 0; g0 < d; g0 += pattern_.m)
        codes.push_back(encodeGroup(mask_bits + g0));
    return codes;
}

std::vector<std::uint8_t>
MaskCodec::decodeSubvector(const std::vector<std::uint32_t> &codes) const
{
    std::vector<std::uint8_t> bits;
    bits.reserve(codes.size() * static_cast<std::size_t>(pattern_.m));
    for (std::uint32_t code : codes) {
        const auto group = decodeGroup(code);
        bits.insert(bits.end(), group.begin(), group.end());
    }
    return bits;
}

} // namespace mvq::core
