/**
 * @file
 * N:M structured pruning inside subvectors (paper Section 4.3). For each
 * group of M consecutive elements, the N largest-magnitude weights are
 * kept and the other M-N are zeroed. The per-subvector bitmask has exactly
 * N set bits per M-group, which is what the mask codec and the sparse tile
 * exploit.
 */

#ifndef MVQ_CORE_NM_PRUNING_HPP
#define MVQ_CORE_NM_PRUNING_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvq::core {

/** Keep N of every M consecutive weights. */
struct NmPattern
{
    int n = 2;
    int m = 4;

    /** Fraction of weights that survive pruning. */
    double keepFraction() const
    {
        return static_cast<double>(n) / static_cast<double>(m);
    }

    /** Fraction of weights removed (the paper's "sparsity"). */
    double sparsity() const { return 1.0 - keepFraction(); }

    std::string
    str() const
    {
        return std::to_string(n) + ":" + std::to_string(m);
    }
};

/** Bitmask over a grouped weight matrix; 1 = kept, 0 = pruned. */
using Mask = std::vector<std::uint8_t>;

/**
 * Compute the magnitude-based N:M mask of a grouped weight matrix.
 *
 * @param wr      Grouped weights [NG, d]; d must be a multiple of M.
 * @param pattern Keep pattern.
 * @return NG*d bytes, row-major, 1 for kept weights.
 */
Mask nmMask(const Tensor &wr, const NmPattern &pattern);

/** Zero the pruned elements of wr in place. */
void applyMask(Tensor &wr, const Mask &mask);

/**
 * Random N(0,1) [rows, cols] matrix with the N:M mask applied along each
 * row's consecutive M-groups (cols must be a multiple of M). Tests and
 * benches use it to build operands with the compressed-layer weight
 * structure without running the full pipeline.
 */
Tensor randomNmMatrix(Rng &rng, std::int64_t rows, std::int64_t cols,
                      const NmPattern &pattern);

/** Fraction of zero bits in a mask. */
double maskSparsity(const Mask &mask);

/** Verify a mask has exactly N set bits per M-group (panics otherwise). */
void checkNmInvariant(const Mask &mask, std::int64_t d,
                      const NmPattern &pattern);

} // namespace mvq::core

#endif // MVQ_CORE_NM_PRUNING_HPP
