#include "core/importance.hpp"

#include "common/logging.hpp"

namespace mvq::core {

Mask
importanceMask(const Tensor &wr, int top_n, int group)
{
    // Identical selection rule to N:M pruning: keep = important.
    return nmMask(wr, NmPattern{top_n, group});
}

Tensor
mixReplace(const Tensor &original, const Tensor &quantized,
           const Mask &marked, bool replace_marked)
{
    fatalIf(original.shape() != quantized.shape(),
            "mixReplace shape mismatch");
    fatalIf(static_cast<std::int64_t>(marked.size()) != original.numel(),
            "mixReplace mask size mismatch");
    Tensor out(original.shape());
    for (std::int64_t i = 0; i < original.numel(); ++i) {
        const bool is_marked = marked[static_cast<std::size_t>(i)] != 0;
        out[i] = (is_marked == replace_marked) ? quantized[i] : original[i];
    }
    return out;
}

} // namespace mvq::core
