#include "core/serialize.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace mvq::core {

void
BitWriter::put(std::uint64_t value, int bits)
{
    panicIf(bits < 0 || bits > 57, "bitfield width out of range");
    for (int i = 0; i < bits; ++i) {
        if (bit_pos == 0)
            bytes.push_back(0);
        if ((value >> i) & 1ull)
            bytes.back() |= static_cast<std::uint8_t>(1u << bit_pos);
        bit_pos = (bit_pos + 1) % 8;
    }
    bit_count += bits;
}

std::vector<std::uint8_t>
BitWriter::finish()
{
    bit_pos = 0;
    return std::move(bytes);
}

std::uint64_t
BitReader::get(int bits)
{
    std::uint64_t value = 0;
    for (int i = 0; i < bits; ++i) {
        const std::int64_t byte = pos / 8;
        fatalIf(byte >= static_cast<std::int64_t>(bytes.size()),
                "bit stream overrun");
        if ((bytes[static_cast<std::size_t>(byte)] >> (pos % 8)) & 1u)
            value |= (1ull << i);
        ++pos;
    }
    return value;
}

std::vector<std::uint8_t>
serializeModel(const CompressedModel &model)
{
    BitWriter w;
    w.put(kStreamMagic, 32);
    w.put(model.dense_reconstruct ? 1 : 0, 8);
    w.put(model.codebooks.size(), 16);
    w.put(model.layers.size(), 16);

    // Codebooks: k, d, qbits, scale (raw fp32 bits), then codewords as
    // signed levels at qbits (or raw fp32 when unquantized).
    for (const auto &cb : model.codebooks) {
        w.put(static_cast<std::uint64_t>(cb.k()), 24);
        w.put(static_cast<std::uint64_t>(cb.d()), 16);
        w.put(static_cast<std::uint64_t>(cb.qbits), 8);
        std::uint32_t scale_bits = 0;
        static_assert(sizeof(float) == 4);
        std::memcpy(&scale_bits, &cb.scale, 4);
        w.put(scale_bits, 32);
        for (std::int64_t i = 0; i < cb.codewords.numel(); ++i) {
            if (cb.qbits > 0) {
                const std::int64_t level = static_cast<std::int64_t>(
                    std::llround(cb.codewords[i] / cb.scale));
                w.put(static_cast<std::uint64_t>(
                          level + (1ll << (cb.qbits - 1))),
                      cb.qbits);
            } else {
                std::uint32_t vb = 0;
                const float v = cb.codewords[i];
                std::memcpy(&vb, &v, 4);
                w.put(vb, 32);
            }
        }
    }

    for (const auto &layer : model.layers) {
        w.put(layer.name.size(), 16);
        for (char c : layer.name)
            w.put(static_cast<std::uint8_t>(c), 8);
        for (int i = 0; i < 4; ++i) {
            w.put(static_cast<std::uint64_t>(
                      i < layer.weight_shape.rank()
                          ? layer.weight_shape.dim(i) : 1),
                  24);
        }
        w.put(static_cast<std::uint64_t>(layer.cfg.k), 24);
        w.put(static_cast<std::uint64_t>(layer.cfg.d), 16);
        w.put(static_cast<std::uint64_t>(layer.cfg.pattern.n), 8);
        w.put(static_cast<std::uint64_t>(layer.cfg.pattern.m), 8);
        w.put(static_cast<std::uint64_t>(layer.cfg.grouping), 8);
        w.put(static_cast<std::uint64_t>(layer.cfg.codebook_bits), 8);
        w.put(static_cast<std::uint64_t>(layer.codebook_id), 16);
        w.put(static_cast<std::uint64_t>(layer.dense_flops), 48);
        w.put(static_cast<std::uint64_t>(layer.ng()), 32);

        // The payload at exactly the accounted widths.
        const int index_bits = log2Ceil(
            static_cast<std::uint64_t>(layer.cfg.k));
        const MaskCodec codec(layer.cfg.pattern);
        for (std::int32_t a : layer.assignments)
            w.put(static_cast<std::uint64_t>(a),
                  std::max(index_bits, 1));
        for (std::uint32_t code : layer.mask_codes)
            w.put(code, std::max(codec.bitsPerGroup(), 1));
    }
    return w.finish();
}

CompressedModel
deserializeModel(const std::vector<std::uint8_t> &data)
{
    BitReader r(data);
    fatalIf(r.get(32) != kStreamMagic, "not an MVQ model file");
    CompressedModel model;
    model.dense_reconstruct = r.get(8) != 0;
    const std::uint64_t n_books = r.get(16);
    const std::uint64_t n_layers = r.get(16);

    for (std::uint64_t b = 0; b < n_books; ++b) {
        Codebook cb;
        const auto k = static_cast<std::int64_t>(r.get(24));
        const auto d = static_cast<std::int64_t>(r.get(16));
        cb.qbits = static_cast<int>(r.get(8));
        const std::uint32_t scale_bits =
            static_cast<std::uint32_t>(r.get(32));
        std::memcpy(&cb.scale, &scale_bits, 4);
        // Size fields are untrusted: bound the codeword allocation by the
        // bits actually left in the stream before resizing, so a corrupt
        // header fails with a clear message instead of a giant alloc.
        fatalIf(k <= 0 || d <= 0, "corrupt model stream: codebook ", b,
                " has invalid dimensions k=", k, " d=", d);
        fatalIf(cb.qbits < 0 || cb.qbits > 32,
                "corrupt model stream: codebook ", b, " has invalid ",
                "qbits ", cb.qbits);
        fatalIf(k * d * (cb.qbits > 0 ? cb.qbits : 32)
                    > r.remainingBits(),
                "corrupt model stream: codebook ", b, " codewords (", k,
                " x ", d, ") exceed the remaining stream");
        cb.codewords = Tensor(Shape({k, d}));
        for (std::int64_t i = 0; i < k * d; ++i) {
            if (cb.qbits > 0) {
                const std::int64_t level =
                    static_cast<std::int64_t>(r.get(cb.qbits))
                    - (1ll << (cb.qbits - 1));
                cb.codewords[i] =
                    static_cast<float>(level) * cb.scale;
            } else {
                const std::uint32_t vb =
                    static_cast<std::uint32_t>(r.get(32));
                float v = 0.0f;
                std::memcpy(&v, &vb, 4);
                cb.codewords[i] = v;
            }
        }
        model.codebooks.push_back(std::move(cb));
    }

    for (std::uint64_t l = 0; l < n_layers; ++l) {
        CompressedLayer layer;
        const std::uint64_t name_len = r.get(16);
        for (std::uint64_t i = 0; i < name_len; ++i)
            layer.name.push_back(static_cast<char>(r.get(8)));
        std::int64_t dims[4];
        for (auto &dim : dims)
            dim = static_cast<std::int64_t>(r.get(24));
        layer.weight_shape = Shape({dims[0], dims[1], dims[2], dims[3]});
        layer.cfg.k = static_cast<std::int64_t>(r.get(24));
        layer.cfg.d = static_cast<std::int64_t>(r.get(16));
        layer.cfg.pattern.n = static_cast<int>(r.get(8));
        layer.cfg.pattern.m = static_cast<int>(r.get(8));
        layer.cfg.grouping =
            groupingFromInt(static_cast<int>(r.get(8)));
        layer.cfg.codebook_bits = static_cast<int>(r.get(8));
        layer.codebook_id = static_cast<int>(r.get(16));
        layer.dense_flops = static_cast<std::int64_t>(r.get(48));
        const auto ng = static_cast<std::int64_t>(r.get(32));

        fatalIf(layer.cfg.k <= 0, "corrupt model stream: layer ", l,
                " has invalid k ", layer.cfg.k);
        fatalIf(layer.cfg.pattern.m <= 0
                    || layer.cfg.pattern.n <= 0
                    || layer.cfg.pattern.n > layer.cfg.pattern.m,
                "corrupt model stream: layer ", l, " has invalid N:M ",
                "pattern ", layer.cfg.pattern.n, ":",
                layer.cfg.pattern.m);
        fatalIf(layer.cfg.d <= 0
                    || layer.cfg.d % layer.cfg.pattern.m != 0,
                "corrupt model stream: layer ", l, " has d=",
                layer.cfg.d, " not divisible by M=",
                layer.cfg.pattern.m);
        fatalIf(layer.codebook_id < 0
                    || static_cast<std::uint64_t>(layer.codebook_id)
                        >= n_books,
                "corrupt model stream: layer ", l, " references ",
                "codebook ", layer.codebook_id, " of ", n_books);

        const int index_bits = log2Ceil(
            static_cast<std::uint64_t>(layer.cfg.k));
        const MaskCodec codec(layer.cfg.pattern);
        fatalIf(ng * std::max(index_bits, 1) > r.remainingBits(),
                "corrupt model stream: layer ", l, " assignments (",
                ng, ") exceed the remaining stream");
        layer.assignments.resize(static_cast<std::size_t>(ng));
        for (auto &a : layer.assignments) {
            a = static_cast<std::int32_t>(
                r.get(std::max(index_bits, 1)));
        }
        const std::int64_t groups = ng * (layer.cfg.d
                                          / layer.cfg.pattern.m);
        fatalIf(groups * std::max(codec.bitsPerGroup(), 1)
                    > r.remainingBits(),
                "corrupt model stream: layer ", l, " mask codes (",
                groups, ") exceed the remaining stream");
        layer.mask_codes.resize(static_cast<std::size_t>(groups));
        for (auto &code : layer.mask_codes) {
            code = static_cast<std::uint32_t>(
                r.get(std::max(codec.bitsPerGroup(), 1)));
        }
        model.layers.push_back(std::move(layer));
    }
    return model;
}

} // namespace mvq::core
