/**
 * @file
 * The end-to-end MVQ compression pipeline (paper Fig. 2):
 *   1. group weights + N:M prune + sparse fine-tune (SR-STE);
 *   2. masked k-means clustering (layerwise or cross-layer);
 *   3. symmetric 8-bit codebook quantization;
 *   4. codebook fine-tuning with masked gradients.
 *
 * The clustering stage is also exposed separately with switches for
 * masked/unmasked clustering and sparse/dense reconstruction so the
 * ablation cases A-D (paper Fig. 12) and the VQ baselines can reuse it.
 */

#ifndef MVQ_CORE_PIPELINE_HPP
#define MVQ_CORE_PIPELINE_HPP

#include "core/compressed_layer.hpp"
#include "core/finetune.hpp"
#include "core/sparse_train.hpp"

namespace mvq::core {

/** Clustering-stage options shared by MVQ and the ablation cases. */
struct ClusterOptions
{
    bool masked_kmeans = true;     //!< false = common k-means (cases A-C)
    bool sparse_reconstruct = true; //!< false = dense reconstruct (A, B)
    bool crosslayer = false;        //!< one codebook for all layers
    KmeansConfig kmeans;            //!< k is taken from MvqLayerConfig
};

/**
 * Cluster a set of conv layers into a CompressedModel.
 *
 * Masks are recomputed from the layers' current weights with the
 * magnitude rule, so the caller must have pruned the weights already
 * (or use pattern 1:1 for dense clustering).
 */
CompressedModel clusterLayers(const std::vector<nn::Conv2d *> &targets,
                              const MvqLayerConfig &cfg,
                              const ClusterOptions &opts);

/** Full-pipeline options. */
struct PipelineConfig
{
    MvqLayerConfig layer;
    bool crosslayer = false;
    bool skip_first_conv = true; //!< keep the stem conv uncompressed
    SrSteConfig sparse;          //!< pattern/d/grouping copied from layer
    KmeansConfig kmeans;         //!< k copied from layer
    FinetuneConfig finetune;
};

/** Metrics collected along the pipeline. */
struct PipelineResult
{
    CompressedModel compressed;
    double acc_dense = 0.0;     //!< test accuracy before compression
    double acc_sparse = 0.0;    //!< after N:M pruning + sparse training
    double acc_clustered = 0.0; //!< after clustering, before fine-tune
    double acc_final = 0.0;     //!< after codebook fine-tuning
    double total_sse = 0.0;     //!< clustering SSE over all weights
    double masked_sse = 0.0;    //!< clustering SSE over kept weights
    std::int64_t flops_dense = 0;
    std::int64_t flops_compressed = 0;
    double compression_ratio = 0.0;
};

/**
 * Run the full MVQ pipeline on a classifier. The model is modified in
 * place (its conv weights end up reconstructed from the codebooks).
 */
PipelineResult mvqCompressClassifier(nn::Layer &model,
                                     const nn::ClassificationDataset &data,
                                     const PipelineConfig &cfg);

/**
 * Conv layers eligible for compression: all convs, optionally skipping
 * the first (stem) conv, and always skipping layers whose grouped
 * dimension is not divisible by d (e.g. depthwise layers too small to
 * group).
 */
std::vector<nn::Conv2d *> compressibleConvs(nn::Layer &model,
                                            const MvqLayerConfig &cfg,
                                            bool skip_first);

/** Total/masked clustering SSE of a compressed model vs reference weights
 *  (the weights the targets held when clustering ran). */
struct SseReport
{
    double total_sse = 0.0;  //!< over all weight positions
    double masked_sse = 0.0; //!< over kept (unpruned) positions only
};

/**
 * Compare reconstructed weights against reference kernels.
 *
 * @param reference Per-layer kernels, in the order of cm.layers.
 */
SseReport computeSse(const CompressedModel &cm,
                     const std::vector<Tensor> &reference);

} // namespace mvq::core

#endif // MVQ_CORE_PIPELINE_HPP
