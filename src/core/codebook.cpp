#include "core/codebook.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mvq::core {

float
quantizeValue(float v, float scale, int qbits)
{
    const float qmax = static_cast<float>((1 << (qbits - 1)) - 1);
    const float qmin = -static_cast<float>(1 << (qbits - 1));
    float q = std::round(v / scale);
    q = std::min(std::max(q, qmin), qmax);
    return q * scale;
}

namespace {

double
quantMse(const Tensor &cw, float scale, int qbits)
{
    double err = 0.0;
    for (std::int64_t i = 0; i < cw.numel(); ++i) {
        const double d = static_cast<double>(cw[i])
            - static_cast<double>(quantizeValue(cw[i], scale, qbits));
        err += d * d;
    }
    return err;
}

} // namespace

float
quantizeCodebook(Codebook &cb, int qbits)
{
    fatalIf(qbits < 2 || qbits > 16, "unsupported codebook bit-width ",
            qbits);
    const float absmax = cb.codewords.absMax();
    if (absmax == 0.0f) {
        cb.scale = 1.0f;
        cb.qbits = qbits;
        return cb.scale;
    }

    const float qmax = static_cast<float>((1 << (qbits - 1)) - 1);
    const float base = absmax / qmax;

    // Geometric grid around the absmax-derived scale; the MSE in the scale
    // is piecewise-smooth and unimodal in practice, a fine grid suffices.
    float best_scale = base;
    double best_err = quantMse(cb.codewords, base, qbits);
    for (int i = 1; i <= 40; ++i) {
        const float s = base * (1.0f - 0.02f * static_cast<float>(i));
        if (s <= 0.0f)
            break;
        const double err = quantMse(cb.codewords, s, qbits);
        if (err < best_err) {
            best_err = err;
            best_scale = s;
        }
    }

    cb.scale = best_scale;
    cb.qbits = qbits;
    requantizeCodebook(cb);
    return cb.scale;
}

void
requantizeCodebook(Codebook &cb)
{
    if (cb.qbits <= 0)
        return;
    panicIf(cb.scale <= 0.0f, "requantize with non-positive scale");
    for (std::int64_t i = 0; i < cb.codewords.numel(); ++i)
        cb.codewords[i] = quantizeValue(cb.codewords[i], cb.scale, cb.qbits);
}

} // namespace mvq::core
