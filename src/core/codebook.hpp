/**
 * @file
 * Codebook container plus symmetric fixed-point quantization (paper
 * Section 4.5, Eq. 5). One scale is shared per codebook; the scale is
 * fitted by minimizing quantization MSE over a search grid, standing in
 * for the LSQ-learned step size of the paper.
 */

#ifndef MVQ_CORE_CODEBOOK_HPP
#define MVQ_CORE_CODEBOOK_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvq::core {

/** A set of k codewords of length d, optionally quantized. */
struct Codebook
{
    Tensor codewords;  //!< [k, d], always the dequantized (usable) values
    float scale = 0.0f; //!< quantization step; 0 when unquantized
    int qbits = 0;      //!< quantization bit-width; 0 when unquantized

    std::int64_t k() const { return codewords.dim(0); }
    std::int64_t d() const { return codewords.dim(1); }

    /** Storage cost b_c in bits: k * d * (qbits or 32). */
    std::int64_t
    storageBits() const
    {
        return codewords.numel() * (qbits > 0 ? qbits : 32);
    }
};

/**
 * Symmetric uniform quantization of v with scale s and qb bits:
 * round(v / s) clamped to [-2^(qb-1), 2^(qb-1)-1], times s.
 */
float quantizeValue(float v, float scale, int qbits);

/**
 * Fit the shared scale minimizing the MSE of quantizing all codewords,
 * then snap every codeword to its quantized value in place.
 *
 * The scale search evaluates a geometric grid around absmax / qmax, which
 * converges to the same optimum LSQ reaches for symmetric uniform grids.
 *
 * @return The fitted scale.
 */
float quantizeCodebook(Codebook &cb, int qbits);

/** Re-snap codewords to the existing (scale, qbits) grid after an update. */
void requantizeCodebook(Codebook &cb);

} // namespace mvq::core

#endif // MVQ_CORE_CODEBOOK_HPP
